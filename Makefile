# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet lint archlint bench bench-record experiments verify cover race campaign-smoke fuzz-smoke serve-smoke cluster-smoke clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

# What the CI lint job runs: vet, gofmt cleanliness, and the
# execution-layer boundary check (engines are only constructed inside
# internal/exec; see scripts/archlint.sh).
lint: vet archlint
	test -z "$$(gofmt -l .)"

archlint:
	./scripts/archlint.sh

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate BENCH_3.json: run the scalar reference and both lane
# benchmarks, then let scripts/benchrecord parse the output, enforce the
# >= 6x acceptance bar vs BENCH_2's recorded scalar trial cost, and write
# the record. Override DATE to restamp (same input + same DATE => same
# JSON, so regeneration is diffable).
DATE ?= 2026-08-08
bench-record:
	go test -run '^$$' -bench 'BenchmarkBroadcastReuse$$|BenchmarkLaneBroadcast$$|BenchmarkLaneBroadcastSmall$$' \
		-benchmem -benchtime 2s . > /tmp/bench-record.out
	go run ./scripts/benchrecord -in /tmp/bench-record.out -date $(DATE) \
		-comment "PR 8 acceptance record: bit-parallel lane engine (internal/lanes) vs the scalar sampled fast path. The headline metric is BenchmarkLaneBroadcast ns/trial (64 lane-parallel trials per op) against BENCH_2's per-trial scalar cost on the same n=100000 d=25 connected Gnp workload." \
		-ref-name "BenchmarkBroadcastReuse in BENCH_2.json (scalar sampled fast path, same workload and machine)" \
		-ref-ns 36789982 -accept-ratio 6 -out BENCH_3.json
	go test -run '^$$' -bench 'BenchmarkLaneBroadcast$$|BenchmarkFacadeRunBatch$$' \
		-benchmem -benchtime 2s . > /tmp/bench-record-exec.out
	go run ./scripts/benchrecord -in /tmp/bench-record-exec.out -date $(DATE) \
		-comment "PR 10 acceptance record: facade RunBatch through the unified execution layer (internal/exec) vs the raw lane engine on the same n=100000 d=25 workload, same run. The gate is same-run executor overhead (BenchmarkFacadeRunBatch ns/trial over BenchmarkLaneBroadcast ns/trial), which is portable across machines; a regression that drops the batch path off the lane backend lands near the 7x scalar cost, far above the bar." \
		-lane-bench BenchmarkFacadeRunBatch -base-bench BenchmarkLaneBroadcast \
		-max-overhead 1.25 -out BENCH_4.json
	@echo "bench-record: wrote BENCH_3.json and BENCH_4.json"

# Regenerate the EXPERIMENTS.md tables (medium scale, recorded seed).
experiments:
	go run ./cmd/experiments -scale medium -seed 2006

# Machine-checkable reproduction scorecard: one pass/fail per claim.
verify:
	go run ./cmd/experiments -verify -seed 2006

# Kill-and-resume smoke test of the campaign runner: run a tiny campaign
# to completion, then re-run it interrupted after 3 samples and resume
# from the checkpoint — the two -json reports must be byte-identical, and
# the offline `campaign report` must agree.
campaign-smoke:
	rm -rf /tmp/campaign-smoke && mkdir -p /tmp/campaign-smoke
	go run ./cmd/campaign spec -preset smoke -seed 2006 > /tmp/campaign-smoke/spec.json
	go run ./cmd/campaign run -spec /tmp/campaign-smoke/spec.json -out /tmp/campaign-smoke/full -quiet -json > /tmp/campaign-smoke/full.json
	go run ./cmd/campaign run -spec /tmp/campaign-smoke/spec.json -out /tmp/campaign-smoke/ck -halt-after 3 -quiet -json > /tmp/campaign-smoke/partial.json
	go run ./cmd/campaign run -spec /tmp/campaign-smoke/spec.json -out /tmp/campaign-smoke/ck -resume -quiet -json > /tmp/campaign-smoke/resumed.json
	cmp /tmp/campaign-smoke/full.json /tmp/campaign-smoke/resumed.json
	go run ./cmd/campaign report -out /tmp/campaign-smoke/ck -json > /tmp/campaign-smoke/offline.json
	cmp /tmp/campaign-smoke/full.json /tmp/campaign-smoke/offline.json
	@echo "campaign-smoke: resume converged to the uninterrupted report"

# End-to-end smoke test of the radiosimd daemon: build the binary, boot
# it on a random port, fire a run, a JSONL stream and a metrics scrape
# over real HTTP (asserting the graph-cache hit), then SIGTERM and
# require a clean drain with exit code 0.
serve-smoke:
	go test -run '^TestDaemonSmoke$$' -count=1 -v ./cmd/radiosimd/

# End-to-end smoke test of the cluster subsystem: build the campaign and
# radiosimd binaries, boot a coordinator plus two workers, SIGKILL one
# worker while it holds a lease mid-shard, and require the distributed
# report to be byte-identical to a local single-process run — the lease
# must expire and the shard be reassigned to the surviving worker.
cluster-smoke:
	go test -run '^TestClusterSmoke$$' -count=1 -v ./cmd/campaign/

# Short mutation run of every native fuzz target (go's one-fuzz-target-
# per-invocation limit forces the loop). The checked-in seed corpora under
# testdata/fuzz run on every plain `go test`; this additionally mutates.
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzGraphBuild$$' -fuzztime 10s ./internal/graph/
	go test -run '^$$' -fuzz '^FuzzSubgraph$$' -fuzztime 10s ./internal/graph/
	go test -run '^$$' -fuzz '^FuzzReadSchedule$$' -fuzztime 10s ./internal/radio/
	go test -run '^$$' -fuzz '^FuzzLoadSamples$$' -fuzztime 10s ./internal/campaign/

clean:
	go clean ./...
