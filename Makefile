# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet lint bench experiments verify cover race clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

# What the CI lint job runs: vet plus gofmt cleanliness.
lint: vet
	test -z "$$(gofmt -l .)"

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate the EXPERIMENTS.md tables (medium scale, recorded seed).
experiments:
	go run ./cmd/experiments -scale medium -seed 2006

# Machine-checkable reproduction scorecard: one pass/fail per claim.
verify:
	go run ./cmd/experiments -verify -seed 2006

clean:
	go clean ./...
