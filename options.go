package repro

// Options-based facade: Run is the single entry point for broadcast
// simulations, replacing the positional-argument sprawl of
// Broadcast(g, src, d, rng) / RunProtocol(g, src, p, maxRounds, rng) /
// ExecuteSchedule(g, src, s). The old functions remain as thin wrappers
// over Run, so existing callers keep working and keep their exact
// behaviour (same randomness stream, bit-for-bit identical results).

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
)

// Option configures a Run call.
type Option func(*runConfig)

type runConfig struct {
	ctx       context.Context
	degree    float64
	hasDegree bool
	protocol  Protocol
	schedule  *Schedule
	maxRounds int
	hasMax    bool
	rng       *Rand
	seed      uint64
	hasSeed   bool
	obs       Observer
	extraSrc  []int32
	perNode   bool
	engine    *Engine
}

// WithDegree sizes the paper's distributed protocol (Theorem 7) for
// expected average degree d — the parametrisation d = pn of G(n, d/n).
// Mutually exclusive with WithProtocol and WithSchedule. When none of the
// three is given, Run uses the graph's mean degree.
func WithDegree(d float64) Option {
	return func(c *runConfig) { c.degree, c.hasDegree = d, true }
}

// WithProtocol runs an arbitrary distributed protocol instead of the
// paper's default. Mutually exclusive with WithDegree and WithSchedule.
func WithProtocol(p Protocol) Option {
	return func(c *runConfig) { c.protocol = p }
}

// WithSchedule replays an explicit centralized schedule (e.g. from
// BuildSchedule) instead of running a distributed protocol. The schedule
// length is the round budget; WithMaxRounds, WithDegree and WithProtocol
// do not apply.
func WithSchedule(s *Schedule) Option {
	return func(c *runConfig) { c.schedule = s }
}

// WithMaxRounds caps the number of protocol rounds (0 runs no rounds at
// all). The default is MaxRounds(g.N()), a generous budget beyond the
// Θ(ln n) bound.
func WithMaxRounds(m int) Option {
	return func(c *runConfig) { c.maxRounds, c.hasMax = m, true }
}

// WithRand supplies the random source driving the protocol's choices.
// Mutually exclusive with WithSeed.
func WithRand(rng *Rand) Option {
	return func(c *runConfig) { c.rng = rng }
}

// WithSeed is WithRand(NewRand(seed)): a fresh deterministic stream per
// call, so the same seed always reproduces the same run. The default is
// WithSeed(1).
func WithSeed(seed uint64) Option {
	return func(c *runConfig) { c.seed, c.hasSeed = seed, true }
}

// WithObserver attaches a round-level trace observer to the run: it
// receives a BeginRun, one RoundRecord per executed round, and an EndRun.
// Observers consume no randomness, so an observed run is bit-for-bit
// identical to an unobserved one. Compose several with MultiObserver.
func WithObserver(obs Observer) Option {
	return func(c *runConfig) { c.obs = obs }
}

// WithSources adds further initially informed nodes beside src — the
// multi-source broadcast of BroadcastMulti. Duplicates are tolerated.
func WithSources(sources ...int32) Option {
	return func(c *runConfig) { c.extraSrc = append(c.extraSrc, sources...) }
}

// WithContext attaches a context to the run: the engine checks for
// cancellation between rounds and, once the context is canceled, stops and
// returns the partial Result together with an error wrapping ErrCanceled
// and the context's cause. The check consumes no randomness, so a run
// under an uncanceled context is bit-for-bit identical to one without.
// WithContext(ctx) is equivalent to calling RunContext(ctx, ...); when
// both are given, the option wins.
func WithContext(ctx context.Context) Option {
	return func(c *runConfig) { c.ctx = ctx }
}

// WithPerNodeSampling disables the sampled-transmitter fast path: the
// protocol loop asks the protocol for a per-node transmit decision for
// every informed node each round, even when the protocol declares uniform
// rounds (radio.UniformProtocol). By default Run uses the O(k) binomial
// cohort sampling fast path whenever the protocol supports it — the same
// transmitter-set distribution through a much shorter randomness stream.
// Use this option to reproduce pre-fast-path runs bit-for-bit at a fixed
// seed (the deprecated positional wrappers do), or to exercise a custom
// protocol's Transmit method on every node.
func WithPerNodeSampling() Option {
	return func(c *runConfig) { c.perNode = true }
}

// WithEngine runs the simulation on a caller-supplied engine instead of
// allocating a fresh one — the engine-pooling path of long-running
// servers, which would otherwise pay an O(n) engine allocation per
// request. The engine must have been built for the same graph g
// (ErrConflictingOptions otherwise); its sources, observer and sampling
// mode are re-initialised from this call's own options, so a pooled
// engine run is bit-for-bit identical to a fresh-engine run with the
// same options. Mutually exclusive with WithSchedule (schedule replay
// builds its own execution state).
//
// To keep the steady state free of O(n) allocations, the returned
// Result's InformedAt aliases an engine-owned buffer that the engine's
// NEXT run overwrites — copy it if it must outlive the engine's reuse
// cycle.
func WithEngine(e *Engine) Option {
	return func(c *runConfig) { c.engine = e }
}

// Run simulates one broadcast of a message from src on g under the radio
// model and returns the result. With no options it runs the paper's
// distributed protocol (Theorem 7) sized for the graph's mean degree,
// with a fresh seed-1 random stream and a generous round budget:
//
//	res, err := repro.Run(g, 0, repro.WithDegree(25))
//
// runs the same simulation as repro.Broadcast(g, 0, 25, repro.NewRand(1)).
// Options select the protocol or schedule, the round budget, the
// randomness and an observer; see the With* functions. Run only returns
// an error for invalid option combinations or a schedule that violates
// the radio model (an uninformed transmitter); protocol runs cannot fail
// — an exhausted round budget is reported via Result.Completed.
//
// Protocols that declare uniform rounds (radio.UniformProtocol — the
// paper's protocol does) are simulated through the sampled-transmitter
// fast path: O(k) binomial cohort sampling per round instead of one coin
// flip per informed node. The transmitter-set distribution is identical,
// but the randomness stream is shorter, so runs at a fixed seed differ
// bit-for-bit from the per-node path; pass WithPerNodeSampling() to
// reproduce pre-fast-path runs exactly (the deprecated positional
// wrappers do this, and so stay bit-for-bit stable).
func Run(g *Graph, src int32, opts ...Option) (Result, error) {
	return RunContext(context.Background(), g, src, opts...)
}

// RunContext is Run with cooperative cancellation: the engine checks ctx
// between rounds and, once it is canceled, returns the partial Result —
// reflecting exactly the rounds executed so far — together with an error
// for which errors.Is reports ErrCanceled as well as the context's own
// cause (context.Canceled or context.DeadlineExceeded). The cancellation
// check consumes no randomness, so with an uncanceled context RunContext
// is bit-for-bit identical to Run; Run itself is
// RunContext(context.Background(), ...).
//
// Errors are classified by the exported sentinels (see errors.go):
// invalid option combinations wrap ErrConflictingOptions, out-of-range
// sources wrap ErrNoSuchSource, schedule violations wrap
// ErrScheduleMismatch.
func RunContext(ctx context.Context, g *Graph, src int32, opts ...Option) (Result, error) {
	c := runConfig{ctx: ctx}
	for _, o := range opts {
		o(&c)
	}
	if c.ctx == nil {
		c.ctx = context.Background()
	}
	switch {
	case c.protocol != nil && c.hasDegree:
		return Result{}, fmt.Errorf("%w: WithProtocol and WithDegree are mutually exclusive", ErrConflictingOptions)
	case c.schedule != nil && (c.protocol != nil || c.hasDegree):
		return Result{}, fmt.Errorf("%w: WithSchedule excludes WithProtocol/WithDegree", ErrConflictingOptions)
	case c.schedule != nil && c.hasMax:
		return Result{}, fmt.Errorf("%w: WithSchedule excludes WithMaxRounds (the schedule length is the budget)", ErrConflictingOptions)
	case c.rng != nil && c.hasSeed:
		return Result{}, fmt.Errorf("%w: WithRand and WithSeed are mutually exclusive", ErrConflictingOptions)
	case c.hasMax && c.maxRounds < 0:
		return Result{}, fmt.Errorf("%w: negative round budget %d", ErrConflictingOptions, c.maxRounds)
	case c.engine != nil && c.schedule != nil:
		return Result{}, fmt.Errorf("%w: WithEngine excludes WithSchedule", ErrConflictingOptions)
	case c.engine != nil && c.engine.Graph() != g:
		return Result{}, fmt.Errorf("%w: WithEngine engine was built for a different graph", ErrConflictingOptions)
	}

	sources := append([]int32{src}, c.extraSrc...)
	for _, s := range sources {
		if s < 0 || int(s) >= g.N() {
			return Result{}, fmt.Errorf("%w: source %d outside [0,%d)", ErrNoSuchSource, s, g.N())
		}
	}
	if c.schedule != nil {
		return exec.Run(c.ctx, &exec.Request{Graph: g, Sources: sources, Schedule: c.schedule, Observer: c.obs}, nil)
	}

	rng := c.rng
	if rng == nil {
		seed := uint64(1)
		if c.hasSeed {
			seed = c.seed
		}
		rng = NewRand(seed)
	}
	p := c.protocol
	if p == nil {
		d := c.degree
		if !c.hasDegree {
			d = meanDegree(g)
		}
		p = core.NewDistributedProtocol(g.N(), d)
	}
	maxRounds := c.maxRounds
	if !c.hasMax {
		maxRounds = core.MaxRoundsFor(g.N())
	}
	// Dispatch through the unified execution layer (internal/exec): it
	// owns engine construction and WithEngine re-initialisation, so a
	// pooled- or caller-engine run stays bit-identical to a fresh one.
	return exec.Run(c.ctx, &exec.Request{
		Graph:     g,
		Sources:   sources,
		Protocol:  p,
		MaxRounds: maxRounds,
		PerNode:   c.perNode,
		Observer:  c.obs,
		Engine:    c.engine,
	}, rng)
}

// meanDegree returns 2m/n, the graph's empirical average degree (the
// default protocol sizing when no WithDegree is given).
func meanDegree(g *Graph) float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}
