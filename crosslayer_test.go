package repro_test

// Cross-layer byte-identity: every consumer of the unified execution
// layer (internal/exec) — the facade, the sweep helper, the campaign
// runner and the HTTP server — must produce identical samples for the
// same (graph, protocol, seed) configuration, because they all resolve
// to the same backend through the same classification and the same
// positional trial-seed convention. One spec seed drives all four layers
// here:
//
//	pointSeed = xrand.New(specSeed).DeriveSeed(1)   (campaign point 0)
//	graphSeed = xrand.New(pointSeed).DeriveSeed(0)  (campaign fixed graph)
//	trial i   = sweep.Seeds(trials, pointSeed)[i]
//
// The lane leg (facade RunBatch, sweep.RunLanes, campaign fixed-graph
// point) must agree bit-for-bit, and the scalar leg (facade Run, serve
// POST /v1/run) must agree bit-for-bit; the two legs use different
// randomness streams by design (the PR 3 stream policy), so they are
// compared within, not across.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sweep"
	"repro/internal/xrand"
)

const (
	xlN        = 400
	xlD        = 8.0
	xlTrials   = 20
	xlSpecSeed = 77
)

func TestCrossLayerByteIdentity(t *testing.T) {
	pointSeed := xrand.New(xlSpecSeed).DeriveSeed(1)
	graphSeed := xrand.New(pointSeed).DeriveSeed(0)
	g, ok := repro.ConnectedGnpDegree(xlN, xlD, repro.NewRand(graphSeed))
	if !ok {
		t.Fatalf("no connected G(n=%d, d=%g)", xlN, xlD)
	}
	maxRounds := core.MaxRoundsFor(xlN)
	seeds := sweep.Seeds(xlTrials, pointSeed)

	// Layer 1: facade lane batch.
	rounds, err := repro.RunBatch(g, 0, xlTrials, repro.WithDegree(xlD), repro.WithSeed(pointSeed))
	if err != nil {
		t.Fatal(err)
	}

	// Layer 2: sweep helper over the same protocol and seeds.
	p := core.NewDistributedProtocol(xlN, xlD)
	values, lanesOK, err := sweep.RunLanes(context.Background(), g, 0, p, maxRounds, xlTrials, pointSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !lanesOK {
		t.Fatal("distributed protocol must classify as lane-uniform")
	}
	for i, v := range values {
		if v != float64(rounds[i]) {
			t.Fatalf("sweep trial %d = %g, facade RunBatch = %d", i, v, rounds[i])
		}
	}

	// Layer 3: campaign run of the equivalent one-point fixed-graph spec.
	spec := &campaign.Spec{
		Name:   "crosslayer",
		Seed:   xlSpecSeed,
		Trials: xlTrials,
		Points: []campaign.PointSpec{{
			ID:    "p0",
			X:     xlD,
			Trial: campaign.TrialSpec{Kind: "distributed", N: xlN, D: xlD, FixedGraph: true},
		}},
	}
	var samples []*campaign.Sample
	if _, err := campaign.Run(spec, campaign.Options{
		Workers: 2,
		Sink:    func(s *campaign.Sample) { samples = append(samples, s) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(samples) != xlTrials {
		t.Fatalf("campaign produced %d samples, want %d", len(samples), xlTrials)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Trial < samples[j].Trial })
	for i, s := range samples {
		if s.Failed {
			t.Fatalf("campaign trial %d failed: %s", i, s.Err)
		}
		if s.Seed != seeds[i] {
			t.Fatalf("campaign trial %d seed = %#x, want %#x (positional convention)", i, s.Seed, seeds[i])
		}
		if s.Value != float64(rounds[i]) {
			t.Fatalf("campaign trial %d = %g, facade RunBatch = %d", i, s.Value, rounds[i])
		}
		if want := rounds[i] <= maxRounds; s.OK != want {
			t.Fatalf("campaign trial %d ok = %v, want %v", i, s.OK, want)
		}
	}

	// Scalar leg: facade Run vs serve POST /v1/run on the same graph
	// (the server rebuilds it from graphSeed through its LRU) and the
	// same per-trial seeds.
	srv := serve.NewServer(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Shutdown(2 * time.Second)
	}()
	for _, seed := range seeds[:3] {
		res, err := repro.Run(g, 0, repro.WithDegree(xlD), repro.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(serve.RunRequest{
			Generator: "gnp-connected", N: xlN, D: xlD, GraphSeed: graphSeed,
			Algo: "distributed", Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/run status %d", resp.StatusCode)
		}
		var rr serve.RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if rr.Rounds != res.Rounds || rr.Completed != res.Completed || rr.Informed != res.Informed {
			t.Fatalf("serve run (rounds=%d completed=%v informed=%d) diverges from facade Run (rounds=%d completed=%v informed=%d) at seed %#x",
				rr.Rounds, rr.Completed, rr.Informed, res.Rounds, res.Completed, res.Informed, seed)
		}
	}
}
