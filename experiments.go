package repro

// Programmatic access to the reproduction experiments, so downstream code
// can rerun any claim's measurement without shelling out to
// cmd/experiments.

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/table"
)

// ExperimentScale selects how large an experiment run is.
type ExperimentScale = exp.Scale

// Experiment scales.
const (
	ScaleSmall  = exp.Small
	ScaleMedium = exp.Medium
	ScaleFull   = exp.Full
)

// ResultTable is a rendered experiment result (text / Markdown / CSV /
// JSON views).
type ResultTable = table.Table

// Experiments lists the registered experiment IDs in order (E1…).
func Experiments() []string {
	all := exp.All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// ExperimentInfo returns the title and claim of an experiment.
func ExperimentInfo(id string) (title, claim string, err error) {
	e, ok := exp.Get(id)
	if !ok {
		return "", "", fmt.Errorf("repro: unknown experiment %q", id)
	}
	return e.Title, e.Claim, nil
}

// RunExperiment executes one experiment and returns its result tables.
// The same (id, scale, seed) always returns identical tables.
func RunExperiment(id string, scale ExperimentScale, seed uint64) ([]*ResultTable, error) {
	e, ok := exp.Get(id)
	if !ok {
		return nil, fmt.Errorf("repro: unknown experiment %q", id)
	}
	return e.Run(exp.Config{Scale: scale, Seed: seed}), nil
}

// ReproductionCheck is one pass/fail acceptance criterion tied to a claim
// of the paper.
type ReproductionCheck = exp.Check

// VerifyReproduction runs the full scorecard: one acceptance check per
// claim. ok reports whether every check passed.
func VerifyReproduction(scale ExperimentScale, seed uint64) (checks []ReproductionCheck, ok bool) {
	checks = exp.Scorecard(exp.Config{Scale: scale, Seed: seed})
	return checks, exp.ScorecardPassed(checks)
}
