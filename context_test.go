package repro

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunContextUncanceledBitIdentical is the context-facade acceptance
// check: RunContext with an uncancelable (or never-canceled) context must
// reproduce Run bit-for-bit — the cancellation check consumes no
// randomness, so the two entry points share one stream.
func TestRunContextUncanceledBitIdentical(t *testing.T) {
	g := testGraph(t, 1500, 12, 3)
	for seed := uint64(1); seed <= 5; seed++ {
		want, err := Run(g, 0, WithDegree(12), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunContext(context.Background(), g, 0, WithDegree(12), WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(got) != fingerprint(want) {
			t.Fatalf("seed %d: RunContext(Background) %+v != Run %+v", seed, got, want)
		}
		ctx, cancel := context.WithCancel(context.Background())
		got2, err := RunContext(ctx, g, 0, WithDegree(12), WithSeed(seed))
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(got2) != fingerprint(want) {
			t.Fatalf("seed %d: RunContext(cancelable, never canceled) diverged from Run", seed)
		}
	}
}

// cancelAfterRounds is an Observer that cancels a context once it has
// seen the given number of rounds — the deterministic way to land a
// cancellation mid-run, since the engine checks the context between
// rounds.
type cancelAfterRounds struct {
	nopObserver
	rounds int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfterRounds) Round(RoundRecord) {
	c.seen++
	if c.seen == c.rounds {
		c.cancel()
	}
}

type nopObserver struct{}

func (nopObserver) BeginRun(RunInfo)  {}
func (nopObserver) Round(RoundRecord) {}
func (nopObserver) EndRun(RunSummary) {}

// TestRunContextCancelMidRun: a cancellation landing between rounds stops
// the run cooperatively — the partial Result reflects exactly the rounds
// executed, and the error matches both ErrCanceled and the context's own
// cause under errors.Is.
func TestRunContextCancelMidRun(t *testing.T) {
	g := testGraph(t, 1500, 12, 3)

	full, err := Run(g, 0, WithDegree(12), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if full.Rounds < 4 {
		t.Skipf("run completed in %d rounds; too short to cancel mid-way", full.Rounds)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancelAfterRounds{rounds: 3, cancel: cancel}
	res, err := RunContext(ctx, g, 0, WithDegree(12), WithSeed(7), WithObserver(obs))
	if err == nil {
		t.Fatal("RunContext returned nil error after mid-run cancel")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not wrap ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res.Rounds != 3 {
		t.Fatalf("partial result has %d rounds, want 3 (cancellation is between-rounds)", res.Rounds)
	}
	if res.Completed {
		t.Fatal("canceled run reports Completed")
	}
	if res.Informed < 1 || res.Informed > full.Informed {
		t.Fatalf("partial Informed = %d outside [1, %d]", res.Informed, full.Informed)
	}
}

// TestRunContextDeadline: an already-expired deadline cancels before the
// first round; the error wraps both ErrCanceled and DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	g := testGraph(t, 200, 8, 1)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := RunContext(ctx, g, 0, WithDegree(8))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v must wrap ErrCanceled and context.DeadlineExceeded", err)
	}
	if res.Rounds != 0 {
		t.Fatalf("expired deadline still executed %d rounds", res.Rounds)
	}
}

// TestWithContextOption: WithContext attaches the context through plain
// Run, and wins over RunContext's argument.
func TestWithContextOption(t *testing.T) {
	g := testGraph(t, 200, 8, 1)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := Run(g, 0, WithDegree(8), WithContext(canceled)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run with canceled WithContext: err = %v, want ErrCanceled", err)
	}
	// Option beats argument: live argument, canceled option → canceled.
	if _, err := RunContext(context.Background(), g, 0, WithDegree(8), WithContext(canceled)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("WithContext should override RunContext argument; err = %v", err)
	}
}

// TestErrNoSuchSource: out-of-range sources (primary or extra) fail fast
// with the typed sentinel, before any simulation work.
func TestErrNoSuchSource(t *testing.T) {
	g := testGraph(t, 100, 8, 1)
	for _, src := range []int32{-1, 100, 1 << 20} {
		if _, err := Run(g, src, WithDegree(8)); !errors.Is(err, ErrNoSuchSource) {
			t.Fatalf("Run(src=%d): err = %v, want ErrNoSuchSource", src, err)
		}
	}
	if _, err := Run(g, 0, WithDegree(8), WithSources(5, 200)); !errors.Is(err, ErrNoSuchSource) {
		t.Fatal("out-of-range extra source not caught")
	}
}

// TestErrConflictingOptions: every option-conflict path wraps the
// sentinel, so callers can classify misuse without string matching.
func TestErrConflictingOptions(t *testing.T) {
	g := testGraph(t, 100, 8, 1)
	sched := &Schedule{Sets: [][]int32{{0}}}
	cases := [][]Option{
		{WithDegree(8), WithProtocol(ProtocolFunc(func(int32, int, int32, *Rand) bool { return true }))},
		{WithSchedule(sched), WithDegree(8)},
		{WithSchedule(sched), WithMaxRounds(5)},
		{WithRand(NewRand(1)), WithSeed(3)},
		{WithMaxRounds(-1)},
	}
	for i, opts := range cases {
		if _, err := Run(g, 0, opts...); !errors.Is(err, ErrConflictingOptions) {
			t.Fatalf("case %d: err = %v, want ErrConflictingOptions", i, err)
		}
	}
}

// TestErrScheduleMismatch: replaying a schedule whose transmitter set
// does not fit the model yields the typed sentinel.
func TestErrScheduleMismatch(t *testing.T) {
	g := testGraph(t, 100, 8, 1)
	// Round 1 transmits from an uninformed node under StrictInformed.
	bad := &Schedule{Sets: [][]int32{{99}}}
	if _, err := Run(g, 0, WithSchedule(bad)); !errors.Is(err, ErrScheduleMismatch) {
		t.Fatalf("uninformed transmitter: err = %v, want ErrScheduleMismatch", err)
	}
	oob := &Schedule{Sets: [][]int32{{0}, {1 << 20}}}
	if _, err := Run(g, 0, WithSchedule(oob)); !errors.Is(err, ErrScheduleMismatch) {
		t.Fatalf("out-of-range transmitter: err = %v, want ErrScheduleMismatch", err)
	}
}
