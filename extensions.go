package repro

// Facade over the extension subsystems: gossiping, crash faults,
// multi-source broadcasting, and schedule serialisation. See the
// corresponding internal packages for the full APIs.

import (
	"io"
	"math"

	"repro/internal/election"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/gossip"
	"repro/internal/pipeline"
	"repro/internal/radio"
)

// GossipResult reports an all-to-all dissemination run.
type GossipResult = gossip.Result

// GossipProtocol decides, per node and round, whether to transmit during
// gossiping (all-to-all dissemination). See internal/gossip for the stock
// protocols (RoundRobin, Uniform, Phased).
type GossipProtocol = gossip.Protocol

// NewPhasedGossip returns the Theorem-7-style phased gossip protocol
// sized for n nodes with expected degree d: flood for ~log_d n rounds,
// then transmit with probability 1/d.
func NewPhasedGossip(n int, d float64) GossipProtocol {
	return gossip.NewPhased(n, d)
}

// GossipWith runs all-to-all rumor dissemination on g under an arbitrary
// gossip protocol — the gossip analogue of RunProtocol, symmetric with
// KBroadcast's protocol parameter. Optional observers receive one
// RoundRecord per round (Successes = clean receptions, NewlyInformed =
// nodes that completed their rumor set this round).
func GossipWith(g *Graph, p GossipProtocol, maxRounds int, rng *Rand, obs ...Observer) GossipResult {
	return gossip.RunObserved(g, p, maxRounds, rng, MultiObserver(obs...))
}

// Gossip runs all-to-all rumor dissemination on g under the radio model:
// every node starts with its own rumor, transmissions carry all known
// rumors, and the run ends when every node knows every rumor (or after
// maxRounds). The protocol is the Theorem-7-style phased protocol sized
// for expected degree d; use GossipWith to substitute another protocol.
func Gossip(g *Graph, d float64, maxRounds int, rng *Rand) GossipResult {
	return GossipWith(g, NewPhasedGossip(g.N(), d), maxRounds, rng)
}

// CrashScenario is a crash-fault pattern applied to a graph.
type CrashScenario = faults.Scenario

// Crash crashes every node except src independently with probability q
// and returns the survivor scenario; broadcast on Sub from SrcNew to
// measure fault tolerance.
func Crash(g *Graph, src int32, q float64, rng *Rand) *CrashScenario {
	return faults.Crash(g, src, q, rng)
}

// SourceSweep runs the paper's protocol once from each of k random
// sources and returns the completion rounds (MaxRounds+1 sentinel for
// incomplete runs) — the "for any u ∈ V" measurement.
func SourceSweep(g *Graph, k int, d float64, rng *Rand) []int {
	return radio.SourceSweep(g, k, NewProtocol(g.N(), d), MaxRounds(g.N()), rng)
}

// WriteSchedule serialises a schedule in the plain-text format read by
// ReadSchedule.
func WriteSchedule(w io.Writer, s *Schedule) error {
	_, err := s.WriteTo(w)
	return err
}

// ReadSchedule parses a schedule written by WriteSchedule.
func ReadSchedule(r io.Reader) (*Schedule, error) {
	return radio.ReadSchedule(r)
}

// KBroadcast runs k-message broadcast from src (one message per
// transmission, rarest-first selection, 1/d-selective transmission after
// a short flood). See internal/pipeline for the policy variants.
func KBroadcast(g *Graph, src int32, k int, d float64, maxRounds int, rng *Rand) pipeline.Result {
	return pipeline.Run(g, src, k, kbProtocol{d}, pipeline.RarestFirst, maxRounds, rng)
}

type kbProtocol struct{ d float64 }

func (p kbProtocol) Transmit(v int32, round int, informedAt int32, rng *Rand) bool {
	if round <= 3 {
		return true
	}
	return rng.Bernoulli(1 / math.Max(p.d, 2))
}

// ElectLeader elects a leader among n stations on a single shared channel
// knowing only the upper bound nBound, without collision detection
// (scale sweep). It returns the number of rounds used, or maxRounds+1 on
// failure.
func ElectLeader(n, nBound, maxRounds int, rng *Rand) int {
	return election.Sweep(n, nBound, maxRounds, rng)
}

// ElectLeaderCD is ElectLeader in the collision-detection model
// (Willard's binary search): O(log log nBound) expected rounds.
func ElectLeaderCD(n, nBound, maxRounds int, rng *Rand) int {
	return election.Willard(n, nBound, maxRounds, rng)
}

// BuildGridSchedule builds the collision-free, transmit-once broadcast
// schedule for a unit-disk graph with known node positions (xs[i], ys[i])
// and radio range r. See internal/geo.
func BuildGridSchedule(g *Graph, xs, ys []float64, r float64, src int32) (*Schedule, error) {
	return geo.BuildGridSchedule(g, xs, ys, r, src)
}
