package repro

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/gen"
)

func TestFacadeGossip(t *testing.T) {
	rng := NewRand(1)
	const n = 300
	d := 2 * math.Log(n)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		t.Skip("no connected sample")
	}
	res := Gossip(g, d, 100000, rng)
	if !res.Completed {
		t.Fatalf("gossip incomplete: min known %d/%d", res.MinKnown, n)
	}
	if res.KnownTotal != int64(n)*int64(n) {
		t.Fatalf("KnownTotal = %d", res.KnownTotal)
	}
}

func TestFacadeCrashAndBroadcast(t *testing.T) {
	rng := NewRand(2)
	const n = 1000
	d := 4 * math.Log(n)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		t.Skip("no connected sample")
	}
	sc := Crash(g, 0, 0.3, rng)
	if sc.SrcNew < 0 {
		t.Fatal("source crashed")
	}
	res := Broadcast(sc.Sub, sc.SrcNew, d*0.7, rng)
	if res.Informed < sc.ReachableFromSource() {
		t.Fatalf("informed %d < reachable %d", res.Informed, sc.ReachableFromSource())
	}
}

func TestFacadeBroadcastMulti(t *testing.T) {
	rng := NewRand(3)
	const n = 800
	d := 2 * math.Log(n)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		t.Skip("no connected sample")
	}
	res := BroadcastMulti(g, []int32{0, int32(n / 2), int32(n - 1)}, d, rng)
	if !res.Completed {
		t.Fatalf("multi-source incomplete: %d/%d", res.Informed, n)
	}
}

func TestFacadeSourceSweep(t *testing.T) {
	rng := NewRand(4)
	const n = 500
	d := 2 * math.Log(n)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		t.Skip("no connected sample")
	}
	times := SourceSweep(g, 5, d, rng)
	if len(times) != 5 {
		t.Fatalf("%d sweep times", len(times))
	}
	for _, tt := range times {
		if tt > MaxRounds(n) {
			t.Fatalf("a source failed to complete: %d", tt)
		}
	}
}

func TestFacadeScheduleIO(t *testing.T) {
	rng := NewRand(5)
	const n = 400
	d := 2 * math.Log(n)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		t.Skip("no connected sample")
	}
	sched, err := BuildSchedule(g, 0, d, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, sched); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteSchedule(g, 0, got)
	if err != nil || !res.Completed {
		t.Fatalf("round-tripped schedule invalid: %v informed=%d", err, res.Informed)
	}
}

func TestFacadeKBroadcast(t *testing.T) {
	rng := NewRand(6)
	const n = 400
	d := 2 * math.Log(n)
	g, ok := ConnectedGnpDegree(n, d, rng)
	if !ok {
		t.Skip("no connected sample")
	}
	res := KBroadcast(g, 0, 4, d, 200000, rng)
	if !res.Completed {
		t.Fatalf("k-broadcast incomplete")
	}
	if res.Delivered != int64(4)*int64(n-1) {
		t.Fatalf("delivered %d", res.Delivered)
	}
}

func TestFacadeElectLeader(t *testing.T) {
	rng := NewRand(7)
	noCD := ElectLeader(500, 1<<20, 1<<20, rng)
	cd := ElectLeaderCD(500, 1<<20, 1<<20, rng)
	if noCD > 1<<20 || cd > 1<<20 {
		t.Fatalf("election failed: %d %d", noCD, cd)
	}
}

func TestFacadeGridSchedule(t *testing.T) {
	rng := NewRand(8)
	// Build a small connected geometric field via the internal generator
	// through the facade-visible types.
	const n = 300
	radius := math.Sqrt(4 * math.Log(n) / (math.Pi * n))
	var g *Graph
	var xs, ys []float64
	for attempt := 0; attempt < 20; attempt++ {
		gg, xxs, yys := gen.GeometricPoints(n, radius, rng)
		if IsConnected(gg) {
			g, xs, ys = gg, xxs, yys
			break
		}
	}
	if g == nil {
		t.Skip("no connected field")
	}
	sched, err := BuildGridSchedule(g, xs, ys, radius, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteSchedule(g, 0, sched)
	if err != nil || !res.Completed {
		t.Fatalf("grid schedule: %v informed=%d", err, res.Informed)
	}
	if res.Stats.Collisions != 0 {
		t.Fatalf("collisions: %d", res.Stats.Collisions)
	}
}
