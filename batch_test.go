package repro_test

import (
	"context"
	"errors"
	"testing"

	"repro"
	"repro/internal/lanes"
	"repro/internal/sweep"
	"repro/internal/xrand"
)

func batchGraph(t *testing.T) *repro.Graph {
	t.Helper()
	g, ok := repro.ConnectedGnpDegree(600, 12, repro.NewRand(5))
	if !ok {
		t.Fatal("no connected sample")
	}
	return g
}

// TestRunBatchMatchesRunBlocks: the facade is exactly the lane engine
// over the repository-wide trial-seed convention.
func TestRunBatchMatchesRunBlocks(t *testing.T) {
	g := batchGraph(t)
	const trials = 130 // spans three 64-lane blocks, last one partial
	got, err := repro.RunBatch(g, 0, trials, repro.WithDegree(12), repro.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	p := repro.NewProtocol(600, 12)
	budget := repro.MaxRounds(600)
	plan, ok := lanes.NewPlan(p, budget)
	if !ok {
		t.Fatal("distributed protocol must be lane-uniform")
	}
	want := make([]int, trials)
	if err := lanes.RunBlocks(context.Background(), g, []int32{0}, plan, sweep.Seeds(trials, 99), 0, 0, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trial %d: RunBatch %d != RunBlocks %d", i, got[i], want[i])
		}
	}
	for i, r := range got {
		if r < 1 || r > budget {
			t.Fatalf("trial %d: round %d outside [1, %d]", i, r, budget)
		}
	}
}

// nonUniformProtocol transmits only from odd nodes — its rounds are not
// uniform across informed nodes, so RunBatch must fall back to scalar
// per-trial engines.
type nonUniformProtocol struct{}

func (nonUniformProtocol) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	return v%2 == 1 && rng.Bernoulli(0.3)
}

func TestRunBatchScalarFallback(t *testing.T) {
	g := batchGraph(t)
	if _, ok := lanes.NewPlan(nonUniformProtocol{}, 10); ok {
		t.Fatal("test protocol must not be lane-uniform")
	}
	const trials = 9
	a, err := repro.RunBatch(g, 0, trials, repro.WithProtocol(nonUniformProtocol{}), repro.WithSeed(7), repro.WithMaxRounds(200))
	if err != nil {
		t.Fatal(err)
	}
	b, err := repro.RunBatch(g, 0, trials, repro.WithProtocol(nonUniformProtocol{}), repro.WithSeed(7), repro.WithMaxRounds(200))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d not deterministic: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 1 || a[i] > 201 {
			t.Fatalf("trial %d: round %d outside [1, 201]", i, a[i])
		}
	}
}

func TestRunBatchOptionErrors(t *testing.T) {
	g := batchGraph(t)
	sched, err := repro.BuildSchedule(g, 0, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []repro.Option
	}{
		{"schedule", []repro.Option{repro.WithSchedule(sched)}},
		{"observer", []repro.Option{repro.WithObserver(&repro.Counters{})}},
		{"rand", []repro.Option{repro.WithRand(repro.NewRand(1))}},
		{"pernode", []repro.Option{repro.WithPerNodeSampling()}},
		{"protocol+degree", []repro.Option{repro.WithProtocol(nonUniformProtocol{}), repro.WithDegree(3)}},
		{"negative budget", []repro.Option{repro.WithMaxRounds(-1)}},
		{"bad source", []repro.Option{repro.WithSources(100000)}},
	}
	for _, tc := range cases {
		_, err := repro.RunBatch(g, 0, 4, tc.opts...)
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		if !errors.Is(err, repro.ErrConflictingOptions) && !errors.Is(err, repro.ErrNoSuchSource) {
			t.Errorf("%s: error %v not classified by a sentinel", tc.name, err)
		}
	}
}

func TestRunBatchEmptyAndCancel(t *testing.T) {
	g := batchGraph(t)
	out, err := repro.RunBatch(g, 0, 0)
	if err != nil || len(out) != 0 {
		t.Fatalf("zero trials: got %v, %v", out, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := repro.RunBatch(g, 0, 8, repro.WithContext(ctx)); !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("canceled batch: got %v, want ErrCanceled", err)
	}
}
