// Package repro is a library for radio broadcasting in random graphs,
// reproducing R. Elsässer and L. Gąsieniec, "Radio communication in random
// graphs" (SPAA 2005; JCSS 72(4), 2006).
//
// The radio model: communication proceeds in synchronous rounds; in each
// round a node either transmits or listens; a listening node receives a
// message iff exactly one of its neighbours transmits (two or more
// collide and deliver nothing).
//
// The package exposes, through a small facade over the internal
// implementation:
//
//   - Random-graph generation: Gnp, GnpDegree, Gnm and deterministic
//     topologies (see internal/gen for the full set).
//   - A single options-based simulation entry point: Run, with WithDegree,
//     WithProtocol, WithSchedule, WithMaxRounds, WithSeed/WithRand,
//     WithObserver and WithSources.
//   - The paper's centralized O(ln n/ln d + ln d) broadcast schedule
//     (Theorem 5): BuildSchedule, replayed via Run + WithSchedule.
//   - The paper's distributed randomized O(ln n) protocol (Theorem 7):
//     the Run default, sized by WithDegree; NewProtocol for custom use.
//   - Round-level observability: attach Counters, a JSONLWriter, a
//     FrontierProfile or any custom Observer via WithObserver or
//     Engine.Attach (see observability.go).
//   - The theoretical bounds the measurements are compared against:
//     CentralizedBound, DistributedBound.
//
// # Quickstart
//
//	g := repro.GnpDegree(100_000, 25, repro.NewRand(1)) // G(n,p), E[deg] = 25
//	res, _ := repro.Run(g, 0, repro.WithDegree(25))     // distributed protocol (Thm 7)
//	fmt.Println(res.Completed, res.Rounds)
//
//	sched, err := repro.BuildSchedule(g, 0, 25, 1)      // centralized (Thm 5)
//	if err != nil { ... }
//	res, err = repro.Run(g, 0, repro.WithSchedule(sched))
//
// To watch the per-round dynamics, attach an observer:
//
//	var c repro.Counters
//	res, _ = repro.Run(g, 0, repro.WithDegree(25), repro.WithSeed(7),
//		repro.WithObserver(&c))
//	fmt.Println(c.Collisions, c.Silent)
//
// # Randomness streams and the sampled fast path
//
// Protocols whose rounds are uniform (every eligible node transmits with
// the same probability q — the paper's Theorem 7 protocol, Decay, ALOHA)
// declare that through the radio.UniformProtocol capability, and the
// engine then draws the whole transmitter set at once: k ~ Binomial(m, q)
// followed by a k-element partial shuffle of the m eligible nodes, O(k)
// instead of one Bernoulli draw per informed node. The transmitter-set
// distribution is identical, but the stream of rng draws is not, so
// fixed-seed outputs differ between the two modes.
//
// Who uses which stream:
//
//   - Run (and RunProtocolOn, BroadcastTime, BroadcastTimeOn, the gossip
//     runners) default to the sampled fast path; opt out per call with
//     WithPerNodeSampling, or per engine with Engine.SetPerNodeSampling.
//   - The deprecated positional wrappers (Broadcast, RunProtocol,
//     BroadcastMulti) opt out internally and keep their historical
//     per-node streams bit-for-bit stable across releases.
//   - ExecuteSchedule and BuildSchedule take no per-round randomness from
//     the engine and are unaffected.
//
// The runnable examples under examples/ exercise these entry points on the
// scenarios from the paper's motivation; cmd/experiments regenerates every
// experiment in EXPERIMENTS.md.
package repro

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// Aliased types so callers can use the library without reaching into
// internal packages.
type (
	// Graph is an immutable simple undirected graph in CSR form.
	Graph = graph.Graph
	// Builder accumulates edges for a Graph.
	Builder = graph.Builder
	// Schedule is an explicit per-round transmit schedule.
	Schedule = radio.Schedule
	// Result reports a broadcast simulation outcome.
	Result = radio.Result
	// Protocol decides, per informed node and round, whether to transmit.
	Protocol = radio.Protocol
	// ProtocolFunc adapts a function to Protocol.
	ProtocolFunc = radio.ProtocolFunc
	// UniformProtocol is the optional Protocol capability that declares
	// uniform rounds (every eligible node transmits with the same
	// probability q), letting the engine draw the transmitter set in O(k)
	// by binomial cohort sampling instead of per-node Bernoulli calls.
	UniformProtocol = radio.UniformProtocol
	// Cohort selects which informed nodes are eligible to transmit in a
	// uniform round; see AllInformed and InformedBy.
	Cohort = radio.Cohort
	// Rand is the deterministic random source used everywhere.
	Rand = xrand.Rand
	// Engine is the low-level round-by-round radio simulator.
	Engine = radio.Engine
)

// AllInformed is the Cohort of every informed node — the zero Cohort.
var AllInformed = radio.AllInformed

// InformedBy returns the Cohort of nodes informed in rounds <= cutoff
// (the Theorem-7 restricted-pool reading).
func InformedBy(cutoff int32) Cohort { return radio.InformedBy(cutoff) }

// NewRand returns a deterministic random source seeded with seed.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// Gnp samples the Gilbert random graph G(n,p) with the block-partitioned
// parallel generator: the pair-index space is split into fixed blocks, each
// drawing from its own derived random stream, so the sample is a
// deterministic function of rng's state alone — bitwise identical for
// every GOMAXPROCS. (The sampled graph for a given seed changed when this
// fast path landed; internal/gen.Gnp keeps the legacy serial stream that
// EXPERIMENTS.md numbers are recorded against.)
func Gnp(n int, p float64, rng *Rand) *Graph { return gen.GnpParallel(n, p, rng, 0) }

// GnpDegree samples G(n, d/n): a random graph with expected average degree
// d (the paper's parametrisation d = pn). Like Gnp it uses the parallel
// generator.
func GnpDegree(n int, d float64, rng *Rand) *Graph {
	return gen.GnpParallel(n, gen.PForDegree(n, d), rng, 0)
}

// ConnectedGnpDegree samples G(n, d/n) conditioned on connectivity (up to
// 100 attempts). ok reports whether a connected sample was found.
func ConnectedGnpDegree(n int, d float64, rng *Rand) (g *Graph, ok bool) {
	g, _, ok = gen.ConnectedGnp(n, gen.PForDegree(n, d), rng, 100)
	return g, ok
}

// Gnm samples the Erdős–Rényi random graph G(n,m) with exactly m edges.
func Gnm(n, m int, rng *Rand) *Graph { return gen.Gnm(n, m, rng) }

// NewEngine returns a low-level simulator in which only src knows the
// message; drive it with Engine.Round. Schedules containing uninformed
// transmitters are rejected.
func NewEngine(g *Graph, src int32) *Engine {
	return radio.NewEngine(g, src, radio.StrictInformed)
}

// BuildSchedule constructs the paper's centralized broadcast schedule
// (Theorem 5) for a connected graph g with expected average degree d. The
// seed drives the schedule's randomized choices; the same (g, src, d,
// seed) always yields the same schedule. The schedule length is
// O(ln n / ln d + ln d) w.h.p. on G(n, d/n).
func BuildSchedule(g *Graph, src int32, d float64, seed uint64) (*Schedule, error) {
	sched, _, err := core.BuildCentralizedSchedule(g, src, d, core.DefaultCentralizedConfig(seed))
	return sched, err
}

// NewProtocol returns the paper's distributed randomized protocol
// (Theorem 7) for n nodes and expected degree d. Nodes need only n, d and
// the shared round number; completion takes O(ln n) rounds w.h.p.
func NewProtocol(n int, d float64) Protocol {
	return core.NewDistributedProtocol(n, d)
}

// BroadcastTime runs p and returns the completion round, or maxRounds+1
// if the broadcast did not finish (a sentinel that keeps failed runs
// comparable). It uses the sampled fast path when p declares uniform
// rounds, so its randomness stream changed when the fast path landed
// (recorded completion times at fixed seeds shifted; distributions did
// not).
func BroadcastTime(g *Graph, src int32, p Protocol, maxRounds int, rng *Rand) int {
	return radio.BroadcastTime(g, src, p, maxRounds, rng)
}

// RunProtocolOn is Run's protocol loop on a caller-owned engine: the
// engine is reset and reused, so a loop of trials over one graph
// allocates nothing per trial. Like Run (and unlike the deprecated
// RunProtocol) it uses the sampled fast path when the protocol supports
// it; call e.SetPerNodeSampling(true) for the per-node stream.
func RunProtocolOn(e *Engine, p Protocol, maxRounds int, rng *Rand) Result {
	return radio.RunProtocolOn(e, p, maxRounds, rng)
}

// BroadcastTimeOn is BroadcastTime on a caller-owned engine (reset first);
// unlike RunProtocolOn it builds no Result, so a trial is allocation-free.
func BroadcastTimeOn(e *Engine, p Protocol, maxRounds int, rng *Rand) int {
	return radio.BroadcastTimeOn(e, p, maxRounds, rng)
}

// ExecuteScheduleOn is ExecuteSchedule on a caller-owned engine (reset
// first), for replaying many schedules on one graph without reallocating.
func ExecuteScheduleOn(e *Engine, s *Schedule) (Result, error) {
	return radio.ExecuteScheduleOn(e, s)
}

// CentralizedBound returns the Theorem 5/6 bound ln n / ln d + ln d.
func CentralizedBound(n int, d float64) float64 { return core.CentralizedBound(n, d) }

// DistributedBound returns the Theorem 7/8 bound ln n.
func DistributedBound(n int) float64 { return core.DistributedBound(n) }

// MaxRounds returns a generous round budget for distributed broadcasts on
// n nodes (well beyond the Θ(ln n) completion bound).
func MaxRounds(n int) int { return core.MaxRoundsFor(n) }

// IsConnected reports whether g is connected.
func IsConnected(g *Graph) bool { return graph.IsConnected(g) }

// Eccentricity returns the BFS eccentricity of src — a true lower bound on
// any broadcast time from src.
func Eccentricity(g *Graph, src int32) int { return graph.Eccentricity(g, src) }
