package repro

import (
	"strings"
	"testing"
)

func TestExperimentsRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments", len(ids))
	}
	if ids[0] != "E1" {
		t.Fatalf("first id %q", ids[0])
	}
	title, claim, err := ExperimentInfo("E1")
	if err != nil || title == "" || claim == "" {
		t.Fatalf("E1 info: %q %q %v", title, claim, err)
	}
	if _, _, err := ExperimentInfo("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	tables, err := RunExperiment("E14", ScaleSmall, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatal("no results")
	}
	if !strings.Contains(tables[0].String(), "OPT") {
		t.Fatalf("unexpected table: %s", tables[0].Title)
	}
	if _, err := RunExperiment("E999", ScaleSmall, 1); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestVerifyReproductionFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	checks, ok := VerifyReproduction(ScaleSmall, 424242)
	if len(checks) < 10 {
		t.Fatalf("only %d checks", len(checks))
	}
	if !ok {
		for _, c := range checks {
			if !c.Pass {
				t.Errorf("%s: %s — %s", c.ID, c.Claim, c.Detail)
			}
		}
	}
}
