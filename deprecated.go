package repro

// Deprecated positional entry points, kept in one place so the rest of the
// facade reads options-first. Everything in this file is a thin wrapper
// over Run; prefer Run (or RunContext for cancellation) in new code:
//
//	Broadcast(g, src, d, rng)            → Run(g, src, WithDegree(d), WithRand(rng))
//	RunProtocol(g, src, p, max, rng)     → Run(g, src, WithProtocol(p), WithMaxRounds(max), WithRand(rng))
//	ExecuteSchedule(g, src, s)           → Run(g, src, WithSchedule(s))
//	BroadcastMulti(g, srcs, d, rng, ...) → Run(g, srcs[0], WithSources(srcs[1:]...), WithDegree(d), WithRand(rng))
//
// The protocol-running wrappers (Broadcast, RunProtocol, BroadcastMulti)
// opt out of the sampled-transmitter fast path internally and therefore
// keep their historical per-node randomness streams bit-for-bit stable
// across releases — deprecated_stream_test.go freezes their fingerprints.
// None of these will be removed while anything in the repository still
// compiles against them, but they receive no new capabilities: context
// cancellation, typed errors and observers arrive only through
// Run/RunContext options.

// ExecuteSchedule replays a schedule on g from src under the strict radio
// model and returns the result.
//
// Deprecated: use Run(g, src, WithSchedule(s)); ExecuteSchedule is its
// positional form and behaves identically.
func ExecuteSchedule(g *Graph, src int32, s *Schedule) (Result, error) {
	return Run(g, src, WithSchedule(s))
}

// Broadcast runs the paper's distributed protocol on g from src with a
// generous round budget and returns the result.
//
// Deprecated: use Run(g, src, WithDegree(d), WithRand(rng)); Broadcast is
// its positional form. Broadcast keeps the historical per-node randomness
// stream (it opts out of the sampled fast path), so its outputs at a
// fixed seed are bit-for-bit stable across releases; plain Run draws the
// same transmitter-set distribution through the faster sampled stream.
func Broadcast(g *Graph, src int32, d float64, rng *Rand) Result {
	res, _ := Run(g, src, WithDegree(d), WithRand(rng), WithPerNodeSampling()) // cannot fail: no schedule
	return res
}

// RunProtocol simulates an arbitrary distributed protocol for at most
// maxRounds rounds.
//
// Deprecated: use Run(g, src, WithProtocol(p), WithMaxRounds(maxRounds),
// WithRand(rng)); RunProtocol is its positional form. Like Broadcast it
// keeps the historical per-node randomness stream.
func RunProtocol(g *Graph, src int32, p Protocol, maxRounds int, rng *Rand) Result {
	res, _ := Run(g, src, WithProtocol(p), WithMaxRounds(maxRounds), WithRand(rng), WithPerNodeSampling())
	return res
}

// BroadcastMulti runs the paper's distributed protocol starting from
// several sources simultaneously. Optional observers receive the
// per-round trace.
//
// Deprecated: use Run(g, sources[0], WithSources(sources[1:]...),
// WithDegree(d), WithRand(rng)); BroadcastMulti is its positional form
// and, like Broadcast, keeps the historical per-node randomness stream.
func BroadcastMulti(g *Graph, sources []int32, d float64, rng *Rand, obs ...Observer) Result {
	if len(sources) == 0 {
		panic("repro: BroadcastMulti needs at least one source")
	}
	res, _ := Run(g, sources[0], WithSources(sources[1:]...), WithDegree(d),
		WithRand(rng), WithObserver(MultiObserver(obs...)), WithPerNodeSampling())
	return res
}
