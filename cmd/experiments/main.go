// Command experiments runs the reproduction experiments E1–E12 (DESIGN.md
// §3) and prints their result tables. EXPERIMENTS.md records the
// medium-scale output of this tool.
//
// Usage:
//
//	experiments [-scale small|medium|full] [-seed N] [-trials N]
//	            [-format text|markdown|csv] [-list] [-verify]
//	            [-trace] [-trace-out FILE] [-campaign PRESET] [E1 E2 ...]
//
// With no experiment IDs, every experiment runs in order. -trace runs one
// scale-sized instrumented broadcast instead and prints its per-round
// measured-vs-predicted collision table (the single-run form of E23);
// -trace-out additionally streams the round records as JSON Lines to FILE.
//
// The long-running sweeps are also available as resumable campaigns:
// -campaign prints the campaign spec equivalent to a preset sweep (e1,
// e4, collision-rate, scale, ...) at the selected -scale/-seed/-trials,
// ready to pipe into the checkpointing runner:
//
//	experiments -campaign e1 -scale full | go run ./cmd/campaign run -spec - -out ck
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/campaign"
	"repro/internal/exp"
	"repro/internal/table"
	"repro/internal/trace"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small, medium or full")
	seed := flag.Uint64("seed", 2006, "base random seed (2006 reproduces EXPERIMENTS.md)")
	trials := flag.Int("trials", 0, "override per-point trial count (0 = scale default)")
	format := flag.String("format", "text", "output format: text, markdown, csv or json")
	list := flag.Bool("list", false, "list experiments and exit")
	verify := flag.Bool("verify", false, "run the reproduction scorecard (pass/fail per claim) and exit")
	traceFlag := flag.Bool("trace", false, "run one instrumented broadcast and print its per-round collision table")
	traceOut := flag.String("trace-out", "", "with -trace, also write the round records as JSON Lines to this file (implies -trace)")
	outDir := flag.String("out", "", "also write each table as CSV into this directory")
	campaignPreset := flag.String("campaign", "", "print the campaign spec for a preset sweep (see cmd/campaign) and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		fmt.Printf("\ncampaign presets (resumable checkpointed sweeps, see cmd/campaign): %v\n",
			campaign.Presets())
		return
	}

	if *campaignPreset != "" {
		spec, err := campaign.Preset(*campaignPreset, *scaleFlag, *seed, *trials)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		b, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
		return
	}

	var scale exp.Scale
	switch *scaleFlag {
	case "small":
		scale = exp.Small
	case "medium":
		scale = exp.Medium
	case "full":
		scale = exp.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	cfg := exp.Config{Scale: scale, Seed: *seed, Trials: *trials}

	if *verify {
		checks := exp.Scorecard(cfg)
		failures := 0
		for _, c := range checks {
			status := "PASS"
			if !c.Pass {
				status = "FAIL"
				failures++
			}
			fmt.Printf("[%s] %-4s %s\n       %s\n", status, c.ID, c.Claim, c.Detail)
		}
		fmt.Printf("\nscorecard: %d/%d claims reproduced\n", len(checks)-failures, len(checks))
		if failures > 0 {
			os.Exit(1)
		}
		return
	}

	if *traceFlag || *traceOut != "" {
		var obs trace.Observer
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			jw := trace.NewJSONLWriter(f)
			obs = jw
			defer func() {
				if err := jw.Err(); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", *traceOut, err)
					os.Exit(1)
				}
				fmt.Printf("\ntrace written to %s\n", *traceOut)
			}()
		}
		t := exp.CollisionTraceRun(cfg, obs)
		printTable(t, *format)
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range exp.All() {
			ids = append(ids, e.ID)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		e, ok := exp.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("    claim: %s\n", e.Claim)
		start := time.Now()
		tables := e.Run(cfg)
		elapsed := time.Since(start)
		for ti, t := range tables {
			printTable(t, *format)
			if *outDir != "" {
				name := filepath.Join(*outDir, fmt.Sprintf("%s_%d.csv", e.ID, ti+1))
				if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("    (%s, scale=%s, %.1fs)\n\n", e.ID, scale, elapsed.Seconds())
	}
}

func printTable(t *table.Table, format string) {
	switch format {
	case "markdown":
		fmt.Println(t.Markdown())
	case "csv":
		fmt.Println(t.CSV())
	case "json":
		j, err := t.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(j)
	default:
		fmt.Println(t.String())
	}
}
