// Command radiosim simulates one radio broadcast on a random graph and
// prints a per-round progress trace.
//
// Usage:
//
//	radiosim [-n N] [-d D] [-algo distributed|centralized|decay|aloha]
//	         [-src V] [-seed S] [-trace] [-trace-out FILE] [-json]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// -trace prints the per-round records; -trace-out streams them as JSON
// Lines (one begin record, one record per round, one end record) to FILE
// for offline analysis. -json replaces the human-readable output with a
// single machine-readable JSON summary object on stdout (progress chatter
// moves to stderr), for scripting:
//
//	radiosim -n 1000 -d 15 -json | jq .rounds
//
// On failure in -json mode stdout stays empty — diagnostics go to stderr
// and the exit status is nonzero — so `radiosim -json | jq` can never
// feed half a summary into a pipeline.
//
// -cpuprofile and -memprofile write pprof profiles
// covering the simulation (graph sampling through completion), for
// hot-path work on the engine:
//
//	radiosim -n 100000 -d 25 -cpuprofile cpu.out
//	go tool pprof -top cpu.out
//
// Example:
//
//	radiosim -n 100000 -d 25 -algo centralized -trace
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/viz"
	"repro/internal/xrand"
)

// summary is the machine-readable run summary emitted by -json: one JSON
// object holding the graph that was sampled, the outcome of the broadcast
// and the paper's round bounds for comparison. Fields are stable; scripts
// may rely on them.
type summary struct {
	Algo string `json:"algo"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	// D is the requested expected average degree d = pn; DegreeMean is
	// what the sampled graph actually realized.
	D    float64 `json:"d"`
	Src  int     `json:"src"`
	Seed uint64  `json:"seed"`

	Attempts           int     `json:"attempts"` // connected-graph sampling attempts
	DegreeMin          int     `json:"degree_min"`
	DegreeMean         float64 `json:"degree_mean"`
	DegreeMax          int     `json:"degree_max"`
	SourceEccentricity int     `json:"source_eccentricity"`

	Completed     bool `json:"completed"`
	Rounds        int  `json:"rounds"`
	Informed      int  `json:"informed"`
	Transmissions int  `json:"transmissions"`
	Deliveries    int  `json:"deliveries"`
	Collisions    int  `json:"collisions"`

	BoundCentralized float64 `json:"bound_centralized"`
	BoundDistributed float64 `json:"bound_distributed"`
}

// errUsage marks command-line errors (exit status 2, like flag's own).
var errUsage = errors.New("usage error")

func main() {
	// All real work lives in run so its defers — profile flushing, file
	// closes — execute before the process exits (os.Exit here would skip
	// any defer still pending, silently truncating a -cpuprofile).
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
		}
		if errors.Is(err, errUsage) || errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run executes one simulation. In -json mode stdout carries exactly one
// JSON summary object — or, on error, nothing at all: every failure path
// returns before the summary is marshalled, diagnostics go to stderr via
// the returned error, and the human-readable chatter was already routed
// to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("radiosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 10000, "number of nodes")
	d := fs.Float64("d", 20, "expected average degree d = pn")
	algo := fs.String("algo", "distributed", "algorithm: distributed, centralized, decay, aloha")
	src := fs.Int("src", 0, "broadcast source vertex")
	seed := fs.Uint64("seed", 1, "random seed")
	showTrace := fs.Bool("trace", false, "print per-round informed counts")
	traceOut := fs.String("trace-out", "", "write per-round records as JSON Lines to this file")
	saveSched := fs.String("save-schedule", "", "write the centralized schedule to this file")
	jsonOut := fs.Bool("json", false, "print one machine-readable JSON summary object instead of text")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	// In -json mode stdout carries exactly one JSON object; everything
	// human-readable (progress, traces, sparkline) moves to stderr.
	out := stdout
	if *jsonOut {
		out = stderr
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var memProfErr error
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				memProfErr = err
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				memProfErr = err
			}
		}()
	}
	err := simulate(out, stdout,
		*n, *d, *algo, *src, *seed, *showTrace, *traceOut, *saveSched, *jsonOut)
	if err != nil {
		return err
	}
	return memProfErr
}

// simulate is the body of run, split out so the heap-profile defer in run
// brackets the whole simulation.
func simulate(out, stdout io.Writer,
	n int, d float64, algo string, src int, seed uint64,
	showTrace bool, traceOut, saveSched string, jsonOut bool) error {
	rng := xrand.New(seed)
	fmt.Fprintf(out, "sampling connected G(n=%d, p=d/n) with d=%.1f ...\n", n, d)
	g, tries, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), rng, 100)
	if !ok {
		return errors.New("could not sample a connected graph; increase -d")
	}
	if src < 0 || src >= g.N() {
		return fmt.Errorf("%w: -src %d outside [0,%d)", errUsage, src, g.N())
	}
	st := g.Degrees()
	ecc := graph.Eccentricity(g, int32(src))
	fmt.Fprintf(out, "graph: %v  (attempt %d, degrees min=%d mean=%.1f max=%d, source ecc=%d)\n",
		g, tries, st.Min, st.Mean, st.Max, ecc)

	var jw *trace.JSONLWriter
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		jw = trace.NewJSONLWriter(f)
	}

	var res radio.TracedResult
	switch algo {
	case "centralized":
		sched, tr, err := core.BuildCentralizedSchedule(g, int32(src), d, core.DefaultCentralizedConfig(seed))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "schedule phases: %s\n", tr)
		if saveSched != "" {
			f, err := os.Create(saveSched)
			if err != nil {
				return err
			}
			if _, err := sched.WriteTo(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "schedule written to %s\n", saveSched)
		}
		e := radio.NewEngine(g, int32(src), radio.StrictInformed)
		if jw != nil {
			e.Attach(jw)
		}
		res, err = radio.ExecuteScheduleTrace(e, sched)
		if err != nil {
			return err
		}
	case "distributed", "decay", "aloha":
		var p radio.Protocol
		switch algo {
		case "distributed":
			p = core.NewDistributedProtocol(n, d)
		case "decay":
			p = protocols.NewDecay(n)
		case "aloha":
			p = protocols.NewAloha(d)
		}
		e := radio.NewEngine(g, int32(src), radio.StrictInformed)
		if jw != nil {
			e.Attach(jw)
		}
		res = radio.RunProtocolTrace(e, p, core.MaxRoundsFor(n), rng)
	default:
		return fmt.Errorf("%w: unknown algorithm %q", errUsage, algo)
	}

	if showTrace {
		for _, rec := range res.Trace {
			fmt.Fprintln(out, rec)
		}
	}
	if jw != nil {
		if err := jw.Err(); err != nil {
			return fmt.Errorf("writing %s: %w", traceOut, err)
		}
		fmt.Fprintf(out, "trace written to %s (%d records)\n", traceOut, len(res.Trace))
	}
	if len(res.Trace) > 1 {
		curve := make([]float64, len(res.Trace))
		for i, rec := range res.Trace {
			curve[i] = float64(rec.Informed)
		}
		fmt.Fprintf(out, "\nprogress %s (informed per round)\n", viz.Sparkline(curve))
	}

	if jsonOut {
		b, err := json.MarshalIndent(summary{
			Algo:               algo,
			N:                  g.N(),
			M:                  g.M(),
			D:                  d,
			Src:                src,
			Seed:               seed,
			Attempts:           tries,
			DegreeMin:          st.Min,
			DegreeMean:         st.Mean,
			DegreeMax:          st.Max,
			SourceEccentricity: ecc,
			Completed:          res.Completed,
			Rounds:             res.Rounds,
			Informed:           res.Informed,
			Transmissions:      res.Stats.Transmissions,
			Deliveries:         res.Stats.Deliveries,
			Collisions:         res.Stats.Collisions,
			BoundCentralized:   core.CentralizedBound(n, d),
			BoundDistributed:   core.DistributedBound(n),
		}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(b))
		return nil
	}
	fmt.Fprintf(stdout, "\ncompleted=%v rounds=%d informed=%d/%d\n", res.Completed, res.Rounds, res.Informed, res.N)
	fmt.Fprintf(stdout, "stats: %d transmissions, %d clean deliveries, %d collisions\n",
		res.Stats.Transmissions, res.Stats.Deliveries, res.Stats.Collisions)
	fmt.Fprintf(stdout, "bounds: centralized %.1f, distributed (ln n) %.1f\n",
		core.CentralizedBound(n, d), core.DistributedBound(n))
	return nil
}
