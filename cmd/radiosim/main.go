// Command radiosim simulates one radio broadcast on a random graph and
// prints a per-round progress trace.
//
// Usage:
//
//	radiosim [-n N] [-d D] [-algo distributed|centralized|decay|aloha]
//	         [-src V] [-seed S] [-trace] [-trace-out FILE] [-json]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// -trace prints the per-round records; -trace-out streams them as JSON
// Lines (one begin record, one record per round, one end record) to FILE
// for offline analysis. -json replaces the human-readable output with a
// single machine-readable JSON summary object on stdout (progress chatter
// moves to stderr), for scripting:
//
//	radiosim -n 1000 -d 15 -json | jq .rounds
//
// -cpuprofile and -memprofile write pprof profiles
// covering the simulation (graph sampling through completion), for
// hot-path work on the engine:
//
//	radiosim -n 100000 -d 25 -cpuprofile cpu.out
//	go tool pprof -top cpu.out
//
// Example:
//
//	radiosim -n 100000 -d 25 -algo centralized -trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/viz"
	"repro/internal/xrand"
)

// summary is the machine-readable run summary emitted by -json: one JSON
// object holding the graph that was sampled, the outcome of the broadcast
// and the paper's round bounds for comparison. Fields are stable; scripts
// may rely on them.
type summary struct {
	Algo string `json:"algo"`
	N    int    `json:"n"`
	M    int    `json:"m"`
	// D is the requested expected average degree d = pn; DegreeMean is
	// what the sampled graph actually realized.
	D    float64 `json:"d"`
	Src  int     `json:"src"`
	Seed uint64  `json:"seed"`

	Attempts           int     `json:"attempts"` // connected-graph sampling attempts
	DegreeMin          int     `json:"degree_min"`
	DegreeMean         float64 `json:"degree_mean"`
	DegreeMax          int     `json:"degree_max"`
	SourceEccentricity int     `json:"source_eccentricity"`

	Completed     bool `json:"completed"`
	Rounds        int  `json:"rounds"`
	Informed      int  `json:"informed"`
	Transmissions int  `json:"transmissions"`
	Deliveries    int  `json:"deliveries"`
	Collisions    int  `json:"collisions"`

	BoundCentralized float64 `json:"bound_centralized"`
	BoundDistributed float64 `json:"bound_distributed"`
}

func main() {
	n := flag.Int("n", 10000, "number of nodes")
	d := flag.Float64("d", 20, "expected average degree d = pn")
	algo := flag.String("algo", "distributed", "algorithm: distributed, centralized, decay, aloha")
	src := flag.Int("src", 0, "broadcast source vertex")
	seed := flag.Uint64("seed", 1, "random seed")
	showTrace := flag.Bool("trace", false, "print per-round informed counts")
	traceOut := flag.String("trace-out", "", "write per-round records as JSON Lines to this file")
	saveSched := flag.String("save-schedule", "", "write the centralized schedule to this file")
	jsonOut := flag.Bool("json", false, "print one machine-readable JSON summary object instead of text")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// In -json mode stdout carries exactly one JSON object; everything
	// human-readable (progress, traces, sparkline) moves to stderr.
	out := io.Writer(os.Stdout)
	if *jsonOut {
		out = os.Stderr
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	rng := xrand.New(*seed)
	fmt.Fprintf(out, "sampling connected G(n=%d, p=d/n) with d=%.1f ...\n", *n, *d)
	g, tries, ok := gen.ConnectedGnp(*n, gen.PForDegree(*n, *d), rng, 100)
	if !ok {
		fmt.Fprintln(os.Stderr, "radiosim: could not sample a connected graph; increase -d")
		os.Exit(1)
	}
	st := g.Degrees()
	ecc := graph.Eccentricity(g, int32(*src))
	fmt.Fprintf(out, "graph: %v  (attempt %d, degrees min=%d mean=%.1f max=%d, source ecc=%d)\n",
		g, tries, st.Min, st.Mean, st.Max, ecc)

	var jw *trace.JSONLWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		jw = trace.NewJSONLWriter(f)
	}

	var res radio.TracedResult
	switch *algo {
	case "centralized":
		sched, tr, err := core.BuildCentralizedSchedule(g, int32(*src), *d, core.DefaultCentralizedConfig(*seed))
		if err != nil {
			fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "schedule phases: %s\n", tr)
		if *saveSched != "" {
			f, err := os.Create(*saveSched)
			if err != nil {
				fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
				os.Exit(1)
			}
			if _, err := sched.WriteTo(f); err != nil {
				fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(out, "schedule written to %s\n", *saveSched)
		}
		e := radio.NewEngine(g, int32(*src), radio.StrictInformed)
		if jw != nil {
			e.Attach(jw)
		}
		res, err = radio.ExecuteScheduleTrace(e, sched)
		if err != nil {
			fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
			os.Exit(1)
		}
	case "distributed", "decay", "aloha":
		var p radio.Protocol
		switch *algo {
		case "distributed":
			p = core.NewDistributedProtocol(*n, *d)
		case "decay":
			p = protocols.NewDecay(*n)
		case "aloha":
			p = protocols.NewAloha(*d)
		}
		e := radio.NewEngine(g, int32(*src), radio.StrictInformed)
		if jw != nil {
			e.Attach(jw)
		}
		res = radio.RunProtocolTrace(e, p, core.MaxRoundsFor(*n), rng)
	default:
		fmt.Fprintf(os.Stderr, "radiosim: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	if *showTrace {
		for _, rec := range res.Trace {
			fmt.Fprintln(out, rec)
		}
	}
	if jw != nil {
		if err := jw.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "radiosim: writing %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "trace written to %s (%d records)\n", *traceOut, len(res.Trace))
	}
	if len(res.Trace) > 1 {
		curve := make([]float64, len(res.Trace))
		for i, rec := range res.Trace {
			curve[i] = float64(rec.Informed)
		}
		fmt.Fprintf(out, "\nprogress %s (informed per round)\n", viz.Sparkline(curve))
	}

	if *jsonOut {
		b, err := json.MarshalIndent(summary{
			Algo:               *algo,
			N:                  g.N(),
			M:                  g.M(),
			D:                  *d,
			Src:                *src,
			Seed:               *seed,
			Attempts:           tries,
			DegreeMin:          st.Min,
			DegreeMean:         st.Mean,
			DegreeMax:          st.Max,
			SourceEccentricity: ecc,
			Completed:          res.Completed,
			Rounds:             res.Rounds,
			Informed:           res.Informed,
			Transmissions:      res.Stats.Transmissions,
			Deliveries:         res.Stats.Deliveries,
			Collisions:         res.Stats.Collisions,
			BoundCentralized:   core.CentralizedBound(*n, *d),
			BoundDistributed:   core.DistributedBound(*n),
		}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "radiosim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Printf("\ncompleted=%v rounds=%d informed=%d/%d\n", res.Completed, res.Rounds, res.Informed, res.N)
	fmt.Printf("stats: %d transmissions, %d clean deliveries, %d collisions\n",
		res.Stats.Transmissions, res.Stats.Deliveries, res.Stats.Collisions)
	fmt.Printf("bounds: centralized %.1f, distributed (ln n) %.1f\n",
		core.CentralizedBound(*n, *d), core.DistributedBound(*n))
}
