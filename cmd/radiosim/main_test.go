package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes run in-process and returns captured stdout, stderr and
// the error — the same three observables a shell pipeline sees.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var o, e bytes.Buffer
	err = run(args, &o, &e)
	return o.String(), e.String(), err
}

// TestJSONModeStdoutIsPureJSON is the contract `radiosim -json | jq`
// relies on: stdout holds exactly one parseable JSON object, all the
// human-readable chatter lands on stderr.
func TestJSONModeStdoutIsPureJSON(t *testing.T) {
	for _, algo := range []string{"distributed", "centralized", "decay", "aloha"} {
		t.Run(algo, func(t *testing.T) {
			stdout, stderr, err := runCLI(t,
				"-n", "60", "-d", "8", "-seed", "3", "-algo", algo, "-json", "-trace")
			if err != nil {
				t.Fatalf("run failed: %v\nstderr:\n%s", err, stderr)
			}
			var s summary
			dec := json.NewDecoder(strings.NewReader(stdout))
			if err := dec.Decode(&s); err != nil {
				t.Fatalf("stdout is not JSON: %v\nstdout:\n%s", err, stdout)
			}
			if dec.More() {
				t.Fatalf("stdout holds more than one JSON value:\n%s", stdout)
			}
			if s.Algo != algo || s.N != 60 || s.Seed != 3 {
				t.Fatalf("summary echoes wrong inputs: %+v", s)
			}
			if !s.Completed || s.Informed != s.N {
				t.Fatalf("broadcast should complete on n=60 d=8: %+v", s)
			}
			if stderr == "" {
				t.Fatal("chatter (sampling/graph lines) should go to stderr in -json mode")
			}
		})
	}
}

// TestJSONModeErrorsLeaveStdoutEmpty pins the error contract: any failure
// must produce an error (nonzero exit in main) and an EMPTY stdout, so a
// downstream consumer never parses half a summary.
func TestJSONModeErrorsLeaveStdoutEmpty(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		usage bool // should map to exit status 2
	}{
		{"unknown-algo", []string{"-n", "20", "-d", "5", "-json", "-algo", "nope"}, true},
		{"src-out-of-range", []string{"-n", "20", "-d", "5", "-json", "-src", "99"}, true},
		{"unsampleable", []string{"-n", "200", "-d", "0.05", "-json"}, false},
		{"bad-flag", []string{"-json", "-n", "not-a-number"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, _, err := runCLI(t, tc.args...)
			if err == nil {
				t.Fatal("want an error")
			}
			if stdout != "" {
				t.Fatalf("stdout must stay empty on failure, got:\n%s", stdout)
			}
			if got := errors.Is(err, errUsage); got != tc.usage && tc.name != "bad-flag" {
				t.Fatalf("errors.Is(err, errUsage) = %v, want %v (err: %v)", got, tc.usage, err)
			}
		})
	}
}

// TestTextMode sanity-checks the default human output still works and
// lands on stdout.
func TestTextMode(t *testing.T) {
	stdout, _, err := runCLI(t, "-n", "40", "-d", "8", "-seed", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "completed=true") || !strings.Contains(stdout, "bounds:") {
		t.Fatalf("unexpected text output:\n%s", stdout)
	}
}

// TestSaveScheduleAndTraceOut exercises the file-writing paths through
// run so their defers (closes) are covered.
func TestSaveScheduleAndTraceOut(t *testing.T) {
	dir := t.TempDir()
	sched := filepath.Join(dir, "sched.txt")
	trc := filepath.Join(dir, "trace.jsonl")
	stdout, _, err := runCLI(t,
		"-n", "40", "-d", "8", "-seed", "2", "-algo", "centralized",
		"-json", "-save-schedule", sched, "-trace-out", trc)
	if err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal([]byte(stdout), &s); err != nil {
		t.Fatalf("stdout not JSON with -save-schedule/-trace-out: %v", err)
	}
}
