// Command graphtool generates random graphs and reports the structural
// statistics of Section 2 of the paper (degree concentration, BFS layer
// profile, Lemma 3 tree-likeness).
//
// Usage:
//
//	graphtool [-n N] [-d D] [-model gnp|gnm|regular|geometric|hypercube]
//	          [-seed S] [-src V] [-csv]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/structure"
	"repro/internal/table"
	"repro/internal/viz"
	"repro/internal/xrand"
)

func main() {
	n := flag.Int("n", 10000, "number of nodes (for hypercube: rounded down to a power of two)")
	d := flag.Float64("d", 20, "expected average degree (gnp/gnm/regular) or radius·n heuristic (geometric)")
	model := flag.String("model", "gnp", "graph model: gnp, gnm, regular, geometric, hypercube")
	seed := flag.Uint64("seed", 1, "random seed")
	src := flag.Int("src", 0, "BFS source for the layer profile")
	csv := flag.Bool("csv", false, "emit the layer profile as CSV")
	save := flag.String("save", "", "write the generated graph (edge-list format) to this file")
	load := flag.String("load", "", "analyse a graph from this edge-list file instead of generating one")
	flag.Parse()

	rng := xrand.New(*seed)
	var g *graph.Graph
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphtool: %v\n", err)
			os.Exit(1)
		}
		g, err = graph.ReadGraph(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphtool: %v\n", err)
			os.Exit(1)
		}
		analyse(g, *src, *csv)
		return
	}
	switch *model {
	case "gnp":
		g = gen.Gnp(*n, gen.PForDegree(*n, *d), rng)
	case "gnm":
		g = gen.Gnm(*n, int(*d*float64(*n)/2), rng)
	case "regular":
		dd := int(*d)
		if (*n*dd)%2 == 1 {
			dd++
		}
		g = gen.RandomRegular(*n, dd, rng)
	case "geometric":
		radius := math.Sqrt(*d / (math.Pi * float64(*n)))
		g = gen.Geometric(*n, radius, rng)
	case "hypercube":
		dim := 0
		for (1 << (dim + 1)) <= *n {
			dim++
		}
		g = gen.Hypercube(dim)
	default:
		fmt.Fprintf(os.Stderr, "graphtool: unknown model %q\n", *model)
		os.Exit(2)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphtool: %v\n", err)
			os.Exit(1)
		}
		if _, err := g.WriteTo(f); err != nil {
			fmt.Fprintf(os.Stderr, "graphtool: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "graphtool: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("graph written to %s\n", *save)
	}
	analyse(g, *src, *csv)
}

// analyse prints the degree summary, layer profile and degree histogram.
func analyse(g *graph.Graph, src int, csv bool) {
	st := g.Degrees()
	fmt.Printf("%v  degrees: min=%d mean=%.2f max=%d  connected=%v\n",
		g, st.Min, st.Mean, st.Max, graph.IsConnected(g))
	comps := graph.Components(g)
	fmt.Printf("components: %d (largest %d)\n", len(comps), len(graph.LargestComponent(g)))

	if src >= g.N() || src < 0 {
		fmt.Fprintln(os.Stderr, "graphtool: -src out of range")
		os.Exit(2)
	}
	prof := structure.AnalyzeLayers(g, int32(src))
	t := table.New(fmt.Sprintf("BFS layer profile from %d (Lemma 3 statistics)", src),
		"i", "|T_i|", "intra-edges", "multi-parent", "share-1-next", "share-2-next")
	for _, l := range prof.Layers {
		t.AddRow(l.Depth, l.Size, l.IntraEdges, l.MultiParent, l.ShareOneNext, l.ShareTwoNext)
	}
	t.AddNote("reachable %d/%d; layers of size >= n/d^3: %d", prof.Reachable, g.N(),
		prof.BigLayerCount(g.N(), math.Max(st.Mean, 2)))
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.String())
	}

	// Degree distribution as a terminal histogram.
	degrees := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		degrees[v] = g.Degree(int32(v))
	}
	labels, counts := viz.Buckets(degrees, 12)
	fmt.Printf("\ndegree distribution (clustering coefficient %.4f):\n%s",
		graph.GlobalClustering(g), viz.Histogram(labels, counts, 48))
}
