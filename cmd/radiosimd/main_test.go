package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonInProcess drives run() directly: boot on a random port, fire
// a run and a stream request, then SIGTERM ourselves and check the drain
// completes cleanly.
func TestDaemonInProcess(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-grace", "2s"}, &out, os.Stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"n": 300, "d": 10, "graph_seed": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Completed bool `json:"completed"`
		Rounds    int  `json:"rounds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !res.Completed {
		t.Fatalf("run: status %d result %+v", resp.StatusCode, res)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained, bye") {
		t.Fatalf("missing drain farewell in output:\n%s", out.String())
	}
}

// TestDaemonSmoke is the end-to-end binary smoke test (the Makefile
// serve-smoke target runs it): build radiosimd, boot it, fire a blocking
// run, a streaming run and a metrics scrape over real HTTP, then SIGTERM
// and require a clean drain and exit code 0.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "radiosimd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building radiosimd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-grace", "2s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimSpace(line[i+len(marker):])
	// Drain the rest of stdout in the background so the child never
	// blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()

	resp, err := http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"n": 400, "d": 10, "graph_seed": 1, "seed": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Completed bool `json:"completed"`
		Informed  int  `json:"informed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !res.Completed || res.Informed != 400 {
		t.Fatalf("run: status %d result %+v", resp.StatusCode, res)
	}

	resp, err = http.Post(base+"/v1/run/stream", "application/json",
		strings.NewReader(`{"n": 400, "d": 10, "graph_seed": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	lastLine := ""
	ssc := bufio.NewScanner(resp.Body)
	for ssc.Scan() {
		if !json.Valid(ssc.Bytes()) {
			t.Fatalf("stream line %d is not JSON: %q", lines, ssc.Text())
		}
		lines++
		lastLine = ssc.Text()
	}
	resp.Body.Close()
	if err := ssc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < 4 || !strings.Contains(lastLine, `"type":"result"`) {
		t.Fatalf("stream produced %d lines, last %q", lines, lastLine)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Both runs used the same graph key: one build, one cache hit.
	if metrics.Cache.Misses != 1 || metrics.Cache.Hits != 1 {
		t.Fatalf("cache misses=%d hits=%d, want 1 and 1", metrics.Cache.Misses, metrics.Cache.Hits)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("radiosimd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("radiosimd did not exit after SIGTERM")
	}
	fmt.Println("serve-smoke: ok")
}
