// Command radiosimd serves the radio-broadcast simulator over HTTP/JSON:
// a long-running daemon wrapping the repro.Run facade and the campaign
// runner behind a bounded worker pool with an LRU graph cache.
//
// Usage:
//
//	radiosimd [-addr :8357] [-workers N] [-queue N] [-cache N]
//	          [-campaign-workers N] [-shard-workers N] [-timeout D]
//	          [-max-timeout D] [-grace D] [-shard-start-delay D]
//
// Endpoints:
//
//	POST /v1/run          run one simulation, JSON in/out
//	POST /v1/run/stream   same, streaming per-round records as JSON Lines
//	POST /v1/campaign     submit a campaign spec; returns an id to poll
//	GET  /v1/campaign/{id} campaign state and, once done, the report
//	POST /v1/shard/lease  accept a cluster coordinator's shard lease offer
//	                      (429 + Retry-After when every shard slot is busy;
//	                      see 'campaign cluster' and internal/cluster)
//	GET  /healthz         liveness probe
//	GET  /metrics         pool, cache, latency, campaign and shard counters
//
// A full queue answers 429 with Retry-After — the daemon applies
// backpressure instead of queueing unboundedly. SIGINT/SIGTERM drain
// gracefully: intake stops, running work gets -grace to finish, then
// everything still running is canceled through its context (simulations
// stop cooperatively between rounds).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

var errUsage = errors.New("usage error")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "radiosimd:", err)
		}
		if errors.Is(err, errUsage) || errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a termination signal arrives
// and the drain completes. ready, when non-nil, receives the bound
// address once the listener is up (tests bind :0 and need the port).
func run(args []string, stdout, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("radiosimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8357", "listen address")
	workers := fs.Int("workers", 0, "simulation worker pool size (0 = default)")
	queue := fs.Int("queue", 0, "pending-request queue bound (0 = default)")
	cache := fs.Int("cache", 0, "graph LRU capacity (0 = default)")
	campaignWorkers := fs.Int("campaign-workers", 0, "concurrently running campaigns (0 = default)")
	shardWorkers := fs.Int("shard-workers", 0, "concurrently running cluster shards; more lease offers get 429 (0 = default)")
	shardStartDelay := fs.Duration("shard-start-delay", 0, "delay every admitted shard before its first trial (chaos/testing knob)")
	timeout := fs.Duration("timeout", 0, "default per-run deadline (0 = default)")
	maxTimeout := fs.Duration("max-timeout", 0, "cap on request-supplied deadlines (0 = default)")
	grace := fs.Duration("grace", 10*time.Second, "drain grace on shutdown before canceling running work")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	s := serve.NewServer(serve.Config{
		Workers:         *workers,
		QueueCap:        *queue,
		CacheEntries:    *cache,
		CampaignWorkers: *campaignWorkers,
		ShardWorkers:    *shardWorkers,
		ShardStartDelay: *shardStartDelay,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}

	fmt.Fprintf(stdout, "radiosimd: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "radiosimd: %v, draining (grace %s)\n", sig, *grace)
	case err := <-serveErr:
		return err
	}

	// Drain: the serve layer stops intake, lets running work use the
	// grace, then cancels; the HTTP server waits for the handlers those
	// jobs are attached to.
	drained := make(chan struct{})
	go func() {
		s.Shutdown(*grace)
		close(drained)
	}()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace+15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("draining connections: %w", err)
	}
	<-drained
	fmt.Fprintln(stdout, "radiosimd: drained, bye")
	return nil
}
