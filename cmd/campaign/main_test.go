package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestParsePointRange: -points parsing is strict — Sscanf used to accept
// "0:5x" and negative bounds silently.
func TestParsePointRange(t *testing.T) {
	good := map[string][2]int{
		"0:5":   {0, 5},
		"1:2":   {1, 2},
		"10:42": {10, 42},
	}
	for in, want := range good {
		lo, hi, err := parsePointRange(in)
		if err != nil || lo != want[0] || hi != want[1] {
			t.Errorf("parsePointRange(%q) = (%d, %d, %v), want (%d, %d, nil)", in, lo, hi, err, want[0], want[1])
		}
	}
	bad := []string{
		"",      // empty
		"0:5x",  // trailing garbage after HI
		"x0:5",  // garbage before LO
		"0x:5",  // garbage after LO
		"-1:3",  // negative LO
		"0:-3",  // negative HI
		"3:1",   // inverted
		"3:3",   // empty range
		"1:2:3", // too many fields
		"5",     // no colon
		":5",    // missing LO
		"5:",    // missing HI
		"1.5:3", // not an integer
		"0: 5",  // embedded space
	}
	for _, in := range bad {
		if lo, hi, err := parsePointRange(in); err == nil {
			t.Errorf("parsePointRange(%q) = (%d, %d, nil), want error", in, lo, hi)
		}
	}
}

// buildBinary compiles a command package into dir and returns the path.
func buildBinary(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, pkg)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startWorker boots a radiosimd worker process and returns its base URL
// plus the process handle.
func startWorker(t *testing.T, bin string, extraArgs ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-grace", "2s"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("worker produced no startup line: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected worker startup line %q", line)
	}
	go func() { // keep the pipe drained
		for sc.Scan() {
		}
	}()
	return "http://" + strings.TrimSpace(line[i+len(marker):]), cmd
}

// awaitLeaseAccepted polls a worker's /metrics until it has admitted at
// least one shard lease.
func awaitLeaseAccepted(t *testing.T, base string) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		accepted := func() int64 {
			resp, err := http.Get(base + "/metrics")
			if err != nil {
				return 0
			}
			defer resp.Body.Close()
			var m struct {
				Shards struct {
					Accepted int64 `json:"accepted"`
				} `json:"shards"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
				return 0
			}
			return m.Shards.Accepted
		}()
		if accepted >= 1 {
			return
		}
		select {
		case <-deadline:
			t.Fatal("worker never admitted a shard lease")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestClusterSmoke is the end-to-end distributed campaign smoke test
// (the Makefile cluster-smoke target runs it): build both binaries, boot
// a coordinator and two workers, SIGKILL one worker while it holds a
// lease mid-shard, and require the distributed report to come out
// byte-identical to a local single-process run of the same spec.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	campaignBin := buildBinary(t, dir, "campaign", ".")
	radiosimdBin := buildBinary(t, dir, "radiosimd", "repro/cmd/radiosimd")

	// The spec comes from the CLI itself, like a user would get it.
	specPath := filepath.Join(dir, "smoke.json")
	specOut, err := exec.Command(campaignBin, "spec", "-preset", "smoke", "-seed", "2006").Output()
	if err != nil {
		t.Fatalf("campaign spec: %v", err)
	}
	if err := os.WriteFile(specPath, specOut, 0o644); err != nil {
		t.Fatal(err)
	}

	// The local ground truth.
	local := exec.Command(campaignBin, "run", "-spec", specPath, "-out", filepath.Join(dir, "ck-local"), "-json", "-quiet")
	localReport, err := local.Output()
	if err != nil {
		t.Fatalf("local campaign run: %v", err)
	}

	// Worker A holds every shard for 10s before its first trial — long
	// enough that the SIGKILL below provably lands mid-shard, while its
	// heartbeats keep the lease alive until the kill.
	urlA, workerA := startWorker(t, radiosimdBin, "-shard-workers", "1", "-shard-start-delay", "10s")
	urlB, _ := startWorker(t, radiosimdBin, "-shard-workers", "1")

	clusterCmd := exec.Command(campaignBin, "cluster",
		"-spec", specPath,
		"-out", filepath.Join(dir, "ck-cluster"),
		"-peers", urlA+","+urlB,
		"-ttl", "700ms",
		"-json")
	var clusterReport, clusterLog bytes.Buffer
	clusterCmd.Stdout = &clusterReport
	clusterCmd.Stderr = &clusterLog
	if err := clusterCmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clusterCmd.Process.Kill() })

	// Kill worker A the moment it provably holds a lease: its shard can
	// never have produced a result (10s start delay), so the coordinator
	// MUST recover through lease expiry and reassignment.
	awaitLeaseAccepted(t, urlA)
	if err := workerA.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- clusterCmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("campaign cluster exited non-zero: %v\nstderr:\n%s", err, clusterLog.String())
		}
	case <-time.After(120 * time.Second):
		t.Fatalf("campaign cluster never finished\nstderr so far:\n%s", clusterLog.String())
	}

	if !bytes.Equal(clusterReport.Bytes(), localReport) {
		t.Errorf("distributed report is not byte-identical to the local run\ncluster:\n%s\nlocal:\n%s",
			clusterReport.Bytes(), localReport)
	}
	// The coordinator's summary line proves the recovery path actually
	// ran: the killed worker's lease expired and was reassigned.
	summary := clusterLog.String()
	for _, counter := range []string{"expired", "reassigned"} {
		re := regexp.MustCompile(`(\d+) ` + counter)
		m := re.FindStringSubmatch(summary)
		if m == nil {
			t.Fatalf("coordinator summary missing %q counter:\n%s", counter, summary)
		}
		if n, _ := strconv.Atoi(m[1]); n < 1 {
			t.Errorf("coordinator summary reports %s %s, want >= 1 (the kill must exercise expiry + reassignment):\n%s",
				m[1], counter, summary)
		}
	}
	fmt.Println("cluster-smoke: ok")
}
