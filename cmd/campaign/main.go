// Command campaign orchestrates resumable, fault-tolerant Monte-Carlo
// campaigns over the radio-broadcast simulators (see internal/campaign).
//
// Usage:
//
//	campaign spec   -preset e1|e4|collision-rate|scale|smoke|lane-smoke
//	                [-scale small|medium|full] [-seed S] [-trials N]
//	campaign run    -spec FILE -out DIR [-workers N] [-lanes N] [-resume]
//	                [-halt-after N] [-points LO:HI] [-json] [-quiet]
//	campaign resume -out DIR [-workers N] [-lanes N] [-json] [-quiet]
//	campaign report -out DIR [-json]
//	campaign merge  -out DIR [-allow-overlap] SRC1 SRC2 ...
//	campaign cluster -spec FILE -peers URL1,URL2 [-out DIR] [-addr A]
//	                 [-advertise URL] [-shard-points N] [-ttl D]
//	                 [-max-attempts N] [-leases-per-worker N] [-lanes N]
//	                 [-resume] [-json] [-quiet]
//
// `spec` prints a preset campaign spec as JSON (edit it, or write your
// own). `run` executes a spec, streaming completed trials into sharded
// JSONL checkpoint files under -out; interrupt it (^C, or -halt-after for
// a deterministic cut) and `resume` finishes exactly the missing trials —
// the final report is byte-identical to an uninterrupted run. `report`
// recomputes the report from a checkpoint without running anything.
// `merge` unions checkpoints of the same spec recorded by different
// machines (run with disjoint -points slices) into one directory; sources
// recording the same (point, trial) indicate overlapping slices and fail
// the merge unless -allow-overlap.
//
// `cluster` runs a campaign across a fleet of radiosimd workers: it
// slices the point grid into shards, offers time-bounded leases to the
// workers, heartbeat-tracks their liveness, reassigns expired or failed
// leases with bounded retries, and aggregates the returned samples into
// a report byte-identical to a local `campaign run` of the same spec —
// including runs where a worker is killed mid-shard. See internal/cluster
// and DESIGN.md §9.
//
// Fixed-graph points of the lane-capable kinds (distributed, decay,
// aloha) run on the bit-parallel lane engine, -lanes trials per block
// (0 = auto, 1 = force scalar). The report is byte-identical for every
// lane setting >= 2 and 0; scalar runs draw a different (but
// distributionally identical) stream, so a checkpoint records its engine
// and refuses to resume a lane-sensitive spec under the other one.
//
// Example — the kill-and-resume loop the CI smoke job runs:
//
//	campaign spec -preset smoke -seed 2006 > smoke.json
//	campaign run -spec smoke.json -out ck -halt-after 3
//	campaign run -spec smoke.json -out ck -resume -json > report.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
)

// specJSON renders a spec as indented JSON with a trailing newline.
func specJSON(s *campaign.Spec) ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "spec":
		err = cmdSpec(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:], false)
	case "resume":
		err = cmdRun(os.Args[2:], true)
	case "report":
		err = cmdReport(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  campaign spec   -preset NAME [-scale small|medium|full] [-seed S] [-trials N]
  campaign run    -spec FILE -out DIR [-workers N] [-lanes N] [-resume]
                  [-halt-after N] [-points LO:HI] [-json] [-quiet]
  campaign resume -out DIR [-workers N] [-lanes N] [-json] [-quiet]
  campaign report -out DIR [-json]
  campaign merge  -out DIR [-allow-overlap] SRC1 SRC2 ...
  campaign cluster -spec FILE -peers URL1,URL2 [-out DIR] [-addr A] [-advertise URL]
                   [-shard-points N] [-ttl D] [-max-attempts N]
                   [-leases-per-worker N] [-lanes N] [-resume] [-json] [-quiet]`)
}

func cmdSpec(args []string) error {
	fs := flag.NewFlagSet("campaign spec", flag.ExitOnError)
	preset := fs.String("preset", "", "preset name (required)")
	scale := fs.String("scale", "small", "ladder scale: small, medium or full")
	seed := fs.Uint64("seed", 2006, "campaign base seed")
	trials := fs.Int("trials", 0, "override per-point trial budget (0 = preset default)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: campaign spec -preset NAME [-scale small|medium|full] [-seed S] [-trials N]")
		fs.PrintDefaults()
		fmt.Fprintln(os.Stderr, `
Lane fast path: points whose trial sets "fixed_graph": true with kind
"distributed", "decay" or "aloha" dispatch in bit-parallel lane blocks
under 'campaign run -lanes' (0 = auto, 1 = force scalar). Every other
kind — and every fresh-graph point — runs on the scalar per-trial
engine regardless of -lanes. The 'lane-smoke' preset is an all-lane
grid for exercising this path.`)
	}
	fs.Parse(args)
	if *preset == "" {
		return fmt.Errorf("spec: -preset is required (have %v)", campaign.Presets())
	}
	spec, err := campaign.Preset(*preset, *scale, *seed, *trials)
	if err != nil {
		return err
	}
	b, err := specJSON(spec)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}

func cmdRun(args []string, resume bool) error {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec JSON ('-' for stdin; resume reads it from the checkpoint)")
	out := fs.String("out", "", "checkpoint directory (required)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); the report does not depend on it")
	lanesN := fs.Int("lanes", 0, "lane-block size for fixed-graph distributed/decay/aloha points (0 = auto, 1 = force scalar); the report is identical for every value >= 2 and 0")
	resumeFlag := fs.Bool("resume", false, "resume from the checkpoint in -out, running only missing trials")
	haltAfter := fs.Int("halt-after", 0, "halt after N new samples (deterministic interruption for smoke tests)")
	points := fs.String("points", "", "restrict to grid points LO:HI (half-open) for cross-machine sharding")
	jsonOut := fs.Bool("json", false, "print the final report as JSON instead of text")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("run: -out is required")
	}
	resume = resume || *resumeFlag

	var spec *campaign.Spec
	var err error
	switch {
	case *specPath != "":
		var b []byte
		if *specPath == "-" {
			b, err = io.ReadAll(os.Stdin)
		} else {
			b, err = os.ReadFile(*specPath)
		}
		if err != nil {
			return err
		}
		spec, err = campaign.ParseSpec(b)
		if err != nil {
			return err
		}
	case resume:
		m, err := campaign.ReadManifest(*out)
		if err != nil {
			return fmt.Errorf("resume: %w (pass -spec to start a fresh run)", err)
		}
		spec = m.Spec
		if err := spec.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("run: -spec is required")
	}

	opt := campaign.Options{
		Workers:   *workers,
		Dir:       *out,
		Resume:    resume,
		HaltAfter: *haltAfter,
		Lanes:     *lanesN,
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}
	if *points != "" {
		opt.PointLo, opt.PointHi, err = parsePointRange(*points)
		if err != nil {
			return fmt.Errorf("run: %w", err)
		}
	}

	// ^C halts gracefully: in-flight trials finish, the checkpoint is
	// flushed, and the partial report is printed; resume picks up there.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	interrupt := make(chan struct{})
	go func() {
		if _, ok := <-sig; ok {
			fmt.Fprintln(os.Stderr, "campaign: interrupted; flushing checkpoint (^C again to kill)")
			close(interrupt)
			signal.Stop(sig)
		}
	}()
	opt.Interrupt = interrupt

	report, err := campaign.Run(spec, opt)
	if err != nil {
		return err
	}
	return printReport(report, *jsonOut)
}

// parsePointRange parses a -points value strictly: exactly "LO:HI" with
// decimal integers, 0 <= LO < HI, and nothing else — no trailing garbage
// (Sscanf would accept "0:5x"), no negative bounds, no empty or inverted
// ranges. The upper bound is checked against the grid by campaign.Run,
// which knows the spec.
func parsePointRange(s string) (lo, hi int, err error) {
	bad := func(why string) (int, int, error) {
		return 0, 0, fmt.Errorf("-points must be LO:HI (half-open, 0 <= LO < HI), got %q: %s", s, why)
	}
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return bad("missing ':'")
	}
	if strings.IndexByte(s[i+1:], ':') >= 0 {
		return bad("more than one ':'")
	}
	lo, loErr := strconv.Atoi(s[:i])
	hi, hiErr := strconv.Atoi(s[i+1:])
	if loErr != nil || hiErr != nil {
		return bad("bounds must be decimal integers")
	}
	if lo < 0 || hi < 0 {
		return bad("bounds must be non-negative")
	}
	if lo >= hi {
		return bad("LO must be below HI")
	}
	return lo, hi, nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("campaign report", flag.ExitOnError)
	out := fs.String("out", "", "checkpoint directory (required)")
	jsonOut := fs.Bool("json", false, "print the report as JSON instead of text")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("report: -out is required")
	}
	report, err := campaign.ReportDir(*out)
	if err != nil {
		return err
	}
	return printReport(report, *jsonOut)
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("campaign merge", flag.ExitOnError)
	out := fs.String("out", "", "destination checkpoint directory (required)")
	allowOverlap := fs.Bool("allow-overlap", false, "permit sources recording identical duplicates of the same (point, trial) — overlapping -points slices — instead of failing the merge")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("merge: -out is required")
	}
	srcs := fs.Args()
	if len(srcs) == 0 {
		return fmt.Errorf("merge: at least one source checkpoint directory is required")
	}
	m, err := campaign.MergeOverlapping(*out, srcs, *allowOverlap)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign: merged %d samples from %d checkpoints into %s (complete=%v)\n",
		m.Recorded, len(srcs), *out, m.Complete)
	return nil
}

// cmdCluster drives a campaign across a fleet of radiosimd workers as
// the cluster coordinator (see internal/cluster).
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("campaign cluster", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec JSON ('-' for stdin; resume reads it from the checkpoint)")
	out := fs.String("out", "", "coordinator checkpoint directory (optional; required for -resume)")
	addr := fs.String("addr", "127.0.0.1:0", "coordinator listen address for worker callbacks")
	advertise := fs.String("advertise", "", "coordinator base URL as workers reach it (default http://<bound addr>)")
	peers := fs.String("peers", "", "comma-separated radiosimd worker base URLs (required)")
	shardPoints := fs.Int("shard-points", 0, "grid points per shard (0 = 1, the finest grain)")
	ttl := fs.Duration("ttl", 0, "lease TTL; a lease silent this long is expired and its shard reassigned (0 = 5s)")
	maxAttempts := fs.Int("max-attempts", 0, "lease budget per shard before the campaign fails (0 = 3)")
	leasesPerWorker := fs.Int("leases-per-worker", 0, "concurrently leased shards per worker; workers also apply their own -shard-workers backpressure (0 = 1)")
	lanesN := fs.Int("lanes", 0, "lane setting every worker runs with (0 = auto, 1 = force scalar); all shards share it so all samples come from one engine")
	resumeFlag := fs.Bool("resume", false, "resume from the checkpoint in -out, leasing only incomplete shards")
	jsonOut := fs.Bool("json", false, "print the final report as JSON instead of text")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	fs.Parse(args)

	var workers []string
	for _, p := range strings.Split(*peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		workers = append(workers, p)
	}
	if len(workers) == 0 {
		return fmt.Errorf("cluster: -peers is required (comma-separated radiosimd worker URLs)")
	}

	var spec *campaign.Spec
	var err error
	switch {
	case *specPath != "":
		var b []byte
		if *specPath == "-" {
			b, err = io.ReadAll(os.Stdin)
		} else {
			b, err = os.ReadFile(*specPath)
		}
		if err != nil {
			return err
		}
		spec, err = campaign.ParseSpec(b)
		if err != nil {
			return err
		}
	case *resumeFlag:
		if *out == "" {
			return fmt.Errorf("cluster: -resume requires -out")
		}
		m, err := campaign.ReadManifest(*out)
		if err != nil {
			return fmt.Errorf("cluster resume: %w (pass -spec to start a fresh run)", err)
		}
		spec = m.Spec
		if err := spec.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("cluster: -spec is required")
	}

	// The coordinator needs its own listener: workers call back with
	// heartbeats and results.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	adv := *advertise
	if adv == "" {
		adv = "http://" + ln.Addr().String()
	}
	cfg := cluster.Config{
		Workers:         workers,
		Advertise:       adv,
		LeaseTTL:        *ttl,
		MaxAttempts:     *maxAttempts,
		PointsPerShard:  *shardPoints,
		LeasesPerWorker: *leasesPerWorker,
		Lanes:           *lanesN,
		Dir:             *out,
		Resume:          *resumeFlag,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	coord, err := cluster.NewCoordinator(spec, cfg)
	if err != nil {
		ln.Close()
		return err
	}
	httpSrv := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		httpSrv.Shutdown(sctx)
	}()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "campaign: cluster coordinator on %s (advertise %s), %d worker(s)\n",
			ln.Addr(), adv, len(workers))
	}

	// ^C cancels the coordinator loop; it flushes the checkpoint and
	// returns the partial report, and `cluster -resume` picks up there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	report, err := coord.Run(ctx)
	if err != nil {
		return err
	}
	select {
	case err := <-serveErr:
		return fmt.Errorf("cluster: coordinator listener: %w", err)
	default:
	}
	return printReport(report, *jsonOut)
}

func printReport(r *campaign.Report, asJSON bool) error {
	if asJSON {
		b, err := r.JSON()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	_, err := os.Stdout.WriteString(r.Text())
	return err
}
