package repro_test

// Runnable godoc examples for the public API. The outputs are fixed by
// the deterministic seeds, so `go test` verifies them.

import (
	"fmt"

	repro "repro"
)

// ExampleBroadcast runs the paper's distributed protocol on a small
// random radio network.
func ExampleBroadcast() {
	rng := repro.NewRand(7)
	g, ok := repro.ConnectedGnpDegree(2000, 16, rng)
	if !ok {
		fmt.Println("no connected sample")
		return
	}
	res := repro.Broadcast(g, 0, 16, rng)
	fmt.Printf("completed=%v informed=%d/%d\n", res.Completed, res.Informed, g.N())
	// Output: completed=true informed=2000/2000
}

// ExampleBuildSchedule constructs and replays the Theorem 5 centralized
// schedule.
func ExampleBuildSchedule() {
	rng := repro.NewRand(11)
	g, ok := repro.ConnectedGnpDegree(2000, 16, rng)
	if !ok {
		fmt.Println("no connected sample")
		return
	}
	sched, err := repro.BuildSchedule(g, 0, 16, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := repro.ExecuteSchedule(g, 0, sched)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("completed=%v within-bound=%v\n",
		res.Completed, float64(res.Rounds) < 15*repro.CentralizedBound(g.N(), 16))
	// Output: completed=true within-bound=true
}

// ExampleNewEngine drives the collision-exact simulator round by round on
// a hand-built gadget: two informed neighbours of an uninformed node
// collide; a lone transmitter gets through.
func ExampleNewEngine() {
	b := repro.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.Build()

	e := repro.NewEngine(g, 0)
	newly, _ := e.Round([]int32{0}) // source informs 1 and 2
	fmt.Println("round 1 informs:", len(newly))
	newly, _ = e.Round([]int32{1, 2}) // 1 and 2 collide at 3
	fmt.Println("round 2 informs:", len(newly))
	newly, _ = e.Round([]int32{1}) // 1 alone reaches 3
	fmt.Println("round 3 informs:", len(newly))
	// Output:
	// round 1 informs: 2
	// round 2 informs: 0
	// round 3 informs: 1
}

// ExampleGossip disseminates every node's private rumor to every other
// node under radio collisions.
func ExampleGossip() {
	rng := repro.NewRand(3)
	g, ok := repro.ConnectedGnpDegree(300, 14, rng)
	if !ok {
		fmt.Println("no connected sample")
		return
	}
	res := repro.Gossip(g, 14, 100000, rng)
	fmt.Printf("completed=%v everyone-knows-everything=%v\n",
		res.Completed, res.KnownTotal == int64(g.N())*int64(g.N()))
	// Output: completed=true everyone-knows-everything=true
}
