package repro

import (
	"bytes"
	"encoding/json"
	"testing"
)

func testGraph(t testing.TB, n int, d float64, seed uint64) *Graph {
	t.Helper()
	g, ok := ConnectedGnpDegree(n, d, NewRand(seed))
	if !ok {
		t.Skip("no connected sample")
	}
	return g
}

// TestRunReproducesBroadcast is the facade acceptance check: the options
// entry point with WithPerNodeSampling must reproduce the positional one
// bit-for-bit on the same seed (the deprecated wrappers are frozen to the
// historical per-node randomness stream; plain Run uses the sampled fast
// path, covered by TestRunSampledFastPath).
func TestRunReproducesBroadcast(t *testing.T) {
	const n = 2000
	const d = 25.0
	g := testGraph(t, n, d, 1)
	for seed := uint64(1); seed <= 5; seed++ {
		want := Broadcast(g, 0, d, NewRand(seed))
		got, err := Run(g, 0, WithDegree(d), WithSeed(seed), WithPerNodeSampling())
		if err != nil {
			t.Fatal(err)
		}
		if got.Completed != want.Completed || got.Rounds != want.Rounds ||
			got.Informed != want.Informed || got.Stats != want.Stats {
			t.Fatalf("seed %d: Run %+v != Broadcast %+v", seed, got, want)
		}
		for i := range want.InformedAt {
			if got.InformedAt[i] != want.InformedAt[i] {
				t.Fatalf("seed %d: InformedAt[%d] = %d, want %d", seed, i, got.InformedAt[i], want.InformedAt[i])
			}
		}
	}
	// Default seed is 1.
	def, err := Run(g, 0, WithDegree(d), WithPerNodeSampling())
	if err != nil {
		t.Fatal(err)
	}
	want := Broadcast(g, 0, d, NewRand(1))
	if def.Rounds != want.Rounds || def.Stats != want.Stats {
		t.Fatalf("default-seed Run %+v != Broadcast(seed 1) %+v", def, want)
	}
}

// TestRunSampledFastPath: plain Run takes the binomial-sampling fast path
// for the paper's protocol; the run must complete and agree with the
// per-node path on everything but the randomness stream.
func TestRunSampledFastPath(t *testing.T) {
	const n = 2000
	const d = 25.0
	g := testGraph(t, n, d, 1)
	var c Counters
	res, err := Run(g, 0, WithDegree(d), WithSeed(3), WithObserver(&c))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("sampled run incomplete: %+v", res)
	}
	// Observer records have the same shape on both paths: the per-round
	// outcome classes partition the node set.
	if got := c.Transmissions + c.Successes + c.Collisions + c.Silent; got != c.Rounds*n {
		t.Fatalf("tx+ok+col+silent = %d, want rounds*n = %d", got, c.Rounds*n)
	}
	if c.Rounds != res.Rounds || c.Informed != res.Informed {
		t.Fatalf("counters (rounds=%d informed=%d) != result (%d, %d)", c.Rounds, c.Informed, res.Rounds, res.Informed)
	}
	// Same seed, same options, run again: the sampled path is
	// deterministic.
	again, err := Run(g, 0, WithDegree(d), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if again.Rounds != res.Rounds || again.Stats != res.Stats {
		t.Fatalf("sampled run not deterministic: %+v vs %+v", again, res)
	}
	for i := range res.InformedAt {
		if again.InformedAt[i] != res.InformedAt[i] {
			t.Fatalf("InformedAt[%d] differs between identical sampled runs", i)
		}
	}
}

// TestRunScheduleMatchesExecuteSchedule: the schedule path of Run is
// ExecuteSchedule.
func TestRunScheduleMatchesExecuteSchedule(t *testing.T) {
	const n = 1000
	const d = 16.0
	g := testGraph(t, n, d, 2)
	sched, err := BuildSchedule(g, 0, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExecuteSchedule(g, 0, sched)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, 0, WithSchedule(sched))
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != want.Completed || got.Rounds != want.Rounds || got.Stats != want.Stats {
		t.Fatalf("Run schedule %+v != ExecuteSchedule %+v", got, want)
	}
}

func TestRunOptionConflicts(t *testing.T) {
	g := GnpDegree(50, 6, NewRand(1))
	sched := &Schedule{Sets: [][]int32{{0}}}
	p := NewProtocol(50, 6)
	cases := []struct {
		name string
		opts []Option
	}{
		{"protocol+degree", []Option{WithProtocol(p), WithDegree(6)}},
		{"schedule+degree", []Option{WithSchedule(sched), WithDegree(6)}},
		{"schedule+protocol", []Option{WithSchedule(sched), WithProtocol(p)}},
		{"schedule+maxrounds", []Option{WithSchedule(sched), WithMaxRounds(5)}},
		{"rand+seed", []Option{WithRand(NewRand(1)), WithSeed(2)}},
		{"negative budget", []Option{WithMaxRounds(-1)}},
	}
	for _, c := range cases {
		if _, err := Run(g, 0, c.opts...); err == nil {
			t.Errorf("%s: conflicting options accepted", c.name)
		}
	}
}

func TestRunWithMaxRoundsZero(t *testing.T) {
	g := GnpDegree(50, 6, NewRand(1))
	res, err := Run(g, 0, WithMaxRounds(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.Informed != 1 {
		t.Fatalf("zero-budget run executed rounds: %+v", res)
	}
}

// TestRunDefaultProtocolUsesMeanDegree: with no degree/protocol option the
// run still completes, sized by the graph's empirical mean degree.
func TestRunDefaultProtocolUsesMeanDegree(t *testing.T) {
	g := testGraph(t, 1000, 14, 4)
	res, err := Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("default Run incomplete: %+v", res)
	}
	d := 2 * float64(g.M()) / float64(g.N())
	want, err := Run(g, 0, WithDegree(d))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != want.Rounds || res.Stats != want.Stats {
		t.Fatalf("default Run %+v != Run(mean degree) %+v", res, want)
	}
}

func TestRunWithObserver(t *testing.T) {
	const n = 1000
	const d = 12.0
	g := testGraph(t, n, d, 5)
	var c Counters
	var f FrontierProfile
	res, err := Run(g, 0, WithDegree(d), WithSeed(9), WithObserver(MultiObserver(&c, &f)))
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds != res.Rounds || c.Informed != res.Informed {
		t.Fatalf("counters (rounds=%d informed=%d) != result (%d informed=%d)",
			c.Rounds, c.Informed, res.Rounds, res.Informed)
	}
	if c.Successes != res.Stats.Deliveries || c.Collisions != res.Stats.Collisions {
		t.Fatalf("counters %+v != result stats %+v", c, res.Stats)
	}
	if f.Rounds() != res.Rounds || f.Cumulative[len(f.Cumulative)-1] != res.Informed {
		t.Fatalf("frontier profile inconsistent: %d rounds, final %d", f.Rounds(), f.Cumulative[len(f.Cumulative)-1])
	}
	// Observation must not perturb the run.
	plain, _ := Run(g, 0, WithDegree(d), WithSeed(9))
	if plain.Rounds != res.Rounds || plain.Stats != res.Stats {
		t.Fatalf("observed run diverged from unobserved: %+v vs %+v", res, plain)
	}
}

func TestRunWithSourcesMatchesBroadcastMulti(t *testing.T) {
	const n = 800
	const d = 10.0
	g := testGraph(t, n, d, 6)
	sources := []int32{0, 17, 23}
	want := BroadcastMulti(g, sources, d, NewRand(8))
	got, err := Run(g, 0, WithSources(17, 23), WithDegree(d), WithRand(NewRand(8)),
		WithPerNodeSampling())
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.Stats != want.Stats {
		t.Fatalf("Run multi %+v != BroadcastMulti %+v", got, want)
	}
}

func TestRunJSONLWriterEmitsValidRecords(t *testing.T) {
	g := testGraph(t, 500, 10, 7)
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	res, err := Run(g, 0, WithDegree(10), WithSeed(3), WithObserver(w))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) != res.Rounds+2 {
		t.Fatalf("%d JSONL lines for %d rounds", len(lines), res.Rounds)
	}
	for i, line := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v", i, err)
		}
	}
}

func TestGossipWithMatchesGossip(t *testing.T) {
	const n = 60
	const d = 8.0
	g := testGraph(t, n, d, 9)
	want := Gossip(g, d, 500, NewRand(2))
	got := GossipWith(g, NewPhasedGossip(n, d), 500, NewRand(2))
	if got != want {
		t.Fatalf("GossipWith %+v != Gossip %+v", got, want)
	}
	var c Counters
	observed := GossipWith(g, NewPhasedGossip(n, d), 500, NewRand(2), &c)
	if observed != want {
		t.Fatalf("observed GossipWith diverged: %+v vs %+v", observed, want)
	}
	if c.Rounds != want.Rounds {
		t.Fatalf("gossip counters rounds %d != result %d", c.Rounds, want.Rounds)
	}
}

func TestBroadcastMultiObserver(t *testing.T) {
	g := testGraph(t, 400, 9, 10)
	var c Counters
	res := BroadcastMulti(g, []int32{0, 5}, 9, NewRand(4), &c)
	if c.Rounds != res.Rounds || c.Informed != res.Informed {
		t.Fatalf("counters %+v != result %+v", c, res)
	}
}
