package bitset

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestSetTestClear(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.Set(i)
	}
	for i := 0; i < 200; i++ {
		want := i%3 == 0
		if s.Test(i) != want {
			t.Fatalf("bit %d: got %v want %v", i, s.Test(i), want)
		}
	}
	for i := 0; i < 200; i += 3 {
		s.Clear(i)
	}
	if s.Any() {
		t.Fatal("set not empty after clearing all bits")
	}
}

func TestCount(t *testing.T) {
	s := New(130)
	if s.Count() != 0 {
		t.Fatal("fresh set has nonzero count")
	}
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		s.Set(i)
	}
	if got := s.Count(); got != len(idx) {
		t.Fatalf("Count = %d, want %d", got, len(idx))
	}
	s.Set(0) // setting twice must not double count
	if got := s.Count(); got != len(idx) {
		t.Fatalf("Count after re-set = %d, want %d", got, len(idx))
	}
}

func TestFillRespectsLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if got := s.Count(); got != n {
			t.Fatalf("Fill on len %d gives count %d", n, got)
		}
	}
}

func TestTestAndSet(t *testing.T) {
	s := New(10)
	if s.TestAndSet(4) {
		t.Fatal("TestAndSet on clear bit returned true")
	}
	if !s.TestAndSet(4) {
		t.Fatal("TestAndSet on set bit returned false")
	}
}

func TestReset(t *testing.T) {
	s := New(500)
	for i := 0; i < 500; i += 7 {
		s.Set(i)
	}
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
}

func TestSetOperations(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i) // evens
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i) // multiples of 3
	}

	u := a.Clone()
	u.Union(b)
	inter := a.Clone()
	inter.Intersect(b)
	diff := a.Clone()
	diff.Subtract(b)

	for i := 0; i < 100; i++ {
		even := i%2 == 0
		byThree := i%3 == 0
		if u.Test(i) != (even || byThree) {
			t.Fatalf("union wrong at %d", i)
		}
		if inter.Test(i) != (even && byThree) {
			t.Fatalf("intersect wrong at %d", i)
		}
		if diff.Test(i) != (even && !byThree) {
			t.Fatalf("subtract wrong at %d", i)
		}
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union with mismatched capacity did not panic")
		}
	}()
	New(10).Union(New(11))
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Set(10) },
		func() { s.Set(-1) },
		func() { s.Test(10) },
		func() { s.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestForEachOrderAndStop(t *testing.T) {
	s := New(300)
	want := []int{5, 64, 65, 128, 250}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	s.ForEach(func(i int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("ForEach early stop visited %d", count)
	}
}

func TestAppendMembers(t *testing.T) {
	s := New(100)
	s.Set(3)
	s.Set(77)
	got := s.AppendMembers([]int32{99})
	if len(got) != 3 || got[0] != 99 || got[1] != 3 || got[2] != 77 {
		t.Fatalf("AppendMembers = %v", got)
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	s.Set(5)
	s.Set(64)
	s.Set(199)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {-3, 5},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := s.NextSet(200); got != -1 {
		t.Errorf("NextSet beyond capacity = %d, want -1", got)
	}
	empty := New(50)
	if got := empty.NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(1)
	b := a.Clone()
	b.Set(2)
	if a.Test(2) {
		t.Fatal("Clone shares storage with original")
	}
	if !b.Test(1) {
		t.Fatal("Clone lost original bits")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(64)
	a.Set(7)
	b := New(64)
	b.Set(9)
	b.CopyFrom(a)
	if !b.Test(7) || b.Test(9) {
		t.Fatal("CopyFrom did not overwrite")
	}
}

// Property: Count equals the number of distinct indices set, for random
// index multisets.
func TestCountMatchesDistinctProperty(t *testing.T) {
	rng := xrand.New(5)
	f := func(raw []uint16) bool {
		const n = 1 << 16
		s := New(n)
		distinct := make(map[uint16]bool)
		for _, r := range raw {
			s.Set(int(r))
			distinct[r] = true
		}
		return s.Count() == len(distinct)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: ForEach enumeration matches Test over random sets.
func TestForEachMatchesTestProperty(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(500)
		s := New(n)
		ref := make([]bool, n)
		for i := 0; i < n/2; i++ {
			j := rng.Intn(n)
			s.Set(j)
			ref[j] = true
		}
		got := make([]bool, n)
		s.ForEach(func(i int) bool {
			got[i] = true
			return true
		})
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func BenchmarkSetAndCount(b *testing.B) {
	s := New(1 << 20)
	for i := 0; i < b.N; i++ {
		s.Set(i & (1<<20 - 1))
		if i&0xffff == 0 {
			_ = s.Count()
		}
	}
}

func BenchmarkReset(b *testing.B) {
	s := New(1 << 20)
	s.Fill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
	}
}
