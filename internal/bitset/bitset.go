// Package bitset implements a dense, fixed-capacity bit vector.
//
// The radio simulator and the graph generators track membership of vertex
// sets (informed nodes, transmitters this round, visited markers) over
// vertex ranges of up to a few million elements; a bitset keeps these sets
// at one bit per vertex and supports the bulk operations the simulator
// needs (clear-all, population count, iteration over set bits).
package bitset

import "math/bits"

// Set is a fixed-capacity bit vector over [0, Len()). The zero value is an
// empty set of capacity zero; use New to allocate capacity.
type Set struct {
	words []uint64
	n     int
}

// New returns a set with capacity for n bits, all initially clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i. It panics if i is out of range.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// TestAndSet sets bit i and reports whether it was already set.
func (s *Set) TestAndSet(i int) bool {
	s.check(i)
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	old := s.words[w]&m != 0
	s.words[w] |= m
	return old
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Fill sets every bit in [0, Len()).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim clears the bits beyond Len() in the last word so Count stays exact.
func (s *Set) trim() {
	if rem := uint(s.n) & 63; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// Union sets s = s ∪ t. Both sets must have the same capacity.
func (s *Set) Union(t *Set) {
	s.sameLen(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersect sets s = s ∩ t. Both sets must have the same capacity.
func (s *Set) Intersect(t *Set) {
	s.sameLen(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// Subtract sets s = s \ t. Both sets must have the same capacity.
func (s *Set) Subtract(t *Set) {
	s.sameLen(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

func (s *Set) sameLen(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of t. Capacities must match.
func (s *Set) CopyFrom(t *Set) {
	s.sameLen(t)
	copy(s.words, t.words)
}

// ForEach calls fn for every set bit in increasing order. If fn returns
// false, iteration stops.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*64 + b) {
				return
			}
			w &= w - 1
		}
	}
}

// AppendMembers appends the indices of all set bits to dst in increasing
// order and returns the extended slice.
func (s *Set) AppendMembers(dst []int32) []int32 {
	s.ForEach(func(i int) bool {
		dst = append(dst, int32(i))
		return true
	})
	return dst
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i >> 6
	w := s.words[wi] >> (uint(i) & 63)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*64 + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}
