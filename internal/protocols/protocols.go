// Package protocols implements the distributed radio-broadcast baselines
// the paper's protocol is compared against in experiment E5:
//
//   - Decay — the classical randomized protocol of Bar-Yehuda, Goldreich
//     and Itai (1992) for unknown topologies, O((D + log n)·log n) rounds.
//   - ALOHA — p-persistent transmission: every informed node transmits
//     with a fixed probability each round.
//   - Flood — every informed node transmits every round; on radio networks
//     this deadlocks as soon as two neighbours of an uninformed node are
//     informed (kept as a cautionary baseline).
//   - RoundRobin — deterministic ID-based time division: node v transmits
//     in rounds ≡ v (mod n); collision-free but Θ(n·D) rounds.
//
// All types implement radio.Protocol.
package protocols

import (
	"math"

	"repro/internal/radio"
	"repro/internal/xrand"
)

// Decay is the Bar-Yehuda–Goldreich–Itai protocol. Time is divided into
// epochs of Phases rounds. In round k of an epoch every informed node
// transmits with probability 2^{-k}: early rounds push through sparse
// neighbourhoods, late rounds resolve dense ones.
type Decay struct {
	// Phases is the epoch length, canonically ⌈log₂ n⌉.
	Phases int
}

// NewDecay returns the protocol with the canonical epoch length for n
// nodes.
func NewDecay(n int) *Decay {
	ph := int(math.Ceil(math.Log2(float64(n) + 1)))
	if ph < 1 {
		ph = 1
	}
	return &Decay{Phases: ph}
}

// Transmit implements radio.Protocol.
func (d *Decay) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	k := (round - 1) % d.Phases // k = 0, 1, ..., Phases-1
	return rng.Bernoulli(math.Pow(2, -float64(k)))
}

// RoundProb implements radio.UniformProtocol: every Decay round is
// uniform over all informed nodes with the epoch-position rate 2^{-k}.
func (d *Decay) RoundProb(round int) (float64, radio.Cohort, bool) {
	k := (round - 1) % d.Phases
	return math.Pow(2, -float64(k)), radio.AllInformed, true
}

// Aloha transmits with a fixed probability P every round.
type Aloha struct {
	P float64
}

// NewAloha returns the protocol with the degree-matched rate 1/d, the
// throughput-optimal choice when every uninformed node has about d
// informed neighbours.
func NewAloha(d float64) *Aloha {
	if d < 1 {
		d = 1
	}
	return &Aloha{P: 1 / d}
}

// Transmit implements radio.Protocol.
func (a *Aloha) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	return rng.Bernoulli(a.P)
}

// RoundProb implements radio.UniformProtocol: every ALOHA round is
// uniform over all informed nodes at the fixed rate P.
func (a *Aloha) RoundProb(round int) (float64, radio.Cohort, bool) {
	return a.P, radio.AllInformed, true
}

// Flood transmits deterministically every round.
type Flood struct{}

// Transmit implements radio.Protocol.
func (Flood) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	return true
}

// RoundProb implements radio.UniformProtocol with q = 1: the sampled
// path selects every informed node, exactly the deterministic flood, and
// consumes no randomness on either path.
func (Flood) RoundProb(round int) (float64, radio.Cohort, bool) {
	return 1, radio.AllInformed, true
}

// RoundRobin gives each node a private slot: node v transmits in rounds
// r with (r-1) mod N == v. Collision-free and deterministic, hence a
// correct (if very slow) broadcast on any connected graph.
type RoundRobin struct {
	N int
}

// Transmit implements radio.Protocol.
func (rr *RoundRobin) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	return int32((round-1)%rr.N) == v
}

// Compile-time interface checks. Decay, Aloha and Flood declare uniform
// rounds (radio.UniformProtocol), so protocol runners sample their
// transmitter sets in O(k); RoundRobin's rounds are ID-dependent and
// stay on the per-node path.
var (
	_ radio.UniformProtocol = (*Decay)(nil)
	_ radio.UniformProtocol = (*Aloha)(nil)
	_ radio.UniformProtocol = Flood{}
	_ radio.Protocol        = (*RoundRobin)(nil)
)
