package protocols

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/radio"
	"repro/internal/xrand"
)

func TestBackoffCompletesKnowledgeFree(t *testing.T) {
	const n = 2000
	d := 2 * math.Log(n)
	g := connected(t, n, d, 1)
	e := radio.NewEngine(g, 0, radio.StrictInformed)
	res := radio.RunCDProtocol(e, NewBackoff(n), 20*core.MaxRoundsFor(n), xrand.New(2))
	if !res.Completed {
		t.Fatalf("backoff incomplete: %d/%d after %d rounds", res.Informed, n, res.Rounds)
	}
}

func TestBackoffCompetitiveWithPaperProtocol(t *testing.T) {
	// Knowledge-free CD backoff should be within a modest factor of the
	// paper's (n,p)-aware protocol.
	const n = 2000
	d := 2 * math.Log(n)
	g := connected(t, n, d, 3)
	med := func(run func(seed uint64) int) int {
		var ts []int
		for i := uint64(0); i < 5; i++ {
			ts = append(ts, run(i))
		}
		for i := 1; i < len(ts); i++ {
			for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
		return ts[len(ts)/2]
	}
	budget := 20 * core.MaxRoundsFor(n)
	backoff := med(func(seed uint64) int {
		e := radio.NewEngine(g, 0, radio.StrictInformed)
		res := radio.RunCDProtocol(e, NewBackoff(n), budget, xrand.New(100+seed))
		if !res.Completed {
			return budget + 1
		}
		return res.Rounds
	})
	paper := med(func(seed uint64) int {
		return radio.BroadcastTime(g, 0, core.NewDistributedProtocol(n, d), budget, xrand.New(100+seed))
	})
	if backoff > 20*paper {
		t.Fatalf("backoff (%d) more than 20x the paper protocol (%d)", backoff, paper)
	}
}

func TestBackoffRateAdaptation(t *testing.T) {
	b := NewBackoff(3)
	rng := xrand.New(4)
	if b.Rate(0) != -1 {
		t.Fatal("rate set before first action")
	}
	// First call: one Bernoulli(InitialP) shot; rate then parks at MaxP.
	b.InitialP = 1 // force the deterministic branch for the test
	if !b.TransmitCD(0, 1, 0, radio.FeedbackSilence, rng) {
		t.Fatal("initial shout did not transmit")
	}
	if b.Rate(0) != b.MaxP {
		t.Fatalf("rate after init %v, want MaxP %v", b.Rate(0), b.MaxP)
	}
	// Collision halves.
	b.TransmitCD(0, 2, 0, radio.FeedbackCollision, rng)
	if b.Rate(0) != b.MaxP/2 {
		t.Fatalf("rate after collision %v", b.Rate(0))
	}
	// Message keeps.
	b.TransmitCD(0, 3, 0, radio.FeedbackMessage, rng)
	if b.Rate(0) != b.MaxP/2 {
		t.Fatalf("rate after message %v", b.Rate(0))
	}
	// Silence doubles, capped at MaxP.
	b.TransmitCD(0, 4, 0, radio.FeedbackSilence, rng)
	b.TransmitCD(0, 5, 0, radio.FeedbackSilence, rng)
	if b.Rate(0) != b.MaxP {
		t.Fatalf("rate after silences %v, want cap %v", b.Rate(0), b.MaxP)
	}
	// Repeated collisions floor at MinP.
	for i := 0; i < 60; i++ {
		b.TransmitCD(1, i+1, 0, radio.FeedbackCollision, rng)
	}
	if b.Rate(1) < b.MinP || b.Rate(1) > 2*b.MinP {
		t.Fatalf("rate not floored: %v", b.Rate(1))
	}
}

func TestBackoffRatesConvergeTowardInverseDegree(t *testing.T) {
	// On K_n every informed node shares one collision domain, so after
	// saturation the AIMD rates must fall far below MaxP (toward ~1/n).
	// Broadcast completes in round 1, so drive the rounds manually past
	// completion.
	const n = 300
	g := gen.Complete(n)
	b := NewBackoff(n)
	e := radio.NewEngine(g, 0, radio.StrictInformed)
	rng := xrand.New(5)
	fb := make([]radio.Feedback, n)
	prev := make([]radio.Feedback, n)
	for i := range prev {
		prev[i] = radio.FeedbackSilence
	}
	var tx []int32
	for round := 1; round <= 200; round++ {
		tx = tx[:0]
		for v := int32(0); v < n; v++ {
			if e.Informed(v) && b.TransmitCD(v, round, e.InformedAt(v), prev[v], rng) {
				tx = append(tx, v)
			}
		}
		if _, err := e.RoundWithFeedback(tx, fb); err != nil {
			t.Fatal(err)
		}
		prev, fb = fb, prev
	}
	sum, count := 0.0, 0
	for v := int32(0); v < n; v++ {
		if r := b.Rate(v); r >= 0 {
			sum += r
			count++
		}
	}
	if count < n/2 {
		t.Fatalf("only %d nodes acted", count)
	}
	mean := sum / float64(count)
	if mean > 0.2 {
		t.Fatalf("mean rate %v did not back off on K_n", mean)
	}
}
