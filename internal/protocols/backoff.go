package protocols

// Backoff: a knowledge-free distributed broadcast protocol for the
// collision-detection model. The paper's Theorem 7 protocol needs every
// node to know n and p; Backoff needs NOTHING — each informed node keeps
// a private transmit probability and adapts it AIMD-style from what it
// hears:
//
//   - heard a collision  → too much local activity → halve own rate;
//   - heard clean silence → too little             → double own rate;
//   - heard a message or transmitted               → keep the rate.
//
// The per-node rate converges to ≈ 1/(local informed degree), which is
// what the paper's protocol sets globally to 1/d from its knowledge of p.
// Experiment E19 compares the two: collision detection buys back the need
// for global knowledge at a constant-factor cost.

import (
	"repro/internal/radio"
	"repro/internal/xrand"
)

// Backoff implements radio.FeedbackProtocol with per-node adapted rates.
// A Backoff instance holds per-node state, so use one instance per run.
type Backoff struct {
	// InitialP is the transmit probability right after being informed
	// (default 1: shout once, then adapt).
	InitialP float64
	// MaxP caps the adapted rate BELOW 1 (default 1/2). The cap is what
	// makes the protocol live: a node transmitting with probability 1
	// never listens, so it would never observe a collision and never back
	// off — the whole network can deadlock in an all-transmit loop.
	MaxP float64
	// MinP floors the rate so a node never silences itself permanently.
	MinP float64
	rate []float64
}

// NewBackoff returns a fresh protocol instance for a graph with n nodes.
// The default constants (InitialP = 0.02, MaxP = 0.1) are absolute — they
// do not depend on n, p or d — and were chosen by a small sweep: hotter
// caps (MaxP ≥ 0.5) are bistable on dense neighbourhoods (listeners hear
// only collisions while transmitters, deaf half the time, barely adapt).
func NewBackoff(n int) *Backoff {
	b := &Backoff{InitialP: 0.02, MaxP: 0.1, MinP: 1e-6, rate: make([]float64, n)}
	for i := range b.rate {
		b.rate[i] = -1 // unset until informed
	}
	return b
}

// TransmitCD implements radio.FeedbackProtocol.
func (b *Backoff) TransmitCD(v int32, round int, informedAt int32, prev radio.Feedback, rng *xrand.Rand) bool {
	r := b.rate[v]
	if r < 0 {
		// First action after being informed: one shout at InitialP, then
		// the adaptive regime capped at MaxP.
		b.rate[v] = b.MaxP
		return rng.Bernoulli(b.InitialP)
	}
	switch prev {
	case radio.FeedbackCollision:
		r /= 2
		if r < b.MinP {
			r = b.MinP
		}
	case radio.FeedbackSilence:
		r *= 2
		if r > b.MaxP {
			r = b.MaxP
		}
	}
	b.rate[v] = r
	return rng.Bernoulli(r)
}

// Rate returns v's current transmit probability (for tests/inspection);
// -1 means v has not acted yet.
func (b *Backoff) Rate(v int32) float64 { return b.rate[v] }

var _ radio.FeedbackProtocol = (*Backoff)(nil)
