package protocols

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

func connected(t testing.TB, n int, d float64, seed uint64) *graph.Graph {
	t.Helper()
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(seed), 50)
	if !ok {
		t.Fatalf("no connected sample n=%d d=%v", n, d)
	}
	return g
}

func TestDecayCompletesOnGnp(t *testing.T) {
	const n = 2000
	d := 2 * math.Log(n)
	g := connected(t, n, d, 1)
	rng := xrand.New(2)
	res := radio.RunProtocol(g, 0, NewDecay(n), 4000, rng)
	if !res.Completed {
		t.Fatalf("decay incomplete: %d/%d", res.Informed, n)
	}
}

func TestDecayEpochRates(t *testing.T) {
	d := &Decay{Phases: 4}
	rng := xrand.New(3)
	// Round 1 of each epoch: probability 1.
	for _, round := range []int{1, 5, 9} {
		if !d.Transmit(0, round, 0, rng) {
			t.Fatalf("round %d (k=0) must transmit", round)
		}
	}
	// Round 4 (k=3): probability 1/8.
	hits := 0
	const trials = 40000
	for i := 0; i < trials; i++ {
		if d.Transmit(0, 4, 0, rng) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.125) > 0.01 {
		t.Fatalf("k=3 rate %v, want 1/8", rate)
	}
}

func TestNewDecayPhases(t *testing.T) {
	if d := NewDecay(1024); d.Phases < 10 || d.Phases > 11 {
		t.Fatalf("Phases for n=1024: %d", d.Phases)
	}
	if d := NewDecay(1); d.Phases < 1 {
		t.Fatal("Phases must be at least 1")
	}
}

func TestAlohaCompletesOnGnp(t *testing.T) {
	const n = 1000
	d := 2 * math.Log(n)
	g := connected(t, n, d, 4)
	rng := xrand.New(5)
	res := radio.RunProtocol(g, 0, NewAloha(d), 5000, rng)
	if !res.Completed {
		t.Fatalf("aloha incomplete: %d/%d", res.Informed, n)
	}
}

func TestAlohaRate(t *testing.T) {
	a := NewAloha(10)
	if a.P != 0.1 {
		t.Fatalf("P = %v", a.P)
	}
	if a := NewAloha(0.5); a.P != 1 {
		t.Fatalf("degenerate degree not clamped: %v", a.P)
	}
}

func TestFloodDeadlocksOnGnp(t *testing.T) {
	// On a dense-enough random graph, flooding stalls almost immediately:
	// after round 2 most uninformed nodes have many informed neighbours.
	const n = 500
	g := connected(t, n, 20, 6)
	rng := xrand.New(7)
	res := radio.RunProtocol(g, 0, Flood{}, 300, rng)
	if res.Completed {
		t.Fatal("deterministic flooding should not complete on G(n,p)")
	}
}

func TestRoundRobinAlwaysCompletes(t *testing.T) {
	const n = 200
	g := connected(t, n, 10, 8)
	rng := xrand.New(9)
	rr := &RoundRobin{N: n}
	diam := graph.Diameter(g)
	res := radio.RunProtocol(g, 0, rr, n*(diam+2), rng)
	if !res.Completed {
		t.Fatalf("round robin incomplete: %d/%d", res.Informed, n)
	}
	if res.Rounds > n*(diam+1) {
		t.Fatalf("round robin took %d rounds, above n(D+1)=%d", res.Rounds, n*(diam+1))
	}
}

func TestRoundRobinNoCollisions(t *testing.T) {
	const n = 100
	g := connected(t, n, 8, 10)
	e := radio.NewEngine(g, 0, radio.StrictInformed)
	rr := &RoundRobin{N: n}
	rng := xrand.New(11)
	var tx []int32
	for r := 1; r <= 3*n && !e.Done(); r++ {
		tx = tx[:0]
		for v := int32(0); int(v) < n; v++ {
			if e.Informed(v) && rr.Transmit(v, r, e.InformedAt(v), rng) {
				tx = append(tx, v)
			}
		}
		if len(tx) > 1 {
			t.Fatalf("round %d has %d transmitters", r, len(tx))
		}
		if _, err := e.Round(tx); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().Collisions != 0 {
		t.Fatalf("round robin suffered %d collisions", e.Stats().Collisions)
	}
}

func TestPaperProtocolBeatsDecay(t *testing.T) {
	// E5 in miniature: on G(n, 2 ln n / n) the paper's protocol should be
	// no slower than Decay (usually ~log-factor faster). Compare medians
	// over a few trials.
	const n = 4000
	d := 2 * math.Log(n)
	g := connected(t, n, d, 12)
	med := func(p radio.Protocol) int {
		var times []int
		for trial := 0; trial < 5; trial++ {
			rng := xrand.New(100 + uint64(trial))
			times = append(times, radio.BroadcastTime(g, 0, p, 5000, rng))
		}
		for i := 1; i < len(times); i++ {
			for j := i; j > 0 && times[j] < times[j-1]; j-- {
				times[j], times[j-1] = times[j-1], times[j]
			}
		}
		return times[len(times)/2]
	}
	paper := med(core.NewDistributedProtocol(n, d))
	decay := med(NewDecay(n))
	if paper > decay {
		t.Fatalf("paper protocol (%d rounds) slower than Decay (%d rounds)", paper, decay)
	}
}

func BenchmarkDecay(b *testing.B) {
	const n = 5000
	d := 2 * math.Log(n)
	g := connected(b, n, d, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := xrand.New(uint64(i))
		res := radio.RunProtocol(g, 0, NewDecay(n), 5000, rng)
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}
