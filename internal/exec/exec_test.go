package exec_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lanes"
	"repro/internal/protocols"
	"repro/internal/radio"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/xrand"
)

const (
	testN = 300
	testD = 8.0
)

func testGraph(t testing.TB, seed uint64) *graph.Graph {
	t.Helper()
	g, _, ok := gen.ConnectedGnp(testN, gen.PForDegree(testN, testD), xrand.New(seed), 100)
	if !ok {
		t.Fatal("no connected test graph")
	}
	return g
}

func protoReq(g *graph.Graph) *exec.Request {
	return &exec.Request{
		Graph:     g,
		Sources:   []int32{0},
		Protocol:  core.NewDistributedProtocol(g.N(), testD),
		MaxRounds: core.MaxRoundsFor(g.N()),
	}
}

func testSchedule(t testing.TB, g *graph.Graph) *radio.Schedule {
	t.Helper()
	sched, _, err := core.BuildCentralizedSchedule(g, 0, testD, core.DefaultCentralizedConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// TestClassify covers every classification branch: schedule replay,
// non-uniform protocol, lane-uniform protocol, and each scalar-only
// override that forces a lane-capable batch back to scalar.
func TestClassify(t *testing.T) {
	g := testGraph(t, 1)
	uniform := protoReq(g)
	if got := exec.Classify(uniform); got != exec.BackendScalar {
		t.Errorf("single uniform trial classified %v, want scalar (lanes are batch-only)", got)
	}
	if got := exec.ClassifyBatch(uniform); got != exec.BackendLanes {
		t.Errorf("uniform batch classified %v, want lanes", got)
	}

	sched := &exec.Request{Graph: g, Sources: []int32{0}, Schedule: testSchedule(t, g)}
	if got := exec.Classify(sched); got != exec.BackendSchedule {
		t.Errorf("schedule request classified %v, want schedule", got)
	}
	if got := exec.ClassifyBatch(sched); got != exec.BackendSchedule {
		t.Errorf("schedule batch classified %v, want schedule", got)
	}

	nonUniform := protoReq(g)
	nonUniform.Protocol = &protocols.RoundRobin{N: g.N()}
	if got := exec.ClassifyBatch(nonUniform); got != exec.BackendScalar {
		t.Errorf("non-uniform batch classified %v, want scalar", got)
	}

	for name, mutate := range map[string]func(*exec.Request){
		"force-scalar": func(r *exec.Request) { r.ForceScalar = true },
		"per-node":     func(r *exec.Request) { r.PerNode = true },
		"observer":     func(r *exec.Request) { r.Observer = &trace.Counters{} },
		"engine":       func(r *exec.Request) { r.Engine = radio.NewEngine(g, 0, radio.StrictInformed) },
	} {
		req := protoReq(g)
		mutate(req)
		if got := exec.ClassifyBatch(req); got != exec.BackendScalar {
			t.Errorf("%s batch classified %v, want scalar", name, got)
		}
	}
}

// TestRunMatchesEngine: exec.Run is bit-identical to driving the scalar
// engine directly with the same rng — the facade rewire changes nothing.
func TestRunMatchesEngine(t *testing.T) {
	x := exec.New()
	g := testGraph(t, 2)
	req := protoReq(g)

	e := radio.NewEngineMulti(g, []int32{0}, radio.StrictInformed)
	want := e.RunProtocol(req.Protocol, req.MaxRounds, xrand.New(5))

	got, err := x.Run(context.Background(), req, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.Completed != want.Completed || got.Informed != want.Informed {
		t.Errorf("exec.Run = %+v, direct engine = %+v", got, want)
	}
	st := x.Snapshot()
	if st.Scalar.Runs != 1 || st.Scalar.Trials != 1 {
		t.Errorf("scalar counters = %+v, want runs=1 trials=1", st.Scalar)
	}
}

// TestRunSchedule: schedule requests replay deterministically through
// the schedule backend and count there.
func TestRunSchedule(t *testing.T) {
	x := exec.New()
	g := testGraph(t, 3)
	sched := testSchedule(t, g)
	want, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := x.Run(context.Background(), &exec.Request{Graph: g, Sources: []int32{0}, Schedule: sched}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.Completed != want.Completed {
		t.Errorf("exec schedule replay = %+v, direct = %+v", got, want)
	}
	st := x.Snapshot()
	if st.Schedule.Runs != 1 || st.Scalar.Runs != 0 {
		t.Errorf("counters = %+v, want the run on the schedule backend", st)
	}
}

// TestRunSeedsLanes: a lane-classified batch matches lanes.RunBlocks
// bit for bit and counts on the lane backend.
func TestRunSeedsLanes(t *testing.T) {
	x := exec.New()
	g := testGraph(t, 4)
	req := protoReq(g)
	seeds := sweep.Seeds(100, 11)

	plan, ok := lanes.NewPlan(req.Protocol, req.MaxRounds)
	if !ok {
		t.Fatal("distributed protocol must be lane-capable")
	}
	want := make([]int, len(seeds))
	if err := lanes.RunBlocks(context.Background(), g, []int32{0}, plan, seeds, 0, 0, want); err != nil {
		t.Fatal(err)
	}

	got := make([]int, len(seeds))
	backend, err := x.RunSeeds(context.Background(), req, seeds, got)
	if err != nil {
		t.Fatal(err)
	}
	if backend != exec.BackendLanes {
		t.Fatalf("backend = %v, want lanes", backend)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("trial %d: exec %d vs direct lanes %d", i, got[i], want[i])
		}
	}
	st := x.Snapshot()
	if st.Lanes.Runs != 1 || st.Lanes.Trials != int64(len(seeds)) || st.Lanes.Fallbacks != 0 {
		t.Errorf("lane counters = %+v, want runs=1 trials=%d", st.Lanes, len(seeds))
	}
}

// TestRunSeedsFallback: a non-uniform protocol batch falls back to
// per-seed scalar trials — bit-identical to running each seed on a
// fresh engine — and records the fallback.
func TestRunSeedsFallback(t *testing.T) {
	x := exec.New()
	g := testGraph(t, 5)
	req := protoReq(g)
	req.Protocol = &protocols.RoundRobin{N: g.N()}
	req.MaxRounds = 4 * g.N()
	seeds := sweep.Seeds(9, 13)

	got := make([]int, len(seeds))
	backend, err := x.RunSeeds(context.Background(), req, seeds, got)
	if err != nil {
		t.Fatal(err)
	}
	if backend != exec.BackendScalar {
		t.Fatalf("backend = %v, want scalar fallback", backend)
	}
	e := radio.NewEngineMulti(g, []int32{0}, radio.StrictInformed)
	for i, seed := range seeds {
		if want := radio.BroadcastTimeOn(e, req.Protocol, req.MaxRounds, xrand.New(seed)); got[i] != want {
			t.Fatalf("trial %d: exec %d vs direct scalar %d", i, got[i], want)
		}
	}
	st := x.Snapshot()
	if st.Scalar.Fallbacks != 1 || st.Scalar.Trials != int64(len(seeds)) {
		t.Errorf("scalar counters = %+v, want fallbacks=1 trials=%d", st.Scalar, len(seeds))
	}
}

// TestCancelMidRun: a canceled context stops every dispatch path with
// an error wrapping radio.ErrCanceled.
func TestCancelMidRun(t *testing.T) {
	x := exec.New()
	g := testGraph(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := x.Run(ctx, protoReq(g), xrand.New(1)); !errors.Is(err, radio.ErrCanceled) {
		t.Errorf("Run under canceled ctx: err = %v, want ErrCanceled", err)
	}
	if _, err := x.Time(ctx, protoReq(g), xrand.New(1)); !errors.Is(err, radio.ErrCanceled) {
		t.Errorf("Time under canceled ctx: err = %v, want ErrCanceled", err)
	}
	seeds := sweep.Seeds(64, 1)
	out := make([]int, len(seeds))
	if _, err := x.RunSeeds(ctx, protoReq(g), seeds, out); !errors.Is(err, radio.ErrCanceled) {
		t.Errorf("lane RunSeeds under canceled ctx: err = %v, want ErrCanceled", err)
	}
	scalarReq := protoReq(g)
	scalarReq.ForceScalar = true
	if _, err := x.RunSeeds(ctx, scalarReq, seeds, out); !errors.Is(err, radio.ErrCanceled) {
		t.Errorf("scalar RunSeeds under canceled ctx: err = %v, want ErrCanceled", err)
	}
	sess := x.Open(protoReq(g))
	if _, err := sess.Time(ctx, xrand.New(1)); !errors.Is(err, radio.ErrCanceled) {
		t.Errorf("Session.Time under canceled ctx: err = %v, want ErrCanceled", err)
	}
	if err := sess.RunSeeds(ctx, seeds, out); !errors.Is(err, radio.ErrCanceled) {
		t.Errorf("Session.RunSeeds under canceled ctx: err = %v, want ErrCanceled", err)
	}
}

// TestSessionTime: session trials reuse one engine and stay
// bit-identical to fresh-engine trials of the same rng streams.
func TestSessionTime(t *testing.T) {
	x := exec.New()
	g := testGraph(t, 7)
	req := protoReq(g)
	sess := x.Open(req)
	for trial := 0; trial < 5; trial++ {
		seed := uint64(trial + 1)
		got, err := sess.Time(context.Background(), xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		e := radio.NewEngineMulti(g, []int32{0}, radio.StrictInformed)
		if want := radio.BroadcastTimeOn(e, req.Protocol, req.MaxRounds, xrand.New(seed)); got != want {
			t.Fatalf("trial %d: session %d vs fresh engine %d", trial, got, want)
		}
	}
}

// TestSessionRunSeeds: session batches run the lazily built lane engine
// and match the one-shot lane dispatch for the same seeds, across
// multiple blocks.
func TestSessionRunSeeds(t *testing.T) {
	x := exec.New()
	g := testGraph(t, 8)
	req := protoReq(g)
	sess := x.Open(req)
	if sess.Backend() != exec.BackendLanes {
		t.Fatalf("session backend = %v, want lanes", sess.Backend())
	}
	seeds := sweep.Seeds(3*exec.Width/2, 17) // forces >1 lane block
	got := make([]int, len(seeds))
	if err := sess.RunSeeds(context.Background(), seeds, got); err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(seeds))
	if _, err := x.RunSeeds(context.Background(), protoReq(g), seeds, want); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("trial %d: session %d vs one-shot %d (lane purity violated)", i, got[i], want[i])
		}
	}
}

// TestSessionScalarFallback: a session whose protocol is not
// lane-capable serves RunSeeds from its scalar engine, identical to
// per-seed Time dispatch.
func TestSessionScalarFallback(t *testing.T) {
	x := exec.New()
	g := testGraph(t, 9)
	req := protoReq(g)
	req.Protocol = &protocols.RoundRobin{N: g.N()}
	req.MaxRounds = 4 * g.N()
	sess := x.Open(req)
	if sess.Backend() != exec.BackendScalar {
		t.Fatalf("session backend = %v, want scalar", sess.Backend())
	}
	seeds := sweep.Seeds(7, 23)
	got := make([]int, len(seeds))
	if err := sess.RunSeeds(context.Background(), seeds, got); err != nil {
		t.Fatal(err)
	}
	ref := x.Open(req)
	for i, seed := range seeds {
		want, err := ref.Time(context.Background(), xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("trial %d: batch fallback %d vs per-trial %d", i, got[i], want)
		}
	}
	if st := x.Snapshot(); st.Scalar.Fallbacks != 1 {
		t.Errorf("scalar fallbacks = %d, want 1", st.Scalar.Fallbacks)
	}
}

// TestEnginePool: acquire/release round-trips hit the per-graph pool,
// Forget and pointer identity keep rebuilt graphs off stale engines,
// and the counters record it all.
func TestEnginePool(t *testing.T) {
	x := exec.New()
	g := testGraph(t, 10)

	e1 := x.AcquireEngine(g)
	x.ReleaseEngine(e1)
	e2 := x.AcquireEngine(g)
	if e1 != e2 {
		t.Error("second acquire must reuse the released engine")
	}
	x.ReleaseEngine(e2)

	// A structurally identical rebuild is a different pointer: miss.
	g2 := testGraph(t, 10)
	if got := x.AcquireEngine(g2); got == e1 {
		t.Error("rebuilt graph must not receive the old graph's engine")
	}

	x.Forget(g)
	if got := x.AcquireEngine(g); got == e1 {
		t.Error("acquire after Forget must build fresh")
	}

	st := x.Snapshot()
	if st.Scalar.PoolHits != 1 {
		t.Errorf("pool_hits = %d, want 1", st.Scalar.PoolHits)
	}
	if st.Scalar.PoolMisses != 3 {
		t.Errorf("pool_misses = %d, want 3", st.Scalar.PoolMisses)
	}
}

// TestRunPooled: a Pool-flagged run checks an engine out and back in,
// and a pooled rerun of the same request is bit-identical to the
// fresh-engine first run (SetSources fully resets).
func TestRunPooled(t *testing.T) {
	x := exec.New()
	g := testGraph(t, 11)
	req := protoReq(g)
	req.Pool = true
	var rounds [2]int
	for i := range rounds {
		res, err := x.Run(context.Background(), req, xrand.New(42))
		if err != nil {
			t.Fatal(err)
		}
		rounds[i] = res.Rounds
	}
	if rounds[0] != rounds[1] {
		t.Errorf("pooled rerun diverged: %d vs %d rounds", rounds[0], rounds[1])
	}
	st := x.Snapshot()
	if st.Scalar.PoolMisses != 1 || st.Scalar.PoolHits != 1 {
		t.Errorf("pool counters = %+v, want one miss then one hit", st.Scalar)
	}
}
