// Package exec is the unified execution layer: one place that picks a
// simulation backend, owns engine lifecycle and reuse, and counts what
// ran. Every consumer — the root facade (Run/RunBatch), internal/sweep,
// the campaign runners and the serving layer — dispatches through an
// Executor instead of constructing radio or lane engines itself, so
// backend selection, fallback and pooling have exactly one
// implementation and one metrics surface, and a new backend (e.g. a
// collision-detection feedback engine) plugs in here once.
//
// Classification:
//
//	schedule replay            → BackendSchedule (deterministic, no rng)
//	single trial / observer /
//	per-node / non-uniform     → BackendScalar (sampled fast path unless
//	                             PerNode; the engine decides per round)
//	trial batch of a protocol
//	with a fully uniform
//	schedule                   → BackendLanes (64 trials per word), with
//	                             scalar fallback otherwise
//
// The PR 3 stream policy is preserved exactly: single trials run the
// scalar engine's sampled stream, batches run the lane engine's stream
// (distributionally identical, not bit-identical), and each trial is a
// pure function of its own derived seed, so dispatch through exec is
// byte-identical to the per-layer code it replaced.
package exec

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/lanes"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Width is the lane-block width: batch dispatchers that block trials
// (the campaign runner) size their blocks to it.
const Width = lanes.Width

// Backend identifies which simulation engine executed a request.
type Backend int

const (
	// BackendScalar is the per-node/sampled scalar engine.
	BackendScalar Backend = iota
	// BackendSchedule is deterministic schedule replay (no rng).
	BackendSchedule
	// BackendLanes is the bit-parallel lane engine (batches only).
	BackendLanes
	numBackends
)

func (b Backend) String() string {
	switch b {
	case BackendScalar:
		return "scalar"
	case BackendSchedule:
		return "schedule"
	case BackendLanes:
		return "lanes"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Request describes one simulation configuration: what to run and on
// what engine state. The zero value of every optional field selects the
// default behaviour.
type Request struct {
	Graph   *graph.Graph
	Sources []int32

	// Protocol drives randomized runs; Schedule, when non-nil, replays a
	// centralized schedule instead (Protocol, MaxRounds, PerNode and rng
	// do not apply).
	Protocol  radio.Protocol
	Schedule  *radio.Schedule
	MaxRounds int

	// PerNode opts out of the sampled-transmitter fast path (the
	// WithPerNodeSampling stream). Per-node sampling is a single-trial
	// notion: it forces the scalar backend for batches.
	PerNode bool

	// Observer receives round-level trace callbacks. Observers are
	// scalar per-trial notions: a non-nil observer forces the scalar
	// backend for batches.
	Observer trace.Observer

	// Engine, when non-nil, runs the request on this caller-owned engine
	// (the facade WithEngine path): its sources, observer and sampling
	// mode are re-initialised from the request and result reuse is
	// enabled, so a run is bit-identical to a fresh-engine run. The
	// caller keeps ownership; exec never pools it.
	Engine *radio.Engine

	// Pool checks a scalar engine out of the executor's per-graph pool
	// for the run and back in afterwards — the serving layer's
	// steady-state path. Ignored when Engine is set.
	Pool bool

	// ForceScalar refuses the lane backend for batches even when the
	// protocol is lane-capable.
	ForceScalar bool
}

// BackendStats are one backend's cumulative counters.
type BackendStats struct {
	// Runs counts dispatches (one per single trial, one per batch);
	// Trials counts individual trials, so for batches Trials advances by
	// the batch size per run.
	Runs   int64 `json:"runs"`
	Trials int64 `json:"trials"`
	// Fallbacks counts batch dispatches that wanted the lane engine but
	// ran scalar (non-uniform protocol, observer, per-node, forced).
	Fallbacks int64 `json:"fallbacks"`
	// PoolHits/PoolMisses count pooled-engine checkouts served from the
	// per-graph pool vs. built fresh.
	PoolHits   int64 `json:"pool_hits"`
	PoolMisses int64 `json:"pool_misses"`
}

// Stats is the executor's counter snapshot, one section per backend —
// the single metrics surface serve and cluster workers expose.
type Stats struct {
	Scalar   BackendStats `json:"scalar"`
	Schedule BackendStats `json:"schedule"`
	Lanes    BackendStats `json:"lanes"`
}

// counters is the hot mutable twin of BackendStats.
type counters struct {
	runs, trials, fallbacks, poolHits, poolMisses atomic.Int64
}

func (c *counters) snapshot() BackendStats {
	return BackendStats{
		Runs:       c.runs.Load(),
		Trials:     c.trials.Load(),
		Fallbacks:  c.fallbacks.Load(),
		PoolHits:   c.poolHits.Load(),
		PoolMisses: c.poolMisses.Load(),
	}
}

// poolEntry holds the idle engines pooled for one graph instance.
// Engines are keyed by graph pointer, never by structural value: an
// engine must not run on a different graph than it was built for, even
// a bit-identical rebuild, so a rebuilt graph always misses.
type poolEntry struct {
	g    *graph.Graph
	idle []*radio.Engine
}

// Executor classifies requests onto backends, pools scalar engines per
// graph, and counts every dispatch. The zero value is not ready; use
// New (isolated, e.g. for tests) or Default (the process-wide instance
// every layer shares).
type Executor struct {
	graphCap  int // max graphs with pooled engines (LRU beyond)
	engineCap int // max idle engines kept per graph

	mu      sync.Mutex
	entries map[*graph.Graph]*list.Element
	order   *list.List // front = most recently used

	c [numBackends]counters
}

const (
	defaultGraphCap  = 64
	defaultEngineCap = 16
)

// New returns an isolated executor with default pool bounds.
func New() *Executor {
	return &Executor{
		graphCap:  defaultGraphCap,
		engineCap: defaultEngineCap,
		entries:   make(map[*graph.Graph]*list.Element),
		order:     list.New(),
	}
}

var std = New()

// Default returns the process-wide executor. The facade, sweep, the
// campaign runner and the serving layer all dispatch through it, so its
// Snapshot is the one metrics surface for everything that ran.
func Default() *Executor { return std }

// Classify reports the backend a single-trial request executes on.
// Single trials never use lanes (the lane engine is a different
// randomness stream and only pays off across a batch): a schedule
// replays, everything else runs the scalar engine.
func Classify(req *Request) Backend {
	if req.Schedule != nil {
		return BackendSchedule
	}
	return BackendScalar
}

// ClassifyBatch reports the backend a trial batch of req executes on:
// the lane engine when the protocol declares a fully uniform schedule
// over the round budget and nothing scalar-only (observer, per-node,
// ForceScalar) is requested; the scalar engine otherwise.
func ClassifyBatch(req *Request) Backend {
	if req.Schedule != nil {
		return BackendSchedule
	}
	if req.ForceScalar || req.PerNode || req.Observer != nil || req.Engine != nil {
		return BackendScalar
	}
	if _, ok := lanes.NewPlan(req.Protocol, req.MaxRounds); !ok {
		return BackendScalar
	}
	return BackendLanes
}

// Run executes one trial of req and returns the full Result. Schedules
// replay deterministically (rng unused); protocols run the scalar
// engine with rng. Cancellation is cooperative between rounds: a
// canceled ctx returns the partial Result and an error wrapping
// radio.ErrCanceled.
func (x *Executor) Run(ctx context.Context, req *Request, rng *xrand.Rand) (radio.Result, error) {
	if req.Schedule != nil {
		x.c[BackendSchedule].runs.Add(1)
		x.c[BackendSchedule].trials.Add(1)
		return radio.ExecuteScheduleObservedContext(ctx, req.Graph, req.Sources, req.Schedule, radio.StrictInformed, req.Observer)
	}
	e, pooled := x.checkout(req)
	x.c[BackendScalar].runs.Add(1)
	x.c[BackendScalar].trials.Add(1)
	res, err := e.RunProtocolContext(ctx, req.Protocol, req.MaxRounds, rng)
	if pooled {
		// Clean return only: a panicking trial abandons the engine to the
		// GC instead of pooling corrupt state.
		x.release(e)
	}
	return res, err
}

// Time executes one trial of a protocol request and returns only the
// completion round (maxRounds+1 if the broadcast did not finish) — the
// allocation-free twin of Run for measurement loops.
func (x *Executor) Time(ctx context.Context, req *Request, rng *xrand.Rand) (int, error) {
	e, pooled := x.checkout(req)
	x.c[BackendScalar].runs.Add(1)
	x.c[BackendScalar].trials.Add(1)
	r, err := radio.BroadcastTimeOnContext(ctx, e, req.Protocol, req.MaxRounds, rng)
	if pooled {
		x.release(e)
	}
	return r, err
}

// RunSeeds executes one trial per seed, out[i] receiving seed i's
// completion round, and reports the backend that ran. Lane-classified
// batches run lanes.RunBlocks (block-sharded across a worker pool);
// everything else falls back to per-seed scalar trials on a private
// worker pool, one engine per worker. Either way trial i is a pure
// function of seeds[i]: results are bitwise independent of worker
// count, sharding and GOMAXPROCS. On cancellation the error wraps
// radio.ErrCanceled and out's unfinished entries are unspecified.
func (x *Executor) RunSeeds(ctx context.Context, req *Request, seeds []uint64, out []int) (Backend, error) {
	if req.Schedule != nil {
		return BackendSchedule, fmt.Errorf("exec: schedule replay is single-trial; RunSeeds takes protocols")
	}
	if len(seeds) != len(out) {
		return BackendScalar, fmt.Errorf("exec: %d seeds but %d result slots", len(seeds), len(out))
	}
	if len(seeds) == 0 {
		return ClassifyBatch(req), nil
	}
	if plan, ok := x.batchPlan(req); ok {
		x.c[BackendLanes].runs.Add(1)
		x.c[BackendLanes].trials.Add(int64(len(seeds)))
		return BackendLanes, lanes.RunBlocks(ctx, req.Graph, req.Sources, plan, seeds, 0, 0, out)
	}
	x.c[BackendScalar].runs.Add(1)
	x.c[BackendScalar].trials.Add(int64(len(seeds)))
	x.c[BackendScalar].fallbacks.Add(1)
	return BackendScalar, x.runSeedsScalar(ctx, req, seeds, out)
}

// batchPlan returns the lane plan for a batch of req, if lanes are the
// classified backend.
func (x *Executor) batchPlan(req *Request) (*lanes.Plan, bool) {
	if req.ForceScalar || req.PerNode || req.Observer != nil || req.Engine != nil {
		return nil, false
	}
	return lanes.NewPlan(req.Protocol, req.MaxRounds)
}

// runSeedsScalar is RunSeeds' scalar fallback: per-seed trials fanned
// out to min(GOMAXPROCS, len(seeds)) workers, one engine per worker.
func (x *Executor) runSeedsScalar(ctx context.Context, req *Request, seeds []uint64, out []int) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := radio.NewEngineMulti(req.Graph, req.Sources, radio.StrictInformed)
			e.SetPerNodeSampling(req.PerNode)
			for i := range next {
				// A canceled trial leaves out[i] at the engine's partial
				// count; the ctx.Err() check below reports the batch failed.
				r, _ := radio.BroadcastTimeOnContext(ctx, e, req.Protocol, req.MaxRounds, xrand.New(seeds[i]))
				out[i] = r
			}
		}()
	}
dispatch:
	for i := range seeds {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if ctx.Err() != nil {
		return radio.Canceled(ctx)
	}
	return nil
}

// checkout resolves the scalar engine a request runs on: the caller's
// own engine (re-initialised, stays theirs), a pooled one (returned by
// the caller via release on clean completion), or a fresh build.
func (x *Executor) checkout(req *Request) (e *radio.Engine, pooled bool) {
	switch {
	case req.Engine != nil:
		e = req.Engine
		e.SetSources(req.Sources)
		e.SetResultReuse(true)
	case req.Pool:
		e = x.AcquireEngine(req.Graph)
		e.SetSources(req.Sources)
		e.SetResultReuse(true)
		pooled = true
	default:
		e = radio.NewEngineMulti(req.Graph, req.Sources, radio.StrictInformed)
	}
	e.Attach(req.Observer)
	e.SetPerNodeSampling(req.PerNode)
	return e, pooled
}

// release detaches and checks a pooled engine back in.
func (x *Executor) release(e *radio.Engine) {
	e.Attach(nil)
	x.ReleaseEngine(e)
}

// AcquireEngine checks a scalar engine for g out of the per-graph pool,
// building one on a miss. Engines are handed out only for the exact
// graph pointer they were built on. Callers that route through the
// facade (repro.WithEngine) get sources/observer/sampling
// re-initialised there; others must SetSources themselves. Return the
// engine with ReleaseEngine when the run is over — or drop it on a
// panic, so corrupt state never re-enters the pool.
func (x *Executor) AcquireEngine(g *graph.Graph) *radio.Engine {
	x.mu.Lock()
	if el, ok := x.entries[g]; ok {
		x.order.MoveToFront(el)
		ent := el.Value.(*poolEntry)
		if n := len(ent.idle); n > 0 {
			e := ent.idle[n-1]
			ent.idle[n-1] = nil
			ent.idle = ent.idle[:n-1]
			x.mu.Unlock()
			x.c[BackendScalar].poolHits.Add(1)
			return e
		}
	}
	x.mu.Unlock()
	x.c[BackendScalar].poolMisses.Add(1)
	return radio.NewEngine(g, 0, radio.StrictInformed)
}

// ReleaseEngine returns an engine to its graph's pool, creating the
// pool entry on first release and evicting the least-recently-used
// graph's engines beyond the executor's graph bound. Engines beyond the
// per-graph bound are dropped for the GC.
func (x *Executor) ReleaseEngine(e *radio.Engine) {
	g := e.Graph()
	x.mu.Lock()
	defer x.mu.Unlock()
	el, ok := x.entries[g]
	if !ok {
		el = x.order.PushFront(&poolEntry{g: g})
		x.entries[g] = el
		for x.order.Len() > x.graphCap {
			oldest := x.order.Back()
			x.order.Remove(oldest)
			delete(x.entries, oldest.Value.(*poolEntry).g)
		}
	} else {
		x.order.MoveToFront(el)
	}
	ent := el.Value.(*poolEntry)
	if len(ent.idle) < x.engineCap {
		ent.idle = append(ent.idle, e)
	}
}

// Forget drops every engine pooled for g — the eviction hook for graph
// caches, keeping engine memory from outliving the graphs it serves.
// (Correctness never depends on it: a rebuilt graph is a new pointer
// and misses regardless.)
func (x *Executor) Forget(g *graph.Graph) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if el, ok := x.entries[g]; ok {
		x.order.Remove(el)
		delete(x.entries, g)
	}
}

// Snapshot returns the executor's cumulative counters.
func (x *Executor) Snapshot() Stats {
	return Stats{
		Scalar:   x.c[BackendScalar].snapshot(),
		Schedule: x.c[BackendSchedule].snapshot(),
		Lanes:    x.c[BackendLanes].snapshot(),
	}
}

// Session pins one request's engines across many trials — the campaign
// runner's per-(worker, point) reuse: the scalar engine is built once
// and reset per trial, the lane engine lazily on the first batched
// block. A Session is not safe for concurrent use; its trials remain
// pure functions of their rng/seed, so which session ran a trial never
// shows in the results. Sessions never use the executor's engine pool —
// their engines live for the session and are abandoned to the GC with
// it (Close is optional and only drops references).
type Session struct {
	x    *Executor
	req  Request
	plan *lanes.Plan // non-nil iff batches of req classify as lanes

	engine *radio.Engine // lazily built scalar engine
	lane   *lanes.Engine // lazily built lane engine
}

// Open prepares a session for req. The request is captured by value
// (sources copied), so later caller mutations don't leak in.
func (x *Executor) Open(req *Request) *Session {
	s := &Session{x: x, req: *req}
	s.req.Sources = append([]int32(nil), req.Sources...)
	s.req.Pool = false // session engines are owned, never pooled
	if s.req.Schedule == nil {
		s.plan, _ = x.batchPlan(&s.req)
	}
	return s
}

// Backend reports where batches of this session execute: BackendLanes
// when the plan probe succeeded, BackendScalar otherwise (single-trial
// Time calls are always scalar).
func (s *Session) Backend() Backend {
	if s.plan != nil {
		return BackendLanes
	}
	return Classify(&s.req)
}

// scalar returns the session's scalar engine, building it on first use.
func (s *Session) scalar() *radio.Engine {
	if s.engine == nil {
		if s.req.Engine != nil {
			s.engine = s.req.Engine
			s.engine.SetSources(s.req.Sources)
			s.engine.SetResultReuse(true)
		} else {
			s.engine = radio.NewEngineMulti(s.req.Graph, s.req.Sources, radio.StrictInformed)
		}
		s.engine.Attach(s.req.Observer)
		s.engine.SetPerNodeSampling(s.req.PerNode)
	}
	return s.engine
}

// Time runs one trial on the session's scalar engine (reset first) and
// returns the completion round, maxRounds+1 if the broadcast did not
// finish. Uncanceled, it is bit-identical for a given rng no matter
// which session or worker runs it.
func (s *Session) Time(ctx context.Context, rng *xrand.Rand) (int, error) {
	e := s.scalar()
	s.x.c[BackendScalar].runs.Add(1)
	s.x.c[BackendScalar].trials.Add(1)
	return radio.BroadcastTimeOnContext(ctx, e, s.req.Protocol, s.req.MaxRounds, rng)
}

// RunSeeds runs one trial per seed through the session's batch backend:
// the lane engine (built lazily on the first call, then reused) in
// blocks of up to Width seeds, or — when the session classified scalar
// — per-seed trials on the session's scalar engine, identical to
// dispatching each seed through Time. out[i] receives seed i's
// completion round.
func (s *Session) RunSeeds(ctx context.Context, seeds []uint64, out []int) error {
	if len(seeds) != len(out) {
		return fmt.Errorf("exec: %d seeds but %d result slots", len(seeds), len(out))
	}
	if s.plan == nil {
		s.x.c[BackendScalar].runs.Add(1)
		s.x.c[BackendScalar].trials.Add(int64(len(seeds)))
		s.x.c[BackendScalar].fallbacks.Add(1)
		e := s.scalar()
		for i, seed := range seeds {
			r, err := radio.BroadcastTimeOnContext(ctx, e, s.req.Protocol, s.req.MaxRounds, xrand.New(seed))
			if err != nil {
				return err
			}
			out[i] = r
		}
		return nil
	}
	s.x.c[BackendLanes].runs.Add(1)
	s.x.c[BackendLanes].trials.Add(int64(len(seeds)))
	if s.lane == nil {
		s.lane = lanes.NewEngine(s.req.Graph, s.req.Sources, s.plan)
	}
	for len(seeds) > 0 {
		n := len(seeds)
		if n > Width {
			n = Width
		}
		if err := s.lane.RunContext(ctx, seeds[:n], out[:n]); err != nil {
			return err
		}
		seeds, out = seeds[n:], out[n:]
	}
	return nil
}

// Close drops the session's engine references. Optional: sessions own
// their engines outright, so the GC reclaims them either way.
func (s *Session) Close() {
	s.engine, s.lane = nil, nil
}

// Package-level conveniences dispatching through Default().

// Run executes one trial on the default executor; see Executor.Run.
func Run(ctx context.Context, req *Request, rng *xrand.Rand) (radio.Result, error) {
	return std.Run(ctx, req, rng)
}

// Time executes one timed trial on the default executor; see
// Executor.Time.
func Time(ctx context.Context, req *Request, rng *xrand.Rand) (int, error) {
	return std.Time(ctx, req, rng)
}

// RunSeeds executes a seed batch on the default executor; see
// Executor.RunSeeds.
func RunSeeds(ctx context.Context, req *Request, seeds []uint64, out []int) (Backend, error) {
	return std.RunSeeds(ctx, req, seeds, out)
}

// Open opens a session on the default executor; see Executor.Open.
func Open(req *Request) *Session { return std.Open(req) }

// AcquireEngine checks an engine out of the default executor's pool.
func AcquireEngine(g *graph.Graph) *radio.Engine { return std.AcquireEngine(g) }

// ReleaseEngine returns an engine to the default executor's pool.
func ReleaseEngine(e *radio.Engine) { std.ReleaseEngine(e) }

// Forget drops the default executor's pooled engines for g.
func Forget(g *graph.Graph) { std.Forget(g) }

// Snapshot returns the default executor's counters.
func Snapshot() Stats { return std.Snapshot() }
