package exp

// Experiment E20: k-broadcast throughput (multi-message pipelining).

import (
	"fmt"
	"math"

	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Extension: k-broadcast throughput (one message per transmission)",
		Claim: "With availability-aware selection (rarest-first) the completion time grows linearly, T(k) ≈ k·T(1); blind per-sender selection pays a further multiplicative penalty. Radio pipelining is throughput-limited by receptions, not latency.",
		Run:   runE20,
	})
}

// pipeProtocol is the 1/d-selective protocol with a short flood prefix,
// shared by all E20 rows.
type pipeProtocol struct{ q float64 }

func (p pipeProtocol) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	if round <= 3 {
		return true
	}
	return rng.Bernoulli(p.q)
}

func runE20(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	n := map[Scale]int{Small: 500, Medium: 4000, Full: 16000}[cfg.Scale]
	d := 2 * math.Log(float64(n))
	rng := xrand.New(cfg.Seed)
	g := sampleConnected(n, d, rng)
	budget := 4000 * 64 // generous: worst row is blind selection at k=32

	t := table.New(fmt.Sprintf("E20: k-broadcast on G(n=%d, d=2 ln n) — median rounds", n),
		"k", "rarest-first", "random", "round-robin", "rarest/k·T(1)")
	var t1 float64
	for i, k := range []int{1, 2, 4, 8, 16, 32} {
		k := k
		medFor := func(sel pipeline.Selection, off uint64) float64 {
			samples := sweep.Run(trials, cfg.Seed+uint64(i)*1801+off, func(r *xrand.Rand) float64 {
				return float64(pipeline.Time(g, 0, k, pipeProtocol{1 / d}, sel, budget, r))
			})
			return stats.Median(samples)
		}
		rare := medFor(pipeline.RarestFirst, 0)
		random := medFor(pipeline.RandomMsg, 1)
		rr := medFor(pipeline.RoundRobinMsg, 2)
		if i == 0 {
			t1 = rare
		}
		t.AddRow(k, rare, random, rr, rare/(float64(k)*t1))
	}
	t.AddNote("T(1)=%.0f; rarest-first column ≈ k·T(1) is the linear throughput law; blind policies fall behind as k grows", t1)
	return []*table.Table{t}
}
