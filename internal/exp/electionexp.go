package exp

// Experiment E21: leader election in single-hop radio networks — the
// companion primitive to broadcasting, measuring what knowledge and
// collision detection are worth on a single shared channel.

import (
	"fmt"

	"repro/internal/election"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E21",
		Title: "Extension: single-hop leader election",
		Claim: "Knowing n exactly elects in e ≈ 2.7 expected rounds; with only a bound N, the no-CD sweep pays the Θ(log n) walk down to the right activity scale, while collision detection (Willard) binary-searches it in O(log log N).",
		Run:   runE21,
	})
}

func runE21(cfg Config) []*table.Table {
	trials := map[Scale]int{Small: 300, Medium: 2000, Full: 10000}[cfg.Scale]
	if cfg.Trials > 0 {
		trials = cfg.Trials
	}
	n := 1000
	maxR := 1 << 20
	t := table.New(fmt.Sprintf("E21: leader election among n=%d stations (mean rounds over %d trials)", n, trials),
		"bound N", "log2 N", "uniform (knows n)", "sweep (no CD)", "Willard (CD)")
	for i, logBound := range []int{10, 14, 18, 22, 26, 30} {
		bound := 1 << uint(logBound)
		mean := func(run func(rng *xrand.Rand) int, off uint64) float64 {
			samples := sweep.Run(trials, cfg.Seed+uint64(i)*1901+off, func(rng *xrand.Rand) float64 {
				return float64(run(rng))
			})
			return stats.Mean(samples)
		}
		uni := mean(func(rng *xrand.Rand) int { return election.Uniform(n, maxR, rng) }, 0)
		sw := mean(func(rng *xrand.Rand) int { return election.Sweep(n, bound, maxR, rng) }, 1)
		wil := mean(func(rng *xrand.Rand) int { return election.Willard(n, bound, maxR, rng) }, 2)
		t.AddRow(bound, logBound, uni, sw, wil)
	}
	t.AddNote("uniform is flat (~e); the sweep pays ~log2 n = %d rounds to walk down to the right scale (plus slow growth in log N); Willard stays at ~log log N — the three knowledge regimes", 10)
	return []*table.Table{t}
}
