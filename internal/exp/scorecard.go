package exp

// The reproduction scorecard: one programmatic pass/fail acceptance check
// per claim of the paper. Where the tables of E1–E18 present measurements
// for a human reader, the scorecard distils each claim into a single
// machine-checkable criterion, so `cmd/experiments -verify` (and the test
// suite) can assert that the reproduction still holds after any change to
// the implementation.
//
// Acceptance criteria are deliberately loose (factor-2-ish margins): they
// must tolerate trial noise at small scale while still failing loudly if
// an algorithm or the simulator regresses.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gossip"
	"repro/internal/lower"
	"repro/internal/pipeline"
	"repro/internal/protocols"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/structure"
	"repro/internal/sweep"
	"repro/internal/xrand"
)

// Check is one acceptance criterion tied to a claim of the paper.
type Check struct {
	ID     string // experiment id the check belongs to
	Claim  string // one-line version of the claim
	Pass   bool
	Detail string // measured numbers and the threshold applied
}

// Scorecard evaluates every acceptance check at the given configuration
// and returns them in experiment order. It is independent of the table
// renderers: each check recomputes the minimal sufficient measurement.
func Scorecard(cfg Config) []Check {
	var out []Check
	add := func(id, claim string, pass bool, format string, args ...interface{}) {
		out = append(out, Check{ID: id, Claim: claim, Pass: pass, Detail: fmt.Sprintf(format, args...)})
	}

	trials := cfg.trials(3)

	// --- E1/E2: centralized upper bound shape ---------------------------
	{
		var ratios []float64
		for i, n := range []int{1000, 4000} {
			d := 2 * math.Log(float64(n))
			samples := sweep.Run(trials, cfg.Seed+uint64(i)*17, func(rng *xrand.Rand) float64 {
				g := sampleConnected(n, d, rng)
				return float64(centralizedRounds(g, d, rng.Uint64()))
			})
			ratios = append(ratios, stats.Mean(samples)/core.CentralizedBound(n, d))
		}
		spread := ratios[1] / ratios[0]
		pass := ratios[0] > 0.5 && ratios[0] < 8 && spread > 0.5 && spread < 2
		add("E1", "centralized rounds = Θ(ln n/ln d + ln d)", pass,
			"ratio@1k=%.2f ratio@4k=%.2f spread=%.2f (need ratios in (0.5,8), spread in (0.5,2))",
			ratios[0], ratios[1], spread)
	}

	// --- E3: centralized lower bound ------------------------------------
	{
		n := 1000
		d := 2 * math.Log(float64(n))
		rng := xrand.New(cfg.Seed + 31)
		g := sampleConnected(n, d, rng)
		_, res, err := lower.GreedyAdaptiveSchedule(g, 0, 100000)
		pass := err == nil && res.Completed &&
			float64(res.Rounds) >= 0.5*core.CentralizedBound(n, d) &&
			res.Rounds >= lower.Eccentricity(g, 0)
		add("E3", "even the greedy adversary needs Ω(ln n/ln d + ln d)", pass,
			"greedy=%d bound=%.1f ecc=%d", res.Rounds, core.CentralizedBound(n, d), lower.Eccentricity(g, 0))
	}

	// --- E4: distributed upper bound ------------------------------------
	{
		var ratios []float64
		for i, n := range []int{1000, 4000} {
			d := 2 * math.Log(float64(n))
			samples := sweep.Run(trials, cfg.Seed+uint64(i)*41, func(rng *xrand.Rand) float64 {
				g := sampleConnected(n, d, rng)
				return float64(distributedRounds(g, d, rng))
			})
			ratios = append(ratios, stats.Mean(samples)/core.DistributedBound(n))
		}
		spread := ratios[1] / ratios[0]
		pass := ratios[0] > 0.5 && ratios[0] < 10 && spread > 0.5 && spread < 2
		add("E4", "distributed rounds = Θ(ln n)", pass,
			"ratio@1k=%.2f ratio@4k=%.2f spread=%.2f", ratios[0], ratios[1], spread)
	}

	// --- E5: the paper's protocol beats Decay ---------------------------
	{
		n := 2000
		d := 2 * math.Log(float64(n))
		rng := xrand.New(cfg.Seed + 53)
		g := sampleConnected(n, d, rng)
		// Both protocol comparisons run many trials on the same graph, so
		// each worker reuses one engine (sweep.RunWith + BroadcastTimeOn)
		// instead of rebuilding graph-sized state per trial. Results are
		// identical to the per-trial BroadcastTime formulation.
		newEngine := func() *radio.Engine { return radio.NewEngine(g, 0, radio.StrictInformed) }
		paper := sweep.RunWith(5, cfg.Seed+54, newEngine, func(r *xrand.Rand, e *radio.Engine) float64 {
			return float64(radio.BroadcastTimeOn(e, core.NewDistributedProtocol(n, d), 8*n, r))
		})
		decay := sweep.RunWith(5, cfg.Seed+55, newEngine, func(r *xrand.Rand, e *radio.Engine) float64 {
			return float64(radio.BroadcastTimeOn(e, protocols.NewDecay(n), 8*n, r))
		})
		pass := stats.Median(paper) <= stats.Median(decay)
		add("E5", "paper protocol ≤ Decay on G(n,p)", pass,
			"paper median=%.0f decay median=%.0f", stats.Median(paper), stats.Median(decay))
	}

	// --- E6: oblivious sequences need Ω(ln n) ---------------------------
	{
		n := 1000
		d := 2 * math.Log(float64(n))
		rng := xrand.New(cfg.Seed + 61)
		g := sampleConnected(n, d, rng)
		best, _ := lower.OptimizeSequence(g, 0, d, core.MaxRoundsFor(n), 3, rng)
		pass := best >= 0.5*math.Log(float64(n)) && best <= float64(core.MaxRoundsFor(n))
		add("E6", "best oblivious sequence ≥ Ω(ln n)", pass,
			"best=%.1f ln n=%.1f", best, math.Log(float64(n)))
	}

	// --- E7: Lemma 3 layer structure ------------------------------------
	{
		n := 4000
		d := 3 * math.Log(float64(n))
		rng := xrand.New(cfg.Seed + 71)
		g := sampleConnected(n, d, rng)
		prof := structure.AnalyzeLayers(g, 0)
		big := prof.BigLayerCount(n, d)
		growthOK := len(prof.Layers) > 2 &&
			float64(prof.Layers[1].Size) > d/3 && float64(prof.Layers[1].Size) < 3*d
		pass := big <= 6 && growthOK
		add("E7", "layers grow ~d^i; O(1) big layers", pass,
			"|T_1|=%d (d=%.1f), big layers=%d (need <=6)", prof.Layers[1].Size, d, big)
	}

	// --- E8: Lemma 4 + Proposition 2 ------------------------------------
	{
		n := 4000
		d := 24.0
		rng := xrand.New(cfg.Seed + 83)
		g := gen.Gnp(n, gen.PForDegree(n, d), rng)
		x, y := halves(n)
		c := structure.RandomizedCover(g, x, y, 1/d, rng)
		coverOK := c.CoveredFraction() > 0.15
		cover := structure.MinimalCover(g, x, y[:40])
		m := structure.MatchingFromMinimalCover(g, cover, y[:40])
		prop2OK := m.Size() == len(cover)
		add("E8", "1/d covers Ω(|Y|); Prop 2 equality", coverOK && prop2OK,
			"cover fraction=%.2f (need >0.15); |cover|=%d |matching|=%d", c.CoveredFraction(), len(cover), m.Size())
	}

	// --- E9: dense regime -----------------------------------------------
	{
		n := 500
		var ratios []float64
		for i, f := range []float64{0.5, 0.05} {
			samples := sweep.Run(trials, cfg.Seed+uint64(i)*97, func(rng *xrand.Rand) float64 {
				g := gen.DensifiedComplement(n, f, rng)
				return float64(centralizedRounds(g, (1-f)*float64(n), rng.Uint64()))
			})
			ratios = append(ratios, stats.Mean(samples)/core.DenseBound(n, f))
		}
		spread := math.Max(ratios[0], ratios[1]) / math.Min(ratios[0], ratios[1])
		pass := spread < 4 && ratios[0] > 0.2 && ratios[1] > 0.2
		add("E9", "dense regime rounds = Θ(ln n/ln(1/f))", pass,
			"ratios %.2f / %.2f, spread %.2f (need <4)", ratios[0], ratios[1], spread)
	}

	// --- E12: ablation sanity — literal pool stalls ---------------------
	{
		n := 2000
		d := 2 * math.Log(float64(n))
		rng := xrand.New(cfg.Seed + 101)
		g := sampleConnected(n, d, rng)
		lit := core.NewRestrictedPoolProtocol(n, d)
		lit.SafetyRound = 0
		litTime := radio.BroadcastTime(g, 0, lit, core.MaxRoundsFor(n), rng)
		defTime := radio.BroadcastTime(g, 0, core.NewDistributedProtocol(n, d), core.MaxRoundsFor(n), rng)
		pass := defTime <= core.MaxRoundsFor(n) && litTime > defTime
		add("E12", "literal pool strands; proof pool completes", pass,
			"literal=%d default=%d budget=%d", litTime, defTime, core.MaxRoundsFor(n))
	}

	// --- E13: gossiping beats round robin --------------------------------
	{
		n := 400
		d := 2 * math.Log(float64(n))
		rng := xrand.New(cfg.Seed + 107)
		g := sampleConnected(n, d, rng)
		budget := 100 * n
		phased := gossip.Time(g, gossip.NewPhased(n, d), budget, rng.Derive(1))
		rr := gossip.Time(g, gossip.RoundRobin{N: n}, budget, rng.Derive(2))
		pass := phased <= budget && rr <= budget && phased < rr
		add("E13", "phased gossip beats collision-free round robin", pass,
			"phased=%d round-robin=%d", phased, rr)
	}

	// --- E19: knowledge-free CD backoff completes ------------------------
	{
		n := 1000
		d := 2 * math.Log(float64(n))
		rng := xrand.New(cfg.Seed + 109)
		g := sampleConnected(n, d, rng)
		budget := 40 * core.MaxRoundsFor(n)
		e := radio.NewEngine(g, 0, radio.StrictInformed)
		res := radio.RunCDProtocol(e, protocols.NewBackoff(n), budget, rng)
		decay := radio.BroadcastTime(g, 0, protocols.NewDecay(n), budget, rng.Derive(3))
		pass := res.Completed && res.Rounds < budget && decay <= budget
		add("E19", "knowledge-free AIMD backoff completes under CD", pass,
			"backoff=%d decay=%d budget=%d", res.Rounds, decay, budget)
	}

	// --- E20: rarest-first pipelining is ~linear in k --------------------
	{
		n := 400
		d := 2 * math.Log(float64(n))
		rng := xrand.New(cfg.Seed + 127)
		g := sampleConnected(n, d, rng)
		p := pipeProtocol{1 / d}
		budget := 200000
		t1 := pipeline.Time(g, 0, 1, p, pipeline.RarestFirst, budget, rng.Derive(1))
		t8 := pipeline.Time(g, 0, 8, p, pipeline.RarestFirst, budget, rng.Derive(2))
		pass := t1 <= budget && t8 <= budget && t8 <= 4*8*t1
		add("E20", "rarest-first k-broadcast is ~linear in k", pass,
			"T(1)=%d T(8)=%d (need T(8) <= 32·T(1))", t1, t8)
	}

	// --- E14: greedy adversary near OPT ---------------------------------
	{
		rng := xrand.New(cfg.Seed + 113)
		worstGap := 0
		checked := 0
		for trial := 0; trial < 30 && checked < 6; trial++ {
			g, _, ok := gen.ConnectedGnp(10, 0.4, rng, 10)
			if !ok {
				continue
			}
			checked++
			opt, err := lower.OptimalBroadcastTime(g, 0)
			if err != nil {
				continue
			}
			_, res, err := lower.GreedyAdaptiveSchedule(g, 0, 1000)
			if err != nil || !res.Completed {
				continue
			}
			if gap := res.Rounds - opt; gap > worstGap {
				worstGap = gap
			}
		}
		pass := checked >= 4 && worstGap <= 2
		add("E14", "greedy adversary within +2 of exact OPT", pass,
			"instances=%d worst gap=%d", checked, worstGap)
	}
	return out
}

// ScorecardPassed reports whether every check passed.
func ScorecardPassed(checks []Check) bool {
	for _, c := range checks {
		if !c.Pass {
			return false
		}
	}
	return true
}
