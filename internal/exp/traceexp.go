package exp

// E23 — the observer-layer experiment: measured per-round collision rates
// versus the 1/d-selective prediction. With T transmitters in a round of
// G(n, d/n), a listening node's transmitting-neighbour count is
// approximately Poisson(λ) with λ = T·d/n, so the probability a listener
// loses the round to a collision is 1 − e^{−λ} − λe^{−λ}, and the
// probability of a clean reception is λe^{−λ}. In the 1/d-selective phase
// of the Theorem 7 protocol, T ≈ |I|/d keeps λ ≤ 1, which is exactly why
// the protocol makes steady progress; the flooding rounds show the
// collision storm the selectivity avoids.

import (
	"math"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/table"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E23",
		Title: "Collision rate under 1/d-selective transmission (round-level trace)",
		Claim: "With T transmitters a listener collides w.p. ≈ 1−e^{−λ}−λe^{−λ}, λ = T·d/n; the 1/d-selective phase keeps λ ≤ 1, so clean receptions track λe^{−λ}.",
		Run:   runCollisionTrace,
	})
}

// collisionPrediction returns the Poisson(λ) collision and clean-reception
// probabilities for a listening node.
func collisionPrediction(lambda float64) (pCol, pOK float64) {
	e := math.Exp(-lambda)
	return 1 - e - lambda*e, lambda * e
}

// roundAgg accumulates per-round sums across trials.
type roundAgg struct {
	trials    int // trials that executed this round
	tx        int
	successes int
	collision int
	listeners int
	informed  int // cumulative informed after the round, summed over trials
}

// collisionParams returns (n, d, trials, rows) for the scale.
func collisionParams(cfg Config) (int, float64, int, int) {
	switch cfg.Scale {
	case Small:
		return 1500, 12, cfg.trials(8), 14
	case Medium:
		return 30000, 25, cfg.trials(40), 18
	default:
		return 100000, 25, cfg.trials(50), 22
	}
}

func runCollisionTrace(cfg Config) []*table.Table {
	n, d, trials, rowCap := collisionParams(cfg)
	rng := xrand.New(cfg.Seed)
	g := sampleConnected(n, d, rng.Derive(1))
	p := core.NewDistributedProtocol(n, d)
	budget := core.MaxRoundsFor(n)

	e := radio.NewEngine(g, 0, radio.StrictInformed)
	var rec trace.Recorder
	e.Attach(&rec)
	agg := map[int]*roundAgg{}
	maxRound := 0
	for i := 0; i < trials; i++ {
		rec.Reset()
		radio.RunProtocolOn(e, p, budget, rng.Derive(uint64(i)+2))
		for _, r := range rec.Records {
			a := agg[r.Round]
			if a == nil {
				a = &roundAgg{}
				agg[r.Round] = a
			}
			a.trials++
			a.tx += r.Transmitters
			a.successes += r.Successes
			a.collision += r.Collisions
			a.listeners += r.Listeners()
			a.informed += r.Informed
			if r.Round > maxRound {
				maxRound = r.Round
			}
		}
	}

	t := table.New("E23: measured vs predicted per-listener collision rate",
		"round", "phase", "mean tx", "mean informed", "lambda", "P(col) meas", "P(col) pred", "P(ok) meas", "P(ok) pred")
	rows := maxRound
	if rows > rowCap {
		rows = rowCap
	}
	for r := 1; r <= rows; r++ {
		a := agg[r]
		if a == nil || a.listeners == 0 {
			continue
		}
		meanTx := float64(a.tx) / float64(a.trials)
		lambda := meanTx * d / float64(n)
		pCol, pOK := collisionPrediction(lambda)
		phase := "1/d-selective"
		switch {
		case r <= p.D1:
			phase = "flood"
		case r == p.D1+1:
			phase = "kick"
		}
		t.AddRow(r, phase,
			meanTx,
			float64(a.informed)/float64(a.trials),
			lambda,
			float64(a.collision)/float64(a.listeners),
			pCol,
			float64(a.successes)/float64(a.listeners),
			pOK)
	}
	t.AddNote("G(n=%d, d=%.0f), %d trials on one connected sample; λ = E[tx]·d/n (Poisson approximation of a listener's transmitting neighbours).", n, d, trials)
	t.AddNote("flood = rounds 1..D1 (everyone transmits), kick = round D1+1, then 1/d-selective; D1 = %d here.", p.D1)
	if maxRound > rows {
		t.AddNote("showing rounds 1..%d of %d executed (later selective rounds repeat the same regime).", rows, maxRound)
	}
	return []*table.Table{t}
}

// CollisionTraceRun executes ONE instrumented broadcast at the scale's
// parameters with the caller's observer attached alongside the internal
// recorder (pass nil for none) and returns the single-run
// measured-vs-predicted table. It backs the -trace/-trace-out flags of
// cmd/experiments.
func CollisionTraceRun(cfg Config, obs trace.Observer) *table.Table {
	n, d, _, _ := collisionParams(cfg)
	rng := xrand.New(cfg.Seed)
	g := sampleConnected(n, d, rng.Derive(1))
	p := core.NewDistributedProtocol(n, d)

	e := radio.NewEngine(g, 0, radio.StrictInformed)
	var rec trace.Recorder
	e.Attach(trace.Multi(obs, &rec))
	radio.RunProtocolOn(e, p, core.MaxRoundsFor(n), rng.Derive(2))

	t := table.New("instrumented broadcast: per-round collision rate",
		"round", "phase", "tx", "informed", "lambda", "P(col) meas", "P(col) pred", "P(ok) meas", "P(ok) pred")
	for _, r := range rec.Records {
		listeners := r.Listeners()
		if listeners == 0 {
			continue
		}
		lambda := float64(r.Transmitters) * d / float64(n)
		pCol, pOK := collisionPrediction(lambda)
		phase := "1/d-selective"
		switch {
		case r.Round <= p.D1:
			phase = "flood"
		case r.Round == p.D1+1:
			phase = "kick"
		}
		t.AddRow(r.Round, phase, r.Transmitters, r.Informed, lambda,
			float64(r.Collisions)/float64(listeners), pCol,
			float64(r.Successes)/float64(listeners), pOK)
	}
	t.AddNote("single run on G(n=%d, d=%.0f), seed %d; D1 = %d flooding rounds.", n, d, cfg.Seed, p.D1)
	return t
}
