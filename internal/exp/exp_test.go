package exp

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23"}
	all := All()
	if len(all) != len(want) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registry has %v, want %v", ids, want)
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("order: got %s at %d, want %s", e.ID, i, want[i])
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("%s incomplete: %+v", e.ID, e)
		}
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestScaleString(t *testing.T) {
	if Small.String() != "small" || Medium.String() != "medium" || Full.String() != "full" {
		t.Fatal("scale names")
	}
	if !strings.HasPrefix(Scale(9).String(), "scale(") {
		t.Fatal("unknown scale name")
	}
}

func TestConfigTrials(t *testing.T) {
	if (Config{}).trials(7) != 7 {
		t.Fatal("default trials")
	}
	if (Config{Trials: 2}).trials(7) != 2 {
		t.Fatal("override trials")
	}
}

// Every experiment must run at Small scale and produce at least one
// non-empty table. These are the repository's end-to-end smoke tests.
func TestAllExperimentsRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short mode")
	}
	cfg := Config{Scale: Small, Seed: 12345, Trials: 2}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("%s produced an empty table %q", e.ID, tb.Title)
				}
				if s := tb.String(); len(s) == 0 {
					t.Fatalf("%s renders empty", e.ID)
				}
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	cfg := Config{Scale: Small, Seed: 777, Trials: 2}
	for _, id := range []string{"E1", "E4"} {
		e, _ := Get(id)
		a := e.Run(cfg)
		b := e.Run(cfg)
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Fatalf("%s is not deterministic for a fixed seed", id)
			}
		}
	}
}

func TestNumericID(t *testing.T) {
	if numericID("E12") != 12 || numericID("E1") != 1 {
		t.Fatal("numericID broken")
	}
}

// Golden end-to-end regression: E14 at a fixed seed is fully
// deterministic (exhaustive search + greedy adversary on seeded graphs),
// so its rendered table must never change. If an intentional change to
// the generators, the engine or the adversary alters it, update the
// golden string consciously.
func TestE14GoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	e, ok := Get("E14")
	if !ok {
		t.Fatal("E14 missing")
	}
	tables := e.Run(Config{Scale: Small, Seed: 31337, Trials: 4})
	if len(tables) != 1 {
		t.Fatalf("%d tables", len(tables))
	}
	got := tables[0].CSV()
	again := e.Run(Config{Scale: Small, Seed: 31337, Trials: 4})[0].CSV()
	if got != again {
		t.Fatalf("E14 not deterministic:\n%s\nvs\n%s", got, again)
	}
	// Structural assertions on the golden content (robust to cosmetic
	// format changes): correct header and row count.
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 { // header + two sizes at Small scale
		t.Fatalf("E14 table has %d lines:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[0], "n,instances,mean OPT") {
		t.Fatalf("header changed: %q", lines[0])
	}
}
