package exp

// Experiment E9: the dense regime p = 1 − f(n) discussed at the end of
// §3.1 — broadcasting takes Θ(ln n / ln(1/f)) rounds.

import (
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Dense regime p = 1 − f(n) (§3.1 closing remark)",
		Claim: "For p = 1 − f with f ∈ [1/n, 1/2], broadcasting needs Θ(ln n / ln(1/f)) rounds.",
		Run:   runE9,
	})
}

func runE9(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	n := map[Scale]int{Small: 400, Medium: 1500, Full: 3000}[cfg.Scale]
	t := table.New("E9: centralized rounds on G(n, 1−f)",
		"f", "rounds (mean)", "bound ln n/ln(1/f)", "rounds/bound")
	var meas, bounds []float64
	for i, f := range []float64{0.5, 0.25, 0.1, 0.03, 0.01} {
		d := (1 - f) * float64(n)
		samples := sweep.Run(trials, cfg.Seed+uint64(i)*701, func(rng *xrand.Rand) float64 {
			g := gen.DensifiedComplement(n, f, rng)
			return float64(centralizedRounds(g, d, rng.Uint64()))
		})
		mean, _, _ := summarizeRounds(samples)
		bound := core.DenseBound(n, f)
		meas = append(meas, mean)
		bounds = append(bounds, bound)
		t.AddRow(f, mean, bound, mean/bound)
	}
	t.AddNote("n=%d trials=%d; a bounded rounds/bound column reproduces the Θ(ln n/ln(1/f)) remark", n, trials)
	t.AddNote("ratio spread: %.2f", stats.RatioSpread(meas, bounds))
	return []*table.Table{t}
}
