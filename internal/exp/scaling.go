package exp

// Experiments E1, E2 and E4: the upper-bound scaling claims of Theorems 5
// and 7.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Centralized broadcast time vs n (Theorem 5)",
		Claim: "Centralized broadcasting on G(n,p) completes in O(ln n/ln d + ln d) rounds w.h.p.",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Centralized broadcast time vs d (Theorem 5, U-shape)",
		Claim: "At fixed n the bound ln n/ln d + ln d is minimised near d = exp(sqrt(ln n)); measured rounds should trace the same U-shape.",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E4",
		Title: "Distributed broadcast time vs n (Theorem 7)",
		Claim: "The randomized distributed protocol completes in O(ln n) rounds w.h.p.",
		Run:   runE4,
	})
}

func runE1(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	t := table.New("E1: centralized rounds vs n  (d = 2 ln n, mean over trials)",
		"n", "d", "rounds", "p10", "p90", "bound", "rounds/bound")
	var ratios []float64
	for i, n := range nLadder(cfg.Scale) {
		d := 2 * math.Log(float64(n))
		samples := sweep.Run(trials, cfg.Seed+uint64(i)*101, func(rng *xrand.Rand) float64 {
			g := sampleConnected(n, d, rng)
			return float64(centralizedRounds(g, d, rng.Uint64()))
		})
		mean, p10, p90 := summarizeRounds(samples)
		bound := core.CentralizedBound(n, d)
		ratio := mean / bound
		ratios = append(ratios, ratio)
		t.AddRow(n, d, mean, p10, p90, bound, ratio)
	}
	spread := stats.RatioSpread(ratios, ones(len(ratios)))
	t.AddNote("trials=%d seed=%d; ratio spread max/min = %.2f (Θ-claim holds if bounded, ~<3)",
		trials, cfg.Seed, spread)
	return []*table.Table{t}
}

func runE2(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	n := map[Scale]int{Small: 2000, Medium: 16000, Full: 32000}[cfg.Scale]
	t := table.New(fmt.Sprintf("E2: centralized rounds vs d  (n = %d)", n),
		"d", "rounds", "bound", "rounds/bound")
	ds := degreeLadder(n, cfg.Scale)
	var meas, bounds []float64
	for i, d := range ds {
		samples := sweep.Run(trials, cfg.Seed+uint64(i)*211, func(rng *xrand.Rand) float64 {
			g := sampleConnected(n, d, rng)
			return float64(centralizedRounds(g, d, rng.Uint64()))
		})
		mean, _, _ := summarizeRounds(samples)
		bound := core.CentralizedBound(n, d)
		meas = append(meas, mean)
		bounds = append(bounds, bound)
		t.AddRow(d, mean, bound, mean/bound)
	}
	t.AddNote("optimal degree per theory: d* = exp(sqrt(ln n)) = %.1f", core.OptimalDegree(n))
	t.AddNote("ratio spread across the sweep: %.2f", stats.RatioSpread(meas, bounds))
	return []*table.Table{t}
}

func runE4(cfg Config) []*table.Table {
	trials := cfg.trials(5)
	var out []*table.Table
	for _, regime := range []struct {
		name string
		d    func(n int) float64
	}{
		{"d = 2 ln n", func(n int) float64 { return 2 * math.Log(float64(n)) }},
		{"d = n^0.4", func(n int) float64 { return math.Pow(float64(n), 0.4) }},
	} {
		rt := table.New(fmt.Sprintf("E4 (%s)", regime.name),
			"n", "d", "rounds", "p10", "p90", "ln n", "rounds/ln n")
		var ns, rounds []float64
		for i, n := range nLadder(cfg.Scale) {
			d := regime.d(n)
			samples := sweep.Run(trials, cfg.Seed+uint64(i)*307, func(rng *xrand.Rand) float64 {
				g := sampleConnected(n, d, rng)
				return float64(distributedRounds(g, d, rng))
			})
			mean, p10, p90 := summarizeRounds(samples)
			lnN := core.DistributedBound(n)
			ns = append(ns, float64(n))
			rounds = append(rounds, mean)
			rt.AddRow(n, d, mean, p10, p90, lnN, mean/lnN)
		}
		fit := stats.FitLogarithm(ns, rounds)
		rt.AddNote("fit rounds = a·ln n + b: a=%.2f b=%.2f R²=%.3f (Θ(ln n) claim: good fit, stable a)",
			fit.Slope, fit.Intercept, fit.R2)
		out = append(out, rt)
	}
	return out
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
