package exp

// Experiments E5, E10 and E11: protocol and model comparisons.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/radio"
	"repro/internal/rumor"
	"repro/internal/selective"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Distributed protocol vs baselines (§1.2 related work)",
		Claim: "On G(n,p) the paper's O(ln n) protocol beats Decay (O(log² n) here since D = O(log n/log log n)), ALOHA, round-robin (Θ(n)) and selective-family schedules.",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Radio vs single-port models (§1.2)",
		Claim: "Push rumor spreading completes in O(log n) on G(n,p) (Feige et al.); the radio protocol pays a constant-factor collision penalty but matches the Θ(log n) scaling; on bounded-degree graphs (hypercube, random regular) both slow to their diameter terms.",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "G(n,m) equivalence (§1.1)",
		Claim: "The results hold for Erdős–Rényi G(n,m) as well as Gilbert G(n,p): matched instances give matching broadcast times.",
		Run:   runE11,
	})
}

func runE5(cfg Config) []*table.Table {
	trials := cfg.trials(5)
	n := map[Scale]int{Small: 1000, Medium: 8000, Full: 32000}[cfg.Scale]
	d := 2 * math.Log(float64(n))
	rng := xrand.New(cfg.Seed)
	g := sampleConnected(n, d, rng)
	maxRounds := 4 * n // lets round-robin finish, others finish far earlier

	t := table.New(fmt.Sprintf("E5: protocol comparison on G(n=%d, d=2 ln n)", n),
		"protocol", "median rounds", "mean", "completed", "rounds/ln n", "transmissions (energy)")
	lnN := math.Log(float64(n))
	family := selective.Random(n, int(4*d), int(math.Ceil(math.Log2(float64(n)))), rng.Derive(77))
	for _, entry := range []struct {
		name string
		p    radio.Protocol
	}{
		{"paper (Thm 7)", core.NewDistributedProtocol(n, d)},
		{"paper, literal pool + valve", core.NewRestrictedPoolProtocol(n, d)},
		{"decay (BGI)", protocols.NewDecay(n)},
		{"aloha 1/d", protocols.NewAloha(d)},
		{"selective family", &selective.Protocol{F: family}},
		{"round robin", &protocols.RoundRobin{N: n}},
	} {
		p := entry.p
		// One trial per energy figure suffices; rounds get the full sweep.
		energyRes := radio.RunProtocol(g, 0, p, maxRounds, rng.Derive(hash(entry.name)))
		samples := sweep.Run(trials, cfg.Seed+hash(entry.name), func(r *xrand.Rand) float64 {
			return float64(radio.BroadcastTime(g, 0, p, maxRounds, r))
		})
		completed := 0
		for _, s := range samples {
			if int(s) <= maxRounds {
				completed++
			}
		}
		t.AddRow(entry.name, stats.Median(samples), stats.Mean(samples),
			fmt.Sprintf("%d/%d", completed, trials), stats.Median(samples)/lnN,
			energyRes.Stats.Transmissions)
	}
	t.AddNote("trials=%d; round budget %d (sentinel budget+1 on failure); energy column from one representative run", trials, maxRounds)
	return []*table.Table{t}
}

func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func runE10(cfg Config) []*table.Table {
	trials := cfg.trials(5)
	nGnp := map[Scale]int{Small: 1000, Medium: 8000, Full: 32000}[cfg.Scale]
	dim := map[Scale]int{Small: 10, Medium: 13, Full: 15}[cfg.Scale]
	nReg := map[Scale]int{Small: 1000, Medium: 8192, Full: 32768}[cfg.Scale]

	rng := xrand.New(cfg.Seed)
	type topo struct {
		name string
		g    *graph.Graph
		d    float64
	}
	dGnp := 2 * math.Log(float64(nGnp))
	// Bimodal configuration model: 90% low-degree nodes, 10% hubs, same
	// mean degree as the G(n,p) row — degree heterogeneity with matched
	// density.
	nLow := nGnp * 9 / 10
	nHigh := nGnp - nLow
	lowDeg := int(dGnp / 2)
	highDeg := (int(dGnp)*nGnp - lowDeg*nLow) / nHigh
	bimodal := gen.ConfigurationModel(gen.BimodalSequence(nLow, lowDeg, nHigh, highDeg), rng)
	topos := []topo{
		{"G(n,p) d=2 ln n", sampleConnected(nGnp, dGnp, rng), dGnp},
		{fmt.Sprintf("hypercube dim %d", dim), gen.Hypercube(dim), float64(dim)},
		{"random regular d=16", gen.RandomRegular(nReg, 16, rng), 16},
		{"bimodal config model", bimodal, dGnp},
	}
	t := table.New("E10: radio distributed vs single-port rumor spreading (median rounds)",
		"topology", "n", "radio (Thm 7)", "push", "push-pull", "agents k=n/8", "diameter")
	for _, tp := range topos {
		n := tp.g.N()
		maxR := 200 * core.MaxRoundsFor(n)
		radioT := sweep.Run(trials, cfg.Seed+hash(tp.name), func(r *xrand.Rand) float64 {
			return float64(radio.BroadcastTime(tp.g, 0, core.NewDistributedProtocol(n, tp.d), core.MaxRoundsFor(n), r))
		})
		pushT := sweep.Run(trials, cfg.Seed+hash(tp.name)+1, func(r *xrand.Rand) float64 {
			return float64(rumor.SpreadTime(tp.g, 0, rumor.Push, maxR, r))
		})
		ppT := sweep.Run(trials, cfg.Seed+hash(tp.name)+2, func(r *xrand.Rand) float64 {
			return float64(rumor.SpreadTime(tp.g, 0, rumor.PushPull, maxR, r))
		})
		agentT := sweep.Run(trials, cfg.Seed+hash(tp.name)+3, func(r *xrand.Rand) float64 {
			res := rumor.Agents(tp.g, 0, n/8+1, maxR, r)
			if !res.Completed {
				return float64(maxR + 1)
			}
			return float64(res.Rounds)
		})
		diam := graph.DiameterLower(tp.g, 0)
		t.AddRow(tp.name, n, stats.Median(radioT), stats.Median(pushT),
			stats.Median(ppT), stats.Median(agentT), diam)
	}
	t.AddNote("radio pays collisions; push/pull/agents use collision-free single-port links")
	return []*table.Table{t}
}

func runE11(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	t := table.New("E11: Gilbert G(n,p) vs Erdős–Rényi G(n,m) (matched m = p·C(n,2))",
		"n", "d", "model", "centralized rounds", "distributed rounds")
	var ns []int
	switch cfg.Scale {
	case Small:
		ns = []int{1000}
	case Medium:
		ns = []int{4000, 16000}
	default:
		ns = []int{4000, 16000, 64000}
	}
	for i, n := range ns {
		d := 2 * math.Log(float64(n))
		p := gen.PForDegree(n, d)
		m := int(p * float64(n) * float64(n-1) / 2)
		for _, model := range []string{"G(n,p)", "G(n,m)"} {
			model := model
			cent := sweep.Run(trials, cfg.Seed+uint64(i)*601+hash(model), func(rng *xrand.Rand) float64 {
				g := sampleModel(model, n, p, m, rng)
				return float64(centralizedRounds(g, d, rng.Uint64()))
			})
			dist := sweep.Run(trials, cfg.Seed+uint64(i)*601+hash(model)+5, func(rng *xrand.Rand) float64 {
				g := sampleModel(model, n, p, m, rng)
				return float64(distributedRounds(g, d, rng))
			})
			t.AddRow(n, d, model, stats.Mean(cent), stats.Mean(dist))
		}
	}
	t.AddNote("matching rounds across the two models reproduce the §1.1 equivalence remark")
	return []*table.Table{t}
}

// sampleModel draws a connected sample from the requested random-graph
// model.
func sampleModel(model string, n int, p float64, m int, rng *xrand.Rand) *graph.Graph {
	for tries := 0; tries < 100; tries++ {
		var g *graph.Graph
		if model == "G(n,m)" {
			g = gen.Gnm(n, m, rng)
		} else {
			g = gen.Gnp(n, p, rng)
		}
		if graph.IsConnected(g) {
			return g
		}
	}
	panic("exp: no connected sample for " + model)
}
