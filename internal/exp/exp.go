// Package exp defines the reproduction experiments E1–E12, one per claim
// of the paper (the paper itself has no tables or figures — it is a theory
// extended abstract — so each asymptotic claim is replaced by a finite-size
// scaling experiment; see DESIGN.md §3 for the index).
//
// Every experiment is a pure function of its Config (scale + seed) and
// returns one or more tables; cmd/experiments prints them and
// EXPERIMENTS.md records the medium-scale outputs next to the paper's
// claims.
package exp

import (
	"fmt"
	"sort"

	"repro/internal/table"
)

// Scale selects the size/effort of an experiment run.
type Scale int

const (
	// Small finishes in well under a second per experiment — used by the
	// test suite.
	Small Scale = iota
	// Medium is the scale recorded in EXPERIMENTS.md (seconds per
	// experiment).
	Medium
	// Full is the largest practical single-machine scale (minutes).
	Full
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// Config parameterises an experiment run.
type Config struct {
	Scale Scale
	Seed  uint64
	// Trials overrides the scale's default trial count when positive.
	Trials int
}

// trials returns the effective trial count given a scale default.
func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	return def
}

// Experiment couples an identifier with a runnable reproduction.
type Experiment struct {
	ID    string // "E1" ... "E12"
	Title string
	Claim string // the paper statement being reproduced
	Run   func(Config) []*table.Table
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment ordered by numeric ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return numericID(out[i].ID) < numericID(out[j].ID)
	})
	return out
}

func numericID(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}
