package exp

// Experiment E12: ablations of the design choices called out in DESIGN.md
// §4 — what the paper's proofs require versus what the measured system
// actually needs.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Ablations of the paper's design choices",
		Claim: "Disjoint selective sets, 1/d selectivity, the independent-cover finish (Thm 5) and the selective-pool definition (Thm 7) each earn their place.",
		Run:   runE12,
	})
}

func runE12(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	n := map[Scale]int{Small: 1000, Medium: 8000, Full: 32000}[cfg.Scale]
	d := 2 * math.Log(float64(n))

	// A1–A3: centralized schedule variants.
	t1 := table.New(fmt.Sprintf("E12a: centralized ablations (n=%d, d=2 ln n)", n),
		"variant", "rounds (mean)", "vs default")
	variants := []struct {
		name string
		mod  func(*core.CentralizedConfig)
	}{
		{"default (paper)", func(c *core.CentralizedConfig) {}},
		{"A1: non-disjoint selective sets", func(c *core.CentralizedConfig) { c.DisjointSelectiveSets = false }},
		{"A2: no cover finish", func(c *core.CentralizedConfig) { c.CoverFinish = false }},
		{"A3: selectivity 1/sqrt(d)", func(c *core.CentralizedConfig) { c.Selectivity = 1 / math.Sqrt(d) }},
		{"A3: selectivity 1/d^2", func(c *core.CentralizedConfig) { c.Selectivity = 1 / (d * d) }},
	}
	var baseline float64
	for i, v := range variants {
		v := v
		samples := sweep.Run(trials, cfg.Seed+uint64(i)*811, func(rng *xrand.Rand) float64 {
			g := sampleConnected(n, d, rng)
			c := core.DefaultCentralizedConfig(rng.Uint64())
			v.mod(&c)
			sched, _, err := core.BuildCentralizedSchedule(g, 0, d, c)
			if err != nil {
				panic(err)
			}
			res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
			if err != nil || !res.Completed {
				panic(fmt.Sprintf("ablation %q failed: %v", v.name, err))
			}
			return float64(res.Rounds)
		})
		mean := stats.Mean(samples)
		if i == 0 {
			baseline = mean
		}
		t1.AddRow(v.name, mean, mean/baseline)
	}

	// A4: distributed pool definitions.
	t2 := table.New(fmt.Sprintf("E12b: distributed pool ablations (n=%d, d=2 ln n)", n),
		"variant", "median rounds", "completed")
	maxR := core.MaxRoundsFor(n)
	pools := []struct {
		name string
		mk   func() radio.Protocol
	}{
		{"proof: all informed (default)", func() radio.Protocol { return core.NewDistributedProtocol(n, d) }},
		{"literal pool + safety valve", func() radio.Protocol { return core.NewRestrictedPoolProtocol(n, d) }},
		{"literal pool, no valve", func() radio.Protocol {
			p := core.NewRestrictedPoolProtocol(n, d)
			p.SafetyRound = 0
			return p
		}},
	}
	for i, v := range pools {
		v := v
		samples := sweep.Run(trials, cfg.Seed+uint64(i)*907, func(rng *xrand.Rand) float64 {
			g := sampleConnected(n, d, rng)
			return float64(radio.BroadcastTime(g, 0, v.mk(), maxR, rng))
		})
		completed := 0
		for _, s := range samples {
			if int(s) <= maxR {
				completed++
			}
		}
		t2.AddRow(v.name, stats.Median(samples), fmt.Sprintf("%d/%d", completed, trials))
	}
	t2.AddNote("the literal protocol statement (pool = first-phase nodes) strands finite instances; the proof's pool (all informed) is what works")
	return []*table.Table{t1, t2}
}
