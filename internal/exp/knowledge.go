package exp

// Experiment E19: what the protocol needs to know. The paper's model
// gives nodes (n, p) and no collision detection. E19 varies both axes:
// misparameterised (n,p) knowledge, and the CD model where an AIMD
// backoff protocol needs no knowledge at all.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/protocols"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Extension: knowledge requirements and collision detection",
		Claim: "The Theorem 7 protocol degrades gracefully under misestimated d; with collision detection, a knowledge-free AIMD backoff protocol gets within a constant factor of it — CD substitutes for the (n,p) knowledge the paper assumes.",
		Run:   runE19,
	})
}

func runE19(cfg Config) []*table.Table {
	trials := cfg.trials(5)
	n := map[Scale]int{Small: 1000, Medium: 8000, Full: 32000}[cfg.Scale]
	d := 2 * math.Log(float64(n))
	rng := xrand.New(cfg.Seed)
	g := sampleConnected(n, d, rng)
	budget := 40 * core.MaxRoundsFor(n)
	lnN := math.Log(float64(n))

	// E19a: misparameterised degree knowledge.
	t1 := table.New(fmt.Sprintf("E19a: Theorem 7 protocol with wrong degree estimates (n=%d, true d=%.1f)", n, d),
		"assumed d", "median rounds", "vs correct")
	var correct float64
	for i, factor := range []float64{1, 0.25, 0.5, 2, 4, 16} {
		assumed := d * factor
		samples := sweep.Run(trials, cfg.Seed+uint64(i)*1511, func(r *xrand.Rand) float64 {
			return float64(radio.BroadcastTime(g, 0, core.NewDistributedProtocol(n, assumed), budget, r))
		})
		med := stats.Median(samples)
		if i == 0 {
			correct = med
		}
		t1.AddRow(assumed, med, med/correct)
	}
	t1.AddNote("underestimating d (selectivity too high) costs more than overestimating: extra collisions vs extra silence")

	// E19b: collision detection buys knowledge-freeness.
	t2 := table.New(fmt.Sprintf("E19b: knowledge vs collision detection (n=%d)", n),
		"protocol", "knows", "CD", "median rounds", "x ln n")
	rows := []struct {
		name, knows, cd string
		run             func(r *xrand.Rand) float64
	}{
		{"paper (Thm 7)", "n, p", "no", func(r *xrand.Rand) float64 {
			return float64(radio.BroadcastTime(g, 0, core.NewDistributedProtocol(n, d), budget, r))
		}},
		{"decay (BGI)", "n", "no", func(r *xrand.Rand) float64 {
			return float64(radio.BroadcastTime(g, 0, protocols.NewDecay(n), budget, r))
		}},
		{"AIMD backoff", "nothing", "yes", func(r *xrand.Rand) float64 {
			e := radio.NewEngine(g, 0, radio.StrictInformed)
			res := radio.RunCDProtocol(e, protocols.NewBackoff(n), budget, r)
			if !res.Completed {
				return float64(budget + 1)
			}
			return float64(res.Rounds)
		}},
	}
	for i, row := range rows {
		samples := sweep.Run(trials, cfg.Seed+uint64(i)*1607, row.run)
		med := stats.Median(samples)
		t2.AddRow(row.name, row.knows, row.cd, med, med/lnN)
	}
	t2.AddNote("the backoff protocol learns its rate from collisions instead of computing 1/d from p")
	return []*table.Table{t1, t2}
}
