package exp

import (
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// sampleConnected draws a connected G(n,p) with expected degree d, retrying
// as needed; it panics only if no connected sample appears in 100 draws,
// which for the degree regimes used here indicates a misconfigured
// experiment rather than bad luck.
func sampleConnected(n int, d float64, rng *xrand.Rand) *graph.Graph {
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), rng, 100)
	if !ok {
		panic("exp: could not sample a connected graph; degree too low for n")
	}
	return g
}

// centralizedRounds builds and replays the Theorem 5 schedule once and
// returns its length in rounds.
func centralizedRounds(g *graph.Graph, d float64, seed uint64) int {
	sched, _, err := core.BuildCentralizedSchedule(g, 0, d, core.DefaultCentralizedConfig(seed))
	if err != nil {
		panic(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil {
		panic(err)
	}
	if !res.Completed {
		panic("exp: centralized schedule incomplete")
	}
	return res.Rounds
}

// distributedRounds runs the Theorem 7 protocol once and returns the
// completion round (sentinel maxRounds+1 if incomplete).
func distributedRounds(g *graph.Graph, d float64, rng *xrand.Rand) int {
	return radio.BroadcastTime(g, 0, core.NewDistributedProtocol(g.N(), d), core.MaxRoundsFor(g.N()), rng)
}

// summarizeRounds compacts samples into (mean, p10, p90).
func summarizeRounds(samples []float64) (mean, p10, p90 float64) {
	s := stats.Summarize(samples)
	return s.Mean, s.P10, s.P90
}

// degreeLadder returns the sweep degrees for E2 at the given scale.
func degreeLadder(n int, scale Scale) []float64 {
	base := []float64{0, 0, 0} // replaced below
	lnN := math.Log(float64(n))
	switch scale {
	case Small:
		base = []float64{1.5 * lnN, 3 * lnN, 8 * lnN, 20 * lnN}
	case Medium:
		base = []float64{1.5 * lnN, 2 * lnN, 4 * lnN, 8 * lnN, 16 * lnN, 32 * lnN, 64 * lnN}
	default:
		base = []float64{1.5 * lnN, 2 * lnN, 4 * lnN, 8 * lnN, 16 * lnN, 32 * lnN, 64 * lnN}
	}
	// Cap the density so the sweep stays within laptop memory: at the cap
	// the graph has n·cap/2 edges.
	for i := range base {
		if base[i] >= float64(n)/16 {
			base[i] = float64(n) / 16
		}
	}
	return base
}

// nLadder returns the sweep sizes for scaling experiments.
func nLadder(scale Scale) []int {
	switch scale {
	case Small:
		return []int{500, 1000, 2000}
	case Medium:
		return []int{1000, 2000, 4000, 8000, 16000, 32000}
	default:
		return []int{1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000}
	}
}

// median returns the median of integer samples.
func median(xs []int) float64 {
	return stats.Median(stats.Ints(xs))
}
