package exp

// Experiment E22: the δ in p ≥ δ·ln n/n. The paper assumes δ large enough
// for connectivity w.h.p. (δ > 1 is the classical threshold). E22 sweeps
// the degree constant c in d = c·ln n across the threshold and measures
// (a) how often G(n,p) is connected and (b) how the distributed broadcast
// time behaves just above the threshold, where the diameter inflates.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E22",
		Title: "Extension: behaviour at the connectivity threshold (the paper's δ)",
		Claim: "Below c = 1 (d = c·ln n) G(n,p) is essentially never connected; just above it broadcast works but pays an inflated diameter; by c = 2 (the regime used throughout) times settle to the flat Θ(ln n) plateau.",
		Run:   runE22,
	})
}

func runE22(cfg Config) []*table.Table {
	trials := cfg.trials(10)
	n := map[Scale]int{Small: 2000, Medium: 16000, Full: 64000}[cfg.Scale]
	t := table.New(fmt.Sprintf("E22: degree constant sweep d = c·ln n (n=%d)", n),
		"c", "connected", "diameter (2-sweep)", "distributed rounds", "rounds/ln n")
	lnN := math.Log(float64(n))
	for i, c := range []float64{0.6, 0.8, 1.0, 1.2, 1.5, 2, 3, 5} {
		d := c * lnN
		p := gen.PForDegree(n, d)
		parent := xrand.New(cfg.Seed + uint64(i)*2003)
		connectedCount := 0
		var diams, rounds []float64
		for trial := 0; trial < trials; trial++ {
			rng := parent.Derive(uint64(trial) + 1)
			g := gen.Gnp(n, p, rng)
			if !graph.IsConnected(g) {
				continue
			}
			connectedCount++
			diams = append(diams, float64(graph.DiameterLower(g, 0)))
			rounds = append(rounds, float64(radio.BroadcastTime(g, 0,
				core.NewDistributedProtocol(n, d), 4*core.MaxRoundsFor(n), rng)))
		}
		diam, round := math.NaN(), math.NaN()
		if connectedCount > 0 {
			diam = stats.Median(diams)
			round = stats.Median(rounds)
		}
		t.AddRow(c, fmt.Sprintf("%d/%d", connectedCount, trials), diam, round, round/lnN)
	}
	t.AddNote("connectivity flips at c = 1 (the classical ln n/n threshold); the paper's δ buys the flat plateau beyond it")
	return []*table.Table{t}
}
