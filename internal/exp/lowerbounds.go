package exp

// Experiments E3 and E6: the lower bounds of Theorems 6 and 8.

import (
	"math"

	"repro/internal/core"
	"repro/internal/lower"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Centralized lower bound (Theorem 6)",
		Claim: "No schedule broadcasts in o(ln n/ln d + ln d) rounds: eccentricity forces the first term; even a greedy full-knowledge adversary stays within a constant of the bound; the p=1/2 counting core needs Θ(log n) sets.",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E6",
		Title: "Distributed lower bound (Theorem 8)",
		Claim: "Any protocol deciding from (n,p,t) only — i.e. any transmit-probability sequence — needs Ω(ln n) rounds.",
		Run:   runE6,
	})
}

func runE3(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	var ns []int
	switch cfg.Scale {
	case Small:
		ns = []int{300, 600, 1200}
	case Medium:
		ns = []int{500, 1000, 2000, 4000}
	default:
		ns = []int{500, 1000, 2000, 4000, 8000}
	}
	t := table.New("E3a: greedy full-knowledge adversary vs the Theorem 6 bound (d = 2 ln n)",
		"n", "d", "ecc", "greedy rounds", "bound", "greedy/bound")
	for i, n := range ns {
		d := 2 * math.Log(float64(n))
		parent := xrand.New(cfg.Seed + uint64(i)*401)
		eccs := make([]float64, 0, trials)
		rounds := make([]float64, 0, trials)
		for trial := 0; trial < trials; trial++ {
			rng := parent.Derive(uint64(trial) + 1)
			g := sampleConnected(n, d, rng)
			_, res, err := lower.GreedyAdaptiveSchedule(g, 0, 100000)
			if err != nil {
				panic(err)
			}
			eccs = append(eccs, float64(lower.Eccentricity(g, 0)))
			rounds = append(rounds, float64(res.Rounds))
		}
		bound := core.CentralizedBound(n, d)
		mean, _, _ := summarizeRounds(rounds)
		eccMean, _, _ := summarizeRounds(eccs)
		t.AddRow(n, d, eccMean, mean, bound, mean/bound)
	}
	t.AddNote("greedy/bound staying bounded away from 0 across n supports the Ω(ln n/ln d + ln d) shape")

	// E3b: the p = 1/2 counting core — sequences of 1- and 2-element sets
	// leave a survivor until the sequence length reaches Θ(log n).
	t2 := table.New("E3b: survivor threshold of the p=1/2 counting core",
		"n", "threshold k*", "log2 n", "k*/log2 n")
	probeTrials := map[Scale]int{Small: 150, Medium: 400, Full: 1000}[cfg.Scale]
	rng := xrand.New(cfg.Seed + 999)
	for _, exp2 := range thresholds(cfg.Scale) {
		n := 1 << exp2
		k := lower.SurvivorThreshold(n, probeTrials, 0.5, rng)
		t2.AddRow(n, k, exp2, float64(k)/float64(exp2))
	}
	t2.AddNote("k*/log2 n roughly constant ⇒ Ω(log n) rounds needed even with the relaxed charging of the Theorem 6 proof")
	return []*table.Table{t, t2}
}

func thresholds(scale Scale) []int {
	switch scale {
	case Small:
		return []int{8, 12, 16}
	case Medium:
		return []int{8, 12, 16, 20}
	default:
		return []int{8, 12, 16, 20, 24}
	}
}

func runE6(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	var ns []int
	switch cfg.Scale {
	case Small:
		ns = []int{500, 1000}
	case Medium:
		ns = []int{1000, 4000, 16000}
	default:
		ns = []int{1000, 4000, 16000, 64000}
	}
	t := table.New("E6: best oblivious transmit-probability sequence vs ln n (d = 2 ln n)",
		"n", "d", "best mean rounds", "ln n", "best/ln n")
	for i, n := range ns {
		d := 2 * math.Log(float64(n))
		rng := xrand.New(cfg.Seed + uint64(i)*503)
		g := sampleConnected(n, d, rng)
		best, _ := lower.OptimizeSequence(g, 0, d, core.MaxRoundsFor(n), trials, rng)
		t.AddRow(n, d, best, core.DistributedBound(n), best/core.DistributedBound(n))
	}
	t.AddNote("the optimizer searches constants, decay cycles, ramps and flood-then-select patterns; best/ln n bounded below supports Ω(ln n)")
	return []*table.Table{t}
}
