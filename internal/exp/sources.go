package exp

// Experiment E18: the "for any u ∈ V" quantifier of Theorems 5 and 7, and
// multi-source speedup.

import (
	"math"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Extension: source invariance and multi-source speedup",
		Claim: "The theorems hold 'for any u ∈ V': completion time barely depends on the source; and k replicated sources shave the diameter term, converging to the ln d floor.",
		Run:   runE18,
	})
}

func runE18(cfg Config) []*table.Table {
	n := map[Scale]int{Small: 1000, Medium: 8000, Full: 32000}[cfg.Scale]
	d := 2 * math.Log(float64(n))
	rng := xrand.New(cfg.Seed)
	g := sampleConnected(n, d, rng)
	maxR := core.MaxRoundsFor(n)

	// E18a: sweep many random sources with the distributed protocol.
	k := map[Scale]int{Small: 10, Medium: 30, Full: 50}[cfg.Scale]
	times := radio.SourceSweep(g, k, core.NewDistributedProtocol(n, d), maxR, rng)
	s := stats.Summarize(stats.Ints(times))
	t1 := table.New("E18a: distributed completion time across random sources",
		"sources", "min", "median", "mean", "max", "max/min")
	t1.AddRow(k, s.Min, s.Median, s.Mean, s.Max, s.Max/math.Max(s.Min, 1))
	t1.AddNote("a small max/min spread is the finite-size form of 'for any u ∈ V'")

	// E18b: multi-source speedup.
	t2 := table.New("E18b: multi-source broadcast (median rounds over trials)",
		"k sources", "median rounds", "rounds/ln n")
	trials := cfg.trials(5)
	for _, k := range []int{1, 4, 16, 64, 256} {
		if k > n/4 {
			break
		}
		var ts []float64
		for trial := 0; trial < trials; trial++ {
			r := rng.Derive(uint64(k*1000 + trial))
			sources := r.Sample(n, k)
			res := radio.RunProtocolMulti(g, sources, core.NewDistributedProtocol(n, d), maxR, r)
			rounds := res.Rounds
			if !res.Completed {
				rounds = maxR + 1
			}
			ts = append(ts, float64(rounds))
		}
		t2.AddRow(k, stats.Median(ts), stats.Median(ts)/math.Log(float64(n)))
	}
	t2.AddNote("speedup saturates: the ln d collision-resolution floor is source-count independent")
	return []*table.Table{t1, t2}
}
