package exp

// Experiments E13 and E14: extensions beyond the paper's statements —
// gossiping (the open problem its conclusions point to) and exact optima
// certifying the E3 adversary.

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/gossip"
	"repro/internal/lower"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Extension: gossiping in radio random graphs (§4 open problems)",
		Claim: "A Theorem-7-style phased protocol gossips (all-to-all) far faster than collision-free round-robin, and the gap widens with n.",
		Run:   runE13,
	})
	register(Experiment{
		ID:    "E14",
		Title: "Extension: exact optimal schedules on tiny graphs",
		Claim: "Exhaustive state-space search gives the true OPT for n <= 16; the E3 greedy adversary matches it within +1 round, grounding the lower-bound evidence.",
		Run:   runE14,
	})
}

func runE13(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	var ns []int
	switch cfg.Scale {
	case Small:
		ns = []int{200, 400}
	case Medium:
		ns = []int{500, 1000, 2000, 4000}
	default:
		ns = []int{500, 1000, 2000, 4000, 8000}
	}
	t := table.New("E13: gossiping — phased (Thm 7 style) vs uniform 1/d vs round-robin (median rounds)",
		"n", "d", "phased", "uniform 1/d", "round robin", "phased/ln² n")
	for i, n := range ns {
		d := 2 * math.Log(float64(n))
		budget := 50*n + 100000
		mk := func(p gossip.Protocol, off uint64) float64 {
			samples := sweep.Run(trials, cfg.Seed+uint64(i)*1009+off, func(rng *xrand.Rand) float64 {
				g := sampleConnected(n, d, rng)
				return float64(gossip.Time(g, p, budget, rng))
			})
			return stats.Median(samples)
		}
		phased := mk(gossip.NewPhased(n, d), 0)
		uniform := mk(gossip.Uniform{Q: 1 / d}, 1)
		rr := mk(gossip.RoundRobin{N: n}, 2)
		ln2 := math.Log(float64(n)) * math.Log(float64(n))
		t.AddRow(n, d, phased, uniform, rr, phased/ln2)
	}
	t.AddNote("rumor sets merge on every clean reception, so completion stays polylog-ish; round robin pays Θ(n)")
	return []*table.Table{t}
}

func runE14(cfg Config) []*table.Table {
	trials := cfg.trials(8)
	var sizes []int
	switch cfg.Scale {
	case Small:
		sizes = []int{8, 10}
	case Medium:
		sizes = []int{8, 10, 12, 14}
	default:
		sizes = []int{8, 10, 12, 14, 16}
	}
	t := table.New("E14: exact OPT vs greedy adversary vs eccentricity (tiny G(n, p=0.4))",
		"n", "instances", "mean OPT", "mean greedy", "greedy-OPT gaps (max)", "mean ecc")
	for _, n := range sizes {
		rng := xrand.New(cfg.Seed + uint64(n)*31)
		var opts, greedys, eccs []float64
		maxGap := 0
		got := 0
		for trial := 0; trial < 10*trials && got < trials; trial++ {
			g, _, ok := gen.ConnectedGnp(n, 0.4, rng, 10)
			if !ok {
				continue
			}
			got++
			opt, err := lower.OptimalBroadcastTime(g, 0)
			if err != nil {
				panic(err)
			}
			_, res, err := lower.GreedyAdaptiveSchedule(g, 0, 1000)
			if err != nil {
				panic(err)
			}
			if gap := res.Rounds - opt; gap > maxGap {
				maxGap = gap
			}
			opts = append(opts, float64(opt))
			greedys = append(greedys, float64(res.Rounds))
			eccs = append(eccs, float64(lower.Eccentricity(g, 0)))
		}
		t.AddRow(n, got, stats.Mean(opts), stats.Mean(greedys),
			fmt.Sprintf("%d", maxGap), stats.Mean(eccs))
	}
	t.AddNote("OPT from exhaustive BFS over 2^n information states; greedy never beats OPT and stays within a small additive gap")
	return []*table.Table{t}
}
