package exp

import "testing"

// The scorecard is the repository's executable definition of "the
// reproduction holds": every check must pass at the test scale.
func TestScorecardAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("scorecard skipped in -short mode")
	}
	checks := Scorecard(Config{Scale: Small, Seed: 424242, Trials: 3})
	if len(checks) < 10 {
		t.Fatalf("only %d checks", len(checks))
	}
	for _, c := range checks {
		if c.ID == "" || c.Claim == "" || c.Detail == "" {
			t.Fatalf("malformed check %+v", c)
		}
		if !c.Pass {
			t.Errorf("%s FAILED: %s — %s", c.ID, c.Claim, c.Detail)
		}
	}
	if !ScorecardPassed(checks) && !t.Failed() {
		t.Fatal("ScorecardPassed inconsistent with individual checks")
	}
}

func TestScorecardPassedHelper(t *testing.T) {
	if !ScorecardPassed(nil) {
		t.Fatal("empty scorecard should pass")
	}
	if ScorecardPassed([]Check{{Pass: true}, {Pass: false}}) {
		t.Fatal("failing check not detected")
	}
	if !ScorecardPassed([]Check{{Pass: true}, {Pass: true}}) {
		t.Fatal("all-pass not detected")
	}
}

func TestScorecardDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	cfg := Config{Scale: Small, Seed: 99, Trials: 2}
	a := Scorecard(cfg)
	b := Scorecard(cfg)
	if len(a) != len(b) {
		t.Fatal("scorecard length varies")
	}
	for i := range a {
		if a[i].Pass != b[i].Pass || a[i].Detail != b[i].Detail {
			t.Fatalf("check %s not deterministic:\n%s\n%s", a[i].ID, a[i].Detail, b[i].Detail)
		}
	}
}
