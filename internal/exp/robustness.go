package exp

// Experiments E15, E16 and E17: engineering-grade probes beyond the
// paper's statements — the centralized schedule family, crash-fault
// robustness, and community-structured topologies.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lower"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Centralized schedule family (paper vs adversary vs deterministic cover)",
		Claim: "The Theorem 5 schedule sits between the greedy full-knowledge adversary (near-OPT) and the deterministic layered set-cover family from the §1.2 related work; post-hoc compression finds little slack in it.",
		Run:   runE15,
	})
	register(Experiment{
		ID:    "E16",
		Title: "Extension: crash-fault robustness of the distributed protocol",
		Claim: "Under independent crashes at rate q, survivors of G(n,p) form G(n', p) with n' ≈ (1−q)n, so the Theorem 7 protocol (re-parameterised with the survivor degree) keeps its O(ln n) completion until the survivor degree nears the connectivity threshold.",
		Run:   runE16,
	})
	register(Experiment{
		ID:    "E17",
		Title: "Extension: community structure (stochastic block model)",
		Claim: "Broadcast time stays logarithmic while the inter-community degree is ω(1), and blows up as the bridge thins — the homogeneity of G(n,p) is doing real work in the paper's bounds.",
		Run:   runE17,
	})
}

func runE15(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	n := map[Scale]int{Small: 800, Medium: 4000, Full: 16000}[cfg.Scale]
	d := 2 * math.Log(float64(n))
	t := table.New(fmt.Sprintf("E15: centralized schedule family on G(n=%d, d=2 ln n) (mean rounds)", n),
		"schedule", "rounds", "transmissions", "collisions", "vs bound")
	bound := core.CentralizedBound(n, d)

	type row struct {
		name string
		run  func(g *graph.Graph, rng *xrand.Rand) radio.Result
	}
	rows := []row{
		{"greedy adversary (near-OPT)", func(g *graph.Graph, rng *xrand.Rand) radio.Result {
			_, res, err := lower.GreedyAdaptiveSchedule(g, 0, 100000)
			if err != nil {
				panic(err)
			}
			return res
		}},
		{"paper (Thm 5)", func(g *graph.Graph, rng *xrand.Rand) radio.Result {
			sched, _, err := core.BuildCentralizedSchedule(g, 0, d, core.DefaultCentralizedConfig(rng.Uint64()))
			if err != nil {
				panic(err)
			}
			res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
			if err != nil {
				panic(err)
			}
			return res
		}},
		{"paper + compression", func(g *graph.Graph, rng *xrand.Rand) radio.Result {
			sched, _, err := core.BuildCentralizedSchedule(g, 0, d, core.DefaultCentralizedConfig(rng.Uint64()))
			if err != nil {
				panic(err)
			}
			comp, err := core.CompressSchedule(g, 0, sched)
			if err != nil {
				panic(err)
			}
			res, err := radio.ExecuteSchedule(g, 0, comp, radio.StrictInformed)
			if err != nil {
				panic(err)
			}
			return res
		}},
		{"layered set-cover (deterministic)", func(g *graph.Graph, rng *xrand.Rand) radio.Result {
			sched, err := core.BuildLayeredCoverSchedule(g, 0)
			if err != nil {
				panic(err)
			}
			res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
			if err != nil {
				panic(err)
			}
			return res
		}},
		{"round robin (naive)", func(g *graph.Graph, rng *xrand.Rand) radio.Result {
			res, err := radio.ExecuteSchedule(g, 0, core.RoundRobinSchedule(g, 0), radio.StrictInformed)
			if err != nil {
				panic(err)
			}
			return res
		}},
	}
	for i, r := range rows {
		r := r
		var rounds, txs, cols []float64
		parent := xrand.New(cfg.Seed + uint64(i)*1201)
		for trial := 0; trial < trials; trial++ {
			rng := parent.Derive(uint64(trial) + 1)
			g := sampleConnected(n, d, rng)
			res := r.run(g, rng)
			if !res.Completed {
				panic(fmt.Sprintf("E15 %q incomplete", r.name))
			}
			rounds = append(rounds, float64(res.Rounds))
			txs = append(txs, float64(res.Stats.Transmissions))
			cols = append(cols, float64(res.Stats.Collisions))
		}
		t.AddRow(r.name, stats.Mean(rounds), stats.Mean(txs), stats.Mean(cols),
			stats.Mean(rounds)/bound)
	}
	t.AddNote("bound = ln n/ln d + ln d = %.2f; trials=%d", bound, trials)
	return []*table.Table{t}
}

func runE16(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	n := map[Scale]int{Small: 1000, Medium: 8000, Full: 32000}[cfg.Scale]
	d := 4 * math.Log(float64(n)) // headroom so survivors stay connected at high q
	t := table.New(fmt.Sprintf("E16: crash faults, n=%d, base d=4 ln n", n),
		"crash rate q", "survivor d", "reached/reachable", "rounds (mean)", "rounds/ln n'")
	for i, q := range []float64{0, 0.1, 0.3, 0.5, 0.7} {
		parent := xrand.New(cfg.Seed + uint64(i)*1301)
		var ratios, rounds, norm []float64
		for trial := 0; trial < trials; trial++ {
			rng := parent.Derive(uint64(trial) + 1)
			g := sampleConnected(n, d, rng)
			sc := faults.Crash(g, 0, q, rng)
			reachable := sc.ReachableFromSource()
			dSurv := d * (1 - q)
			p := core.NewDistributedProtocol(sc.Sub.N(), dSurv)
			res := radio.RunProtocol(sc.Sub, sc.SrcNew, p, 4*core.MaxRoundsFor(n), rng)
			frac := 1.0
			if reachable > 0 {
				frac = float64(res.Informed) / float64(reachable)
			}
			ratios = append(ratios, frac)
			lnSurv := math.Log(math.Max(float64(sc.Sub.N()), 2))
			norm = append(norm, float64(res.Rounds)/lnSurv)
			rounds = append(rounds, float64(res.Rounds))
		}
		t.AddRow(q, d*(1-q), stats.Mean(ratios), stats.Mean(rounds), stats.Mean(norm))
	}
	t.AddNote("reached/reachable = informed survivors over survivors the source can reach at all")
	return []*table.Table{t}
}

func runE17(cfg Config) []*table.Table {
	trials := cfg.trials(3)
	n := map[Scale]int{Small: 1000, Medium: 8000, Full: 32000}[cfg.Scale]
	dIn := 4 * math.Log(float64(n))
	t := table.New(fmt.Sprintf("E17: two-community SBM, n=%d, intra-degree=4 ln n", n),
		"bridge edges (total)", "distributed rounds", "rounds/ln n", "completed")
	half := float64(n) / 2
	// Sweep the AGGREGATE number of cross-community edges, from a single
	// bridge edge up to Θ(n): the thin end is where homogeneity breaks.
	bridges := []float64{1, 4, float64(int(math.Log(float64(n)))), 16, half / 4, half}
	sort.Float64s(bridges)
	for i, b := range bridges {
		b := b
		pOut := b / (half * half)
		if pOut > 1 {
			pOut = 1
		}
		maxR := 40 * core.MaxRoundsFor(n)
		completed := 0
		samples := sweep.Run(trials, cfg.Seed+uint64(i)*1409, func(rng *xrand.Rand) float64 {
			// Condition on connectivity (at least one bridge edge): the
			// claim is about crossing a thin bridge, not about its
			// existence.
			var g *graph.Graph
			for try := 0; ; try++ {
				g = gen.TwoBlocks(n, gen.PForDegree(n/2, dIn), pOut, rng)
				if graph.IsConnected(g) {
					break
				}
				if try > 100 {
					return float64(maxR + 1)
				}
			}
			dTotal := dIn + b/half
			p := core.NewDistributedProtocol(n, dTotal)
			return float64(radio.BroadcastTime(g, 0, p, maxR, rng))
		})
		for _, s := range samples {
			if int(s) <= maxR {
				completed++
			}
		}
		t.AddRow(b, stats.Median(samples), stats.Median(samples)/math.Log(float64(n)),
			fmt.Sprintf("%d/%d", completed, trials))
	}
	t.AddNote("crossing a single bridge edge costs ~d extra rounds (its endpoint must transmit alone among the far endpoint's ~d neighbours); with Θ(ln n) or more bridge edges the logarithmic time is restored")
	return []*table.Table{t}
}
