package exp

// Experiments E7 and E8: the structural lemmas (Lemma 3, Lemma 4,
// Proposition 2).

import (
	"fmt"
	"math"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/structure"
	"repro/internal/table"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "BFS layer structure of G(n,p) (Lemma 3)",
		Claim: "Layers grow like d^i; intra-layer edges and multi-parent vertices are rare (O(|T_i|/d²) share >1 joint neighbour); only O(1) layers are big.",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E8",
		Title: "Independent covers and matchings (Lemma 4, Proposition 2)",
		Claim: "A random 1/d-fraction of a Θ(n) set X independently covers Ω(|Y|) of Y; with |X|/|Y| = Ω(d²) a full independent matching exists; every minimal cover yields an equal-size independent matching.",
		Run:   runE8,
	})
}

func runE7(cfg Config) []*table.Table {
	n := map[Scale]int{Small: 2000, Medium: 16000, Full: 64000}[cfg.Scale]
	var out []*table.Table
	for _, d := range []float64{1.5 * math.Log(float64(n)), 4 * math.Log(float64(n))} {
		rng := xrand.New(cfg.Seed + uint64(d))
		g := sampleConnected(n, d, rng)
		prof := structure.AnalyzeLayers(g, 0)
		t := table.New(fmt.Sprintf("E7: layer profile, n=%d, d=%.1f", n, d),
			"i", "|T_i|", "d^i", "intra-edges", "multi-parent", "share>1 next", "norm·d²/|T_i|")
		for _, st := range prof.Layers {
			pred := math.Pow(d, float64(st.Depth))
			if pred > float64(n) {
				pred = float64(n)
			}
			norm := math.NaN()
			if st.Size > 0 {
				norm = float64(st.ShareTwoNext) * d * d / float64(st.Size)
			}
			t.AddRow(st.Depth, st.Size, pred, st.IntraEdges, st.MultiParent, st.ShareTwoNext, norm)
		}
		t.AddNote("big layers (>= n/d³): %d (Lemma 3: O(1))", prof.BigLayerCount(n, d))
		t.AddNote("norm column bounded ⇒ share>1-joint-neighbour count is O(|T_i|/d²)")
		out = append(out, t)
	}

	// E7b: the grouping property (second half of Lemma 3), in its regime
	// d⁴ << n where cross-group common neighbours must be rare.
	dG := math.Pow(0.1*float64(n), 0.25) // d⁴/n ≈ 0.1, the lemma's sparse regime
	gb := gen.Gnp(n, gen.PForDegree(n, dG), xrand.New(cfg.Seed+991))
	src := largestComponentSource(gb)
	t2 := table.New(fmt.Sprintf("E7b: Lemma 3 grouping by unique parent (n=%d, d=%.1f, d⁴/n=%.2f)",
		n, dG, math.Pow(dG, 4)/float64(n)),
		"depth", "groups", "singly-parented", "multi-parent", "max group", "cross-share rate")
	for _, depth := range []int{1, 2, 3} {
		gp := structure.GroupLayer(gb, src, depth)
		t2.AddRow(depth, len(gp.Groups), gp.SinglyParented(), gp.MultiParent,
			gp.MaxGroupSize, gp.ViolationRate())
	}
	t2.AddNote("group sizes are O(d)=O(pn) and distinct groups rarely share neighbours, as Lemma 3 states")
	out = append(out, t2)
	return out
}

// largestComponentSource returns a vertex inside the largest component.
func largestComponentSource(g *graph.Graph) int32 {
	return graph.LargestComponent(g)[0]
}

func runE8(cfg Config) []*table.Table {
	n := map[Scale]int{Small: 2000, Medium: 16000, Full: 32000}[cfg.Scale]
	trials := cfg.trials(5)

	// E8a: randomized independent cover fraction at q = 1/d, X = Y = n/2.
	t1 := table.New("E8a: randomized 1/d covers (X, Y a random halving of V)",
		"d", "covered fraction (mean)", "collided", "missed")
	for _, d := range []float64{12, 24, 48} {
		rngSeed := cfg.Seed + uint64(d)
		var fr, col, mis []float64
		for trial := 0; trial < trials; trial++ {
			rng := xrand.New(rngSeed + uint64(trial)*13)
			g := gen.Gnp(n, gen.PForDegree(n, d), rng)
			x, y := halves(n)
			c := structure.RandomizedCover(g, x, y, 1/d, rng)
			total := float64(len(y))
			fr = append(fr, c.CoveredFraction())
			col = append(col, float64(len(c.Collided))/total)
			mis = append(mis, float64(len(c.Missed))/total)
		}
		t1.AddRow(d, stats.Mean(fr), stats.Mean(col), stats.Mean(mis))
	}
	t1.AddNote("Lemma 4 predicts a constant covered fraction (~1/e² ≈ 0.37·(d/2·1/d·e^{-d/2·1/d})… exactly λe^{-λ} with λ=|X|/d·p·d/|X| — here λ=1/2 ⇒ 0.30)")

	// E8b: independent matching saturation as |X|/|Y| crosses d².
	t2 := table.New("E8b: greedy independent matching saturation",
		"d", "|Y|", "|X|/|Y|", "vs d²", "matched/|Y|", "independent")
	d := 8.0
	for _, ratio := range []float64{d * d / 16, d * d / 4, d * d, 4 * d * d} {
		rng := xrand.New(cfg.Seed + uint64(ratio*7))
		g := gen.Gnp(n, gen.PForDegree(n, d), rng)
		ySize := int(float64(n) / (1 + ratio))
		if ySize < 4 {
			ySize = 4
		}
		x, y := split(n, n-ySize)
		m := structure.GreedyIndependentMatching(g, x, y)
		frac := float64(m.Size()) / float64(len(y))
		t2.AddRow(d, len(y), ratio, ratio/(d*d), frac, m.IsIndependent(g))
	}
	t2.AddNote("matched fraction → 1 as |X|/|Y| reaches Ω(d²), per Lemma 4's second statement")

	// E8c: Proposition 2 — minimal cover size equals extracted matching
	// size, across several densities.
	t3 := table.New("E8c: Proposition 2 (minimal cover → independent matching)",
		"d", "|Y|", "|cover|", "|matching|", "equal")
	for _, d := range []float64{8, 16, 32} {
		rng := xrand.New(cfg.Seed + uint64(d)*3)
		g := gen.Gnp(n, gen.PForDegree(n, d), rng)
		ySize := 50
		x, y := split(n, n-ySize)
		cover := structure.MinimalCover(g, x, y)
		m := structure.MatchingFromMinimalCover(g, cover, y)
		t3.AddRow(d, len(y), len(cover), m.Size(), len(cover) == m.Size())
	}
	return []*table.Table{t1, t2, t3}
}

// halves splits [0,n) into two equal parts.
func halves(n int) (x, y []int32) { return split(n, n/2) }

// split returns x = [0, k) and y = [k, n).
func split(n, k int) (x, y []int32) {
	x = make([]int32, 0, k)
	y = make([]int32, 0, n-k)
	for i := 0; i < n; i++ {
		if i < k {
			x = append(x, int32(i))
		} else {
			y = append(y, int32(i))
		}
	}
	return x, y
}
