package oracle

// The differential harness: randomized (graph, protocol, seed) cases
// cross-checking every execution path of the optimized radio engine
// against the naive oracle — per-node transmitter draws, the sampled
// fast path, dense vs sparse round classification, schedule replay,
// multi-source runs, faulted subgraphs, and the CD feedback variant.
//
// Reproducing a failure: every case derives its randomness from the
// printed case index via xrand.New(diffBaseSeed).Derive(i), and the
// failure message carries the full case parameters (n, m, src, protocol,
// run seed). Re-run the one test with -run and the same build to replay
// the identical case; see docs/WALKTHROUGH.md ("Trust, but verify").
// ORACLE_DIFF_CASES=N scales every suite up for soak runs.

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// diffBaseSeed anchors every randomized suite; the per-case stream is
// Derive(case index), so a failing case replays from its index alone.
const diffBaseSeed = 0xD1FF0AC1E5

// diffCases returns the per-suite case budget: at least min, scaled up
// by ORACLE_DIFF_CASES for soak runs.
func diffCases(min int) int {
	if s := os.Getenv("ORACLE_DIFF_CASES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > min {
			return v
		}
	}
	return min
}

// randomCase samples one differential case: a G(n,p) graph (connected or
// not — the comparison holds either way), a source, and a run seed.
func randomCase(crng *xrand.Rand) (g *graph.Graph, src int32, seed uint64) {
	n := 2 + crng.Intn(40)
	d := 0.5 + crng.Float64()*float64(n)/2
	g = gen.Gnp(n, d/float64(n), crng)
	return g, int32(crng.Intn(n)), crng.Uint64()
}

// randomProtocol draws a protocol covering flooding, kick-off and
// selective uniform rounds, restricted cohorts, and (when perNodeOnly
// protocols are allowed) a non-uniform protocol that forces the engine's
// per-node fallback even on the sampled path.
func randomProtocol(crng *xrand.Rand, n int, includeNonUniform bool) (radio.Protocol, string) {
	d := 2 + crng.Float64()*10
	k := 4
	if includeNonUniform {
		k = 5
	}
	switch crng.Intn(k) {
	case 0:
		return core.NewDistributedProtocol(n, d), fmt.Sprintf("distributed(d=%.2f)", d)
	case 1:
		return core.NewRestrictedPoolProtocol(n, d), fmt.Sprintf("restricted(d=%.2f)", d)
	case 2:
		return protocols.NewDecay(n), "decay"
	case 3:
		return protocols.NewAloha(d), fmt.Sprintf("aloha(d=%.2f)", d)
	default:
		return &protocols.RoundRobin{N: n}, "roundrobin"
	}
}

func maxRoundsFor(n int) int {
	mr := core.MaxRoundsFor(n)
	if mr > 200 {
		mr = 200
	}
	return mr
}

// TestDifferentialPerNode checks the engine's per-node sampling path
// bit-for-bit against the oracle: both consume the same rng stream in
// the same order, so every field of the result and every per-round
// record must match exactly.
func TestDifferentialPerNode(t *testing.T) {
	base := xrand.New(diffBaseSeed)
	for i := 0; i < diffCases(220); i++ {
		crng := base.Derive(uint64(i))
		g, src, seed := randomCase(crng)
		p, name := randomProtocol(crng, g.N(), true)
		mr := maxRoundsFor(g.N())

		e := radio.NewEngine(g, src, radio.StrictInformed)
		e.SetPerNodeSampling(true)
		rec := &trace.Recorder{}
		e.Attach(rec)
		res := e.RunProtocol(p, mr, xrand.New(seed))

		o := New(g, []int32{src}, radio.StrictInformed)
		ores := o.RunProtocol(p, mr, xrand.New(seed))

		if d := Compare(res, ores); d != "" {
			t.Fatalf("case %d (%v src=%d proto=%s seed=%#x): per-node path diverges from oracle:\n%s",
				i, g, src, name, seed, d)
		}
		if d := CompareRecords(rec.Records, o.Records); d != "" {
			t.Fatalf("case %d (%v src=%d proto=%s seed=%#x): per-round records diverge:\n%s",
				i, g, src, name, seed, d)
		}
	}
}

// TestDifferentialSampled checks the sampled-transmitter fast path: the
// oracle cannot reproduce the (shorter) sampled rng stream, so the
// harness records exactly what the engine drew each round and replays
// those sets against the naive semantics. On top of the state/record
// comparison it verifies each drawn set against the protocol's declared
// cohort: every transmitter was informed before the round and inside the
// cohort cutoff, and q >= 1 rounds select every eligible node.
func TestDifferentialSampled(t *testing.T) {
	base := xrand.New(diffBaseSeed + 1)
	for i := 0; i < diffCases(220); i++ {
		crng := base.Derive(uint64(i))
		g, src, seed := randomCase(crng)
		p, name := randomProtocol(crng, g.N(), false)
		mr := maxRoundsFor(g.N())

		e := radio.NewEngine(g, src, radio.StrictInformed) // sampled by default
		rec := &TxRecorder{}
		e.Attach(rec)
		res := e.RunProtocol(p, mr, xrand.New(seed))

		o := New(g, []int32{src}, radio.StrictInformed)
		ores, err := o.Replay(rec.Sets)
		if err != nil {
			t.Fatalf("case %d (%v src=%d proto=%s seed=%#x): engine drew a set the model rejects: %v",
				i, g, src, name, seed, err)
		}
		if d := Compare(res, ores); d != "" {
			t.Fatalf("case %d (%v src=%d proto=%s seed=%#x): sampled path diverges from oracle:\n%s",
				i, g, src, name, seed, d)
		}
		if d := CompareRecords(rec.Records, o.Records); d != "" {
			t.Fatalf("case %d (%v src=%d proto=%s seed=%#x): per-round records diverge:\n%s",
				i, g, src, name, seed, d)
		}
		checkCohorts(t, i, name, p, rec.Sets, ores.InformedAt)
	}
}

// checkCohorts validates every recorded uniform-round transmitter set
// against the protocol's declared (q, cohort): membership, eligibility
// timing, and completeness for q >= 1 rounds.
func checkCohorts(t *testing.T, caseIdx int, name string, p radio.Protocol, sets [][]int32, informedAt []int32) {
	t.Helper()
	up, ok := p.(radio.UniformProtocol)
	if !ok {
		return
	}
	for ri, set := range sets {
		round := ri + 1
		q, cohort, uok := up.RoundProb(round)
		if !uok {
			continue
		}
		eligible := 0
		for _, at := range informedAt {
			if at != radio.NotInformed && int(at) < round && cohort.Contains(at) {
				eligible++
			}
		}
		for _, v := range set {
			at := informedAt[v]
			if at == radio.NotInformed || int(at) >= round {
				t.Fatalf("case %d (proto=%s): round %d transmitter %d informed at %d — not yet eligible",
					caseIdx, name, round, v, at)
			}
			if !cohort.Contains(at) {
				t.Fatalf("case %d (proto=%s): round %d transmitter %d (informed at %d) outside cohort",
					caseIdx, name, round, v, at)
			}
		}
		if q >= 1 && len(set) != eligible {
			t.Fatalf("case %d (proto=%s): round %d has q=%v but drew %d of %d eligible nodes",
				caseIdx, name, round, q, len(set), eligible)
		}
	}
}

// TestDifferentialRoundClassification drives Engine.Round directly with
// random transmitter sets (duplicates injected, uninformed nodes allowed
// under MagicTransmitters) so that rounds land on both sides of the
// dense/sparse classification switch (2·visits >= n), and compares every
// round against the oracle. The suite asserts both strategies were
// actually exercised.
func TestDifferentialRoundClassification(t *testing.T) {
	base := xrand.New(diffBaseSeed + 2)
	dense, sparse := 0, 0
	for i := 0; i < diffCases(220); i++ {
		crng := base.Derive(uint64(i))
		g, src, _ := randomCase(crng)
		n := g.N()
		e := radio.NewEngine(g, src, radio.MagicTransmitters)
		rec := &trace.Recorder{}
		e.Attach(rec)
		o := New(g, []int32{src}, radio.MagicTransmitters)
		rounds := 1 + crng.Intn(10)
		for r := 0; r < rounds; r++ {
			k := crng.Intn(n + 1)
			set := crng.Sample(n, k)
			// Inject duplicates: both sides must treat them as one.
			if len(set) > 0 && crng.Bool() {
				set = append(set, set[crng.Intn(len(set))])
			}
			visits := 0
			seen := make(map[int32]bool)
			for _, v := range set {
				if !seen[v] {
					seen[v] = true
					visits += g.Degree(v)
				}
			}
			if 2*visits >= n {
				dense++
			} else {
				sparse++
			}
			newlyE, errE := e.Round(set)
			newlyO, errO := o.Round(set)
			if (errE == nil) != (errO == nil) {
				t.Fatalf("case %d round %d: engine err %v, oracle err %v", i, r+1, errE, errO)
			}
			if errE != nil {
				continue
			}
			if !sameSet(newlyE, newlyO) {
				t.Fatalf("case %d (%v) round %d (visits=%d, n=%d): newly informed differ: engine %v, oracle %v",
					i, g, r+1, visits, n, newlyE, newlyO)
			}
		}
		if d := CompareRecords(rec.Records, o.Records); d != "" {
			t.Fatalf("case %d (%v): records diverge:\n%s", i, g, d)
		}
		if d := Compare(engineResult(e), o.Result()); d != "" {
			t.Fatalf("case %d (%v): final state diverges:\n%s", i, g, d)
		}
	}
	if dense == 0 || sparse == 0 {
		t.Fatalf("classification coverage: %d dense, %d sparse rounds — both branches must be exercised", dense, sparse)
	}
}

// engineResult snapshots a manually driven engine as a radio.Result for
// the comparator (the run helpers do this via their own resultOf).
func engineResult(e *radio.Engine) radio.Result {
	return radio.Result{
		Completed:  e.Done(),
		Rounds:     e.RoundCount(),
		Informed:   e.InformedCount(),
		N:          e.Graph().N(),
		InformedAt: e.InformedTimes(),
		Stats:      e.Stats(),
	}
}

// sameSet compares two vertex lists as sets (the engine's dense and
// sparse strategies emit newly-informed lists in different orders, which
// no caller may rely on).
func sameSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int32(nil), a...)
	bs := append([]int32(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestDifferentialSchedule checks schedule replay under every
// transmitter policy, including schedules that use uninformed or
// out-of-range transmitters: engine and oracle must agree on the error
// and, when the replay succeeds, on the full result.
func TestDifferentialSchedule(t *testing.T) {
	base := xrand.New(diffBaseSeed + 3)
	policies := []radio.TransmitterPolicy{radio.StrictInformed, radio.FilterUninformed, radio.MagicTransmitters}
	errs := 0
	for i := 0; i < diffCases(220); i++ {
		crng := base.Derive(uint64(i))
		g, src, _ := randomCase(crng)
		n := g.N()
		policy := policies[crng.Intn(len(policies))]
		s := &radio.Schedule{}
		rounds := 1 + crng.Intn(12)
		for r := 0; r < rounds; r++ {
			k := crng.Intn(n + 1)
			set := crng.Sample(n, k)
			if crng.Intn(8) == 0 {
				// Occasionally corrupt a round with an out-of-range vertex:
				// both sides must reject it identically.
				set = append(set, int32(n)+int32(crng.Intn(3)))
			}
			s.Sets = append(s.Sets, set)
		}

		rec := &trace.Recorder{}
		res, errE := radio.ExecuteScheduleObserved(g, []int32{src}, s, policy, rec)
		o := New(g, []int32{src}, policy)
		ores, errO := o.ExecuteSchedule(s)

		if (errE == nil) != (errO == nil) {
			t.Fatalf("case %d (%v policy=%d): engine err %v, oracle err %v", i, g, policy, errE, errO)
		}
		if errE != nil {
			errs++
			if errors.Is(errE, radio.ErrUninformedTransmitter) != errors.Is(errO, radio.ErrUninformedTransmitter) {
				t.Fatalf("case %d: error kinds differ: engine %v, oracle %v", i, errE, errO)
			}
			continue
		}
		if d := Compare(res, ores); d != "" {
			t.Fatalf("case %d (%v policy=%d): schedule replay diverges:\n%s", i, g, policy, d)
		}
		if d := CompareRecords(rec.Records, o.Records); d != "" {
			t.Fatalf("case %d (%v policy=%d): records diverge:\n%s", i, g, policy, d)
		}
	}
	if errs == 0 {
		t.Fatal("schedule suite never exercised an error path")
	}
}

// TestDifferentialMultiSource checks multi-source runs on both engine
// paths (per-node bit-identical, sampled via replay) against an oracle
// started from the same source set.
func TestDifferentialMultiSource(t *testing.T) {
	base := xrand.New(diffBaseSeed + 4)
	for i := 0; i < diffCases(220); i++ {
		crng := base.Derive(uint64(i))
		g, _, seed := randomCase(crng)
		n := g.N()
		k := 1 + crng.Intn(4)
		if k > n {
			k = n
		}
		sources := crng.Sample(n, k)
		// Duplicate a source sometimes: both sides must tolerate it.
		if crng.Bool() {
			sources = append(sources, sources[0])
		}
		p, name := randomProtocol(crng, n, false)
		mr := maxRoundsFor(n)

		// Per-node path: same stream as the oracle.
		e := radio.NewEngineMulti(g, sources, radio.StrictInformed)
		e.SetPerNodeSampling(true)
		res := e.RunProtocol(p, mr, xrand.New(seed))
		o := New(g, sources, radio.StrictInformed)
		ores := o.RunProtocol(p, mr, xrand.New(seed))
		if d := Compare(res, ores); d != "" {
			t.Fatalf("case %d (%v sources=%v proto=%s seed=%#x): per-node multi-source diverges:\n%s",
				i, g, sources, name, seed, d)
		}

		// Sampled path: record and replay.
		e2 := radio.NewEngineMulti(g, sources, radio.StrictInformed)
		rec := &TxRecorder{}
		e2.Attach(rec)
		res2 := e2.RunProtocol(p, mr, xrand.New(seed))
		o2 := New(g, sources, radio.StrictInformed)
		ores2, err := o2.Replay(rec.Sets)
		if err != nil {
			t.Fatalf("case %d: sampled multi-source drew an invalid set: %v", i, err)
		}
		if d := Compare(res2, ores2); d != "" {
			t.Fatalf("case %d (%v sources=%v proto=%s seed=%#x): sampled multi-source diverges:\n%s",
				i, g, sources, name, seed, d)
		}
	}
}

// TestDifferentialFaulted checks runs on crash-faulted subgraphs: the
// survivor topology from faults.Crash (including degenerate crash rates)
// replayed on both the engine and the oracle.
func TestDifferentialFaulted(t *testing.T) {
	base := xrand.New(diffBaseSeed + 5)
	for i := 0; i < diffCases(220); i++ {
		crng := base.Derive(uint64(i))
		g, src, seed := randomCase(crng)
		var q float64
		switch crng.Intn(8) {
		case 0:
			q = 1.5 // degenerate: everything but the source crashes
		case 1:
			q = -0.25 // degenerate: nobody crashes
		default:
			q = crng.Float64() * 0.8
		}
		sc := faults.Crash(g, src, q, crng.Derive(7))
		if sc.SrcNew < 0 {
			t.Fatalf("case %d: protected source crashed (q=%v)", i, q)
		}
		sub := sc.Sub
		if sub.N() == 0 {
			t.Fatalf("case %d: empty survivor graph", i)
		}
		p, name := randomProtocol(crng, sub.N(), true)
		mr := maxRoundsFor(sub.N())

		e := radio.NewEngine(sub, sc.SrcNew, radio.StrictInformed)
		e.SetPerNodeSampling(true)
		res := e.RunProtocol(p, mr, xrand.New(seed))
		o := New(sub, []int32{sc.SrcNew}, radio.StrictInformed)
		ores := o.RunProtocol(p, mr, xrand.New(seed))
		if d := Compare(res, ores); d != "" {
			t.Fatalf("case %d (base=%v sub=%v q=%v src=%d proto=%s seed=%#x): faulted run diverges:\n%s",
				i, g, sub, q, sc.SrcNew, name, seed, d)
		}
		// The broadcast can reach at most the survivors connected to the
		// source; when it completes within budget it reaches exactly them.
		if reach := sc.ReachableFromSource(); res.Informed > reach {
			t.Fatalf("case %d: informed %d nodes, only %d reachable", i, res.Informed, reach)
		}
	}
}

// TestDifferentialFeedback cross-checks RoundWithFeedback (the CD-model
// variant) against the oracle's naive feedback computation, under the
// FilterUninformed policy where transmit-set filtering must agree
// between the feedback pre-pass and Round itself (regression: the
// pre-pass used to count phantom hits from filtered transmitters).
func TestDifferentialFeedback(t *testing.T) {
	base := xrand.New(diffBaseSeed + 6)
	policies := []radio.TransmitterPolicy{radio.FilterUninformed, radio.MagicTransmitters}
	for i := 0; i < diffCases(200); i++ {
		crng := base.Derive(uint64(i))
		g, src, _ := randomCase(crng)
		n := g.N()
		policy := policies[crng.Intn(len(policies))]
		e := radio.NewEngine(g, src, policy)
		o := New(g, []int32{src}, policy)
		fb := make([]radio.Feedback, n)
		rounds := 1 + crng.Intn(8)
		for r := 0; r < rounds; r++ {
			set := crng.Sample(n, crng.Intn(n+1)) // mixes informed and uninformed nodes
			newlyE, errE := e.RoundWithFeedback(set, fb)
			newlyO, fbO, errO := o.RoundFeedback(set)
			if (errE == nil) != (errO == nil) {
				t.Fatalf("case %d round %d: engine err %v, oracle err %v", i, r+1, errE, errO)
			}
			if errE != nil {
				continue
			}
			if !sameSet(newlyE, newlyO) {
				t.Fatalf("case %d (%v policy=%d) round %d: newly differ: engine %v, oracle %v",
					i, g, policy, r+1, newlyE, newlyO)
			}
			for v := range fb {
				if fb[v] != fbO[v] {
					t.Fatalf("case %d (%v policy=%d) round %d: feedback[%d]: engine %v, oracle %v (set=%v)",
						i, g, policy, r+1, v, fb[v], fbO[v], set)
				}
			}
		}
	}
}

// TestDenseBoundaryExact drives Engine.Round exactly at the dense/sparse
// classification boundary (2·visits == n) and one transmitter either
// side of it, comparing every round against the oracle. A perfect
// matching on n nodes gives each transmitter exactly one visit, so the
// transmitter count IS the visit count and the boundary can be hit
// exactly.
func TestDenseBoundaryExact(t *testing.T) {
	for _, pairs := range []int{2, 3, 8, 16} {
		n := 2 * pairs
		b := graph.NewBuilder(n)
		for i := 0; i < pairs; i++ {
			b.AddEdge(int32(2*i), int32(2*i+1)) // matching: degree 1 everywhere
		}
		g := b.Build()
		// k transmitters = k visits; the dense path triggers at 2k >= n,
		// i.e. k = pairs. Probe k-1, k, k+1.
		for dk := -1; dk <= 1; dk++ {
			k := pairs + dk
			if k < 1 || k > n {
				continue
			}
			e := radio.NewEngine(g, 0, radio.MagicTransmitters)
			o := New(g, []int32{0}, radio.MagicTransmitters)
			// Transmit from the left endpoint of the first k pairs; past
			// the last pair, wrap onto right endpoints (also degree 1, so
			// visits == k exactly either way).
			set := make([]int32, k)
			for i := range set {
				if i < pairs {
					set[i] = int32(2 * i)
				} else {
					set[i] = int32(2*(i-pairs) + 1)
				}
			}
			newlyE, errE := e.Round(set)
			newlyO, errO := o.Round(set)
			if errE != nil || errO != nil {
				t.Fatalf("n=%d k=%d: errs %v / %v", n, k, errE, errO)
			}
			if !sameSet(newlyE, newlyO) {
				t.Fatalf("n=%d k=%d (2k=%d vs n=%d): newly differ: engine %v, oracle %v",
					n, k, 2*k, n, newlyE, newlyO)
			}
			if d := Compare(engineResult(e), o.Result()); d != "" {
				t.Fatalf("n=%d k=%d: state diverges at the classification boundary:\n%s", n, k, d)
			}
		}
	}
}

// TestDenseSaturation checks hit-counter saturation on stars: with k
// leaves transmitting into the hub the engine's dense path caps its
// uint8 hit counters at 2, which must still classify k >= 2 as a
// collision — including k well above 255, where an uncapped uint8
// counter would wrap around to 0 (silence) or 1 (spurious delivery).
func TestDenseSaturation(t *testing.T) {
	for _, k := range []int{1, 2, 3, 254, 255, 256, 257, 300} {
		b := graph.NewBuilder(k + 1)
		for i := 1; i <= k; i++ {
			b.AddEdge(0, int32(i))
		}
		g := b.Build()
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(i + 1)
		}
		e := radio.NewEngineMulti(g, sources, radio.StrictInformed)
		o := New(g, sources, radio.StrictInformed)
		newlyE, errE := e.Round(sources)
		newlyO, errO := o.Round(sources)
		if errE != nil || errO != nil {
			t.Fatalf("k=%d: errs %v / %v", k, errE, errO)
		}
		if !sameSet(newlyE, newlyO) {
			t.Fatalf("k=%d: newly differ: engine %v, oracle %v", k, newlyE, newlyO)
		}
		wantHub := k == 1 // exactly one transmitting neighbour delivers
		if e.Informed(0) != wantHub {
			t.Fatalf("k=%d: hub informed=%v, want %v", k, e.Informed(0), wantHub)
		}
		if d := Compare(engineResult(e), o.Result()); d != "" {
			t.Fatalf("k=%d: state diverges under saturation:\n%s", k, d)
		}
	}
}
