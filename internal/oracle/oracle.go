// Package oracle is a deliberately naive reference implementation of the
// synchronous radio-network model, used only for correctness tooling: the
// differential harness in this package cross-checks the optimized
// internal/radio engine against it over randomized (graph, protocol,
// seed) cases.
//
// The oracle implements the model straight from the paper's definition
// (§1.1) with none of the engine's machinery — no CSR scatter tricks, no
// saturating hit counters, no touched lists, no dense/sparse round
// classification, no sampled-transmitter draws, no scratch reuse. Each
// round costs O(n · |tx| · log Δ): for every listening node it counts its
// transmitting neighbours one HasEdge probe at a time and applies the
// rule "receive iff exactly one neighbour transmits" literally. Slow and
// obviously correct is the whole point: every optimization in
// internal/radio must be behaviourally invisible against this baseline.
//
// The oracle mirrors the engine's public semantics exactly — transmitter
// policies, duplicate tolerance, error behaviour (a failed round is not
// committed), per-round trace.RoundRecord accounting, and the per-node
// protocol runner's randomness-consumption order — so a run with the same
// inputs and the same *xrand.Rand stream must match the engine
// bit-for-bit, not merely distributionally.
package oracle

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Engine is the naive reference simulator. Unlike radio.Engine it keeps
// no scratch whatsoever: every round allocates freshly, so no state can
// leak between rounds by construction.
type Engine struct {
	g          *graph.Graph
	policy     radio.TransmitterPolicy
	sources    []int32
	informed   []bool
	informedAt []int32
	round      int

	// Counters mirrors trace.Counters semantics, accumulated per round.
	Rounds        int
	Transmissions int
	Successes     int
	Collisions    int
	NewlyInformed int
	Silent        int

	// Records holds one trace.RoundRecord per executed round, for
	// record-level comparison against an engine-attached trace.Recorder.
	Records []trace.RoundRecord
}

// New returns an oracle on g in which exactly the listed sources know the
// message at round 0. Duplicate sources are tolerated.
func New(g *graph.Graph, sources []int32, policy radio.TransmitterPolicy) *Engine {
	if len(sources) == 0 {
		panic("oracle: need at least one source")
	}
	n := g.N()
	o := &Engine{
		g:          g,
		policy:     policy,
		informed:   make([]bool, n),
		informedAt: make([]int32, n),
	}
	for i := range o.informedAt {
		o.informedAt[i] = radio.NotInformed
	}
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			panic(fmt.Sprintf("oracle: source %d out of range [0,%d)", s, n))
		}
		if !o.informed[s] {
			o.informed[s] = true
			o.informedAt[s] = 0
			o.sources = append(o.sources, s)
		}
	}
	return o
}

// Informed reports whether v holds the message.
func (o *Engine) Informed(v int32) bool { return o.informed[v] }

// InformedAt returns the round v was informed, or radio.NotInformed.
func (o *Engine) InformedAt(v int32) int32 { return o.informedAt[v] }

// InformedCount returns the number of informed nodes.
func (o *Engine) InformedCount() int {
	c := 0
	for _, ok := range o.informed {
		if ok {
			c++
		}
	}
	return c
}

// Done reports whether every node is informed.
func (o *Engine) Done() bool { return o.InformedCount() == o.g.N() }

// RoundCount returns the number of committed rounds.
func (o *Engine) RoundCount() int { return o.round }

// InformedTimes returns a copy of the per-node informed rounds.
func (o *Engine) InformedTimes() []int32 {
	out := make([]int32, len(o.informedAt))
	copy(out, o.informedAt)
	return out
}

// effectiveTransmitters validates the raw transmitter list against the
// policy and returns the deduplicated effective set, exactly as
// radio.Engine.Round admits it. A nil map and an error mean the round
// must not commit.
func (o *Engine) effectiveTransmitters(transmitters []int32) (map[int32]bool, error) {
	tx := make(map[int32]bool)
	for _, v := range transmitters {
		if v < 0 || int(v) >= o.g.N() {
			return nil, fmt.Errorf("oracle: transmitter %d out of range", v)
		}
		if !o.informed[v] {
			switch o.policy {
			case radio.StrictInformed:
				return nil, fmt.Errorf("%w: node %d in round %d", radio.ErrUninformedTransmitter, v, o.round+1)
			case radio.FilterUninformed:
				continue
			case radio.MagicTransmitters:
				// allowed through
			}
		}
		tx[v] = true
	}
	return tx, nil
}

// Round executes one synchronous step per the model definition: exactly
// the (policy-admitted) nodes of transmitters transmit, every other node
// listens, and a listener receives iff exactly one of its neighbours
// transmits. It returns the sorted list of newly informed nodes. A
// validation error leaves the oracle's state untouched, like the engine.
func (o *Engine) Round(transmitters []int32) ([]int32, error) {
	tx, err := o.effectiveTransmitters(transmitters)
	if err != nil {
		return nil, err
	}
	o.round++

	n := o.g.N()
	var newly []int32
	successes, collisions, silent := 0, 0, 0
	for w := int32(0); int(w) < n; w++ {
		if tx[w] {
			continue // a transmitting node does not listen
		}
		// Count w's transmitting neighbours the slow, literal way: one
		// adjacency probe per transmitter, no shared counters.
		count := 0
		for v := range tx {
			if o.g.HasEdge(v, w) {
				count++
			}
		}
		switch {
		case count == 0:
			silent++
		case count == 1:
			successes++
			if !o.informed[w] {
				o.informed[w] = true
				o.informedAt[w] = int32(o.round)
				newly = append(newly, w)
			}
		default:
			collisions++
		}
	}
	sort.Slice(newly, func(i, j int) bool { return newly[i] < newly[j] })

	rec := trace.RoundRecord{
		Round:         o.round,
		Transmitters:  len(tx),
		Successes:     successes,
		Collisions:    collisions,
		Silent:        silent,
		NewlyInformed: len(newly),
		Informed:      o.InformedCount(),
	}
	o.Records = append(o.Records, rec)
	o.Rounds++
	o.Transmissions += len(tx)
	o.Successes += successes
	o.Collisions += collisions
	o.NewlyInformed += len(newly)
	o.Silent += silent
	return newly, nil
}

// RoundFeedback executes one step like Round and additionally returns
// every node's CD-model observation (see radio.Feedback), computed
// naively from the effective transmitter set.
func (o *Engine) RoundFeedback(transmitters []int32) ([]int32, []radio.Feedback, error) {
	tx, err := o.effectiveTransmitters(transmitters)
	if err != nil {
		return nil, nil, err
	}
	n := o.g.N()
	fb := make([]radio.Feedback, n)
	for w := int32(0); int(w) < n; w++ {
		if tx[w] {
			fb[w] = radio.FeedbackNone
			continue
		}
		count := 0
		for v := range tx {
			if o.g.HasEdge(v, w) {
				count++
			}
		}
		switch {
		case count == 0:
			fb[w] = radio.FeedbackSilence
		case count == 1:
			fb[w] = radio.FeedbackMessage
		default:
			fb[w] = radio.FeedbackCollision
		}
	}
	newly, err := o.Round(transmitters)
	return newly, fb, err
}

// Result summarises an oracle run in the engine's radio.Result shape, so
// the two can be compared field by field.
func (o *Engine) Result() radio.Result {
	return radio.Result{
		Completed:  o.Done(),
		Rounds:     o.round,
		Informed:   o.InformedCount(),
		N:          o.g.N(),
		InformedAt: o.InformedTimes(),
		Stats: radio.Stats{
			Rounds:        o.Rounds,
			Transmissions: o.Transmissions,
			Deliveries:    o.Successes,
			NewlyInformed: o.NewlyInformed,
			Collisions:    o.Collisions,
		},
	}
}

// RunProtocol drives the oracle under the protocol until completion or
// the round budget, consuming randomness in exactly the engine's
// per-node order: ascending vertex index over informed nodes only. With
// the same rng stream it therefore matches the engine's per-node path
// bit-for-bit, not just in distribution.
func (o *Engine) RunProtocol(p radio.Protocol, maxRounds int, rng *xrand.Rand) radio.Result {
	for o.round < maxRounds && !o.Done() {
		round := o.round + 1
		var tx []int32
		for v := 0; v < o.g.N(); v++ {
			if !o.informed[v] {
				continue
			}
			if p.Transmit(int32(v), round, o.informedAt[v], rng) {
				tx = append(tx, int32(v))
			}
		}
		if _, err := o.Round(tx); err != nil {
			panic(err) // only informed nodes are offered
		}
	}
	return o.Result()
}

// ExecuteSchedule replays the schedule, stopping early on completion,
// with the engine's error contract: a failing round aborts the run and
// returns the error.
func (o *Engine) ExecuteSchedule(s *radio.Schedule) (radio.Result, error) {
	for _, set := range s.Sets {
		if o.Done() {
			break
		}
		if _, err := o.Round(set); err != nil {
			return radio.Result{}, err
		}
	}
	return o.Result(), nil
}

// Replay feeds the recorded transmitter sets to the oracle in order (no
// early stop: the recording already reflects the engine's stopping
// behaviour) and returns the result. It is how the differential harness
// checks engine paths whose randomness stream the oracle cannot
// reproduce (the sampled-transmitter fast path): record what the engine
// drew, replay the draws against the naive semantics.
func (o *Engine) Replay(sets [][]int32) (radio.Result, error) {
	for _, set := range sets {
		if _, err := o.Round(set); err != nil {
			return radio.Result{}, err
		}
	}
	return o.Result(), nil
}
