package oracle

// Metamorphic invariants: properties that must hold across related runs
// without knowing the "right" answer for either — relabeling
// equivariance, informed-set monotonicity, and engine-reuse transparency.
// These catch bug classes the differential suites cannot (a bug shared
// by engine and oracle still breaks equivariance; scratch leaking across
// Reset only shows up when an engine is reused).

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// relabel returns g with vertices renamed by the permutation perm
// (perm[old] = new), plus the permutation applied to a vertex list.
func relabel(g *graph.Graph, perm []int32) *graph.Graph {
	b := graph.NewBuilder(g.N())
	for v := int32(0); int(v) < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				b.AddEdge(perm[v], perm[w])
			}
		}
	}
	return b.Build()
}

func applyPerm(perm []int32, vs []int32) []int32 {
	out := make([]int32, len(vs))
	for i, v := range vs {
		out[i] = perm[v]
	}
	return out
}

// TestMetamorphicRelabeling checks vertex-relabeling equivariance: a
// schedule replayed on a relabeled graph with relabeled transmitter sets
// must produce the relabeled outcome. The radio model has no notion of
// vertex identity, so any sensitivity to labels is an indexing bug (in
// CSR layout, hit counting, or newly-informed collection).
func TestMetamorphicRelabeling(t *testing.T) {
	base := xrand.New(diffBaseSeed + 10)
	for i := 0; i < diffCases(120); i++ {
		crng := base.Derive(uint64(i))
		g, src, _ := randomCase(crng)
		n := g.N()
		perm := crng.Perm(n)

		s := &radio.Schedule{}
		rounds := 1 + crng.Intn(10)
		for r := 0; r < rounds; r++ {
			s.Sets = append(s.Sets, crng.Sample(n, crng.Intn(n+1)))
		}
		// MagicTransmitters: every set is valid, so the runs never abort
		// and the full schedule's outcome is compared.
		res, err := radio.ExecuteSchedule(g, src, s, radio.MagicTransmitters)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}

		g2 := relabel(g, perm)
		s2 := &radio.Schedule{}
		for _, set := range s.Sets {
			s2.Sets = append(s2.Sets, applyPerm(perm, set))
		}
		res2, err := radio.ExecuteSchedule(g2, perm[src], s2, radio.MagicTransmitters)
		if err != nil {
			t.Fatalf("case %d: relabeled run: %v", i, err)
		}

		if res.Completed != res2.Completed || res.Rounds != res2.Rounds ||
			res.Informed != res2.Informed || res.Stats != res2.Stats {
			t.Fatalf("case %d (%v): relabeling changed aggregate outcome:\noriginal %+v\nrelabeled %+v",
				i, g, res, res2)
		}
		for v := 0; v < n; v++ {
			if res.InformedAt[v] != res2.InformedAt[perm[v]] {
				t.Fatalf("case %d (%v): InformedAt not equivariant at %d->%d: %d vs %d",
					i, g, v, perm[v], res.InformedAt[v], res2.InformedAt[perm[v]])
			}
		}
	}
}

// TestMetamorphicMonotonicity checks per-round invariants on protocol
// runs via the recorder: the informed count never decreases, grows by
// exactly NewlyInformed each round, the source set is never forgotten,
// and each round's listeners partition into successes + collisions +
// silent.
func TestMetamorphicMonotonicity(t *testing.T) {
	base := xrand.New(diffBaseSeed + 11)
	for i := 0; i < diffCases(120); i++ {
		crng := base.Derive(uint64(i))
		g, src, seed := randomCase(crng)
		n := g.N()
		p, name := randomProtocol(crng, n, true)

		e := radio.NewEngine(g, src, radio.StrictInformed)
		if crng.Bool() {
			e.SetPerNodeSampling(true)
		}
		rec := &trace.Recorder{}
		e.Attach(rec)
		res := e.RunProtocol(p, maxRoundsFor(n), xrand.New(seed))

		prev := 1 // the single source
		for ri, r := range rec.Records {
			if r.Informed < prev {
				t.Fatalf("case %d (%v proto=%s seed=%#x): informed count shrank at round %d: %d -> %d",
					i, g, name, seed, r.Round, prev, r.Informed)
			}
			if r.Informed != prev+r.NewlyInformed {
				t.Fatalf("case %d (proto=%s): round %d: informed %d != prev %d + newly %d",
					i, name, r.Round, r.Informed, prev, r.NewlyInformed)
			}
			listeners := n - r.Transmitters
			if r.Successes+r.Collisions+r.Silent != listeners {
				t.Fatalf("case %d (proto=%s): round %d: %d+%d+%d != %d listeners",
					i, name, r.Round, r.Successes, r.Collisions, r.Silent, listeners)
			}
			if r.NewlyInformed > r.Successes {
				t.Fatalf("case %d (proto=%s): round %d: newly %d > successes %d",
					i, name, r.Round, r.NewlyInformed, r.Successes)
			}
			if r.Round != ri+1 {
				t.Fatalf("case %d: round numbering gap: record %d has Round %d", i, ri, r.Round)
			}
			prev = r.Informed
		}
		if res.InformedAt[src] != 0 {
			t.Fatalf("case %d: source forgot the message: informedAt[src]=%d", i, res.InformedAt[src])
		}
		if res.Informed != prev {
			t.Fatalf("case %d: result informed %d != last record %d", i, res.Informed, prev)
		}
	}
}

// TestMetamorphicEngineReuse checks that a reused engine (Reset between
// runs) is indistinguishable from a fresh engine on the same inputs —
// the contract that makes sweep loops sound. Multi-source engines are
// included: Reset must restore the full initial informed set, not just
// the primary source (regression: extra sources used to vanish after the
// first Reset).
func TestMetamorphicEngineReuse(t *testing.T) {
	base := xrand.New(diffBaseSeed + 12)
	for i := 0; i < diffCases(120); i++ {
		crng := base.Derive(uint64(i))
		g, _, seed := randomCase(crng)
		n := g.N()
		k := 1 + crng.Intn(3)
		if k > n {
			k = n
		}
		sources := crng.Sample(n, k)
		p, name := randomProtocol(crng, n, true)
		mr := maxRoundsFor(n)

		reused := radio.NewEngineMulti(g, sources, radio.StrictInformed)
		perNode := crng.Bool()
		reused.SetPerNodeSampling(perNode)
		// Dirty the engine with a throwaway run, then Reset and rerun.
		reused.RunProtocol(p, mr, xrand.New(seed^0xABCD))
		reused.Reset()
		got := reused.RunProtocol(p, mr, xrand.New(seed))

		fresh := radio.NewEngineMulti(g, sources, radio.StrictInformed)
		fresh.SetPerNodeSampling(perNode)
		want := fresh.RunProtocol(p, mr, xrand.New(seed))

		if d := Compare(got, want); d != "" {
			t.Fatalf("case %d (%v sources=%v proto=%s perNode=%v seed=%#x): reused engine diverges from fresh:\n%s",
				i, g, sources, name, perNode, seed, d)
		}
	}
}

// TestMultiSourceResetRegression pins the multi-source Reset bug
// directly: after a Reset, every initial source must still be informed
// at round 0 (Reset used to restore only the primary source, silently
// turning a multi-source engine single-source on reuse).
func TestMultiSourceResetRegression(t *testing.T) {
	g := gen.Path(5)
	e := radio.NewEngineMulti(g, []int32{0, 4}, radio.StrictInformed)
	if _, err := e.Round([]int32{0, 4}); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if got := e.InformedCount(); got != 2 {
		t.Fatalf("after Reset: %d informed nodes, want both sources", got)
	}
	for _, s := range []int32{0, 4} {
		if e.InformedAt(s) != 0 {
			t.Fatalf("after Reset: source %d informedAt=%d, want 0", s, e.InformedAt(s))
		}
	}
	// Both sources must actually transmit again: a second identical round
	// must reproduce the first run's outcome.
	newly, err := e.Round([]int32{0, 4})
	if err != nil {
		t.Fatalf("sources lost after Reset: %v", err)
	}
	if len(newly) != 2 { // 0 informs 1, 4 informs 3; node 2 stays dark
		t.Fatalf("after Reset, round informed %v, want the two inner neighbours", newly)
	}
}
