package oracle

// Self-tests of the reference simulator on hand-built graphs where the
// model's outcomes can be verified by eye. The oracle is the baseline the
// engine is judged against, so its own behaviour is pinned down here
// against nothing but the paper's definition.

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// star returns K_{1,k}: hub 0, leaves 1..k.
func star(k int) *graph.Graph {
	b := graph.NewBuilder(k + 1)
	for i := 1; i <= k; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

// path returns the path 0-1-...-(n-1).
func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func TestOracleHubBroadcast(t *testing.T) {
	g := star(4)
	o := New(g, []int32{0}, radio.StrictInformed)
	newly, err := o.Round([]int32{0})
	if err != nil {
		t.Fatal(err)
	}
	// Every leaf has exactly one neighbour (the hub), so all receive.
	if len(newly) != 4 || !o.Done() {
		t.Fatalf("hub transmit should inform all leaves, got newly=%v done=%v", newly, o.Done())
	}
	if o.Successes != 4 || o.Collisions != 0 || o.Silent != 0 {
		t.Fatalf("counters: %d successes, %d collisions, %d silent", o.Successes, o.Collisions, o.Silent)
	}
}

func TestOracleCollision(t *testing.T) {
	// Two informed leaves transmit: the hub hears a collision, receives
	// nothing; the other leaves hear silence.
	g := star(4)
	o := New(g, []int32{1, 2}, radio.StrictInformed)
	newly, err := o.Round([]int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 0 {
		t.Fatalf("collision at hub must deliver nothing, newly=%v", newly)
	}
	if o.Collisions != 1 || o.Successes != 0 || o.Silent != 2 {
		t.Fatalf("counters: %d successes, %d collisions, %d silent", o.Successes, o.Collisions, o.Silent)
	}
	if o.Informed(0) {
		t.Fatal("hub must stay uninformed after a collision")
	}
}

func TestOracleTransmitterDoesNotListen(t *testing.T) {
	// Both endpoints of an edge transmit: each would be the other's single
	// transmitting neighbour, but transmitters do not listen.
	g := path(2)
	o := New(g, []int32{0, 1}, radio.StrictInformed)
	newly, err := o.Round([]int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 0 || o.Successes != 0 || o.Collisions != 0 || o.Silent != 0 {
		t.Fatalf("half-duplex violated: newly=%v successes=%d collisions=%d silent=%d",
			newly, o.Successes, o.Collisions, o.Silent)
	}
}

func TestOracleDuplicateTransmitters(t *testing.T) {
	// A node listed twice transmits once: its neighbour still receives
	// (count is 1, not 2).
	g := path(2)
	o := New(g, []int32{0}, radio.StrictInformed)
	newly, err := o.Round([]int32{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 1 || newly[0] != 1 {
		t.Fatalf("duplicate transmitter should count once, newly=%v", newly)
	}
	if o.Transmissions != 1 {
		t.Fatalf("Transmissions = %d, want 1", o.Transmissions)
	}
}

func TestOraclePolicies(t *testing.T) {
	g := path(3) // 0-1-2, source 0
	t.Run("strict", func(t *testing.T) {
		o := New(g, []int32{0}, radio.StrictInformed)
		_, err := o.Round([]int32{2})
		if !errors.Is(err, radio.ErrUninformedTransmitter) {
			t.Fatalf("want ErrUninformedTransmitter, got %v", err)
		}
		// The failed round must not commit.
		if o.RoundCount() != 0 || o.Rounds != 0 || len(o.Records) != 0 {
			t.Fatalf("failed round committed: rounds=%d", o.RoundCount())
		}
	})
	t.Run("filter", func(t *testing.T) {
		o := New(g, []int32{0}, radio.FilterUninformed)
		newly, err := o.Round([]int32{0, 2})
		if err != nil {
			t.Fatal(err)
		}
		// 2 is dropped; 0 informs 1 cleanly.
		if len(newly) != 1 || newly[0] != 1 || o.Transmissions != 1 {
			t.Fatalf("filter: newly=%v transmissions=%d", newly, o.Transmissions)
		}
	})
	t.Run("magic", func(t *testing.T) {
		o := New(g, []int32{0}, radio.MagicTransmitters)
		newly, err := o.Round([]int32{2})
		if err != nil {
			t.Fatal(err)
		}
		// The uninformed node 2 transmits anyway and informs 1; 2 itself
		// stays uninformed (it transmitted a message it never held).
		if len(newly) != 1 || newly[0] != 1 {
			t.Fatalf("magic: newly=%v", newly)
		}
		if o.Informed(2) {
			t.Fatal("magic transmitter must stay uninformed")
		}
	})
}

func TestOraclePathPropagation(t *testing.T) {
	// On a path with a single transmitter per round the message walks one
	// hop per round: informedAt[v] == v.
	n := 6
	g := path(n)
	o := New(g, []int32{0}, radio.StrictInformed)
	for r := 0; r < n-1; r++ {
		if _, err := o.Round([]int32{int32(r)}); err != nil {
			t.Fatal(err)
		}
	}
	if !o.Done() {
		t.Fatal("path broadcast incomplete")
	}
	for v := 0; v < n; v++ {
		if o.InformedAt(int32(v)) != int32(v) {
			t.Fatalf("informedAt[%d] = %d, want %d", v, o.InformedAt(int32(v)), v)
		}
	}
}
