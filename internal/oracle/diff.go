package oracle

// Differential-harness plumbing: a transmitter-set recorder (the bridge
// between the engine's sampled fast path and the oracle's replay) and a
// field-by-field result comparator that renders any divergence as a
// reproducible report.

import (
	"fmt"
	"strings"

	"repro/internal/radio"
	"repro/internal/trace"
)

// TxRecorder is a trace.Observer that additionally implements
// trace.TransmitterObserver: attached to a radio.Engine it records a copy
// of every executed round's effective transmitter set alongside the usual
// round records. It is how the harness captures what the engine's
// sampled-transmitter fast path actually drew, so the draws can be
// replayed against the naive oracle.
type TxRecorder struct {
	trace.Recorder
	// Sets[i] is the transmitter set of round i+1 (a copy; safe to keep).
	Sets [][]int32
}

// RoundTransmitters implements trace.TransmitterObserver.
func (r *TxRecorder) RoundTransmitters(round int, tx []int32) {
	set := make([]int32, len(tx))
	copy(set, tx)
	r.Sets = append(r.Sets, set)
}

// Reset clears the recorder for reuse.
func (r *TxRecorder) Reset() {
	r.Recorder.Reset()
	r.Sets = nil
}

var _ trace.Observer = (*TxRecorder)(nil)
var _ trace.TransmitterObserver = (*TxRecorder)(nil)

// Compare checks an engine result against an oracle result field by
// field and returns a description of every divergence (empty = match).
// InformedAt is compared element-wise; Stats field by field.
func Compare(engine, oracle radio.Result) string {
	var b strings.Builder
	diff := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	if engine.Completed != oracle.Completed {
		diff("Completed: engine %v, oracle %v", engine.Completed, oracle.Completed)
	}
	if engine.Rounds != oracle.Rounds {
		diff("Rounds: engine %d, oracle %d", engine.Rounds, oracle.Rounds)
	}
	if engine.Informed != oracle.Informed {
		diff("Informed: engine %d, oracle %d", engine.Informed, oracle.Informed)
	}
	if engine.N != oracle.N {
		diff("N: engine %d, oracle %d", engine.N, oracle.N)
	}
	if engine.Stats != oracle.Stats {
		diff("Stats: engine %+v, oracle %+v", engine.Stats, oracle.Stats)
	}
	if len(engine.InformedAt) != len(oracle.InformedAt) {
		diff("InformedAt length: engine %d, oracle %d", len(engine.InformedAt), len(oracle.InformedAt))
	} else {
		shown := 0
		for v := range engine.InformedAt {
			if engine.InformedAt[v] != oracle.InformedAt[v] {
				if shown < 8 {
					diff("InformedAt[%d]: engine %d, oracle %d", v, engine.InformedAt[v], oracle.InformedAt[v])
				}
				shown++
			}
		}
		if shown > 8 {
			diff("... and %d more InformedAt divergences", shown-8)
		}
	}
	return b.String()
}

// CompareRecords checks the engine's per-round records against the
// oracle's and returns a description of every divergence (empty =
// match). Both sides account rounds through identical trace.RoundRecord
// structs, so a mismatch pinpoints the first diverging round.
func CompareRecords(engine, oracle []trace.RoundRecord) string {
	var b strings.Builder
	if len(engine) != len(oracle) {
		fmt.Fprintf(&b, "round count: engine %d, oracle %d\n", len(engine), len(oracle))
	}
	for i := 0; i < len(engine) && i < len(oracle); i++ {
		if engine[i] != oracle[i] {
			fmt.Fprintf(&b, "round %d: engine %+v, oracle %+v\n", i+1, engine[i], oracle[i])
			break // the first divergence is the informative one
		}
	}
	return b.String()
}
