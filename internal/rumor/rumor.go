// Package rumor implements the single-port information-dissemination
// models that §1.2 of the paper contrasts with radio broadcasting:
//
//   - Push rumor spreading (Feige, Peleg, Raghavan, Upfal): in every round
//     each informed node sends the rumor to one uniformly random
//     neighbour. No collisions — point-to-point links. O(log n) rounds on
//     G(n,p) above the connectivity threshold.
//   - Pull: each uninformed node asks one random neighbour and learns the
//     rumor if that neighbour is informed.
//   - Push–pull: both at once.
//   - Agent-based broadcasting: a fixed number of agents perform random
//     walks; an agent carrying the rumor deposits it on every node it
//     visits, and an empty agent picks the rumor up when visiting an
//     informed node. O(max{log n, D}) rounds in random graphs per the
//     extension of Feige et al. cited in §1.2.
//
// These simulators share the synchronous round structure with the radio
// engine, so completion times are directly comparable (experiment E10).
package rumor

import (
	"repro/internal/graph"
	"repro/internal/xrand"
)

// Mode selects the exchange pattern of Spread.
type Mode int

const (
	// Push: informed nodes send to a random neighbour.
	Push Mode = iota
	// Pull: uninformed nodes ask a random neighbour.
	Pull
	// PushPull: both exchanges every round.
	PushPull
)

// String returns the canonical name of the mode.
func (m Mode) String() string {
	switch m {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case PushPull:
		return "push-pull"
	default:
		return "unknown"
	}
}

// Result reports a completed (or truncated) rumor-spreading run.
type Result struct {
	Completed  bool
	Rounds     int
	Informed   int
	InformedAt []int32 // round each node learnt the rumor; -1 if never
}

// Spread runs the selected single-port protocol from src for at most
// maxRounds rounds and returns the result. Isolated vertices can never be
// informed; they simply bound Completed.
func Spread(g *graph.Graph, src int32, mode Mode, maxRounds int, rng *xrand.Rand) Result {
	n := g.N()
	informed := make([]bool, n)
	informedAt := make([]int32, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	informed[src] = true
	informedAt[src] = 0
	count := 1

	newly := make([]int32, 0, 64)
	round := 0
	for round < maxRounds && count < n {
		round++
		newly = newly[:0]
		if mode == Push || mode == PushPull {
			for v := 0; v < n; v++ {
				if !informed[v] {
					continue
				}
				nb := g.Neighbors(int32(v))
				if len(nb) == 0 {
					continue
				}
				w := nb[rng.Intn(len(nb))]
				if !informed[w] && informedAt[w] != int32(round) {
					// Mark via informedAt to keep same-round pushes from
					// double counting; commit after the loop so pulls in
					// the same round cannot chain off pushes.
					informedAt[w] = int32(round)
					newly = append(newly, w)
				}
			}
		}
		if mode == Pull || mode == PushPull {
			for v := 0; v < n; v++ {
				if informed[v] || informedAt[v] == int32(round) {
					continue
				}
				nb := g.Neighbors(int32(v))
				if len(nb) == 0 {
					continue
				}
				w := nb[rng.Intn(len(nb))]
				if informed[w] {
					informedAt[v] = int32(round)
					newly = append(newly, int32(v))
				}
			}
		}
		for _, w := range newly {
			if !informed[w] {
				informed[w] = true
				count++
			}
		}
	}
	return Result{
		Completed:  count == n,
		Rounds:     round,
		Informed:   count,
		InformedAt: informedAt,
	}
}

// SpreadTime runs Spread and returns the completion round, or maxRounds+1
// if the rumor did not reach everyone (sentinel, as in radio.BroadcastTime).
func SpreadTime(g *graph.Graph, src int32, mode Mode, maxRounds int, rng *xrand.Rand) int {
	res := Spread(g, src, mode, maxRounds, rng)
	if !res.Completed {
		return maxRounds + 1
	}
	return res.Rounds
}

// Agents runs the agent-based broadcasting model: k agents start at
// uniformly random vertices and perform independent synchronous random
// walks. An agent standing on an informed vertex becomes a carrier; a
// carrier informs every vertex it stands on. Returns the result after all
// nodes are informed or maxRounds elapse.
func Agents(g *graph.Graph, src int32, k, maxRounds int, rng *xrand.Rand) Result {
	n := g.N()
	informed := make([]bool, n)
	informedAt := make([]int32, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	informed[src] = true
	informedAt[src] = 0
	count := 1

	pos := make([]int32, k)
	carrier := make([]bool, k)
	for i := range pos {
		pos[i] = rng.Int31n(int32(n))
		if informed[pos[i]] {
			carrier[i] = true
		}
	}
	round := 0
	for round < maxRounds && count < n {
		round++
		for i := range pos {
			nb := g.Neighbors(pos[i])
			if len(nb) > 0 {
				pos[i] = nb[rng.Intn(len(nb))]
			}
			if carrier[i] {
				if !informed[pos[i]] {
					informed[pos[i]] = true
					informedAt[pos[i]] = int32(round)
					count++
				}
			} else if informed[pos[i]] {
				carrier[i] = true
			}
		}
	}
	return Result{
		Completed:  count == n,
		Rounds:     round,
		Informed:   count,
		InformedAt: informedAt,
	}
}
