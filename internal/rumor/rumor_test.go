package rumor

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func connectedGnp(t testing.TB, n int, d float64, seed uint64) *graph.Graph {
	t.Helper()
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(seed), 50)
	if !ok {
		t.Fatalf("no connected sample")
	}
	return g
}

func TestPushCompletesOnGnpInLogRounds(t *testing.T) {
	const n = 4000
	g := connectedGnp(t, n, 3*math.Log(n), 1)
	rng := xrand.New(2)
	res := Spread(g, 0, Push, 1000, rng)
	if !res.Completed {
		t.Fatalf("push incomplete: %d/%d", res.Informed, n)
	}
	// Feige et al.: O(log n); allow a generous constant.
	if float64(res.Rounds) > 12*math.Log2(n) {
		t.Fatalf("push took %d rounds on n=%d", res.Rounds, n)
	}
}

func TestPullCompletesOnGnp(t *testing.T) {
	const n = 2000
	g := connectedGnp(t, n, 3*math.Log(n), 3)
	rng := xrand.New(4)
	res := Spread(g, 0, Pull, 2000, rng)
	if !res.Completed {
		t.Fatalf("pull incomplete: %d/%d", res.Informed, n)
	}
}

func TestPushPullFasterOrEqual(t *testing.T) {
	const n = 2000
	g := connectedGnp(t, n, 3*math.Log(n), 5)
	med := func(mode Mode) int {
		var ts []int
		for i := 0; i < 5; i++ {
			rng := xrand.New(50 + uint64(i))
			ts = append(ts, SpreadTime(g, 0, mode, 2000, rng))
		}
		for i := 1; i < len(ts); i++ {
			for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
		return ts[len(ts)/2]
	}
	push := med(Push)
	both := med(PushPull)
	if both > push+1 {
		t.Fatalf("push-pull (%d) notably slower than push (%d)", both, push)
	}
}

func TestSpreadOnCompleteGraphDoubling(t *testing.T) {
	// On K_n push roughly doubles the informed set per round early on:
	// completion in Θ(log n) rounds.
	const n = 1024
	g := gen.Complete(n)
	rng := xrand.New(6)
	res := Spread(g, 0, Push, 200, rng)
	if !res.Completed {
		t.Fatal("push on K_n incomplete")
	}
	if res.Rounds < int(math.Log2(n)) {
		t.Fatalf("push finished impossibly fast: %d rounds", res.Rounds)
	}
	if res.Rounds > 8*int(math.Log2(n)) {
		t.Fatalf("push on K_n took %d rounds", res.Rounds)
	}
}

func TestSpreadIsolatedVertexNeverInformed(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	rng := xrand.New(7)
	res := Spread(g, 0, PushPull, 100, rng)
	if res.Completed {
		t.Fatal("isolated vertex cannot be informed")
	}
	if res.Informed != 2 {
		t.Fatalf("informed = %d, want 2", res.Informed)
	}
	if res.InformedAt[2] != -1 {
		t.Fatal("isolated vertex has informedAt set")
	}
}

func TestSpreadInformedAtConsistent(t *testing.T) {
	const n = 500
	g := connectedGnp(t, n, 12, 8)
	rng := xrand.New(9)
	res := Spread(g, 0, Push, 1000, rng)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if res.InformedAt[0] != 0 {
		t.Fatal("source informedAt != 0")
	}
	for v := 1; v < n; v++ {
		at := res.InformedAt[v]
		if at < 1 || int(at) > res.Rounds {
			t.Fatalf("informedAt[%d] = %d out of range", v, at)
		}
	}
}

func TestPullCannotChainWithinRound(t *testing.T) {
	// Path 0-1-2: in round 1, node 1 can pull from 0, but node 2 must not
	// learn the rumor in the same round through node 1.
	g := gen.Path(3)
	for seed := uint64(0); seed < 20; seed++ {
		rng := xrand.New(seed)
		res := Spread(g, 0, Pull, 1, rng)
		if res.InformedAt[2] == 1 {
			t.Fatal("pull chained two hops in one round")
		}
	}
}

func TestModeString(t *testing.T) {
	if Push.String() != "push" || Pull.String() != "pull" || PushPull.String() != "push-pull" {
		t.Fatal("mode names wrong")
	}
	if Mode(99).String() != "unknown" {
		t.Fatal("unknown mode name")
	}
}

func TestSpreadTimeSentinel(t *testing.T) {
	b := graph.NewBuilder(2) // no edges: can never complete
	g := b.Build()
	rng := xrand.New(10)
	if got := SpreadTime(g, 0, Push, 10, rng); got != 11 {
		t.Fatalf("sentinel = %d", got)
	}
}

func TestAgentsComplete(t *testing.T) {
	const n = 300
	g := connectedGnp(t, n, 10, 11)
	rng := xrand.New(12)
	res := Agents(g, 0, 32, 100000, rng)
	if !res.Completed {
		t.Fatalf("agents incomplete: %d/%d", res.Informed, n)
	}
}

func TestAgentsPickUpRumor(t *testing.T) {
	// A single agent starting anywhere must eventually pick up and spread
	// the rumor on a small cycle.
	g := gen.Cycle(10)
	rng := xrand.New(13)
	res := Agents(g, 0, 1, 200000, rng)
	if !res.Completed {
		t.Fatalf("single agent incomplete: %d/10", res.Informed)
	}
}

func TestAgentsMoreAgentsNoSlower(t *testing.T) {
	const n = 400
	g := connectedGnp(t, n, 10, 14)
	med := func(k int) int {
		var ts []int
		for i := 0; i < 5; i++ {
			rng := xrand.New(200 + uint64(i))
			r := Agents(g, 0, k, 1000000, rng)
			ts = append(ts, r.Rounds)
		}
		for i := 1; i < len(ts); i++ {
			for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
		return ts[len(ts)/2]
	}
	few := med(4)
	many := med(64)
	if many > few {
		t.Fatalf("64 agents (%d rounds) slower than 4 agents (%d rounds)", many, few)
	}
}

func BenchmarkPush(b *testing.B) {
	const n = 10000
	g := connectedGnp(b, n, 3*math.Log(n), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := xrand.New(uint64(i))
		res := Spread(g, 0, Push, 1000, rng)
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}
