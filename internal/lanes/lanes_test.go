package lanes_test

// Differential and invariance tests for the bit-parallel lane engine.
//
// The engine's correctness story has two halves, tested separately:
//
//  1. Mechanics: for whatever transmitter sets the engine drew, the
//     per-lane reception/collision classification must match the naive
//     oracle exactly. Each lane's recorded transmitter sets are replayed
//     through oracle.Engine.Replay and the informed sets, informed-at
//     times, completion rounds and per-round success/collision counts
//     must be bit-identical.
//
//  2. Distribution: the lane engine is a new randomness stream (the
//     PR 3 policy), so individual trials differ bit-wise from scalar
//     trials; the per-trial completion-round DISTRIBUTION must agree,
//     checked by a two-sample chi-square against the scalar sampled
//     path.
//
// Lane purity — each trial a pure function of its own seed — is what the
// campaign determinism guarantees rest on, so it gets its own tests:
// results must be bitwise invariant under lane width, block composition,
// position within a block, worker count and GOMAXPROCS.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lanes"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/radio"
	"repro/internal/sweep"
	"repro/internal/xrand"
)

func testGraph(t *testing.T, n int, d float64, seed uint64) *graph.Graph {
	t.Helper()
	return gen.Gnp(n, d/float64(n), xrand.New(seed))
}

func mustPlan(t *testing.T, p radio.Protocol, maxRounds int) *lanes.Plan {
	t.Helper()
	plan, ok := lanes.NewPlan(p, maxRounds)
	if !ok {
		t.Fatalf("protocol %T did not yield a uniform plan", p)
	}
	return plan
}

func TestLaneVsOracleReplay(t *testing.T) {
	configs := []struct {
		name string
		n    int
		d    float64
		p    func(n int, d float64) radio.Protocol
	}{
		{"distributed", 90, 6, func(n int, d float64) radio.Protocol { return core.NewDistributedProtocol(n, d) }},
		{"restricted-pool", 120, 8, func(n int, d float64) radio.Protocol { return core.NewRestrictedPoolProtocol(n, d) }},
		{"decay", 70, 5, func(n int, d float64) radio.Protocol { return protocols.NewDecay(n) }},
		{"aloha", 60, 4, func(n int, d float64) radio.Protocol { return protocols.NewAloha(d) }},
		{"flood", 40, 4, func(n int, d float64) radio.Protocol { return protocols.Flood{} }},
	}
	for ci, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			g := testGraph(t, cfg.n, cfg.d, 1000+uint64(ci))
			p := cfg.p(cfg.n, cfg.d)
			maxRounds := core.MaxRoundsFor(cfg.n)
			plan := mustPlan(t, p, maxRounds)
			e := lanes.NewEngine(g, []int32{0}, plan)
			var tr lanes.Trace
			e.SetTrace(&tr)

			const width = 8
			seeds := sweep.Seeds(width, 4321+uint64(ci))
			out := make([]int, width)
			e.Run(seeds, out)

			for lane := 0; lane < width; lane++ {
				o := oracle.New(g, []int32{0}, radio.StrictInformed)
				res, err := o.Replay(tr.Sets[lane])
				if err != nil {
					t.Fatalf("lane %d: oracle replay: %v", lane, err)
				}
				if res.Completed {
					if out[lane] != res.Rounds {
						t.Errorf("lane %d: completion round %d, oracle %d", lane, out[lane], res.Rounds)
					}
				} else if out[lane] != maxRounds+1 {
					t.Errorf("lane %d: oracle incomplete but lane reports %d", lane, out[lane])
				}
				for v := 0; v < cfg.n; v++ {
					if tr.InformedAt[lane][v] != res.InformedAt[v] {
						t.Fatalf("lane %d: InformedAt[%d] = %d, oracle %d",
							lane, v, tr.InformedAt[lane][v], res.InformedAt[v])
					}
				}
				if len(tr.Stats[lane]) != len(o.Records) {
					t.Fatalf("lane %d: %d stat rows, oracle %d rounds", lane, len(tr.Stats[lane]), len(o.Records))
				}
				for r, rs := range tr.Stats[lane] {
					rec := o.Records[r]
					if rs.Transmitters != rec.Transmitters || rs.Successes != rec.Successes ||
						rs.Collisions != rec.Collisions || rs.NewlyInformed != rec.NewlyInformed {
						t.Fatalf("lane %d round %d: lane stats %+v, oracle tx=%d succ=%d coll=%d newly=%d",
							lane, r+1, rs, rec.Transmitters, rec.Successes, rec.Collisions, rec.NewlyInformed)
					}
				}
			}
		})
	}
}

// TestLanePurity: a trial's outcome depends only on its own seed — not on
// the lane width, its position within a block, or which other trials
// share the block. This is the property that makes campaign reports
// deterministic across -lanes settings.
func TestLanePurity(t *testing.T) {
	g := testGraph(t, 200, 7, 99)
	p := core.NewDistributedProtocol(200, 7)
	maxRounds := core.MaxRoundsFor(200)
	plan := mustPlan(t, p, maxRounds)

	const trials = 130
	seeds := sweep.Seeds(trials, 2006)
	ref := make([]int, trials)
	if err := lanes.RunBlocks(context.Background(), g, []int32{0}, plan, seeds, 64, 1, ref); err != nil {
		t.Fatal(err)
	}

	// Width 1: every trial alone in its own block.
	solo := make([]int, trials)
	if err := lanes.RunBlocks(context.Background(), g, []int32{0}, plan, seeds, 1, 1, solo); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if solo[i] != ref[i] {
			t.Fatalf("trial %d: solo run %d, 64-lane block %d", i, solo[i], ref[i])
		}
	}

	// Reversed block composition: trial seeds in reverse order must give
	// the reversed results exactly.
	rev := make([]uint64, trials)
	for i, s := range seeds {
		rev[trials-1-i] = s
	}
	revOut := make([]int, trials)
	if err := lanes.RunBlocks(context.Background(), g, []int32{0}, plan, rev, 64, 1, revOut); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if revOut[trials-1-i] != ref[i] {
			t.Fatalf("trial %d: result changed when block composition reversed", i)
		}
	}
}

func TestRunBlocksWidthWorkerGomaxprocsInvariance(t *testing.T) {
	g := testGraph(t, 150, 6, 5)
	p := core.NewDistributedProtocol(150, 6)
	plan := mustPlan(t, p, core.MaxRoundsFor(150))
	seeds := sweep.Seeds(200, 77)

	run := func(width, workers int) []int {
		out := make([]int, len(seeds))
		if err := lanes.RunBlocks(context.Background(), g, []int32{0}, plan, seeds, width, workers, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(64, 1)
	for _, width := range []int{64, 13, 7} {
		for _, workers := range []int{1, 3, 8} {
			got := run(width, workers)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("width=%d workers=%d: trial %d got %d want %d", width, workers, i, got[i], ref[i])
				}
			}
		}
	}
	prev := runtime.GOMAXPROCS(1)
	got1 := run(64, 0)
	runtime.GOMAXPROCS(4)
	got4 := run(64, 0)
	runtime.GOMAXPROCS(prev)
	for i := range ref {
		if got1[i] != ref[i] || got4[i] != ref[i] {
			t.Fatalf("GOMAXPROCS variance at trial %d", i)
		}
	}
}

func TestLaneBudgetAndDegenerateCases(t *testing.T) {
	// No edges: nothing beyond the source ever gets informed; every lane
	// must report the budget sentinel.
	g := testGraph(t, 12, 0, 3)
	if g.M() != 0 {
		t.Fatalf("expected empty graph, got %d edges", g.M())
	}
	p := core.NewDistributedProtocol(12, 4)
	maxRounds := 20
	plan := mustPlan(t, p, maxRounds)
	e := lanes.NewEngine(g, []int32{0}, plan)
	seeds := sweep.Seeds(5, 9)
	out := make([]int, 5)
	e.Run(seeds, out)
	for i, r := range out {
		if r != maxRounds+1 {
			t.Fatalf("lane %d: got %d, want sentinel %d", i, r, maxRounds+1)
		}
	}

	// Zero budget: the sentinel is 1, matching radio.BroadcastTimeOn.
	plan0 := mustPlan(t, p, 0)
	e0 := lanes.NewEngine(g, []int32{0}, plan0)
	out0 := make([]int, 2)
	e0.Run(seeds[:2], out0)
	for _, r := range out0 {
		if r != 1 {
			t.Fatalf("zero budget: got %d, want 1", r)
		}
	}

	// All nodes sources: complete at round 0.
	g2 := testGraph(t, 4, 2, 11)
	plan2 := mustPlan(t, core.NewDistributedProtocol(4, 2), 8)
	e2 := lanes.NewEngine(g2, []int32{0, 1, 2, 3}, plan2)
	out2 := make([]int, 3)
	e2.Run(seeds[:3], out2)
	for _, r := range out2 {
		if r != 0 {
			t.Fatalf("all-source run: got %d, want 0", r)
		}
	}
}

// TestLaneEngineReuse: a reused engine must produce exactly the results a
// fresh engine does, block after block.
func TestLaneEngineReuse(t *testing.T) {
	g := testGraph(t, 120, 6, 21)
	p := protocols.NewDecay(120)
	plan := mustPlan(t, p, core.MaxRoundsFor(120))
	reused := lanes.NewEngine(g, []int32{0}, plan)
	for block := 0; block < 4; block++ {
		seeds := sweep.Seeds(17, 500+uint64(block))
		got := make([]int, len(seeds))
		want := make([]int, len(seeds))
		reused.Run(seeds, got)
		lanes.NewEngine(g, []int32{0}, plan).Run(seeds, want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("block %d trial %d: reused %d, fresh %d", block, i, got[i], want[i])
			}
		}
	}
}

// TestNonUniformProtocolHasNoPlan: protocols without the capability (or
// with any non-uniform round) must be declined so callers fall back.
func TestNonUniformProtocolHasNoPlan(t *testing.T) {
	rr := &protocols.RoundRobin{N: 10}
	if _, ok := lanes.NewPlan(rr, 10); ok {
		t.Fatal("RoundRobin should not plan (no UniformProtocol)")
	}
	if _, ok := lanes.NewPlan(mixedProtocol{}, 10); ok {
		t.Fatal("protocol with a non-uniform round should not plan")
	}
}

type mixedProtocol struct{}

func (mixedProtocol) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	return round%2 == 0
}

func (mixedProtocol) RoundProb(round int) (float64, radio.Cohort, bool) {
	if round == 3 {
		return 0, radio.AllInformed, false // one non-uniform round poisons the plan
	}
	return 0.5, radio.AllInformed, true
}

// TestLaneVsScalarDistribution: per-trial completion rounds from the lane
// engine and the scalar sampled path are different streams but must be
// draws from the same distribution (two-sample chi-square, balanced
// pooled-quantile bins, 5-sigma acceptance like the xrand suites).
func TestLaneVsScalarDistribution(t *testing.T) {
	g := testGraph(t, 150, 8, 42)
	p := core.NewDistributedProtocol(150, 8)
	maxRounds := core.MaxRoundsFor(150)
	plan := mustPlan(t, p, maxRounds)

	const trials = 800
	seeds := sweep.Seeds(trials, 7)
	lane := make([]int, trials)
	if err := lanes.RunBlocks(context.Background(), g, []int32{0}, plan, seeds, 64, 1, lane); err != nil {
		t.Fatal(err)
	}
	scalar := make([]int, trials)
	e := radio.NewEngine(g, 0, radio.StrictInformed)
	for i, s := range seeds {
		scalar[i] = radio.BroadcastTimeOn(e, p, maxRounds, xrand.New(s))
	}
	chi2, df := twoSampleChiSquare(lane, scalar, 8)
	if limit := float64(df) + 5*math.Sqrt(2*float64(df)); chi2 > limit {
		t.Fatalf("lane vs scalar completion-round distributions diverge: chi2=%.1f df=%d limit=%.1f", chi2, df, limit)
	}
}

// twoSampleChiSquare bins the pooled samples into (at most) `bins`
// balanced quantile bins and returns the two-sample chi-square statistic
// with its degrees of freedom.
func twoSampleChiSquare(a, b []int, bins int) (chi2 float64, df int) {
	pooled := make([]int, 0, len(a)+len(b))
	pooled = append(pooled, a...)
	pooled = append(pooled, b...)
	sort.Ints(pooled)
	var edges []int
	for i := 1; i < bins; i++ {
		e := pooled[i*len(pooled)/bins]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	binOf := func(v int) int {
		lo := 0
		for lo < len(edges) && v >= edges[lo] {
			lo++
		}
		return lo
	}
	nb := len(edges) + 1
	ca, cb := make([]float64, nb), make([]float64, nb)
	for _, v := range a {
		ca[binOf(v)]++
	}
	for _, v := range b {
		cb[binOf(v)]++
	}
	na, nbTot := float64(len(a)), float64(len(b))
	tot := na + nbTot
	for i := 0; i < nb; i++ {
		pool := ca[i] + cb[i]
		if pool == 0 {
			continue
		}
		ea := na * pool / tot
		eb := nbTot * pool / tot
		chi2 += (ca[i]-ea)*(ca[i]-ea)/ea + (cb[i]-eb)*(cb[i]-eb)/eb
	}
	return chi2, nb - 1
}

// TestSweepRunLanes: the sweep wrapper agrees with direct RunBlocks,
// declines non-uniform protocols, and propagates cancellation.
func TestSweepRunLanes(t *testing.T) {
	g := testGraph(t, 100, 6, 13)
	p := core.NewDistributedProtocol(100, 6)
	maxRounds := core.MaxRoundsFor(100)
	values, ok, err := sweep.RunLanes(context.Background(), g, 0, p, maxRounds, 50, 321)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("RunLanes declined a uniform protocol")
	}
	plan := mustPlan(t, p, maxRounds)
	want := make([]int, 50)
	if err := lanes.RunBlocks(context.Background(), g, []int32{0}, plan, sweep.Seeds(50, 321), 0, 0, want); err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if values[i] != float64(want[i]) {
			t.Fatalf("trial %d: RunLanes %v, RunBlocks %d", i, values[i], want[i])
		}
	}
	if _, ok, err := sweep.RunLanes(context.Background(), g, 0, &protocols.RoundRobin{N: 100}, maxRounds, 10, 1); ok || err != nil {
		t.Fatalf("RunLanes on a non-uniform protocol: ok=%v err=%v, want a clean decline", ok, err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok, err := sweep.RunLanes(canceled, g, 0, p, maxRounds, 50, 321); !ok || !errors.Is(err, radio.ErrCanceled) {
		t.Fatalf("RunLanes under canceled ctx: ok=%v err=%v, want ok with ErrCanceled", ok, err)
	}
}
