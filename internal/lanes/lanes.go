// Package lanes implements a bit-parallel Monte-Carlo broadcast engine:
// up to 64 independent trials ("lanes") advance through the same graph
// simultaneously, one machine word per node, so a single edge pass serves
// every lane at once.
//
// Per round each transmitting node v carries a 64-bit mask M_v whose bit i
// means "v transmits in lane i". The collision-aware scatter is carry-save
// over two bitplanes per listener w:
//
//	twice[w] |= once[w] & M_v
//	once[w]  |= M_v
//
// so after the pass, bit i of once&^twice is "exactly one transmitting
// neighbour in lane i" (success) and bit i of twice is ">=2 hits"
// (collision) — the radio model's delivery rule falls out per lane with
// pure word ops, no per-lane branching. Nodes that transmit in a lane do
// not listen in it (the received mask is additionally cleared by the
// node's own transmit mask), and informed sets are per-lane bitplanes, so
// per-lane early exit is a matter of masking finished lanes out of one
// "active" word.
//
// The scatter has a dual: once most listeners are saturated (informed in
// every still-active lane, so their reception can never matter again),
// the engine flips to a gather pass over the remaining live listeners —
// each live w folds its neighbours' transmit masks into local once/twice
// words — which makes the per-round cost track the shrinking frontier
// instead of the transmitter union. The cheaper side is chosen per round
// from the two exact visit counts; both sides commit identical results.
//
// Randomness follows the sampled-transmitter policy established by the
// scalar fast path: each lane walks its eligible list with geometric
// skips of rate q (xrand.GeometricExp), which realises an independent
// Bernoulli(q) transmit decision per eligible node — the same joint
// distribution as the scalar path's k ~ Binomial(|eligible|, q) draw
// followed by a uniform k-subset, in O(k) draws with no list writes. Each
// lane owns a private xrand stream seeded solely from that trial's seed,
// and every structure a lane's draws depend on (its eligible lists) is
// updated in a lane-pure order — ascending vertex order within a round —
// so a trial's outcome is a pure function of (graph, sources, plan, seed):
// bit-identical no matter the lane width, which other trials share its
// block, or how blocks are sharded across workers. That invariance is
// what lets campaign reports stay deterministic across -lanes settings.
//
// The engine handles protocols through the radio.UniformProtocol
// capability only: the per-round (q, cohort) schedule is probed up front
// into a Plan (RoundProb is deterministic and consumes no randomness, so
// probing is free); protocols with any non-uniform round fall back to the
// scalar engine, as do observed runs (trace observers are inherently
// scalar per-trial streams).
package lanes

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"slices"
	"sync"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// Width is the number of trials a single lane block advances per edge
// pass: one per bit of a machine word.
const Width = 64

// Plan is a protocol's uniform-round schedule, probed once up front:
// per-round transmit probability and cohort, plus the set of distinct
// InformedBy cutoffs (the engine keeps one extra bitplane per cutoff).
type Plan struct {
	maxRounds int
	q         []float64 // q[r-1]: transmit probability of round r
	lam       []float64 // lam[r-1]: -log1p(-q), the geometric skip rate (0 unless 0<q<1)
	cohort    []int     // cohort[r-1]: -1 = AllInformed, else index into cutoffs
	cutoffs   []int32   // distinct InformedBy cutoffs, in first-seen order
}

// NewPlan probes p's per-round schedule for rounds 1..maxRounds. ok is
// false — and the caller must fall back to the scalar engine — when p
// does not implement radio.UniformProtocol or declares any non-uniform
// round in the budget.
func NewPlan(p radio.Protocol, maxRounds int) (*Plan, bool) {
	up, isUniform := p.(radio.UniformProtocol)
	if !isUniform || maxRounds < 0 {
		return nil, false
	}
	pl := &Plan{
		maxRounds: maxRounds,
		q:         make([]float64, maxRounds),
		lam:       make([]float64, maxRounds),
		cohort:    make([]int, maxRounds),
	}
	for r := 1; r <= maxRounds; r++ {
		q, cohort, ok := up.RoundProb(r)
		if !ok {
			return nil, false
		}
		pl.q[r-1] = q
		if q > 0 && q < 1 {
			pl.lam[r-1] = -math.Log1p(-q)
		}
		cutoff, restricted := cohort.Cutoff()
		if !restricted {
			pl.cohort[r-1] = -1
			continue
		}
		idx := -1
		for k, c := range pl.cutoffs {
			if c == cutoff {
				idx = k
				break
			}
		}
		if idx < 0 {
			idx = len(pl.cutoffs)
			pl.cutoffs = append(pl.cutoffs, cutoff)
		}
		pl.cohort[r-1] = idx
	}
	return pl, true
}

// MaxRounds returns the round budget the plan was probed for. Trials that
// do not complete within it report MaxRounds()+1, mirroring
// radio.BroadcastTimeOn.
func (pl *Plan) MaxRounds() int { return pl.maxRounds }

// RoundStats are one lane's per-round counters, collected only in trace
// mode (SetTrace) for the differential tests against the scalar oracle.
type RoundStats struct {
	Transmitters  int // lane transmitter-set size this round
	Successes     int // listeners with exactly one transmitting neighbour
	Collisions    int // listeners with >=2 transmitting neighbours
	NewlyInformed int // uninformed listeners that became informed
}

// Trace captures per-lane, per-round details of a Run for the
// differential tests: the effective transmitter set of every round (fit
// for oracle.Engine.Replay), the per-round success/collision counters,
// and the per-lane informed-at times. Collecting a trace disables the
// saturated-node scatter skip (which elides hit counting at nodes whose
// reception can no longer matter), so traced runs see every hit; the
// per-lane results are unchanged.
type Trace struct {
	Sets       [][][]int32 // Sets[lane][r-1]: transmitters of round r
	Stats      [][]RoundStats
	InformedAt [][]int32 // InformedAt[lane][v]; radio.NotInformed if never
}

func (t *Trace) reset(width, n int) {
	t.Sets = make([][][]int32, width)
	t.Stats = make([][]RoundStats, width)
	t.InformedAt = make([][]int32, width)
	for i := 0; i < width; i++ {
		at := make([]int32, n)
		for v := range at {
			at[v] = radio.NotInformed
		}
		t.InformedAt[i] = at
	}
}

// Engine runs lane blocks on a fixed graph from a fixed source set. It is
// not safe for concurrent use; RunBlocks keeps one per worker.
type Engine struct {
	g       *graph.Graph
	sources []int32
	plan    *Plan

	informed []uint64 // informed[v] bit i: v holds the message in lane i
	// hits interleaves the two carry-save planes — hits[2v] is "at least
	// one hit" (once), hits[2v+1] is "at least two" (twice) — so each
	// scatter visit touches one cache line instead of two.
	hits    []uint64
	txMask  []uint64 // txMask[v] bit i: v transmits in lane i this round
	done    []uint8  // 1: v informed in every active lane; delivery skips it
	touched []int32  // listeners with hits this round (sparse scatter rounds)
	txUnion []int32  // nodes with nonzero txMask, for O(|tx|) mask clear

	// Live-listener bookkeeping for the gather pass: live holds the nodes
	// not yet saturated (done[v] == 0), ascending; liveDeg is the sum of
	// their degrees (the exact gather visit count) and unionDeg the sum of
	// txUnion degrees (the exact scatter visit count) for this round.
	live      []int32
	liveDeg   int
	unionDeg  int
	doneDirty bool // done gained flags since live was last compacted

	unionInformed []int32    // nodes informed in >=1 lane, append order
	cohortPlane   [][]uint64 // per plan cutoff: informed at round <= cutoff
	cohortUnion   [][]int32

	// Per-lane trial state. elig mirrors the scalar engine's incremental
	// eligible lists: every informed node, appended in lane-pure
	// (ascending-vertex within a round) order and never reordered — the
	// geometric skip walk reads but does not permute.
	rngs        []xrand.Rand
	elig        [][]int32
	eligCohort  [][][]int32 // [cutoff index][lane]
	informedCnt []int32
	doneRound   []int32
	active      uint64

	trace *Trace
}

// NewEngine returns a lane engine on g with the given initial informed
// set (sources[0] first, duplicates tolerated) for the planned protocol
// schedule. The engine is reusable: each Run resets all per-trial state.
func NewEngine(g *graph.Graph, sources []int32, plan *Plan) *Engine {
	n := g.N()
	if len(sources) == 0 {
		panic("lanes: NewEngine needs at least one source")
	}
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			panic(fmt.Sprintf("lanes: source %d out of range [0,%d)", s, n))
		}
	}
	e := &Engine{
		g:           g,
		sources:     append([]int32(nil), sources...),
		plan:        plan,
		informed:    make([]uint64, n),
		hits:        make([]uint64, 2*n),
		txMask:      make([]uint64, n),
		done:        make([]uint8, n),
		live:        make([]int32, 0, n),
		cohortPlane: make([][]uint64, len(plan.cutoffs)),
		cohortUnion: make([][]int32, len(plan.cutoffs)),
		rngs:        make([]xrand.Rand, Width),
		elig:        make([][]int32, Width),
		eligCohort:  make([][][]int32, len(plan.cutoffs)),
		informedCnt: make([]int32, Width),
		doneRound:   make([]int32, Width),
	}
	for k := range e.cohortPlane {
		e.cohortPlane[k] = make([]uint64, n)
		e.eligCohort[k] = make([][]int32, Width)
	}
	return e
}

// SetTrace attaches (or, with nil, detaches) a Trace that subsequent Runs
// fill. Intended for tests; tracing allocates per round.
func (e *Engine) SetTrace(t *Trace) { e.trace = t }

// Run advances one lane block: up to Width trials, seeds[i] seeding lane
// i's private stream. out[i] receives the round in which lane i's
// broadcast completed, or MaxRounds()+1 if it did not finish within the
// plan's budget (the same sentinel radio.BroadcastTimeOn uses).
func (e *Engine) Run(seeds []uint64, out []int) {
	// context.Background never cancels, so the error is structurally nil.
	_ = e.RunContext(context.Background(), seeds, out)
}

// RunContext is Run with a cooperative between-rounds cancellation check.
// The check consumes no randomness; an uncanceled run is bit-identical to
// Run. On cancellation the block's results are meaningless and the error
// wraps radio.ErrCanceled with the context's cause.
func (e *Engine) RunContext(ctx context.Context, seeds []uint64, out []int) error {
	width := len(seeds)
	if width == 0 {
		return nil
	}
	if width > Width {
		panic(fmt.Sprintf("lanes: block of %d seeds exceeds %d lanes", width, Width))
	}
	if len(out) != width {
		panic("lanes: Run needs len(out) == len(seeds)")
	}
	n := e.g.N()
	e.resetRun(seeds, width, n)
	for i := 0; i < width; i++ {
		out[i] = e.plan.maxRounds + 1
	}
	if len(e.unionInformed) == n {
		// Every node is a source: all lanes complete in round 0.
		for i := 0; i < width; i++ {
			out[i] = 0
		}
		return nil
	}

	maxRounds := e.plan.maxRounds
	for round := 1; round <= maxRounds && e.active != 0; round++ {
		if ctx.Err() != nil {
			return radio.Canceled(ctx)
		}
		activeAtStart := e.active
		e.buildTransmitters(round, width)
		if e.trace != nil {
			e.traceSets(width)
		}
		e.deliver(round, n)
		for _, v := range e.txUnion {
			e.txMask[v] = 0
		}
		if e.active != activeAtStart && e.active != 0 && e.trace == nil {
			// Lanes retired this round: nodes informed in every remaining
			// active lane are now saturated — their reception can never
			// matter again — so flag them for the delivery skip. done is
			// monotone-safe: active only shrinks, so a set flag stays valid.
			// Only live nodes need rechecking; flagged ones stay flagged.
			a := e.active
			for _, v := range e.live {
				if e.informed[v]&a == a {
					e.done[v] = 1
					e.doneDirty = true
				}
			}
		}
		if e.doneDirty {
			e.compactLive()
			e.doneDirty = false
		}
	}
	for i := 0; i < width; i++ {
		if int(e.doneRound[i]) <= maxRounds {
			out[i] = int(e.doneRound[i])
		}
	}
	return nil
}

// resetRun restores pristine per-trial state and seeds the sources.
func (e *Engine) resetRun(seeds []uint64, width, n int) {
	clear(e.informed)
	clear(e.done)
	// hits and txMask are all-zero between rounds by construction; clear
	// anyway so a previously canceled run cannot leak marks into this one.
	clear(e.hits)
	clear(e.txMask)
	e.touched = e.touched[:0]
	e.txUnion = e.txUnion[:0]
	e.unionInformed = e.unionInformed[:0]
	for k := range e.cohortPlane {
		clear(e.cohortPlane[k])
		e.cohortUnion[k] = e.cohortUnion[k][:0]
	}
	active := ^uint64(0)
	if width < Width {
		active = uint64(1)<<uint(width) - 1
	}
	e.active = active
	for i := 0; i < width; i++ {
		e.rngs[i].Reseed(seeds[i])
		e.elig[i] = e.elig[i][:0]
		e.informedCnt[i] = 0
		e.doneRound[i] = int32(e.plan.maxRounds + 1)
		for k := range e.eligCohort {
			e.eligCohort[k][i] = e.eligCohort[k][i][:0]
		}
	}
	if e.trace != nil {
		e.trace.reset(width, n)
	}
	for _, s := range e.sources {
		if e.informed[s] != 0 {
			continue // duplicate source
		}
		e.informed[s] = active
		e.done[s] = 1 // sources are informed in every lane from round 0
		e.unionInformed = append(e.unionInformed, s)
		for i := 0; i < width; i++ {
			e.elig[i] = append(e.elig[i], s)
			e.informedCnt[i]++
			if e.trace != nil {
				e.trace.InformedAt[i][s] = 0
			}
		}
		for k, cutoff := range e.plan.cutoffs {
			if cutoff >= 0 { // sources have informedAt 0
				e.cohortPlane[k][s] = active
				e.cohortUnion[k] = append(e.cohortUnion[k], s)
				for i := 0; i < width; i++ {
					e.eligCohort[k][i] = append(e.eligCohort[k][i], s)
				}
			}
		}
	}
	if e.trace != nil {
		// Trace mode counts hits at every listener, so the saturated-node
		// skip must stay off: leave done all-zero.
		clear(e.done)
	}
	e.live = e.live[:0]
	e.liveDeg = 0
	for v := 0; v < n; v++ {
		if e.done[v] == 0 {
			e.live = append(e.live, int32(v))
			e.liveDeg += e.g.Degree(int32(v))
		}
	}
	e.doneDirty = false
	if len(e.unionInformed) == n {
		for i := 0; i < width; i++ {
			e.doneRound[i] = 0
		}
		e.active = 0
	}
}

// buildTransmitters fills txMask/txUnion (and unionDeg, the scatter visit
// count) for the round. q >= 1 rounds take the whole (cohort) plane;
// 0 < q < 1 rounds walk each active lane's eligible list with geometric
// skips of rate q from the lane's own stream — an independent
// Bernoulli(q) decision per eligible node, the same joint distribution as
// the scalar fast path's k ~ Binomial(|eligible|, q) draw plus uniform
// k-subset, in O(k) draws; q <= 0 rounds transmit nothing (the round
// still counts against the budget).
func (e *Engine) buildTransmitters(round, width int) {
	e.txUnion = e.txUnion[:0]
	e.unionDeg = 0
	q := e.plan.q[round-1]
	ci := e.plan.cohort[round-1]
	switch {
	case q >= 1:
		list, plane := e.unionInformed, e.informed
		if ci >= 0 {
			list, plane = e.cohortUnion[ci], e.cohortPlane[ci]
		}
		for _, v := range list {
			if m := plane[v] & e.active; m != 0 {
				e.txMask[v] = m
				e.txUnion = append(e.txUnion, v)
				e.unionDeg += e.g.Degree(v)
			}
		}
	case q > 0:
		lam := e.plan.lam[round-1]
		for act := e.active; act != 0; act &= act - 1 {
			i := bits.TrailingZeros64(act)
			el := e.elig[i]
			if ci >= 0 {
				el = e.eligCohort[ci][i]
			}
			if len(el) == 0 {
				continue
			}
			rng := &e.rngs[i]
			bit := uint64(1) << uint(i)
			for j := rng.GeometricExp(lam); j < len(el); j += 1 + rng.GeometricExp(lam) {
				v := el[j]
				if e.txMask[v] == 0 {
					e.txUnion = append(e.txUnion, v)
					e.unionDeg += e.g.Degree(v)
				}
				e.txMask[v] |= bit
			}
		}
	}
}

// deliver runs the round's carry-save edge pass and classifies every hit
// listener, picking the cheaper of two exact-equivalent strategies:
// gather (iterate live listeners, fold neighbour transmit masks into
// local once/twice words — liveDeg visits, no plane writes, no per-visit
// saturation branch) or scatter (iterate union transmitters into the hits
// planes — unionDeg visits, cheap while the transmitter union is small).
// Saturated listeners commit nothing on either side (their recv masks
// cannot add informed bits), and commits happen in ascending vertex order
// on both — live is sorted, the dense plane scan is naturally ordered and
// the sparse touched list is sorted — which is what keeps per-lane
// eligible-list evolution lane-pure and the strategy choice invisible.
func (e *Engine) deliver(round, n int) {
	if e.liveDeg <= 2*e.unionDeg {
		for _, w := range e.live {
			var once, twice uint64
			for _, v := range e.g.Neighbors(w) {
				m := e.txMask[v]
				twice |= once & m
				once |= m
			}
			if once != 0 {
				e.commit(w, once, twice, round)
			}
		}
		return
	}
	e.scatterAndCommit(round, n)
}

// scatterAndCommit is deliver's transmitter-side strategy, with the
// scalar engine's dense/sparse split on the union visit count.
func (e *Engine) scatterAndCommit(round, n int) {
	if 2*e.unionDeg >= n {
		for _, v := range e.txUnion {
			m := e.txMask[v]
			for _, w := range e.g.Neighbors(v) {
				if e.done[w] != 0 {
					continue
				}
				t := e.hits[2*w]
				e.hits[2*w+1] |= t & m
				e.hits[2*w] = t | m
			}
		}
		for w := 0; w < n; w++ {
			once := e.hits[2*w]
			if once == 0 {
				continue
			}
			twice := e.hits[2*w+1]
			e.hits[2*w] = 0
			e.hits[2*w+1] = 0
			e.commit(int32(w), once, twice, round)
		}
		return
	}
	e.touched = e.touched[:0]
	for _, v := range e.txUnion {
		m := e.txMask[v]
		for _, w := range e.g.Neighbors(v) {
			if e.done[w] != 0 {
				continue
			}
			t := e.hits[2*w]
			if t == 0 {
				e.touched = append(e.touched, w)
			}
			e.hits[2*w+1] |= t & m
			e.hits[2*w] = t | m
		}
	}
	slices.Sort(e.touched)
	for _, w := range e.touched {
		once := e.hits[2*w]
		twice := e.hits[2*w+1]
		e.hits[2*w] = 0
		e.hits[2*w+1] = 0
		e.commit(w, once, twice, round)
	}
}

// compactLive drops newly saturated nodes from the live-listener list
// (order-preserving, so gather commits stay ascending) and refreshes
// liveDeg, the exact gather visit count.
func (e *Engine) compactLive() {
	kept := e.live[:0]
	deg := 0
	for _, w := range e.live {
		if e.done[w] == 0 {
			kept = append(kept, w)
			deg += e.g.Degree(w)
		}
	}
	e.live = kept
	e.liveDeg = deg
}

// commit classifies one listener's hits and applies the per-lane state
// updates for its newly informed lanes.
func (e *Engine) commit(w int32, once, twice uint64, round int) {
	// Exactly one hit, and not transmitting in that lane itself.
	recv := once &^ twice &^ e.txMask[w]
	if e.trace != nil {
		e.traceHits(w, recv, twice)
	}
	newBits := recv &^ e.informed[w]
	if newBits == 0 {
		return
	}
	if e.informed[w] == 0 {
		e.unionInformed = append(e.unionInformed, w)
	}
	ni := e.informed[w] | newBits
	e.informed[w] = ni
	if e.trace == nil && ni&e.active == e.active {
		e.done[w] = 1
		e.doneDirty = true
	}
	for k, cutoff := range e.plan.cutoffs {
		if int32(round) <= cutoff {
			if e.cohortPlane[k][w] == 0 {
				e.cohortUnion[k] = append(e.cohortUnion[k], w)
			}
			e.cohortPlane[k][w] |= newBits
		}
	}
	for nb := newBits; nb != 0; nb &= nb - 1 {
		i := bits.TrailingZeros64(nb)
		e.elig[i] = append(e.elig[i], w)
		for k, cutoff := range e.plan.cutoffs {
			if int32(round) <= cutoff {
				e.eligCohort[k][i] = append(e.eligCohort[k][i], w)
			}
		}
		if e.trace != nil {
			e.trace.InformedAt[i][w] = int32(round)
			s := e.trace.Stats[i]
			s[len(s)-1].NewlyInformed++
		}
		e.informedCnt[i]++
		if int(e.informedCnt[i]) == e.g.N() {
			e.doneRound[i] = int32(round)
			e.active &^= uint64(1) << uint(i)
		}
	}
}

// traceSets records each active lane's effective transmitter set and
// opens its RoundStats row for this round.
func (e *Engine) traceSets(width int) {
	for i := 0; i < width; i++ {
		if e.active>>uint(i)&1 == 0 {
			continue
		}
		bit := uint64(1) << uint(i)
		var set []int32
		for _, v := range e.txUnion {
			if e.txMask[v]&bit != 0 {
				set = append(set, v)
			}
		}
		e.trace.Sets[i] = append(e.trace.Sets[i], set)
		e.trace.Stats[i] = append(e.trace.Stats[i], RoundStats{Transmitters: len(set)})
	}
}

// traceHits accumulates one listener's per-lane success/collision counts
// into the open RoundStats rows.
func (e *Engine) traceHits(w int32, recv, twice uint64) {
	for b := recv; b != 0; b &= b - 1 {
		i := bits.TrailingZeros64(b)
		s := e.trace.Stats[i]
		s[len(s)-1].Successes++
	}
	for b := twice &^ e.txMask[w]; b != 0; b &= b - 1 {
		i := bits.TrailingZeros64(b)
		s := e.trace.Stats[i]
		s[len(s)-1].Collisions++
	}
}

// RunBlocks shards len(seeds) trials into lane blocks of the given width
// (0 or out-of-range means Width) and runs them on a bounded worker pool
// (workers <= 0 means GOMAXPROCS), one reused Engine per worker. out[i]
// receives trial i's completion round, plan.MaxRounds()+1 if unfinished.
// Workers write disjoint ranges of out, and lane purity makes each trial
// a pure function of its seed, so out is bitwise independent of width,
// worker count and GOMAXPROCS. On cancellation the first error (wrapping
// radio.ErrCanceled) is returned and out is meaningless.
func RunBlocks(ctx context.Context, g *graph.Graph, sources []int32, plan *Plan, seeds []uint64, width, workers int, out []int) error {
	if len(out) != len(seeds) {
		panic("lanes: RunBlocks needs len(out) == len(seeds)")
	}
	if width <= 0 || width > Width {
		width = Width
	}
	blocks := (len(seeds) + width - 1) / width
	if blocks == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > blocks {
		workers = blocks
	}
	runBlock := func(e *Engine, b int) error {
		lo := b * width
		hi := min(lo+width, len(seeds))
		return e.RunContext(ctx, seeds[lo:hi], out[lo:hi])
	}
	if workers <= 1 {
		e := NewEngine(g, sources, plan)
		for b := 0; b < blocks; b++ {
			if err := runBlock(e, b); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEngine(g, sources, plan)
			for b := range ch {
				if err := runBlock(e, b); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			}
		}()
	}
	for b := 0; b < blocks; b++ {
		ch <- b
	}
	close(ch)
	wg.Wait()
	return firstErr
}
