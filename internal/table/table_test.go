package table

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 123456)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "demo" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Fatalf("separator %q", lines[2])
	}
	// Columns align: the "value" column must start at the same offset in
	// every data row.
	off3 := strings.Index(lines[3], "1")
	off4 := strings.Index(lines[4], "123456")
	if off3 != off4 {
		t.Fatalf("misaligned columns:\n%s", s)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "v")
	tb.AddRow(0.0)
	tb.AddRow(3.0)
	tb.AddRow(3.14159)
	tb.AddRow(12345.6)
	tb.AddRow(0.0001234)
	s := tb.String()
	for _, want := range []string{"0", "3", "3.142", "12345.6", "1.234e-04"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestNotes(t *testing.T) {
	tb := New("t", "a")
	tb.AddRow(1)
	tb.AddNote("trials=%d", 5)
	if !strings.Contains(tb.String(), "note: trials=5") {
		t.Fatalf("missing note:\n%s", tb.String())
	}
	if !strings.Contains(tb.Markdown(), "*trials=5*") {
		t.Fatalf("missing markdown note:\n%s", tb.Markdown())
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("My Title", "x", "y")
	tb.AddRow(1, 2)
	md := tb.Markdown()
	for _, want := range []string{"**My Title**", "| x | y |", "|---|---|", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := New("ignored", "a", "b")
	tb.AddRow("x,y", `q"q`)
	tb.AddRow(1, 2)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "a,b" {
		t.Fatalf("csv header %q", lines[0])
	}
	if lines[1] != `"x,y","q""q"` {
		t.Fatalf("csv quoting %q", lines[1])
	}
	if lines[2] != "1,2" {
		t.Fatalf("csv row %q", lines[2])
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Rows = append(tb.Rows, []string{"only-one"})
	// Must not panic and must emit all columns.
	s := tb.String()
	if !strings.Contains(s, "only-one") {
		t.Fatal("row lost")
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "only-one,,") {
		t.Fatalf("csv padding wrong: %q", csv)
	}
}

func TestJSON(t *testing.T) {
	tb := New("j", "a", "b")
	tb.AddRow(1, "x")
	tb.AddNote("n1")
	out, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if doc.Title != "j" || len(doc.Columns) != 2 || len(doc.Rows) != 1 || doc.Rows[0][0] != "1" {
		t.Fatalf("doc %+v", doc)
	}
	if len(doc.Notes) != 1 || doc.Notes[0] != "n1" {
		t.Fatalf("notes %v", doc.Notes)
	}
}

func TestJSONShortRowPadded(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Rows = append(tb.Rows, []string{"only"})
	out, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", doc.Rows[0])
	}
}
