// Package table renders experiment results as aligned plain-text tables,
// Markdown tables, or CSV. The experiment harness prints one table per
// reproduced claim; EXPERIMENTS.md embeds the Markdown form.
package table

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a rectangular grid of cells with a header row and a title.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string // free-form footnotes rendered under the table
}

// New returns an empty table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Values are formatted with %v; float64 values are
// rendered with 4 significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01 || v <= -0.01:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// widths returns per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(w) && len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i := range t.Columns {
			if i > 0 {
				b.WriteString("  ")
			}
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", w[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		b.WriteString("  note: ")
		b.WriteString(note)
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		copy(cells, row)
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		copy(cells, row)
		writeRow(cells)
	}
	return b.String()
}

// JSON renders the table as a JSON object with title, columns, rows (as
// string matrices) and notes — the machine-readable form for downstream
// tooling.
func (t *Table) JSON() (string, error) {
	type doc struct {
		Title   string     `json:"title,omitempty"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		row := make([]string, len(t.Columns))
		copy(row, r)
		rows[i] = row
	}
	b, err := json.MarshalIndent(doc{t.Title, t.Columns, rows, t.Notes}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}
