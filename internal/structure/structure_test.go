package structure

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// bipartiteHalves builds G(n,p), then splits [0,n) into X = [0, n/2) and
// Y = [n/2, n).
func bipartiteHalves(n int, p float64, seed uint64) (*graph.Graph, []int32, []int32) {
	g := gen.Gnp(n, p, xrand.New(seed))
	x := make([]int32, 0, n/2)
	y := make([]int32, 0, n-n/2)
	for i := 0; i < n; i++ {
		if i < n/2 {
			x = append(x, int32(i))
		} else {
			y = append(y, int32(i))
		}
	}
	return g, x, y
}

func TestEvaluateCoverClassification(t *testing.T) {
	// y0 adjacent to s0 only (covered); y1 adjacent to s0 and s1
	// (collided); y2 adjacent to nothing (missed).
	b := graph.NewBuilder(5)
	// s0 = 0, s1 = 1, y0 = 2, y1 = 3, y2 = 4
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 3)
	g := b.Build()
	c := EvaluateCover(g, []int32{0, 1}, []int32{2, 3, 4})
	if len(c.Covered) != 1 || c.Covered[0] != 2 {
		t.Fatalf("Covered = %v", c.Covered)
	}
	if len(c.Collided) != 1 || c.Collided[0] != 3 {
		t.Fatalf("Collided = %v", c.Collided)
	}
	if len(c.Missed) != 1 || c.Missed[0] != 4 {
		t.Fatalf("Missed = %v", c.Missed)
	}
	if f := c.CoveredFraction(); math.Abs(f-1.0/3) > 1e-12 {
		t.Fatalf("CoveredFraction = %v", f)
	}
}

func TestCoveredFractionEmptyY(t *testing.T) {
	g := gen.Path(3)
	c := EvaluateCover(g, []int32{0}, nil)
	if c.CoveredFraction() != 1 {
		t.Fatal("empty Y should be fully covered")
	}
}

func TestRandomizedCoverLemma4(t *testing.T) {
	// Lemma 4 (first statement): with |X| = Θ(n), |Y| = Θ(n) and
	// q = 1/d, a constant fraction of Y gets exactly one neighbour in S.
	const n = 4000
	d := 30.0
	g, x, y := bipartiteHalves(n, gen.PForDegree(n, d), 1)
	rng := xrand.New(2)
	c := RandomizedCover(g, x, y, 1/d, rng)
	if f := c.CoveredFraction(); f < 0.15 {
		t.Fatalf("randomized 1/d cover fraction %v, want a constant fraction", f)
	}
}

func TestRandomizedCoverExtremeQ(t *testing.T) {
	const n = 400
	g, x, y := bipartiteHalves(n, 0.2, 3)
	rng := xrand.New(4)
	// q = 1: everybody transmits; nodes of Y with >= 2 X-neighbours all
	// collide. With p = 0.2 and |X| = 200, essentially everyone collides.
	c := RandomizedCover(g, x, y, 1, rng)
	if f := c.CoveredFraction(); f > 0.1 {
		t.Fatalf("q=1 cover fraction %v, want near 0 (collisions)", f)
	}
	// q = 0: nobody transmits.
	c = RandomizedCover(g, x, y, 0, rng)
	if len(c.Covered) != 0 || len(c.Collided) != 0 {
		t.Fatal("q=0 produced transmissions")
	}
}

func TestGreedyIndependentCoverIsIndependent(t *testing.T) {
	const n = 600
	g, x, y := bipartiteHalves(n, 0.05, 5)
	// Use a small Y so the quadratic greedy is fast.
	y = y[:40]
	c := GreedyIndependentCover(g, x, y)
	// Every covered node must have exactly one neighbour among the
	// transmitters (verified independently of the construction).
	check := EvaluateCover(g, c.Transmitters, y)
	if len(check.Collided) != 0 {
		t.Fatalf("greedy cover produced %d collided nodes", len(check.Collided))
	}
	if len(check.Covered) != len(c.Covered) {
		t.Fatalf("cover self-report mismatch: %d vs %d", len(check.Covered), len(c.Covered))
	}
	// With |X| = 300 candidates of degree ~30 over 40 targets, the greedy
	// should cover most of Y.
	if c.CoveredFraction() < 0.8 {
		t.Fatalf("greedy cover fraction %v too small", c.CoveredFraction())
	}
}

func TestGreedyIndependentCoverNoCandidates(t *testing.T) {
	g := gen.Path(4) // 0-1-2-3
	c := GreedyIndependentCover(g, []int32{0}, []int32{3})
	if len(c.Covered) != 0 || len(c.Missed) != 1 {
		t.Fatalf("unexpected cover %+v", c)
	}
}

func TestGreedyIndependentMatchingValid(t *testing.T) {
	const n = 2000
	d := 8.0
	g, x, y := bipartiteHalves(n, gen.PForDegree(n, d), 6)
	y = y[:12] // |X|/|Y| well above d² = 64: expect full matching
	m := GreedyIndependentMatching(g, x, y)
	if !m.IsIndependent(g) {
		t.Fatal("matching not independent")
	}
	// Pairs must be disjoint and x-y edges must exist.
	seen := make(map[int32]bool)
	for _, pr := range m.Pairs {
		if seen[pr[0]] || seen[pr[1]] {
			t.Fatal("matching reuses a vertex")
		}
		seen[pr[0]] = true
		seen[pr[1]] = true
		if !g.HasEdge(pr[0], pr[1]) {
			t.Fatalf("matched pair %v not an edge", pr)
		}
	}
	if m.Size() < len(y)-2 {
		t.Fatalf("matching size %d on |Y|=%d with |X|/|Y| >> d²", m.Size(), len(y))
	}
}

func TestMatchingIsIndependentDetectsViolation(t *testing.T) {
	// x0-y0, x1-y1 but also x0-y1: pairs {(x0,y0),(x1,y1)} NOT independent.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2) // x0-y0
	b.AddEdge(1, 3) // x1-y1
	b.AddEdge(0, 3) // x0-y1 violation
	g := b.Build()
	m := &Matching{Pairs: [][2]int32{{0, 2}, {1, 3}}}
	if m.IsIndependent(g) {
		t.Fatal("violation not detected")
	}
	m2 := &Matching{Pairs: [][2]int32{{0, 2}}}
	if !m2.IsIndependent(g) {
		t.Fatal("single pair should be independent")
	}
}

func TestMinimalCoverIsMinimalAndCovers(t *testing.T) {
	const n = 500
	g, x, y := bipartiteHalves(n, 0.08, 7)
	y = y[:60]
	cover := MinimalCover(g, x, y)
	// Which y are coverable at all?
	inX := make(map[int32]bool)
	for _, v := range x {
		inX[v] = true
	}
	coverable := make(map[int32]bool)
	for _, w := range y {
		for _, nb := range g.Neighbors(w) {
			if inX[nb] {
				coverable[w] = true
				break
			}
		}
	}
	// The cover must cover every coverable y.
	covered := make(map[int32]bool)
	for _, v := range cover {
		for _, w := range g.Neighbors(v) {
			covered[w] = true
		}
	}
	for w := range coverable {
		if !covered[w] {
			t.Fatalf("minimal cover misses coverable %d", w)
		}
	}
	// Minimality: every member has a private y-neighbour.
	inY := make(map[int32]bool)
	for _, w := range y {
		inY[w] = true
	}
	coverDeg := make(map[int32]int)
	for _, v := range cover {
		for _, w := range g.Neighbors(v) {
			if inY[w] {
				coverDeg[w]++
			}
		}
	}
	for _, v := range cover {
		private := false
		for _, w := range g.Neighbors(v) {
			if inY[w] && coverDeg[w] == 1 {
				private = true
				break
			}
		}
		if !private {
			t.Fatalf("cover member %d is redundant — cover not minimal", v)
		}
	}
}

func TestProposition2(t *testing.T) {
	// Proposition 2: from a minimal covering of Y we can extract an
	// independent matching of the same size.
	const n = 800
	g, x, y := bipartiteHalves(n, 0.04, 8)
	y = y[:50]
	cover := MinimalCover(g, x, y)
	m := MatchingFromMinimalCover(g, cover, y)
	if m.Size() != len(cover) {
		t.Fatalf("Proposition 2 violated: matching size %d != cover size %d",
			m.Size(), len(cover))
	}
	// The matching from private neighbours is independent w.r.t. the
	// cover set; verify pair-disjointness and edges.
	seen := make(map[int32]bool)
	for _, pr := range m.Pairs {
		if seen[pr[0]] || seen[pr[1]] {
			t.Fatal("matching reuses vertices")
		}
		seen[pr[0]] = true
		seen[pr[1]] = true
		if !g.HasEdge(pr[0], pr[1]) {
			t.Fatal("non-edge in matching")
		}
	}
}

func TestAnalyzeLayersOnTree(t *testing.T) {
	// Perfect binary tree of depth 3: layers 1,2,4,8; no intra-layer
	// edges, no multi-parents, no shared next-layer neighbours.
	b := graph.NewBuilder(15)
	for i := 1; i < 15; i++ {
		b.AddEdge(int32(i), int32((i-1)/2))
	}
	g := b.Build()
	p := AnalyzeLayers(g, 0)
	wantSizes := []int{1, 2, 4, 8}
	if len(p.Layers) != 4 {
		t.Fatalf("layers = %d", len(p.Layers))
	}
	for i, st := range p.Layers {
		if st.Size != wantSizes[i] {
			t.Fatalf("layer %d size %d, want %d", i, st.Size, wantSizes[i])
		}
		if st.IntraEdges != 0 || st.MultiParent != 0 || st.ShareTwoNext != 0 {
			t.Fatalf("tree layer %d has non-tree stats %+v", i, st)
		}
	}
	if p.Reachable != 15 {
		t.Fatalf("reachable = %d", p.Reachable)
	}
	if p.Depth() != 3 {
		t.Fatalf("depth = %d", p.Depth())
	}
	ratios := p.GrowthRatios()
	for _, r := range ratios {
		if r != 2 {
			t.Fatalf("growth ratios %v, want all 2", ratios)
		}
	}
}

func TestAnalyzeLayersDetectsCycles(t *testing.T) {
	// C4 from vertex 0: layers {0}, {1,3}, {2}; vertex 2 has two parents.
	g := gen.Cycle(4)
	p := AnalyzeLayers(g, 0)
	if len(p.Layers) != 3 {
		t.Fatalf("layers = %d", len(p.Layers))
	}
	if p.Layers[2].MultiParent != 1 {
		t.Fatalf("MultiParent = %d, want 1", p.Layers[2].MultiParent)
	}
	// Layer 1 = {1,3} share the common next-layer neighbour 2.
	if p.Layers[1].ShareOneNext != 2 {
		t.Fatalf("ShareOneNext = %d, want 2", p.Layers[1].ShareOneNext)
	}
}

func TestAnalyzeLayersGnpTreeLike(t *testing.T) {
	// Lemma 3 in the small: on G(n,p) with d = 3 ln n, the early layers
	// should be nearly tree-like — few multi-parents relative to size.
	const n = 3000
	d := 3 * math.Log(n)
	rng := xrand.New(9)
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), rng, 20)
	if !ok {
		t.Skip("no connected sample")
	}
	p := AnalyzeLayers(g, 0)
	// Layer 1 has ~d nodes; multi-parent impossible (only one parent
	// exists). Layer 2 has ~d² nodes; expected multi-parents ≈ |T2|·d²/n.
	if len(p.Layers) < 3 {
		t.Fatalf("graph too shallow: %d layers", len(p.Layers))
	}
	l2 := p.Layers[2]
	frac := float64(l2.MultiParent) / float64(l2.Size)
	bound := 10 * d * d / float64(n) // generous constant
	if frac > bound {
		t.Fatalf("layer-2 multi-parent fraction %v exceeds %v", frac, bound)
	}
}

func TestBigLayerCountConstant(t *testing.T) {
	const n = 3000
	d := 20.0
	rng := xrand.New(10)
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), rng, 20)
	if !ok {
		t.Skip("no connected sample")
	}
	p := AnalyzeLayers(g, 0)
	if big := p.BigLayerCount(n, d); big > 6 {
		t.Fatalf("%d layers of size >= n/d³; Lemma 3 says O(1)", big)
	}
}

func TestLastSmallLayer(t *testing.T) {
	p := &LayerProfile{Layers: []LayerStat{
		{Depth: 0, Size: 1}, {Depth: 1, Size: 10}, {Depth: 2, Size: 100}, {Depth: 3, Size: 500},
	}}
	// n/d = 1000/20 = 50: first layer >= 50 is depth 2, so last small is 1.
	if got := p.LastSmallLayer(1000, 20); got != 1 {
		t.Fatalf("LastSmallLayer = %d, want 1", got)
	}
	// Threshold never reached.
	if got := p.LastSmallLayer(1000000, 10); got != 3 {
		t.Fatalf("LastSmallLayer = %d, want 3", got)
	}
}

func TestGrowthRatiosEmptyAndNaN(t *testing.T) {
	p := &LayerProfile{Layers: []LayerStat{{Size: 1}}}
	if got := p.GrowthRatios(); got != nil {
		t.Fatalf("single layer ratios = %v", got)
	}
	p = &LayerProfile{Layers: []LayerStat{{Size: 0}, {Size: 3}}}
	r := p.GrowthRatios()
	if len(r) != 1 || !math.IsNaN(r[0]) {
		t.Fatalf("zero-size layer ratio = %v", r)
	}
}

func BenchmarkRandomizedCover(b *testing.B) {
	const n = 10000
	d := 20.0
	g, x, y := bipartiteHalves(n, gen.PForDegree(n, d), 1)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RandomizedCover(g, x, y, 1/d, rng)
	}
}

func BenchmarkAnalyzeLayers(b *testing.B) {
	const n = 5000
	g := gen.Gnp(n, gen.PForDegree(n, 15), xrand.New(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AnalyzeLayers(g, 0)
	}
}
