package structure

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestGroupLayerOnTree(t *testing.T) {
	// Perfect binary tree: every depth-2 vertex has exactly one parent;
	// groups are the sibling pairs; no cross-group shared neighbours
	// beyond... siblings of different groups share the root? Children of
	// different depth-1 parents: group A = {3,4} (parent 1), group B =
	// {5,6} (parent 2). Neighbours of A (excluding parents): its children
	// {7..10}; of B: {11..14}. Disjoint.
	b := graph.NewBuilder(15)
	for i := 1; i < 15; i++ {
		b.AddEdge(int32(i), int32((i-1)/2))
	}
	g := b.Build()
	p := GroupLayer(g, 0, 2)
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(p.Groups))
	}
	if p.MaxGroupSize != 2 {
		t.Fatalf("max group size %d", p.MaxGroupSize)
	}
	if p.MultiParent != 0 {
		t.Fatalf("multi-parent %d on a tree", p.MultiParent)
	}
	if p.CrossPairsSharingNeighbor != 0 {
		t.Fatalf("tree groups share neighbours: %d", p.CrossPairsSharingNeighbor)
	}
	if p.SinglyParented() != 4 {
		t.Fatalf("singly parented %d", p.SinglyParented())
	}
}

func TestGroupLayerDetectsViolations(t *testing.T) {
	// Two groups at depth 1... need depth >= 1 with distinct parents at
	// depth 0 — impossible from a single source. Use depth 2: source 0,
	// parents 1 and 2, children 3 (of 1) and 4 (of 2), plus a shared
	// neighbour 5 adjacent to both 3 and 4.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 4)
	b.AddEdge(3, 5)
	b.AddEdge(4, 5)
	g := b.Build()
	p := GroupLayer(g, 0, 2)
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %d", len(p.Groups))
	}
	if p.CrossPairsSharingNeighbor != 1 {
		t.Fatalf("violations = %d, want 1", p.CrossPairsSharingNeighbor)
	}
	if p.ViolationRate() != 1 {
		t.Fatalf("violation rate %v", p.ViolationRate())
	}
}

func TestGroupLayerMultiParentExcluded(t *testing.T) {
	// Vertex 3 has parents 1 and 2: excluded from grouping.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.Build()
	p := GroupLayer(g, 0, 2)
	if p.MultiParent != 1 {
		t.Fatalf("multi-parent = %d", p.MultiParent)
	}
	if p.SinglyParented() != 0 {
		t.Fatalf("singly parented = %d", p.SinglyParented())
	}
}

func TestGroupLayerLemma3OnGnp(t *testing.T) {
	// Lemma 3's grouping regime needs the layers involved to be far from
	// saturating the graph: a cross-group pair shares a neighbour with
	// probability ≈ d⁴/n per group pair, so pick d with d⁴ ≪ n. The
	// graph may be below the connectivity threshold; BFS from inside the
	// giant component is all the grouping needs.
	const n = 20000
	const d = 7.0
	rng := xrand.New(1)
	g := gen.Gnp(n, gen.PForDegree(n, d), rng)
	src := graph.LargestComponent(g)[0]
	p := GroupLayer(g, src, 2)
	if p.MaxGroupSize > int(6*d) {
		t.Fatalf("max group size %d exceeds 6d = %.0f", p.MaxGroupSize, 6*d)
	}
	if len(p.Groups) == 0 {
		t.Fatal("no groups at depth 2")
	}
	// Expected violating fraction ≈ d⁴/n ≈ 0.12; assert well below 1/2.
	if rate := p.ViolationRate(); rate > 0.5 {
		t.Fatalf("cross-group violation rate %v, want << 1 in the d⁴ << n regime", rate)
	}
}

func TestGroupLayerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("depth 0 did not panic")
		}
	}()
	GroupLayer(gen.Path(3), 0, 0)
}

func TestViolationRateNoGroups(t *testing.T) {
	p := &GroupProfile{}
	if p.ViolationRate() != 0 {
		t.Fatal("empty profile rate nonzero")
	}
}
