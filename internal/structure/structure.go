// Package structure implements the combinatorial objects and measurements
// of Section 2 of the paper: independent matchings, (minimal and
// independent) coverings between vertex sets (Definition 1, Proposition 2,
// Lemma 4), and BFS-layer statistics quantifying the "almost tree"
// structure of random graphs (Lemma 3).
//
// These are both the building blocks of the centralized broadcasting
// schedule (Theorem 5 finishes with independent covers) and the subject of
// the structural experiments E7/E8.
package structure

import (
	"repro/internal/graph"
	"repro/internal/xrand"
)

// Cover is the result of a covering construction from a candidate set X
// onto a target set Y.
type Cover struct {
	// Transmitters holds the chosen subset of X.
	Transmitters []int32
	// Covered holds the nodes of Y adjacent to exactly one transmitter
	// (received cleanly in radio terms).
	Covered []int32
	// Collided holds the nodes of Y adjacent to two or more transmitters.
	Collided []int32
	// Missed holds the nodes of Y adjacent to no transmitter.
	Missed []int32
}

// CoveredFraction returns |Covered| / |Y|, or 1 for empty Y.
func (c *Cover) CoveredFraction() float64 {
	total := len(c.Covered) + len(c.Collided) + len(c.Missed)
	if total == 0 {
		return 1
	}
	return float64(len(c.Covered)) / float64(total)
}

// RandomizedCover implements the probabilistic construction in the proof of
// Lemma 4: each x ∈ X joins the transmitter set S independently with
// probability q, and a node y ∈ Y is covered iff it has exactly one
// neighbour in S. With q = 1/d the lemma guarantees Ω(|Y|) covered nodes
// w.h.p. when |X| = Θ(n) and |X|/|Y| = Ω(1).
func RandomizedCover(g *graph.Graph, x, y []int32, q float64, rng *xrand.Rand) *Cover {
	s := rng.SubsetEach(nil, x, q)
	return EvaluateCover(g, s, y)
}

// EvaluateCover classifies each node of y by its number of neighbours in
// the transmitter set s.
func EvaluateCover(g *graph.Graph, s, y []int32) *Cover {
	inS := make(map[int32]bool, len(s))
	for _, v := range s {
		inS[v] = true
	}
	c := &Cover{Transmitters: s}
	for _, w := range y {
		count := 0
		for _, nb := range g.Neighbors(w) {
			if inS[nb] {
				count++
				if count >= 2 {
					break
				}
			}
		}
		switch count {
		case 0:
			c.Missed = append(c.Missed, w)
		case 1:
			c.Covered = append(c.Covered, w)
		default:
			c.Collided = append(c.Collided, w)
		}
	}
	return c
}

// GreedyIndependentCover builds a transmitter set X' ⊆ X such that every
// covered node of Y has exactly one neighbour in X', greedily: candidates
// from X are considered in order of decreasing number of yet-uncovered
// exclusive neighbours in Y, and a candidate is accepted only if adding it
// does not give any already-covered node a second neighbour. The result is
// an independent covering of the covered subset of Y (Definition 1).
//
// This deterministic construction is used by the tail of the centralized
// schedule, where only a handful of nodes remain uninformed and the
// randomized construction would waste rounds.
func GreedyIndependentCover(g *graph.Graph, x, y []int32) *Cover {
	inY := make(map[int32]int, len(y)) // y vertex -> #neighbours among accepted transmitters
	for _, w := range y {
		inY[w] = 0
	}
	accepted := make([]int32, 0, len(y))
	acceptedSet := make(map[int32]bool)
	// Repeatedly pick the candidate covering the most currently-uncovered
	// y-nodes without touching any covered y-node. A simple quadratic
	// greedy is fine: the tail sets are small.
	remaining := make(map[int32]bool, len(y))
	for _, w := range y {
		remaining[w] = true
	}
	for len(remaining) > 0 {
		var best int32 = -1
		bestGain := 0
		for _, cand := range x {
			if acceptedSet[cand] {
				continue
			}
			gain := 0
			ok := true
			for _, w := range g.Neighbors(cand) {
				cnt, isY := inY[w]
				if !isY {
					continue
				}
				if cnt >= 1 {
					// cand would give an already-covered y a second
					// neighbour -> collision; reject.
					ok = false
					break
				}
				if remaining[w] {
					gain++
				}
			}
			if ok && gain > bestGain {
				best, bestGain = cand, gain
			}
		}
		if best < 0 {
			break // no candidate can extend the cover independently
		}
		accepted = append(accepted, best)
		acceptedSet[best] = true
		for _, w := range g.Neighbors(best) {
			if _, isY := inY[w]; isY {
				inY[w]++
				delete(remaining, w)
			}
		}
	}
	return EvaluateCover(g, accepted, y)
}

// Matching is a set of vertex-disjoint edges between X and Y.
type Matching struct {
	// Pairs[i] = {x, y} with x ∈ X, y ∈ Y.
	Pairs [][2]int32
}

// Size returns the number of matched pairs.
func (m *Matching) Size() int { return len(m.Pairs) }

// IsIndependent verifies Definition 1: for any two pairs (u,v), (u',v') of
// the matching, (u,v') and (u',v) are NOT edges of g.
func (m *Matching) IsIndependent(g *graph.Graph) bool {
	for i, p := range m.Pairs {
		for j, q := range m.Pairs {
			if i == j {
				continue
			}
			if g.HasEdge(p[0], q[1]) {
				return false
			}
		}
	}
	return true
}

// GreedyIndependentMatching builds an independent matching between X and Y
// greedily: scan y ∈ Y; match y to a neighbour x ∈ X such that x has no
// other neighbour among the currently matched or still-matchable Y-nodes
// used so far, and y has no other neighbour among matched X-nodes. The
// construction mirrors the proof of the second statement of Lemma 4: when
// |X|/|Y| = Ω(d²) almost every y finds a private neighbour.
func GreedyIndependentMatching(g *graph.Graph, x, y []int32) *Matching {
	inX := make(map[int32]bool, len(x))
	for _, v := range x {
		inX[v] = true
	}
	inY := make(map[int32]bool, len(y))
	for _, v := range y {
		inY[v] = true
	}
	matchedX := make(map[int32]bool)
	matchedY := make(map[int32]bool)
	m := &Matching{}
	for _, w := range y {
		// Candidate x: neighbour of w, in X, unmatched, with no edge to
		// any other matched y and no edge to any OTHER y at all sharing…
		// Independence requires: for the new pair (x, w), x has no edge to
		// previously matched y's, and w has no edge to previously matched
		// x's. Future pairs check against (x, w) symmetrically.
		if matchedY[w] {
			continue
		}
		wOK := true
		for _, nb := range g.Neighbors(w) {
			if matchedX[nb] {
				wOK = false
				break
			}
		}
		if !wOK {
			continue
		}
		for _, cand := range g.Neighbors(w) {
			if !inX[cand] || matchedX[cand] {
				continue
			}
			ok := true
			for _, nb := range g.Neighbors(cand) {
				if nb != w && matchedY[nb] {
					ok = false
					break
				}
			}
			if ok {
				matchedX[cand] = true
				matchedY[w] = true
				m.Pairs = append(m.Pairs, [2]int32{cand, w})
				break
			}
		}
	}
	return m
}

// MinimalCover computes a minimal covering X' ⊆ X of the coverable subset
// of Y (Definition 1): first take all of X restricted to vertices with a
// neighbour in Y, then repeatedly discard any x whose removal leaves every
// y still covered. The result is minimal in the set-inclusion sense: no
// proper subset covers the same y's.
func MinimalCover(g *graph.Graph, x, y []int32) []int32 {
	inY := make(map[int32]bool, len(y))
	for _, w := range y {
		inY[w] = true
	}
	// coverCount[w] = number of chosen x adjacent to w.
	coverCount := make(map[int32]int, len(y))
	var chosen []int32
	for _, v := range x {
		useful := false
		for _, w := range g.Neighbors(v) {
			if inY[w] {
				useful = true
				coverCount[w]++
			}
		}
		if useful {
			chosen = append(chosen, v)
		}
	}
	// Discard redundant members (every neighbour in Y covered twice).
	kept := chosen[:0]
	for _, v := range chosen {
		redundant := true
		for _, w := range g.Neighbors(v) {
			if inY[w] && coverCount[w] == 1 {
				redundant = false
				break
			}
		}
		if redundant {
			for _, w := range g.Neighbors(v) {
				if inY[w] {
					coverCount[w]--
				}
			}
		} else {
			kept = append(kept, v)
		}
	}
	return kept
}

// MatchingFromMinimalCover applies Proposition 2 constructively: given a
// minimal covering X' of Y, each x ∈ X' has a "private" neighbour y ∈ Y
// adjacent to no other member of X'; pairing them yields an independent
// matching of size |X'|.
func MatchingFromMinimalCover(g *graph.Graph, cover, y []int32) *Matching {
	inCover := make(map[int32]bool, len(cover))
	for _, v := range cover {
		inCover[v] = true
	}
	inY := make(map[int32]bool, len(y))
	for _, w := range y {
		inY[w] = true
	}
	// coverDeg[w] = number of cover members adjacent to w ∈ Y.
	coverDeg := make(map[int32]int, len(y))
	for _, v := range cover {
		for _, w := range g.Neighbors(v) {
			if inY[w] {
				coverDeg[w]++
			}
		}
	}
	m := &Matching{}
	usedY := make(map[int32]bool)
	for _, v := range cover {
		for _, w := range g.Neighbors(v) {
			if inY[w] && coverDeg[w] == 1 && !usedY[w] {
				m.Pairs = append(m.Pairs, [2]int32{v, w})
				usedY[w] = true
				break
			}
		}
	}
	return m
}
