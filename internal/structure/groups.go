package structure

// The second half of Lemma 3: vertices of a layer T_i(u) that have exactly
// one parent in T_{i-1}(u) "can be grouped in disjoint subsets of size
// O(pn) so that all vertices within one subgroup are connected to the same
// vertex in T_{i-1}(u), and two vertices from different subgroups do not
// have any common neighbors".
//
// Grouping layer members by their unique parent realises exactly that
// decomposition; GroupProfile measures how large the groups get (should
// be O(d)) and how often distinct groups share a common neighbour (should
// be rare).

import (
	"sort"

	"repro/internal/graph"
)

// ParentGroup is one subgroup of a layer: the members of T_i(u) whose
// unique parent in T_{i-1}(u) is Parent.
type ParentGroup struct {
	Parent  int32
	Members []int32
}

// GroupProfile summarises the Lemma 3 grouping of one layer.
type GroupProfile struct {
	Depth int
	// Groups maps each parent to its single-parent children, sorted by
	// parent id.
	Groups []ParentGroup
	// MultiParent counts layer members excluded from the grouping because
	// they have two or more parents.
	MultiParent int
	// MaxGroupSize is the largest group (Lemma 3: O(pn) = O(d)).
	MaxGroupSize int
	// CrossPairsSharingNeighbor counts pairs of distinct groups that
	// violate the "no common neighbors across subgroups" property, where
	// a violating pair has some member of one group sharing any common
	// neighbour with some member of the other (parents excluded).
	CrossPairsSharingNeighbor int
	// GroupPairsChecked is the number of group pairs examined (the
	// violation denominator). For large layers the check samples at most
	// maxPairChecks pairs.
	GroupPairsChecked int
}

const maxPairChecks = 2000

// GroupLayer computes the Lemma 3 grouping of the layer at the given
// depth from src. Depth must be at least 1.
func GroupLayer(g *graph.Graph, src int32, depth int) *GroupProfile {
	if depth < 1 {
		panic("structure: GroupLayer needs depth >= 1")
	}
	dist := graph.Distances(g, src)
	prof := &GroupProfile{Depth: depth}
	groups := make(map[int32][]int32)
	for v := 0; v < g.N(); v++ {
		if dist[v] != int32(depth) {
			continue
		}
		var parent int32 = -1
		parents := 0
		for _, w := range g.Neighbors(int32(v)) {
			if dist[w] == int32(depth-1) {
				parents++
				parent = w
			}
		}
		if parents == 1 {
			groups[parent] = append(groups[parent], int32(v))
		} else if parents > 1 {
			prof.MultiParent++
		}
	}
	parents := make([]int32, 0, len(groups))
	for p := range groups {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	for _, p := range parents {
		members := groups[p]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		prof.Groups = append(prof.Groups, ParentGroup{Parent: p, Members: members})
		if len(members) > prof.MaxGroupSize {
			prof.MaxGroupSize = len(members)
		}
	}
	prof.countCrossViolations(g)
	return prof
}

// countCrossViolations checks pairs of groups for shared neighbours
// (excluding the groups' own parents, which both groups may legitimately
// see through intra-layer edges — the lemma's exclusion).
func (p *GroupProfile) countCrossViolations(g *graph.Graph) {
	k := len(p.Groups)
	if k < 2 {
		return
	}
	// Neighbour sets per group, excluding members and parents.
	neighborSets := make([]map[int32]bool, k)
	parentOf := make(map[int32]bool, k)
	for _, gr := range p.Groups {
		parentOf[gr.Parent] = true
	}
	for i, gr := range p.Groups {
		set := make(map[int32]bool)
		for _, v := range gr.Members {
			for _, w := range g.Neighbors(v) {
				if !parentOf[w] {
					set[w] = true
				}
			}
		}
		neighborSets[i] = set
	}
	checked := 0
	for i := 0; i < k && checked < maxPairChecks; i++ {
		for j := i + 1; j < k && checked < maxPairChecks; j++ {
			checked++
			small, big := neighborSets[i], neighborSets[j]
			if len(big) < len(small) {
				small, big = big, small
			}
			for w := range small {
				if big[w] {
					p.CrossPairsSharingNeighbor++
					break
				}
			}
		}
	}
	p.GroupPairsChecked = checked
}

// SinglyParented returns the number of layer members covered by the
// grouping.
func (p *GroupProfile) SinglyParented() int {
	total := 0
	for _, gr := range p.Groups {
		total += len(gr.Members)
	}
	return total
}

// ViolationRate returns the fraction of checked group pairs sharing a
// neighbour, or 0 when no pairs were checked.
func (p *GroupProfile) ViolationRate() float64 {
	if p.GroupPairsChecked == 0 {
		return 0
	}
	return float64(p.CrossPairsSharingNeighbor) / float64(p.GroupPairsChecked)
}
