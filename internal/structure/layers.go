package structure

// This file measures the BFS-layer structure of graphs, the subject of
// Lemma 3: layers T_i(u) grow geometrically like d^i, intra-layer edges
// are rare, and few vertices of a layer share more than one common
// neighbour — random graphs look locally like trees.

import (
	"math"

	"repro/internal/graph"
)

// LayerStat describes one BFS layer T_i(u).
type LayerStat struct {
	Depth int
	Size  int
	// IntraEdges is the number of edges with both endpoints in the layer.
	IntraEdges int
	// MultiParent is the number of layer members with two or more
	// neighbours in the PREVIOUS layer (violating the tree picture).
	MultiParent int
	// ShareOneNext is the number of layer members that share at least one
	// common neighbour in the NEXT layer with another layer member.
	ShareOneNext int
	// ShareTwoNext is the number of layer members that share at least two
	// common neighbours in the next layer with some other single member
	// ("more than 1 joint neighbour" in Lemma 3's phrasing).
	ShareTwoNext int
}

// LayerProfile is the full per-layer breakdown of a BFS from one source.
type LayerProfile struct {
	Source int32
	Layers []LayerStat
	// Reachable is the number of vertices reachable from the source.
	Reachable int
}

// Depth returns the eccentricity of the source (index of the last layer).
func (p *LayerProfile) Depth() int { return len(p.Layers) - 1 }

// AnalyzeLayers computes the Lemma 3 statistics for the BFS from src.
// The per-layer joint-neighbour counts are quadratic in the layer size in
// the worst case, so analysis of huge dense layers samples is the caller's
// concern; for the graph sizes used in the experiments full counting is
// affordable because layers stay near-tree-like.
func AnalyzeLayers(g *graph.Graph, src int32) *LayerProfile {
	layers := graph.Layers(g, src)
	dist := graph.Distances(g, src)
	p := &LayerProfile{Source: src, Layers: make([]LayerStat, len(layers))}
	for i, layer := range layers {
		st := LayerStat{Depth: i, Size: len(layer)}
		p.Reachable += len(layer)
		st.IntraEdges = graph.CountEdgesWithin(g, layer)
		if i > 0 {
			for _, v := range layer {
				parents := 0
				for _, w := range g.Neighbors(v) {
					if dist[w] == int32(i-1) {
						parents++
					}
				}
				if parents >= 2 {
					st.MultiParent++
				}
			}
		}
		if i+1 < len(layers) {
			next := int32(i + 1)
			one, two := graph.JointNeighborCounts(g, layer, func(w int32) bool {
				return dist[w] == next
			})
			for j := range layer {
				if one[j] > 0 {
					st.ShareOneNext++
				}
				if two[j] > 0 {
					st.ShareTwoNext++
				}
			}
		}
		p.Layers[i] = st
	}
	return p
}

// GrowthRatios returns |T_{i+1}| / |T_i| for consecutive layers. Lemma 3
// predicts ratios ≈ d while layers are small compared to n/d.
func (p *LayerProfile) GrowthRatios() []float64 {
	if len(p.Layers) < 2 {
		return nil
	}
	out := make([]float64, 0, len(p.Layers)-1)
	for i := 0; i+1 < len(p.Layers); i++ {
		if p.Layers[i].Size == 0 {
			out = append(out, math.NaN())
			continue
		}
		out = append(out, float64(p.Layers[i+1].Size)/float64(p.Layers[i].Size))
	}
	return out
}

// BigLayerCount returns the number of layers of size at least n/d³, which
// Lemma 3 bounds by a constant.
func (p *LayerProfile) BigLayerCount(n int, d float64) int {
	if d <= 0 {
		return 0
	}
	threshold := float64(n) / (d * d * d)
	count := 0
	for _, st := range p.Layers {
		if float64(st.Size) >= threshold {
			count++
		}
	}
	return count
}

// LastSmallLayer returns the index of the last layer with fewer than
// n/d nodes before the first big layer, i.e. the boundary D* where the
// centralized algorithm switches from the tree phase to the selective
// phase. It returns len(Layers)-1 if no layer reaches n/d.
func (p *LayerProfile) LastSmallLayer(n int, d float64) int {
	threshold := float64(n) / d
	for i, st := range p.Layers {
		if float64(st.Size) >= threshold {
			if i == 0 {
				return 0
			}
			return i - 1
		}
	}
	return len(p.Layers) - 1
}
