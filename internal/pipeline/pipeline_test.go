package pipeline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func connected(t testing.TB, n int, d float64, seed uint64) *graph.Graph {
	t.Helper()
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(seed), 50)
	if !ok {
		t.Skip("no connected sample")
	}
	return g
}

// alohaLike transmits at rate q after an initial flood.
type alohaLike struct{ q float64 }

func (a alohaLike) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	if round <= 3 {
		return true
	}
	return rng.Bernoulli(a.q)
}

func TestPipelineSingleMessageMatchesBroadcastShape(t *testing.T) {
	const n = 1000
	d := 2 * math.Log(n)
	g := connected(t, n, d, 1)
	rng := xrand.New(2)
	res := Run(g, 0, 1, core.NewDistributedProtocol(n, d), RoundRobinMsg, 100*core.MaxRoundsFor(n), rng)
	if !res.Completed {
		t.Fatalf("k=1 incomplete")
	}
	if float64(res.Rounds) > 30*math.Log(n) {
		t.Fatalf("k=1 took %d rounds", res.Rounds)
	}
	if res.FirstComplete[0] != res.Rounds {
		t.Fatalf("FirstComplete %d != rounds %d", res.FirstComplete[0], res.Rounds)
	}
}

func TestPipelineDeliversAllMessages(t *testing.T) {
	const n = 500
	const k = 8
	d := 2 * math.Log(n)
	g := connected(t, n, d, 3)
	for _, sel := range []Selection{RoundRobinMsg, RandomMsg, RarestFirst} {
		rng := xrand.New(4)
		res := Run(g, 0, k, alohaLike{1 / d}, sel, 200000, rng)
		if !res.Completed {
			t.Fatalf("%v: incomplete", sel)
		}
		if res.Delivered != int64(k)*int64(n-1) {
			t.Fatalf("%v: delivered %d, want %d", sel, res.Delivered, k*(n-1))
		}
		for m, r := range res.FirstComplete {
			if r < 1 || r > res.Rounds {
				t.Fatalf("%v: message %d completion round %d", sel, m, r)
			}
		}
	}
}

func TestPipelineThroughputLinearWithGoodSelection(t *testing.T) {
	// The measured law (experiment E20): with availability-aware
	// selection (rarest-first), T(k) ≈ k·T(1) — linear in k, sequential-
	// equivalent throughput without blowup — while blind selection
	// (round-robin over own messages) pays a multiplicative penalty on
	// top. Assert both facts.
	const n = 500
	d := 2 * math.Log(n)
	g := connected(t, n, d, 5)
	med := func(k int, sel Selection) int {
		var ts []int
		for i := uint64(0); i < 3; i++ {
			ts = append(ts, Time(g, 0, k, alohaLike{1 / d}, sel, 500000, xrand.New(10+i)))
		}
		for i := 1; i < len(ts); i++ {
			for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
		return ts[1]
	}
	t1 := med(1, RarestFirst)
	t8rare := med(8, RarestFirst)
	t8rr := med(8, RoundRobinMsg)
	if t8rare > 3*8*t1 {
		t.Fatalf("rarest-first not ~linear: T(1)=%d T(8)=%d", t1, t8rare)
	}
	if t8rare >= t8rr {
		t.Fatalf("rarest-first (%d) not better than blind round-robin (%d) at k=8", t8rare, t8rr)
	}
}

func TestPipelineOnPath(t *testing.T) {
	// With permanent flooding, interior path nodes never listen after
	// being informed, so only the first message can propagate — the
	// half-duplex constraint in its purest form. A rate below 1 restores
	// listening and delivers all k messages.
	g := gen.Path(6)
	flood := alohaLike{1}
	res := Run(g, 0, 3, flood, RoundRobinMsg, 10000, xrand.New(6))
	if res.Completed {
		t.Fatal("always-transmit should deadlock multi-message relay on a path")
	}
	half := alohaLike{0.5}
	res = Run(g, 0, 3, half, RoundRobinMsg, 10000, xrand.New(6))
	if !res.Completed {
		t.Fatalf("rate-1/2 path pipeline incomplete: %+v", res)
	}
}

func TestPipelineSelectionStrings(t *testing.T) {
	if RoundRobinMsg.String() != "round-robin" || RandomMsg.String() != "random" ||
		RarestFirst.String() != "rarest-first" || Selection(9).String() != "unknown" {
		t.Fatal("selection names wrong")
	}
}

func TestPipelineSingletonGraph(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	rng := xrand.New(7)
	res := Run(g, 0, 5, alohaLike{0.5}, RandomMsg, 10, rng)
	if !res.Completed || res.Rounds != 0 {
		t.Fatalf("singleton: %+v", res)
	}
}

func TestTimeSentinel(t *testing.T) {
	b := graph.NewBuilder(2)
	g := b.Build() // disconnected
	rng := xrand.New(8)
	if got := Time(g, 0, 2, alohaLike{0.5}, RandomMsg, 9, rng); got != 10 {
		t.Fatalf("sentinel = %d", got)
	}
}

func TestRarestFirstNoWorseThanRandom(t *testing.T) {
	const n = 400
	const k = 16
	d := 2 * math.Log(n)
	g := connected(t, n, d, 9)
	med := func(sel Selection) int {
		var ts []int
		for i := uint64(0); i < 3; i++ {
			ts = append(ts, Time(g, 0, k, alohaLike{1 / d}, sel, 500000, xrand.New(20+i)))
		}
		for i := 1; i < len(ts); i++ {
			for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
		return ts[1]
	}
	rare := med(RarestFirst)
	random := med(RandomMsg)
	if rare > 2*random {
		t.Fatalf("genie-aided rarest-first (%d) much worse than random (%d)", rare, random)
	}
}

func BenchmarkPipeline(b *testing.B) {
	const n = 1000
	d := 2 * math.Log(n)
	g := connected(b, n, d, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := xrand.New(uint64(i))
		res := Run(g, 0, 8, alohaLike{1 / d}, RoundRobinMsg, 500000, rng)
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}
