// Package pipeline implements k-BROADCAST (multi-message broadcast) in
// the radio model: the source holds k distinct messages and every node
// must receive all of them. Unlike gossiping (package gossip), a
// transmission carries exactly ONE message — the sender must choose which
// — so the question becomes pipelining throughput: after the first
// message pays the usual Θ(ln n) latency, how much extra time does each
// additional message cost?
//
// This is the natural throughput follow-up to the paper's single-message
// results (its conclusions point at communication primitives beyond
// one-shot broadcast); experiment E20 measures T(k) and fits the
// latency + k·throughput⁻¹ line.
package pipeline

import (
	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// Selection picks which known message a transmitting node sends.
type Selection int

const (
	// RoundRobinMsg cycles deterministically through the node's known
	// messages (send the lowest-index message it has sent least often —
	// implemented as (round + v) mod known for statelessness).
	RoundRobinMsg Selection = iota
	// RandomMsg picks a uniformly random known message.
	RandomMsg
	// RarestFirst is a genie-aided policy: the sender picks the message
	// known by the fewest nodes globally (an upper bound on what local
	// policies can achieve; real systems approximate it with gossip
	// about availability).
	RarestFirst
)

// String names the policy.
func (s Selection) String() string {
	switch s {
	case RoundRobinMsg:
		return "round-robin"
	case RandomMsg:
		return "random"
	case RarestFirst:
		return "rarest-first"
	default:
		return "unknown"
	}
}

// Protocol decides transmission like radio.Protocol; the engine handles
// message selection separately via the Selection policy.
type Protocol interface {
	Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool
}

// Result reports a k-broadcast run.
type Result struct {
	Completed bool
	Rounds    int
	// Delivered counts (node, message) pairs delivered.
	Delivered int64
	// FirstComplete[m] is the round by which message m reached every
	// node (-1 if it did not).
	FirstComplete []int
}

// Run simulates k-broadcast from src on g: src initially knows messages
// 0..k-1, everyone else none. A node is "informed" (and allowed to
// transmit) once it knows at least one message. Each transmission carries
// one message chosen by sel. Completion: every node knows every message.
func Run(g *graph.Graph, src int32, k int, p Protocol, sel Selection, maxRounds int, rng *xrand.Rand) Result {
	n := g.N()
	know := make([]*bitset.Set, n)
	for v := range know {
		know[v] = bitset.New(k)
	}
	know[src].Fill()
	counts := make([]int, n) // messages known per node
	counts[src] = k
	informedAt := make([]int32, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	informedAt[src] = 0
	// completeCount[m] = nodes knowing message m.
	completeCount := make([]int, k)
	for m := range completeCount {
		completeCount[m] = 1
	}
	res := Result{FirstComplete: make([]int, k)}
	for m := range res.FirstComplete {
		res.FirstComplete[m] = -1
		if n == 1 {
			res.FirstComplete[m] = 0
		}
	}
	done := 0 // messages fully delivered
	if n == 1 {
		done = k
	}

	// Per-round scratch.
	hits := make([]int32, n)
	from := make([]int32, n)
	var touched []int32
	var tx []int32
	carrying := make([]int32, n)    // message carried by transmitter v this round
	transmitting := make([]bool, n) // tx membership, cleared after each round

	globalKnown := make([]int, k)
	copy(globalKnown, completeCount)

	round := 0
	for round < maxRounds && done < k {
		round++
		tx = tx[:0]
		for v := 0; v < n; v++ {
			if counts[v] == 0 {
				continue
			}
			if p.Transmit(int32(v), round, informedAt[v], rng) {
				tx = append(tx, int32(v))
			}
		}
		// Choose each transmitter's message.
		for _, v := range tx {
			carrying[v] = chooseMessage(know[v], counts[v], k, int(v), round, sel, globalKnown, rng)
		}
		for _, v := range tx {
			transmitting[v] = true
		}
		for _, v := range tx {
			for _, w := range g.Neighbors(v) {
				if hits[w] == 0 {
					touched = append(touched, w)
				}
				hits[w]++
				from[w] = v
			}
		}
		for _, w := range touched {
			if hits[w] == 1 && !transmitting[w] {
				m := carrying[from[w]]
				if !know[w].Test(int(m)) {
					know[w].Set(int(m))
					counts[w]++
					res.Delivered++
					if counts[w] == 1 {
						informedAt[w] = int32(round)
					}
					completeCount[m]++
					globalKnown[m]++
					if completeCount[m] == n {
						res.FirstComplete[m] = round
						done++
					}
				}
			}
			hits[w] = 0
		}
		touched = touched[:0]
		for _, v := range tx {
			transmitting[v] = false
		}
	}
	res.Completed = done == k
	res.Rounds = round
	return res
}

// chooseMessage implements the selection policies over the sender's known
// set.
func chooseMessage(known *bitset.Set, count, k, v, round int, sel Selection, globalKnown []int, rng *xrand.Rand) int32 {
	switch sel {
	case RandomMsg:
		idx := rng.Intn(count)
		return nthKnown(known, idx)
	case RarestFirst:
		best, bestCount := -1, 1<<30
		known.ForEach(func(m int) bool {
			if globalKnown[m] < bestCount {
				best, bestCount = m, globalKnown[m]
			}
			return true
		})
		return int32(best)
	default: // RoundRobinMsg
		idx := (round + v) % count
		return nthKnown(known, idx)
	}
}

// nthKnown returns the index of the (idx+1)-th set bit.
func nthKnown(known *bitset.Set, idx int) int32 {
	var out int32 = -1
	i := 0
	known.ForEach(func(m int) bool {
		if i == idx {
			out = int32(m)
			return false
		}
		i++
		return true
	})
	return out
}

// Time runs the pipeline and returns the completion round or the sentinel
// maxRounds+1.
func Time(g *graph.Graph, src int32, k int, p Protocol, sel Selection, maxRounds int, rng *xrand.Rand) int {
	res := Run(g, src, k, p, sel, maxRounds, rng)
	if !res.Completed {
		return maxRounds + 1
	}
	return res.Rounds
}
