package election

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func meanRounds(t *testing.T, trials int, run func(rng *xrand.Rand) int) float64 {
	t.Helper()
	var xs []float64
	rng := xrand.New(7)
	for i := 0; i < trials; i++ {
		r := run(rng.Derive(uint64(i) + 1))
		xs = append(xs, float64(r))
	}
	return stats.Mean(xs)
}

func TestUniformExpectedE(t *testing.T) {
	// With n known exactly, success probability per round is ~1/e, so the
	// mean election time is ~e.
	for _, n := range []int{10, 100, 10000} {
		mean := meanRounds(t, 2000, func(rng *xrand.Rand) int {
			return Uniform(n, 1000, rng)
		})
		if math.Abs(mean-math.E) > 0.35 {
			t.Fatalf("n=%d: mean rounds %v, want ~e", n, mean)
		}
	}
}

func TestUniformSingleStation(t *testing.T) {
	if got := Uniform(1, 10, xrand.New(1)); got != 1 {
		t.Fatalf("single station elects in %d", got)
	}
	if got := Uniform(0, 10, xrand.New(1)); got != 11 {
		t.Fatalf("zero stations: %d", got)
	}
}

func TestSweepScalesLogarithmically(t *testing.T) {
	// With only an upper bound, the sweep pays ~log(nBound) per cycle.
	mean256 := meanRounds(t, 800, func(rng *xrand.Rand) int {
		return Sweep(100, 256, 10000, rng)
	})
	mean64k := meanRounds(t, 800, func(rng *xrand.Rand) int {
		return Sweep(100, 1<<16, 10000, rng)
	})
	if mean64k <= mean256 {
		t.Fatalf("larger bound should cost more: %v vs %v", mean256, mean64k)
	}
	// Ratio should be near log(64k)/log(256) = 2, not 256x.
	if mean64k > 6*mean256 {
		t.Fatalf("sweep grows too fast: %v -> %v", mean256, mean64k)
	}
}

func TestSweepRejectsBadBound(t *testing.T) {
	if got := Sweep(100, 50, 100, xrand.New(2)); got != 101 {
		t.Fatalf("bound below n accepted: %d", got)
	}
}

func TestWillardBeatsSweep(t *testing.T) {
	// Collision detection buys the gap: Willard's binary search needs
	// far fewer rounds than the oblivious sweep at large nBound.
	const n = 1000
	const bound = 1 << 20
	sweep := meanRounds(t, 500, func(rng *xrand.Rand) int {
		return Sweep(n, bound, 100000, rng)
	})
	willard := meanRounds(t, 500, func(rng *xrand.Rand) int {
		return Willard(n, bound, 100000, rng)
	})
	if willard >= sweep {
		t.Fatalf("Willard (%v) not faster than sweep (%v)", willard, sweep)
	}
}

func TestWillardScalesDoublyLogarithmically(t *testing.T) {
	// Mean rounds should barely move as nBound explodes.
	m16 := meanRounds(t, 800, func(rng *xrand.Rand) int {
		return Willard(100, 1<<16, 100000, rng)
	})
	m30 := meanRounds(t, 800, func(rng *xrand.Rand) int {
		return Willard(100, 1<<30, 100000, rng)
	})
	if m30 > 2*m16+2 {
		t.Fatalf("Willard grows too fast with the bound: %v -> %v", m16, m30)
	}
}

func TestWillardAlwaysCompletes(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10000)
		if got := Willard(n, 1<<20, 100000, rng); got > 100000 {
			t.Fatalf("Willard failed for n=%d", n)
		}
	}
}

func TestRoundOutcome(t *testing.T) {
	rng := xrand.New(4)
	if roundOutcome(10, 0, rng) != Silence {
		t.Fatal("p=0 not silent")
	}
	if roundOutcome(5, 1, rng) != Collision {
		t.Fatal("all-transmit not collision")
	}
	if roundOutcome(1, 1, rng) != Single {
		t.Fatal("lone station not single")
	}
}

func BenchmarkWillard(b *testing.B) {
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		Willard(1000, 1<<20, 100000, rng)
	}
}

func TestElectionFailurePaths(t *testing.T) {
	rng := xrand.New(9)
	// Exhausted budgets return the sentinel.
	if got := Uniform(1000, 0, rng); got != 1 {
		t.Fatalf("Uniform budget 0 = %d, want sentinel 1", got)
	}
	// A genuinely unwinnable configuration: maxRounds 0.
	if got := Sweep(100, 256, 0, rng); got != 1 {
		t.Fatalf("Sweep budget 0 = %d, want sentinel 1", got)
	}
	if got := Willard(100, 256, 0, rng); got != 1 {
		t.Fatalf("Willard budget 0 = %d, want sentinel 1", got)
	}
	// Degenerate station counts.
	if got := Sweep(0, 10, 5, rng); got != 6 {
		t.Fatalf("Sweep n=0 = %d", got)
	}
	if got := Willard(0, 10, 5, rng); got != 6 {
		t.Fatalf("Willard n=0 = %d", got)
	}
	if got := Willard(5, 4, 5, rng); got != 6 {
		t.Fatalf("Willard bound<n = %d", got)
	}
	if got := Sweep(1, 10, 5, rng); got != 1 {
		t.Fatalf("Sweep n=1 = %d", got)
	}
	if got := Willard(1, 10, 5, rng); got != 1 {
		t.Fatalf("Willard n=1 = %d", got)
	}
}

func TestWillardRestartPath(t *testing.T) {
	// Force interval collapse: tiny bound, moderate n. With nBound = 2
	// the search interval is [0,1]; collapse and restart must still
	// terminate with a success eventually.
	rng := xrand.New(10)
	for trial := 0; trial < 50; trial++ {
		if got := Willard(2, 2, 10000, rng); got > 10000 {
			t.Fatal("Willard with tiny bound failed")
		}
	}
}
