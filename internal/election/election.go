// Package election implements leader election in single-hop radio
// networks — the other foundational primitive of the radio-network
// literature the paper's broadcasting results sit beside. n stations
// share one channel; in each round every station chooses to transmit or
// listen, and a round ELECTS a leader iff exactly one station transmits.
// Stations know n (or an estimate) but have no identifiers.
//
// Two classical protocols:
//
//   - Uniform (no collision detection): every station transmits with
//     probability 1/n each round. Success probability per round is
//     n·(1/n)·(1−1/n)^{n−1} → 1/e, so the expected election time is
//     e ≈ 2.72 rounds when n is known exactly; with only an upper bound
//     N ≥ n, sweeping rates 1/2, 1/4, …, 1/N costs Θ(log N) rounds.
//   - Willard (with collision detection): binary-search the activity
//     scale. Stations transmit with probability 2^{−mid}; a collision
//     means the rate is too high, silence means too low, a single
//     transmission elects. With feedback the search needs only
//     O(log log N) expected rounds.
//
// The election engine is exact (it samples the number of transmitters
// per round) rather than graph-based: a single-hop network is a clique,
// so only the count matters. Experiment E21 measures both protocols'
// scaling.
package election

import (
	"math"

	"repro/internal/xrand"
)

// Outcome is the channel feedback of one election round.
type Outcome uint8

const (
	// Silence: no station transmitted.
	Silence Outcome = iota
	// Single: exactly one station transmitted — it becomes the leader.
	Single
	// Collision: two or more stations transmitted.
	Collision
)

// roundOutcome samples one round in which each of n stations transmits
// independently with probability p.
func roundOutcome(n int, p float64, rng *xrand.Rand) Outcome {
	k := rng.Binomial(n, p)
	switch k {
	case 0:
		return Silence
	case 1:
		return Single
	default:
		return Collision
	}
}

// Uniform elects a leader among n stations that all know n exactly, by
// transmitting with probability 1/n per round (no collision detection
// needed — stations simply retry until the round succeeds, detected by
// the leader's subsequent acknowledgement, which we do not charge).
// Returns the number of rounds used, or maxRounds+1 on failure.
func Uniform(n, maxRounds int, rng *xrand.Rand) int {
	if n <= 0 {
		return maxRounds + 1
	}
	if n == 1 {
		return 1
	}
	p := 1 / float64(n)
	for r := 1; r <= maxRounds; r++ {
		if roundOutcome(n, p, rng) == Single {
			return r
		}
	}
	return maxRounds + 1
}

// Sweep elects a leader when stations know only an upper bound nBound on
// n: rates 1/2, 1/4, …, 1/nBound are swept cyclically. Without collision
// detection a station cannot tell silence from collision, so the sweep
// simply retries all scales — Θ(log nBound) rounds per cycle, O(log n)
// expected total.
func Sweep(n, nBound, maxRounds int, rng *xrand.Rand) int {
	if n <= 0 || nBound < n {
		return maxRounds + 1
	}
	if n == 1 {
		return 1
	}
	scales := int(math.Ceil(math.Log2(float64(nBound)))) + 1
	for r := 1; r <= maxRounds; r++ {
		exp := uint((r - 1) % scales)
		p := math.Pow(2, -float64(exp+1))
		if roundOutcome(n, p, rng) == Single {
			return r
		}
	}
	return maxRounds + 1
}

// Willard elects a leader with collision detection, knowing only the
// upper bound nBound: binary search over the scale exponent in
// [0, log₂ nBound]. Collision ⇒ too many transmitters (raise the
// exponent); silence ⇒ too few (lower it); single ⇒ done. When the
// search interval collapses without success it restarts (randomness can
// mislead single rounds). Expected O(log log nBound) rounds.
func Willard(n, nBound, maxRounds int, rng *xrand.Rand) int {
	if n <= 0 || nBound < n {
		return maxRounds + 1
	}
	if n == 1 {
		return 1
	}
	maxExp := math.Ceil(math.Log2(float64(nBound)))
	lo, hi := 0.0, maxExp
	for r := 1; r <= maxRounds; r++ {
		mid := math.Floor((lo + hi) / 2)
		p := math.Pow(2, -mid)
		if p > 1 {
			p = 1
		}
		switch roundOutcome(n, p, rng) {
		case Single:
			return r
		case Collision:
			lo = mid + 1 // too much activity: damp harder
		case Silence:
			hi = mid - 1 // too little: transmit more
		}
		if lo > hi {
			lo, hi = 0, maxExp // restart the search
		}
	}
	return maxRounds + 1
}
