package lower

// Randomized local search over schedules: given any valid broadcast
// schedule, TightenSchedule tries to shorten it by deleting rounds,
// merging adjacent rounds and re-randomising transmit sets, accepting any
// mutation that keeps the broadcast complete. Used as a second, search-
// based adversary for Theorem 6: if even local search cannot push a
// schedule below c·(ln n/ln d + ln d), the lower-bound shape has another
// independent witness.

import (
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// TightenSchedule performs up to iterations mutation attempts on a COPY of
// the input schedule and returns the best complete schedule found together
// with its executed round count. The input schedule must itself complete
// the broadcast (validated first; if it does not, TightenSchedule returns
// it unchanged with completed=false).
func TightenSchedule(g *graph.Graph, src int32, s *radio.Schedule, iterations int, rng *xrand.Rand) (*radio.Schedule, int, bool) {
	best := cloneSchedule(s)
	bestRounds, ok := executedRounds(g, src, best)
	if !ok {
		return best, bestRounds, false
	}
	// Trim rounds the execution never reached (completion before the end).
	best.Sets = best.Sets[:bestRounds]

	for iter := 0; iter < iterations && len(best.Sets) > 1; iter++ {
		cand := cloneSchedule(best)
		switch rng.Intn(3) {
		case 0: // delete a random round
			i := rng.Intn(len(cand.Sets))
			cand.Sets = append(cand.Sets[:i], cand.Sets[i+1:]...)
		case 1: // merge a random adjacent pair
			if len(cand.Sets) < 2 {
				continue
			}
			i := rng.Intn(len(cand.Sets) - 1)
			merged := append(append([]int32{}, cand.Sets[i]...), cand.Sets[i+1]...)
			cand.Sets[i] = merged
			cand.Sets = append(cand.Sets[:i+1], cand.Sets[i+2:]...)
		case 2: // thin a random round to a random subset
			i := rng.Intn(len(cand.Sets))
			if len(cand.Sets[i]) < 2 {
				continue
			}
			cand.Sets[i] = rng.SubsetEach(nil, cand.Sets[i], 0.7)
			if len(cand.Sets[i]) == 0 {
				cand.Sets = append(cand.Sets[:i], cand.Sets[i+1:]...)
			}
		}
		if rounds, ok := executedRounds(g, src, cand); ok && rounds <= bestRounds {
			cand.Sets = cand.Sets[:rounds]
			best = cand
			bestRounds = rounds
		}
	}
	return best, bestRounds, true
}

func cloneSchedule(s *radio.Schedule) *radio.Schedule {
	c := &radio.Schedule{Sets: make([][]int32, len(s.Sets))}
	for i, set := range s.Sets {
		c.Sets[i] = append([]int32{}, set...)
	}
	return c
}

// executedRounds replays the schedule under FilterUninformed (mutations
// may move a transmitter before it is informed; the filter keeps the
// semantics physical) and reports the completion round.
func executedRounds(g *graph.Graph, src int32, s *radio.Schedule) (int, bool) {
	res, err := radio.ExecuteSchedule(g, src, s, radio.FilterUninformed)
	if err != nil {
		return 0, false
	}
	return res.Rounds, res.Completed
}
