package lower

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

func TestOptimalOnPath(t *testing.T) {
	// On a path, information moves one hop per round: OPT = n-1.
	for _, n := range []int{2, 3, 5, 8} {
		g := gen.Path(n)
		opt, err := OptimalBroadcastTime(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if opt != n-1 {
			t.Fatalf("P%d: OPT = %d, want %d", n, opt, n-1)
		}
	}
}

func TestOptimalOnStarAndComplete(t *testing.T) {
	g := gen.Star(8)
	opt, err := OptimalBroadcastTime(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Fatalf("star from centre: OPT = %d, want 1", opt)
	}
	// From a leaf: leaf -> centre -> everyone = 2 rounds.
	opt, err = OptimalBroadcastTime(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 2 {
		t.Fatalf("star from leaf: OPT = %d, want 2", opt)
	}
	// K_n: one round.
	opt, err = OptimalBroadcastTime(gen.Complete(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Fatalf("K10: OPT = %d, want 1", opt)
	}
}

func TestOptimalOnCycle(t *testing.T) {
	// On C_n information spreads both ways but only one neighbour can
	// deliver per round per side; OPT(C6 from 0) = 3 (the eccentricity).
	g := gen.Cycle(6)
	opt, err := OptimalBroadcastTime(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 3 {
		t.Fatalf("C6: OPT = %d, want 3", opt)
	}
}

func TestOptimalCollisionGadget(t *testing.T) {
	// 0-1, 0-2, 1-3, 2-3: round 1 informs {1,2}; transmitting both
	// collides at 3, so one transmits alone in round 2. OPT = 2.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.Build()
	opt, err := OptimalBroadcastTime(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 2 {
		t.Fatalf("gadget: OPT = %d, want 2", opt)
	}
}

func TestOptimalAtLeastEccentricity(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(7) // 6..12
		g, _, ok := gen.ConnectedGnp(n, 0.4, rng, 50)
		if !ok {
			continue
		}
		opt, err := OptimalBroadcastTime(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ecc := graph.Eccentricity(g, 0); opt < ecc {
			t.Fatalf("OPT %d below eccentricity %d", opt, ecc)
		}
	}
}

func TestGreedyWithinOneOfOptimal(t *testing.T) {
	// The claim E14 rests on: the greedy adversary is near-optimal on
	// tiny random graphs.
	rng := xrand.New(2)
	checked := 0
	for trial := 0; trial < 20 && checked < 12; trial++ {
		n := 8 + rng.Intn(5) // 8..12
		g, _, ok := gen.ConnectedGnp(n, 0.35, rng, 50)
		if !ok {
			continue
		}
		checked++
		opt, err := OptimalBroadcastTime(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := GreedyAdaptiveSchedule(g, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("greedy incomplete on tiny graph")
		}
		if res.Rounds < opt {
			t.Fatalf("greedy %d beat the exact optimum %d — impossible", res.Rounds, opt)
		}
		if res.Rounds > opt+2 {
			t.Fatalf("greedy %d rounds vs optimal %d (gap > 2)", res.Rounds, opt)
		}
	}
	if checked < 5 {
		t.Fatal("too few connected samples checked")
	}
}

func TestOptimalMatchesReplay(t *testing.T) {
	// OPT must be achievable: we don't extract the schedule, but the
	// greedy schedule's replayed length upper-bounds OPT and the
	// eccentricity lower-bounds it; check sandwich consistency.
	rng := xrand.New(3)
	g, _, ok := gen.ConnectedGnp(10, 0.5, rng, 50)
	if !ok {
		t.Skip("no sample")
	}
	opt, err := OptimalBroadcastTime(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sched, res, err := GreedyAdaptiveSchedule(g, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if opt > res.Rounds || opt > replay.Rounds || opt < graph.Eccentricity(g, 0) {
		t.Fatalf("sandwich violated: ecc=%d opt=%d greedy=%d", graph.Eccentricity(g, 0), opt, res.Rounds)
	}
}

func TestOptimalErrors(t *testing.T) {
	if _, err := OptimalBroadcastTime(gen.Path(MaxOptimalN+1), 0); err == nil {
		t.Fatal("oversized graph accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	if _, err := OptimalBroadcastTime(b.Build(), 0); err == nil {
		t.Fatal("disconnected graph accepted")
	}
	if _, err := OptimalBroadcastTime(graph.NewBuilder(0).Build(), 0); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestOptimalSingleton(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	opt, err := OptimalBroadcastTime(g, 0)
	if err != nil || opt != 0 {
		t.Fatalf("singleton: %d %v", opt, err)
	}
}

func BenchmarkOptimal12(b *testing.B) {
	rng := xrand.New(1)
	g, _, ok := gen.ConnectedGnp(12, 0.4, rng, 50)
	if !ok {
		b.Skip("no sample")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalBroadcastTime(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}
