package lower

// Exact optimal broadcast schedules for tiny graphs, by breadth-first
// search over information states. The state is the bitmask of informed
// vertices; a transition transmits any subset S of the informed set, and
// the radio semantics inform exactly the listeners with exactly one
// neighbour in S. The minimum number of rounds to reach the full mask is
// the true optimum OPT(g, src) over ALL schedules.
//
// The search touches at most 3^n (state, subset) pairs, so it is limited
// to n <= MaxOptimalN vertices; experiment E14 uses it to certify that
// the greedy adversary of GreedyAdaptiveSchedule is within a small
// additive constant of optimal, which in turn grounds the Theorem 6
// evidence of experiment E3.

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// MaxOptimalN bounds the exhaustive search. 3^16·16 ≈ 7·10^8 basic
// operations is the practical single-core ceiling.
const MaxOptimalN = 16

// OptimalBroadcastTime returns the exact minimum number of rounds needed
// to broadcast from src on g under the radio model, over all centralized
// schedules. It returns an error if g has more than MaxOptimalN vertices
// or src cannot reach every vertex.
func OptimalBroadcastTime(g *graph.Graph, src int32) (int, error) {
	n := g.N()
	if n > MaxOptimalN {
		return 0, fmt.Errorf("lower: OptimalBroadcastTime limited to n <= %d, got %d", MaxOptimalN, n)
	}
	if n == 0 {
		return 0, fmt.Errorf("lower: empty graph")
	}
	dist := graph.Distances(g, src)
	for v, dv := range dist {
		if dv == graph.Unreachable {
			return 0, fmt.Errorf("lower: vertex %d unreachable from %d", v, src)
		}
	}
	nbr := make([]uint32, n)
	for v := 0; v < n; v++ {
		var m uint32
		for _, w := range g.Neighbors(int32(v)) {
			m |= 1 << uint(w)
		}
		nbr[v] = m
	}
	full := uint32(1)<<uint(n) - 1
	start := uint32(1) << uint(src)
	if start == full {
		return 0, nil
	}

	depth := make([]int8, full+1)
	for i := range depth {
		depth[i] = -1
	}
	depth[start] = 0
	queue := []uint32{start}
	for head := 0; head < len(queue); head++ {
		state := queue[head]
		d := depth[state]
		// Enumerate non-empty subsets S of the informed set.
		for s := state; s != 0; s = (s - 1) & state {
			// ones: nodes with >= 1 transmitting neighbour;
			// twos: nodes with >= 2.
			var ones, twos uint32
			rem := s
			for rem != 0 {
				v := bits.TrailingZeros32(rem)
				rem &= rem - 1
				twos |= ones & nbr[v]
				ones |= nbr[v]
			}
			newly := (ones &^ twos) &^ state &^ s
			if newly == 0 {
				continue
			}
			next := state | newly
			if depth[next] < 0 {
				depth[next] = d + 1
				if next == full {
					return int(d + 1), nil
				}
				queue = append(queue, next)
			}
		}
	}
	return 0, fmt.Errorf("lower: full state unreachable (internal error)")
}
