package lower

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/radio"
	"repro/internal/xrand"
)

func TestTightenRoundRobinCollapses(t *testing.T) {
	const n = 300
	d := 12.0
	g := connected(t, n, d, 1)
	rr := core.RoundRobinSchedule(g, 0)
	tightened, rounds, ok := TightenSchedule(g, 0, rr, 400, xrand.New(2))
	if !ok {
		t.Fatal("round robin reported invalid")
	}
	if rounds >= rr.Len() {
		t.Fatalf("no shortening: %d -> %d", rr.Len(), rounds)
	}
	// Validity: the returned schedule completes under the filter policy.
	res, err := radio.ExecuteSchedule(g, 0, tightened, radio.FilterUninformed)
	if err != nil || !res.Completed {
		t.Fatalf("tightened schedule invalid: %v informed=%d", err, res.Informed)
	}
	if res.Rounds != rounds {
		t.Fatalf("reported rounds %d != replay %d", rounds, res.Rounds)
	}
}

func TestTightenRespectsEccentricity(t *testing.T) {
	const n = 500
	d := 2 * math.Log(n)
	g := connected(t, n, d, 3)
	sched, _, err := core.BuildCentralizedSchedule(g, 0, d, core.DefaultCentralizedConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	_, rounds, ok := TightenSchedule(g, 0, sched, 600, xrand.New(4))
	if !ok {
		t.Fatal("input schedule invalid")
	}
	if rounds < Eccentricity(g, 0) {
		t.Fatalf("tightened below eccentricity: %d < %d", rounds, Eccentricity(g, 0))
	}
	if rounds > sched.Len() {
		t.Fatalf("tightening lengthened: %d -> %d", sched.Len(), rounds)
	}
}

func TestTightenCannotBeatTheBoundShape(t *testing.T) {
	// The search-based adversary corroborates Theorem 6: starting from
	// the paper's schedule, local search cannot push far below the bound.
	const n = 1000
	d := 2 * math.Log(n)
	g := connected(t, n, d, 5)
	sched, _, err := core.BuildCentralizedSchedule(g, 0, d, core.DefaultCentralizedConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	_, rounds, ok := TightenSchedule(g, 0, sched, 500, xrand.New(6))
	if !ok {
		t.Fatal("input invalid")
	}
	if float64(rounds) < 0.3*core.CentralizedBound(n, d) {
		t.Fatalf("local search reached %d rounds, below 0.3x bound %.1f — investigate",
			rounds, core.CentralizedBound(n, d))
	}
}

func TestTightenIncompleteInput(t *testing.T) {
	g := gen.Path(10)
	short := &radio.Schedule{Sets: [][]int32{{0}}}
	_, _, ok := TightenSchedule(g, 0, short, 50, xrand.New(7))
	if ok {
		t.Fatal("incomplete input reported valid")
	}
}

func TestTightenDoesNotMutateInput(t *testing.T) {
	g := gen.Path(5)
	s := &radio.Schedule{Sets: [][]int32{{0}, {1}, {2}, {3}}}
	before := s.Len()
	_, _, _ = TightenSchedule(g, 0, s, 100, xrand.New(8))
	if s.Len() != before {
		t.Fatal("input schedule mutated")
	}
	for i, set := range s.Sets {
		if len(set) != 1 || set[0] != int32(i) {
			t.Fatal("input schedule contents mutated")
		}
	}
}
