// Package lower provides the empirical lower-bound harnesses for Theorems
// 6 and 8 of the paper.
//
// Asymptotic lower bounds cannot be "run", so each is replaced by the
// strongest finite-size evidence available:
//
//   - Eccentricity: a true lower bound — no broadcast finishes before the
//     source's eccentricity, giving the ln n / ln d term of Theorem 6.
//   - GreedyAdaptiveSchedule: an aggressive full-knowledge adversary that
//     each round picks a transmit set greedily maximising the number of
//     newly informed nodes. It is at least as fast as any schedule a
//     simple constructive argument produces; if even this schedule needs
//     Ω(ln n/ln d + ln d) rounds and the ratio to the bound is stable in
//     n, Theorem 6's shape is corroborated (experiment E3).
//   - SurvivorProbe: a direct Monte-Carlo of the counting core of the
//     Theorem 6 proof for p = 1/2 — random sequences of disjoint
//     transmit sets of size 1 or 2 leave a "survivor" (a node that hears
//     only silence or collisions) unless the sequence length reaches
//     Θ(log n).
//   - SequenceProtocol + OptimizeSequence: Theorem 8 restricts protocols
//     to decisions computable from (n, p, t); such a protocol is exactly a
//     transmit-probability sequence q_t shared by all informed nodes. The
//     optimizer searches a broad family of sequences and reports the best
//     completion time found, which should still be Ω(ln n) (experiment
//     E6).
package lower

import (
	"math"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// Eccentricity returns the true topological lower bound on broadcast time
// from src: the BFS eccentricity of the source.
func Eccentricity(g *graph.Graph, src int32) int {
	return graph.Eccentricity(g, src)
}

// GreedyAdaptiveSchedule builds a broadcast schedule with an adaptive
// greedy adversary: each round it starts from the empty transmit set and
// repeatedly adds the informed node with the highest positive marginal
// gain in newly informed nodes (accounting for the collisions each
// addition introduces) until no addition helps. The returned value is the
// number of rounds to full broadcast, along with the schedule itself.
//
// The greedy gain computation makes this O(rounds · informed · deg²) in
// the worst case; intended for the small-to-medium instances of E3.
func GreedyAdaptiveSchedule(g *graph.Graph, src int32, maxRounds int) (*radio.Schedule, radio.Result, error) {
	e := radio.NewEngine(g, src, radio.StrictInformed)
	sched := &radio.Schedule{}
	n := g.N()
	hits := make([]int32, n) // current transmit set's neighbour counts
	var touched []int32
	var frontier []int32 // reused buffer for the full-frontier fallback
	for !e.Done() && e.RoundCount() < maxRounds {
		// Build this round's set greedily.
		var set []int32
		inSet := make(map[int32]bool)
		for {
			var best int32 = -1
			bestGain := 0
			for v := 0; v < n; v++ {
				vv := int32(v)
				if !e.Informed(vv) || inSet[vv] {
					continue
				}
				gain := 0
				for _, w := range g.Neighbors(vv) {
					if e.Informed(w) || inSet[w] {
						continue // already informed, or will transmit (cannot listen)
					}
					switch hits[w] {
					case 0:
						gain++
					case 1:
						gain--
					}
				}
				// Losing a currently-clean receiver because it joins the
				// transmit set is impossible here since we only consider
				// informed candidates and receivers are uninformed.
				if gain > bestGain {
					best, bestGain = vv, gain
				}
			}
			if best < 0 {
				break
			}
			inSet[best] = true
			set = append(set, best)
			for _, w := range g.Neighbors(best) {
				if hits[w] == 0 {
					touched = append(touched, w)
				}
				hits[w]++
			}
		}
		// Reset scratch.
		for _, w := range touched {
			hits[w] = 0
		}
		touched = touched[:0]
		if len(set) == 0 {
			// No positive-gain transmitter: every uninformed node adjacent
			// to the informed set has >= 2 informed neighbours whichever
			// single node we pick... transmit the single best anyway to
			// guarantee progress? A singleton always has non-negative
			// gain; gain 0 means its uninformed neighbours are each
			// adjacent to it alone yet gain computed 0 — impossible unless
			// no uninformed neighbours exist anywhere. Pick any informed
			// node with an uninformed neighbour two hops away cannot help
			// this round; transmit the full frontier to make the engine
			// advance the round.
			frontier = e.AppendInformed(frontier[:0])
			set = frontier
		}
		owned := make([]int32, len(set))
		copy(owned, set)
		sched.Sets = append(sched.Sets, owned)
		if _, err := e.Round(owned); err != nil {
			return nil, radio.Result{}, err
		}
	}
	res := radio.Result{
		Completed:  e.Done(),
		Rounds:     e.RoundCount(),
		Informed:   e.InformedCount(),
		N:          n,
		InformedAt: e.InformedTimes(),
		Stats:      e.Stats(),
	}
	return sched, res, nil
}

// SurvivorProbe Monte-Carlos the counting core of the Theorem 6 proof at
// p = 1/2. For each trial it samples, over a fresh G(n, 1/2)-style edge
// indicator per (node, set) pair, a sequence of k disjoint transmit sets
// of size 1 or 2 (as the proof reduces every schedule to), and counts the
// nodes that survive all k rounds uninformed: a node survives a 1-set by
// having no edge to it (probability 1/2) and a 2-set by having edges to
// both members (collision, probability 1/4) or neither (silence, 1/4).
//
// Because edges to distinct disjoint sets are independent, the survival
// indicator per node is an independent product — the probe samples it
// directly rather than materialising the graph, matching the proof's
// calculation. It returns the fraction of trials in which at least one of
// n nodes survives k rounds.
func SurvivorProbe(n, k, trials int, pairFraction float64, rng *xrand.Rand) float64 {
	if trials <= 0 {
		return math.NaN()
	}
	surviveTrials := 0
	for t := 0; t < trials; t++ {
		found := false
		for v := 0; v < n && !found; v++ {
			alive := true
			for i := 0; i < k; i++ {
				if rng.Float64() < pairFraction {
					// 2-set: survive iff both or neither edge present.
					e1 := rng.Bool()
					e2 := rng.Bool()
					if e1 != e2 {
						alive = false
						break
					}
				} else {
					// 1-set: survive iff no edge.
					if rng.Bool() {
						alive = false
						break
					}
				}
			}
			if alive {
				found = true
			}
		}
		if found {
			surviveTrials++
		}
	}
	return float64(surviveTrials) / float64(trials)
}

// SurvivorThreshold returns the smallest k for which the survivor
// probability drops below 0.5, scanned by doubling then binary search.
// Theorem 6 predicts the threshold grows as Θ(log n).
func SurvivorThreshold(n, trials int, pairFraction float64, rng *xrand.Rand) int {
	lo, hi := 1, 2
	for SurvivorProbe(n, hi, trials, pairFraction, rng) >= 0.5 {
		lo = hi
		hi *= 2
		if hi > 1<<20 {
			return hi
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if SurvivorProbe(n, mid, trials, pairFraction, rng) >= 0.5 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SequenceProtocol is the most general protocol allowed by Theorem 8's
// model: every informed node transmits in round t with probability
// Q[(t-1) mod len(Q)], a function of (n, p, t) only.
type SequenceProtocol struct {
	Q []float64
}

// Transmit implements radio.Protocol.
func (s *SequenceProtocol) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	if len(s.Q) == 0 {
		return false
	}
	return rng.Bernoulli(s.Q[(round-1)%len(s.Q)])
}

var _ radio.Protocol = (*SequenceProtocol)(nil)

// CandidateSequences returns a broad family of transmit-probability
// sequences for a graph with expected degree d: constants at several
// scales, decay cycles (the BGI pattern), ramps, and two-phase
// flood-then-select patterns. The optimizer evaluates them all.
func CandidateSequences(d float64, period int) []*SequenceProtocol {
	if period < 1 {
		period = 1
	}
	var out []*SequenceProtocol
	constant := func(q float64) *SequenceProtocol {
		qs := make([]float64, 1)
		qs[0] = q
		return &SequenceProtocol{Q: qs}
	}
	for _, q := range []float64{1, 0.5, 0.25, 1 / math.Sqrt(d), 1 / d, 1 / (2 * d), 1 / (d * d)} {
		if q > 0 && q <= 1 {
			out = append(out, constant(q))
		}
	}
	// Decay cycle: 1, 1/2, 1/4, ..., over the period.
	decay := make([]float64, period)
	for i := range decay {
		decay[i] = math.Pow(2, -float64(i))
	}
	out = append(out, &SequenceProtocol{Q: decay})
	// Ramp up: 1/d ... 1.
	ramp := make([]float64, period)
	for i := range ramp {
		frac := float64(i) / float64(period)
		ramp[i] = math.Max(1/d, 1-frac)
	}
	out = append(out, &SequenceProtocol{Q: ramp})
	// Flood phase then 1/d: mimics the paper's protocol obliviously.
	for _, floodLen := range []int{1, 2, 3, 5} {
		if floodLen >= period {
			continue
		}
		q := make([]float64, period)
		for i := range q {
			if i < floodLen {
				q[i] = 1
			} else {
				q[i] = 1 / d
			}
		}
		// Non-cyclic intent: pad with 1/d by using a long period.
		long := make([]float64, 4*period)
		copy(long, q)
		for i := period; i < len(long); i++ {
			long[i] = 1 / d
		}
		out = append(out, &SequenceProtocol{Q: long})
	}
	return out
}

// OptimizeSequence evaluates every candidate sequence on the graph over
// the given number of trials and returns the best (smallest) mean
// completion time found and the protocol achieving it. Incomplete runs
// count as maxRounds+1.
func OptimizeSequence(g *graph.Graph, src int32, d float64, maxRounds, trials int, rng *xrand.Rand) (float64, *SequenceProtocol) {
	period := int(math.Ceil(math.Log2(float64(g.N()) + 2)))
	cands := CandidateSequences(d, period)
	best := math.Inf(1)
	var bestP *SequenceProtocol
	// One engine for the whole search: BroadcastTimeOn resets it per
	// trial, and engine construction consumes no randomness, so results
	// are bit-identical to the fresh-engine-per-trial form.
	e := radio.NewEngine(g, src, radio.StrictInformed)
	for _, p := range cands {
		total := 0.0
		for t := 0; t < trials; t++ {
			total += float64(radio.BroadcastTimeOn(e, p, maxRounds, rng.Derive(uint64(t))))
		}
		mean := total / float64(trials)
		if mean < best {
			best = mean
			bestP = p
		}
	}
	return best, bestP
}
