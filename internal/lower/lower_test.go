package lower

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

func connected(t testing.TB, n int, d float64, seed uint64) *graph.Graph {
	t.Helper()
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(seed), 50)
	if !ok {
		t.Fatalf("no connected sample")
	}
	return g
}

func TestEccentricityBound(t *testing.T) {
	g := gen.Path(10)
	if Eccentricity(g, 0) != 9 {
		t.Fatalf("ecc = %d", Eccentricity(g, 0))
	}
	// Any complete schedule needs at least ecc rounds: verify against the
	// greedy adversary.
	_, res, err := GreedyAdaptiveSchedule(g, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds < 9 {
		t.Fatalf("greedy on path: %+v", res.Rounds)
	}
}

func TestGreedyAdaptiveCompletesAndIsValid(t *testing.T) {
	g := connected(t, 400, 12, 1)
	sched, res, err := GreedyAdaptiveSchedule(g, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("greedy incomplete: %d/400", res.Informed)
	}
	// Replay validates the schedule independently.
	replay, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil || !replay.Completed {
		t.Fatalf("replay: %v %d", err, replay.Informed)
	}
	if replay.Rounds != res.Rounds {
		t.Fatalf("replay rounds %d != build rounds %d", replay.Rounds, res.Rounds)
	}
}

func TestGreedyAdaptiveRespectsEccentricity(t *testing.T) {
	g := connected(t, 500, 10, 2)
	ecc := Eccentricity(g, 0)
	_, res, err := GreedyAdaptiveSchedule(g, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < ecc {
		t.Fatalf("greedy finished in %d rounds below eccentricity %d", res.Rounds, ecc)
	}
}

func TestGreedyAdaptiveNotBelowBoundShape(t *testing.T) {
	// E3 in miniature: even the greedy adversary should not finish far
	// below the Theorem 6 shape.
	for _, tc := range []struct {
		n int
		d float64
	}{
		{500, 12}, {1000, 15}, {2000, 18},
	} {
		g := connected(t, tc.n, tc.d, uint64(tc.n))
		_, res, err := GreedyAdaptiveSchedule(g, 0, 10000)
		if err != nil {
			t.Fatal(err)
		}
		bound := core.CentralizedBound(tc.n, tc.d)
		ratio := float64(res.Rounds) / bound
		if ratio < 0.2 {
			t.Fatalf("n=%d: greedy %d rounds is %.2fx the bound %.1f — far below the lower-bound shape",
				tc.n, res.Rounds, ratio, bound)
		}
	}
}

func TestGreedyFasterThanConstructive(t *testing.T) {
	// The greedy adversary should be no slower than the paper's
	// constructive schedule (it has strictly more freedom).
	const n = 1000
	const d = 15.0
	g := connected(t, n, d, 3)
	_, greedy, err := GreedyAdaptiveSchedule(g, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	sched, _, err := core.BuildCentralizedSchedule(g, 0, d, core.DefaultCentralizedConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	constructive, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Rounds > constructive.Rounds+3 {
		t.Fatalf("greedy (%d) much slower than constructive (%d)", greedy.Rounds, constructive.Rounds)
	}
}

func TestSurvivorProbeExtremes(t *testing.T) {
	rng := xrand.New(4)
	// k = 0 means nobody can be informed beyond... k=1 with tiny k:
	// survival prob per node 1/2 (singleton) — with n = 100 nodes some
	// survivor almost surely.
	if p := SurvivorProbe(100, 1, 200, 0, rng); p < 0.99 {
		t.Fatalf("1-round survivor prob %v, want ~1", p)
	}
	// Very long sequences kill everyone.
	if p := SurvivorProbe(100, 200, 200, 0.5, rng); p > 0.01 {
		t.Fatalf("200-round survivor prob %v, want ~0", p)
	}
	if !math.IsNaN(SurvivorProbe(10, 5, 0, 0.5, rng)) {
		t.Fatal("zero trials should be NaN")
	}
}

func TestSurvivorProbeMatchesTheory(t *testing.T) {
	// With only pair sets (pairFraction 1), per-node survival is (1/2)^k
	// (both-or-neither = 1/2 each round). P(some of n survives) =
	// 1 - (1 - 2^-k)^n.
	rng := xrand.New(5)
	n, k := 50, 8
	want := 1 - math.Pow(1-math.Pow(0.5, float64(k)), float64(n))
	got := SurvivorProbe(n, k, 5000, 1, rng)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("survivor prob %v, theory %v", got, want)
	}
}

func TestSurvivorThresholdGrowsLogarithmically(t *testing.T) {
	rng := xrand.New(6)
	t1 := SurvivorThreshold(1<<8, 400, 0.5, rng)
	t2 := SurvivorThreshold(1<<16, 400, 0.5, rng)
	// Theory: threshold ≈ log_{1/s} n where s is per-round survival; the
	// n = 2^16 threshold should be about double the 2^8 one, certainly not
	// 256x (linear) and not equal (constant).
	if t2 <= t1 {
		t.Fatalf("threshold did not grow: %d -> %d", t1, t2)
	}
	ratio := float64(t2) / float64(t1)
	if ratio > 4 {
		t.Fatalf("threshold grew too fast: %d -> %d", t1, t2)
	}
}

func TestSequenceProtocol(t *testing.T) {
	p := &SequenceProtocol{Q: []float64{1, 0}}
	rng := xrand.New(7)
	if !p.Transmit(0, 1, 0, rng) {
		t.Fatal("q=1 round did not transmit")
	}
	if p.Transmit(0, 2, 0, rng) {
		t.Fatal("q=0 round transmitted")
	}
	if !p.Transmit(0, 3, 0, rng) {
		t.Fatal("cycle did not wrap")
	}
	empty := &SequenceProtocol{}
	if empty.Transmit(0, 1, 0, rng) {
		t.Fatal("empty sequence transmitted")
	}
}

func TestCandidateSequencesValid(t *testing.T) {
	cands := CandidateSequences(20, 10)
	if len(cands) < 8 {
		t.Fatalf("only %d candidates", len(cands))
	}
	for _, c := range cands {
		if len(c.Q) == 0 {
			t.Fatal("empty candidate")
		}
		for _, q := range c.Q {
			if q < 0 || q > 1 {
				t.Fatalf("probability %v out of range", q)
			}
		}
	}
	// Degenerate period.
	if cands := CandidateSequences(5, 0); len(cands) == 0 {
		t.Fatal("no candidates for period 0")
	}
}

func TestOptimizeSequenceFindsReasonableProtocol(t *testing.T) {
	const n = 1000
	d := 2 * math.Log(n)
	g := connected(t, n, d, 8)
	rng := xrand.New(9)
	best, bestP := OptimizeSequence(g, 0, d, core.MaxRoundsFor(n), 3, rng)
	if bestP == nil {
		t.Fatal("no best protocol")
	}
	if best > float64(core.MaxRoundsFor(n)) {
		t.Fatalf("no candidate completed: best = %v", best)
	}
	// Theorem 8: even the best oblivious sequence needs Ω(ln n).
	if best < 0.5*math.Log(float64(n)) {
		t.Fatalf("best oblivious time %v below ln n/2 = %v — contradicts Theorem 8 shape",
			best, 0.5*math.Log(float64(n)))
	}
}

func BenchmarkGreedyAdaptive(b *testing.B) {
	g := connected(b, 500, 12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GreedyAdaptiveSchedule(g, 0, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSurvivorProbe(b *testing.B) {
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		SurvivorProbe(1000, 20, 100, 0.5, rng)
	}
}
