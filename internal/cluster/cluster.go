// Package cluster is the distributed campaign execution subsystem: a
// coordinator slices a campaign Spec's point grid into shards, grants
// time-bounded leases over them to a fleet of radiosimd workers, tracks
// worker liveness through heartbeats, reassigns expired or failed leases
// with bounded retries, and folds the returned samples into the exact
// report a single-machine run of the same spec produces.
//
// The protocol is push-based and has four messages:
//
//   - POST {worker}/v1/shard/lease — the coordinator OFFERS a lease
//     (LeaseOffer). The worker either admits it (LeaseAck) and runs the
//     shard in the background, or answers 429 + Retry-After when its
//     shard slots are full — backpressure the coordinator honors by
//     backing off and re-offering, exactly like the serve layer's run
//     queue.
//   - POST {coordinator}/v1/shard/{lease}/heartbeat — the worker extends
//     its lease while the shard runs. A lease whose deadline passes
//     without a heartbeat is expired and its shard reassigned.
//   - POST {coordinator}/v1/shard/{lease}/result — the worker streams the
//     shard's samples back (ShardResult). Results are idempotent: a slow
//     worker whose lease was already reassigned delivers samples that are
//     byte-identical to the replacement's (samples are pure functions of
//     their seeds), so late and duplicate results merge without conflict.
//   - GET {coordinator}/v1/cluster/status — lease table, worker liveness
//     and counters.
//
// Determinism: shard assignment restricts WHICH (point, trial) cells a
// worker computes, never HOW — per-trial seeds derive from (spec seed,
// point index, trial index) alone, and the final report is built by the
// same in-order aggregation path (campaign.BuildReport) a local run
// uses. The distributed report is therefore byte-identical to the
// single-machine one, including runs where workers die mid-shard; see
// DESIGN.md §9 for the full argument.
package cluster

import (
	"fmt"

	"repro/internal/campaign"
)

// Shard is one unit of leased work: the grid points [Lo, Hi) of the
// spec, every trial of each. Shard IDs are deterministic functions of
// the plan, so a restarted coordinator re-derives the same shards.
type Shard struct {
	ID string `json:"id"`
	Lo int    `json:"lo"`
	Hi int    `json:"hi"`
}

// Plan slices the spec's point grid into shards of up to pointsPerShard
// consecutive points (<= 0 means 1: one point per shard, the finest
// grain and the default — trials of one point already parallelize across
// a worker's local pool, so finer sharding than a point buys nothing).
func Plan(spec *campaign.Spec, pointsPerShard int) []Shard {
	if pointsPerShard <= 0 {
		pointsPerShard = 1
	}
	var shards []Shard
	for lo := 0; lo < len(spec.Points); lo += pointsPerShard {
		hi := min(lo+pointsPerShard, len(spec.Points))
		shards = append(shards, Shard{ID: fmt.Sprintf("s%03d", len(shards)), Lo: lo, Hi: hi})
	}
	return shards
}

// LeaseOffer is the coordinator → worker lease grant offer: the full
// spec (workers are stateless), the shard's point range, the engine
// setting every worker must share, the lease TTL the worker's heartbeats
// must beat, and the coordinator base URL to call back.
type LeaseOffer struct {
	LeaseID     string         `json:"lease_id"`
	ShardID     string         `json:"shard_id"`
	PointLo     int            `json:"point_lo"`
	PointHi     int            `json:"point_hi"`
	Spec        *campaign.Spec `json:"spec"`
	SpecHash    string         `json:"spec_hash"`
	Lanes       int            `json:"lanes"`
	TTLMs       int            `json:"ttl_ms"`
	Coordinator string         `json:"coordinator"`
	// Worker is the worker's own base URL as the coordinator addresses
	// it, echoed back in heartbeats and results so the coordinator can
	// attribute them without trusting reverse DNS.
	Worker string `json:"worker"`
}

// LeaseAck is the worker's acceptance of a lease offer.
type LeaseAck struct {
	LeaseID string `json:"lease_id"`
	ShardID string `json:"shard_id"`
	State   string `json:"state"` // "accepted"
	Worker  string `json:"worker"`
}

// Heartbeat is the worker → coordinator lease extension. The coordinator
// answers 200 with the refreshed TTL, or 410 Gone when the lease no
// longer exists (expired and reassigned, or the shard completed) — the
// worker then abandons the shard.
type Heartbeat struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
}

// HeartbeatAck is the coordinator's answer to a live heartbeat.
type HeartbeatAck struct {
	LeaseID string `json:"lease_id"`
	TTLMs   int    `json:"ttl_ms"`
}

// ShardResult is the worker → coordinator shard completion report:
// either the shard's samples (in grid order) or a shard-level error.
// Trial-level failures are NOT shard errors — a panicking trial is
// recorded as a failed Sample by the campaign runner and travels in
// Samples like any other; Error means the shard itself could not run.
type ShardResult struct {
	LeaseID string            `json:"lease_id"`
	ShardID string            `json:"shard_id"`
	Worker  string            `json:"worker"`
	Error   string            `json:"error,omitempty"`
	Samples []campaign.Sample `json:"samples,omitempty"`
}

// Shard lease states as reported in status and persisted in checkpoint
// manifests (campaign.ShardLease.State).
const (
	ShardPending   = "pending"   // waiting for a grantable worker
	ShardOffering  = "offering"  // offer in flight to a worker
	ShardLeased    = "leased"    // granted; heartbeats extend the deadline
	ShardCompleted = "completed" // samples imported and range complete
	ShardFailed    = "failed"    // lease budget exhausted
)

// Counters are the coordinator's cumulative cluster counters, exposed in
// /v1/cluster/status and /metrics.
type Counters struct {
	LeasesGranted    int64 `json:"leases_granted"`
	LeasesExpired    int64 `json:"leases_expired"`
	LeasesReassigned int64 `json:"leases_reassigned"`
	ShardsCompleted  int64 `json:"shards_completed"`
	ShardsFailed     int64 `json:"shards_failed"`
	ResultsDuplicate int64 `json:"results_duplicate"`
	ResultsLate      int64 `json:"results_late"`
	OffersBusy       int64 `json:"offers_busy"`
	OfferErrors      int64 `json:"offer_errors"`
}

// WorkerStatus is one worker's liveness view in the status report.
type WorkerStatus struct {
	URL          string `json:"url"`
	State        string `json:"state"` // "idle" | "busy" | "backoff"
	ActiveLeases int    `json:"active_leases"`
	ConsecFails  int    `json:"consecutive_failures"`
	// LastContactMs is milliseconds since the worker last answered an
	// offer, heartbeat or result; -1 before first contact.
	LastContactMs int64 `json:"last_contact_ms"`
}

// ShardStatus is one shard's row in the status report.
type ShardStatus struct {
	ID       string `json:"id"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	Worker   string `json:"worker,omitempty"`
}

// Status is the body of GET /v1/cluster/status.
type Status struct {
	Name     string         `json:"name"`
	SpecHash string         `json:"spec_hash"`
	Done     bool           `json:"done"`
	Samples  int            `json:"samples"`
	Counters Counters       `json:"counters"`
	Shards   []ShardStatus  `json:"shards"`
	Workers  []WorkerStatus `json:"workers"`
}

// Event is the coordinator's observability hook payload (tests use it to
// inject faults at exact protocol moments, e.g. SIGKILL a worker the
// instant its lease is granted).
type Event struct {
	Type    string // "granted" | "busy" | "offer-error" | "expired" | "completed" | "failed" | "result-late" | "result-duplicate" | "result-error"
	Shard   string
	Worker  string
	Attempt int
	Err     string
}
