// Package cluster_test integrates the coordinator with real serve
// workers in-process: the same lease/heartbeat/result protocol the
// binaries speak, minus the processes. (External test package: serve
// imports cluster, so these tests cannot live inside package cluster.)
package cluster_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/serve"
)

// testSpec is a two-point campaign small enough for protocol tests but
// large enough to exercise multi-shard scheduling.
func testSpec() *campaign.Spec {
	return &campaign.Spec{
		Name:   "cluster-test",
		Seed:   19,
		Trials: 3,
		Points: []campaign.PointSpec{
			{ID: "n60", X: 60, Trial: campaign.TrialSpec{Kind: "distributed", N: 60, D: 8}},
			{ID: "n80", X: 80, Trial: campaign.TrialSpec{Kind: "distributed", N: 80, D: 8}},
		},
	}
}

// newWorker boots an in-process serve worker and returns its base URL.
func newWorker(t *testing.T, cfg serve.Config) string {
	t.Helper()
	s := serve.NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(2 * time.Second)
	})
	return ts.URL
}

// newCoordinator builds a coordinator with its handler served, solving
// the listener-before-handler chicken-and-egg with a late-bound mux.
func newCoordinator(t *testing.T, spec *campaign.Spec, cfg cluster.Config) *cluster.Coordinator {
	t.Helper()
	var mu sync.Mutex
	var h http.Handler
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		handler := h
		mu.Unlock()
		if handler == nil {
			http.Error(w, "coordinator not ready", http.StatusServiceUnavailable)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	cfg.Advertise = ts.URL
	c, err := cluster.NewCoordinator(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	h = c.Handler()
	mu.Unlock()
	return c
}

func reportJSON(t *testing.T, r *campaign.Report) string {
	t.Helper()
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPlan: the grid slices into consecutive, covering, deterministic
// shards.
func TestPlan(t *testing.T) {
	spec := testSpec()
	shards := cluster.Plan(spec, 0)
	if len(shards) != 2 {
		t.Fatalf("Plan with 1 point/shard: %d shards, want 2", len(shards))
	}
	for i, s := range shards {
		if s.Lo != i || s.Hi != i+1 {
			t.Errorf("shard %d covers [%d,%d), want [%d,%d)", i, s.Lo, s.Hi, i, i+1)
		}
	}
	if shards[0].ID == shards[1].ID {
		t.Error("shard IDs collide")
	}
	coarse := cluster.Plan(spec, 5)
	if len(coarse) != 1 || coarse[0].Lo != 0 || coarse[0].Hi != 2 {
		t.Errorf("Plan with oversize shards: %+v, want one shard covering the grid", coarse)
	}
}

// TestClusterMatchesLocalRun: the tentpole guarantee — a distributed
// campaign over two workers produces a report byte-identical to a
// single-machine campaign.Run of the same spec.
func TestClusterMatchesLocalRun(t *testing.T) {
	spec := testSpec()
	w1 := newWorker(t, serve.Config{ShardWorkers: 1})
	w2 := newWorker(t, serve.Config{ShardWorkers: 1})
	coord := newCoordinator(t, spec, cluster.Config{
		Workers:  []string{w1, w2},
		LeaseTTL: 2 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	clustered, err := coord.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !clustered.Complete {
		t.Fatal("clustered report incomplete")
	}
	local, err := campaign.Run(spec, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, clustered), reportJSON(t, local); got != want {
		t.Errorf("clustered report differs from local run:\n%s\nvs\n%s", got, want)
	}
	st := coord.Status()
	if st.Counters.LeasesGranted != 2 || st.Counters.ShardsCompleted != 2 {
		t.Errorf("counters %+v, want 2 granted / 2 completed", st.Counters)
	}
	for _, sh := range st.Shards {
		if sh.State != cluster.ShardCompleted {
			t.Errorf("shard %s ended in state %s", sh.ID, sh.State)
		}
	}
}

// blackholeWorker accepts its first lease offer and then goes silent: no
// heartbeats, no result — the crashed-worker shape. Later offers are
// answered 429 so the coordinator routes around it.
func blackholeWorker(t *testing.T) string {
	t.Helper()
	var mu sync.Mutex
	taken := false
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shard/lease", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		first := !taken
		taken = true
		mu.Unlock()
		if !first {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"state":"accepted"}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestClusterReassignsExpiredLease: a lease swallowed by a dead worker
// expires and its shard is reassigned; the final report is still
// byte-identical to the local run — the kill-mid-shard guarantee, with
// the kill simulated by a worker that never progresses.
func TestClusterReassignsExpiredLease(t *testing.T) {
	spec := testSpec()
	dead := blackholeWorker(t)
	live := newWorker(t, serve.Config{ShardWorkers: 2})
	coord := newCoordinator(t, spec, cluster.Config{
		Workers:  []string{dead, live},
		LeaseTTL: 250 * time.Millisecond,
		Backoff:  50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	clustered, err := coord.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	local, err := campaign.Run(spec, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, clustered), reportJSON(t, local); got != want {
		t.Errorf("report after lease reassignment differs from local run:\n%s\nvs\n%s", got, want)
	}
	st := coord.Status()
	if st.Counters.LeasesExpired < 1 {
		t.Errorf("counters %+v: the black-hole worker's lease never expired", st.Counters)
	}
	if st.Counters.LeasesReassigned < 1 {
		t.Errorf("counters %+v: the swallowed shard was never reassigned", st.Counters)
	}
}

// TestClusterBackpressureReoffer: satellite end-to-end — the coordinator
// offers more leases than the worker has shard slots; the worker answers
// 429 + Retry-After, the coordinator backs off and re-offers, and the
// campaign still completes byte-identically.
func TestClusterBackpressureReoffer(t *testing.T) {
	spec := testSpec()
	// One worker, one shard slot, but the coordinator is allowed two
	// concurrent leases — the second offer must bounce at least once.
	w := newWorker(t, serve.Config{ShardWorkers: 1, ShardStartDelay: 300 * time.Millisecond})
	coord := newCoordinator(t, spec, cluster.Config{
		Workers:         []string{w},
		LeasesPerWorker: 2,
		LeaseTTL:        2 * time.Second,
		Backoff:         50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	clustered, err := coord.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	local, err := campaign.Run(spec, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, clustered), reportJSON(t, local); got != want {
		t.Errorf("report after backpressure differs from local run:\n%s\nvs\n%s", got, want)
	}
	st := coord.Status()
	if st.Counters.OffersBusy < 1 {
		t.Errorf("counters %+v: no offer was ever answered 429", st.Counters)
	}
	if st.Counters.ShardsCompleted != 2 {
		t.Errorf("counters %+v, want both shards completed", st.Counters)
	}
}

// failingWorker accepts every lease and posts a shard-level error back.
func failingWorker(t *testing.T) string {
	t.Helper()
	var client http.Client
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shard/lease", func(w http.ResponseWriter, r *http.Request) {
		var offer cluster.LeaseOffer
		if err := json.NewDecoder(r.Body).Decode(&offer); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		go func() {
			body := strings.NewReader(`{"lease_id":"` + offer.LeaseID + `","shard_id":"` + offer.ShardID + `","worker":"` + offer.Worker + `","error":"simulated shard failure"}`)
			resp, err := client.Post(offer.Coordinator+"/v1/shard/"+offer.LeaseID+"/result", "application/json", body)
			if err == nil {
				resp.Body.Close()
			}
		}()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"state":"accepted"}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestClusterExhaustsLeaseBudget: a shard failing on every lease fails
// the campaign after MaxAttempts with a telling error, instead of
// retrying forever.
func TestClusterExhaustsLeaseBudget(t *testing.T) {
	spec := testSpec()
	coord := newCoordinator(t, spec, cluster.Config{
		Workers:     []string{failingWorker(t)},
		MaxAttempts: 2,
		LeaseTTL:    2 * time.Second,
		Backoff:     20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, err := coord.Run(ctx)
	if err == nil {
		t.Fatal("campaign with an always-failing worker succeeded")
	}
	for _, want := range []string{"failed after 2 lease", "simulated shard failure"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if st := coord.Status(); st.Counters.ShardsFailed < 1 {
		t.Errorf("counters %+v, want a failed shard", st.Counters)
	}
}

// TestClusterResume: a coordinator canceled mid-campaign flushes its
// checkpoint; a resumed coordinator leases only the incomplete shards
// and converges to the byte-identical local report.
func TestClusterResume(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	w := newWorker(t, serve.Config{ShardWorkers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coord := newCoordinator(t, spec, cluster.Config{
		Workers:  []string{w},
		LeaseTTL: 2 * time.Second,
		Dir:      dir,
		OnEvent: func(ev cluster.Event) {
			if ev.Type == "completed" {
				cancel() // stop after the first shard lands
			}
		},
	})
	partial, err := coord.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	resumed := newCoordinator(t, spec, cluster.Config{
		Workers:  []string{w},
		LeaseTTL: 2 * time.Second,
		Dir:      dir,
		Resume:   true,
	})
	rctx, rcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer rcancel()
	final, err := resumed.Run(rctx)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Complete {
		t.Fatal("resumed cluster run incomplete")
	}
	local, err := campaign.Run(spec, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportJSON(t, final), reportJSON(t, local); got != want {
		t.Errorf("resumed cluster report differs from local run:\n%s\nvs\n%s", got, want)
	}
	// The first run completed at least one shard; resume must not have
	// re-leased those.
	if partial.Complete {
		t.Skip("first run finished before the cancel landed; resume path not exercised")
	}
	st := resumed.Status()
	if int(st.Counters.LeasesGranted) >= len(cluster.Plan(spec, 0)) {
		t.Errorf("resume granted %d leases for %d shards; completed shards were re-leased",
			st.Counters.LeasesGranted, len(cluster.Plan(spec, 0)))
	}
}
