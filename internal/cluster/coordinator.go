package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
)

// Config parameterizes a Coordinator. Workers and Advertise are
// required; every other zero field takes the documented default.
type Config struct {
	// Workers are the worker base URLs ("http://host:8357"); trailing
	// slashes are trimmed.
	Workers []string
	// Advertise is the coordinator's own base URL as workers must reach
	// it for heartbeats and results.
	Advertise string
	// LeaseTTL is how long a lease lives without a heartbeat (default
	// 5s). Workers heartbeat at TTL/3.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many leases one shard may consume before the
	// campaign fails (default 3).
	MaxAttempts int
	// PointsPerShard sizes shards in consecutive grid points (default 1).
	PointsPerShard int
	// LeasesPerWorker bounds concurrently leased shards per worker
	// (default 1). A worker may still answer 429 below this bound — its
	// own shard slots are the authority — and the coordinator backs off.
	LeasesPerWorker int
	// Lanes is the campaign lane setting every worker runs with (the
	// usual 0 = auto, 1 = force scalar). All shards share it so all
	// samples come from one engine's randomness stream.
	Lanes int
	// OfferTimeout bounds one lease-offer round trip (default 3s).
	OfferTimeout time.Duration
	// Backoff is the base back-off after an offer fails or is rejected
	// without a Retry-After hint; it doubles per consecutive failure of
	// the same worker, capped at 32x (default 500ms).
	Backoff time.Duration
	// Tick is the scheduler loop cadence (default 25ms).
	Tick time.Duration
	// Dir is the coordinator checkpoint directory; "" disables
	// durability. Resume reopens it and skips shards whose samples are
	// already complete.
	Dir    string
	Resume bool
	// Progress, when non-nil, receives human-readable progress lines.
	Progress io.Writer
	// OnEvent, when non-nil, observes protocol transitions; it is called
	// synchronously without internal locks held (tests inject faults at
	// exact moments through it).
	OnEvent func(Event)
	// Client overrides the HTTP client used for lease offers.
	Client *http.Client
}

func (c *Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 5 * time.Second
}

func (c *Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 3
}

func (c *Config) leasesPerWorker() int {
	if c.LeasesPerWorker > 0 {
		return c.LeasesPerWorker
	}
	return 1
}

func (c *Config) offerTimeout() time.Duration {
	if c.OfferTimeout > 0 {
		return c.OfferTimeout
	}
	return 3 * time.Second
}

func (c *Config) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 500 * time.Millisecond
}

func (c *Config) tick() time.Duration {
	if c.Tick > 0 {
		return c.Tick
	}
	return 25 * time.Millisecond
}

type shardState struct {
	Shard
	state    string
	attempts int // leases granted so far
	leaseID  string
	worker   *workerState
	deadline time.Time
	lastErr  string
}

type workerState struct {
	url          string
	active       int
	backoffUntil time.Time
	consecFails  int
	lastContact  time.Time
}

// leaseRec tracks one issued lease so a worker's concurrency charge is
// released exactly once no matter how the lease ends (grant, rejection,
// expiry, result).
type leaseRec struct {
	shard   *shardState
	worker  *workerState
	charged bool
}

// Coordinator executes one campaign across a worker fleet. Create with
// NewCoordinator, mount Handler on the advertised address, then Run.
type Coordinator struct {
	spec     *campaign.Spec
	specHash string
	cfg      Config
	client   *http.Client

	mu       sync.Mutex
	shards   []*shardState
	byID     map[string]*shardState
	workers  []*workerState
	leases   map[string]*leaseRec
	set      *campaign.SampleSet
	ck       *campaign.Checkpoint
	counters Counters
	leaseSeq int
	rr       int
	failure  error
	finished bool
}

// NewCoordinator validates the spec and plans the shards. Call Handler
// and serve it on cfg.Advertise before Run, or workers cannot call back.
func NewCoordinator(spec *campaign.Spec, cfg Config) (*Coordinator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	if cfg.Advertise == "" {
		return nil, fmt.Errorf("cluster: no advertise URL configured (workers must reach the coordinator for heartbeats and results)")
	}
	if cfg.Resume && cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: resume requires a checkpoint directory")
	}
	c := &Coordinator{
		spec:     spec,
		specHash: spec.Hash(),
		cfg:      cfg,
		client:   cfg.Client,
		byID:     make(map[string]*shardState),
		leases:   make(map[string]*leaseRec),
		set:      campaign.NewSampleSet(spec),
	}
	if c.client == nil {
		c.client = &http.Client{Timeout: cfg.offerTimeout()}
	}
	for _, s := range Plan(spec, cfg.PointsPerShard) {
		st := &shardState{Shard: s, state: ShardPending}
		c.shards = append(c.shards, st)
		c.byID[s.ID] = st
	}
	for _, u := range cfg.Workers {
		c.workers = append(c.workers, &workerState{url: strings.TrimRight(u, "/")})
	}
	return c, nil
}

// Handler returns the coordinator's HTTP routes (heartbeat, result,
// status, metrics).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shard/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/shard/{id}/result", c.handleResult)
	mux.HandleFunc("GET /v1/cluster/status", c.handleStatus)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

// Run drives the campaign to completion: grants leases, expires silent
// ones, imports results, and returns the final report — byte-identical
// (via Report.JSON/Text) to campaign.Run of the same spec. A canceled
// context flushes the checkpoint and returns the partial report with nil
// error, mirroring campaign.Run's interrupt contract; a shard exhausting
// its lease budget or a sample conflict fails the run with the partial
// report attached.
func (c *Coordinator) Run(ctx context.Context) (*campaign.Report, error) {
	if err := c.openCheckpoint(); err != nil {
		return nil, err
	}
	tick := time.NewTicker(c.cfg.tick())
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return c.finish()
		case <-tick.C:
		}
		now := time.Now()
		for _, ev := range c.expire(now) {
			c.emit(ev)
		}
		for _, g := range c.pickGrants(now) {
			go c.offer(g.shard, g.worker)
		}
		c.mu.Lock()
		failed := c.failure
		done := true
		for _, s := range c.shards {
			if s.state != ShardCompleted {
				done = false
				break
			}
		}
		c.mu.Unlock()
		if failed != nil {
			rep, ferr := c.finish()
			if ferr == nil {
				ferr = failed
			}
			return rep, ferr
		}
		if done {
			return c.finish()
		}
	}
}

// openCheckpoint creates or resumes the coordinator checkpoint and marks
// shards already completed by the recorded samples.
func (c *Coordinator) openCheckpoint() error {
	if c.cfg.Dir == "" {
		return nil
	}
	engine := campaign.EngineTag(c.spec, c.cfg.Lanes)
	if c.cfg.Resume {
		ck, samples, err := campaign.OpenCheckpoint(c.cfg.Dir, c.spec, engine)
		if err != nil {
			return err
		}
		c.ck = ck
		for _, s := range samples {
			if _, err := c.set.Add(*s); err != nil {
				return fmt.Errorf("cluster: resuming %s: %w", c.cfg.Dir, err)
			}
		}
		// The samples are the source of truth: a shard whose range is
		// complete needs no lease, whatever the recorded lease table says.
		for _, s := range c.shards {
			if c.set.RangeComplete(s.Lo, s.Hi) {
				s.state = ShardCompleted
				c.counters.ShardsCompleted++
			}
		}
		c.progressf("cluster: resumed %d samples, %d/%d shards already complete\n",
			c.set.Len(), c.completedLocked(), len(c.shards))
		return nil
	}
	ck, err := campaign.CreateCheckpoint(c.cfg.Dir, c.spec, engine)
	if err != nil {
		return err
	}
	c.ck = ck
	return nil
}

func (c *Coordinator) completedLocked() int {
	n := 0
	for _, s := range c.shards {
		if s.state == ShardCompleted {
			n++
		}
	}
	return n
}

// expire returns leases whose deadline passed to the pending pool.
func (c *Coordinator) expire(now time.Time) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var evs []Event
	for _, s := range c.shards {
		if s.state != ShardLeased || now.Before(s.deadline) {
			continue
		}
		worker := ""
		if rec := c.leases[s.leaseID]; rec != nil {
			worker = rec.worker.url
			c.uncharge(rec)
			delete(c.leases, s.leaseID)
		}
		c.counters.LeasesExpired++
		evs = append(evs, Event{Type: "expired", Shard: s.ID, Worker: worker, Attempt: s.attempts})
		s.leaseID = ""
		s.worker = nil
		if ev, failed := c.returnToPending(s, "lease expired without heartbeat"); failed {
			evs = append(evs, ev)
		}
	}
	return evs
}

// returnToPending puts a shard back in the pending pool, or fails the
// campaign when its lease budget is exhausted. Caller holds mu.
func (c *Coordinator) returnToPending(s *shardState, why string) (Event, bool) {
	s.lastErr = why
	if s.attempts >= c.cfg.maxAttempts() {
		s.state = ShardFailed
		c.counters.ShardsFailed++
		if c.failure == nil {
			c.failure = fmt.Errorf("cluster: shard %s (points [%d,%d)) failed after %d lease(s): %s",
				s.ID, s.Lo, s.Hi, s.attempts, why)
		}
		return Event{Type: "failed", Shard: s.ID, Attempt: s.attempts, Err: why}, true
	}
	s.state = ShardPending
	return Event{}, false
}

func (c *Coordinator) uncharge(rec *leaseRec) {
	if rec.charged {
		rec.charged = false
		if rec.worker.active > 0 {
			rec.worker.active--
		}
	}
}

type grant struct {
	shard  *shardState
	worker *workerState
}

// pickGrants matches pending shards to available workers round-robin and
// marks them offering; the actual HTTP offers run outside the lock.
func (c *Coordinator) pickGrants(now time.Time) []grant {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil || c.finished {
		return nil
	}
	var grants []grant
	for _, s := range c.shards {
		if s.state != ShardPending {
			continue
		}
		var picked *workerState
		for i := 0; i < len(c.workers); i++ {
			w := c.workers[(c.rr+i)%len(c.workers)]
			if w.active >= c.cfg.leasesPerWorker() || now.Before(w.backoffUntil) {
				continue
			}
			picked = w
			c.rr = (c.rr + i + 1) % len(c.workers)
			break
		}
		if picked == nil {
			break // every worker busy or backing off; retry next tick
		}
		c.leaseSeq++
		s.state = ShardOffering
		s.leaseID = fmt.Sprintf("l%05d", c.leaseSeq)
		s.worker = picked
		picked.active++
		c.leases[s.leaseID] = &leaseRec{shard: s, worker: picked, charged: true}
		grants = append(grants, grant{shard: s, worker: picked})
	}
	return grants
}

// offer performs one lease offer round trip and applies the outcome.
func (c *Coordinator) offer(s *shardState, w *workerState) {
	c.mu.Lock()
	offer := LeaseOffer{
		LeaseID:     s.leaseID,
		ShardID:     s.ID,
		PointLo:     s.Lo,
		PointHi:     s.Hi,
		Spec:        c.spec,
		SpecHash:    c.specHash,
		Lanes:       c.cfg.Lanes,
		TTLMs:       int(c.cfg.leaseTTL() / time.Millisecond),
		Coordinator: c.cfg.Advertise,
		Worker:      w.url,
	}
	c.mu.Unlock()

	body, err := json.Marshal(&offer)
	if err != nil {
		panic("cluster: marshaling lease offer: " + err.Error()) // plain data, cannot fail
	}
	resp, err := c.client.Post(w.url+"/v1/shard/lease", "application/json", bytes.NewReader(body))
	var status int
	var retryAfter time.Duration
	if err == nil {
		status = resp.StatusCode
		if ra, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && ra >= 0 {
			retryAfter = time.Duration(ra) * time.Second
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}

	now := time.Now()
	c.mu.Lock()
	rec := c.leases[offer.LeaseID]
	if rec == nil || s.state != ShardOffering || s.leaseID != offer.LeaseID {
		// The shard completed meanwhile (late result from a previous
		// lease) or the run is finishing; release the charge if any.
		if rec != nil {
			c.uncharge(rec)
			delete(c.leases, offer.LeaseID)
		}
		c.mu.Unlock()
		return
	}
	var evs []Event
	switch {
	case err == nil && status == http.StatusOK:
		s.state = ShardLeased
		s.attempts++
		s.deadline = now.Add(c.cfg.leaseTTL())
		w.consecFails = 0
		w.lastContact = now
		c.counters.LeasesGranted++
		if s.attempts > 1 {
			c.counters.LeasesReassigned++
		}
		evs = append(evs, Event{Type: "granted", Shard: s.ID, Worker: w.url, Attempt: s.attempts})
	case err == nil && status == http.StatusTooManyRequests:
		// Backpressure, not failure: the worker's shard slots are full.
		// Honor its Retry-After and re-offer (to anyone) later.
		c.uncharge(rec)
		delete(c.leases, offer.LeaseID)
		s.state = ShardPending
		s.leaseID = ""
		s.worker = nil
		if retryAfter <= 0 {
			retryAfter = c.cfg.backoff()
		}
		w.backoffUntil = now.Add(retryAfter)
		w.lastContact = now
		c.counters.OffersBusy++
		evs = append(evs, Event{Type: "busy", Shard: s.ID, Worker: w.url})
	default:
		// Connection failure or an unexpected status: back the worker off
		// exponentially and re-offer the shard. Neither consumes a lease
		// attempt — the shard never started.
		c.uncharge(rec)
		delete(c.leases, offer.LeaseID)
		s.state = ShardPending
		s.leaseID = ""
		s.worker = nil
		backoff := c.cfg.backoff() << min(w.consecFails, 5)
		w.backoffUntil = now.Add(backoff)
		w.consecFails++
		c.counters.OfferErrors++
		msg := fmt.Sprintf("status %d", status)
		if err != nil {
			msg = err.Error()
		}
		evs = append(evs, Event{Type: "offer-error", Shard: s.ID, Worker: w.url, Err: msg})
	}
	c.mu.Unlock()
	for _, ev := range evs {
		c.emit(ev)
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var hb Heartbeat
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&hb); err != nil {
		http.Error(w, "cluster: malformed heartbeat: "+err.Error(), http.StatusBadRequest)
		return
	}
	now := time.Now()
	c.mu.Lock()
	rec := c.leases[id]
	// An Offering lease is live too: the worker's first heartbeat can
	// race the coordinator's processing of its own lease ack.
	live := rec != nil && !c.finished && rec.shard.leaseID == id &&
		(rec.shard.state == ShardLeased || rec.shard.state == ShardOffering)
	if live {
		rec.shard.deadline = now.Add(c.cfg.leaseTTL())
		rec.worker.lastContact = now
	}
	ttl := int(c.cfg.leaseTTL() / time.Millisecond)
	c.mu.Unlock()
	if !live {
		writeJSON(w, http.StatusGone, map[string]string{"error": "no such lease " + id})
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatAck{LeaseID: id, TTLMs: ttl})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var res ShardResult
	if err := json.NewDecoder(io.LimitReader(r.Body, 256<<20)).Decode(&res); err != nil {
		http.Error(w, "cluster: malformed result: "+err.Error(), http.StatusBadRequest)
		return
	}
	if res.LeaseID == "" {
		res.LeaseID = id
	}
	status, body, evs := c.importResult(&res)
	for _, ev := range evs {
		c.emit(ev)
	}
	writeJSON(w, status, body)
}

// importResult applies one shard result under the lock and returns the
// HTTP outcome plus the events to emit after unlocking.
func (c *Coordinator) importResult(res *ShardResult) (int, any, []Event) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var evs []Event
	s := c.byID[res.ShardID]
	if s == nil {
		return http.StatusNotFound, map[string]string{"error": "no such shard " + res.ShardID}, nil
	}
	rec := c.leases[res.LeaseID]
	if rec != nil {
		rec.worker.lastContact = now
		// A worker can run a small shard and deliver its result before
		// the coordinator even processes the lease ack. A result for an
		// in-flight offer IS the acceptance: count the grant here, and
		// the ack path — which will find the lease record gone — skips.
		if rec.shard == s && s.state == ShardOffering && s.leaseID == res.LeaseID {
			s.state = ShardLeased
			s.attempts++
			rec.worker.consecFails = 0
			c.counters.LeasesGranted++
			if s.attempts > 1 {
				c.counters.LeasesReassigned++
			}
			evs = append(evs, Event{Type: "granted", Shard: s.ID, Worker: rec.worker.url, Attempt: s.attempts})
		}
		c.uncharge(rec)
		delete(c.leases, res.LeaseID)
	}
	if c.finished || s.state == ShardCompleted || s.state == ShardFailed {
		// Idempotent: a slow worker delivering after reassignment (or
		// after the run ended) adds nothing, but its delivery is normal.
		c.counters.ResultsDuplicate++
		return http.StatusOK, map[string]string{"state": "duplicate"},
			append(evs, Event{Type: "result-duplicate", Shard: s.ID, Worker: res.Worker})
	}
	if rec == nil {
		// The lease expired but the shard is still open: the samples are
		// pure functions of their seeds, so a late result is as good as a
		// fresh one. Import it; the replacement lease (if any) will
		// deliver an identical duplicate.
		c.counters.ResultsLate++
		evs = append(evs, Event{Type: "result-late", Shard: s.ID, Worker: res.Worker})
	}
	if res.Error != "" {
		// Shard-level failure on the worker. Costs the attempt its lease
		// already consumed; retry if budget remains.
		if s.leaseID == res.LeaseID {
			s.leaseID = ""
			s.worker = nil
		}
		if ev, failed := c.returnToPending(s, fmt.Sprintf("worker %s: %s", res.Worker, res.Error)); failed {
			evs = append(evs, ev)
		} else {
			evs = append(evs, Event{Type: "result-error", Shard: s.ID, Worker: res.Worker, Err: res.Error})
		}
		return http.StatusOK, map[string]string{"state": "retry"}, evs
	}
	added, err := c.set.AddAll(res.Samples)
	if err != nil {
		// A conflicting sample can only mean corruption or an engine
		// mismatch; no retry can fix it, so the campaign fails loudly.
		if c.failure == nil {
			c.failure = fmt.Errorf("cluster: result for shard %s from %s: %w", s.ID, res.Worker, err)
		}
		return http.StatusConflict, map[string]string{"error": err.Error()}, evs
	}
	if !c.set.RangeComplete(s.Lo, s.Hi) {
		if s.leaseID == res.LeaseID {
			s.leaseID = ""
			s.worker = nil
		}
		if ev, failed := c.returnToPending(s, fmt.Sprintf("worker %s delivered an incomplete shard", res.Worker)); failed {
			evs = append(evs, ev)
		}
		return http.StatusOK, map[string]string{"state": "retry"}, evs
	}
	if c.ck != nil {
		for _, sm := range added {
			c.ck.Append(sm)
		}
		c.ck.SetLeases(c.leaseSnapshotLocked())
		if err := c.ck.Flush(false); err != nil {
			if c.failure == nil {
				c.failure = err
			}
			return http.StatusInternalServerError, map[string]string{"error": err.Error()}, evs
		}
	}
	s.state = ShardCompleted
	s.leaseID = ""
	s.worker = nil
	c.counters.ShardsCompleted++
	evs = append(evs, Event{Type: "completed", Shard: s.ID, Worker: res.Worker, Attempt: s.attempts})
	c.progressf("cluster: shard %s (points [%d,%d)) completed by %s, %d/%d shards done\n",
		s.ID, s.Lo, s.Hi, res.Worker, c.completedLocked(), len(c.shards))
	return http.StatusOK, map[string]string{"state": "completed"}, evs
}

// leaseSnapshotLocked renders the lease table for manifest bookkeeping.
func (c *Coordinator) leaseSnapshotLocked() []campaign.ShardLease {
	out := make([]campaign.ShardLease, len(c.shards))
	for i, s := range c.shards {
		worker := ""
		if s.worker != nil {
			worker = s.worker.url
		}
		out[i] = campaign.ShardLease{
			ID: s.ID, PointLo: s.Lo, PointHi: s.Hi,
			State: s.state, Attempts: s.attempts, Worker: worker,
		}
	}
	return out
}

// finish flushes the checkpoint and builds the final report.
func (c *Coordinator) finish() (*campaign.Report, error) {
	c.mu.Lock()
	c.finished = true
	report := c.set.Report()
	var err error
	if c.ck != nil {
		c.ck.SetLeases(c.leaseSnapshotLocked())
		err = c.ck.Flush(c.set.Complete())
		if cerr := c.ck.Close(); err == nil {
			err = cerr
		}
		c.ck = nil
	}
	samples, completed, total := c.set.Len(), c.completedLocked(), len(c.shards)
	counters := c.counters
	c.mu.Unlock()
	state := "complete"
	if !report.Complete {
		state = "incomplete (interrupted or failed; resume to finish)"
	}
	c.progressf("cluster: %s: %d samples over %d/%d shards (%d leases granted, %d expired, %d reassigned), %s\n",
		report.Name, samples, completed, total,
		counters.LeasesGranted, counters.LeasesExpired, counters.LeasesReassigned, state)
	return report, err
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"cluster": c.Status()})
}

// Status snapshots the lease table, worker liveness and counters.
func (c *Coordinator) Status() Status {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Name:     c.spec.Name,
		SpecHash: c.specHash,
		Done:     c.finished,
		Samples:  c.set.Len(),
		Counters: c.counters,
	}
	for _, s := range c.shards {
		worker := ""
		if s.worker != nil {
			worker = s.worker.url
		}
		st.Shards = append(st.Shards, ShardStatus{
			ID: s.ID, Lo: s.Lo, Hi: s.Hi, State: s.state, Attempts: s.attempts, Worker: worker,
		})
	}
	for _, w := range c.workers {
		ws := WorkerStatus{URL: w.url, ActiveLeases: w.active, ConsecFails: w.consecFails, LastContactMs: -1}
		switch {
		case w.active > 0:
			ws.State = "busy"
		case now.Before(w.backoffUntil):
			ws.State = "backoff"
		default:
			ws.State = "idle"
		}
		if !w.lastContact.IsZero() {
			ws.LastContactMs = now.Sub(w.lastContact).Milliseconds()
		}
		st.Workers = append(st.Workers, ws)
	}
	return st
}

func (c *Coordinator) emit(ev Event) {
	if ev.Type != "" && c.cfg.OnEvent != nil {
		c.cfg.OnEvent(ev)
	}
}

func (c *Coordinator) progressf(format string, args ...any) {
	if c.cfg.Progress != nil {
		fmt.Fprintf(c.cfg.Progress, format, args...)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
