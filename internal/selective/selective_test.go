package selective

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/radio"
	"repro/internal/xrand"
)

func TestFamilyBasics(t *testing.T) {
	f := NewFamily(5, [][]int32{{3, 1}, {2}, {}})
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	if !f.Contains(0, 1) || !f.Contains(0, 3) || f.Contains(0, 2) {
		t.Fatal("Contains wrong on set 0")
	}
	if f.Contains(2, 0) {
		t.Fatal("empty set contains something")
	}
}

func TestSelectsSubset(t *testing.T) {
	f := NewFamily(6, [][]int32{{0, 1, 2}, {3}, {4, 5}})
	// {1}: selected by set 0 (single intersection).
	if ok, i := f.SelectsSubset([]int32{1}); !ok || i != 0 {
		t.Fatalf("singleton not selected: ok=%v i=%d", ok, i)
	}
	// {0,1}: set 0 intersects twice, sets 1,2 not at all -> not selected.
	if ok, _ := f.SelectsSubset([]int32{0, 1}); ok {
		t.Fatal("{0,1} wrongly selected")
	}
	// {0,3}: set 0 = {0,1,2} intersects exactly once (at 0).
	if ok, i := f.SelectsSubset([]int32{0, 3}); !ok || i != 0 {
		t.Fatalf("{0,3}: ok=%v i=%d", ok, i)
	}
	// {0,1,4,5}: set 0 hits twice, set 2 hits twice, set 1 misses.
	if ok, _ := f.SelectsSubset([]int32{0, 1, 4, 5}); ok {
		t.Fatal("{0,1,4,5} wrongly selected")
	}
}

func TestRandomFamilySelectsSingletons(t *testing.T) {
	f := Random(100, 8, 4, xrand.New(1))
	for v := int32(0); v < 100; v++ {
		if ok, _ := f.SelectsSubset([]int32{v}); !ok {
			t.Fatalf("singleton {%d} not selected", v)
		}
	}
}

func TestRandomFamilySelectsRandomSubsets(t *testing.T) {
	// Empirical selectivity check: random subsets of size <= k must be
	// selected with overwhelming frequency when reps = Θ(log n).
	const n = 200
	const k = 16
	rng := xrand.New(2)
	reps := 2 * int(math.Ceil(math.Log2(n)))
	f := Random(n, k, reps, rng)
	failures := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		size := 1 + rng.Intn(k)
		s := rng.Sample(n, size)
		if ok, _ := f.SelectsSubset(s); !ok {
			failures++
		}
	}
	if failures > trials/100 {
		t.Fatalf("%d/%d random subsets unselected", failures, trials)
	}
}

func TestRandomFamilySizeScales(t *testing.T) {
	f := Random(1000, 32, 5, xrand.New(3))
	// Scales: 1, 2, 4, ..., 64 -> 1 + 6*reps sets.
	want := 1 + 6*5
	if f.Len() != want {
		t.Fatalf("family size %d, want %d", f.Len(), want)
	}
}

func TestRandomFamilyClamps(t *testing.T) {
	f := Random(10, 0, 0, xrand.New(4))
	if f.Len() < 1 {
		t.Fatal("degenerate family empty")
	}
	f = Random(10, 100, 1, xrand.New(5))
	if f.Len() < 1 {
		t.Fatal("k > n family empty")
	}
}

func TestProtocolBroadcastsOnGnp(t *testing.T) {
	const n = 300
	d := 2 * math.Log(n)
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(6), 50)
	if !ok {
		t.Skip("no connected sample")
	}
	reps := int(math.Ceil(math.Log2(n)))
	// k should exceed the max degree for full worst-case coverage; for
	// G(n,p) k ≈ 4d suffices in practice.
	f := Random(n, int(4*d), reps, xrand.New(7))
	p := &Protocol{F: f}
	res := radio.RunProtocol(g, 0, p, 200*f.Len(), xrand.New(8))
	if !res.Completed {
		t.Fatalf("selective-family broadcast incomplete: %d/%d", res.Informed, n)
	}
}

func TestProtocolDeterministic(t *testing.T) {
	f := Random(50, 8, 3, xrand.New(9))
	p := &Protocol{F: f}
	rng := xrand.New(10)
	for round := 1; round <= 2*f.Len(); round++ {
		for v := int32(0); v < 50; v++ {
			a := p.Transmit(v, round, 0, rng)
			b := p.Transmit(v, round, 0, rng)
			if a != b {
				t.Fatal("protocol is not deterministic")
			}
			// Periodicity.
			c := p.Transmit(v, round+f.Len(), 0, rng)
			if a != c {
				t.Fatal("protocol is not periodic in the family length")
			}
		}
	}
}

func TestProtocolEmptyFamily(t *testing.T) {
	p := &Protocol{F: NewFamily(5, nil)}
	if p.Transmit(0, 1, 0, xrand.New(1)) {
		t.Fatal("empty family transmitted")
	}
}

func BenchmarkSelectsSubset(b *testing.B) {
	rng := xrand.New(1)
	f := Random(1000, 32, 10, rng)
	s := rng.Sample(1000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SelectsSubset(s)
	}
}
