// Package selective implements selective families, the classical
// combinatorial tool for deterministic radio broadcasting in unknown
// worst-case networks, cited by the paper (§1.1: "a commonly used tool to
// handle this problem is the concept of selective families of sets").
//
// A family F of subsets of [n] is (n,k)-selective if for every non-empty
// subset S ⊆ [n] with |S| ≤ k there is a set F ∈ F that intersects S in
// exactly one element ("F selects S"). Cycling through such a family makes
// a deterministic broadcast protocol: whenever the set of informed
// neighbours of an uninformed node has size ≤ k, some round lets exactly
// one of them transmit alone, so the node receives.
//
// The package provides the standard randomized construction of size
// O(k·log(n/k)·log n) and a protocol adapter used as the deterministic
// distributed baseline in experiment E5.
package selective

import (
	"sort"

	"repro/internal/radio"
	"repro/internal/xrand"
)

// Family is an ordered list of subsets of [0, N).
type Family struct {
	N    int
	Sets [][]int32
	// membership[i] is a lookup for Sets[i] built lazily by Contains.
	membership []map[int32]bool
}

// NewFamily returns a family over ground set [0, n) with the given sets.
// Each set is copied and sorted.
func NewFamily(n int, sets [][]int32) *Family {
	f := &Family{N: n, Sets: make([][]int32, len(sets))}
	for i, s := range sets {
		c := make([]int32, len(s))
		copy(c, s)
		sort.Slice(c, func(a, b int) bool { return c[a] < c[b] })
		f.Sets[i] = c
	}
	return f
}

// Len returns the number of sets.
func (f *Family) Len() int { return len(f.Sets) }

// Contains reports whether Sets[i] contains v.
func (f *Family) Contains(i int, v int32) bool {
	s := f.Sets[i]
	j := sort.Search(len(s), func(k int) bool { return s[k] >= v })
	return j < len(s) && s[j] == v
}

// SelectsSubset reports whether some set of the family intersects subset
// in exactly one element, and returns the index of the first such set
// (or -1).
func (f *Family) SelectsSubset(subset []int32) (bool, int) {
	in := make(map[int32]bool, len(subset))
	for _, v := range subset {
		in[v] = true
	}
	for i, s := range f.Sets {
		count := 0
		for _, v := range s {
			if in[v] {
				count++
				if count > 1 {
					break
				}
			}
		}
		if count == 1 {
			return true, i
		}
	}
	return false, -1
}

// Random builds the standard probabilistic (n,k)-selective family: for
// each scale j = 1, 2, 4, …, ≥ k it adds reps sets in which every element
// of [n] appears independently with probability 1/j. With
// reps = Θ(log n) the family is (n,k)-selective w.h.p.; the tests verify
// selectivity empirically on random subsets.
func Random(n, k, reps int, rng *xrand.Rand) *Family {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if reps < 1 {
		reps = 1
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	var sets [][]int32
	for j := 1; j <= 2*k; j *= 2 {
		if j == 1 {
			// Scale 1: the full ground set selects every singleton.
			full := make([]int32, n)
			copy(full, all)
			sets = append(sets, full)
			continue
		}
		for r := 0; r < reps; r++ {
			sets = append(sets, rng.SubsetEach(nil, all, 1/float64(j)))
		}
	}
	return NewFamily(n, sets)
}

// Protocol adapts a family to a deterministic radio.Protocol: in round t,
// an informed node v transmits iff v belongs to set (t-1) mod Len().
// Combined with the radio engine this is the classical deterministic
// unknown-topology broadcast baseline.
type Protocol struct {
	F *Family
}

// Transmit implements radio.Protocol.
func (p *Protocol) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	if p.F.Len() == 0 {
		return false
	}
	return p.F.Contains((round-1)%p.F.Len(), v)
}

var _ radio.Protocol = (*Protocol)(nil)
