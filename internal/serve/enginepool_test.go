package serve

import (
	"context"
	"net/http"
	"runtime"
	"testing"

	"repro/internal/exec"
)

// Engine-pooling acceptance tests: repeated requests against one cached
// graph reuse one simulation engine through the execution layer's
// per-graph pool (exec pool hits in /metrics), eviction and rebuilds
// never hand out engines for stale graph pointers, and a steady-state
// request allocates far less than the O(n) engine it no longer builds.
// The pool counters live on the process-wide executor, so assertions
// compare snapshot deltas, not absolutes.

func poolReq(seed uint64) *RunRequest {
	return &RunRequest{Generator: "gnp-connected", N: 2000, D: 10, GraphSeed: 1, Algo: "distributed", Seed: seed}
}

func TestEnginePoolReuse(t *testing.T) {
	s := NewServer(Config{})
	defer s.Shutdown(0)
	before := exec.Snapshot()
	for i := 0; i < 5; i++ {
		req := poolReq(uint64(i + 1))
		if err := req.validate(&s.cfg); err != nil {
			t.Fatal(err)
		}
		sim, err := s.prepare(req)
		if err != nil {
			t.Fatal(err)
		}
		if sim.engine == nil {
			t.Fatal("protocol request must check out a pooled engine")
		}
		res, err := sim.run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("broadcast must complete")
		}
	}
	after := exec.Snapshot()
	if misses := after.Scalar.PoolMisses - before.Scalar.PoolMisses; misses != 1 {
		t.Errorf("pool_misses delta = %d, want 1 (one build, then reuse)", misses)
	}
	if hits := after.Scalar.PoolHits - before.Scalar.PoolHits; hits != 4 {
		t.Errorf("pool_hits delta = %d, want 4", hits)
	}
}

// TestEnginePoolSameResult: a pooled-engine rerun of the same request is
// bit-identical to the fresh-engine first run — SetSources fully resets
// the engine.
func TestEnginePoolSameResult(t *testing.T) {
	s := NewServer(Config{})
	defer s.Shutdown(0)
	var rounds [2]int
	for i := range rounds {
		req := poolReq(42)
		if err := req.validate(&s.cfg); err != nil {
			t.Fatal(err)
		}
		sim, err := s.prepare(req)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rounds[i] = res.Rounds
	}
	if rounds[0] != rounds[1] {
		t.Errorf("pooled rerun diverged: %d vs %d rounds", rounds[0], rounds[1])
	}
}

// TestEnginePoolEviction: once the graph is evicted from the LRU, its
// pooled engine must not be handed out for the rebuilt (different
// pointer) instance.
func TestEnginePoolEviction(t *testing.T) {
	s := NewServer(Config{CacheEntries: 1})
	defer s.Shutdown(0)
	before := exec.Snapshot()
	run := func(req *RunRequest) {
		t.Helper()
		if err := req.validate(&s.cfg); err != nil {
			t.Fatal(err)
		}
		sim, err := s.prepare(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.run(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	a := poolReq(1)
	run(a)
	b := poolReq(1)
	b.GraphSeed = 2 // different graph: evicts a's entry from the size-1 LRU
	run(b)
	run(poolReq(2)) // a's graph rebuilt at a new pointer
	after := exec.Snapshot()
	if hits := after.Scalar.PoolHits - before.Scalar.PoolHits; hits != 0 {
		t.Errorf("pool_hits delta = %d, want 0: every request hit a fresh or rebuilt graph", hits)
	}
	if misses := after.Scalar.PoolMisses - before.Scalar.PoolMisses; misses != 3 {
		t.Errorf("pool_misses delta = %d, want 3", misses)
	}
}

func TestMetricsReportEnginePool(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	before := exec.Snapshot()
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/run", RunRequest{N: 500, D: 10, GraphSeed: 1, Seed: uint64(i + 1)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeBody[Metrics](t, resp)
	if misses := m.Exec.Scalar.PoolMisses - before.Scalar.PoolMisses; misses < 1 {
		t.Error("metrics must report at least one engine pool miss")
	}
	if hits := m.Exec.Scalar.PoolHits - before.Scalar.PoolHits; hits < 2 {
		t.Errorf("pool_hits delta = %d, want >= 2 after 3 same-graph runs", hits)
	}
	if runs := m.Exec.Scalar.Runs - before.Scalar.Runs; runs < 3 {
		t.Errorf("scalar runs delta = %d, want >= 3", runs)
	}
}

// TestRunSteadyStateAllocs: with the graph cached and an engine pooled,
// a simulation request's allocations must stay far below the O(n)
// informed/eligible state a fresh engine would cost (n=50000 nodes is
// several hundred KiB of engine; the steady-state path should stay under
// a small fixed budget).
func TestRunSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	s := NewServer(Config{})
	defer s.Shutdown(0)
	run := func(seed uint64) {
		req := poolReq(seed)
		req.N = 50000
		if err := req.validate(&s.cfg); err != nil {
			t.Fatal(err)
		}
		sim, err := s.prepare(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.run(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	run(1) // warm: builds the graph and the engine
	run(2) // second warm run settles any lazily grown engine scratch
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const trials = 5
	for i := 0; i < trials; i++ {
		run(uint64(i + 3))
	}
	runtime.ReadMemStats(&after)
	perRun := (after.TotalAlloc - before.TotalAlloc) / trials
	// A fresh n=50000 engine allocates > 400 KiB (informed, informedAt,
	// hits, eligible lists). The pooled steady state is a handful of
	// option closures and small slices.
	if perRun > 64*1024 {
		t.Errorf("steady-state request allocates %d B, want <= 64 KiB (engine not reused?)", perRun)
	}
}
