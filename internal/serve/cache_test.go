package serve

import (
	"sync"
	"testing"
)

// TestCacheSingleflight is the exactly-one-build check: N concurrent Gets
// for the same instance coalesce into a single generation — one miss,
// N-1 hits/coalesced waiters, and every caller gets the same *Graph.
// Run under -race this also proves the coalescing is synchronised.
func TestCacheSingleflight(t *testing.T) {
	c := NewGraphCache(4)
	key := GraphKey{Generator: "gnp-connected", N: 500, D: 8, Seed: 1}

	const callers = 16
	graphs := make([]any, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := c.Get(key)
			if err != nil {
				t.Error(err)
				return
			}
			graphs[i] = g
		}(i)
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if graphs[i] != graphs[0] {
			t.Fatalf("caller %d got a different graph instance", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 build", st.Misses)
	}
	if st.Hits+st.Coalesced != callers-1 {
		t.Fatalf("hits (%d) + coalesced (%d) = %d, want %d", st.Hits, st.Coalesced, st.Hits+st.Coalesced, callers-1)
	}
	if st.Size != 1 {
		t.Fatalf("cache size = %d, want 1", st.Size)
	}
}

// TestCacheLRUEviction: inserting past capacity evicts the least
// recently used key, which then rebuilds on the next Get.
func TestCacheLRUEviction(t *testing.T) {
	c := NewGraphCache(2)
	k := func(seed uint64) GraphKey { return GraphKey{Generator: "gnp", N: 50, D: 4, Seed: seed} }

	if _, err := c.Get(k(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(k(2)); err != nil {
		t.Fatal(err)
	}
	// Touch 1 so 2 is the LRU victim.
	if _, err := c.Get(k(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(k(3)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("evictions = %d size = %d, want 1 and 2", st.Evictions, st.Size)
	}
	// 2 was evicted: getting it again is a miss; 1 survived: a hit.
	before := c.Stats()
	if _, err := c.Get(k(1)); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != before.Hits+1 {
		t.Fatal("key 1 should have survived eviction")
	}
	if _, err := c.Get(k(2)); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Misses != before.Misses+1 {
		t.Fatal("key 2 should have been evicted and rebuilt")
	}
}

// TestCacheDeterministicInstances: distinct keys yield distinct graphs,
// and a key identifies one deterministic instance.
func TestCacheDeterministicInstances(t *testing.T) {
	c := NewGraphCache(8)
	a, err := c.Get(GraphKey{Generator: "gnp", N: 100, D: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(GraphKey{Generator: "gnp", N: 100, D: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different seeds returned the same cached graph")
	}
	if a.N() != 100 || b.N() != 100 {
		t.Fatalf("wrong graph sizes %d, %d", a.N(), b.N())
	}
}

// TestCacheUnknownGenerator: build failures propagate and are not cached.
func TestCacheUnknownGenerator(t *testing.T) {
	c := NewGraphCache(2)
	if _, err := c.Get(GraphKey{Generator: "nope", N: 10, D: 1, Seed: 1}); err == nil {
		t.Fatal("unknown generator did not error")
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("failed build was cached (size %d)", st.Size)
	}
}
