package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"repro"
)

// ErrGraphUnavailable marks a graph request the generator cannot satisfy
// — for "gnp-connected", no connected sample within the attempt budget at
// the requested (n, d). The server maps it to 422: the request is
// well-formed but the instance does not exist.
var ErrGraphUnavailable = errors.New("serve: graph unavailable")

// GraphKey identifies one deterministic graph instance. Two requests with
// equal keys always denote the identical graph (generators are pure
// functions of the key), which is what makes caching sound.
type GraphKey struct {
	Generator string // "gnp" | "gnp-connected"
	N         int
	D         float64
	Seed      uint64
}

// GraphCache is a size-bounded LRU of generated graphs with singleflight
// deduplication: concurrent Get calls for the same key build the graph
// once and share the result. Graphs are immutable after generation
// (engines keep their own mutable state), so a cached *Graph is safe to
// share across concurrent simulations.
type GraphCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[GraphKey]*list.Element
	order    *list.List // front = most recently used
	inflight map[GraphKey]*buildCall

	// onEvict, when set, is called (outside the lock) with each graph
	// dropped from the LRU — the server points it at the execution
	// layer's Forget so pooled engines don't outlive their graph.
	onEvict func(*repro.Graph)

	hits, misses, coalesced, evictions int64
}

type cacheEntry struct {
	key GraphKey
	g   *repro.Graph
}

// buildCall is one in-flight graph build; done is closed when g/err are
// set.
type buildCall struct {
	done chan struct{}
	g    *repro.Graph
	err  error
}

// NewGraphCache returns a cache holding at most capacity graphs
// (capacity < 1 is treated as 1).
func NewGraphCache(capacity int) *GraphCache {
	if capacity < 1 {
		capacity = 1
	}
	return &GraphCache{
		capacity: capacity,
		entries:  make(map[GraphKey]*list.Element),
		order:    list.New(),
		inflight: make(map[GraphKey]*buildCall),
	}
}

// Get returns the graph for key, building it on a miss. Concurrent
// misses on the same key coalesce into one build: every caller blocks on
// the same buildCall and shares its result. Failed builds are not cached
// — a later Get retries.
func (c *GraphCache) Get(key GraphKey) (*repro.Graph, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*cacheEntry).g, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-call.done
		return call.g, call.err
	}
	call := &buildCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.misses++
	c.mu.Unlock()

	call.g, call.err = buildGraph(key)

	var evicted []*repro.Graph
	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, g: call.g})
		for c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			ent := oldest.Value.(*cacheEntry)
			delete(c.entries, ent.key)
			c.evictions++
			evicted = append(evicted, ent.g)
		}
	}
	c.mu.Unlock()
	close(call.done)
	if c.onEvict != nil {
		for _, g := range evicted {
			c.onEvict(g)
		}
	}
	return call.g, call.err
}

// Stats returns a consistent snapshot of the cache counters and size.
func (c *GraphCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.order.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
	}
}

// CacheStats is the /metrics view of a GraphCache. Engine reuse is the
// execution layer's job, so its pool counters live in Metrics.Exec
// (exec.Stats), not here.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
}

// buildGraph deterministically generates the graph a key denotes.
func buildGraph(key GraphKey) (*repro.Graph, error) {
	rng := repro.NewRand(key.Seed)
	switch key.Generator {
	case "gnp":
		return repro.GnpDegree(key.N, key.D, rng), nil
	case "gnp-connected":
		g, ok := repro.ConnectedGnpDegree(key.N, key.D, rng)
		if !ok {
			return nil, fmt.Errorf("%w: no connected G(n=%d, d=%g) sample; raise d", ErrGraphUnavailable, key.N, key.D)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("%w: unknown generator %q", ErrGraphUnavailable, key.Generator)
	}
}
