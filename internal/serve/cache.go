package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"repro"
)

// ErrGraphUnavailable marks a graph request the generator cannot satisfy
// — for "gnp-connected", no connected sample within the attempt budget at
// the requested (n, d). The server maps it to 422: the request is
// well-formed but the instance does not exist.
var ErrGraphUnavailable = errors.New("serve: graph unavailable")

// GraphKey identifies one deterministic graph instance. Two requests with
// equal keys always denote the identical graph (generators are pure
// functions of the key), which is what makes caching sound.
type GraphKey struct {
	Generator string // "gnp" | "gnp-connected"
	N         int
	D         float64
	Seed      uint64
}

// GraphCache is a size-bounded LRU of generated graphs with singleflight
// deduplication: concurrent Get calls for the same key build the graph
// once and share the result. Graphs are immutable after generation
// (engines keep their own mutable state), so a cached *Graph is safe to
// share across concurrent simulations.
type GraphCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[GraphKey]*list.Element
	order    *list.List // front = most recently used
	inflight map[GraphKey]*buildCall

	hits, misses, coalesced, evictions int64
	poolHits, poolMisses               int64
}

type cacheEntry struct {
	key GraphKey
	g   *repro.Graph
	// engines pools idle simulation engines built for g, so steady-state
	// requests against a cached graph skip the O(n) engine allocation.
	// An engine is only handed out for the exact graph pointer it was
	// built on (see EngineFor), and sync.Pool lets the GC reclaim idle
	// engines under memory pressure.
	engines sync.Pool
}

// buildCall is one in-flight graph build; done is closed when g/err are
// set.
type buildCall struct {
	done chan struct{}
	g    *repro.Graph
	err  error
}

// NewGraphCache returns a cache holding at most capacity graphs
// (capacity < 1 is treated as 1).
func NewGraphCache(capacity int) *GraphCache {
	if capacity < 1 {
		capacity = 1
	}
	return &GraphCache{
		capacity: capacity,
		entries:  make(map[GraphKey]*list.Element),
		order:    list.New(),
		inflight: make(map[GraphKey]*buildCall),
	}
}

// Get returns the graph for key, building it on a miss. Concurrent
// misses on the same key coalesce into one build: every caller blocks on
// the same buildCall and shares its result. Failed builds are not cached
// — a later Get retries.
func (c *GraphCache) Get(key GraphKey) (*repro.Graph, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*cacheEntry).g, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-call.done
		return call.g, call.err
	}
	call := &buildCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.misses++
	c.mu.Unlock()

	call.g, call.err = buildGraph(key)

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, g: call.g})
		for c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(call.done)
	return call.g, call.err
}

// EngineFor returns a simulation engine for g, reusing a pooled one when
// g is the graph currently cached under key (pointer identity — an
// engine must never run on a different graph than it was built for, even
// a structurally identical rebuild). On a pool miss, or when key has
// been evicted or rebuilt, it allocates a fresh engine. Return the
// engine with PutEngine when the run is over.
func (c *GraphCache) EngineFor(key GraphKey, g *repro.Graph) *repro.Engine {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.g == g {
			if e, _ := ent.engines.Get().(*repro.Engine); e != nil {
				c.poolHits++
				c.mu.Unlock()
				return e
			}
		}
	}
	c.poolMisses++
	c.mu.Unlock()
	return repro.NewEngine(g, 0)
}

// PutEngine returns an engine obtained from EngineFor to the pool. An
// engine whose graph is no longer the cached instance for key (evicted,
// or rebuilt after eviction) is dropped for the GC instead — pooling it
// could hand a future request an engine for a stale graph pointer.
func (c *GraphCache) PutEngine(key GraphKey, e *repro.Engine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.g == e.Graph() {
			ent.engines.Put(e)
		}
	}
}

// Stats returns a consistent snapshot of the cache counters and size.
func (c *GraphCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:             c.order.Len(),
		Capacity:         c.capacity,
		Hits:             c.hits,
		Misses:           c.misses,
		Coalesced:        c.coalesced,
		Evictions:        c.evictions,
		EnginePoolHits:   c.poolHits,
		EnginePoolMisses: c.poolMisses,
	}
}

// CacheStats is the /metrics view of a GraphCache.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	// EnginePoolHits/Misses count EngineFor calls served from the
	// per-graph engine pool vs. falling back to a fresh allocation.
	EnginePoolHits   int64 `json:"engine_pool_hits"`
	EnginePoolMisses int64 `json:"engine_pool_misses"`
}

// buildGraph deterministically generates the graph a key denotes.
func buildGraph(key GraphKey) (*repro.Graph, error) {
	rng := repro.NewRand(key.Seed)
	switch key.Generator {
	case "gnp":
		return repro.GnpDegree(key.N, key.D, rng), nil
	case "gnp-connected":
		g, ok := repro.ConnectedGnpDegree(key.N, key.D, rng)
		if !ok {
			return nil, fmt.Errorf("%w: no connected G(n=%d, d=%g) sample; raise d", ErrGraphUnavailable, key.N, key.D)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("%w: unknown generator %q", ErrGraphUnavailable, key.Generator)
	}
}
