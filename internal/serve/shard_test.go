package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
)

// fakeCoordinator is the coordinator half of the lease protocol reduced
// to a recorder: it acks every heartbeat (or answers 410 when gone is
// set) and collects every posted result.
type fakeCoordinator struct {
	ts   *httptest.Server
	mu   sync.Mutex
	hbs  int
	gone bool

	results chan cluster.ShardResult
}

func newFakeCoordinator(t *testing.T) *fakeCoordinator {
	t.Helper()
	fc := &fakeCoordinator{results: make(chan cluster.ShardResult, 4)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shard/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		fc.mu.Lock()
		fc.hbs++
		gone := fc.gone
		fc.mu.Unlock()
		if gone {
			w.WriteHeader(http.StatusGone)
			return
		}
		writeJSON(w, http.StatusOK, cluster.HeartbeatAck{LeaseID: r.PathValue("id"), TTLMs: 300})
	})
	mux.HandleFunc("POST /v1/shard/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		var res cluster.ShardResult
		if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
			t.Errorf("fake coordinator: bad result body: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		fc.results <- res
		writeJSON(w, http.StatusOK, map[string]string{"state": "completed"})
	})
	fc.ts = httptest.NewServer(mux)
	t.Cleanup(fc.ts.Close)
	return fc
}

func (fc *fakeCoordinator) heartbeats() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.hbs
}

func (fc *fakeCoordinator) setGone() {
	fc.mu.Lock()
	fc.gone = true
	fc.mu.Unlock()
}

// shardSpec is a one-point campaign cheap enough for the lease tests.
func shardSpec() *campaign.Spec {
	return &campaign.Spec{
		Name:   "shard-test",
		Seed:   11,
		Trials: 3,
		Points: []campaign.PointSpec{
			{ID: "a", X: 60, Trial: campaign.TrialSpec{Kind: "distributed", N: 60, D: 8}},
		},
	}
}

func offerFor(spec *campaign.Spec, coordinator string, ttlMs int) cluster.LeaseOffer {
	return cluster.LeaseOffer{
		LeaseID:     "l00001",
		ShardID:     "s000",
		PointLo:     0,
		PointHi:     len(spec.Points),
		Spec:        spec,
		SpecHash:    spec.Hash(),
		TTLMs:       ttlMs,
		Coordinator: coordinator,
		Worker:      "http://worker-under-test",
	}
}

// TestShardLeaseHappyPath: an admitted offer runs the shard, heartbeats
// the lease while it runs, and delivers the complete sample range sorted
// in grid order; /metrics records the completion.
func TestShardLeaseHappyPath(t *testing.T) {
	fc := newFakeCoordinator(t)
	_, ts := newTestServer(t, Config{ShardWorkers: 1, ShardStartDelay: 150 * time.Millisecond})
	spec := shardSpec()

	resp := postJSON(t, ts.URL+"/v1/shard/lease", offerFor(spec, fc.ts.URL, 120))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease offer: status %d", resp.StatusCode)
	}
	ack := decodeBody[cluster.LeaseAck](t, resp)
	if ack.State != "accepted" || ack.LeaseID != "l00001" {
		t.Fatalf("unexpected ack %+v", ack)
	}

	var res cluster.ShardResult
	select {
	case res = <-fc.results:
	case <-time.After(30 * time.Second):
		t.Fatal("no shard result delivered")
	}
	if res.Error != "" || res.LeaseID != "l00001" || res.ShardID != "s000" {
		t.Fatalf("unexpected result header %+v", res)
	}
	set := campaign.NewSampleSet(spec)
	for i, s := range res.Samples {
		if i > 0 && !(res.Samples[i-1].Point < s.Point ||
			(res.Samples[i-1].Point == s.Point && res.Samples[i-1].Trial < s.Trial)) {
			t.Fatalf("samples not in grid order at %d: %+v after %+v", i, s, res.Samples[i-1])
		}
		if _, err := set.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if !set.RangeComplete(0, len(spec.Points)) {
		t.Fatalf("result with %d samples does not complete the leased range", len(res.Samples))
	}
	// The start delay (150ms) spans at least one heartbeat interval
	// (TTL 120ms / 3 = 40ms), so the lease was provably kept alive
	// before any trial ran.
	if fc.heartbeats() == 0 {
		t.Error("shard completed without a single heartbeat")
	}

	// The result reaches the fake coordinator a beat before the worker's
	// own bookkeeping settles; poll briefly.
	m := awaitShardMetrics(t, ts.URL, func(st ShardStats) bool {
		return st.Completed == 1 && st.Active == 0
	})
	if m.Shards.Accepted != 1 || m.Shards.Completed != 1 || m.Shards.Rejected != 0 {
		t.Errorf("shard metrics %+v, want accepted=1 completed=1", m.Shards)
	}
}

// awaitShardMetrics polls /metrics until the shard counters satisfy ok.
func awaitShardMetrics(t *testing.T, base string, ok func(ShardStats) bool) Metrics {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		m := decodeBody[Metrics](t, resp)
		if ok(m.Shards) {
			return m
		}
		select {
		case <-deadline:
			t.Fatalf("shard metrics never settled: %+v", m.Shards)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestShardLeaseBackpressure: with every shard slot busy, a lease offer
// is answered 429 + Retry-After — the signal the coordinator turns into
// backoff + re-offer — and the rejection is counted in /metrics.
func TestShardLeaseBackpressure(t *testing.T) {
	fc := newFakeCoordinator(t)
	_, ts := newTestServer(t, Config{ShardWorkers: 1, ShardStartDelay: 400 * time.Millisecond})
	spec := shardSpec()

	first := postJSON(t, ts.URL+"/v1/shard/lease", offerFor(spec, fc.ts.URL, 5000))
	first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first offer: status %d", first.StatusCode)
	}
	second := offerFor(spec, fc.ts.URL, 5000)
	second.LeaseID = "l00002"
	resp := postJSON(t, ts.URL+"/v1/shard/lease", second)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("offer into a full worker: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("429 carries Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	select {
	case <-fc.results:
	case <-time.After(30 * time.Second):
		t.Fatal("admitted shard never completed")
	}
	m := awaitShardMetrics(t, ts.URL, func(st ShardStats) bool { return st.Completed == 1 })
	if m.Shards.Accepted != 1 || m.Shards.Rejected != 1 {
		t.Errorf("shard metrics %+v, want accepted=1 rejected=1", m.Shards)
	}
}

// TestShardLeaseAbandonsOnGone: a 410 heartbeat answer means the lease
// was reassigned; the worker cancels the run and posts nothing.
func TestShardLeaseAbandonsOnGone(t *testing.T) {
	fc := newFakeCoordinator(t)
	s, ts := newTestServer(t, Config{ShardWorkers: 1, ShardStartDelay: 5 * time.Second})
	spec := shardSpec()

	resp := postJSON(t, ts.URL+"/v1/shard/lease", offerFor(spec, fc.ts.URL, 90))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offer: status %d", resp.StatusCode)
	}
	fc.setGone() // every heartbeat from now on → 410

	deadline := time.After(10 * time.Second)
	for {
		s.mu.Lock()
		st := s.shardStats
		s.mu.Unlock()
		if st.Abandoned == 1 && st.Active == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("shard never abandoned after 410: %+v", st)
		case <-time.After(10 * time.Millisecond):
		}
	}
	select {
	case res := <-fc.results:
		t.Fatalf("abandoned shard posted a result: %+v", res)
	default:
	}
}

// TestShardLeaseRejectsMalformedOffers: structural problems are 400s,
// before any slot is charged.
func TestShardLeaseRejectsMalformedOffers(t *testing.T) {
	fc := newFakeCoordinator(t)
	_, ts := newTestServer(t, Config{ShardWorkers: 1})
	spec := shardSpec()

	cases := map[string]func(*cluster.LeaseOffer){
		"no lease id":      func(o *cluster.LeaseOffer) { o.LeaseID = "" },
		"no coordinator":   func(o *cluster.LeaseOffer) { o.Coordinator = "" },
		"no spec":          func(o *cluster.LeaseOffer) { o.Spec = nil },
		"hash mismatch":    func(o *cluster.LeaseOffer) { o.SpecHash = "deadbeef" },
		"inverted range":   func(o *cluster.LeaseOffer) { o.PointLo, o.PointHi = 1, 0 },
		"range off grid":   func(o *cluster.LeaseOffer) { o.PointHi = 99 },
		"non-positive ttl": func(o *cluster.LeaseOffer) { o.TTLMs = 0 },
	}
	for name, mutate := range cases {
		offer := offerFor(spec, fc.ts.URL, 1000)
		mutate(&offer)
		resp := postJSON(t, ts.URL+"/v1/shard/lease", offer)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}
