package serve

// Cluster worker side: POST /v1/shard/lease admits (or rejects with 429
// backpressure) a coordinator's lease offer, runs the shard through the
// campaign runner, heartbeats the lease while it runs, and posts the
// samples back. See internal/cluster for the protocol and DESIGN.md §9
// for the lease state machine.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/cluster"
)

// ShardStats are the worker-side cluster counters in /metrics.
type ShardStats struct {
	// Accepted counts lease offers admitted; Rejected counts offers
	// answered 429 because every shard slot was busy.
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	// Completed counts shards whose results were delivered; Abandoned
	// counts shards canceled mid-run (lost lease or shutdown); Failed
	// counts shard-level errors reported to the coordinator.
	Completed int64 `json:"completed"`
	Abandoned int64 `json:"abandoned"`
	Failed    int64 `json:"failed"`
	// Active is the number of shards running right now.
	Active int `json:"active"`
}

// handleShardLease is the worker's half of the lease protocol: admit the
// offer into a shard slot and run it in the background, or reject with
// 429 + Retry-After so the coordinator backs off and re-offers.
func (s *Server) handleShardLease(w http.ResponseWriter, r *http.Request) {
	var offer cluster.LeaseOffer
	if err := decodeJSON(r.Body, &offer); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", repro.ErrConflictingOptions, err))
		return
	}
	if err := validateOffer(&offer); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", repro.ErrConflictingOptions, err))
		return
	}
	if s.campaignCtx.Err() != nil {
		s.writeError(w, ErrClosed)
		return
	}
	select {
	case s.shardSem <- struct{}{}:
	default:
		s.mu.Lock()
		s.shardStats.Rejected++
		s.mu.Unlock()
		s.writeError(w, fmt.Errorf("%w: all %d shard slots busy", ErrBusy, cap(s.shardSem)))
		return
	}
	s.mu.Lock()
	s.shardStats.Accepted++
	s.shardStats.Active++
	s.mu.Unlock()
	s.campaignWG.Add(1)
	go func() {
		defer func() {
			<-s.shardSem
			s.mu.Lock()
			s.shardStats.Active--
			s.mu.Unlock()
			s.campaignWG.Done()
		}()
		s.runShard(&offer)
	}()
	writeJSON(w, http.StatusOK, cluster.LeaseAck{
		LeaseID: offer.LeaseID,
		ShardID: offer.ShardID,
		State:   "accepted",
		Worker:  offer.Worker,
	})
}

// validateOffer rejects malformed lease offers before a slot is charged.
func validateOffer(o *cluster.LeaseOffer) error {
	if o.LeaseID == "" || o.ShardID == "" {
		return fmt.Errorf("lease offer missing lease/shard id")
	}
	if o.Coordinator == "" {
		return fmt.Errorf("lease offer names no coordinator callback URL")
	}
	if o.Spec == nil {
		return fmt.Errorf("lease offer carries no spec")
	}
	if err := o.Spec.Validate(); err != nil {
		return err
	}
	if h := o.Spec.Hash(); o.SpecHash != "" && o.SpecHash != h {
		return fmt.Errorf("lease offer spec hashes to %s, offer says %s", h, o.SpecHash)
	}
	if o.PointLo < 0 || o.PointHi > len(o.Spec.Points) || o.PointLo >= o.PointHi {
		return fmt.Errorf("lease offer point range [%d, %d) outside grid of %d points",
			o.PointLo, o.PointHi, len(o.Spec.Points))
	}
	if o.TTLMs <= 0 {
		return fmt.Errorf("lease offer TTL %dms is not positive", o.TTLMs)
	}
	return nil
}

// runShard executes one leased shard: heartbeat the lease, run the
// campaign slice, deliver the samples. A lost lease (heartbeat 410) or
// server shutdown cancels the run cooperatively and abandons the shard —
// no result is posted, the coordinator's lease expiry handles the rest.
func (s *Server) runShard(offer *cluster.LeaseOffer) {
	ctx, cancel := context.WithCancel(s.campaignCtx)
	defer cancel()
	hbDone := make(chan struct{})
	defer close(hbDone)
	go s.heartbeatLoop(ctx, cancel, offer, hbDone)

	if s.cfg.ShardStartDelay > 0 {
		// Chaos knob: hold the lease (heartbeating, but making no
		// progress) so fault-injection tests can kill the worker
		// deterministically mid-shard.
		select {
		case <-time.After(s.cfg.ShardStartDelay):
		case <-ctx.Done():
			s.countShard(func(st *ShardStats) { st.Abandoned++ })
			return
		}
	}

	var samples []campaign.Sample
	_, err := campaign.Run(offer.Spec, campaign.Options{
		Context: ctx,
		PointLo: offer.PointLo,
		PointHi: offer.PointHi,
		Lanes:   offer.Lanes,
		Workers: s.cfg.Workers,
		Sink:    func(sm *campaign.Sample) { samples = append(samples, *sm) },
	})
	if ctx.Err() != nil {
		// Lease lost or shutting down: the run returned a partial report;
		// recording it would race the replacement lease, so drop it.
		s.countShard(func(st *ShardStats) { st.Abandoned++ })
		return
	}
	result := cluster.ShardResult{
		LeaseID: offer.LeaseID,
		ShardID: offer.ShardID,
		Worker:  offer.Worker,
	}
	if err != nil {
		result.Error = err.Error()
		s.countShard(func(st *ShardStats) { st.Failed++ })
	} else {
		// Deterministic wire order regardless of pool scheduling.
		sort.Slice(samples, func(i, j int) bool {
			if samples[i].Point != samples[j].Point {
				return samples[i].Point < samples[j].Point
			}
			return samples[i].Trial < samples[j].Trial
		})
		result.Samples = samples
	}
	if s.postResult(ctx, offer, &result) {
		if result.Error == "" {
			s.countShard(func(st *ShardStats) { st.Completed++ })
		}
	} else {
		s.countShard(func(st *ShardStats) { st.Abandoned++ })
	}
}

func (s *Server) countShard(f func(*ShardStats)) {
	s.mu.Lock()
	f(&s.shardStats)
	s.mu.Unlock()
}

// heartbeatLoop extends the lease at TTL/3 until the shard finishes
// (done) or the lease dies (410 → cancel the run). Transient heartbeat
// errors are tolerated: the lease survives until its deadline, and if
// the coordinator stays unreachable the lease expires server-side while
// the abandoned run cancels on the next 410.
func (s *Server) heartbeatLoop(ctx context.Context, cancel context.CancelFunc, offer *cluster.LeaseOffer, done <-chan struct{}) {
	interval := time.Duration(offer.TTLMs) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	client := &http.Client{Timeout: interval * 2}
	url := offer.Coordinator + "/v1/shard/" + offer.LeaseID + "/heartbeat"
	body, _ := json.Marshal(cluster.Heartbeat{LeaseID: offer.LeaseID, Worker: offer.Worker})
	for {
		select {
		case <-done:
			return
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode == http.StatusGone {
			// The lease was reassigned or the shard completed elsewhere;
			// stop burning cycles on it.
			cancel()
			return
		}
	}
}

// postResult delivers the shard result with bounded retries, returning
// whether the coordinator acknowledged it.
func (s *Server) postResult(ctx context.Context, offer *cluster.LeaseOffer, result *cluster.ShardResult) bool {
	body, err := json.Marshal(result)
	if err != nil {
		return false
	}
	url := offer.Coordinator + "/v1/shard/" + offer.LeaseID + "/result"
	client := &http.Client{Timeout: 30 * time.Second}
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
			case <-ctx.Done():
				return false
			}
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return true
		}
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusGone {
			return false // no retry can fix these
		}
	}
	return false
}
