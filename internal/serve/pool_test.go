package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPoolBackpressure: with every worker busy and the queue full, Do
// rejects immediately with ErrBusy — it never blocks the caller and never
// queues beyond the bound.
func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Shutdown(time.Second)

	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	// Occupy the worker...
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), func(ctx context.Context) error {
			close(started)
			<-block
			return nil
		})
	}()
	<-started
	// ...and the one queue slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), func(ctx context.Context) error { return nil })
	}()
	// The queue slot fill races with this check; poll until it lands.
	deadline := time.After(5 * time.Second)
	for p.Stats().Queued == 0 {
		select {
		case <-deadline:
			t.Fatal("queued job never appeared")
		case <-time.After(time.Millisecond):
		}
	}

	if err := p.Do(context.Background(), func(ctx context.Context) error { return nil }); !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated pool: err = %v, want ErrBusy", err)
	}
	if got := p.Stats().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	close(block)
	wg.Wait()
}

// TestPoolShutdownDrains: jobs admitted before Shutdown complete
// normally when they fit in the grace; Do after Shutdown returns
// ErrClosed.
func TestPoolShutdownDrains(t *testing.T) {
	p := NewPool(1, 4)
	ran := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func(ctx context.Context) error {
				mu.Lock()
				ran++
				mu.Unlock()
				return nil
			})
		}()
	}
	wg.Wait()
	p.Shutdown(5 * time.Second)
	mu.Lock()
	if ran != 3 {
		t.Fatalf("only %d/3 jobs ran before shutdown", ran)
	}
	mu.Unlock()
	if err := p.Do(context.Background(), func(ctx context.Context) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown Do: err = %v, want ErrClosed", err)
	}
}

// TestPoolShutdownCancelsAfterGrace: a job that outlives the grace period
// is canceled through its context rather than blocking shutdown forever.
func TestPoolShutdownCancelsAfterGrace(t *testing.T) {
	p := NewPool(1, 1)
	started := make(chan struct{})
	var jobErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		jobErr = p.Do(context.Background(), func(ctx context.Context) error {
			close(started)
			<-ctx.Done()
			return ctx.Err()
		})
	}()
	<-started
	finished := make(chan struct{})
	go func() {
		p.Shutdown(10 * time.Millisecond)
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on a job that ignores the grace period")
	}
	<-done
	if !errors.Is(jobErr, context.Canceled) {
		t.Fatalf("job err = %v, want context.Canceled via pool shutdown", jobErr)
	}
}
