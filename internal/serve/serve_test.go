package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(2 * time.Second)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRunEndpoint: the happy path returns a completed simulation with
// plausible statistics.
func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{N: 500, D: 10, GraphSeed: 1, Seed: 7})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	out := decodeBody[RunResponse](t, resp)
	if !out.Completed || out.Informed != 500 || out.Rounds < 1 {
		t.Fatalf("implausible result %+v", out)
	}
}

// TestRunEndpointAlgos: every algorithm the API exposes runs end to end.
func TestRunEndpointAlgos(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, algo := range []string{"distributed", "decay", "aloha", "centralized"} {
		resp := postJSON(t, ts.URL+"/v1/run", RunRequest{N: 300, D: 10, GraphSeed: 1, Algo: algo})
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("algo %s: status %d: %s", algo, resp.StatusCode, b)
		}
		out := decodeBody[RunResponse](t, resp)
		if !out.Completed {
			t.Fatalf("algo %s did not complete: %+v", algo, out)
		}
	}
}

// TestRunEndpointErrors: each failure class maps to its documented
// status code through the error sentinels.
func TestRunEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  RunRequest
		want int
	}{
		{"bad generator", RunRequest{Generator: "petersen", N: 100, D: 8}, http.StatusBadRequest},
		{"bad algo", RunRequest{N: 100, D: 8, Algo: "psychic"}, http.StatusBadRequest},
		{"zero n", RunRequest{N: 0, D: 8}, http.StatusBadRequest},
		{"bad source", RunRequest{N: 100, D: 8, Src: 100}, http.StatusBadRequest},
		{"bad extra source", RunRequest{N: 100, D: 8, Sources: []int32{512}}, http.StatusBadRequest},
		{"no connected sample", RunRequest{N: 200, D: 0.1, GraphSeed: 1}, http.StatusUnprocessableEntity},
		{"deadline", RunRequest{Generator: "gnp", N: 400, D: 0.5, MaxRounds: 2_000_000_000, TimeoutMs: 30}, http.StatusGatewayTimeout},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/run", tc.req)
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, b)
		}
	}
	// Malformed JSON → 400.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestRunEndpointCacheHit: two requests for the same (generator, n, d,
// graph_seed) build the graph once; /metrics proves it via the hit
// counter — the acceptance criterion for skip-rebuild.
func TestRunEndpointCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := RunRequest{N: 400, D: 10, GraphSeed: 5}
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/run", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeBody[Metrics](t, resp)
	if m.Cache.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1 (one build for three identical requests)", m.Cache.Misses)
	}
	if m.Cache.Hits != 2 {
		t.Fatalf("cache hits = %d, want 2", m.Cache.Hits)
	}
	if m.Requests["run"].Count != 3 {
		t.Fatalf("run counter = %d, want 3", m.Requests["run"].Count)
	}
}

// TestRunConcurrentSameGraphBuildsOnce: N concurrent requests for one
// instance trigger exactly one generation (singleflight through the
// serving stack, not just the cache unit). Run with -race.
func TestRunConcurrentSameGraphBuildsOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 8, QueueCap: 32})
	const callers = 12
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct protocol seeds, same graph key.
			resp := postJSON(t, ts.URL+"/v1/run", RunRequest{N: 600, D: 10, GraphSeed: 9, Seed: uint64(i + 1)})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.cache.Stats(); st.Misses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 build for %d concurrent requests", st.Misses, callers)
	}
}

// TestRunBackpressure429: a burst beyond workers+queue gets 429 with a
// Retry-After hint instead of queueing unboundedly.
func TestRunBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	// Saturate the worker and queue slot with runs that spin until their
	// deadline: a sparse disconnected G(n,p) never completes, and the
	// huge round budget means only the timeout ends them.
	slow := RunRequest{Generator: "gnp", N: 400, D: 0.5, MaxRounds: 2_000_000_000, TimeoutMs: 3_000}
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/run", slow)
			resp.Body.Close()
			<-release
		}()
	}
	// Wait until both slow requests are admitted (running + queued).
	deadline := time.After(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		m := decodeBody[Metrics](t, resp)
		if m.Pool.Running+int64(m.Pool.Queued) >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("slow requests never saturated the pool")
		case <-time.After(5 * time.Millisecond):
		}
	}
	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{N: 100, D: 8})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturating burst: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	close(release)
	wg.Wait()
}

// TestStreamEndpoint: the JSONL stream carries begin/round/end records
// and a final result trailer that matches the blocking endpoint's shape.
func TestStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/run/stream", RunRequest{N: 400, D: 10, GraphSeed: 2})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var types []string
	var trailer streamTrailer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON stream line %q: %v", sc.Text(), err)
		}
		types = append(types, rec.Type)
		if rec.Type == "result" {
			if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) < 4 || types[0] != "begin" || types[len(types)-2] != "end" || types[len(types)-1] != "result" {
		t.Fatalf("stream shape %v, want begin, rounds..., end, result", types)
	}
	for _, typ := range types[1 : len(types)-2] {
		if typ != "round" {
			t.Fatalf("unexpected record type %q mid-stream", typ)
		}
	}
	if !trailer.Result.Completed || trailer.Result.Rounds != len(types)-3 {
		t.Fatalf("trailer %+v inconsistent with %d round records", trailer.Result, len(types)-3)
	}
	if trailer.Error != "" {
		t.Fatalf("unexpected trailer error %q", trailer.Error)
	}
}

// TestStreamEndpointValidationStatus: failures detected before streaming
// begins still produce proper status codes.
func TestStreamEndpointValidationStatus(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/run/stream", RunRequest{N: 100, D: 8, Src: -2})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestStreamMidStreamCancel: a client dropping mid-stream cancels the
// run through its context; the server keeps serving afterwards.
func TestStreamMidStreamCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(RunRequest{Generator: "gnp", N: 400, D: 0.5, MaxRounds: 2_000_000_000, TimeoutMs: 30_000})
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line to ensure the stream started, then hang up.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("stream produced no output: %v", sc.Err())
	}
	cancel()
	resp.Body.Close()

	// The server must still answer promptly (the canceled run freed its
	// worker; with 2 default workers a stuck one would still leave one,
	// so check the metrics instead: the stream request completed).
	deadline := time.After(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		m := decodeBody[Metrics](t, resp)
		if m.Pool.Running == 0 && m.Requests["stream"].Count == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("canceled stream run never released its worker: %+v", m.Pool)
		case <-time.After(5 * time.Millisecond):
		}
	}
	resp2 := postJSON(t, ts.URL+"/v1/run", RunRequest{N: 100, D: 8})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("server unhealthy after canceled stream: status %d", resp2.StatusCode)
	}
}

// TestCampaignEndpoint: submit a small campaign, poll to completion, and
// check the report came through.
func TestCampaignEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := map[string]any{
		"name":   "serve-test",
		"seed":   11,
		"trials": 3,
		"points": []map[string]any{
			{"id": "a", "x": 8, "trial": map[string]any{"kind": "distributed", "n": 60, "d": 8}},
		},
	}
	resp := postJSON(t, ts.URL+"/v1/campaign", spec)
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, b)
	}
	sub := decodeBody[map[string]string](t, resp)
	if sub["id"] == "" || sub["status_url"] == "" {
		t.Fatalf("submit response %v lacks id/status_url", sub)
	}

	deadline := time.After(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + sub["status_url"])
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status endpoint returned %d", resp.StatusCode)
		}
		st := decodeBody[CampaignStatus](t, resp)
		switch st.State {
		case "done":
			if st.Report == nil || !st.Report.Complete {
				t.Fatalf("done campaign without complete report: %+v", st)
			}
			if len(st.Report.Points) != 1 || st.Report.Points[0].Consumed != 3 {
				t.Fatalf("unexpected report %+v", st.Report)
			}
			return
		case "failed", "canceled":
			t.Fatalf("campaign ended in state %s: %s", st.State, st.Error)
		}
		select {
		case <-deadline:
			t.Fatal("campaign never finished")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestCampaignEndpointRejectsBadSpec: unparsable and invalid specs are
// 400s; unknown ids are 404s.
func TestCampaignEndpointRejectsBadSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/campaign", "application/json", strings.NewReader(`{"name":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/campaign/c9999-missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestHealthz is trivial but keeps the probe honest.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestShutdownDrainsAndCancels: shutdown lets short queued work finish
// and cancels work that outlives the grace via context — the in-flight
// long run comes back 503/504, not a hang.
func TestShutdownDrainsAndCancels(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueCap: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := RunRequest{Generator: "gnp", N: 400, D: 0.5, MaxRounds: 2_000_000_000, TimeoutMs: 60_000}
	type result struct {
		code int
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		b, _ := json.Marshal(slow)
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(b))
		if err != nil {
			resCh <- result{0, err}
			return
		}
		resp.Body.Close()
		resCh <- result{resp.StatusCode, nil}
	}()
	// Wait for the long run to occupy the worker.
	deadline := time.After(10 * time.Second)
	for s.pool.Stats().Running == 0 {
		select {
		case <-deadline:
			t.Fatal("slow run never started")
		case <-time.After(2 * time.Millisecond):
		}
	}

	done := make(chan struct{})
	go func() {
		s.Shutdown(50 * time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung")
	}
	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight request failed at transport level: %v", r.err)
	}
	if r.code != http.StatusServiceUnavailable && r.code != http.StatusGatewayTimeout {
		t.Fatalf("canceled in-flight run: status %d, want 503/504", r.code)
	}
}
