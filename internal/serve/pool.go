package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

var (
	// ErrBusy marks a request rejected because the queue is full. The
	// server maps it to 429 with a Retry-After hint — explicit
	// backpressure instead of unbounded queueing.
	ErrBusy = errors.New("serve: queue full")

	// ErrClosed marks a request that arrived after shutdown began; the
	// server maps it to 503.
	ErrClosed = errors.New("serve: shutting down")
)

// Pool is a bounded worker pool with an explicitly sized queue. Do either
// admits a job — which then runs to completion on one of the workers —
// or rejects it immediately with ErrBusy/ErrClosed; nothing ever queues
// beyond the configured bound, so memory under overload is capped and
// clients see backpressure instead of creeping latency.
//
// Shutdown is graceful and two-staged: intake stops at once, queued and
// running jobs get a grace period to drain naturally, and whatever is
// still running after the grace is canceled through its context (the
// simulation engine checks between rounds, so cancellation is prompt and
// loss-free — partial results carry repro.ErrCanceled).
type Pool struct {
	workers int
	queue   chan *poolJob
	base    context.Context // canceled after the drain grace expires
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool

	running   atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
}

type poolJob struct {
	ctx  context.Context
	fn   func(ctx context.Context) error
	err  error
	done chan struct{}
}

// NewPool starts workers goroutines consuming a queue of queueCap
// pending jobs (beyond the ones actively running).
func NewPool(workers, queueCap int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	base, cancel := context.WithCancel(context.Background())
	p := &Pool{
		workers: workers,
		queue:   make(chan *poolJob, queueCap),
		base:    base,
		cancel:  cancel,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.queue {
				p.running.Add(1)
				j.err = j.fn(j.ctx)
				p.running.Add(-1)
				p.completed.Add(1)
				close(j.done)
			}
		}()
	}
	return p
}

// Do submits fn and waits for it to finish, returning fn's error. The
// job's context is ctx merged with the pool's shutdown context: whichever
// cancels first cancels the job. If the queue is full Do returns ErrBusy
// without blocking; after Shutdown began it returns ErrClosed.
func (p *Pool) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	jctx, jcancel := context.WithCancel(ctx)
	defer jcancel()
	// Propagate pool shutdown into the job's context.
	stop := context.AfterFunc(p.base, jcancel)
	defer stop()

	j := &poolJob{ctx: jctx, fn: fn, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.rejected.Add(1)
		return ErrClosed
	}
	var admitted bool
	select {
	case p.queue <- j:
		admitted = true
	default:
	}
	p.mu.Unlock()
	if !admitted {
		p.rejected.Add(1)
		return ErrBusy
	}
	// The worker always picks the job up (shutdown drains the queue) and
	// cancellation flows through jctx, so waiting on done alone cannot
	// hang.
	<-j.done
	return j.err
}

// Shutdown stops intake immediately, lets queued and running jobs drain
// for up to grace, then cancels everything still running and waits for
// the workers to exit. It is safe to call once.
func (p *Pool) Shutdown(grace time.Duration) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.queue) // no sender remains: Do enqueues only under mu with !closed
	p.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(grace):
		p.cancel()
		<-drained
	}
	p.cancel()
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:   p.workers,
		Queued:    len(p.queue),
		QueueCap:  cap(p.queue),
		Running:   p.running.Load(),
		Completed: p.completed.Load(),
		Rejected:  p.rejected.Load(),
	}
}

// PoolStats is the /metrics view of a Pool.
type PoolStats struct {
	Workers   int   `json:"workers"`
	Queued    int   `json:"queued"`
	QueueCap  int   `json:"queue_cap"`
	Running   int64 `json:"running"`
	Completed int64 `json:"completed"`
	Rejected  int64 `json:"rejected"`
}
