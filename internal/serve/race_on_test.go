//go:build race

package serve

// Under the race detector, sync.Pool deliberately drops a fraction of
// Puts to shake out races, so pool-hit counters and steady-state
// allocation ceilings are not deterministic there. The tests that
// assert exact pool behaviour skip themselves when this is true; the
// plain-build run still enforces them.
const raceEnabled = true
