// Package serve is the radiosimd serving layer: a long-running HTTP/JSON
// facade over the repro simulation API and the campaign runner.
//
// Design:
//
//   - Every simulation request runs on a bounded worker pool with an
//     explicitly sized queue (Pool). A full queue rejects immediately
//     with 429 + Retry-After — backpressure is part of the contract, the
//     server never queues unboundedly.
//   - Graph instances are deterministic functions of (generator, n, d,
//     seed) and are cached in a seeded, size-bounded LRU (GraphCache)
//     with singleflight deduplication: concurrent requests for the same
//     instance build it once.
//   - Failures map onto transport status codes through the repro error
//     sentinels (errors.Is), not string matching: ErrConflictingOptions
//     and ErrNoSuchSource → 400, ErrScheduleMismatch and
//     ErrGraphUnavailable → 422, deadline → 504, cancellation/shutdown →
//     503, ErrBusy → 429.
//   - Shutdown drains the queue for a grace period, then cancels running
//     work through contexts; the engine checks between rounds, so
//     cancellation is prompt and loss-free.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/exec"
	"repro/internal/protocols"
)

// Config sizes a Server. The zero value of each field selects the
// documented default.
type Config struct {
	// Workers is the simulation worker-pool size (default 2).
	Workers int
	// QueueCap bounds the jobs waiting beyond the running ones
	// (default 8). A full queue means 429.
	QueueCap int
	// CacheEntries bounds the graph LRU (default 32 graphs).
	CacheEntries int
	// DefaultTimeout bounds a run when the request names none
	// (default 30s); MaxTimeout caps request-supplied timeouts
	// (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxN caps the requestable graph size (default 2_000_000).
	MaxN int
	// CampaignWorkers bounds concurrently running campaigns (default 1);
	// further campaigns wait in state "queued".
	CampaignWorkers int
	// RetryAfter is the hint returned with 429 (default 1s).
	RetryAfter time.Duration
	// ShardWorkers bounds concurrently running cluster shards (default 1).
	// A lease offer arriving with every slot busy is answered 429 +
	// Retry-After — the same backpressure contract as the run queue — and
	// the coordinator re-offers after backing off.
	ShardWorkers int
	// ShardStartDelay delays every admitted shard before its first trial
	// (default 0). A chaos/testing knob: the cluster smoke test uses it to
	// guarantee a SIGKILL lands while a lease is held but no result has
	// been posted.
	ShardStartDelay time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.QueueCap <= 0 {
		out.QueueCap = 8
	}
	if out.CacheEntries <= 0 {
		out.CacheEntries = 32
	}
	if out.DefaultTimeout <= 0 {
		out.DefaultTimeout = 30 * time.Second
	}
	if out.MaxTimeout <= 0 {
		out.MaxTimeout = 2 * time.Minute
	}
	if out.MaxN <= 0 {
		out.MaxN = 2_000_000
	}
	if out.CampaignWorkers <= 0 {
		out.CampaignWorkers = 1
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = time.Second
	}
	if out.ShardWorkers <= 0 {
		out.ShardWorkers = 1
	}
	return out
}

// Server is the radiosimd HTTP handler set. Create with NewServer, mount
// via Handler, stop with Shutdown.
type Server struct {
	cfg   Config
	pool  *Pool
	cache *GraphCache

	campaignCtx    context.Context
	campaignCancel context.CancelFunc
	campaignSem    chan struct{}
	campaignWG     sync.WaitGroup
	shardSem       chan struct{}

	mu         sync.Mutex
	campaigns  map[string]*campaignJob
	nextID     int
	shardStats ShardStats

	metrics metrics
}

// NewServer builds a server from cfg (zero fields take defaults).
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:            cfg,
		pool:           NewPool(cfg.Workers, cfg.QueueCap),
		cache:          NewGraphCache(cfg.CacheEntries),
		campaignCtx:    ctx,
		campaignCancel: cancel,
		campaignSem:    make(chan struct{}, cfg.CampaignWorkers),
		shardSem:       make(chan struct{}, cfg.ShardWorkers),
		campaigns:      make(map[string]*campaignJob),
	}
	// A graph dropped from the LRU takes its pooled engines with it;
	// correctness never depends on this (engines are keyed by graph
	// pointer, and a rebuilt graph is a new pointer), it just keeps
	// engine memory from outliving the graphs it serves.
	s.cache.onEvict = exec.Forget
	return s
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/run/stream", s.handleRunStream)
	mux.HandleFunc("POST /v1/campaign", s.handleCampaignSubmit)
	mux.HandleFunc("POST /v1/shard/lease", s.handleShardLease)
	mux.HandleFunc("GET /v1/campaign/{id}", s.handleCampaignStatus)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Shutdown stops intake, drains queued and running simulations for up to
// grace, cancels whatever remains (including running campaigns, whose
// trials stop cooperatively between rounds), and waits for everything to
// exit. The HTTP listener itself is the caller's to close — typically
// http.Server.Shutdown around this.
func (s *Server) Shutdown(grace time.Duration) {
	s.pool.Shutdown(grace)
	s.campaignCancel()
	s.campaignWG.Wait()
}

// RunRequest is the body of POST /v1/run and /v1/run/stream.
type RunRequest struct {
	// Generator selects the graph model: "gnp-connected" (default) or
	// "gnp". With n, d and graph_seed it deterministically identifies the
	// instance; equal tuples share one cached graph.
	Generator string  `json:"generator,omitempty"`
	N         int     `json:"n"`
	D         float64 `json:"d"`
	GraphSeed uint64  `json:"graph_seed,omitempty"`

	// Algo selects the algorithm: "distributed" (default, the paper's
	// Theorem 7 protocol sized for d), "decay", "aloha", or "centralized"
	// (Theorem 5 schedule built with seed, then replayed).
	Algo string `json:"algo,omitempty"`

	Src       int32   `json:"src"`
	Sources   []int32 `json:"sources,omitempty"` // additional sources
	Seed      uint64  `json:"seed,omitempty"`    // protocol randomness (default 1)
	MaxRounds int     `json:"max_rounds,omitempty"`
	TimeoutMs int     `json:"timeout_ms,omitempty"`
}

// RunResponse is the body of a successful POST /v1/run.
type RunResponse struct {
	Completed     bool    `json:"completed"`
	Rounds        int     `json:"rounds"`
	Informed      int     `json:"informed"`
	N             int     `json:"n"`
	Transmissions int     `json:"transmissions"`
	Deliveries    int     `json:"deliveries"`
	Collisions    int     `json:"collisions"`
	ElapsedMs     float64 `json:"elapsed_ms"`
}

type errorBody struct {
	Error string `json:"error"`
}

// validate normalises defaults and rejects malformed requests; the error
// wraps repro.ErrConflictingOptions so it maps to 400.
func (r *RunRequest) validate(cfg *Config) error {
	if r.Generator == "" {
		r.Generator = "gnp-connected"
	}
	if r.Algo == "" {
		r.Algo = "distributed"
	}
	switch r.Generator {
	case "gnp", "gnp-connected":
	default:
		return fmt.Errorf("%w: unknown generator %q", repro.ErrConflictingOptions, r.Generator)
	}
	switch r.Algo {
	case "distributed", "decay", "aloha", "centralized":
	default:
		return fmt.Errorf("%w: unknown algo %q", repro.ErrConflictingOptions, r.Algo)
	}
	if r.N < 1 || r.N > cfg.MaxN {
		return fmt.Errorf("%w: n %d outside [1, %d]", repro.ErrConflictingOptions, r.N, cfg.MaxN)
	}
	if r.D < 0 {
		return fmt.Errorf("%w: negative degree %g", repro.ErrConflictingOptions, r.D)
	}
	if r.MaxRounds < 0 {
		return fmt.Errorf("%w: negative max_rounds %d", repro.ErrConflictingOptions, r.MaxRounds)
	}
	if r.TimeoutMs < 0 {
		return fmt.Errorf("%w: negative timeout_ms %d", repro.ErrConflictingOptions, r.TimeoutMs)
	}
	// Sources are checked here, not left to RunContext: the streaming
	// endpoint commits to a 200 before the run starts, so everything
	// status-worthy must fail first.
	if r.Src < 0 || int(r.Src) >= r.N {
		return fmt.Errorf("%w: src %d outside [0,%d)", repro.ErrNoSuchSource, r.Src, r.N)
	}
	for _, src := range r.Sources {
		if src < 0 || int(src) >= r.N {
			return fmt.Errorf("%w: source %d outside [0,%d)", repro.ErrNoSuchSource, src, r.N)
		}
	}
	return nil
}

func (r *RunRequest) graphKey() GraphKey {
	return GraphKey{Generator: r.Generator, N: r.N, D: r.D, Seed: r.GraphSeed}
}

// timeout returns the effective per-run deadline.
func (r *RunRequest) timeout(cfg *Config) time.Duration {
	t := cfg.DefaultTimeout
	if r.TimeoutMs > 0 {
		t = time.Duration(r.TimeoutMs) * time.Millisecond
	}
	if t > cfg.MaxTimeout {
		t = cfg.MaxTimeout
	}
	return t
}

// options assembles the repro.Run options for the request on g. The
// centralized path builds the Theorem 5 schedule here, so schedule
// construction failures surface as ErrScheduleMismatch before any rounds
// execute.
func (r *RunRequest) options(g *repro.Graph) ([]repro.Option, error) {
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	var opts []repro.Option
	switch r.Algo {
	case "distributed":
		opts = append(opts, repro.WithDegree(r.D), repro.WithSeed(seed))
	case "decay":
		opts = append(opts, repro.WithProtocol(protocols.NewDecay(r.N)), repro.WithSeed(seed))
	case "aloha":
		opts = append(opts, repro.WithProtocol(protocols.NewAloha(r.D)), repro.WithSeed(seed))
	case "centralized":
		sched, err := repro.BuildSchedule(g, r.Src, r.D, seed)
		if err != nil {
			return nil, err
		}
		opts = append(opts, repro.WithSchedule(sched))
	}
	if r.MaxRounds > 0 && r.Algo != "centralized" {
		opts = append(opts, repro.WithMaxRounds(r.MaxRounds))
	}
	if len(r.Sources) > 0 {
		opts = append(opts, repro.WithSources(r.Sources...))
	}
	return opts, nil
}

// simulation is one prepared run: the cached graph, the assembled
// options and — for the protocol algorithms — a pooled engine to run on.
// prepare does everything that can fail with a status code; run executes
// and returns the engine to the pool. Both endpoints funnel through this
// pair, which also makes the simulation path testable without HTTP.
type simulation struct {
	s      *Server
	req    *RunRequest
	g      *repro.Graph
	key    GraphKey
	opts   []repro.Option
	engine *repro.Engine
}

// prepare resolves the request's graph (through the LRU) and options,
// and checks an engine out of the per-graph pool. The centralized
// algorithm replays a schedule through its own execution state, so it
// runs engine-less.
func (s *Server) prepare(req *RunRequest) (*simulation, error) {
	key := req.graphKey()
	g, err := s.cache.Get(key)
	if err != nil {
		return nil, err
	}
	opts, err := req.options(g)
	if err != nil {
		return nil, err
	}
	sim := &simulation{s: s, req: req, g: g, key: key, opts: opts}
	if req.Algo != "centralized" {
		sim.engine = exec.AcquireEngine(g)
		sim.opts = append(sim.opts, repro.WithEngine(sim.engine))
	}
	return sim, nil
}

// run executes the prepared simulation and returns its engine to the
// pool — detached from any observer first, so a pooled engine never
// retains a dead request's response writer.
func (sim *simulation) run(ctx context.Context, extra ...repro.Option) (repro.Result, error) {
	opts := append(sim.opts, extra...)
	res, err := repro.RunContext(ctx, sim.g, sim.req.Src, opts...)
	if sim.engine != nil {
		sim.engine.Attach(nil)
		exec.ReleaseEngine(sim.engine)
		sim.engine = nil
	}
	return res, err
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req RunRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", repro.ErrConflictingOptions, err))
		s.metrics.observe("run", time.Since(start), true)
		return
	}
	if err := req.validate(&s.cfg); err != nil {
		s.writeError(w, err)
		s.metrics.observe("run", time.Since(start), true)
		return
	}
	var resp RunResponse
	err := s.pool.Do(r.Context(), func(ctx context.Context) error {
		ctx, cancel := context.WithTimeout(ctx, req.timeout(&s.cfg))
		defer cancel()
		sim, err := s.prepare(&req)
		if err != nil {
			return err
		}
		res, err := sim.run(ctx)
		if err != nil {
			return err
		}
		resp = runResponse(res, time.Since(start))
		return nil
	})
	if err != nil {
		s.writeError(w, err)
		s.metrics.observe("run", time.Since(start), true)
		return
	}
	writeJSON(w, http.StatusOK, resp)
	s.metrics.observe("run", time.Since(start), false)
}

// handleRunStream streams the run as JSON Lines: one "begin" record, one
// record per round (flushed as it happens), one "end" record, then a
// final "result" trailer carrying the outcome — or the error, when the
// run failed after streaming began (headers are gone by then, so the
// trailer is the error channel).
func (s *Server) handleRunStream(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req RunRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", repro.ErrConflictingOptions, err))
		s.metrics.observe("stream", time.Since(start), true)
		return
	}
	if err := req.validate(&s.cfg); err != nil {
		s.writeError(w, err)
		s.metrics.observe("stream", time.Since(start), true)
		return
	}
	streaming := false
	err := s.pool.Do(r.Context(), func(ctx context.Context) error {
		ctx, cancel := context.WithTimeout(ctx, req.timeout(&s.cfg))
		defer cancel()
		sim, err := s.prepare(&req)
		if err != nil {
			return err
		}
		// Everything that can fail with a status code has succeeded;
		// switch to the stream.
		streaming = true
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		jw := repro.NewJSONLWriter(w)
		obs := &flushingObserver{jw: jw, flusher: flusher}
		res, runErr := sim.run(ctx, repro.WithObserver(obs))
		trailer := streamTrailer{Type: "result", Result: runResponse(res, time.Since(start))}
		if runErr != nil {
			trailer.Error = runErr.Error()
		}
		jw.Flush()
		if b, err := json.Marshal(trailer); err == nil {
			w.Write(append(b, '\n'))
		}
		if flusher != nil {
			flusher.Flush()
		}
		return runErr
	})
	if err != nil && !streaming {
		s.writeError(w, err)
		s.metrics.observe("stream", time.Since(start), true)
		return
	}
	s.metrics.observe("stream", time.Since(start), err != nil)
}

// streamTrailer is the final line of a streamed run.
type streamTrailer struct {
	Type   string      `json:"type"`
	Result RunResponse `json:"result"`
	Error  string      `json:"error,omitempty"`
}

// flushingObserver forwards to a JSONLWriter and flushes every record to
// the client as it is produced — the point of the streaming endpoint.
type flushingObserver struct {
	jw      *repro.JSONLWriter
	flusher http.Flusher
}

func (f *flushingObserver) BeginRun(info repro.RunInfo) {
	f.jw.BeginRun(info)
	f.flush()
}

func (f *flushingObserver) Round(rec repro.RoundRecord) {
	f.jw.Round(rec)
	f.flush()
}

func (f *flushingObserver) EndRun(sum repro.RunSummary) {
	f.jw.EndRun(sum)
	f.flush()
}

func (f *flushingObserver) flush() {
	f.jw.Flush()
	if f.flusher != nil {
		f.flusher.Flush()
	}
}

// campaignJob tracks one submitted campaign through its lifecycle.
type campaignJob struct {
	mu     sync.Mutex
	id     string
	state  string // "queued" | "running" | "done" | "failed" | "canceled"
	errMsg string
	report *campaign.Report
}

// CampaignStatus is the body of GET /v1/campaign/{id}.
type CampaignStatus struct {
	ID     string           `json:"id"`
	State  string           `json:"state"`
	Error  string           `json:"error,omitempty"`
	Report *campaign.Report `json:"report,omitempty"`
}

func (j *campaignJob) status() CampaignStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return CampaignStatus{ID: j.id, State: j.state, Error: j.errMsg, Report: j.report}
}

func (j *campaignJob) set(state, errMsg string, report *campaign.Report) {
	j.mu.Lock()
	j.state, j.errMsg, j.report = state, errMsg, report
	j.mu.Unlock()
}

func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		s.writeError(w, fmt.Errorf("%w: reading body: %v", repro.ErrConflictingOptions, err))
		return
	}
	spec, err := campaign.ParseSpec(body)
	if err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", repro.ErrConflictingOptions, err))
		return
	}
	if err := spec.Validate(); err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", repro.ErrConflictingOptions, err))
		return
	}
	if s.campaignCtx.Err() != nil {
		s.writeError(w, ErrClosed)
		return
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("c%04d-%s", s.nextID, spec.Hash()[:8])
	job := &campaignJob{id: id, state: "queued"}
	s.campaigns[id] = job
	s.mu.Unlock()

	s.campaignWG.Add(1)
	go func() {
		defer s.campaignWG.Done()
		select {
		case s.campaignSem <- struct{}{}:
			defer func() { <-s.campaignSem }()
		case <-s.campaignCtx.Done():
			job.set("canceled", "server shutting down", nil)
			return
		}
		job.set("running", "", nil)
		report, err := campaign.Run(spec, campaign.Options{Context: s.campaignCtx})
		switch {
		case err != nil:
			job.set("failed", err.Error(), nil)
		case s.campaignCtx.Err() != nil && !report.Complete:
			job.set("canceled", "server shutting down", report)
		default:
			job.set("done", "", report)
		}
	}()

	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":         id,
		"state":      "queued",
		"status_url": "/v1/campaign/" + id,
	})
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such campaign " + id})
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Metrics is the body of GET /metrics: a JSON snapshot of the pool, the
// graph cache, the execution layer's per-backend counters (shared by
// every layer in the process — request runs, campaigns and cluster
// shards all dispatch through the same executor), per-endpoint latency
// counters and campaign states.
type Metrics struct {
	Pool      PoolStats                `json:"pool"`
	Cache     CacheStats               `json:"cache"`
	Exec      exec.Stats               `json:"exec"`
	Requests  map[string]EndpointStats `json:"requests"`
	Campaigns map[string]int           `json:"campaigns"`
	Shards    ShardStats               `json:"shards"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	states := map[string]int{}
	s.mu.Lock()
	for _, j := range s.campaigns {
		states[j.status().State]++
	}
	shards := s.shardStats
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Metrics{
		Pool:      s.pool.Stats(),
		Cache:     s.cache.Stats(),
		Exec:      exec.Snapshot(),
		Requests:  s.metrics.snapshot(),
		Campaigns: states,
		Shards:    shards,
	})
}

// writeError maps an error onto its status code via the sentinel chain
// and writes the JSON error body. 429 carries the Retry-After hint.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := statusFor(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// statusFor classifies err by the repro/serve sentinels. Order matters:
// a deadline-canceled run wraps both ErrCanceled and DeadlineExceeded
// and must report 504, not 503.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, repro.ErrConflictingOptions), errors.Is(err, repro.ErrNoSuchSource):
		return http.StatusBadRequest
	case errors.Is(err, repro.ErrScheduleMismatch), errors.Is(err, ErrGraphUnavailable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, repro.ErrCanceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func runResponse(res repro.Result, elapsed time.Duration) RunResponse {
	return RunResponse{
		Completed:     res.Completed,
		Rounds:        res.Rounds,
		Informed:      res.Informed,
		N:             res.N,
		Transmissions: res.Stats.Transmissions,
		Deliveries:    res.Stats.Deliveries,
		Collisions:    res.Stats.Collisions,
		ElapsedMs:     float64(elapsed.Microseconds()) / 1000,
	}
}

func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// metrics tracks per-endpoint request counts and latencies.
type metrics struct {
	mu sync.Mutex
	m  map[string]*EndpointStats
}

// EndpointStats are cumulative per-endpoint counters.
type EndpointStats struct {
	Count   int64   `json:"count"`
	Errors  int64   `json:"errors"`
	TotalMs float64 `json:"total_ms"`
	MaxMs   float64 `json:"max_ms"`
}

func (m *metrics) observe(endpoint string, d time.Duration, failed bool) {
	ms := float64(d.Microseconds()) / 1000
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.m == nil {
		m.m = make(map[string]*EndpointStats)
	}
	st := m.m[endpoint]
	if st == nil {
		st = &EndpointStats{}
		m.m[endpoint] = st
	}
	st.Count++
	if failed {
		st.Errors++
	}
	st.TotalMs += ms
	if ms > st.MaxMs {
		st.MaxMs = ms
	}
}

func (m *metrics) snapshot() map[string]EndpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]EndpointStats, len(m.m))
	for k, v := range m.m {
		out[k] = *v
	}
	return out
}
