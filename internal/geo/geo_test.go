package geo

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/xrand"
)

// field samples a connected random geometric graph with expected degree
// targetDeg, returning the graph, coordinates and radius.
func field(t testing.TB, n int, targetDeg float64, seed uint64) (*graph.Graph, []float64, []float64, float64) {
	t.Helper()
	radius := math.Sqrt(targetDeg / (math.Pi * float64(n)))
	for attempt := uint64(0); attempt < 20; attempt++ {
		rng := xrand.New(seed + attempt)
		g, xs, ys := gen.GeometricPoints(n, radius, rng)
		if graph.IsConnected(g) {
			return g, xs, ys, radius
		}
	}
	t.Skip("no connected geometric sample")
	return nil, nil, nil, 0
}

func TestGridScheduleCompletesCollisionFree(t *testing.T) {
	g, xs, ys, r := field(t, 800, 4*math.Log(800), 1)
	sched, err := BuildGridSchedule(g, xs, ys, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("grid schedule incomplete: %d/%d", res.Informed, g.N())
	}
	if res.Stats.Collisions != 0 {
		t.Fatalf("grid schedule suffered %d collisions — colouring broken", res.Stats.Collisions)
	}
}

func TestGridScheduleEachNodeTransmitsAtMostOnce(t *testing.T) {
	g, xs, ys, r := field(t, 500, 20, 2)
	sched, err := BuildGridSchedule(g, xs, ys, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]int)
	for _, set := range sched.Sets {
		for _, v := range set {
			seen[v]++
		}
	}
	for v, c := range seen {
		if c > 1 {
			t.Fatalf("node %d transmitted %d times", v, c)
		}
	}
	// Energy: total transmissions at most n.
	if len(seen) > g.N() {
		t.Fatalf("transmitters %d > n", len(seen))
	}
}

func TestGridScheduleRespectsEccentricity(t *testing.T) {
	g, xs, ys, r := field(t, 600, 20, 3)
	sched, err := BuildGridSchedule(g, xs, ys, r, 0)
	if err != nil {
		t.Fatal(err)
	}
	ecc := graph.Eccentricity(g, 0)
	if sched.Len() < ecc {
		t.Fatalf("schedule %d rounds below eccentricity %d", sched.Len(), ecc)
	}
	// Linear-in-D with a geometry constant: assert a generous cap.
	if sched.Len() > 500*ecc {
		t.Fatalf("schedule %d rounds vs eccentricity %d — constant blew up", sched.Len(), ecc)
	}
}

func TestGridScheduleErrors(t *testing.T) {
	g, xs, ys, r := field(t, 100, 20, 4)
	if _, err := BuildGridSchedule(g, xs[:10], ys, r, 0); err == nil {
		t.Fatal("mismatched points accepted")
	}
	if _, err := BuildGridSchedule(g, xs, ys, 0, 0); err == nil {
		t.Fatal("zero radius accepted")
	}
	// Disconnected input.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	if _, err := BuildGridSchedule(b.Build(), make([]float64, 4), make([]float64, 4), 0.1, 0); err == nil {
		t.Fatal("disconnected accepted")
	}
}

func TestGridScheduleNonUDGEdgesRejected(t *testing.T) {
	// A long-range edge violates the unit-disk assumption; the scheduler
	// either still completes (if no collision materialises) or returns an
	// error — it must not return an invalid schedule.
	b := graph.NewBuilder(4)
	// Points: 0 at (0.05,0.05), 1 at (0.1,0.05), 2 at (0.9,0.9), 3 at (0.95,0.9)
	xs := []float64{0.05, 0.1, 0.9, 0.95}
	ys := []float64{0.05, 0.05, 0.9, 0.9}
	r := 0.1
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(1, 2) // long-range edge, not a UDG edge
	g := b.Build()
	sched, err := BuildGridSchedule(g, xs, ys, r, 0)
	if err != nil {
		return // rejection is acceptable
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("returned schedule invalid: %v informed=%d", err, res.Informed)
	}
}

func TestGridScheduleSingleton(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	sched, err := BuildGridSchedule(g, []float64{0.5}, []float64{0.5}, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.ExecuteSchedule(g, 0, sched, radio.StrictInformed)
	if err != nil || !res.Completed {
		t.Fatalf("singleton: %v", err)
	}
}

func BenchmarkGridSchedule(b *testing.B) {
	g, xs, ys, r := field(b, 5000, 30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildGridSchedule(g, xs, ys, r, 0); err != nil {
			b.Fatal(err)
		}
	}
}
