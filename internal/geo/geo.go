// Package geo implements position-aware deterministic broadcasting for
// unit-disk (random geometric) radio networks — the geometric counterpart
// of the centralized algorithms for known topologies that §1.2 of the
// paper surveys (Gaber–Mansour; Elkin–Kortsarz; Gąsieniec et al., whose
// planar bound is O(D)).
//
// The construction is the classical grid method: partition the unit
// square into cells of side r (the radio range). A transmitter in one
// cell can only reach listeners within its own or the 8 surrounding
// cells, so two transmitters whose cells are at L∞ cell-distance ≥ 4
// share no listener and never collide. Colouring cells by
// (cx mod 4, cy mod 4) yields 16 colour classes that can be scheduled in
// parallel, giving a completely collision-free schedule.
//
// Per BFS layer the scheduler sweeps the 16 colours; in each active cell
// one informed layer member that has not transmitted yet fires. Sweeps
// repeat until the layer stops informing new nodes, then the frontier
// advances. On fields of bounded cell occupancy the schedule length is
// O(occupancy · 16 · D): linear in the diameter with a
// geometry-dependent constant, zero collisions, and each node transmits
// at most once — the deterministic, energy-minimal counterpoint to the
// randomized protocols (see examples/sensorfield).
package geo

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/radio"
)

// colors is the number of colour classes (4×4 grid colouring).
const colorStride = 4

// cell identifies a grid cell.
type cell struct{ x, y int }

// BuildGridSchedule constructs the collision-free schedule for the
// unit-disk graph g whose vertex i sits at (xs[i], ys[i]) with radio
// range r, broadcasting from src. It returns an error if g is
// disconnected from src (schedule on the reachable part would be silent
// about the rest) or the inputs are inconsistent.
func BuildGridSchedule(g *graph.Graph, xs, ys []float64, r float64, src int32) (*radio.Schedule, error) {
	n := g.N()
	if len(xs) != n || len(ys) != n {
		return nil, fmt.Errorf("geo: %d points for %d vertices", len(xs), n)
	}
	if r <= 0 {
		return nil, fmt.Errorf("geo: non-positive radius")
	}
	dist := graph.Distances(g, src)
	for v, dv := range dist {
		if dv == graph.Unreachable {
			return nil, fmt.Errorf("geo: vertex %d unreachable from %d", v, src)
		}
	}
	cellOf := func(v int32) cell {
		return cell{int(xs[v] / r), int(ys[v] / r)}
	}
	colorOf := func(c cell) int {
		return (c.x%colorStride+colorStride)%colorStride*colorStride +
			(c.y%colorStride+colorStride)%colorStride
	}

	e := radio.NewEngine(g, src, radio.StrictInformed)
	sched := &radio.Schedule{}
	transmitted := make([]bool, n)
	maxDepth := int32(0)
	for _, dv := range dist {
		if dv > maxDepth {
			maxDepth = dv
		}
	}

	for depth := int32(0); depth <= maxDepth && !e.Done(); depth++ {
		// Sweep colours repeatedly until this layer makes no progress and
		// every informed layer member has transmitted.
		for {
			progressed := false
			pending := false
			// Group untransmitted informed layer members by cell.
			byCell := make(map[cell][]int32)
			for v := int32(0); int(v) < n; v++ {
				if dist[v] == depth && e.Informed(v) && !transmitted[v] {
					byCell[cellOf(v)] = append(byCell[cellOf(v)], v)
				}
			}
			if len(byCell) == 0 {
				break
			}
			for color := 0; color < colorStride*colorStride; color++ {
				var set []int32
				for c, members := range byCell {
					if colorOf(c) != color || len(members) == 0 {
						continue
					}
					// One member per cell per round.
					v := members[0]
					byCell[c] = members[1:]
					set = append(set, v)
					transmitted[v] = true
				}
				if len(set) == 0 {
					continue
				}
				newly, err := e.Round(set)
				if err != nil {
					return nil, err
				}
				owned := make([]int32, len(set))
				copy(owned, set)
				sched.Sets = append(sched.Sets, owned)
				if len(newly) > 0 {
					progressed = true
				}
				if e.Done() {
					return sched, nil
				}
			}
			for _, members := range byCell {
				if len(members) > 0 {
					pending = true
					break
				}
			}
			if !pending && !progressed {
				break
			}
			if !pending {
				break
			}
		}
	}
	if !e.Done() {
		return nil, fmt.Errorf("geo: schedule incomplete: %d/%d informed (graph not a unit-disk graph for r?)",
			e.InformedCount(), n)
	}
	return sched, nil
}
