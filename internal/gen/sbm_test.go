package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestSBMEdgeCounts(t *testing.T) {
	rng := xrand.New(1)
	const half = 800
	const pIn = 0.02
	const pOut = 0.002
	g := TwoBlocks(2*half, pIn, pOut, rng)
	if g.N() != 2*half {
		t.Fatalf("n = %d", g.N())
	}
	intra, inter := 0, 0
	g.Edges(func(u, v int32) bool {
		if (u < half) == (v < half) {
			intra++
		} else {
			inter++
		}
		return true
	})
	wantIntra := 2 * pIn * float64(half*(half-1)/2)
	wantInter := pOut * float64(half) * float64(half)
	if math.Abs(float64(intra)-wantIntra) > 0.15*wantIntra {
		t.Fatalf("intra edges %d, want ~%.0f", intra, wantIntra)
	}
	if math.Abs(float64(inter)-wantInter) > 0.25*wantInter {
		t.Fatalf("inter edges %d, want ~%.0f", inter, wantInter)
	}
}

func TestSBMExtremes(t *testing.T) {
	rng := xrand.New(2)
	// pOut = 0: two disconnected G(n,p) blocks.
	g := TwoBlocks(200, 0.1, 0, rng)
	comps := graph.Components(g)
	if len(comps) < 2 {
		t.Fatalf("pOut=0 gave %d components", len(comps))
	}
	// pIn = pOut = p reduces to G(n,p): degree concentration check.
	g = TwoBlocks(1000, 0.02, 0.02, rng)
	st := g.Degrees()
	if math.Abs(st.Mean-0.02*999) > 3 {
		t.Fatalf("uniform SBM mean degree %v, want ~20", st.Mean)
	}
	// pOut = 1 crosses every pair.
	g = SBM([]int{3, 4}, 0, 1, rng)
	if g.M() != 12 {
		t.Fatalf("complete bipartite edges %d, want 12", g.M())
	}
}

func TestSBMMultiBlock(t *testing.T) {
	rng := xrand.New(3)
	g := SBM([]int{100, 200, 300}, 0.1, 0.01, rng)
	if g.N() != 600 {
		t.Fatalf("n = %d", g.N())
	}
	if !graph.IsConnected(g) {
		t.Fatal("dense SBM disconnected")
	}
}

func TestSBMEmptyBlocks(t *testing.T) {
	rng := xrand.New(4)
	g := SBM([]int{0, 10, 0}, 0.5, 0.5, rng)
	if g.N() != 10 {
		t.Fatalf("n = %d", g.N())
	}
}

func TestSBMPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { SBM([]int{10}, 1.5, 0, xrand.New(1)) },
		func() { SBM([]int{-1}, 0.5, 0.5, xrand.New(1)) },
		func() { TwoBlocks(1, 0.5, 0.5, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid SBM did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSBMDeterministic(t *testing.T) {
	a := TwoBlocks(300, 0.05, 0.01, xrand.New(7))
	b := TwoBlocks(300, 0.05, 0.01, xrand.New(7))
	if a.M() != b.M() {
		t.Fatal("SBM not deterministic")
	}
}
