package gen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func graphsIdentical(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := int32(0); int(v) < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// The block decomposition, not the scheduling, defines the random streams:
// the sampled graph must be byte-identical for every worker count,
// including the fully serial worker count of 1.
func TestGnpParallelWorkerCountInvariance(t *testing.T) {
	for _, p := range []float64{0.0004, 0.01, 0.35} {
		ref := GnpParallel(2000, p, xrand.New(99), 1)
		for _, workers := range []int{2, 3, 8, 0} {
			g := GnpParallel(2000, p, xrand.New(99), workers)
			if !graphsIdentical(ref, g) {
				t.Fatalf("p=%v: workers=%d sample differs from serial (m=%d vs %d)",
					p, workers, g.M(), ref.M())
			}
		}
	}
}

func TestGnpParallelDeterministicPerSeed(t *testing.T) {
	a := GnpParallel(1500, 0.004, xrand.New(7), 4)
	b := GnpParallel(1500, 0.004, xrand.New(7), 4)
	if !graphsIdentical(a, b) {
		t.Fatal("same seed produced different graphs")
	}
	c := GnpParallel(1500, 0.004, xrand.New(8), 4)
	if graphsIdentical(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGnpParallelAdvancesParentOnce(t *testing.T) {
	// The generator must consume exactly one value from the caller's rng so
	// the caller's stream position is scheduling-independent.
	r1 := xrand.New(41)
	GnpParallel(500, 0.01, r1, 3)
	r2 := xrand.New(41)
	r2.Uint64()
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("GnpParallel advanced the parent rng by more than one draw")
	}
}

func TestGnpParallelExtremes(t *testing.T) {
	if g := GnpParallel(100, 0, xrand.New(1), 2); g.M() != 0 || g.N() != 100 {
		t.Fatalf("p=0: got n=%d m=%d", g.N(), g.M())
	}
	n := 40
	if g := GnpParallel(n, 1, xrand.New(1), 2); g.M() != n*(n-1)/2 {
		t.Fatalf("p=1: m=%d want %d", g.M(), n*(n-1)/2)
	}
	for _, n := range []int{0, 1} {
		if g := GnpParallel(n, 0.5, xrand.New(1), 2); g.N() != n || g.M() != 0 {
			t.Fatalf("n=%d: got n=%d m=%d", n, g.N(), g.M())
		}
	}
}

func TestGnpParallelSimpleAndSorted(t *testing.T) {
	g := GnpParallel(3000, 0.003, xrand.New(12), 4)
	for v := int32(0); int(v) < g.N(); v++ {
		nb := g.Neighbors(v)
		for i, w := range nb {
			if w == v {
				t.Fatalf("self-loop at %d", v)
			}
			if i > 0 && nb[i-1] >= w {
				t.Fatalf("adjacency of %d not strictly increasing: %v", v, nb)
			}
			if !g.HasEdge(w, v) {
				t.Fatalf("edge (%d,%d) not symmetric", v, w)
			}
		}
	}
}

func TestGnpParallelMeanDegree(t *testing.T) {
	n := 20000
	d := 12.0
	g := GnpParallel(n, PForDegree(n, d), xrand.New(3), 4)
	mean := 2 * float64(g.M()) / float64(n)
	if mean < d*0.9 || mean > d*1.1 {
		t.Fatalf("mean degree %.2f, want ≈ %.1f", mean, d)
	}
}

// Block boundaries must be seamless: a graph large enough to span several
// blocks has the same per-pair marginals everywhere, which the mean-degree
// test above checks globally; here we make sure multi-block inputs agree
// across worker counts at a size that actually exceeds one block.
func TestGnpParallelMultiBlock(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-block sample is slow in -short mode")
	}
	n := 2100 // n(n-1)/2 ≈ 2.2M pairs > one 2^21-pair block
	ref := GnpParallel(n, 0.006, xrand.New(17), 1)
	got := GnpParallel(n, 0.006, xrand.New(17), 5)
	if !graphsIdentical(ref, got) {
		t.Fatal("multi-block sample differs across worker counts")
	}
}
