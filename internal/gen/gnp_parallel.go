package gen

// Parallel G(n,p) generation. The implicit enumeration of vertex pairs
// (0,1), (0,2), ..., (n-2,n-1) is partitioned into fixed-size blocks of
// pair indices; every block draws its geometric skips from its own child
// random stream derived from a single root seed. Because block boundaries
// — not goroutine scheduling — define the streams, the sampled graph is a
// deterministic function of (n, p, rng state) and bitwise identical for
// every worker count, including 1.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// gnpBlockPairs is the number of candidate pairs per block. Big enough
// that per-block overhead (one stream derivation, one row/column
// conversion) vanishes against the expected p·blockPairs edges, small
// enough that a 100k-vertex graph still splits into thousands of blocks
// for even scheduling.
const gnpBlockPairs = 1 << 21

// GnpParallel samples G(n,p) — same model and distribution as Gnp, but
// generated over a worker pool. workers <= 0 means GOMAXPROCS. The random
// stream differs from Gnp's serial stream (so the two functions sample
// different graphs from the same seed), but the result is a deterministic
// function of rng's state alone: any worker count, including 1, produces a
// bitwise-identical graph. GnpParallel advances rng by exactly one draw,
// so repeated calls sample independent graphs.
func GnpParallel(n int, p float64, rng *xrand.Rand, workers int) *graph.Graph {
	if n < 0 {
		panic("gen: negative n")
	}
	if p < 0 || p > 1 {
		panic("gen: GnpParallel probability out of [0,1]")
	}
	rootSeed := rng.Uint64() // consumed even on the trivial paths, so call sites advance uniformly
	b := graph.NewBuilder(n)
	if n < 2 || p == 0 {
		return b.Build()
	}
	if p == 1 {
		b.Grow(n * (n - 1) / 2)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdgeUnchecked(int32(u), int32(v))
			}
		}
		return b.Build()
	}

	total := int64(n) * int64(n-1) / 2
	numBlocks := int((total + gnpBlockPairs - 1) / gnpBlockPairs)
	root := xrand.New(rootSeed)
	invLambda := -1 / math.Log1p(-p) // skip = floor(Exp(1)·invLambda) ~ Geometric(p)

	blocks := make([][]uint64, numBlocks)
	genBlock := func(bi int) {
		blocks[bi] = gnpBlock(n, total, bi, root.Derive(uint64(bi)+1), invLambda, p)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numBlocks {
		workers = numBlocks
	}
	if workers <= 1 {
		for bi := 0; bi < numBlocks; bi++ {
			genBlock(bi)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					bi := next.Add(1) - 1
					if bi >= int64(numBlocks) {
						return
					}
					genBlock(int(bi))
				}
			}()
		}
		wg.Wait()
	}

	// Merge in block order: edges arrive strictly increasing in (u, v), so
	// the builder's ordered fast path applies and Build is a pure scatter.
	m := 0
	for _, blk := range blocks {
		m += len(blk)
	}
	b.Grow(m)
	for _, blk := range blocks {
		for _, pe := range blk {
			b.AddEdgeUnchecked(int32(pe>>32), int32(pe&0xffffffff))
		}
	}
	return b.Build()
}

// gnpBlock samples the edges whose pair index lies in block bi, returned
// as packed (u<<32 | v) values in increasing pair order.
func gnpBlock(n int, total int64, bi int, child *xrand.Rand, invLambda, p float64) []uint64 {
	k0 := int64(bi) * gnpBlockPairs
	k1 := k0 + gnpBlockPairs
	if k1 > total {
		k1 = total
	}
	buf := make([]uint64, 0, int(float64(k1-k0)*p)+int(float64(k1-k0)*p)/8+8)

	// Current candidate pair k0 is (u, u+1+off); advance converts skips in
	// pair-index space to row/column steps.
	u32, v32 := pairFromIndex(n, k0)
	u := int64(u32)
	off := int64(v32) - u - 1
	rowLen := int64(n) - 1 - u
	left := k1 - k0 // candidates in [current, k1)

	// First skip lands on the first edge candidate; subsequent edges are
	// 1 + skip further along. Skips are drawn as floor(Exp(1)/λ) with
	// λ = -log(1-p), which is exactly Geometric(p).
	f := child.ExpZiggurat() * invLambda
	if f >= float64(left) {
		return buf
	}
	s := int64(f)
	for {
		left -= s
		off += s
		for off >= rowLen {
			off -= rowLen
			u++
			rowLen--
		}
		buf = append(buf, uint64(u)<<32|uint64(u+1+off))
		f = child.ExpZiggurat() * invLambda
		if f >= float64(left-1) {
			return buf
		}
		s = 1 + int64(f)
	}
}
