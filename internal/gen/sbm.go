package gen

// Stochastic block model: a planted-partition random graph. Used by
// experiment E17 to probe how the paper's algorithms behave when the
// G(n,p) homogeneity assumption is broken by community structure — the
// inter-community edge probability controls a bottleneck the uniform
// analysis does not see.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// SBM samples a stochastic block model with the given block sizes:
// vertices are assigned to blocks contiguously (block 0 first), a pair in
// the same block is an edge with probability pIn, a cross-block pair with
// probability pOut.
func SBM(blockSizes []int, pIn, pOut float64, rng *xrand.Rand) *graph.Graph {
	if pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		panic("gen: SBM probabilities out of [0,1]")
	}
	n := 0
	for _, s := range blockSizes {
		if s < 0 {
			panic("gen: negative block size")
		}
		n += s
	}
	b := graph.NewBuilder(n)
	// Block boundaries.
	starts := make([]int, len(blockSizes)+1)
	for i, s := range blockSizes {
		starts[i+1] = starts[i] + s
	}
	// Intra-block edges: a G(s, pIn) per block, offset into place.
	for i, s := range blockSizes {
		off := int32(starts[i])
		sub := Gnp(s, pIn, rng)
		sub.Edges(func(u, v int32) bool {
			b.AddEdge(u+off, v+off)
			return true
		})
	}
	// Inter-block edges: geometric skipping over each block pair's
	// bipartite pair space.
	for i := range blockSizes {
		for j := i + 1; j < len(blockSizes); j++ {
			addBipartite(b, starts[i], blockSizes[i], starts[j], blockSizes[j], pOut, rng)
		}
	}
	return b.Build()
}

// TwoBlocks is the common two-community case with equal halves.
func TwoBlocks(n int, pIn, pOut float64, rng *xrand.Rand) *graph.Graph {
	if n < 2 {
		panic(fmt.Sprintf("gen: TwoBlocks needs n >= 2, got %d", n))
	}
	return SBM([]int{n / 2, n - n/2}, pIn, pOut, rng)
}

// addBipartite adds each pair (a+i, b+j) as an edge with probability p
// using geometric skipping over the i·nb + j enumeration.
func addBipartite(bld *graph.Builder, aStart, na, bStart, nb int, p float64, rng *xrand.Rand) {
	if p <= 0 || na == 0 || nb == 0 {
		return
	}
	if p >= 1 {
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				bld.AddEdge(int32(aStart+i), int32(bStart+j))
			}
		}
		return
	}
	total := int64(na) * int64(nb)
	k := int64(rng.Geometric(p))
	for k < total {
		i := k / int64(nb)
		j := k % int64(nb)
		bld.AddEdge(int32(aStart)+int32(i), int32(bStart)+int32(j))
		k += 1 + int64(rng.Geometric(p))
	}
}
