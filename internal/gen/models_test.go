package gen

import (
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: exact ring lattice, every vertex has degree 2k.
	g := WattsStrogatz(50, 3, 0, xrand.New(1))
	st := g.Degrees()
	if st.Min != 6 || st.Max != 6 {
		t.Fatalf("lattice degrees %+v, want all 6", st)
	}
	if g.M() != 150 {
		t.Fatalf("lattice edges %d, want 150", g.M())
	}
	if !graph.IsConnected(g) {
		t.Fatal("lattice disconnected")
	}
	// High clustering is the small-world signature.
	if c := graph.GlobalClustering(g); c < 0.5 {
		t.Fatalf("lattice clustering %v, want >= 0.5", c)
	}
}

func TestWattsStrogatzRewiringLowersClustering(t *testing.T) {
	rng := xrand.New(2)
	lattice := WattsStrogatz(400, 4, 0, rng)
	rewired := WattsStrogatz(400, 4, 0.5, rng)
	cl := graph.GlobalClustering(lattice)
	cr := graph.GlobalClustering(rewired)
	if cr >= cl {
		t.Fatalf("rewiring did not lower clustering: %v -> %v", cl, cr)
	}
	// Rewiring shortens paths dramatically.
	dl := graph.DiameterLower(lattice, 0)
	dr := graph.DiameterLower(rewired, 0)
	if dr >= dl {
		t.Fatalf("rewiring did not shrink diameter: %d -> %d", dl, dr)
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { WattsStrogatz(10, 0, 0.1, xrand.New(1)) },
		func() { WattsStrogatz(10, 5, 0.1, xrand.New(1)) },
		func() { WattsStrogatz(10, 2, 1.5, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid WattsStrogatz did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBarabasiAlbertBasics(t *testing.T) {
	rng := xrand.New(3)
	const n = 2000
	const m = 3
	g := BarabasiAlbert(n, m, rng)
	if g.N() != n {
		t.Fatalf("n = %d", g.N())
	}
	// Edges: C(m+1,2) seed + m per arrival (minus rare dedups).
	wantM := (m+1)*m/2 + (n-m-1)*m
	if g.M() > wantM || g.M() < wantM-20 {
		t.Fatalf("m = %d, want ~%d", g.M(), wantM)
	}
	if !graph.IsConnected(g) {
		t.Fatal("BA graph disconnected")
	}
	st := g.Degrees()
	if st.Min < m {
		t.Fatalf("min degree %d below m=%d", st.Min, m)
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	rng := xrand.New(4)
	const n = 3000
	g := BarabasiAlbert(n, 2, rng)
	degrees := make([]int, n)
	for v := 0; v < n; v++ {
		degrees[v] = g.Degree(int32(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degrees)))
	mean := 2 * float64(g.M()) / n
	// Scale-free signature: the max degree is far above the mean (G(n,p)
	// with the same mean would have max ~ mean + few·sqrt(mean)).
	if float64(degrees[0]) < 6*mean {
		t.Fatalf("max degree %d not heavy-tailed (mean %.1f)", degrees[0], mean)
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { BarabasiAlbert(10, 0, xrand.New(1)) },
		func() { BarabasiAlbert(5, 5, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid BarabasiAlbert did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestModelsDeterministic(t *testing.T) {
	a := WattsStrogatz(100, 2, 0.3, xrand.New(9))
	b := WattsStrogatz(100, 2, 0.3, xrand.New(9))
	if a.M() != b.M() {
		t.Fatal("WattsStrogatz not deterministic")
	}
	c := BarabasiAlbert(100, 2, xrand.New(9))
	d := BarabasiAlbert(100, 2, xrand.New(9))
	if c.M() != d.M() {
		t.Fatal("BarabasiAlbert not deterministic")
	}
}

func TestWattsStrogatzFullRewire(t *testing.T) {
	// beta = 1: still n·k edges (minus dedup), no self loops, connected
	// with high probability at k=4.
	g := WattsStrogatz(300, 4, 1, xrand.New(10))
	if math.Abs(float64(g.M())-1200) > 60 {
		t.Fatalf("fully rewired edges = %d, want ~1200", g.M())
	}
	for v := int32(0); v < 300; v++ {
		for _, w := range g.Neighbors(v) {
			if w == v {
				t.Fatal("self loop after rewiring")
			}
		}
	}
}
