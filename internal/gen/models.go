package gen

// Additional random-graph models used as comparison topologies: the
// Watts–Strogatz small world and the Barabási–Albert preferential
// attachment graph. Neither appears in the paper itself, but both are
// standard counterpoints to G(n,p) in the broadcast literature (high
// clustering / heavy-tailed degrees respectively) and the examples use
// them to show where the paper's random-graph assumptions matter.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// WattsStrogatz returns a small-world graph: a ring lattice on n vertices
// where each vertex connects to its k nearest neighbours on each side
// (degree 2k), with each lattice edge rewired to a uniform random
// endpoint with probability beta. beta = 0 is the pure lattice, beta = 1
// approaches (but is not exactly) a random graph.
func WattsStrogatz(n, k int, beta float64, rng *xrand.Rand) *graph.Graph {
	if k < 1 || 2*k >= n {
		panic(fmt.Sprintf("gen: WattsStrogatz requires 1 <= k < n/2, got k=%d n=%d", k, n))
	}
	if beta < 0 || beta > 1 {
		panic("gen: WattsStrogatz beta out of [0,1]")
	}
	b := graph.NewBuilder(n)
	b.Grow(n * k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			w := (v + j) % n
			if rng.Bernoulli(beta) {
				// Rewire the far endpoint to a uniform non-self target.
				// Collisions with existing edges are tolerated: Build
				// dedups, which slightly lowers the edge count exactly as
				// in the standard formulation.
				w = rng.Intn(n)
				for w == v {
					w = rng.Intn(n)
				}
			}
			b.AddEdge(int32(v), int32(w))
		}
	}
	return b.Build()
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// small clique on m+1 vertices, each arriving vertex attaches m edges to
// existing vertices chosen proportionally to their current degree (the
// repeated-nodes trick keeps sampling O(1) per edge).
func BarabasiAlbert(n, m int, rng *xrand.Rand) *graph.Graph {
	if m < 1 || m >= n {
		panic(fmt.Sprintf("gen: BarabasiAlbert requires 1 <= m < n, got m=%d n=%d", m, n))
	}
	b := graph.NewBuilder(n)
	b.Grow(n * m)
	// Repeated-node list: every edge endpoint appears once per incidence,
	// so uniform sampling from it is degree-proportional sampling.
	targets := make([]int32, 0, 2*n*m)
	seed := m + 1
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			b.AddEdge(int32(u), int32(v))
			targets = append(targets, int32(u), int32(v))
		}
	}
	for v := seed; v < n; v++ {
		chosen := make(map[int32]bool, m)
		for len(chosen) < m {
			w := targets[rng.Intn(len(targets))]
			chosen[w] = true
		}
		for w := range chosen {
			b.AddEdge(int32(v), w)
			targets = append(targets, int32(v), w)
		}
	}
	return b.Build()
}
