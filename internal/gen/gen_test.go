package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestGnpEdgeCount(t *testing.T) {
	rng := xrand.New(1)
	const n = 2000
	const p = 0.01
	total := float64(n*(n-1)) / 2
	want := total * p
	sd := math.Sqrt(total * p * (1 - p))
	sum := 0.0
	const trials = 10
	for i := 0; i < trials; i++ {
		g := Gnp(n, p, rng)
		sum += float64(g.M())
	}
	mean := sum / trials
	if math.Abs(mean-want) > 4*sd/math.Sqrt(trials) {
		t.Fatalf("Gnp mean edges %v, want ~%v (sd %v)", mean, want, sd)
	}
}

func TestGnpExtremes(t *testing.T) {
	rng := xrand.New(2)
	if g := Gnp(100, 0, rng); g.M() != 0 {
		t.Fatalf("Gnp p=0 has %d edges", g.M())
	}
	if g := Gnp(50, 1, rng); g.M() != 50*49/2 {
		t.Fatalf("Gnp p=1 has %d edges, want %d", g.M(), 50*49/2)
	}
	if g := Gnp(0, 0.5, rng); g.N() != 0 {
		t.Fatal("Gnp n=0 malformed")
	}
	if g := Gnp(1, 0.5, rng); g.N() != 1 || g.M() != 0 {
		t.Fatal("Gnp n=1 malformed")
	}
}

func TestGnpSimple(t *testing.T) {
	rng := xrand.New(3)
	g := Gnp(300, 0.05, rng)
	for v := int32(0); int(v) < g.N(); v++ {
		nb := g.Neighbors(v)
		for i, w := range nb {
			if w == v {
				t.Fatalf("self-loop at %d", v)
			}
			if i > 0 && nb[i-1] == w {
				t.Fatalf("parallel edge at %d-%d", v, w)
			}
		}
	}
}

func TestGnpDegreeConcentration(t *testing.T) {
	// For d = pn well above ln n, degrees should concentrate near d
	// (the alpha*pn <= d <= beta*pn assumption of §2).
	rng := xrand.New(4)
	const n = 5000
	d := 4 * math.Log(n)
	g := Gnp(n, PForDegree(n, d), rng)
	st := g.Degrees()
	if st.Mean < 0.8*d || st.Mean > 1.2*d {
		t.Fatalf("mean degree %v far from %v", st.Mean, d)
	}
	if float64(st.Min) < 0.2*d {
		t.Fatalf("min degree %d too small for d=%v", st.Min, d)
	}
	if float64(st.Max) > 3*d {
		t.Fatalf("max degree %d too large for d=%v", st.Max, d)
	}
}

func TestGnpConnectedAboveThreshold(t *testing.T) {
	rng := xrand.New(5)
	const n = 2000
	p := ConnectivityThreshold(n, 3)
	for trial := 0; trial < 5; trial++ {
		g := Gnp(n, p, rng)
		if !graph.IsConnected(g) {
			t.Fatalf("trial %d: G(n, 3 ln n / n) disconnected", trial)
		}
	}
}

func TestGnpDeterministicPerSeed(t *testing.T) {
	g1 := Gnp(500, 0.02, xrand.New(99))
	g2 := Gnp(500, 0.02, xrand.New(99))
	if g1.M() != g2.M() {
		t.Fatal("same seed produced different graphs")
	}
	for v := int32(0); int(v) < g1.N(); v++ {
		n1, n2 := g1.Neighbors(v), g2.Neighbors(v)
		if len(n1) != len(n2) {
			t.Fatalf("vertex %d: adjacency mismatch", v)
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("vertex %d: adjacency mismatch", v)
			}
		}
	}
}

func TestGnmExactEdges(t *testing.T) {
	rng := xrand.New(6)
	for _, tc := range []struct{ n, m int }{
		{10, 0}, {10, 45}, {100, 50}, {1000, 5000},
	} {
		g := Gnm(tc.n, tc.m, rng)
		if g.M() != tc.m {
			t.Fatalf("Gnm(%d,%d) has %d edges", tc.n, tc.m, g.M())
		}
		if g.N() != tc.n {
			t.Fatalf("Gnm(%d,%d) has %d vertices", tc.n, tc.m, g.N())
		}
	}
}

func TestGnmPanicsOnTooManyEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gnm with m > C(n,2) did not panic")
		}
	}()
	Gnm(5, 11, xrand.New(1))
}

func TestPairFromIndex(t *testing.T) {
	// Exhaustive check on small n: indices must enumerate all pairs in
	// row-major order exactly once.
	for _, n := range []int{2, 3, 5, 10, 17} {
		k := int64(0)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				gu, gv := pairFromIndex(n, k)
				if int(gu) != u || int(gv) != v {
					t.Fatalf("n=%d k=%d: got (%d,%d) want (%d,%d)", n, k, gu, gv, u, v)
				}
				k++
			}
		}
	}
}

func TestRandomRegular(t *testing.T) {
	rng := xrand.New(7)
	for _, tc := range []struct{ n, d int }{
		{10, 3}, {100, 4}, {50, 6}, {64, 3},
	} {
		g := RandomRegular(tc.n, tc.d, rng)
		st := g.Degrees()
		if st.Max > tc.d {
			t.Fatalf("RandomRegular(%d,%d): max degree %d", tc.n, tc.d, st.Max)
		}
		// Exact regularity holds unless the rare fallback path fired.
		if st.Min != tc.d || st.Max != tc.d {
			t.Logf("RandomRegular(%d,%d) fell back to near-regular: min=%d max=%d",
				tc.n, tc.d, st.Min, st.Max)
		}
	}
}

func TestRandomRegularPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { RandomRegular(5, 3, xrand.New(1)) },  // nd odd
		func() { RandomRegular(4, 4, xrand.New(1)) },  // d >= n
		func() { RandomRegular(4, -2, xrand.New(1)) }, // negative
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid RandomRegular did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestGeometricMatchesBruteForce(t *testing.T) {
	rng := xrand.New(8)
	const n = 200
	const radius = 0.15
	g, xs, ys := GeometricPoints(n, radius, rng)
	want := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= radius*radius {
				want++
				if !g.HasEdge(int32(i), int32(j)) {
					t.Fatalf("missing edge (%d,%d) at distance %v", i, j, math.Hypot(dx, dy))
				}
			}
		}
	}
	if g.M() != want {
		t.Fatalf("geometric graph has %d edges, brute force says %d", g.M(), want)
	}
}

func TestGeometricZeroRadius(t *testing.T) {
	g := Geometric(50, 0, xrand.New(9))
	if g.M() != 0 {
		t.Fatalf("radius 0 gave %d edges", g.M())
	}
}

func TestHypercube(t *testing.T) {
	for dim := 0; dim <= 6; dim++ {
		g := Hypercube(dim)
		n := 1 << dim
		if g.N() != n {
			t.Fatalf("dim %d: n = %d", dim, g.N())
		}
		if g.M() != n*dim/2 {
			t.Fatalf("dim %d: m = %d, want %d", dim, g.M(), n*dim/2)
		}
		st := g.Degrees()
		if n > 1 && (st.Min != dim || st.Max != dim) {
			t.Fatalf("dim %d: degrees %+v", dim, st)
		}
		if dim >= 1 && graph.Diameter(g) != dim {
			t.Fatalf("dim %d: diameter %d", dim, graph.Diameter(g))
		}
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 5)
	if g.N() != 20 {
		t.Fatalf("n = %d", g.N())
	}
	st := g.Degrees()
	if st.Min != 4 || st.Max != 4 {
		t.Fatalf("torus degrees %+v", st)
	}
	if !graph.IsConnected(g) {
		t.Fatal("torus disconnected")
	}
	// Degenerate sizes.
	if g := Torus(1, 1); g.M() != 0 {
		t.Fatalf("1x1 torus m=%d", g.M())
	}
	if g := Torus(1, 4); !graph.IsConnected(g) {
		t.Fatal("1x4 torus disconnected")
	}
}

func TestDeterministicFamilies(t *testing.T) {
	if g := Path(5); g.M() != 4 || graph.Diameter(g) != 4 {
		t.Fatal("Path(5) malformed")
	}
	if g := Cycle(6); g.M() != 6 || graph.Diameter(g) != 3 {
		t.Fatal("Cycle(6) malformed")
	}
	if g := Star(7); g.M() != 6 || g.Degree(0) != 6 {
		t.Fatal("Star(7) malformed")
	}
	if g := Complete(6); g.M() != 15 || graph.Diameter(g) != 1 {
		t.Fatal("Complete(6) malformed")
	}
}

func TestRandomTree(t *testing.T) {
	rng := xrand.New(10)
	for _, n := range []int{1, 2, 10, 500} {
		g := RandomTree(n, rng)
		if g.M() != n-1 && n > 0 {
			if !(n == 1 && g.M() == 0) {
				t.Fatalf("RandomTree(%d) has %d edges", n, g.M())
			}
		}
		if !graph.IsConnected(g) {
			t.Fatalf("RandomTree(%d) disconnected", n)
		}
	}
}

func TestConnectedGnp(t *testing.T) {
	rng := xrand.New(11)
	g, tries, ok := ConnectedGnp(500, ConnectivityThreshold(500, 2), rng, 20)
	if !ok {
		t.Fatal("ConnectedGnp failed above threshold")
	}
	if tries < 1 || tries > 20 {
		t.Fatalf("tries = %d", tries)
	}
	if !graph.IsConnected(g) {
		t.Fatal("returned graph not connected")
	}
	// Far below threshold, failure should be reported (p tiny).
	_, _, ok = ConnectedGnp(500, 0.0001, rng, 3)
	if ok {
		t.Fatal("ConnectedGnp claimed success at p=1e-4 on n=500")
	}
}

func TestPForDegree(t *testing.T) {
	if p := PForDegree(100, 10); math.Abs(p-0.1) > 1e-12 {
		t.Fatalf("PForDegree = %v", p)
	}
	if p := PForDegree(10, 100); p != 1 {
		t.Fatalf("PForDegree clamp high = %v", p)
	}
	if p := PForDegree(10, -1); p != 0 {
		t.Fatalf("PForDegree clamp low = %v", p)
	}
	if p := PForDegree(1, 5); p != 0 {
		t.Fatalf("PForDegree n=1 = %v", p)
	}
}

func TestConnectivityThreshold(t *testing.T) {
	p := ConnectivityThreshold(1000, 2)
	want := 2 * math.Log(1000) / 1000
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("threshold = %v, want %v", p, want)
	}
	if p := ConnectivityThreshold(1, 2); p != 1 {
		t.Fatalf("threshold n=1 = %v", p)
	}
}

func TestDensifiedComplement(t *testing.T) {
	rng := xrand.New(12)
	const n = 300
	g := DensifiedComplement(n, 0.1, rng)
	density := float64(g.M()) / (float64(n*(n-1)) / 2)
	if math.Abs(density-0.9) > 0.02 {
		t.Fatalf("dense graph density %v, want ~0.9", density)
	}
}

func BenchmarkGnpSparse(b *testing.B) {
	rng := xrand.New(1)
	const n = 100000
	p := PForDegree(n, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Gnp(n, p, rng)
	}
}

func BenchmarkGnm(b *testing.B) {
	rng := xrand.New(2)
	for i := 0; i < b.N; i++ {
		_ = Gnm(10000, 100000, rng)
	}
}

func BenchmarkGeometric(b *testing.B) {
	rng := xrand.New(3)
	for i := 0; i < b.N; i++ {
		_ = Geometric(10000, 0.02, rng)
	}
}

func TestConfigurationModelDegrees(t *testing.T) {
	rng := xrand.New(71)
	ds := BimodalSequence(900, 4, 100, 40)
	g := ConfigurationModel(ds, rng)
	if g.N() != 1000 {
		t.Fatalf("n = %d", g.N())
	}
	// Erased model: degrees at most requested, and close for low degrees.
	lowShort, highShort := 0, 0
	for v := 0; v < g.N(); v++ {
		got := g.Degree(int32(v))
		want := ds[v]
		if got > want {
			t.Fatalf("vertex %d degree %d exceeds requested %d", v, got, want)
		}
		if want == 4 && got < 3 {
			lowShort++
		}
		if want >= 40 && got < 36 {
			highShort++
		}
	}
	if lowShort > 50 || highShort > 10 {
		t.Fatalf("erasure too aggressive: %d low, %d high vertices short", lowShort, highShort)
	}
}

func TestConfigurationModelMatchesRegular(t *testing.T) {
	rng := xrand.New(73)
	ds := make([]int, 200)
	for i := range ds {
		ds[i] = 6
	}
	g := ConfigurationModel(ds, rng)
	st := g.Degrees()
	if st.Max > 6 {
		t.Fatalf("max degree %d", st.Max)
	}
	if st.Mean < 5.5 {
		t.Fatalf("mean degree %v too low for requested 6", st.Mean)
	}
}

func TestConfigurationModelPanics(t *testing.T) {
	for _, ds := range [][]int{
		{1, 1, 1}, // odd sum
		{-1, 1},   // negative
		{3, 1, 2}, // degree >= n
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("sequence %v accepted", ds)
				}
			}()
			ConfigurationModel(ds, xrand.New(1))
		}()
	}
}

func TestBimodalSequenceEvenSum(t *testing.T) {
	ds := BimodalSequence(3, 3, 0, 0) // sum 9, odd -> padded
	sum := 0
	for _, d := range ds {
		sum += d
	}
	if sum%2 != 0 {
		t.Fatalf("sum %d odd", sum)
	}
}
