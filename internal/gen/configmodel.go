package gen

// The configuration model: a random graph with a PRESCRIBED degree
// sequence, via the pairing construction. It generalises RandomRegular
// and lets the experiments test degree heterogeneity directly (e.g. a
// lognormal or bimodal sequence) instead of only through preferential
// attachment.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// ConfigurationModel samples a simple graph whose degree sequence is
// (approximately) ds: stubs are paired uniformly at random; self-loops
// and duplicate edges are discarded, so vertices with very high requested
// degree may come out slightly below it (the standard "erased"
// configuration model). The sum of ds must be even.
func ConfigurationModel(ds []int, rng *xrand.Rand) *graph.Graph {
	n := len(ds)
	total := 0
	for v, d := range ds {
		if d < 0 {
			panic(fmt.Sprintf("gen: negative degree at %d", v))
		}
		if d >= n {
			panic(fmt.Sprintf("gen: degree %d at %d exceeds n-1", d, v))
		}
		total += d
	}
	if total%2 != 0 {
		panic("gen: degree sequence sums to an odd number")
	}
	stubs := make([]int32, 0, total)
	for v, d := range ds {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	rng.Shuffle32(stubs)
	b := graph.NewBuilder(n)
	b.Grow(total / 2)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			continue // erased self-loop
		}
		b.AddEdge(u, v) // duplicates erased by Build
	}
	return b.Build()
}

// BimodalSequence returns a degree sequence with nLow vertices of degree
// low and nHigh of degree high, padding one extra stub onto the first
// vertex if needed to make the sum even.
func BimodalSequence(nLow, low, nHigh, high int) []int {
	ds := make([]int, 0, nLow+nHigh)
	for i := 0; i < nLow; i++ {
		ds = append(ds, low)
	}
	for i := 0; i < nHigh; i++ {
		ds = append(ds, high)
	}
	total := nLow*low + nHigh*high
	if total%2 == 1 && len(ds) > 0 {
		ds[0]++
	}
	return ds
}
