// Package gen generates the graph families used in the paper and its
// experiments: the Gilbert model G(n,p) (the paper's primary model), the
// Erdős–Rényi model G(n,m) ("our results also hold for the Erdős–Rényi
// graphs", §1.1), and the comparison topologies of the related-work section
// (hypercubes, bounded-degree/random-regular graphs) plus deterministic
// reference graphs and random geometric graphs for the ad-hoc wireless
// examples.
//
// All generators are deterministic functions of their *xrand.Rand argument,
// so experiments reproduce exactly from recorded seeds.
package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Gnp samples the Gilbert random graph G(n,p): every unordered pair is an
// edge independently with probability p. Expected running time is
// O(n + m) using geometric skip sampling over the implicit enumeration of
// pairs (0,1), (0,2), ..., (n-2, n-1).
func Gnp(n int, p float64, rng *xrand.Rand) *graph.Graph {
	if n < 0 {
		panic("gen: negative n")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("gen: Gnp probability %v out of [0,1]", p))
	}
	b := graph.NewBuilder(n)
	if n < 2 || p == 0 {
		return b.Build()
	}
	total := int64(n) * int64(n-1) / 2
	expected := int(float64(total) * p)
	b.Grow(expected + expected/8 + 16)
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdgeUnchecked(int32(u), int32(v))
			}
		}
		return b.Build()
	}
	// Enumerate pair index k in [0, total); skip Geometric(p) pairs between
	// successive edges. Convert k to (u, v) incrementally.
	u, v := int64(0), int64(0) // v is the offset within row u, edges are (u, u+1+v)
	rowLen := int64(n - 1)     // number of pairs in row u
	advance := func(k int64) bool {
		v += k
		for v >= rowLen {
			v -= rowLen
			u++
			rowLen--
			if rowLen <= 0 {
				return false
			}
		}
		return true
	}
	// Hoist the invariant log out of the geometric sampler; GeometricLog is
	// bitwise identical to Geometric(p), so recorded seeds reproduce the
	// same graphs as before.
	log1mp := math.Log1p(-p)
	if !advance(int64(rng.GeometricLog(log1mp))) {
		return b.Build()
	}
	for {
		b.AddEdgeUnchecked(int32(u), int32(u+1+v))
		if !advance(1 + int64(rng.GeometricLog(log1mp))) {
			break
		}
	}
	return b.Build()
}

// Gnm samples the Erdős–Rényi random graph G(n,m): a graph chosen uniformly
// among all graphs with n vertices and m edges. It panics if m exceeds the
// number of available pairs.
func Gnm(n, m int, rng *xrand.Rand) *graph.Graph {
	total := int64(n) * int64(n-1) / 2
	if int64(m) > total || m < 0 {
		panic(fmt.Sprintf("gen: Gnm with m=%d outside [0,%d]", m, total))
	}
	b := graph.NewBuilder(n)
	b.Grow(m)
	// Rejection sampling over pair ids is fast while m << total; for dense
	// requests fall back to sampling pair indices without replacement via a
	// partial shuffle on the implicit pair space using a map.
	seen := make(map[int64]bool, 2*m)
	for len(seen) < m {
		k := int64(rng.Uint64n(uint64(total)))
		if !seen[k] {
			seen[k] = true
			u, v := pairFromIndex(n, k)
			b.AddEdgeUnchecked(u, v)
		}
	}
	return b.Build()
}

// pairFromIndex maps a pair index k in [0, n(n-1)/2) to the k-th unordered
// pair (u,v), u < v, in row-major order.
func pairFromIndex(n int, k int64) (int32, int32) {
	// Row u contains (n-1-u) pairs. Solve for u by the quadratic formula
	// and fix up rounding.
	nn := int64(n)
	u := int64(float64(2*nn-1)/2 - math.Sqrt(float64((2*nn-1)*(2*nn-1))/4-2*float64(k)))
	if u < 0 {
		u = 0
	}
	rowStart := func(u int64) int64 { return u*nn - u*(u+1)/2 }
	for u > 0 && rowStart(u) > k {
		u--
	}
	for rowStart(u+1) <= k {
		u++
	}
	v := u + 1 + (k - rowStart(u))
	return int32(u), int32(v)
}

// RandomRegular samples an (approximately uniform) random d-regular graph
// on n vertices via the configuration/pairing model with restarts: d·n must
// be even. Pairings that produce loops or multi-edges are rejected and
// retried, which is fast for d up to Θ(√n); beyond that the generator
// falls back to accepting the simple subgraph (degree then ≤ d) after a
// bounded number of restarts, which is the standard practical compromise.
func RandomRegular(n, d int, rng *xrand.Rand) *graph.Graph {
	if d < 0 || d >= n {
		panic(fmt.Sprintf("gen: RandomRegular requires 0 <= d < n, got d=%d n=%d", d, n))
	}
	if n*d%2 != 0 {
		panic("gen: RandomRegular requires n*d even")
	}
	const maxRestarts = 64
	points := make([]int32, n*d)
	for restart := 0; ; restart++ {
		for i := range points {
			points[i] = int32(i / d)
		}
		rng.Shuffle32(points)
		ok := true
		seen := make(map[int64]bool, n*d/2)
		b := graph.NewBuilder(n)
		b.Grow(n * d / 2)
		for i := 0; i < len(points); i += 2 {
			u, v := points[i], points[i+1]
			if u == v {
				ok = false
				break
			}
			key := int64(min32(u, v))<<32 | int64(max32(u, v))
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			b.AddEdgeUnchecked(min32(u, v), max32(u, v))
		}
		if ok {
			return b.Build()
		}
		if restart >= maxRestarts {
			// Practical fallback: keep the simple subgraph of the pairing.
			b := graph.NewBuilder(n)
			seen := make(map[int64]bool, n*d/2)
			for i := 0; i < len(points); i += 2 {
				u, v := points[i], points[i+1]
				if u == v {
					continue
				}
				key := int64(min32(u, v))<<32 | int64(max32(u, v))
				if seen[key] {
					continue
				}
				seen[key] = true
				b.AddEdgeUnchecked(min32(u, v), max32(u, v))
			}
			return b.Build()
		}
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Geometric samples a random geometric graph: n points uniform in the unit
// square, an edge between points at Euclidean distance at most radius. This
// is the classical model of ad-hoc wireless deployments and is used by the
// sensor-field example. A grid-bucket index keeps generation near-linear.
func Geometric(n int, radius float64, rng *xrand.Rand) *graph.Graph {
	if radius < 0 {
		panic("gen: negative radius")
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	return geometricFromPoints(xs, ys, radius)
}

// GeometricPoints is like Geometric but also returns the sampled
// coordinates, for examples that want to draw or reason about the layout.
func GeometricPoints(n int, radius float64, rng *xrand.Rand) (*graph.Graph, []float64, []float64) {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	return geometricFromPoints(xs, ys, radius), xs, ys
}

func geometricFromPoints(xs, ys []float64, radius float64) *graph.Graph {
	n := len(xs)
	b := graph.NewBuilder(n)
	if n == 0 || radius == 0 {
		return b.Build()
	}
	cell := radius
	if cell > 1 {
		cell = 1
	}
	side := int(1/cell) + 1
	buckets := make(map[[2]int][]int32)
	key := func(i int) [2]int {
		return [2]int{int(xs[i] / cell), int(ys[i] / cell)}
	}
	for i := 0; i < n; i++ {
		k := key(i)
		buckets[k] = append(buckets[k], int32(i))
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		k := key(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				nk := [2]int{k[0] + dx, k[1] + dy}
				if nk[0] < 0 || nk[1] < 0 || nk[0] > side || nk[1] > side {
					continue
				}
				for _, j := range buckets[nk] {
					if int32(i) >= j {
						continue
					}
					ddx := xs[i] - xs[j]
					ddy := ys[i] - ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						b.AddEdgeUnchecked(int32(i), j)
					}
				}
			}
		}
	}
	return b.Build()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices, one of
// the bounded-degree comparison topologies of §1.2.
func Hypercube(dim int) *graph.Graph {
	if dim < 0 || dim > 30 {
		panic("gen: hypercube dimension out of range")
	}
	n := 1 << dim
	b := graph.NewBuilder(n)
	b.Grow(n * dim / 2)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.AddEdgeUnchecked(int32(v), int32(w))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows×cols 2-dimensional torus (wrap-around grid).
func Torus(rows, cols int) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic("gen: torus dimensions must be positive")
	}
	n := rows * cols
	b := graph.NewBuilder(n)
	b.Grow(2 * n)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 1 {
				b.AddEdge(id(r, c), id(r, (c+1)%cols))
			}
			if rows > 1 {
				b.AddEdge(id(r, c), id((r+1)%rows, c))
			}
		}
	}
	return b.Build()
}

// Path returns the path graph on n vertices.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdgeUnchecked(int32(i), int32(i+1))
	}
	return b.Build()
}

// Cycle returns the cycle graph on n vertices (n >= 3).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: Cycle requires n >= 3")
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdgeUnchecked(int32(i), int32(i+1))
	}
	b.AddEdgeUnchecked(0, int32(n-1))
	return b.Build()
}

// Star returns the star graph with centre 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdgeUnchecked(0, int32(i))
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	b.Grow(n * (n - 1) / 2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdgeUnchecked(int32(i), int32(j))
		}
	}
	return b.Build()
}

// RandomTree returns a uniformly random labelled tree on n vertices via a
// random Prüfer-like attachment: vertex i (i >= 1) attaches to a uniform
// earlier vertex. (This is the random recursive tree, adequate as a sparse
// connected baseline; it is not the uniform labelled tree distribution.)
func RandomTree(n int, rng *xrand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdgeUnchecked(rng.Int31n(int32(i)), int32(i))
	}
	return b.Build()
}

// ConnectivityThreshold returns the probability p = c·ln n / n. With
// c > 1 the graph G(n,p) is connected w.h.p.; the paper assumes
// p >= δ ln n / n with δ large enough for connectivity.
func ConnectivityThreshold(n int, c float64) float64 {
	if n < 2 {
		return 1
	}
	p := c * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	return p
}

// PForDegree returns the edge probability giving expected average degree d
// in G(n,p), i.e. p = d/n clamped to [0,1]. (The paper writes d = pn.)
func PForDegree(n int, d float64) float64 {
	if n <= 1 {
		return 0
	}
	p := d / float64(n)
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// ConnectedGnp repeatedly samples G(n,p) until the sample is connected, up
// to maxTries attempts, and returns the sample and the number of attempts
// used. If no connected sample is found it returns the last sample and
// ok = false. For p above the connectivity threshold one attempt almost
// always suffices.
func ConnectedGnp(n int, p float64, rng *xrand.Rand, maxTries int) (g *graph.Graph, tries int, ok bool) {
	if maxTries < 1 {
		maxTries = 1
	}
	for t := 1; t <= maxTries; t++ {
		g = Gnp(n, p, rng)
		if graph.IsConnected(g) {
			return g, t, true
		}
	}
	return g, maxTries, false
}

// DensifiedComplement returns G(n, 1-f): the dense regime discussed at the
// end of §3.1, where each pair is an edge with probability 1 − f.
func DensifiedComplement(n int, f float64, rng *xrand.Rand) *graph.Graph {
	return Gnp(n, 1-f, rng)
}
