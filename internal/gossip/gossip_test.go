package gossip

import (
	"math"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func connected(t testing.TB, n int, d float64, seed uint64) *graph.Graph {
	t.Helper()
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(seed), 50)
	if !ok {
		t.Fatalf("no connected sample")
	}
	return g
}

func TestRoundRobinGossipCompletes(t *testing.T) {
	const n = 60
	g := connected(t, n, 8, 1)
	rng := xrand.New(2)
	diam := graph.Diameter(g)
	res := Run(g, RoundRobin{N: n}, n*(diam+2), rng)
	if !res.Completed {
		t.Fatalf("round-robin gossip incomplete: min known %d", res.MinKnown)
	}
	if res.KnownTotal != int64(n)*int64(n) {
		t.Fatalf("KnownTotal = %d, want %d", res.KnownTotal, n*n)
	}
}

func TestUniformGossipCompletesOnGnp(t *testing.T) {
	const n = 300
	d := 2 * math.Log(n)
	g := connected(t, n, d, 3)
	rng := xrand.New(4)
	res := Run(g, Uniform{Q: 1 / d}, 100000, rng)
	if !res.Completed {
		t.Fatalf("uniform gossip incomplete: min known %d/%d", res.MinKnown, n)
	}
}

func TestPhasedGossipCompletesAndBeatsRoundRobin(t *testing.T) {
	const n = 400
	d := 2 * math.Log(n)
	g := connected(t, n, d, 5)
	phased := Time(g, NewPhased(n, d), 100000, xrand.New(6))
	rr := Time(g, RoundRobin{N: n}, 100000, xrand.New(7))
	if phased > 100000 || rr > 100000 {
		t.Fatalf("incomplete: phased=%d rr=%d", phased, rr)
	}
	if phased >= rr {
		t.Fatalf("phased gossip (%d) not faster than round robin (%d)", phased, rr)
	}
}

func TestGossipOnCompleteGraph(t *testing.T) {
	// On K_n with one transmitter per round (round robin), after each
	// node transmits once everyone knows everything: exactly n rounds
	// (the n-th transmission is still needed for the last rumor).
	const n = 20
	g := gen.Complete(n)
	rng := xrand.New(8)
	res := Run(g, RoundRobin{N: n}, 5*n, rng)
	if !res.Completed {
		t.Fatal("incomplete on K_n")
	}
	if res.Rounds != n {
		t.Fatalf("K_n round-robin gossip took %d rounds, want exactly %d", res.Rounds, n)
	}
}

func TestGossipFloodingStalls(t *testing.T) {
	// Everyone transmitting every round: all receivers with degree >= 2
	// collide forever on G(n,p); rumor counts stay at 1 for most nodes.
	const n = 200
	g := connected(t, n, 12, 9)
	rng := xrand.New(10)
	res := Run(g, Uniform{Q: 1}, 500, rng)
	if res.Completed {
		t.Fatal("permanent flooding should not complete gossip")
	}
}

func TestGossipPathSmall(t *testing.T) {
	g := gen.Path(5)
	rng := xrand.New(11)
	res := Run(g, RoundRobin{N: 5}, 200, rng)
	if !res.Completed {
		t.Fatalf("path gossip incomplete: %+v", res)
	}
	// Information from each end must cross the whole path: at least
	// 2·(diameter) rounds are information-theoretically required; round
	// robin needs more.
	if res.Rounds < 8 {
		t.Fatalf("path gossip finished impossibly fast: %d", res.Rounds)
	}
}

func TestGossipSingletonAndEmpty(t *testing.T) {
	rng := xrand.New(12)
	res := Run(graph.NewBuilder(1).Build(), RoundRobin{N: 1}, 10, rng)
	if !res.Completed || res.Rounds != 0 {
		t.Fatalf("singleton gossip: %+v", res)
	}
	res = Run(graph.NewBuilder(0).Build(), RoundRobin{N: 1}, 10, rng)
	if !res.Completed {
		t.Fatalf("empty gossip: %+v", res)
	}
}

func TestTimeSentinel(t *testing.T) {
	b := graph.NewBuilder(2) // disconnected: can never complete
	g := b.Build()
	rng := xrand.New(13)
	if got := Time(g, RoundRobin{N: 2}, 10, rng); got != 11 {
		t.Fatalf("sentinel = %d", got)
	}
}

func TestNewPhasedShape(t *testing.T) {
	p := NewPhased(100000, 20)
	if p.FloodRounds < 2 || p.FloodRounds > 5 {
		t.Fatalf("flood rounds = %d", p.FloodRounds)
	}
	if p.Q != 1.0/20 {
		t.Fatalf("Q = %v", p.Q)
	}
	p = NewPhased(2, 1)
	if p.FloodRounds < 1 || p.Q != 0.5 {
		t.Fatalf("degenerate phased: %+v", p)
	}
}

func TestKnowledgeMonotone(t *testing.T) {
	// Property: rumor counts never decrease and the origin rumor is never
	// lost — checked by instrumenting a short run.
	const n = 100
	g := connected(t, n, 10, 14)
	rng := xrand.New(15)
	// Run twice with the same seed but different budgets: the longer run
	// must dominate the shorter in KnownTotal.
	short := Run(g, Uniform{Q: 0.1}, 20, xrand.New(16))
	long := Run(g, Uniform{Q: 0.1}, 40, xrand.New(16))
	if long.KnownTotal < short.KnownTotal {
		t.Fatalf("knowledge decreased: %d -> %d", short.KnownTotal, long.KnownTotal)
	}
	_ = rng
}

func BenchmarkPhasedGossip(b *testing.B) {
	const n = 1000
	d := 2 * math.Log(n)
	g := connected(b, n, d, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := xrand.New(uint64(i))
		res := Run(g, NewPhased(n, d), 100000, rng)
		if !res.Completed {
			b.Fatal("incomplete")
		}
	}
}

// referenceGossipRound is a naive oracle for one gossip round: given
// per-node rumor sets and the transmitter set, return the updated rumor
// sets under the radio semantics.
func referenceGossipRound(g *graph.Graph, know [][]bool, tx []int32) [][]bool {
	n := g.N()
	inTx := make(map[int32]bool)
	for _, v := range tx {
		inTx[v] = true
	}
	next := make([][]bool, n)
	for v := range next {
		next[v] = append([]bool{}, know[v]...)
	}
	for w := 0; w < n; w++ {
		if inTx[int32(w)] {
			continue
		}
		var sender int32 = -1
		count := 0
		for _, nb := range g.Neighbors(int32(w)) {
			if inTx[nb] {
				count++
				sender = nb
			}
		}
		if count == 1 {
			for m, has := range know[sender] {
				if has {
					next[w][m] = true
				}
			}
		}
	}
	return next
}

// scriptedGossip transmits according to a precomputed per-round set.
type scriptedGossip struct{ rounds [][]int32 }

func (s scriptedGossip) Transmit(v int32, round int, rng *xrand.Rand) bool {
	if round-1 >= len(s.rounds) {
		return false
	}
	for _, u := range s.rounds[round-1] {
		if u == v {
			return true
		}
	}
	return false
}

func TestGossipMatchesReferenceImplementation(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(25)
		g := gen.Gnp(n, 0.3, rng)
		// Script random transmitter sets.
		const rounds = 10
		script := make([][]int32, rounds)
		for r := range script {
			script[r] = rng.Sample(n, 1+rng.Intn(n))
		}
		res := Run(g, scriptedGossip{script}, rounds, xrand.New(1))

		// Reference trajectory.
		know := make([][]bool, n)
		for v := range know {
			know[v] = make([]bool, n)
			know[v][v] = true
		}
		for r := 0; r < rounds; r++ {
			know = referenceGossipRound(g, know, script[r])
		}
		var wantTotal int64
		wantMin := n
		for v := range know {
			c := 0
			for _, has := range know[v] {
				if has {
					c++
				}
			}
			wantTotal += int64(c)
			if c < wantMin {
				wantMin = c
			}
		}
		if res.KnownTotal != wantTotal || res.MinKnown != wantMin {
			t.Fatalf("trial %d: engine (total=%d min=%d) != reference (total=%d min=%d)",
				trial, res.KnownTotal, res.MinKnown, wantTotal, wantMin)
		}
	}
}

func TestRunObservedMatchesRun(t *testing.T) {
	const n = 50
	g := connected(t, n, 8, 5)
	p := NewPhased(n, 8)
	budget := 400
	plain := Run(g, p, budget, xrand.New(3))
	var c trace.Counters
	observed := RunObserved(g, p, budget, xrand.New(3), &c)
	if plain != observed {
		t.Fatalf("observed run diverged: %+v vs %+v", observed, plain)
	}
	if c.Runs != 1 || c.Rounds != observed.Rounds {
		t.Fatalf("counters %+v for %d rounds", c, observed.Rounds)
	}
	if observed.Completed && (c.Completed != 1 || c.Informed != n) {
		t.Fatalf("completion not observed: %+v", c)
	}
	// Per-round quantities partition the node set.
	if got := c.Transmissions + c.Successes + c.Collisions + c.Silent; got != c.Rounds*n {
		t.Fatalf("tx+ok+col+silent = %d, want rounds*n = %d", got, c.Rounds*n)
	}
}

func TestRunObservedRecords(t *testing.T) {
	const n = 40
	g := connected(t, n, 7, 9)
	var rec trace.Recorder
	res := RunObserved(g, NewPhased(n, 7), 400, xrand.New(4), &rec)
	if !rec.Began || !rec.Ended {
		t.Fatalf("begin/end not delivered")
	}
	if rec.Info.N != n || rec.Info.Sources != n {
		t.Fatalf("run info %+v", rec.Info)
	}
	if len(rec.Records) != res.Rounds {
		t.Fatalf("%d records for %d rounds", len(rec.Records), res.Rounds)
	}
	last := rec.Records[len(rec.Records)-1]
	if res.Completed && last.Informed != n {
		t.Fatalf("last record informed %d, want %d", last.Informed, n)
	}
	if rec.Summary.Rounds != res.Rounds || rec.Summary.Completed != res.Completed {
		t.Fatalf("summary %+v vs result %+v", rec.Summary, res)
	}
}

// TestGossipDeterministic is the map-iteration audit regression: two runs
// with identical seeds must produce identical results AND identical
// per-round traces, for every stock protocol. The know-sets are index-
// ordered []*bitset.Set (no map iteration anywhere in the loop), so any
// future nondeterminism sneaking in — a map-ordered transmitter list, a
// rng consumed conditionally on map order — trips this test.
func TestGossipDeterministic(t *testing.T) {
	const n = 200
	d := 2 * math.Log(n)
	g := connected(t, n, d, 11)
	protocols := map[string]Protocol{
		"round-robin": RoundRobin{N: n},  // deterministic per-node path
		"uniform":     Uniform{Q: 1 / d}, // sampled fast path
		"phased":      NewPhased(n, d),   // sampled fast path, two regimes
		"per-node": ProtocolFunc(func(v int32, round int, rng *xrand.Rand) bool {
			return rng.Bernoulli(1 / d) // forced per-node path
		}),
	}
	for name, p := range protocols {
		var r1, r2 trace.Recorder
		a := RunObserved(g, p, 5000, xrand.New(42), &r1)
		b := RunObserved(g, p, 5000, xrand.New(42), &r2)
		if a != b {
			t.Fatalf("%s: results differ across identical runs:\n%+v\n%+v", name, a, b)
		}
		if len(r1.Records) != len(r2.Records) {
			t.Fatalf("%s: trace lengths differ: %d vs %d", name, len(r1.Records), len(r2.Records))
		}
		for i := range r1.Records {
			if r1.Records[i] != r2.Records[i] {
				t.Fatalf("%s: round %d records differ:\n%+v\n%+v", name, i+1, r1.Records[i], r2.Records[i])
			}
		}
		if !a.Completed {
			t.Fatalf("%s: gossip incomplete (determinism check vacuous)", name)
		}
	}
}

// TestGossipSampledMatchesPerNodeDistribution: the sampled fast path must
// complete in a similar number of rounds as the per-node path — a coarse
// distributional check (the exact per-seed values differ by design; the
// medians must not).
func TestGossipSampledMatchesPerNodeDistribution(t *testing.T) {
	const n = 150
	d := 2 * math.Log(n)
	g := connected(t, n, d, 13)
	const trials = 31
	sampled := make([]int, trials)
	perNode := make([]int, trials)
	p := NewPhased(n, d)
	forced := ProtocolFunc(p.Transmit) // hides RoundProb: per-node path
	for i := 0; i < trials; i++ {
		sampled[i] = Time(g, p, 100000, xrand.New(uint64(1000+i)))
		perNode[i] = Time(g, forced, 100000, xrand.New(uint64(2000+i)))
	}
	sort.Ints(sampled)
	sort.Ints(perNode)
	ms, mp := sampled[trials/2], perNode[trials/2]
	if ms > 100000 || mp > 100000 {
		t.Fatalf("incomplete runs: sampled median %d, per-node median %d", ms, mp)
	}
	// Medians of the same distribution over 31 trials: allow a wide
	// tolerance; catching a wrong-by-construction sampler (e.g. double
	// sampling, wrong cohort) is the point, not statistical power.
	lo, hi := mp/2, mp*2
	if ms < lo || ms > hi {
		t.Fatalf("sampled median %d outside [%d, %d] around per-node median %d", ms, lo, hi, mp)
	}
}
