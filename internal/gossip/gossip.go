// Package gossip implements GOSSIPING (all-to-all broadcast) in the radio
// model — the natural follow-up problem the paper's conclusions point to
// ("open problems" in radio communication in random graphs): every node
// starts with its own rumor, transmissions carry every rumor the sender
// currently knows, and the task completes when every node knows every
// rumor.
//
// Collision semantics are identical to broadcasting (package radio): a
// listening node receives the transmission iff exactly one of its
// neighbours transmits.
//
// The package provides the simulation engine plus three protocols:
//
//   - RoundRobin: node v transmits alone in rounds ≡ v (mod n);
//     collision-free, completes in ≤ n·D rounds on any connected graph.
//   - Uniform(q): every node transmits with probability q each round (the
//     gossip analogue of the paper's 1/d-selective rounds).
//   - Phased: flooding for the first few rounds (spread the union fast in
//     sparse neighbourhoods), then Uniform(1/d) — the direct adaptation
//     of the paper's Theorem 7 protocol to gossiping.
//
// Experiment E13 measures these on G(n,p): random-graph gossiping with
// q = 1/d completes in O(n/d + ln n)·polylog-ish time in practice because
// each clean reception merges whole rumor sets; the experiment records
// the measured shape.
package gossip

import (
	"math"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Protocol decides whether node v transmits in a round of gossiping.
type Protocol interface {
	Transmit(v int32, round int, rng *xrand.Rand) bool
}

// ProtocolFunc adapts a function to Protocol.
type ProtocolFunc func(v int32, round int, rng *xrand.Rand) bool

// Transmit implements Protocol.
func (f ProtocolFunc) Transmit(v int32, round int, rng *xrand.Rand) bool {
	return f(v, round, rng)
}

// UniformProtocol is an optional capability of Protocol, mirroring
// radio.UniformProtocol: a protocol implements it to declare that in some
// rounds every node transmits independently with the same probability q
// (in gossiping every node holds a rumor, so all n nodes are always
// eligible). For such rounds Run draws k ~ Binomial(n, q) transmitters by
// partial Fisher–Yates in O(k) instead of flipping n coins — the same
// distribution over transmitter sets through a different (much shorter)
// randomness stream, so individual runs at a fixed seed changed when this
// fast path landed while their distributions did not.
type UniformProtocol interface {
	Protocol
	// RoundProb reports whether the round is uniform with probability q;
	// ok = false falls back to per-node Transmit calls for that round.
	RoundProb(round int) (q float64, ok bool)
}

// RoundRobin is the collision-free deterministic baseline.
type RoundRobin struct{ N int }

// Transmit implements Protocol.
func (r RoundRobin) Transmit(v int32, round int, rng *xrand.Rand) bool {
	return int32((round-1)%r.N) == v
}

// Uniform transmits with a fixed probability every round.
type Uniform struct{ Q float64 }

// Transmit implements Protocol.
func (u Uniform) Transmit(v int32, round int, rng *xrand.Rand) bool {
	return rng.Bernoulli(u.Q)
}

// RoundProb implements UniformProtocol: every round is uniform at Q.
func (u Uniform) RoundProb(round int) (float64, bool) { return u.Q, true }

// Phased floods for FloodRounds rounds and then behaves like Uniform(Q) —
// the gossiping analogue of the paper's distributed broadcast protocol.
type Phased struct {
	FloodRounds int
	Q           float64
}

// Transmit implements Protocol.
func (p Phased) Transmit(v int32, round int, rng *xrand.Rand) bool {
	if round <= p.FloodRounds {
		return true
	}
	return rng.Bernoulli(p.Q)
}

// RoundProb implements UniformProtocol: flood rounds are uniform at 1,
// later rounds at Q.
func (p Phased) RoundProb(round int) (float64, bool) {
	if round <= p.FloodRounds {
		return 1, true
	}
	return p.Q, true
}

// NewPhased returns the Phased protocol sized for a graph with n nodes and
// expected degree d, mirroring NewDistributedProtocol's phase lengths.
func NewPhased(n int, d float64) Phased {
	if d < 2 {
		d = 2
	}
	f := 0
	if n > 2 {
		f = int(math.Floor(math.Log(float64(n)) / math.Log(d)))
	}
	if f < 1 {
		f = 1
	}
	return Phased{FloodRounds: f, Q: 1 / d}
}

// Result reports a gossip run.
type Result struct {
	Completed bool
	Rounds    int
	// KnownTotal is the sum over nodes of rumors known at the end (n²
	// when complete).
	KnownTotal int64
	// MinKnown is the smallest per-node rumor count at the end.
	MinKnown int
}

// Run simulates gossiping on g under protocol p for at most maxRounds
// rounds. Every node starts knowing exactly its own rumor. Rumor sets are
// merged on every clean reception.
//
// When p implements UniformProtocol (the stock Uniform and Phased
// protocols do), uniform rounds draw their transmitter set by binomial
// sampling instead of n per-node coin flips; wrap the protocol in a
// ProtocolFunc to force the per-node path (same distribution, the
// pre-fast-path randomness stream).
//
// Memory is one n-bit set per node (n²/8 bytes total): n = 16384 needs
// 32 MiB. Completion requires g to be connected.
func Run(g *graph.Graph, p Protocol, maxRounds int, rng *xrand.Rand) Result {
	return RunObserved(g, p, maxRounds, rng, nil)
}

// RunObserved is Run with a trace observer receiving one record per round
// (nil obs behaves exactly like Run; the observer consumes no randomness).
// In the gossip reading of the record, Successes counts clean receptions,
// NewlyInformed counts nodes that completed their rumor set this round,
// and Informed is the cumulative count of such complete nodes.
func RunObserved(g *graph.Graph, p Protocol, maxRounds int, rng *xrand.Rand, obs trace.Observer) Result {
	n := g.N()
	know := make([]*bitset.Set, n)
	counts := make([]int, n)
	for v := range know {
		know[v] = bitset.New(n)
		know[v].Set(v)
		counts[v] = 1
	}
	complete := 0 // nodes knowing all rumors
	if n == 1 {
		complete = 1
	}

	if obs != nil {
		obs.BeginRun(trace.RunInfo{N: n, M: g.M(), Sources: n, MaxRounds: maxRounds})
	}
	txBuf := make([]int32, 0, n)
	transmitting := make([]bool, n)
	hits := make([]int32, n)
	from := make([]int32, n) // sole transmitting neighbour per receiver
	var touched []int32
	// Sampled-transmitter fast path: for protocols declaring uniform
	// rounds, elig holds all n nodes (every node owns a rumor and may
	// transmit) and each uniform round takes a Binomial(n, q) prefix of a
	// partial Fisher–Yates over it — O(k) instead of n Bernoulli draws.
	up, _ := p.(UniformProtocol)
	var elig []int32
	if up != nil {
		elig = make([]int32, n)
		for i := range elig {
			elig[i] = int32(i)
		}
	}
	round := 0
	var totals trace.Counters
	for round < maxRounds && complete < n {
		round++
		var tx []int32
		sampled := false
		if up != nil {
			if q, ok := up.RoundProb(round); ok {
				sampled = true
				switch {
				case q >= 1:
					tx = elig
				case q <= 0:
					tx = elig[:0]
				default:
					k := rng.Binomial(n, q)
					rng.PartialShuffle(elig, k)
					tx = elig[:k]
				}
			}
		}
		if !sampled {
			tx = txBuf[:0]
			for v := 0; v < n; v++ {
				if p.Transmit(int32(v), round, rng) {
					tx = append(tx, int32(v))
				}
			}
			txBuf = tx
		}
		for _, v := range tx {
			transmitting[v] = true
		}
		for _, v := range tx {
			for _, w := range g.Neighbors(v) {
				if hits[w] == 0 {
					touched = append(touched, w)
				}
				hits[w]++
				from[w] = v
			}
		}
		successes, collisions, newlyComplete := 0, 0, 0
		for _, w := range touched {
			if !transmitting[w] {
				if hits[w] == 1 {
					successes++
					src := from[w]
					if counts[w] < n {
						know[w].Union(know[src])
						c := know[w].Count()
						if c == n && counts[w] != n {
							complete++
							newlyComplete++
						}
						counts[w] = c
					}
				} else {
					collisions++
				}
			}
			hits[w] = 0
		}
		touched = touched[:0]
		for _, v := range tx {
			transmitting[v] = false
		}
		rec := trace.RoundRecord{
			Round:         round,
			Transmitters:  len(tx),
			Successes:     successes,
			Collisions:    collisions,
			Silent:        n - len(tx) - successes - collisions,
			NewlyInformed: newlyComplete,
			Informed:      complete,
		}
		totals.Apply(rec)
		if obs != nil {
			obs.Round(rec)
		}
	}
	if obs != nil {
		obs.EndRun(trace.Summary{
			Completed:     complete == n,
			Rounds:        round,
			Informed:      complete,
			N:             n,
			Transmissions: totals.Transmissions,
			Successes:     totals.Successes,
			Collisions:    totals.Collisions,
			NewlyInformed: totals.NewlyInformed,
		})
	}

	res := Result{Completed: complete == n, Rounds: round, MinKnown: n}
	for _, c := range counts {
		res.KnownTotal += int64(c)
		if c < res.MinKnown {
			res.MinKnown = c
		}
	}
	if n == 0 {
		res.MinKnown = 0
		res.Completed = true
	}
	return res
}

// Time runs the protocol and returns the completion round, or maxRounds+1
// if gossiping did not finish.
func Time(g *graph.Graph, p Protocol, maxRounds int, rng *xrand.Rand) int {
	res := Run(g, p, maxRounds, rng)
	if !res.Completed {
		return maxRounds + 1
	}
	return res.Rounds
}
