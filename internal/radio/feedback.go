package radio

// The collision-detection (CD) model variant. The paper's model gives
// listeners NO collision detection: a collision is indistinguishable from
// silence. The CD variant — equally standard in the radio-network
// literature — lets a listening node distinguish silence, a clean message
// and a collision. RunFeedbackProtocol simulates that model; protocols
// receive their previous round's observation and can adapt (see
// protocols.Backoff for a knowledge-free protocol built on it, and
// experiment E19 for the comparison).

import (
	"repro/internal/xrand"
)

// Feedback is what a node observed in a round.
type Feedback uint8

const (
	// FeedbackNone: the node transmitted, so it heard nothing (radios are
	// half-duplex in this model).
	FeedbackNone Feedback = iota
	// FeedbackSilence: listening, no transmitting neighbour.
	FeedbackSilence
	// FeedbackMessage: listening, exactly one transmitting neighbour.
	FeedbackMessage
	// FeedbackCollision: listening, two or more transmitting neighbours.
	// Only distinguishable from silence in the CD model.
	FeedbackCollision
)

// String names the feedback value.
func (f Feedback) String() string {
	switch f {
	case FeedbackNone:
		return "none"
	case FeedbackSilence:
		return "silence"
	case FeedbackMessage:
		return "message"
	case FeedbackCollision:
		return "collision"
	default:
		return "invalid"
	}
}

// FeedbackProtocol is a distributed protocol in the CD model: the decision
// may additionally use the node's observation from the previous round.
type FeedbackProtocol interface {
	// TransmitCD reports whether informed node v transmits in the given
	// round. prev is v's observation from the previous round
	// (FeedbackSilence before round 1).
	TransmitCD(v int32, round int, informedAt int32, prev Feedback, rng *xrand.Rand) bool
}

// RoundWithFeedback executes one round like Round and additionally fills
// fb (length n) with every node's observation. It returns the newly
// informed nodes.
func (e *Engine) RoundWithFeedback(transmitters []int32, fb []Feedback) ([]int32, error) {
	n := e.g.N()
	if len(fb) != n {
		panic("radio: feedback slice has wrong length")
	}
	for i := range fb {
		fb[i] = FeedbackSilence
	}
	// Count transmitting neighbours with dedicated scratch (the engine's
	// own counters are reset inside Round).
	if e.cdHits == nil {
		e.cdHits = make([]int32, n)
		e.cdMark = make([]bool, n)
	}
	e.cdTx = e.cdTx[:0]
	for _, v := range transmitters {
		if v < 0 || int(v) >= n || e.cdMark[v] {
			continue
		}
		if !e.informed[v] && e.policy == FilterUninformed {
			// Round drops this transmitter; counting it here would hand
			// listeners phantom hits (a collision from a node that never
			// transmitted) and mark the node FeedbackNone though it
			// listened. Mirror Round's filtering exactly.
			continue
		}
		e.cdMark[v] = true
		e.cdTx = append(e.cdTx, v)
	}
	e.cdTouched = e.cdTouched[:0]
	for _, v := range e.cdTx {
		for _, w := range e.g.Neighbors(v) {
			if e.cdHits[w] == 0 {
				e.cdTouched = append(e.cdTouched, w)
			}
			e.cdHits[w]++
		}
	}
	newly, err := e.Round(transmitters)
	if err == nil {
		for _, w := range e.cdTouched {
			if !e.cdMark[w] {
				if e.cdHits[w] == 1 {
					fb[w] = FeedbackMessage
				} else {
					fb[w] = FeedbackCollision
				}
			}
		}
		for _, v := range e.cdTx {
			fb[v] = FeedbackNone
		}
	}
	for _, w := range e.cdTouched {
		e.cdHits[w] = 0
	}
	for _, v := range e.cdTx {
		e.cdMark[v] = false
	}
	return newly, err
}

// RunCDProtocol simulates a CD-model protocol on the engine for at most
// maxRounds rounds, stopping early on completion.
func RunCDProtocol(e *Engine, p FeedbackProtocol, maxRounds int, rng *xrand.Rand) Result {
	n := e.g.N()
	fb := make([]Feedback, n)
	for i := range fb {
		fb[i] = FeedbackSilence
	}
	next := make([]Feedback, n)
	var tx []int32
	for e.round < maxRounds && !e.Done() {
		tx = tx[:0]
		round := e.round + 1
		for v, inf := range e.informed {
			if !inf {
				continue
			}
			if p.TransmitCD(int32(v), round, e.informedAt[v], fb[v], rng) {
				tx = append(tx, int32(v))
			}
		}
		if _, err := e.RoundWithFeedback(tx, next); err != nil {
			panic(err) // only informed nodes are offered
		}
		fb, next = next, fb
	}
	return resultOf(e)
}
