package radio

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/xrand"
)

func TestExecuteScheduleTrace(t *testing.T) {
	g := gen.Path(4)
	e := NewEngine(g, 0, StrictInformed)
	s := &Schedule{Sets: [][]int32{{0}, {1}, {2}}}
	res, err := ExecuteScheduleTrace(e, s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 3 {
		t.Fatalf("result %+v", res.Result)
	}
	if len(res.Trace) != 3 {
		t.Fatalf("trace has %d records", len(res.Trace))
	}
	for i, rec := range res.Trace {
		if rec.Round != i+1 {
			t.Fatalf("record %d has round %d", i, rec.Round)
		}
		if rec.Transmitters != 1 || rec.NewlyInformed != 1 {
			t.Fatalf("record %d: %+v", i, rec)
		}
		if rec.Informed != i+2 {
			t.Fatalf("record %d informed %d", i, rec.Informed)
		}
	}
}

func TestExecuteScheduleTraceStopsEarly(t *testing.T) {
	g := gen.Star(5)
	e := NewEngine(g, 0, StrictInformed)
	s := &Schedule{Sets: [][]int32{{0}, {1}, {2}}}
	res, err := ExecuteScheduleTrace(e, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 1 {
		t.Fatalf("trace %d records after early completion", len(res.Trace))
	}
}

func TestExecuteScheduleTraceError(t *testing.T) {
	g := gen.Path(3)
	e := NewEngine(g, 0, StrictInformed)
	s := &Schedule{Sets: [][]int32{{2}}}
	if _, err := ExecuteScheduleTrace(e, s); err == nil {
		t.Fatal("uninformed transmitter accepted")
	}
}

func TestRunProtocolTraceMatchesUntraced(t *testing.T) {
	const n = 300
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, 12), xrand.New(1), 50)
	if !ok {
		t.Skip("no connected sample")
	}
	p := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		if round <= 2 {
			return true
		}
		return r.Bernoulli(1.0 / 12)
	})
	// Same seed: traced and untraced must agree exactly.
	traced := RunProtocolTrace(NewEngine(g, 0, StrictInformed), p, 2000, xrand.New(7))
	plain := RunProtocol(g, 0, p, 2000, xrand.New(7))
	if traced.Rounds != plain.Rounds || traced.Informed != plain.Informed {
		t.Fatalf("traced %+v != plain %+v", traced.Result.Rounds, plain.Rounds)
	}
	if len(traced.Trace) != traced.Rounds {
		t.Fatalf("trace length %d != rounds %d", len(traced.Trace), traced.Rounds)
	}
	// Informed counts must be non-decreasing and end at n.
	prev := 1
	for _, rec := range traced.Trace {
		if rec.Informed < prev {
			t.Fatalf("informed decreased at round %d", rec.Round)
		}
		prev = rec.Informed
	}
	if traced.Completed && prev != n {
		t.Fatalf("final informed %d != n", prev)
	}
}

func TestRoundRecordString(t *testing.T) {
	s := RoundRecord{Round: 3, Transmitters: 5, NewlyInformed: 2, Informed: 10}.String()
	for _, want := range []string{"round", "3", "5", "2", "10"} {
		if !strings.Contains(s, want) {
			t.Fatalf("record string %q missing %q", s, want)
		}
	}
}
