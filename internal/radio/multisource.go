package radio

// Multi-source broadcasting: the same message starts at k sources (e.g. a
// replicated alarm). The paper's statements are "for any u ∈ V"; the
// multi-source engine and the source-sweep helpers quantify that source
// invariance (experiment E18) and how completion time falls as sources
// are added.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// NewEngineMulti returns an engine in which every listed source knows the
// message at round 0. Duplicate sources are tolerated.
func NewEngineMulti(g *graph.Graph, sources []int32, policy TransmitterPolicy) *Engine {
	if len(sources) == 0 {
		panic("radio: NewEngineMulti needs at least one source")
	}
	e := NewEngine(g, sources[0], policy)
	for _, s := range sources[1:] {
		if s < 0 || int(s) >= g.N() {
			panic(fmt.Sprintf("radio: source %d out of range", s))
		}
		if !e.informed[s] {
			e.informed[s] = true
			e.informedAt[s] = 0
			e.numInformed++
		}
	}
	return e
}

// RunProtocolMulti is RunProtocol starting from several sources.
func RunProtocolMulti(g *graph.Graph, sources []int32, p Protocol, maxRounds int, rng *xrand.Rand) Result {
	e := NewEngineMulti(g, sources, StrictInformed)
	e.runProtocol(p, maxRounds, rng)
	return resultOf(e)
}

// SourceSweep runs the protocol once from each of k sources drawn
// uniformly without replacement and returns the per-source completion
// rounds (sentinel maxRounds+1 for incomplete runs). It quantifies the
// "for any u ∈ V" part of the paper's theorems.
func SourceSweep(g *graph.Graph, k int, p Protocol, maxRounds int, rng *xrand.Rand) []int {
	n := g.N()
	if k > n {
		k = n
	}
	sources := rng.Sample(n, k)
	out := make([]int, len(sources))
	if len(sources) == 0 {
		return out
	}
	// One engine serves every source: ResetFor + the zero-alloc runner give
	// the same per-source results as a fresh engine (same derived streams),
	// without k graph-sized allocations.
	e := NewEngine(g, 0, StrictInformed)
	for i, s := range sources {
		e.ResetFor(s)
		e.runProtocol(p, maxRounds, rng.Derive(uint64(i)+1))
		if e.Done() {
			out[i] = e.round
		} else {
			out[i] = maxRounds + 1
		}
	}
	return out
}
