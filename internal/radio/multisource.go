package radio

// Multi-source broadcasting: the same message starts at k sources (e.g. a
// replicated alarm). The paper's statements are "for any u ∈ V"; the
// multi-source engine and the source-sweep helpers quantify that source
// invariance (experiment E18) and how completion time falls as sources
// are added.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// NewEngineMulti returns an engine in which every listed source knows the
// message at round 0. Duplicate sources are tolerated.
func NewEngineMulti(g *graph.Graph, sources []int32, policy TransmitterPolicy) *Engine {
	if len(sources) == 0 {
		panic("radio: NewEngineMulti needs at least one source")
	}
	e := NewEngine(g, sources[0], policy)
	for _, s := range sources[1:] {
		if s < 0 || int(s) >= g.N() {
			panic(fmt.Sprintf("radio: source %d out of range", s))
		}
		if !e.informed[s] {
			e.informed[s] = true
			e.informedAt[s] = 0
			e.numInformed++
			// Remember the extra source so Reset restores the full initial
			// informed set rather than silently collapsing to {sources[0]}.
			e.extraSources = append(e.extraSources, s)
		}
	}
	return e
}

// RunProtocolMulti is RunProtocol starting from several sources.
func RunProtocolMulti(g *graph.Graph, sources []int32, p Protocol, maxRounds int, rng *xrand.Rand) Result {
	return RunProtocolMultiObserved(g, sources, p, maxRounds, rng, nil)
}

// RunProtocolMultiObserved is RunProtocolMulti with a trace observer
// attached for the duration of the run (nil behaves exactly like
// RunProtocolMulti; the observer consumes no randomness, so results are
// bit-for-bit identical either way).
func RunProtocolMultiObserved(g *graph.Graph, sources []int32, p Protocol, maxRounds int, rng *xrand.Rand, obs trace.Observer) Result {
	e := NewEngineMulti(g, sources, StrictInformed)
	e.Attach(obs)
	e.runProtocol(p, maxRounds, rng)
	return resultOf(e)
}

// SourceSweep runs the protocol once from each of k sources drawn
// uniformly without replacement and returns the per-source completion
// rounds (sentinel maxRounds+1 for incomplete runs). It quantifies the
// "for any u ∈ V" part of the paper's theorems.
func SourceSweep(g *graph.Graph, k int, p Protocol, maxRounds int, rng *xrand.Rand) []int {
	return SourceSweepObserved(g, k, p, maxRounds, rng, nil)
}

// SourceSweepObserved is SourceSweep with a trace observer attached to the
// shared engine: the observer sees one BeginRun/EndRun cycle per source
// (a trace.Counters therefore aggregates over the whole sweep). A nil
// observer behaves exactly like SourceSweep.
func SourceSweepObserved(g *graph.Graph, k int, p Protocol, maxRounds int, rng *xrand.Rand, obs trace.Observer) []int {
	n := g.N()
	if k > n {
		k = n
	}
	sources := rng.Sample(n, k)
	out := make([]int, len(sources))
	if len(sources) == 0 {
		return out
	}
	// One engine serves every source: ResetFor + the zero-alloc runner give
	// the same per-source results as a fresh engine (same derived streams),
	// without k graph-sized allocations.
	e := NewEngine(g, 0, StrictInformed)
	e.Attach(obs)
	for i, s := range sources {
		e.ResetFor(s)
		e.runProtocol(p, maxRounds, rng.Derive(uint64(i)+1))
		if e.Done() {
			out[i] = e.round
		} else {
			out[i] = maxRounds + 1
		}
	}
	return out
}
