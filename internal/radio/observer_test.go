package radio

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func connectedTestGraph(t testing.TB, n int, d float64, seed uint64) *graph.Graph {
	t.Helper()
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(seed), 50)
	if !ok {
		t.Skip("no connected sample")
	}
	return g
}

// TestCountersMatchStats is the accounting-invariance acceptance check:
// over 1000 randomized trials (varying rng and source), an attached
// trace.Counters must agree exactly with Engine.Stats() and with the
// final Result, because both are fed the same per-round records.
func TestCountersMatchStats(t *testing.T) {
	const n = 200
	const d = 8.0
	g := connectedTestGraph(t, n, d, 1)
	p := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		if round <= 2 {
			return true
		}
		return r.Bernoulli(1 / d)
	})
	e := NewEngine(g, 0, StrictInformed)
	var c trace.Counters
	e.Attach(&c)
	rng := xrand.New(99)
	for trial := 0; trial < 1000; trial++ {
		c.Reset()
		e.ResetFor(int32(trial % n))
		res := RunProtocolOn(e, p, 300, rng.Derive(uint64(trial)+1))
		st := e.Stats()
		if c.Rounds != st.Rounds || c.Transmissions != st.Transmissions ||
			c.Successes != st.Deliveries || c.Collisions != st.Collisions ||
			c.NewlyInformed != st.NewlyInformed {
			t.Fatalf("trial %d: observer counters %+v != engine stats %+v", trial, c, st)
		}
		if c.Rounds != res.Rounds || c.Informed != res.Informed {
			t.Fatalf("trial %d: observer (rounds=%d informed=%d) != result (rounds=%d informed=%d)",
				trial, c.Rounds, c.Informed, res.Rounds, res.Informed)
		}
		if c.Runs != 1 {
			t.Fatalf("trial %d: %d BeginRun notifications, want 1", trial, c.Runs)
		}
		if res.Completed && c.Completed != 1 {
			t.Fatalf("trial %d: completed run not counted", trial)
		}
		// The per-round quantities partition the node set.
		if got := c.Transmissions + c.Successes + c.Collisions + c.Silent; got != c.Rounds*n {
			t.Fatalf("trial %d: tx+ok+col+silent = %d, want rounds*n = %d", trial, got, c.Rounds*n)
		}
	}
}

// TestCountersMatchStatsSchedule is the same invariance over the schedule
// replay path.
func TestCountersMatchStatsSchedule(t *testing.T) {
	g := gen.Star(6)
	e := NewEngine(g, 0, StrictInformed)
	var c trace.Counters
	e.Attach(&c)
	s := &Schedule{Sets: [][]int32{{0}, {1, 2}, {3}}}
	res, err := ExecuteScheduleOn(e, s)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if c.Rounds != st.Rounds || c.Transmissions != st.Transmissions ||
		c.Successes != st.Deliveries || c.Collisions != st.Collisions {
		t.Fatalf("observer %+v != stats %+v", c, st)
	}
	if c.Informed != res.Informed {
		t.Fatalf("observer informed %d != result %d", c.Informed, res.Informed)
	}
	if c.Runs != 1 || c.Completed != 1 {
		t.Fatalf("runs=%d completed=%d, want 1/1", c.Runs, c.Completed)
	}
}

// TestObserverSurvivesReset: Reset clears the engine's stats but keeps the
// attached observer, so one observer aggregates across trials.
func TestObserverSurvivesReset(t *testing.T) {
	g := gen.Path(5)
	e := NewEngine(g, 0, StrictInformed)
	var c trace.Counters
	e.Attach(&c)
	for i := 0; i < 3; i++ {
		if _, err := ExecuteScheduleOn(e, &Schedule{Sets: [][]int32{{0}, {1}, {2}, {3}}}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Runs != 3 || c.Completed != 3 {
		t.Fatalf("runs=%d completed=%d, want 3/3", c.Runs, c.Completed)
	}
	if c.Rounds != 12 {
		t.Fatalf("rounds=%d, want 12", c.Rounds)
	}
	if e.Stats().Rounds != 4 {
		t.Fatalf("engine stats rounds=%d, want 4 (last run only)", e.Stats().Rounds)
	}
}

// TestRecorderRoundRecords checks the per-round record fields on a graph
// where every outcome class (success, collision, silence) occurs.
func TestRecorderRoundRecords(t *testing.T) {
	// 0-1, 0-2, 1-3, 2-3: transmitting {1,2} collides at 3 and at 0.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.Build()
	e := NewEngine(g, 0, StrictInformed)
	var rec trace.Recorder
	e.Attach(&rec)
	res, err := ExecuteScheduleOn(e, &Schedule{Sets: [][]int32{{0}, {1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("node 4 is isolated; broadcast cannot complete")
	}
	if !rec.Began || !rec.Ended {
		t.Fatalf("begin/end not delivered: %+v", rec)
	}
	if rec.Info.N != 5 || rec.Info.M != 4 || rec.Info.Sources != 1 || rec.Info.MaxRounds != 2 {
		t.Fatalf("run info %+v", rec.Info)
	}
	want := []trace.RoundRecord{
		// Round 1: 0 transmits; 1 and 2 receive cleanly; 3, 4 silent.
		{Round: 1, Transmitters: 1, Successes: 2, Collisions: 0, Silent: 2, NewlyInformed: 2, Informed: 3},
		// Round 2: 1 and 2 transmit; 0 and 3 both collide; 4 silent.
		{Round: 2, Transmitters: 2, Successes: 0, Collisions: 2, Silent: 1, NewlyInformed: 0, Informed: 3},
	}
	if len(rec.Records) != len(want) {
		t.Fatalf("got %d records", len(rec.Records))
	}
	for i, w := range want {
		if rec.Records[i] != w {
			t.Fatalf("record %d = %+v, want %+v", i, rec.Records[i], w)
		}
	}
	if rec.Summary.Rounds != 2 || rec.Summary.Informed != 3 || rec.Summary.Completed {
		t.Fatalf("summary %+v", rec.Summary)
	}
}

// TestNilObserverAllocs is the benchmark guard in test form: the reuse
// fast path must stay allocation-free with no observer attached, and
// RunProtocolOn must not gain allocations from the observer layer (its
// only allocation is the Result's InformedAt copy).
func TestNilObserverAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement")
	}
	const n = 2000
	const d = 10.0
	g := connectedTestGraph(t, n, d, 3)
	e := NewEngine(g, 0, StrictInformed)
	p := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		if round <= 2 {
			return true
		}
		return r.Bernoulli(1 / d)
	})
	rng := xrand.New(5)
	if avg := testing.AllocsPerRun(20, func() {
		BroadcastTimeOn(e, p, 400, rng)
	}); avg != 0 {
		t.Fatalf("BroadcastTimeOn with nil observer: %.1f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		RunProtocolOn(e, p, 400, rng)
	}); avg > 1 {
		t.Fatalf("RunProtocolOn with nil observer: %.1f allocs/op, want <=1 (InformedAt copy)", avg)
	}
}

// TestObservedRunBitIdentical: attaching an observer must not change the
// simulation (it consumes no randomness).
func TestObservedRunBitIdentical(t *testing.T) {
	const n = 400
	const d = 9.0
	g := connectedTestGraph(t, n, d, 7)
	p := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		if round <= 2 {
			return true
		}
		return r.Bernoulli(1 / d)
	})
	plain := RunProtocol(g, 0, p, 500, xrand.New(42))
	e := NewEngine(g, 0, StrictInformed)
	e.Attach(&trace.Recorder{})
	observed := RunProtocolOn(e, p, 500, xrand.New(42))
	if plain.Rounds != observed.Rounds || plain.Informed != observed.Informed || plain.Stats != observed.Stats {
		t.Fatalf("observed run diverged: %+v vs %+v", observed, plain)
	}
	for i := range plain.InformedAt {
		if plain.InformedAt[i] != observed.InformedAt[i] {
			t.Fatalf("InformedAt[%d] differs", i)
		}
	}
}

// TestMultiSourceObserved covers the multi-source observed runner.
func TestMultiSourceObserved(t *testing.T) {
	const n = 300
	const d = 8.0
	g := connectedTestGraph(t, n, d, 11)
	p := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		return r.Bernoulli(1 / d)
	})
	var c trace.Counters
	res := RunProtocolMultiObserved(g, []int32{0, 5, 9}, p, 400, xrand.New(3), &c)
	if c.Rounds != res.Rounds || c.Informed != res.Informed {
		t.Fatalf("counters (rounds=%d informed=%d) != result (%d, %d)", c.Rounds, c.Informed, res.Rounds, res.Informed)
	}
	plain := RunProtocolMulti(g, []int32{0, 5, 9}, p, 400, xrand.New(3))
	if plain.Rounds != res.Rounds || plain.Informed != res.Informed {
		t.Fatalf("observed multi run diverged from plain run")
	}
}

// TestSourceSweepObserved: the shared-engine sweep delivers one run cycle
// per source to the observer.
func TestSourceSweepObserved(t *testing.T) {
	const n = 200
	const d = 8.0
	g := connectedTestGraph(t, n, d, 13)
	p := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		if round <= 2 {
			return true
		}
		return r.Bernoulli(1 / d)
	})
	var c trace.Counters
	times := SourceSweepObserved(g, 5, p, 300, xrand.New(21), &c)
	if c.Runs != len(times) {
		t.Fatalf("observer saw %d runs, sweep ran %d", c.Runs, len(times))
	}
	plain := SourceSweep(g, 5, p, 300, xrand.New(21))
	for i := range plain {
		if plain[i] != times[i] {
			t.Fatalf("observed sweep diverged at source %d: %d vs %d", i, times[i], plain[i])
		}
	}
}
