package radio

// Fuzz target and regression tests for the schedule text format. The
// parser consumes untrusted input, so the properties are: never panic,
// never trust the header's round count for allocation, reject anything
// that does not round-trip, and round-trip exactly what it accepts.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func FuzzReadSchedule(f *testing.F) {
	f.Add([]byte("schedule 2\n0 1 2\n\n"))
	f.Add([]byte("schedule 0\n"))
	f.Add([]byte("schedule 3\n# comment\n1\n2 2 2\n\n"))
	f.Add([]byte("schedule 99999999999999999999\n0\n")) // count overflows int64
	f.Add([]byte("schedule 2000000000\n0\n"))           // count would OOM if preallocated
	f.Add([]byte("schedule 1\n4294967296\n"))           // vertex overflows int32
	f.Add([]byte("schedule 1 trailing\n0\n"))           // junk after header
	f.Add([]byte("schedule -1\n"))
	f.Add([]byte("not a schedule\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSchedule(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must survive a write/read round trip intact.
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo of accepted schedule failed: %v", err)
		}
		s2, err := ReadSchedule(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\ninput %q\nwrote %q", err, data, buf.Bytes())
		}
		if len(s.Sets) != len(s2.Sets) {
			t.Fatalf("round trip changed round count: %d -> %d", len(s.Sets), len(s2.Sets))
		}
		for i := range s.Sets {
			// nil and empty both serialise as a blank line.
			if len(s.Sets[i]) == 0 && len(s2.Sets[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(s.Sets[i], s2.Sets[i]) {
				t.Fatalf("round %d changed: %v -> %v", i+1, s.Sets[i], s2.Sets[i])
			}
		}
	})
}

// TestReadScheduleHeaderNotTrusted pins the allocation fix: a header
// claiming two billion rounds over a one-line body must fail with a
// count mismatch, not preallocate gigabytes first.
func TestReadScheduleHeaderNotTrusted(t *testing.T) {
	_, err := ReadSchedule(strings.NewReader("schedule 2000000000\n0\n"))
	if err == nil || !strings.Contains(err.Error(), "found 1") {
		t.Fatalf("want count-mismatch error, got %v", err)
	}
}

// TestReadScheduleVertexOverflow pins the ParseInt fix: a vertex id that
// does not fit in int32 must be rejected, not silently wrapped onto a
// small (possibly valid) id.
func TestReadScheduleVertexOverflow(t *testing.T) {
	for _, in := range []string{
		"schedule 1\n4294967296\n", // wraps to 0 under int32(Atoi)
		"schedule 1\n2147483648\n", // int32 max + 1
	} {
		if _, err := ReadSchedule(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted overflowing vertex id: %q", in)
		}
	}
}

// TestReadScheduleHeaderStrict pins the header parse: trailing tokens and
// non-numeric counts are errors (Sscanf used to accept trailing junk).
func TestReadScheduleHeaderStrict(t *testing.T) {
	for _, in := range []string{
		"schedule 1 junk\n0\n",
		"schedule\n",
		"schedule x\n",
		"sched 1\n0\n",
	} {
		if _, err := ReadSchedule(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted malformed header: %q", in)
		}
	}
}
