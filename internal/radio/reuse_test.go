package radio

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// smallRandomGraph builds a deterministic pseudo-random connected-ish graph
// without depending on internal/gen.
func smallRandomGraph(n int, extra int, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(rng.Int31n(int32(v)), int32(v)) // random spanning tree
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(rng.Int31n(int32(n)), rng.Int31n(int32(n)))
	}
	return b.Build()
}

// A failed Round must leave the engine exactly as it was: no round counted,
// no stats, and no stale transmit marks corrupting later collision counts.
// This is a regression test — the out-of-range error path used to return
// without clearing transmitting[]/txList, and both error paths counted a
// round that never executed.
func TestRoundErrorLeavesEngineUntouched(t *testing.T) {
	build := func() *Engine {
		b := graph.NewBuilder(3) // path 0-1-2
		b.AddEdge(0, 1)
		b.AddEdge(1, 2)
		return NewEngine(b.Build(), 0, StrictInformed)
	}

	cases := []struct {
		name string
		tx   []int32
		is   error
	}{
		// The valid transmitter 0 is marked before validation reaches the
		// bad entry, so the mark must be rolled back.
		{"out of range", []int32{0, 7}, nil},
		{"uninformed strict", []int32{0, 2}, ErrUninformedTransmitter},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := build()
			_, err := e.Round(tc.tx)
			if err == nil {
				t.Fatalf("Round(%v) succeeded, want error", tc.tx)
			}
			if tc.is != nil && !errors.Is(err, tc.is) {
				t.Fatalf("Round(%v) error = %v, want %v", tc.tx, err, tc.is)
			}
			if e.RoundCount() != 0 {
				t.Errorf("failed round was counted: RoundCount = %d", e.RoundCount())
			}
			if e.Stats() != (Stats{}) {
				t.Errorf("failed round changed stats: %+v", e.Stats())
			}

			// A subsequent valid round must match a fresh engine exactly.
			// With leaked transmit marks, node 0 would be skipped as
			// "already transmitting" and inform nobody.
			newly, err := e.Round([]int32{0})
			if err != nil {
				t.Fatalf("valid round after failed round: %v", err)
			}
			fresh := build()
			wantNewly, err := fresh.Round([]int32{0})
			if err != nil {
				t.Fatalf("valid round on fresh engine: %v", err)
			}
			if len(newly) != len(wantNewly) || len(newly) != 1 || newly[0] != wantNewly[0] {
				t.Errorf("newly informed after failed round = %v, fresh engine = %v", newly, wantNewly)
			}
			if e.Stats() != fresh.Stats() {
				t.Errorf("stats after failed+valid round = %+v, fresh engine = %+v", e.Stats(), fresh.Stats())
			}
			if e.RoundCount() != fresh.RoundCount() {
				t.Errorf("round count = %d, fresh engine = %d", e.RoundCount(), fresh.RoundCount())
			}
		})
	}
}

func TestRunProtocolOnMatchesRunProtocol(t *testing.T) {
	g := smallRandomGraph(120, 240, 5)
	p := ProtocolFunc(func(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
		return rng.Float64() < 0.25
	})
	e := NewEngine(g, 0, StrictInformed)
	for seed := uint64(1); seed <= 4; seed++ {
		fresh := RunProtocol(g, 0, p, 400, xrand.New(seed))
		reused := RunProtocolOn(e, p, 400, xrand.New(seed))
		if fresh.Completed != reused.Completed || fresh.Rounds != reused.Rounds ||
			fresh.Informed != reused.Informed || fresh.Stats != reused.Stats {
			t.Fatalf("seed %d: reused engine result %+v, fresh %+v", seed, reused, fresh)
		}
		for v := range fresh.InformedAt {
			if fresh.InformedAt[v] != reused.InformedAt[v] {
				t.Fatalf("seed %d: InformedAt[%d] = %d, fresh %d", seed, v, reused.InformedAt[v], fresh.InformedAt[v])
			}
		}
	}
}

func TestBroadcastTimeOnMatchesBroadcastTime(t *testing.T) {
	g := smallRandomGraph(100, 150, 6)
	p := ProtocolFunc(func(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
		return rng.Float64() < 0.2
	})
	e := NewEngine(g, 0, StrictInformed)
	for seed := uint64(1); seed <= 6; seed++ {
		want := BroadcastTime(g, 0, p, 300, xrand.New(seed))
		got := BroadcastTimeOn(e, p, 300, xrand.New(seed))
		if got != want {
			t.Fatalf("seed %d: BroadcastTimeOn = %d, BroadcastTime = %d", seed, got, want)
		}
	}
}

func TestExecuteScheduleOnMatchesExecuteSchedule(t *testing.T) {
	b := graph.NewBuilder(4) // path 0-1-2-3
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	s := &Schedule{Sets: [][]int32{{0}, {1}, {2}}}

	e := NewEngine(g, 0, StrictInformed)
	// Dirty the engine first so ExecuteScheduleOn's reset is exercised.
	if _, err := e.Round([]int32{0}); err != nil {
		t.Fatal(err)
	}
	got, err := ExecuteScheduleOn(e, s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExecuteSchedule(g, 0, s, StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != want.Completed || got.Rounds != want.Rounds || got.Stats != want.Stats {
		t.Fatalf("ExecuteScheduleOn = %+v, ExecuteSchedule = %+v", got, want)
	}
}

func TestResetForSweepsSources(t *testing.T) {
	g := smallRandomGraph(60, 90, 7)
	p := ProtocolFunc(func(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
		return rng.Float64() < 0.3
	})
	e := NewEngine(g, 0, StrictInformed)
	for _, src := range []int32{3, 0, 59, 17} {
		e.ResetFor(src)
		if e.Source() != src || e.InformedCount() != 1 || !e.Informed(src) {
			t.Fatalf("ResetFor(%d): source=%d informed=%d", src, e.Source(), e.InformedCount())
		}
		got := RunProtocolOn(e, p, 300, xrand.New(uint64(src)+11))
		want := RunProtocol(g, src, p, 300, xrand.New(uint64(src)+11))
		if got.Rounds != want.Rounds || got.Informed != want.Informed {
			t.Fatalf("src %d: reused %+v, fresh %+v", src, got, want)
		}
	}
	if !panics(func() { e.ResetFor(60) }) {
		t.Error("ResetFor out of range did not panic")
	}
}

func panics(f func()) (p bool) {
	defer func() { p = recover() != nil }()
	f()
	return false
}
