package radio

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func TestFeedbackString(t *testing.T) {
	cases := map[Feedback]string{
		FeedbackNone: "none", FeedbackSilence: "silence",
		FeedbackMessage: "message", FeedbackCollision: "collision",
		Feedback(9): "invalid",
	}
	for f, want := range cases {
		if f.String() != want {
			t.Fatalf("%d.String() = %q", f, f.String())
		}
	}
}

func TestRoundWithFeedbackObservations(t *testing.T) {
	// Gadget: 0-1, 0-2, 1-3, 2-3, plus isolated-ish 4 connected to 0.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.AddEdge(0, 4)
	g := b.Build()
	e := NewEngine(g, 0, StrictInformed)
	fb := make([]Feedback, 5)
	// Round 1: source transmits. 1, 2, 4 hear a message; 3 hears silence.
	if _, err := e.RoundWithFeedback([]int32{0}, fb); err != nil {
		t.Fatal(err)
	}
	if fb[0] != FeedbackNone {
		t.Fatalf("transmitter feedback %v", fb[0])
	}
	for _, v := range []int32{1, 2, 4} {
		if fb[v] != FeedbackMessage {
			t.Fatalf("node %d feedback %v, want message", v, fb[v])
		}
	}
	if fb[3] != FeedbackSilence {
		t.Fatalf("node 3 feedback %v, want silence", fb[3])
	}
	// Round 2: 1 and 2 transmit. 3 hears a collision; 0 hears a
	// collision too (both are its neighbours); 4 hears silence.
	if _, err := e.RoundWithFeedback([]int32{1, 2}, fb); err != nil {
		t.Fatal(err)
	}
	if fb[3] != FeedbackCollision || fb[0] != FeedbackCollision {
		t.Fatalf("collision feedback wrong: fb[3]=%v fb[0]=%v", fb[3], fb[0])
	}
	if fb[4] != FeedbackSilence {
		t.Fatalf("node 4 feedback %v", fb[4])
	}
	if fb[1] != FeedbackNone || fb[2] != FeedbackNone {
		t.Fatal("transmitters must observe none")
	}
}

func TestRoundWithFeedbackWrongLengthPanics(t *testing.T) {
	g := gen.Path(3)
	e := NewEngine(g, 0, StrictInformed)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length feedback slice accepted")
		}
	}()
	_, _ = e.RoundWithFeedback([]int32{0}, make([]Feedback, 2))
}

// echoProtocol transmits exactly once, the round after hearing a message,
// for testing feedback plumbing.
type echoProtocol struct {
	fired map[int32]bool
}

func (p *echoProtocol) TransmitCD(v int32, round int, informedAt int32, prev Feedback, rng *xrand.Rand) bool {
	if v == 0 && round == 1 {
		return true
	}
	if prev == FeedbackMessage && !p.fired[v] {
		p.fired[v] = true
		return true
	}
	return false
}

func TestRunCDProtocolDeliversFeedback(t *testing.T) {
	// Path 0-1-2-3: echo forwarding moves the message one hop per round.
	g := gen.Path(4)
	e := NewEngine(g, 0, StrictInformed)
	res := RunCDProtocol(e, &echoProtocol{fired: map[int32]bool{}}, 20, xrand.New(1))
	if !res.Completed {
		t.Fatalf("echo relay incomplete: %d/4", res.Informed)
	}
	if res.Rounds != 3 {
		t.Fatalf("echo relay took %d rounds, want 3", res.Rounds)
	}
}

func TestRunCDProtocolRespectsBudget(t *testing.T) {
	g := gen.Path(5)
	e := NewEngine(g, 0, StrictInformed)
	silent := cdFunc(func(v int32, round int, at int32, prev Feedback, rng *xrand.Rand) bool {
		return false
	})
	res := RunCDProtocol(e, silent, 7, xrand.New(2))
	if res.Completed || res.Rounds != 7 {
		t.Fatalf("budget not respected: %+v", res.Rounds)
	}
}

type cdFunc func(v int32, round int, at int32, prev Feedback, rng *xrand.Rand) bool

func (f cdFunc) TransmitCD(v int32, round int, at int32, prev Feedback, rng *xrand.Rand) bool {
	return f(v, round, at, prev, rng)
}
