package radio

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// star builds a star with centre 0 and n-1 leaves.
func star(n int) *graph.Graph { return gen.Star(n) }

func TestSingleTransmitterInformsAllNeighbors(t *testing.T) {
	g := star(6)
	e := NewEngine(g, 0, StrictInformed)
	newly, err := e.Round([]int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 5 {
		t.Fatalf("centre transmission informed %d leaves, want 5", len(newly))
	}
	if !e.Done() {
		t.Fatal("star broadcast should complete in one round")
	}
	for v := int32(1); v < 6; v++ {
		if e.InformedAt(v) != 1 {
			t.Fatalf("leaf %d informedAt = %d", v, e.InformedAt(v))
		}
	}
}

func TestCollisionBlocksReception(t *testing.T) {
	// Path 1-0-2 plus 1-3, 2-3: if 1 and 2 both transmit, node 3
	// (adjacent to both) hears nothing, node 0 (adjacent to both) hears
	// nothing either.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.Build()

	e := NewEngine(g, 0, StrictInformed)
	if _, err := e.Round([]int32{0}); err != nil {
		t.Fatal(err) // informs 1 and 2
	}
	if e.Informed(3) {
		t.Fatal("node 3 informed too early")
	}
	newly, err := e.Round([]int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 0 {
		t.Fatalf("collision at 3 should inform nobody, informed %v", newly)
	}
	if e.Stats().Collisions == 0 {
		t.Fatal("collision not counted")
	}
	// A single transmitter gets through.
	newly, err = e.Round([]int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 1 || newly[0] != 3 {
		t.Fatalf("round 3 informed %v, want [3]", newly)
	}
}

func TestTransmitterDoesNotListen(t *testing.T) {
	// Triangle 0-1-2. After round 1 (source 0 transmits), 1 and 2 are
	// informed. Suppose only node 1 were informed and both 0 and... use a
	// custom scenario: path 0-1. Node 1 uninformed; if node 1 also
	// transmits (magic policy) while 0 transmits, node 1 must NOT receive.
	g := gen.Path(2)
	e := NewEngine(g, 0, MagicTransmitters)
	newly, err := e.Round([]int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 0 {
		t.Fatal("a transmitting node must not receive")
	}
	if e.Informed(1) {
		t.Fatal("node 1 marked informed while transmitting")
	}
}

func TestStrictPolicyRejectsUninformed(t *testing.T) {
	g := gen.Path(3)
	e := NewEngine(g, 0, StrictInformed)
	_, err := e.Round([]int32{2})
	if !errors.Is(err, ErrUninformedTransmitter) {
		t.Fatalf("err = %v, want ErrUninformedTransmitter", err)
	}
}

func TestFilterPolicyDropsUninformed(t *testing.T) {
	g := gen.Path(3)
	e := NewEngine(g, 0, FilterUninformed)
	newly, err := e.Round([]int32{0, 2}) // 2 is uninformed -> dropped
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 1 || newly[0] != 1 {
		t.Fatalf("newly = %v, want [1]", newly)
	}
	if e.Stats().Transmissions != 1 {
		t.Fatalf("transmissions = %d, want 1", e.Stats().Transmissions)
	}
}

func TestMagicPolicyAllowsUninformed(t *testing.T) {
	g := gen.Path(3)
	e := NewEngine(g, 0, MagicTransmitters)
	newly, err := e.Round([]int32{2}) // uninformed 2 transmits anyway
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 1 || newly[0] != 1 {
		t.Fatalf("magic transmission informed %v, want [1]", newly)
	}
}

func TestDuplicateTransmittersCountOnce(t *testing.T) {
	g := star(4)
	e := NewEngine(g, 0, StrictInformed)
	newly, err := e.Round([]int32{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 3 {
		t.Fatalf("duplicates caused collision: newly = %v", newly)
	}
	if e.Stats().Transmissions != 1 {
		t.Fatalf("transmissions = %d, want 1", e.Stats().Transmissions)
	}
}

func TestOutOfRangeTransmitter(t *testing.T) {
	g := gen.Path(3)
	e := NewEngine(g, 0, StrictInformed)
	if _, err := e.Round([]int32{7}); err == nil {
		t.Fatal("out-of-range transmitter accepted")
	}
}

func TestPathBroadcastRoundByRound(t *testing.T) {
	const n = 10
	g := gen.Path(n)
	e := NewEngine(g, 0, StrictInformed)
	// On a path, transmitting the frontier each round moves information
	// one hop per round.
	for r := 1; r < n; r++ {
		if _, err := e.Round([]int32{int32(r - 1)}); err != nil {
			t.Fatal(err)
		}
		if !e.Informed(int32(r)) {
			t.Fatalf("node %d not informed at round %d", r, r)
		}
	}
	if !e.Done() {
		t.Fatal("path broadcast incomplete")
	}
	if e.RoundCount() != n-1 {
		t.Fatalf("rounds = %d, want %d", e.RoundCount(), n-1)
	}
}

func TestReset(t *testing.T) {
	g := star(5)
	e := NewEngine(g, 0, StrictInformed)
	if _, err := e.Round([]int32{0}); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if e.InformedCount() != 1 || e.RoundCount() != 0 || e.Stats().Rounds != 0 {
		t.Fatal("Reset incomplete")
	}
	if !e.Informed(0) || e.Informed(1) {
		t.Fatal("Reset lost source or kept leaf informed")
	}
}

func TestExecuteSchedule(t *testing.T) {
	g := gen.Path(4)
	s := &Schedule{Sets: [][]int32{{0}, {1}, {2}}}
	res, err := ExecuteSchedule(g, 0, s, StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 3 || res.Informed != 4 {
		t.Fatalf("result %+v", res)
	}
	for v, at := range res.InformedAt {
		if at != int32(v) {
			t.Fatalf("InformedAt[%d] = %d", v, at)
		}
	}
}

func TestExecuteScheduleStopsEarly(t *testing.T) {
	g := star(4)
	s := &Schedule{Sets: [][]int32{{0}, {1}, {2}, {3}}}
	res, err := ExecuteSchedule(g, 0, s, StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("early stop failed: rounds = %d", res.Rounds)
	}
}

func TestExecuteScheduleIncomplete(t *testing.T) {
	g := gen.Path(5)
	s := &Schedule{Sets: [][]int32{{0}}}
	res, err := ExecuteSchedule(g, 0, s, StrictInformed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("short schedule reported complete")
	}
	if res.Informed != 2 {
		t.Fatalf("informed = %d, want 2", res.Informed)
	}
}

func TestRunProtocolAlwaysTransmitOnPath(t *testing.T) {
	// "Every informed node transmits every round" succeeds on a path:
	// only the frontier's single new node has exactly one transmitting
	// neighbour... actually on a path interior nodes have two informed
	// neighbours transmitting, colliding. The frontier node w at distance
	// r has exactly one informed neighbour, so it receives. Broadcast
	// completes in n-1 rounds.
	const n = 12
	g := gen.Path(n)
	rng := xrand.New(1)
	always := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool { return true })
	res := RunProtocol(g, 0, always, 5*n, rng)
	if !res.Completed {
		t.Fatalf("flooding on path incomplete: %+v", res.Informed)
	}
	if res.Rounds != n-1 {
		t.Fatalf("flooding on path took %d rounds, want %d", res.Rounds, n-1)
	}
}

func TestRunProtocolFloodingStallsOnStarPair(t *testing.T) {
	// Two informed leaves of a star transmitting forever always collide
	// at the centre: broadcast from a 2-informed state never finishes.
	// Construct: vertices 0(src),1,2; edges 0-1, 0-2, and 1,2 both
	// adjacent to 3. After round 1, 1 and 2 informed. Flooding then has
	// 0,1,2 transmitting every round; 3 hears 1 and 2 -> collision
	// forever.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.Build()
	rng := xrand.New(2)
	always := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool { return true })
	res := RunProtocol(g, 0, always, 50, rng)
	if res.Completed {
		t.Fatal("deterministic flooding should deadlock on the collision gadget")
	}
	if res.Informed != 3 {
		t.Fatalf("informed = %d, want 3", res.Informed)
	}
}

func TestRunProtocolRandomizedEscapesCollision(t *testing.T) {
	// Same gadget, but transmitting with probability 1/2 breaks the
	// symmetry quickly.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.Build()
	rng := xrand.New(3)
	half := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		return r.Bernoulli(0.5)
	})
	res := RunProtocol(g, 0, half, 200, rng)
	if !res.Completed {
		t.Fatal("randomized protocol failed to escape the collision gadget")
	}
}

func TestBroadcastTimeSentinel(t *testing.T) {
	g := gen.Path(6)
	rng := xrand.New(4)
	never := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool { return false })
	if got := BroadcastTime(g, 0, never, 10, rng); got != 11 {
		t.Fatalf("BroadcastTime sentinel = %d, want 11", got)
	}
	always := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool { return true })
	if got := BroadcastTime(g, 0, always, 10, rng); got != 5 {
		t.Fatalf("BroadcastTime = %d, want 5", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := star(5) // centre 0, leaves 1..4
	e := NewEngine(g, 0, StrictInformed)
	if _, err := e.Round([]int32{0}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Transmissions != 1 || st.Deliveries != 4 || st.NewlyInformed != 4 || st.Collisions != 0 {
		t.Fatalf("stats after round 1: %+v", st)
	}
	// Two leaves transmit: the centre hears a collision.
	if _, err := e.Round([]int32{1, 2}); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", st.Collisions)
	}
	if st.Rounds != 2 {
		t.Fatalf("rounds = %d", st.Rounds)
	}
}

func TestDeliveriesToAlreadyInformed(t *testing.T) {
	// Triangle: after 0 transmits, 1 and 2 informed. If 1 transmits,
	// both 0 and 2 hear it cleanly (deliveries) but nobody is newly
	// informed.
	g := gen.Complete(3)
	e := NewEngine(g, 0, StrictInformed)
	if _, err := e.Round([]int32{0}); err != nil {
		t.Fatal(err)
	}
	newly, err := e.Round([]int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 0 {
		t.Fatalf("newly = %v", newly)
	}
	st := e.Stats()
	if st.Deliveries != 2+2 {
		t.Fatalf("deliveries = %d, want 4", st.Deliveries)
	}
	if st.NewlyInformed != 2 {
		t.Fatalf("newlyInformed = %d, want 2", st.NewlyInformed)
	}
}

func TestEngineScratchIsolationAcrossRounds(t *testing.T) {
	// The hit counters must be fully reset between rounds; otherwise a
	// second identical round would see phantom collisions.
	g := star(6)
	e := NewEngine(g, 0, StrictInformed)
	if _, err := e.Round([]int32{0}); err != nil {
		t.Fatal(err)
	}
	before := e.Stats().Collisions
	if _, err := e.Round([]int32{1}); err != nil {
		t.Fatal(err)
	}
	// Node 0 hears leaf 1 alone: no collision.
	if e.Stats().Collisions != before {
		t.Fatal("stale hit counters caused phantom collision")
	}
}

func TestRandomGraphFloodingProgress(t *testing.T) {
	// Sanity: on G(n,p) with healthy degree, a 1/d-probability protocol
	// eventually completes.
	rng := xrand.New(7)
	const n = 500
	d := 12.0
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), rng, 50)
	if !ok {
		t.Skip("could not draw connected sample")
	}
	p := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		if round <= 3 {
			return true
		}
		return r.Bernoulli(1 / d)
	})
	res := RunProtocol(g, 0, p, 2000, rng)
	if !res.Completed {
		t.Fatalf("randomized flooding incomplete: informed %d/%d", res.Informed, n)
	}
}

func TestNewEnginePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad source did not panic")
		}
	}()
	NewEngine(gen.Path(3), 5, StrictInformed)
}

func BenchmarkRound(b *testing.B) {
	rng := xrand.New(1)
	const n = 50000
	g := gen.Gnp(n, gen.PForDegree(n, 20), rng)
	e := NewEngine(g, 0, MagicTransmitters)
	tx := rng.Sample(n, n/20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Round(tx); err != nil {
			b.Fatal(err)
		}
	}
}
