package radio

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// referenceRound is a deliberately naive O(n²) implementation of the radio
// round semantics, used as a differential oracle for the optimized engine:
// given the informed set and a transmitter set, return the set of nodes
// informed after the round.
func referenceRound(g *graph.Graph, informed map[int32]bool, transmitters []int32) map[int32]bool {
	tx := make(map[int32]bool)
	for _, v := range transmitters {
		tx[v] = true
	}
	next := make(map[int32]bool, len(informed))
	for v := range informed {
		next[v] = true
	}
	for w := int32(0); int(w) < g.N(); w++ {
		if tx[w] {
			continue // transmitting nodes do not listen
		}
		count := 0
		for _, nb := range g.Neighbors(w) {
			if tx[nb] {
				count++
			}
		}
		if count == 1 {
			next[w] = true
		}
	}
	return next
}

func TestEngineMatchesReferenceImplementation(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(40)
		g := gen.Gnp(n, 0.15+0.5*rng.Float64(), rng)
		e := NewEngine(g, 0, MagicTransmitters)
		informed := map[int32]bool{0: true}
		for round := 0; round < 12; round++ {
			k := 1 + rng.Intn(n)
			tx := rng.Sample(n, k)
			want := referenceRound(g, informed, tx)
			if _, err := e.Round(tx); err != nil {
				t.Fatal(err)
			}
			// Magic policy: uninformed transmitters still transmit, but
			// they do not become informed by transmitting. The reference
			// treats informedness identically: transmitters retain their
			// previous status.
			for v := int32(0); int(v) < n; v++ {
				if want[v] != e.Informed(v) {
					t.Fatalf("trial %d round %d: node %d engine=%v reference=%v (tx=%v)",
						trial, round, v, e.Informed(v), want[v], tx)
				}
			}
			informed = want
		}
	}
}

func TestEngineStrictMatchesReference(t *testing.T) {
	// Same differential test under the physical policy: transmitters are
	// drawn from the informed set only.
	rng := xrand.New(7)
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(40)
		g := gen.Gnp(n, 0.2+0.4*rng.Float64(), rng)
		e := NewEngine(g, 0, StrictInformed)
		informed := map[int32]bool{0: true}
		for round := 0; round < 15; round++ {
			// Pick a random subset of the informed set.
			var pool []int32
			for v := range informed {
				pool = append(pool, v)
			}
			// Deterministic order for reproducibility.
			for i := 1; i < len(pool); i++ {
				for j := i; j > 0 && pool[j] < pool[j-1]; j-- {
					pool[j], pool[j-1] = pool[j-1], pool[j]
				}
			}
			tx := rng.SubsetEach(nil, pool, 0.5)
			want := referenceRound(g, informed, tx)
			if _, err := e.Round(tx); err != nil {
				t.Fatal(err)
			}
			for v := int32(0); int(v) < n; v++ {
				if want[v] != e.Informed(v) {
					t.Fatalf("trial %d round %d: node %d engine=%v reference=%v",
						trial, round, v, e.Informed(v), want[v])
				}
			}
			informed = want
		}
	}
}

func TestInformedSetMonotoneProperty(t *testing.T) {
	rng := xrand.New(13)
	const n = 100
	g := gen.Gnp(n, 0.1, rng)
	e := NewEngine(g, 0, MagicTransmitters)
	prevCount := e.InformedCount()
	prev := make([]bool, n)
	prev[0] = true
	for round := 0; round < 50; round++ {
		tx := rng.Sample(n, 1+rng.Intn(10))
		if _, err := e.Round(tx); err != nil {
			t.Fatal(err)
		}
		if e.InformedCount() < prevCount {
			t.Fatalf("informed count decreased at round %d", round)
		}
		prevCount = e.InformedCount()
		for v := 0; v < n; v++ {
			if prev[v] && !e.Informed(int32(v)) {
				t.Fatalf("node %d lost the message", v)
			}
			prev[v] = e.Informed(int32(v))
		}
	}
}

func TestInformedAtConsistencyProperty(t *testing.T) {
	rng := xrand.New(17)
	const n = 200
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, 12), rng, 50)
	if !ok {
		t.Skip("no connected sample")
	}
	p := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		if round <= 2 {
			return true
		}
		return r.Bernoulli(0.08)
	})
	res := RunProtocol(g, 0, p, 5000, rng)
	if !res.Completed {
		t.Skip("unlucky run")
	}
	// informedAt[src] == 0; all others in [1, rounds]; and a node's
	// informing round is at least its BFS distance.
	dist := graph.Distances(g, 0)
	for v, at := range res.InformedAt {
		if v == 0 {
			if at != 0 {
				t.Fatalf("source informedAt = %d", at)
			}
			continue
		}
		if at < 1 || int(at) > res.Rounds {
			t.Fatalf("informedAt[%d] = %d out of [1,%d]", v, at, res.Rounds)
		}
		if at < dist[v] {
			t.Fatalf("node %d informed at round %d, below BFS distance %d", v, at, dist[v])
		}
	}
}

func TestScheduleReplayDeterministic(t *testing.T) {
	rng := xrand.New(23)
	const n = 150
	g := gen.Gnp(n, 0.08, rng)
	sets := make([][]int32, 20)
	for i := range sets {
		sets[i] = rng.Sample(n, 1+rng.Intn(20))
	}
	s := &Schedule{Sets: sets}
	a, err := ExecuteSchedule(g, 0, s, MagicTransmitters)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteSchedule(g, 0, s, MagicTransmitters)
	if err != nil {
		t.Fatal(err)
	}
	if a.Informed != b.Informed || a.Rounds != b.Rounds {
		t.Fatal("replay nondeterministic")
	}
	for i := range a.InformedAt {
		if a.InformedAt[i] != b.InformedAt[i] {
			t.Fatal("replay nondeterministic in informedAt")
		}
	}
}
