package radio

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/xrand"
)

func TestNewEngineMulti(t *testing.T) {
	g := gen.Path(6)
	e := NewEngineMulti(g, []int32{0, 5, 0}, StrictInformed)
	if e.InformedCount() != 2 {
		t.Fatalf("informed = %d, want 2", e.InformedCount())
	}
	if e.InformedAt(5) != 0 || e.InformedAt(0) != 0 {
		t.Fatal("sources not at round 0")
	}
	// Both ends transmit: the path closes from both sides.
	rounds := 0
	for !e.Done() {
		var tx []int32
		tx = e.AppendInformed(tx)
		if _, err := e.Round(tx); err != nil {
			t.Fatal(err)
		}
		rounds++
		if rounds > 10 {
			t.Fatal("two-source path flood did not finish")
		}
	}
	// Path 0..5 from both ends, flooding: meet in the middle in ~3 rounds
	// (some collisions in the middle may add one).
	if rounds > 4 {
		t.Fatalf("two-source flood took %d rounds", rounds)
	}
}

func TestNewEngineMultiPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sources did not panic")
		}
	}()
	NewEngineMulti(gen.Path(3), nil, StrictInformed)
}

func TestNewEngineMultiOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad source did not panic")
		}
	}()
	NewEngineMulti(gen.Path(3), []int32{0, 9}, StrictInformed)
}

func TestRunProtocolMultiFasterWithMoreSources(t *testing.T) {
	const n = 2000
	d := 2 * math.Log(n)
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(1), 50)
	if !ok {
		t.Skip("no connected sample")
	}
	p := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		if round <= 2 {
			return true
		}
		return r.Bernoulli(1 / d)
	})
	med := func(k int) int {
		var ts []int
		for trial := 0; trial < 5; trial++ {
			rng := xrand.New(100 + uint64(trial))
			sources := rng.Sample(n, k)
			res := RunProtocolMulti(g, sources, p, 5000, rng)
			if !res.Completed {
				t.Fatal("incomplete")
			}
			ts = append(ts, res.Rounds)
		}
		for i := 1; i < len(ts); i++ {
			for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
		return ts[len(ts)/2]
	}
	one := med(1)
	many := med(64)
	if many > one {
		t.Fatalf("64 sources (%d rounds) slower than 1 source (%d rounds)", many, one)
	}
}

func TestSourceSweep(t *testing.T) {
	const n = 500
	d := 2 * math.Log(n)
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(2), 50)
	if !ok {
		t.Skip("no connected sample")
	}
	p := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		if round <= 2 {
			return true
		}
		return r.Bernoulli(1 / d)
	})
	rng := xrand.New(3)
	times := SourceSweep(g, 10, p, 5000, rng)
	if len(times) != 10 {
		t.Fatalf("sweep returned %d times", len(times))
	}
	for _, tt := range times {
		if tt <= 0 || tt > 5000 {
			t.Fatalf("completion time %d out of range", tt)
		}
	}
	// k > n clamps.
	times = SourceSweep(gen.Complete(5), 100, p, 100, rng)
	if len(times) != 5 {
		t.Fatalf("clamped sweep returned %d", len(times))
	}
}

func TestSourceSweepDeterministic(t *testing.T) {
	g := gen.Complete(20)
	p := ProtocolFunc(func(v int32, round int, at int32, r *xrand.Rand) bool {
		return r.Bernoulli(0.2)
	})
	a := SourceSweep(g, 5, p, 500, xrand.New(7))
	b := SourceSweep(g, 5, p, 500, xrand.New(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sweep not deterministic")
		}
	}
}
