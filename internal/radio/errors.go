package radio

// Sentinel errors of the simulation API. Callers classify failures with
// errors.Is instead of matching message strings; every error the engine,
// the runners and the schedule builders return wraps exactly one of these
// (plus, for cancellations, the context's own cause), so a serving layer
// can map simulation failures onto transport status codes without parsing
// text. The repro facade re-exports them.

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrCanceled marks a run stopped cooperatively by its context: the
	// context-aware runners check for cancellation between rounds and
	// return the partial result together with an error wrapping both
	// ErrCanceled and the context's cause, so errors.Is works against
	// ErrCanceled, context.Canceled and context.DeadlineExceeded alike.
	ErrCanceled = errors.New("radio: run canceled")

	// ErrNoSuchSource marks a broadcast source outside the graph's vertex
	// range [0, n).
	ErrNoSuchSource = errors.New("radio: no such source")

	// ErrScheduleMismatch marks a schedule that does not fit the graph or
	// the radio model: out-of-range or uninformed transmitters on replay,
	// or a centralized construction that cannot produce a valid schedule
	// for the instance (empty graph, vertices unreachable from the source,
	// phase overruns). ErrUninformedTransmitter wraps it.
	ErrScheduleMismatch = errors.New("radio: schedule mismatch")
)

// Canceled wraps a canceled context's cause in ErrCanceled; callers get
// errors.Is against both the sentinel and the underlying context error.
// It is the one construction site for cancellation errors, shared by the
// engine's runners and the sweep/campaign worker pools.
func Canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}
