package radio

// Schedule serialisation: a plain-text format so schedules built by one
// tool (or an expensive offline computation) can be replayed by another.
//
// Format:
//
//	schedule <rounds>
//	<v1> <v2> ...      # one line per round; blank line = empty round
//
// Vertex ids are base-10; comment lines start with '#'.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTo serialises the schedule.
func (s *Schedule) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "schedule %d\n", len(s.Sets))
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, set := range s.Sets {
		for i, v := range set {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return total, err
				}
				total++
			}
			n, err := bw.WriteString(strconv.Itoa(int(v)))
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return total, err
		}
		total++
	}
	return total, bw.Flush()
}

// ReadSchedule parses the WriteTo format.
func ReadSchedule(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("radio: empty schedule input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 || header[0] != "schedule" {
		return nil, fmt.Errorf("radio: bad schedule header %q", sc.Text())
	}
	rounds64, err := strconv.ParseInt(header[1], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("radio: bad schedule header %q: %v", sc.Text(), err)
	}
	if rounds64 < 0 {
		return nil, fmt.Errorf("radio: negative round count")
	}
	rounds := int(rounds64)
	// The header is untrusted input: preallocate only up to a sane bound
	// and let append grow the slice if the body really is that long.
	prealloc := rounds
	if prealloc > 1024 {
		prealloc = 1024
	}
	s := &Schedule{Sets: make([][]int32, 0, prealloc)}
	for sc.Scan() && len(s.Sets) < rounds {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "#") {
			continue
		}
		var set []int32
		if line != "" {
			fields := strings.Fields(line)
			set = make([]int32, len(fields))
			for i, f := range fields {
				// ParseInt with bitSize 32, not Atoi: a vertex id that
				// overflows int32 must be an error, not a silent wrap to an
				// unrelated (possibly valid) id.
				v, err := strconv.ParseInt(f, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("radio: round %d: %v", len(s.Sets)+1, err)
				}
				set[i] = int32(v)
			}
		}
		s.Sets = append(s.Sets, set)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Sets) != rounds {
		return nil, fmt.Errorf("radio: header says %d rounds, found %d", rounds, len(s.Sets))
	}
	return s, nil
}
