package radio

// Per-round tracing: detailed round records for debugging protocols and
// for the planner/radiosim tools, kept out of the hot simulation paths
// (the untraced runners allocate nothing per round).

import (
	"fmt"

	"repro/internal/xrand"
)

// RoundRecord describes one executed round.
type RoundRecord struct {
	Round         int
	Transmitters  int // scheduled transmitters this round (before dedup)
	NewlyInformed int
	Informed      int // cumulative after the round
	Collisions    int // cumulative collision count after the round
}

// String formats the record for log output.
func (r RoundRecord) String() string {
	return fmt.Sprintf("round %3d: %6d transmitters, %6d newly informed, %7d total",
		r.Round, r.Transmitters, r.NewlyInformed, r.Informed)
}

// TracedResult bundles a Result with its per-round records.
type TracedResult struct {
	Result
	Trace []RoundRecord
}

// ExecuteScheduleTrace runs the schedule on the engine and records every
// round. The engine's policy applies as in Engine.Round.
func ExecuteScheduleTrace(e *Engine, s *Schedule) (TracedResult, error) {
	var out TracedResult
	for _, set := range s.Sets {
		if e.Done() {
			break
		}
		newly, err := e.Round(set)
		if err != nil {
			return out, err
		}
		out.Trace = append(out.Trace, RoundRecord{
			Round:         e.RoundCount(),
			Transmitters:  len(set),
			NewlyInformed: len(newly),
			Informed:      e.InformedCount(),
			Collisions:    e.Stats().Collisions,
		})
	}
	out.Result = resultOf(e)
	return out, nil
}

// RunProtocolTrace simulates the protocol like RunProtocol and records
// every round.
func RunProtocolTrace(e *Engine, p Protocol, maxRounds int, rng *xrand.Rand) TracedResult {
	var out TracedResult
	var tx []int32
	g := e.Graph()
	for e.RoundCount() < maxRounds && !e.Done() {
		tx = tx[:0]
		round := e.RoundCount() + 1
		for v := 0; v < g.N(); v++ {
			if e.Informed(int32(v)) && p.Transmit(int32(v), round, e.InformedAt(int32(v)), rng) {
				tx = append(tx, int32(v))
			}
		}
		newly, err := e.Round(tx)
		if err != nil {
			panic(err) // only informed nodes are offered
		}
		out.Trace = append(out.Trace, RoundRecord{
			Round:         e.RoundCount(),
			Transmitters:  len(tx),
			NewlyInformed: len(newly),
			Informed:      e.InformedCount(),
			Collisions:    e.Stats().Collisions,
		})
	}
	out.Result = resultOf(e)
	return out
}
