package radio

// Per-round tracing conveniences built on the trace.Observer layer: the
// *Trace runners attach an in-memory trace.Recorder for the duration of
// one run and return the complete per-round record list as a value. They
// compose with an already-attached observer (both see every round), and
// the untraced runners keep their allocation-free hot path.

import (
	"repro/internal/trace"
	"repro/internal/xrand"
)

// RoundRecord describes one executed round; it is the engine-facing alias
// of trace.RoundRecord.
type RoundRecord = trace.RoundRecord

// TracedResult bundles a Result with its per-round records.
type TracedResult struct {
	Result
	Trace []RoundRecord
}

// withRecorder attaches rec alongside any existing observer, runs fn, and
// restores the previous observer.
func withRecorder(e *Engine, rec *trace.Recorder, fn func()) {
	prev := e.obs
	e.Attach(trace.Multi(prev, rec))
	defer e.Attach(prev)
	fn()
}

// ExecuteScheduleTrace runs the schedule on the engine and records every
// round. The engine's policy applies as in Engine.Round.
func ExecuteScheduleTrace(e *Engine, s *Schedule) (TracedResult, error) {
	var rec trace.Recorder
	var res Result
	var err error
	withRecorder(e, &rec, func() {
		res, err = executeScheduleOn(e, s)
	})
	if err != nil {
		return TracedResult{}, err
	}
	return TracedResult{Result: res, Trace: rec.Records}, nil
}

// RunProtocolTrace simulates the protocol like RunProtocol and records
// every round. The engine is driven from its current state (it is not
// reset), matching Engine.runProtocol.
func RunProtocolTrace(e *Engine, p Protocol, maxRounds int, rng *xrand.Rand) TracedResult {
	var rec trace.Recorder
	withRecorder(e, &rec, func() {
		e.runProtocol(p, maxRounds, rng)
	})
	return TracedResult{Result: resultOf(e), Trace: rec.Records}
}
