package radio

import (
	"math"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// uniformTest is a minimal UniformProtocol: flood for Flood rounds, then
// transmit with probability Q. PanicOnTransmit proves the fast path is
// taken — if the engine ever falls back to per-node Transmit calls while
// it is set, the test dies loudly.
type uniformTest struct {
	Flood           int
	Q               float64
	Pool            Cohort
	UsePool         bool
	PanicOnTransmit bool
}

func (p uniformTest) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	if p.PanicOnTransmit {
		panic("uniformTest.Transmit called on the sampled path")
	}
	if round <= p.Flood {
		return true
	}
	return rng.Bernoulli(p.Q)
}

func (p uniformTest) RoundProb(round int) (float64, Cohort, bool) {
	cohort := AllInformed
	if p.UsePool {
		cohort = p.Pool
	}
	if round <= p.Flood {
		return 1, cohort, true
	}
	return p.Q, cohort, true
}

func connectedGnp(t testing.TB, n int, d float64, seed uint64) *graph.Graph {
	t.Helper()
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), xrand.New(seed), 50)
	if !ok {
		t.Fatal("no connected sample")
	}
	return g
}

// TestSampledPathUsed: a uniform protocol whose Transmit panics must run to
// completion — every round goes through binomial sampling, never through
// per-node calls. With SetPerNodeSampling(true) the same protocol must
// panic, proving the opt-out really restores the per-node path.
func TestSampledPathUsed(t *testing.T) {
	g := connectedGnp(t, 500, 12, 1)
	p := uniformTest{Flood: 2, Q: 1.0 / 12, PanicOnTransmit: true}
	res := RunProtocol(g, 0, p, 5000, xrand.New(3))
	if !res.Completed {
		t.Fatalf("sampled run incomplete: %+v", res)
	}

	e := NewEngine(g, 0, StrictInformed)
	e.SetPerNodeSampling(true)
	defer func() {
		if recover() == nil {
			t.Fatal("per-node opt-out did not call Transmit")
		}
	}()
	RunProtocolOn(e, p, 5000, xrand.New(3))
}

// TestSampleTransmittersCohortSubset: across many rounds and both cohort
// kinds, every sampled transmitter set must be duplicate-free and a subset
// of exactly the declared cohort.
func TestSampleTransmittersCohortSubset(t *testing.T) {
	g := connectedGnp(t, 400, 10, 2)
	rng := xrand.New(7)
	e := NewEngine(g, 0, StrictInformed)
	cutoff := int32(3)
	cohorts := []struct {
		name string
		c    Cohort
	}{
		{"all-informed", AllInformed},
		{"informed-by-3", InformedBy(cutoff)},
	}
	// Advance the engine a few rounds (flooding) so both cohorts are
	// non-trivial, then sample repeatedly at several probabilities.
	p := uniformTest{Flood: 6, Q: 0.1}
	seen := make(map[int32]bool)
	for round := 1; round <= 6; round++ {
		tx := e.sampleTransmitters(1, AllInformed, rng)
		if _, err := e.Round(tx); err != nil {
			t.Fatal(err)
		}
		e.appendEligible(e.newly)
	}
	_ = p
	for _, co := range cohorts {
		for _, q := range []float64{0.01, 0.1, 0.5, 0.9} {
			for trial := 0; trial < 50; trial++ {
				tx := e.sampleTransmitters(q, co.c, rng)
				for k := range seen {
					delete(seen, k)
				}
				for _, v := range tx {
					if seen[v] {
						t.Fatalf("%s q=%g: duplicate transmitter %d", co.name, q, v)
					}
					seen[v] = true
					if !e.Informed(v) {
						t.Fatalf("%s q=%g: uninformed transmitter %d", co.name, q, v)
					}
					if !co.c.Contains(e.InformedAt(v)) {
						t.Fatalf("%s q=%g: node %d (informedAt %d) outside cohort",
							co.name, q, v, e.InformedAt(v))
					}
				}
			}
			// The eligible list must still be exactly the cohort (the
			// partial shuffle permutes, never drops or duplicates).
			want := 0
			for v := 0; v < g.N(); v++ {
				if co.c.Contains(e.InformedAt(int32(v))) {
					want++
				}
			}
			if got := len(e.eligible(co.c)); got != want {
				t.Fatalf("%s: eligible list has %d members, cohort has %d", co.name, got, want)
			}
		}
	}
}

// TestSampledTransmitterCountsBinomial: with a constant eligible set, the
// per-round transmitter counts must follow Binomial(n_elig, q). The
// construction: every node except one edgeless holdout starts informed, so
// the run never completes and the all-informed cohort stays fixed at
// n - 1 members for all rounds. Chi-square over binned counts at
// significance 0.001 (deterministic seed, so no flakes: the test fails
// only if the sampler is actually wrong or the seed is astronomically
// unlucky — in which case bump the seed, not the threshold).
func TestSampledTransmitterCountsBinomial(t *testing.T) {
	const nElig = 40
	const q = 0.3
	const rounds = 4000
	// nElig nodes in a path, plus one isolated holdout that can never be
	// informed.
	b := graph.NewBuilder(nElig + 1)
	for i := 0; i < nElig-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.Build()
	sources := make([]int32, nElig)
	for i := range sources {
		sources[i] = int32(i)
	}
	e := NewEngineMulti(g, sources, StrictInformed)
	var rec trace.Recorder
	e.Attach(&rec)
	e.RunProtocol(uniformTest{Q: q, PanicOnTransmit: true}, rounds, xrand.New(11))
	if len(rec.Records) != rounds {
		t.Fatalf("expected %d rounds, got %d", rounds, len(rec.Records))
	}

	// Observed counts.
	obs := make([]int, nElig+1)
	for _, r := range rec.Records {
		if r.Transmitters < 0 || r.Transmitters > nElig {
			t.Fatalf("transmitter count %d outside [0,%d]", r.Transmitters, nElig)
		}
		obs[r.Transmitters]++
	}

	// Binomial(nElig, q) pmf via logs.
	pmf := make([]float64, nElig+1)
	lgamma := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
	for k := 0; k <= nElig; k++ {
		lp := lgamma(float64(nElig+1)) - lgamma(float64(k+1)) - lgamma(float64(nElig-k+1)) +
			float64(k)*math.Log(q) + float64(nElig-k)*math.Log(1-q)
		pmf[k] = math.Exp(lp)
	}

	// Bin adjacent counts until every bin expects >= 5 observations.
	var obsBin, expBin []float64
	co, ce := 0.0, 0.0
	for k := 0; k <= nElig; k++ {
		co += float64(obs[k])
		ce += pmf[k] * rounds
		if ce >= 5 {
			obsBin = append(obsBin, co)
			expBin = append(expBin, ce)
			co, ce = 0, 0
		}
	}
	if ce > 0 { // fold the tail into the last bin
		obsBin[len(obsBin)-1] += co
		expBin[len(expBin)-1] += ce
	}
	chi2 := 0.0
	for i := range obsBin {
		d := obsBin[i] - expBin[i]
		chi2 += d * d / expBin[i]
	}
	df := float64(len(obsBin) - 1)
	// Wilson–Hilferty critical value at alpha = 0.001 (z = 3.09).
	crit := df * math.Pow(1-2/(9*df)+3.09*math.Sqrt(2/(9*df)), 3)
	if chi2 > crit {
		t.Fatalf("chi-square %.2f > critical %.2f (df %.0f): transmitter counts not Binomial(%d, %g)",
			chi2, crit, df, nElig, q)
	}
}

// TestBroadcastTimeDistributionSampledVsPerNode: the sampled and per-node
// paths draw from the same broadcast-time distribution. Compared via
// median and inter-quartile overlap over independent trials (the exact
// per-seed values differ by design — only the distributions agree).
func TestBroadcastTimeDistributionSampledVsPerNode(t *testing.T) {
	const n = 600
	const d = 12.0
	g := connectedGnp(t, n, d, 4)
	const trials = 61
	const budget = 10000
	p := uniformTest{Flood: 3, Q: 1 / d}
	perNode := ProtocolFunc(p.Transmit) // hides RoundProb: forces per-node
	sampled := make([]int, trials)
	direct := make([]int, trials)
	for i := 0; i < trials; i++ {
		sampled[i] = BroadcastTime(g, 0, p, budget, xrand.New(uint64(100+i)))
		direct[i] = BroadcastTime(g, 0, perNode, budget, xrand.New(uint64(9000+i)))
	}
	sort.Ints(sampled)
	sort.Ints(direct)
	if sampled[trials-1] > budget || direct[trials-1] > budget {
		t.Fatalf("incomplete runs: sampled max %d, per-node max %d", sampled[trials-1], direct[trials-1])
	}
	ms, md := sampled[trials/2], direct[trials/2]
	if ms < md/2 || ms > md*2 {
		t.Fatalf("sampled median %d vs per-node median %d: distributions diverge", ms, md)
	}
	// Quartile sanity: the sampled quartiles must land within the full
	// per-node range (and vice versa) — a sampler that is systematically
	// biased fails this even when medians accidentally agree.
	q1s, q3s := sampled[trials/4], sampled[3*trials/4]
	if q1s > direct[trials-1] || q3s < direct[0] {
		t.Fatalf("sampled IQR [%d,%d] disjoint from per-node range [%d,%d]",
			q1s, q3s, direct[0], direct[trials-1])
	}
}

// TestSampledRestrictedCohortMatchesPerNode: a protocol restricting its
// pool to early-informed nodes must inform the same set of nodes as its
// per-node twin on a deterministic regime (q = 1 flood by the cohort only),
// where both paths are randomness-free and must agree exactly.
func TestSampledRestrictedCohortMatchesPerNode(t *testing.T) {
	g := gen.Path(30)
	cutoff := int32(5)
	// Deterministic: cohort members always transmit (q = 1); per-node twin
	// implements the identical rule through Transmit.
	coP := uniformTest{Flood: 0, Q: 1, UsePool: true, Pool: InformedBy(cutoff)}
	pn := ProtocolFunc(func(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
		return informedAt <= cutoff
	})
	a := RunProtocol(g, 0, coP, 100, xrand.New(1))
	b := RunProtocol(g, 0, pn, 100, xrand.New(1))
	if a.Rounds != b.Rounds || a.Informed != b.Informed || a.Stats != b.Stats {
		t.Fatalf("restricted cohort diverges from per-node twin:\n%+v\n%+v", a.Stats, b.Stats)
	}
	for v := range a.InformedAt {
		if a.InformedAt[v] != b.InformedAt[v] {
			t.Fatalf("InformedAt[%d]: sampled %d, per-node %d", v, a.InformedAt[v], b.InformedAt[v])
		}
	}
	// On a path with cutoff c, only nodes informed by round c transmit, so
	// the wave stalls: exactly nodes 0..2c (roughly) get informed, not all.
	if a.Completed {
		t.Fatal("restricted pool unexpectedly completed on a long path")
	}
}

// TestSampledNilObserverAllocs: the sampled fast path on a reused engine
// must allocate nothing per trial, like the per-node path (the eligible
// lists retain their capacity across Reset).
func TestSampledNilObserverAllocs(t *testing.T) {
	g := connectedGnp(t, 2000, 15, 5)
	e := NewEngine(g, 0, StrictInformed)
	// Box the protocol once: passing the struct value per call would
	// charge the interface conversion to the engine.
	var p Protocol = uniformTest{Flood: 2, Q: 1.0 / 15, PanicOnTransmit: true}
	rng := xrand.New(1)
	BroadcastTimeOn(e, p, 5000, rng) // warm-up sizes the eligible lists
	avg := testing.AllocsPerRun(20, func() {
		BroadcastTimeOn(e, p, 5000, rng)
	})
	if avg != 0 {
		t.Fatalf("sampled BroadcastTimeOn allocates %.1f per trial, want 0", avg)
	}
}

// TestSampledObserverRecordShape: records emitted on the sampled path have
// the same shape as per-node records — per-round classes partition the
// node set and cumulative counts match the result.
func TestSampledObserverRecordShape(t *testing.T) {
	g := connectedGnp(t, 800, 10, 6)
	var rec trace.Recorder
	e := NewEngine(g, 0, StrictInformed)
	e.Attach(&rec)
	res := RunProtocolOn(e, uniformTest{Flood: 2, Q: 0.1, PanicOnTransmit: true}, 5000, xrand.New(2))
	if !res.Completed {
		t.Fatalf("incomplete: %+v", res)
	}
	n := g.N()
	cum := 1
	for i, r := range rec.Records {
		if r.Round != i+1 {
			t.Fatalf("record %d has round %d", i, r.Round)
		}
		if r.Transmitters+r.Successes+r.Collisions+r.Silent != n {
			t.Fatalf("round %d: classes sum to %d, want %d", r.Round,
				r.Transmitters+r.Successes+r.Collisions+r.Silent, n)
		}
		cum += r.NewlyInformed
		if r.Informed != cum {
			t.Fatalf("round %d: cumulative informed %d, record says %d", r.Round, cum, r.Informed)
		}
	}
	if cum != res.Informed {
		t.Fatalf("trace accumulates %d informed, result says %d", cum, res.Informed)
	}
}
