// Package radio implements the synchronous radio-network model of the
// paper (§1.1) exactly:
//
//   - Communication proceeds in synchronous steps (rounds).
//   - In each step every node either transmits or listens.
//   - A transmitted message reaches all neighbours of the transmitter.
//   - A listening node w RECEIVES a message in a step iff exactly one of
//     its neighbours transmits in that step. If two or more neighbours
//     transmit, a collision occurs at w and w receives nothing. Nodes get
//     no collision detection: a collision is indistinguishable from
//     silence.
//   - A transmitting node receives nothing in that step.
//
// The package provides a low-level Engine that advances one round at a
// time given an explicit transmitter set (used by centralized schedules and
// by the lower-bound harnesses) and a higher-level protocol runner for
// fully distributed randomized protocols in which every informed node
// locally decides each round whether to transmit.
package radio

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// TransmitterPolicy controls how the engine treats transmitters that do not
// hold the message yet.
type TransmitterPolicy int

const (
	// StrictInformed rejects any schedule that asks an uninformed node to
	// transmit; this is the physical model (an uninformed node has nothing
	// to send). Engine.Round returns an error in this case.
	StrictInformed TransmitterPolicy = iota
	// FilterUninformed silently drops uninformed transmitters from the
	// set. Useful when replaying randomized schedules whose sets were
	// drawn without knowledge of the information frontier.
	FilterUninformed
	// MagicTransmitters lets uninformed nodes transmit the message anyway.
	// This is the RELAXED model used inside the proof of Theorem 6, where
	// the adversary's transmit sets are charged "regardless of the status
	// of the transmitting nodes"; it can only help the broadcast, so lower
	// bounds measured under it remain valid lower bounds.
	MagicTransmitters
)

// NotInformed is the value of InformedAt for nodes that have not received
// the message.
const NotInformed int32 = -1

// Stats accumulates counters over the rounds executed by an Engine. It is
// a view of the engine's built-in trace.Counters (see Engine.Stats): the
// engine accounts every round through the same trace.RoundRecord it hands
// to an attached observer, so Stats and observer-side totals cannot drift.
type Stats struct {
	Rounds        int // rounds executed
	Transmissions int // total node-transmissions
	Deliveries    int // listening nodes that received the message (incl. already-informed)
	NewlyInformed int // uninformed nodes that became informed
	Collisions    int // listening-node-rounds lost to >=2 transmitting neighbours
}

// Engine simulates the radio model on a fixed graph from a single source.
// It is not safe for concurrent use; run one Engine per goroutine.
type Engine struct {
	g        *graph.Graph
	src      int32
	policy   TransmitterPolicy
	informed []bool
	// informedAt[v] is the round in which v was informed (0 for the
	// source), or NotInformed.
	informedAt  []int32
	numInformed int
	// hits counts transmitting neighbours this round, saturating at 2:
	// delivery classification only distinguishes 0 / exactly 1 / >=2, and a
	// byte array keeps the randomly-accessed working set 4x smaller than
	// int32 counters (the engine's round loop is memory-bound on it).
	hits         []uint8
	touched      []int32 // vertices with nonzero hits, for O(deg) reset (sparse rounds)
	transmitting []bool
	txList       []int32
	round        int
	// counters is the engine's accounting, fed one trace.RoundRecord per
	// round by the same code path that notifies obs; Stats() reads from it.
	counters trace.Counters
	// obs, when non-nil, receives a trace.RoundRecord after every round.
	// The nil case costs one branch per round — the untraced fast path
	// allocates nothing (see reuse_test.go and BenchmarkBroadcastReuse).
	obs trace.Observer
	// txObs is obs's trace.TransmitterObserver extension when it declares
	// one, cached at Attach time so Round pays no per-round assertion.
	txObs trace.TransmitterObserver
	// extraSources holds the initial informed set beyond src for engines
	// built by NewEngineMulti, so Reset restores the full set.
	extraSources []int32
	newly        []int32 // scratch reused across rounds
	txScratch    []int32 // scratch transmit set for the protocol runners
	// Sampled-transmitter fast path (see UniformProtocol). The protocol
	// runner keeps incremental per-cohort eligible lists so a uniform round
	// draws k ~ Binomial(|eligible|, q) transmitters in O(k) instead of
	// scanning all n nodes and flipping one coin per informed node. The
	// lists are rebuilt lazily at the start of each protocol run and
	// appended from the newly-informed set after every round, so
	// steady-state rounds allocate nothing.
	perNode      bool    // opt-out: force per-node Transmit calls
	eligAll      []int32 // every informed node, in informed order
	eligAllOK    bool
	eligCohort   []int32 // informed nodes with informedAt <= eligCutoff
	eligCutoff   int32
	eligCohortOK bool
	// Scratch for RoundWithFeedback (allocated lazily).
	cdHits    []int32
	cdMark    []bool
	cdTx      []int32
	cdTouched []int32
	// Result-buffer reuse (see SetResultReuse): when on, resultOf fills
	// Result.InformedAt from resultBuf instead of a fresh per-run copy.
	reuseResult bool
	resultBuf   []int32
}

// NewEngine returns an engine on g in which only src knows the message.
// Round 0 is the initial state; the first executed round is round 1.
func NewEngine(g *graph.Graph, src int32, policy TransmitterPolicy) *Engine {
	n := g.N()
	if src < 0 || int(src) >= n {
		panic(fmt.Sprintf("radio: source %d out of range [0,%d)", src, n))
	}
	e := &Engine{
		g:            g,
		src:          src,
		policy:       policy,
		informed:     make([]bool, n),
		informedAt:   make([]int32, n),
		hits:         make([]uint8, n),
		transmitting: make([]bool, n),
	}
	for i := range e.informedAt {
		e.informedAt[i] = NotInformed
	}
	e.informed[src] = true
	e.informedAt[src] = 0
	e.numInformed = 1
	return e
}

// Reset returns the engine to its initial state — the full initial
// informed set: the source, plus every extra source for engines built by
// NewEngineMulti — without reallocating, making one engine reusable
// across many trials on the same graph (see RunProtocolOn).
func (e *Engine) Reset() {
	for i := range e.informed {
		e.informed[i] = false
		e.informedAt[i] = NotInformed
	}
	e.informed[e.src] = true
	e.informedAt[e.src] = 0
	e.numInformed = 1
	for _, s := range e.extraSources {
		if !e.informed[s] {
			e.informed[s] = true
			e.informedAt[s] = 0
			e.numInformed++
		}
	}
	e.round = 0
	e.counters.Reset()
	// Eligible lists describe a run that is over; the next protocol run
	// rebuilds them from the informed set.
	e.eligAllOK, e.eligCohortOK = false, false
	// Per-round scratch is empty after any completed or failed Round, but
	// clear it anyway so Reset restores a pristine engine unconditionally.
	for _, w := range e.touched {
		e.hits[w] = 0
	}
	e.touched = e.touched[:0]
	e.clearTransmitMarks()
}

// ResetFor is Reset with a different broadcast source, so one engine can
// sweep every source of a graph without reallocating. The initial
// informed set becomes exactly {src}: extra sources of a NewEngineMulti
// engine are discarded (a source sweep is a single-source notion).
func (e *Engine) ResetFor(src int32) {
	if src < 0 || int(src) >= e.g.N() {
		panic(fmt.Sprintf("radio: source %d out of range [0,%d)", src, e.g.N()))
	}
	e.src = src
	e.extraSources = nil
	e.Reset()
}

// SetSources re-targets the engine at a new initial informed set without
// reallocating: sources[0] becomes the primary source and the rest the
// extra sources (as in NewEngineMulti), then the engine is Reset. Serving
// paths that pool one engine per cached graph use this to repoint the
// pooled engine at each request's sources. It panics on an empty or
// out-of-range source list.
func (e *Engine) SetSources(sources []int32) {
	if len(sources) == 0 {
		panic("radio: SetSources needs at least one source")
	}
	for _, s := range sources {
		if s < 0 || int(s) >= e.g.N() {
			panic(fmt.Sprintf("radio: source %d out of range [0,%d)", s, e.g.N()))
		}
	}
	e.src = sources[0]
	e.extraSources = append(e.extraSources[:0], sources[1:]...)
	e.Reset()
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Source returns the broadcast source.
func (e *Engine) Source() int32 { return e.src }

// RoundCount returns the number of rounds executed so far.
func (e *Engine) RoundCount() int { return e.round }

// Stats returns the accumulated counters, a view of the engine's built-in
// trace.Counters (see Counters).
func (e *Engine) Stats() Stats {
	return Stats{
		Rounds:        e.counters.Rounds,
		Transmissions: e.counters.Transmissions,
		Deliveries:    e.counters.Successes,
		NewlyInformed: e.counters.NewlyInformed,
		Collisions:    e.counters.Collisions,
	}
}

// Counters returns the engine's built-in aggregate metrics since the last
// Reset, including the silent-listener total that Stats omits.
func (e *Engine) Counters() trace.Counters { return e.counters }

// Attach sets the engine's observer: after every executed round the
// engine sends it a trace.RoundRecord, and the run helpers
// (RunProtocol*/ExecuteSchedule*/BroadcastTime*) bracket each run with
// BeginRun/EndRun notifications. Attach(nil) detaches. The attached
// observer survives Reset/ResetFor, so one observer can aggregate across
// many trials on a reused engine.
//
// With no observer attached the per-round overhead is a single nil check;
// the allocation-free fast path is unchanged. An observer that also
// implements trace.TransmitterObserver additionally receives every
// round's effective transmitter set (the extension is detected here, not
// per round).
func (e *Engine) Attach(obs trace.Observer) {
	e.obs = obs
	e.txObs, _ = obs.(trace.TransmitterObserver)
}

// Observer returns the currently attached observer, or nil.
func (e *Engine) Observer() trace.Observer { return e.obs }

// Informed reports whether v holds the message.
func (e *Engine) Informed(v int32) bool { return e.informed[v] }

// InformedAt returns the round in which v was informed, or NotInformed.
func (e *Engine) InformedAt(v int32) int32 { return e.informedAt[v] }

// InformedCount returns the number of informed nodes.
func (e *Engine) InformedCount() int { return e.numInformed }

// Done reports whether every node is informed.
func (e *Engine) Done() bool { return e.numInformed == e.g.N() }

// InformedTimes returns a copy of the informed-at array.
func (e *Engine) InformedTimes() []int32 {
	out := make([]int32, len(e.informedAt))
	copy(out, e.informedAt)
	return out
}

// AppendInformedTimes appends the informed-at array to dst and returns the
// extended slice. It is the allocation-free sibling of InformedTimes for
// collectors in hot trial loops: passing a reused dst[:0] copies the n
// per-node times without a fresh allocation per call.
func (e *Engine) AppendInformedTimes(dst []int32) []int32 {
	return append(dst, e.informedAt...)
}

// AppendInformed appends all informed vertices to dst.
func (e *Engine) AppendInformed(dst []int32) []int32 {
	for v, ok := range e.informed {
		if ok {
			dst = append(dst, int32(v))
		}
	}
	return dst
}

// AppendUninformed appends all uninformed vertices to dst.
func (e *Engine) AppendUninformed(dst []int32) []int32 {
	for v, ok := range e.informed {
		if !ok {
			dst = append(dst, int32(v))
		}
	}
	return dst
}

// ErrUninformedTransmitter is returned by Round under StrictInformed when
// the schedule contains a transmitter that does not yet hold the message.
// It wraps ErrScheduleMismatch, so errors.Is matches either sentinel.
var ErrUninformedTransmitter = fmt.Errorf("%w: schedule uses uninformed transmitter", ErrScheduleMismatch)

// Round executes one synchronous step in which exactly the nodes of
// transmitters transmit (subject to the engine's TransmitterPolicy) and
// every other node listens. It returns the list of nodes that became
// informed in this round; the returned slice is reused by the next call.
//
// Duplicate entries in transmitters are tolerated (a node transmits once).
func (e *Engine) Round(transmitters []int32) ([]int32, error) {
	// Mark transmitters, applying the policy. The round is not committed
	// (round counter, stats) until the whole set validates, and both error
	// returns clear the transmit marks, so a failed call leaves the engine
	// exactly as it was: a round that never executed is not counted and
	// cannot corrupt collision accounting in later rounds.
	e.txList = e.txList[:0]
	for _, v := range transmitters {
		if v < 0 || int(v) >= len(e.informed) {
			e.clearTransmitMarks()
			return nil, fmt.Errorf("%w: transmitter %d out of range", ErrScheduleMismatch, v)
		}
		if !e.informed[v] {
			switch e.policy {
			case StrictInformed:
				e.clearTransmitMarks()
				return nil, fmt.Errorf("%w: node %d in round %d", ErrUninformedTransmitter, v, e.round+1)
			case FilterUninformed:
				continue
			case MagicTransmitters:
				// allowed through
			}
		}
		if !e.transmitting[v] {
			e.transmitting[v] = true
			e.txList = append(e.txList, v)
		}
	}
	e.round++
	if e.txObs != nil {
		// The round is committed; hand the effective (policy-filtered,
		// deduplicated) transmitter set to the extended observer before
		// classification. The slice is engine scratch: valid only for the
		// duration of the call.
		e.txObs.RoundTransmitters(e.round, e.txList)
	}

	// The exact neighbour-visit count picks the classification strategy:
	// dense rounds (visits >= n/2) skip the touched-list bookkeeping in the
	// counting loop and classify by a cache-friendly linear scan over all
	// nodes; sparse rounds keep the O(visits) touched list so tiny rounds
	// never pay an O(n) pass. Both strategies produce identical informed
	// sets and counters (the newly-informed list order differs — visit
	// order vs index order — which no caller observes).
	n := e.g.N()
	visits := 0
	for _, v := range e.txList {
		visits += len(e.g.Neighbors(v))
	}
	e.newly = e.newly[:0]
	successes, collisions := 0, 0
	if 2*visits >= n {
		hits := e.hits
		for _, v := range e.txList {
			for _, w := range e.g.Neighbors(v) {
				if hits[w] < 2 {
					hits[w]++
				}
			}
		}
		// Transmitting nodes do not listen: zero their counters up front so
		// the classify scan treats them as untouched and never needs to
		// read the transmitting marks (one fewer byte stream per scan).
		for _, v := range e.txList {
			hits[v] = 0
		}
		informed := e.informed
		for w, h := range hits {
			if h == 0 {
				continue
			}
			hits[w] = 0
			if h == 1 {
				successes++
				if !informed[w] {
					informed[w] = true
					e.informedAt[w] = int32(e.round)
					e.numInformed++
					e.newly = append(e.newly, int32(w))
				}
			} else {
				collisions++
			}
		}
	} else {
		// Count transmitting neighbours of every node touched.
		for _, v := range e.txList {
			for _, w := range e.g.Neighbors(v) {
				if e.hits[w] == 0 {
					e.touched = append(e.touched, w)
				}
				if e.hits[w] < 2 {
					e.hits[w]++
				}
			}
		}
		// Deliveries: listening nodes with exactly one transmitting
		// neighbour.
		for _, w := range e.touched {
			if e.transmitting[w] {
				continue // transmitting node does not listen
			}
			if e.hits[w] == 1 {
				successes++
				if !e.informed[w] {
					e.informed[w] = true
					e.informedAt[w] = int32(e.round)
					e.numInformed++
					e.newly = append(e.newly, w)
				}
			} else {
				collisions++
			}
		}
	}

	// Account the round and notify the observer through the same record,
	// so Stats() and observer totals are definitionally consistent. Every
	// node transmits, cleanly receives, collides, or hears silence.
	rec := trace.RoundRecord{
		Round:         e.round,
		Transmitters:  len(e.txList),
		Successes:     successes,
		Collisions:    collisions,
		Silent:        e.g.N() - len(e.txList) - successes - collisions,
		NewlyInformed: len(e.newly),
		Informed:      e.numInformed,
	}
	e.counters.Apply(rec)
	if e.obs != nil {
		e.obs.Round(rec)
	}

	// Reset per-round scratch.
	for _, w := range e.touched {
		e.hits[w] = 0
	}
	e.touched = e.touched[:0]
	e.clearTransmitMarks()
	return e.newly, nil
}

// observeBegin notifies an attached observer that a run is starting; the
// run helpers call it after any Reset, so Sources reflects the initially
// informed set.
func (e *Engine) observeBegin(maxRounds int) {
	if e.obs == nil {
		return
	}
	e.obs.BeginRun(trace.RunInfo{N: e.g.N(), M: e.g.M(), Sources: e.numInformed, MaxRounds: maxRounds})
}

// observeEnd notifies an attached observer that the run is over. It fires
// on error aborts too, so an observer that saw BeginRun always sees a
// matching EndRun (JSONL writers flush there).
func (e *Engine) observeEnd() {
	if e.obs == nil {
		return
	}
	c := e.counters
	e.obs.EndRun(trace.Summary{
		Completed:     e.Done(),
		Rounds:        e.round,
		Informed:      e.numInformed,
		N:             e.g.N(),
		Transmissions: c.Transmissions,
		Successes:     c.Successes,
		Collisions:    c.Collisions,
		NewlyInformed: c.NewlyInformed,
	})
}

func (e *Engine) clearTransmitMarks() {
	for _, v := range e.txList {
		e.transmitting[v] = false
	}
	e.txList = e.txList[:0]
}

// Schedule is an explicit centralized broadcast schedule: Sets[t] is the
// set of nodes scheduled to transmit in round t+1.
type Schedule struct {
	Sets [][]int32
}

// Len returns the number of rounds in the schedule.
func (s *Schedule) Len() int { return len(s.Sets) }

// Result summarises a complete simulation.
type Result struct {
	Completed  bool    // every node informed
	Rounds     int     // rounds executed until completion (or budget exhausted)
	Informed   int     // informed nodes at the end
	N          int     // graph size
	InformedAt []int32 // per-node informed round (NotInformed if never)
	Stats      Stats
}

// ExecuteSchedule runs the schedule on a fresh engine over g from src and
// returns the result. Execution stops early once all nodes are informed;
// Rounds then reports the first round after which the broadcast was
// complete.
func ExecuteSchedule(g *graph.Graph, src int32, s *Schedule, policy TransmitterPolicy) (Result, error) {
	e := NewEngine(g, src, policy)
	return executeScheduleOn(e, s)
}

// ExecuteScheduleOn resets the caller-owned engine and replays the
// schedule on it, avoiding the per-run engine allocation of
// ExecuteSchedule. The engine's existing source and policy apply.
func ExecuteScheduleOn(e *Engine, s *Schedule) (Result, error) {
	e.Reset()
	return executeScheduleOn(e, s)
}

// ExecuteScheduleObserved replays the schedule on a fresh engine with the
// given initially informed sources and a trace observer attached (nil obs
// adds no overhead). It is the observed, multi-source-capable form of
// ExecuteSchedule.
func ExecuteScheduleObserved(g *graph.Graph, sources []int32, s *Schedule, policy TransmitterPolicy, obs trace.Observer) (Result, error) {
	return ExecuteScheduleObservedContext(context.Background(), g, sources, s, policy, obs)
}

// ExecuteScheduleObservedContext is ExecuteScheduleObserved with
// cooperative cancellation: replay stops between rounds once ctx is
// canceled, returning the partial Result and an error wrapping
// ErrCanceled. An uncanceled context is bit-identical to the context-free
// form.
func ExecuteScheduleObservedContext(ctx context.Context, g *graph.Graph, sources []int32, s *Schedule, policy TransmitterPolicy, obs trace.Observer) (Result, error) {
	e := NewEngineMulti(g, sources, policy)
	e.Attach(obs)
	return executeScheduleOnCtx(ctx, e, s)
}

func executeScheduleOn(e *Engine, s *Schedule) (Result, error) {
	return executeScheduleOnCtx(context.Background(), e, s)
}

// executeScheduleOnCtx replays the schedule with a cancellation check
// between rounds. Replay consumes no randomness, so the check cannot
// perturb results: an uncanceled context yields output bit-identical to
// the context-free path. On cancellation the partial Result is returned
// alongside an error wrapping ErrCanceled and the context's cause.
func executeScheduleOnCtx(ctx context.Context, e *Engine, s *Schedule) (Result, error) {
	e.observeBegin(s.Len())
	for _, set := range s.Sets {
		if e.Done() {
			break
		}
		if ctx.Err() != nil {
			e.observeEnd()
			return resultOf(e), Canceled(ctx)
		}
		if _, err := e.Round(set); err != nil {
			e.observeEnd()
			return Result{}, err
		}
	}
	e.observeEnd()
	return resultOf(e), nil
}

// SetResultReuse toggles result-buffer reuse: when on, Results built by
// the RunProtocol*/ExecuteSchedule* methods fill InformedAt from an
// engine-owned buffer that the engine's NEXT run overwrites, instead of
// a fresh O(n) copy per run. Engine-pooling callers (repro.WithEngine,
// the serving layer) turn this on so steady-state requests allocate
// nothing proportional to n; leave it off when a Result must outlive the
// engine's next run.
func (e *Engine) SetResultReuse(on bool) { e.reuseResult = on }

func resultOf(e *Engine) Result {
	var at []int32
	if e.reuseResult {
		e.resultBuf = e.AppendInformedTimes(e.resultBuf[:0])
		at = e.resultBuf
	} else {
		at = e.InformedTimes()
	}
	return Result{
		Completed:  e.Done(),
		Rounds:     e.round,
		Informed:   e.numInformed,
		N:          e.g.N(),
		InformedAt: at,
		Stats:      e.Stats(),
	}
}

// Protocol is a fully distributed randomized broadcasting protocol. In
// every round, the engine asks each INFORMED node whether it transmits;
// uninformed nodes always listen (they have nothing to send). The decision
// may use only information available locally: the global round number
// (nodes share a synchronous clock), the round at which the node was
// informed, the node's identity/degree, and private randomness — matching
// the paper's model in which nodes know only n, p and the time t.
type Protocol interface {
	// Transmit reports whether node v transmits in round (engine round
	// numbering starts at 1). informedAt is the round v was informed.
	Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool
}

// ProtocolFunc adapts a function to the Protocol interface.
type ProtocolFunc func(v int32, round int, informedAt int32, rng *xrand.Rand) bool

// Transmit implements Protocol.
func (f ProtocolFunc) Transmit(v int32, round int, informedAt int32, rng *xrand.Rand) bool {
	return f(v, round, informedAt, rng)
}

// Cohort selects which informed nodes are eligible to transmit in a
// uniform round. The zero value (AllInformed) makes every informed node
// eligible; InformedBy(c) restricts eligibility to nodes informed in
// rounds <= c — the Theorem-7 restricted-pool reading, in which only the
// phase-one informed set transmits during the selective phase.
type Cohort struct {
	cutoff     int32
	restricted bool
}

// AllInformed is the cohort of every informed node.
var AllInformed = Cohort{}

// InformedBy returns the cohort of nodes informed in rounds <= cutoff.
func InformedBy(cutoff int32) Cohort { return Cohort{cutoff: cutoff, restricted: true} }

// Contains reports whether a node informed at round informedAt belongs to
// the cohort. Uninformed nodes (informedAt == NotInformed) never do.
func (c Cohort) Contains(informedAt int32) bool {
	return informedAt != NotInformed && (!c.restricted || informedAt <= c.cutoff)
}

// Cutoff exposes the cohort's shape to engines that maintain their own
// eligibility structures (the lane engine keeps one bitplane per distinct
// cutoff): restricted reports whether the cohort is an InformedBy cohort,
// and cutoff is its bound when it is. For AllInformed, restricted is false
// and cutoff is meaningless.
func (c Cohort) Cutoff() (cutoff int32, restricted bool) {
	return c.cutoff, c.restricted
}

// UniformProtocol is an optional capability of a Protocol: a protocol
// implements it to declare that in some rounds every eligible node
// transmits independently with the SAME probability q. For such rounds
// the engine's protocol runner skips the per-node Transmit calls and
// instead draws the number of transmitters k ~ Binomial(|cohort|, q) and
// selects k distinct cohort members by partial Fisher–Yates — O(k)
// expected work per round instead of O(n) — which is distributionally
// identical to n independent Bernoulli(q) decisions.
//
// The fast path consumes a different (much shorter) randomness stream
// than per-node sampling, so individual runs differ bit-for-bit between
// the two paths while their distributions agree; see DESIGN.md for which
// entry points switched. Engine.SetPerNodeSampling(true) restores the
// per-node path on a capability-implementing protocol.
type UniformProtocol interface {
	Protocol
	// RoundProb reports whether the given round is uniform: every node of
	// the cohort transmits with probability q, independently. ok = false
	// makes the engine fall back to per-node Transmit calls for that
	// round, so protocols may mix uniform and non-uniform rounds freely.
	// The engine calls RoundProb at most once per round; it must be
	// deterministic and consume no randomness.
	RoundProb(round int) (q float64, cohort Cohort, ok bool)
}

// SetPerNodeSampling forces (on = true) the engine's protocol runners to
// call Protocol.Transmit for every informed node each round even when the
// protocol implements UniformProtocol — the pre-fast-path behaviour with
// its historical randomness stream. The default (off) uses the sampled
// fast path whenever the protocol declares uniform rounds. The setting
// survives Reset/ResetFor, like an attached observer.
func (e *Engine) SetPerNodeSampling(on bool) { e.perNode = on }

// PerNodeSampling reports whether the sampled fast path is disabled.
func (e *Engine) PerNodeSampling() bool { return e.perNode }

// runProtocol drives the engine under the protocol until completion or the
// round budget, reusing the engine's scratch transmit set so steady-state
// rounds allocate nothing. When p implements UniformProtocol (and per-node
// sampling is not forced), uniform rounds draw their transmitter set by
// binomial cohort sampling in O(k) instead of O(n).
func (e *Engine) runProtocol(p Protocol, maxRounds int, rng *xrand.Rand) {
	e.runProtocolCtx(context.Background(), p, maxRounds, rng)
}

// runProtocolCtx is runProtocol with a cancellation check between rounds.
// The check consumes no randomness (and context.Background's Err is a
// constant nil), so an uncanceled run is bit-for-bit identical to the
// context-free path. On cancellation the engine keeps its partial state —
// callers build the partial Result from it — and the returned error wraps
// ErrCanceled together with the context's cause.
func (e *Engine) runProtocolCtx(ctx context.Context, p Protocol, maxRounds int, rng *xrand.Rand) error {
	e.observeBegin(maxRounds)
	defer e.observeEnd()
	up, _ := p.(UniformProtocol)
	if e.perNode {
		up = nil
	}
	if up != nil {
		// Rebuild the eligible lists lazily for this run's informed set
		// (the engine may have been driven manually since the last reset).
		e.eligAllOK, e.eligCohortOK = false, false
	}
	for e.round < maxRounds && !e.Done() {
		if ctx.Err() != nil {
			return Canceled(ctx)
		}
		round := e.round + 1
		var tx []int32
		sampled := false
		if up != nil {
			if q, cohort, ok := up.RoundProb(round); ok {
				tx = e.sampleTransmitters(q, cohort, rng)
				sampled = true
			}
		}
		if !sampled {
			tx = e.txScratch[:0]
			for v, inf := range e.informed {
				if !inf {
					continue
				}
				if p.Transmit(int32(v), round, e.informedAt[v], rng) {
					tx = append(tx, int32(v))
				}
			}
			e.txScratch = tx
		}
		newly, err := e.Round(tx)
		if err != nil {
			// Cannot happen: we only offer informed nodes.
			panic(err)
		}
		if up != nil {
			e.appendEligible(newly)
		}
	}
	return nil
}

// sampleTransmitters draws a uniform round's transmitter set: every node
// of the cohort independently with probability q, realised as one
// Binomial(|cohort|, q) draw plus a partial Fisher–Yates over the
// engine-owned eligible list. The returned slice aliases that list and is
// only valid until the next engine call.
func (e *Engine) sampleTransmitters(q float64, cohort Cohort, rng *xrand.Rand) []int32 {
	elig := e.eligible(cohort)
	if q >= 1 {
		return elig
	}
	if q <= 0 {
		return elig[:0]
	}
	k := rng.Binomial(len(elig), q)
	rng.PartialShuffle(elig, k)
	return elig[:k]
}

// eligible returns the engine-owned list of cohort members, rebuilding it
// from the informed set on first use (or when the requested cutoff
// changes); appendEligible keeps it current afterwards. The list's order
// is immaterial — sampleTransmitters permutes it in place — so each list
// is maintained purely as a set.
func (e *Engine) eligible(cohort Cohort) []int32 {
	if !cohort.restricted {
		if !e.eligAllOK {
			e.eligAll = e.eligAll[:0]
			for v, inf := range e.informed {
				if inf {
					e.eligAll = append(e.eligAll, int32(v))
				}
			}
			e.eligAllOK = true
		}
		return e.eligAll
	}
	if !e.eligCohortOK || e.eligCutoff != cohort.cutoff {
		e.eligCohort = e.eligCohort[:0]
		for v, at := range e.informedAt {
			if at != NotInformed && at <= cohort.cutoff {
				e.eligCohort = append(e.eligCohort, int32(v))
			}
		}
		e.eligCutoff = cohort.cutoff
		e.eligCohortOK = true
	}
	return e.eligCohort
}

// appendEligible folds the nodes newly informed by the last round into
// the maintained eligible lists (newly informed nodes have
// informedAt == e.round).
func (e *Engine) appendEligible(newly []int32) {
	if e.eligAllOK {
		e.eligAll = append(e.eligAll, newly...)
	}
	if e.eligCohortOK && int32(e.round) <= e.eligCutoff {
		e.eligCohort = append(e.eligCohort, newly...)
	}
}

// RunProtocol drives p on the engine's CURRENT state — no reset — until
// completion or maxRounds rounds, and returns the result. Most callers
// want the package-level RunProtocol or RunProtocolOn (which reset
// first); the method exists for callers that prepared the engine
// themselves (multi-source initial sets, per-node sampling opt-out).
func (e *Engine) RunProtocol(p Protocol, maxRounds int, rng *xrand.Rand) Result {
	e.runProtocol(p, maxRounds, rng)
	return resultOf(e)
}

// RunProtocol simulates the distributed protocol for at most maxRounds
// rounds, stopping early when every node is informed.
func RunProtocol(g *graph.Graph, src int32, p Protocol, maxRounds int, rng *xrand.Rand) Result {
	e := NewEngine(g, src, StrictInformed)
	e.runProtocol(p, maxRounds, rng)
	return resultOf(e)
}

// RunProtocolOn resets the caller-owned engine and simulates the protocol
// on it. It is RunProtocol without the per-trial graph walk and engine
// allocation: a sweep that runs many trials on one graph builds the engine
// once (per worker) and calls RunProtocolOn per trial. Combine with
// ResetFor via the engine's own methods to also vary the source. The
// engine's policy applies (RunProtocol itself always uses StrictInformed).
func RunProtocolOn(e *Engine, p Protocol, maxRounds int, rng *xrand.Rand) Result {
	e.Reset()
	e.runProtocol(p, maxRounds, rng)
	return resultOf(e)
}

// BroadcastTime runs the protocol and returns the completion round, or
// maxRounds+1 if the broadcast did not finish within the budget. The
// sentinel keeps incomplete runs visibly worse than any complete run when
// aggregating.
func BroadcastTime(g *graph.Graph, src int32, p Protocol, maxRounds int, rng *xrand.Rand) int {
	res := RunProtocol(g, src, p, maxRounds, rng)
	if !res.Completed {
		return maxRounds + 1
	}
	return res.Rounds
}

// BroadcastTimeOn is BroadcastTime on a caller-owned engine (reset first).
// Unlike RunProtocolOn it builds no Result, so a trial allocates nothing.
func BroadcastTimeOn(e *Engine, p Protocol, maxRounds int, rng *xrand.Rand) int {
	e.Reset()
	e.runProtocol(p, maxRounds, rng)
	if !e.Done() {
		return maxRounds + 1
	}
	return e.round
}

// RunProtocolContext drives p on the engine's CURRENT state — no reset —
// with cooperative cancellation: the round loop checks ctx between rounds
// and stops as soon as it is canceled, returning the partial Result
// together with an error wrapping ErrCanceled and the context's cause.
// The check consumes no randomness, so an uncanceled context yields output
// bit-for-bit identical to RunProtocol's.
func (e *Engine) RunProtocolContext(ctx context.Context, p Protocol, maxRounds int, rng *xrand.Rand) (Result, error) {
	err := e.runProtocolCtx(ctx, p, maxRounds, rng)
	return resultOf(e), err
}

// RunProtocolOnContext is RunProtocolOn with cooperative cancellation
// (reset first; see RunProtocolContext for the cancellation contract).
func RunProtocolOnContext(ctx context.Context, e *Engine, p Protocol, maxRounds int, rng *xrand.Rand) (Result, error) {
	e.Reset()
	err := e.runProtocolCtx(ctx, p, maxRounds, rng)
	return resultOf(e), err
}

// BroadcastTimeOnContext is BroadcastTimeOn with cooperative cancellation.
// A canceled run reports the sentinel maxRounds+1 (it did not complete)
// alongside the wrapping error, so aggregators that ignore the error still
// see a sane value.
func BroadcastTimeOnContext(ctx context.Context, e *Engine, p Protocol, maxRounds int, rng *xrand.Rand) (int, error) {
	e.Reset()
	err := e.runProtocolCtx(ctx, p, maxRounds, rng)
	if !e.Done() {
		return maxRounds + 1, err
	}
	return e.round, err
}
