package radio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xrand"
)

func TestScheduleRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	s := &Schedule{}
	for r := 0; r < 25; r++ {
		s.Sets = append(s.Sets, rng.Sample(1000, rng.Intn(30)))
	}
	s.Sets = append(s.Sets, nil) // empty round
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip length %d != %d", got.Len(), s.Len())
	}
	for r := range s.Sets {
		if len(got.Sets[r]) != len(s.Sets[r]) {
			t.Fatalf("round %d size mismatch", r)
		}
		for i := range s.Sets[r] {
			if got.Sets[r][i] != s.Sets[r][i] {
				t.Fatalf("round %d element %d mismatch", r, i)
			}
		}
	}
}

func TestReadScheduleComments(t *testing.T) {
	in := "schedule 2\n# comment\n1 2 3\n\n"
	s, err := ReadSchedule(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || len(s.Sets[0]) != 3 || len(s.Sets[1]) != 0 {
		t.Fatalf("parsed %+v", s.Sets)
	}
}

func TestReadScheduleErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"bogus header",
		"schedule -1\n",
		"schedule 2\n1 2\n",   // too few rounds
		"schedule 1\n1 x 3\n", // non-numeric
	} {
		if _, err := ReadSchedule(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestScheduleEmptyRoundTrip(t *testing.T) {
	s := &Schedule{}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty schedule round trip has %d rounds", got.Len())
	}
}
