package graph

import (
	"testing"

	"repro/internal/xrand"
)

// path returns the path graph 0-1-2-...-(n-1).
func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// cycle returns the cycle graph on n vertices.
func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop, dropped
	b.AddEdge(2, 3)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if g.Degree(2) != 1 {
		t.Fatalf("degree(2) = %d, want 1 (self-loop must be dropped)", g.Degree(2))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing or not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge {0,2}")
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(3).AddEdge(0, 3)
}

func TestNeighborsSorted(t *testing.T) {
	rng := xrand.New(1)
	b := NewBuilder(50)
	for i := 0; i < 300; i++ {
		b.AddEdge(rng.Int31n(50), rng.Int31n(50))
	}
	g := b.Build()
	for v := int32(0); int(v) < g.N(); v++ {
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("neighbours of %d not strictly sorted: %v", v, nb)
			}
		}
	}
}

func TestDegreeSumEquals2M(t *testing.T) {
	rng := xrand.New(2)
	b := NewBuilder(100)
	for i := 0; i < 500; i++ {
		b.AddEdge(rng.Int31n(100), rng.Int31n(100))
	}
	g := b.Build()
	sum := 0
	for v := int32(0); int(v) < g.N(); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.M() {
		t.Fatalf("degree sum %d != 2M %d", sum, 2*g.M())
	}
}

func TestEdgesIteration(t *testing.T) {
	g := complete(5)
	count := 0
	g.Edges(func(u, v int32) bool {
		if u >= v {
			t.Fatalf("Edges yielded u=%d >= v=%d", u, v)
		}
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("Edges yielded %d edges, want 10", count)
	}
	// Early stop.
	count = 0
	g.Edges(func(u, v int32) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Edges early stop visited %d", count)
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("FromEdges gave %v", g)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatal("empty graph malformed")
	}
	if !IsConnected(g) {
		t.Fatal("empty graph should count as connected")
	}
	st := g.Degrees()
	if st.Min != 0 || st.Max != 0 || st.Mean != 0 {
		t.Fatalf("empty degree stats: %+v", st)
	}
}

func TestBFSPath(t *testing.T) {
	g := path(6)
	dist, parent := BFS(g, 0)
	for i := 0; i < 6; i++ {
		if dist[i] != int32(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
	if parent[0] != -1 {
		t.Fatalf("parent of source = %d", parent[0])
	}
	for i := 1; i < 6; i++ {
		if parent[i] != int32(i-1) {
			t.Fatalf("parent[%d] = %d, want %d", i, parent[i], i-1)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	dist := Distances(g, 0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatal("unreachable vertices not marked")
	}
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	comps := Components(g)
	if len(comps) != 2 || len(comps[0]) != 2 || len(comps[1]) != 2 {
		t.Fatalf("Components = %v", comps)
	}
	lc := LargestComponent(g)
	if len(lc) != 2 {
		t.Fatalf("LargestComponent size %d", len(lc))
	}
}

func TestLayers(t *testing.T) {
	// Star with centre 0: layer 0 = {0}, layer 1 = everything else.
	b := NewBuilder(6)
	for i := 1; i < 6; i++ {
		b.AddEdge(0, int32(i))
	}
	g := b.Build()
	layers := Layers(g, 0)
	if len(layers) != 2 {
		t.Fatalf("star has %d layers from centre, want 2", len(layers))
	}
	if len(layers[0]) != 1 || layers[0][0] != 0 {
		t.Fatalf("layer 0 = %v", layers[0])
	}
	if len(layers[1]) != 5 {
		t.Fatalf("layer 1 has %d nodes", len(layers[1]))
	}
	// From a leaf: {leaf}, {centre}, {other leaves}.
	layers = Layers(g, 1)
	if len(layers) != 3 || len(layers[2]) != 4 {
		t.Fatalf("layers from leaf: %v", layers)
	}
}

func TestLayersPartitionVertices(t *testing.T) {
	rng := xrand.New(3)
	b := NewBuilder(200)
	// Random connected-ish graph: a spanning path plus random chords.
	for i := 0; i < 199; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	for i := 0; i < 300; i++ {
		b.AddEdge(rng.Int31n(200), rng.Int31n(200))
	}
	g := b.Build()
	layers := Layers(g, 17)
	seen := make([]bool, 200)
	total := 0
	for d, layer := range layers {
		for _, v := range layer {
			if seen[v] {
				t.Fatalf("vertex %d in two layers", v)
			}
			seen[v] = true
			total++
			if got := Distances(g, 17)[v]; got != int32(d) {
				t.Fatalf("vertex %d in layer %d but distance %d", v, d, got)
			}
		}
	}
	if total != 200 {
		t.Fatalf("layers cover %d of 200 vertices", total)
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := path(7)
	if e := Eccentricity(g, 0); e != 6 {
		t.Fatalf("ecc(end of P7) = %d, want 6", e)
	}
	if e := Eccentricity(g, 3); e != 3 {
		t.Fatalf("ecc(middle of P7) = %d, want 3", e)
	}
	if d := Diameter(g); d != 6 {
		t.Fatalf("diam(P7) = %d, want 6", d)
	}
	if d := Diameter(cycle(8)); d != 4 {
		t.Fatalf("diam(C8) = %d, want 4", d)
	}
	if d := Diameter(complete(5)); d != 1 {
		t.Fatalf("diam(K5) = %d, want 1", d)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	if d := Diameter(g); d != -1 {
		t.Fatalf("Diameter of disconnected graph = %d, want -1", d)
	}
}

func TestDiameterLowerMatchesExactOnSmallGraphs(t *testing.T) {
	rng := xrand.New(4)
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < n-1; i++ {
			b.AddEdge(int32(i), int32(i+1))
		}
		for i := 0; i < n/2; i++ {
			b.AddEdge(rng.Int31n(int32(n)), rng.Int31n(int32(n)))
		}
		g := b.Build()
		exact := Diameter(g)
		lower := DiameterLower(g, rng.Int31n(int32(n)))
		if lower > exact {
			t.Fatalf("trial %d: DiameterLower %d exceeds exact %d", trial, lower, exact)
		}
		if lower < exact/2 {
			t.Fatalf("trial %d: double sweep %d much below exact %d", trial, lower, exact)
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := complete(6)
	sub, orig := g.Subgraph([]int32{1, 3, 5})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced triangle wrong: n=%d m=%d", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[1] != 3 || orig[2] != 5 {
		t.Fatalf("orig mapping %v", orig)
	}
	// Path 0-1-2-3: induced on {0, 2} has no edges.
	sub, _ = path(4).Subgraph([]int32{0, 2})
	if sub.M() != 0 {
		t.Fatalf("induced on non-adjacent vertices has %d edges", sub.M())
	}
}

func TestSubgraphDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Subgraph with duplicates did not panic")
		}
	}()
	complete(4).Subgraph([]int32{1, 1})
}

func TestDegrees(t *testing.T) {
	g := path(4) // degrees 1,2,2,1
	st := g.Degrees()
	if st.Min != 1 || st.Max != 2 || st.Mean != 1.5 {
		t.Fatalf("stats %+v", st)
	}
}

func TestJointNeighborCounts(t *testing.T) {
	// Vertices 1 and 2 share neighbour 0; vertices 3 and 4 share
	// neighbours 0 and 5 (two common neighbours).
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 4)
	b.AddEdge(5, 3)
	b.AddEdge(5, 4)
	g := b.Build()
	set := []int32{1, 2, 3, 4}
	one, two := JointNeighborCounts(g, set, nil)
	// Every pair among {1,2,3,4} shares neighbour 0, so each has 3
	// partners with >=1 common neighbour.
	for i, v := range set {
		if one[i] != 3 {
			t.Errorf("vertex %d: shareOne = %d, want 3", v, one[i])
		}
	}
	// Only the pair (3,4) shares two.
	want2 := map[int32]int{1: 0, 2: 0, 3: 1, 4: 1}
	for i, v := range set {
		if two[i] != want2[v] {
			t.Errorf("vertex %d: shareTwo = %d, want %d", v, two[i], want2[v])
		}
	}
}

func TestJointNeighborCountsRestricted(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(5, 1)
	b.AddEdge(5, 2)
	g := b.Build()
	set := []int32{1, 2}
	// Restrict middles to vertex 5 only: the pair still shares one middle.
	one, two := JointNeighborCounts(g, set, func(w int32) bool { return w == 5 })
	if one[0] != 1 || one[1] != 1 {
		t.Fatalf("restricted shareOne = %v", one)
	}
	if two[0] != 0 || two[1] != 0 {
		t.Fatalf("restricted shareTwo = %v", two)
	}
}

func TestCountEdgesWithinBetween(t *testing.T) {
	g := complete(6)
	within := CountEdgesWithin(g, []int32{0, 1, 2})
	if within != 3 {
		t.Fatalf("edges within triangle of K6 = %d, want 3", within)
	}
	between := CountEdgesBetween(g, []int32{0, 1, 2}, []int32{3, 4, 5})
	if between != 9 {
		t.Fatalf("edges between halves of K6 = %d, want 9", between)
	}
}

func TestHasEdgeBinarySearch(t *testing.T) {
	g := cycle(100)
	for i := int32(0); i < 100; i++ {
		if !g.HasEdge(i, (i+1)%100) {
			t.Fatalf("cycle edge (%d,%d) missing", i, (i+1)%100)
		}
		if g.HasEdge(i, (i+2)%100) {
			t.Fatalf("phantom chord (%d,%d)", i, (i+2)%100)
		}
	}
}

func TestStringer(t *testing.T) {
	if s := path(3).String(); s != "graph(n=3, m=2)" {
		t.Fatalf("String = %q", s)
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := xrand.New(1)
	const n = 10000
	const m = 100000
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{rng.Int31n(n), rng.Int31n(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromEdges(n, edges)
	}
}

func BenchmarkBFS(b *testing.B) {
	rng := xrand.New(2)
	const n = 10000
	bl := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		bl.AddEdge(int32(i), int32(i+1))
	}
	for i := 0; i < 5*n; i++ {
		bl.AddEdge(rng.Int31n(n), rng.Int31n(n))
	}
	g := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Distances(g, 0)
	}
}
