package graph

import (
	"sort"
	"testing"

	"repro/internal/xrand"
)

// referenceAdjacency builds the expected sorted, deduplicated adjacency
// lists of a graph on n vertices with the naive set-based construction the
// counting-sort Build must reproduce: self-loops dropped, duplicates
// collapsed, each edge mirrored.
func referenceAdjacency(n int, edges [][2]int32) [][]int32 {
	sets := make([]map[int32]bool, n)
	for i := range sets {
		sets[i] = map[int32]bool{}
	}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		sets[u][v] = true
		sets[v][u] = true
	}
	out := make([][]int32, n)
	for v := range sets {
		for w := range sets[v] {
			out[v] = append(out[v], w)
		}
		sort.Slice(out[v], func(i, j int) bool { return out[v][i] < out[v][j] })
	}
	return out
}

func assertMatchesReference(t *testing.T, g *Graph, want [][]int32) {
	t.Helper()
	if g.N() != len(want) {
		t.Fatalf("n = %d, want %d", g.N(), len(want))
	}
	for v := int32(0); int(v) < g.N(); v++ {
		got := g.Neighbors(v)
		if len(got) != len(want[v]) {
			t.Fatalf("vertex %d: adjacency %v, want %v", v, got, want[v])
		}
		for i := range got {
			if got[i] != want[v][i] {
				t.Fatalf("vertex %d: adjacency %v, want %v", v, got, want[v])
			}
		}
	}
}

// Property test for the counting-sort Build: on random edge multisets full
// of duplicates and self-loops, in random insertion order, the CSR result
// must equal the naive set-based construction.
func TestBuildMatchesReferenceOnRandomMultisets(t *testing.T) {
	rng := xrand.New(2024)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		m := rng.Intn(4 * n)
		edges := make([][2]int32, 0, m)
		for i := 0; i < m; i++ {
			u := rng.Int31n(int32(n))
			v := rng.Int31n(int32(n)) // may equal u: self-loops must be dropped
			edges = append(edges, [2]int32{u, v})
			if rng.Float64() < 0.3 { // duplicate, possibly flipped
				if rng.Float64() < 0.5 {
					u, v = v, u
				}
				edges = append(edges, [2]int32{u, v})
			}
		}
		b := NewBuilder(n)
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		assertMatchesReference(t, b.Build(), referenceAdjacency(n, edges))
	}
}

// The ordered fast path (strictly increasing lexicographic insertion, as
// the generators emit) must produce the same graph as unordered insertion
// of the same edge set.
func TestBuildOrderedFastPathMatchesShuffled(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(50)
		var edges [][2]int32
		for u := int32(0); int(u) < n; u++ {
			for v := u + 1; int(v) < n; v++ {
				if rng.Float64() < 0.15 {
					edges = append(edges, [2]int32{u, v})
				}
			}
		}
		ordered := NewBuilder(n)
		ordered.Grow(len(edges))
		for _, e := range edges {
			ordered.AddEdgeUnchecked(e[0], e[1]) // already normalized and sorted
		}
		g1 := ordered.Build()

		shuffled := append([][2]int32(nil), edges...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		unordered := NewBuilder(n)
		for _, e := range shuffled {
			unordered.AddEdge(e[1], e[0]) // reversed endpoints: AddEdge normalizes
		}
		g2 := unordered.Build()

		want := referenceAdjacency(n, edges)
		assertMatchesReference(t, g1, want)
		assertMatchesReference(t, g2, want)
	}
}

// AddEdgeUnchecked in sorted order mixed across Build calls: the builder
// must be reusable, with state fully reset between builds.
func TestBuilderReuseAfterBuild(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(3, 1)
	b.AddEdge(1, 3) // duplicate
	g1 := b.Build()
	if g1.M() != 1 || !g1.HasEdge(1, 3) {
		t.Fatalf("first build: %v", g1)
	}
	// Second build must not see the first build's edges, and the ordered
	// fast path must be available again.
	b.AddEdgeUnchecked(0, 2)
	b.AddEdgeUnchecked(2, 4)
	g2 := b.Build()
	if g2.M() != 2 || !g2.HasEdge(0, 2) || !g2.HasEdge(2, 4) || g2.HasEdge(1, 3) {
		t.Fatalf("second build: %v", g2)
	}
}

// A graph big enough to cross Build's int32-cursor scatter threshold on the
// ordered path, checked against per-list invariants rather than the
// quadratic reference.
func TestBuildLargeOrderedInvariants(t *testing.T) {
	rng := xrand.New(5)
	n := 30000
	b := NewBuilder(n)
	var mirror [][2]int32
	for u := int32(0); int(u) < n-1; u++ {
		// a few random larger neighbours per vertex, strictly increasing
		prev := u
		for k := 0; k < 3; k++ {
			step := 1 + rng.Int31n(50)
			v := prev + step
			if int(v) >= n {
				break
			}
			b.AddEdgeUnchecked(u, v)
			mirror = append(mirror, [2]int32{u, v})
			prev = v
		}
	}
	g := b.Build()
	if g.M() != len(mirror) {
		t.Fatalf("m = %d, want %d", g.M(), len(mirror))
	}
	for v := int32(0); int(v) < n; v++ {
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("vertex %d: list not strictly increasing: %v", v, nb)
			}
		}
	}
	for _, e := range mirror {
		if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
			t.Fatalf("edge %v missing", e)
		}
	}
}
