package graph

// This file adds the graph metrics used by the analysis tooling beyond the
// paper's immediate needs: clustering coefficients and triangle counts
// (random graphs have vanishing clustering — a cheap sanity check that a
// generator really produces G(n,p) and not something small-world), degree
// histograms, and a plain-text serialisation for moving graphs between
// the CLI tools.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Triangles returns the number of triangles in g, counted once each, by
// intersecting sorted adjacency lists over ordered wedges.
func Triangles(g *Graph) int64 {
	var count int64
	for u := int32(0); int(u) < g.N(); u++ {
		nu := g.Neighbors(u)
		for _, v := range nu {
			if v <= u {
				continue
			}
			// Count common neighbours w with w > v to avoid double count.
			nv := g.Neighbors(v)
			count += int64(countCommonAbove(nu, nv, v))
		}
	}
	return count
}

// countCommonAbove counts values > floor present in both sorted slices.
func countCommonAbove(a, b []int32, floor int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] > floor {
				c++
			}
			i++
			j++
		}
	}
	return c
}

// GlobalClustering returns the global clustering coefficient
// 3·triangles / #wedges (paths of length two). For G(n,p) it concentrates
// near p; returns 0 for graphs without wedges.
func GlobalClustering(g *Graph) float64 {
	var wedges int64
	for v := int32(0); int(v) < g.N(); v++ {
		d := int64(g.Degree(v))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(Triangles(g)) / float64(wedges)
}

// DegreeHistogram returns counts[k] = number of vertices of degree k.
func DegreeHistogram(g *Graph) []int {
	maxDeg := 0
	for v := int32(0); int(v) < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for v := int32(0); int(v) < g.N(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// WriteTo serialises g as a plain-text edge list: a header line
// "graph <n> <m>" followed by one "u v" line per edge (u < v). The format
// round-trips through ReadGraph.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "graph %d %d\n", g.N(), g.M())
	total += int64(n)
	if err != nil {
		return total, err
	}
	g.Edges(func(u, v int32) bool {
		n, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		total += int64(n)
		return err == nil
	})
	if err != nil {
		return total, err
	}
	return total, bw.Flush()
}

// ReadGraph parses the WriteTo format.
func ReadGraph(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	var n, m int
	if _, err := fmt.Sscanf(sc.Text(), "graph %d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %v", sc.Text(), err)
	}
	b := NewBuilder(n)
	b.Grow(m)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 'u v', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: line %d: endpoint out of range", line)
		}
		b.AddEdge(int32(u), int32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := b.Build()
	if g.M() != m {
		return nil, fmt.Errorf("graph: header says %d edges, parsed %d (after dedup)", m, g.M())
	}
	return g, nil
}

// CoreNumbers returns the k-core number of every vertex: the largest k
// such that the vertex belongs to a subgraph in which every vertex has
// degree at least k. Computed by the standard O(n + m) peeling
// (Matula–Beck / Batagelj–Zaveršnik bucket algorithm).
func CoreNumbers(g *Graph) []int {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		count := bin[d]
		bin[d] = start
		start += count
	}
	pos := make([]int, n)  // position of vertex in vert
	vert := make([]int, n) // vertices sorted by current degree
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = v
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := make([]int, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, w := range g.Neighbors(int32(v)) {
			if core[w] > core[v] {
				// Move w one bucket down.
				dw := core[w]
				pw := pos[w]
				ps := bin[dw]
				s := vert[ps]
				if int32(s) != w {
					vert[pw] = s
					pos[s] = pw
					vert[ps] = int(w)
					pos[w] = ps
				}
				bin[dw]++
				core[w]--
			}
		}
	}
	return core
}

// Degeneracy returns the graph's degeneracy: the maximum core number.
func Degeneracy(g *Graph) int {
	maxCore := 0
	for _, c := range CoreNumbers(g) {
		if c > maxCore {
			maxCore = c
		}
	}
	return maxCore
}
