// Package graph provides the undirected-graph substrate used throughout the
// repository: an immutable compressed-sparse-row (CSR) adjacency structure,
// a builder that deduplicates edges, and the traversal and measurement
// primitives (BFS, layer decomposition, connectivity, eccentricity, degree
// statistics, joint-neighbour counts) needed by the radio-broadcasting
// algorithms and the structural experiments of Lemmas 3 and 4.
//
// Vertices are identified by int32 indices in [0, N()). Graphs are simple
// (no self-loops, no parallel edges) and undirected: each edge {u, v}
// appears in both adjacency lists.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form. Memory use is
// 4 bytes per directed arc plus 8 bytes per vertex, so graphs with tens of
// millions of edges fit comfortably in RAM.
type Graph struct {
	offsets []int64 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32 // sorted neighbour lists, concatenated
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge, in O(log deg) time.
func (g *Graph) HasEdge(u, v int32) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// Edges calls fn once per undirected edge with u < v. If fn returns false,
// iteration stops.
func (g *Graph) Edges(fn func(u, v int32) bool) {
	for u := int32(0); int(u) < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			if !fn(u, v) {
				return
			}
		}
	}
}

// String returns a short description such as "graph(n=100, m=512)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N(), g.M())
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are silently dropped at Build time, so generators
// may add candidate edges without pre-deduplication.
//
// Build runs in O(n + m): degrees are counted as edges arrive, the CSR
// arrays are filled by a two-pass counting-sort scatter, and per-list
// fix-ups (sorting, deduplication) run only when the insertion order made
// them necessary. Generators that guarantee normalized, distinct edges can
// skip validation entirely with AddEdgeUnchecked.
type Builder struct {
	n     int
	edges []edge
	deg   []int32 // running per-vertex degree (including duplicate adds)
	lastU int32   // previous edge, for insertion-order tracking
	lastV int32
	// ordered reports that all edges so far arrived in strictly increasing
	// (u, v) lexicographic order. Ordered input yields sorted adjacency
	// lists straight out of the scatter pass and cannot contain duplicates,
	// so Build skips every fix-up.
	ordered bool
	// sawChecked reports that at least one edge came through AddEdge, whose
	// contract tolerates duplicates; Build then needs a dedup pass when the
	// input was not ordered.
	sawChecked bool
	// sink absorbs scatterInt32's look-ahead loads so they cannot be
	// optimised away. Never read; per-builder so concurrent Builds (one
	// builder per goroutine) do not share a write target.
	sink int32
}

type edge struct{ u, v int32 }

const maxInt32 = 1<<31 - 1

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, ordered: true, lastU: -1, lastV: -1}
}

// N returns the number of vertices the builder was created with.
func (b *Builder) N() int { return b.n }

// Grow reserves capacity for m additional edges.
func (b *Builder) Grow(m int) {
	if cap(b.edges)-len(b.edges) < m {
		grown := make([]edge, len(b.edges), len(b.edges)+m)
		copy(grown, b.edges)
		b.edges = grown
	}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored. It
// panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v int32) {
	if uint64(u) >= uint64(b.n) || uint64(v) >= uint64(b.n) {
		b.rangePanic(u, v)
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.sawChecked = true
	b.push(u, v)
}

// AddEdgeUnchecked records the undirected edge {u, v} without validation or
// deduplication. The caller guarantees 0 <= u < v < N() and that the edge
// is distinct from every other edge added to this builder; violating the
// contract corrupts the resulting graph. Generators whose construction
// already guarantees normalized, distinct edges (G(n,p) skip sampling,
// hypercubes, pairing models with an explicit seen-set, ...) use this path
// so Build never has to deduplicate. Edges added in strictly increasing
// (u, v) lexicographic order additionally let Build skip all per-list
// sorting.
func (b *Builder) AddEdgeUnchecked(u, v int32) {
	b.push(u, v)
}

// push appends an edge, maintaining the running degree counts and the
// insertion-order flag.
func (b *Builder) push(u, v int32) {
	if u < b.lastU || (u == b.lastU && v <= b.lastV) {
		b.ordered = false
	}
	b.lastU, b.lastV = u, v
	if b.deg == nil {
		b.deg = make([]int32, b.n)
	}
	b.deg[u]++
	b.deg[v]++
	b.edges = append(b.edges, edge{u, v})
}

func (b *Builder) rangePanic(u, v int32) {
	panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
}

// EdgeCount returns the number of edges recorded so far (before dedup).
func (b *Builder) EdgeCount() int { return len(b.edges) }

// Build produces the immutable graph and leaves the builder reusable (its
// edge list is consumed). It runs in O(n + m): a prefix sum over the
// degree counts followed by one counting-sort scatter of the edge list.
// Lists are then sorted or deduplicated only if the insertion order made
// that necessary — for lexicographically ordered input (the G(n,p)
// generator's natural emission order) the scatter output is already sorted
// and duplicate-free, and no fix-up runs at all.
func (b *Builder) Build() *Graph {
	offsets := make([]int64, b.n+1)
	var total int64
	if b.deg != nil {
		// The same pass that builds the offsets rewrites the degree counts as
		// int32 scatter cursors (truncation is harmless: the int32 cursors are
		// only used when the final total fits, and deg is discarded either way).
		for v := 0; v < b.n; v++ {
			d := b.deg[v]
			offsets[v] = total
			b.deg[v] = int32(total)
			total += int64(d)
		}
	}
	offsets[b.n] = total
	adj := make([]int32, total)
	if total <= maxInt32 {
		// Common case: arc indices fit in int32, so the recycled degree array
		// serves as the cursors — no extra allocation, and the randomly-accessed
		// cursor array is half the size of an int64 one.
		b.scatterInt32(adj, b.deg)
	} else {
		cursor := make([]int64, b.n)
		copy(cursor, offsets[:b.n])
		for _, e := range b.edges {
			adj[cursor[e.u]] = e.v
			cursor[e.u]++
			adj[cursor[e.v]] = e.u
			cursor[e.v]++
		}
	}
	g := &Graph{offsets: offsets, adj: adj}
	if !b.ordered {
		// Out-of-order input: sort the (few, or all) lists the scatter left
		// unsorted, then deduplicate if any edge came through AddEdge.
		for v := int32(0); int(v) < b.n; v++ {
			nb := g.adj[g.offsets[v]:g.offsets[v+1]]
			if !sorted32(nb) {
				sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
			}
		}
		if b.sawChecked {
			g.compactDuplicates()
		}
	}
	b.edges = nil
	b.deg = nil
	b.ordered = true
	b.sawChecked = false
	b.lastU, b.lastV = -1, -1
	return g
}

// scatterInt32 fills adj from the recorded edge list; cur[v] holds the next
// write position of vertex v's list and is advanced in place.
//
// For ordered input the two arc directions are scattered in separate
// passes. Lexicographic order means every smaller-neighbour arc of a vertex
// precedes all its larger-neighbour arcs, so the v-side pass lays down each
// list's head and the u-side pass appends its tail — and because equal-u
// edges are contiguous, the u-side pass loads one cursor per vertex and
// streams its writes sequentially. That halves the randomly-addressed
// traffic; only the v-side writes remain scattered, and those are paced by
// an explicit look-ahead touch of the cursor line (see Builder.sink).
func (b *Builder) scatterInt32(adj []int32, cur []int32) {
	// Cursor accesses miss cache unpredictably, and the loop's short
	// dependence chains leave the memory pipeline underused. Touching the
	// cursor pfDist iterations ahead starts those misses early; the loads
	// feed a package-level sink so they cannot be optimised away.
	const pfDist = 16
	var sink int32
	edges := b.edges
	if !b.ordered {
		i := 0
		for ; i+pfDist < len(edges); i++ {
			sink += cur[edges[i+pfDist].u] + cur[edges[i+pfDist].v]
			e := edges[i]
			cu := cur[e.u]
			cur[e.u] = cu + 1
			adj[cu] = e.v
			cv := cur[e.v]
			cur[e.v] = cv + 1
			adj[cv] = e.u
		}
		for ; i < len(edges); i++ {
			e := edges[i]
			cu := cur[e.u]
			cur[e.u] = cu + 1
			adj[cu] = e.v
			cv := cur[e.v]
			cur[e.v] = cv + 1
			adj[cv] = e.u
		}
		b.sink = sink
		return
	}
	i := 0
	for ; i+pfDist < len(edges); i++ {
		sink += cur[edges[i+pfDist].v]
		e := edges[i]
		c := cur[e.v]
		cur[e.v] = c + 1
		adj[c] = e.u
	}
	for ; i < len(edges); i++ {
		e := edges[i]
		c := cur[e.v]
		cur[e.v] = c + 1
		adj[c] = e.u
	}
	b.sink = sink
	for i := 0; i < len(edges); {
		u := edges[i].u
		c := cur[u]
		for i < len(edges) && edges[i].u == u {
			adj[c] = edges[i].v
			c++
			i++
		}
	}
}

// compactDuplicates removes repeated entries from every (sorted) adjacency
// list in one in-place sweep, rewriting the offsets accordingly.
func (g *Graph) compactDuplicates() {
	w := int64(0)
	dropped := false
	for v := 0; v < g.N(); v++ {
		start, end := g.offsets[v], g.offsets[v+1]
		g.offsets[v] = w
		prev := int32(-1)
		for i := start; i < end; i++ {
			x := g.adj[i]
			if x != prev {
				g.adj[w] = x
				w++
				prev = x
			} else {
				dropped = true
			}
		}
	}
	g.offsets[len(g.offsets)-1] = w
	if dropped {
		g.adj = g.adj[:w]
	}
}

func sorted32(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// FromEdges constructs a graph on n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]int32) *Graph {
	b := NewBuilder(n)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Subgraph returns the induced subgraph on the given vertices together with
// the mapping from new indices to original vertex ids. Vertices may be
// listed in any order; duplicates are rejected.
func (g *Graph) Subgraph(vertices []int32) (*Graph, []int32) {
	index := make(map[int32]int32, len(vertices))
	orig := make([]int32, len(vertices))
	for i, v := range vertices {
		if v < 0 || int(v) >= g.N() {
			panic(fmt.Sprintf("graph: Subgraph vertex %d out of range [0,%d)", v, g.N()))
		}
		if _, dup := index[v]; dup {
			panic("graph: duplicate vertex in Subgraph")
		}
		index[v] = int32(i)
		orig[i] = v
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		for _, w := range g.Neighbors(v) {
			if j, ok := index[w]; ok && int32(i) < j {
				b.AddEdge(int32(i), j)
			}
		}
	}
	return b.Build(), orig
}

// DegreeStats summarises the degree sequence of a graph.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// Degrees returns the degree statistics of g. For the empty graph all
// fields are zero.
func (g *Graph) Degrees() DegreeStats {
	n := g.N()
	if n == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: g.Degree(0), Max: g.Degree(0)}
	total := 0
	for v := int32(0); int(v) < n; v++ {
		d := g.Degree(v)
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(total) / float64(n)
	return st
}
