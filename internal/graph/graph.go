// Package graph provides the undirected-graph substrate used throughout the
// repository: an immutable compressed-sparse-row (CSR) adjacency structure,
// a builder that deduplicates edges, and the traversal and measurement
// primitives (BFS, layer decomposition, connectivity, eccentricity, degree
// statistics, joint-neighbour counts) needed by the radio-broadcasting
// algorithms and the structural experiments of Lemmas 3 and 4.
//
// Vertices are identified by int32 indices in [0, N()). Graphs are simple
// (no self-loops, no parallel edges) and undirected: each edge {u, v}
// appears in both adjacency lists.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form. Memory use is
// 4 bytes per directed arc plus 8 bytes per vertex, so graphs with tens of
// millions of edges fit comfortably in RAM.
type Graph struct {
	offsets []int64 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32 // sorted neighbour lists, concatenated
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge, in O(log deg) time.
func (g *Graph) HasEdge(u, v int32) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// Edges calls fn once per undirected edge with u < v. If fn returns false,
// iteration stops.
func (g *Graph) Edges(fn func(u, v int32) bool) {
	for u := int32(0); int(u) < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			if !fn(u, v) {
				return
			}
		}
	}
}

// String returns a short description such as "graph(n=100, m=512)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N(), g.M())
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges and self-loops are silently dropped at Build time, so generators
// may add candidate edges without pre-deduplication.
type Builder struct {
	n     int
	edges []edge
}

type edge struct{ u, v int32 }

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// N returns the number of vertices the builder was created with.
func (b *Builder) N() int { return b.n }

// Grow reserves capacity for m additional edges.
func (b *Builder) Grow(m int) {
	if cap(b.edges)-len(b.edges) < m {
		grown := make([]edge, len(b.edges), len(b.edges)+m)
		copy(grown, b.edges)
		b.edges = grown
	}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored. It
// panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, edge{u, v})
}

// EdgeCount returns the number of edges recorded so far (before dedup).
func (b *Builder) EdgeCount() int { return len(b.edges) }

// Build produces the immutable graph and leaves the builder reusable (its
// edge list is consumed).
func (b *Builder) Build() *Graph {
	// Sort edges to deduplicate; (u,v) already normalised with u < v.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	dedup := b.edges[:0]
	var prev edge = edge{-1, -1}
	for _, e := range b.edges {
		if e != prev {
			dedup = append(dedup, e)
			prev = e
		}
	}

	deg := make([]int64, b.n+1)
	for _, e := range dedup {
		deg[e.u+1]++
		deg[e.v+1]++
	}
	offsets := deg
	for i := 1; i <= b.n; i++ {
		offsets[i] += offsets[i-1]
	}
	adj := make([]int32, offsets[b.n])
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range dedup {
		adj[cursor[e.u]] = e.v
		cursor[e.u]++
		adj[cursor[e.v]] = e.u
		cursor[e.v]++
	}
	// Each adjacency list is already sorted: we insert v-neighbours of u in
	// increasing v order for the u < v half, but the v > u half arrives in
	// increasing u order interleaved, so sort per list to be safe.
	g := &Graph{offsets: offsets, adj: adj}
	for v := int32(0); int(v) < b.n; v++ {
		nb := g.adj[g.offsets[v]:g.offsets[v+1]]
		if !sorted32(nb) {
			sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		}
	}
	b.edges = nil
	return g
}

func sorted32(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// FromEdges constructs a graph on n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]int32) *Graph {
	b := NewBuilder(n)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Subgraph returns the induced subgraph on the given vertices together with
// the mapping from new indices to original vertex ids. Vertices may be
// listed in any order; duplicates are rejected.
func (g *Graph) Subgraph(vertices []int32) (*Graph, []int32) {
	index := make(map[int32]int32, len(vertices))
	orig := make([]int32, len(vertices))
	for i, v := range vertices {
		if _, dup := index[v]; dup {
			panic("graph: duplicate vertex in Subgraph")
		}
		index[v] = int32(i)
		orig[i] = v
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		for _, w := range g.Neighbors(v) {
			if j, ok := index[w]; ok && int32(i) < j {
				b.AddEdge(int32(i), j)
			}
		}
	}
	return b.Build(), orig
}

// DegreeStats summarises the degree sequence of a graph.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// Degrees returns the degree statistics of g. For the empty graph all
// fields are zero.
func (g *Graph) Degrees() DegreeStats {
	n := g.N()
	if n == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: g.Degree(0), Max: g.Degree(0)}
	total := 0
	for v := int32(0); int(v) < n; v++ {
		d := g.Degree(v)
		total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(total) / float64(n)
	return st
}
