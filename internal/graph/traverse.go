package graph

// This file contains traversal primitives: breadth-first search, BFS layer
// decomposition (the sets T_i(u) of the paper), connectivity tests and
// eccentricity/diameter estimation.

// Unreachable is the distance value assigned by BFS to vertices not
// reachable from the source.
const Unreachable int32 = -1

// BFS runs a breadth-first search from src and returns the distance of each
// vertex (Unreachable for vertices in other components) and the BFS parent
// of each vertex (-1 for src and unreachable vertices).
func BFS(g *Graph, src int32) (dist, parent []int32) {
	n := g.N()
	dist = make([]int32, n)
	parent = make([]int32, n)
	for i := range dist {
		dist[i] = Unreachable
		parent[i] = -1
	}
	queue := make([]int32, 0, n)
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, w := range g.Neighbors(v) {
			if dist[w] == Unreachable {
				dist[w] = dv + 1
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return dist, parent
}

// Distances returns only the BFS distance array from src.
func Distances(g *Graph, src int32) []int32 {
	d, _ := BFS(g, src)
	return d
}

// Layers returns the BFS layers T_0(u) = {u}, T_1(u), ..., where T_i(u) is
// the set of vertices at distance exactly i from u, as in Lemma 3 of the
// paper. Unreachable vertices appear in no layer. Each layer slice is
// sorted by vertex id.
func Layers(g *Graph, src int32) [][]int32 {
	dist := Distances(g, src)
	maxD := int32(0)
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	layers := make([][]int32, maxD+1)
	counts := make([]int, maxD+1)
	for _, d := range dist {
		if d >= 0 {
			counts[d]++
		}
	}
	for i := range layers {
		layers[i] = make([]int32, 0, counts[i])
	}
	for v, d := range dist {
		if d >= 0 {
			layers[d] = append(layers[d], int32(v))
		}
	}
	return layers
}

// IsConnected reports whether g is connected. The empty graph is considered
// connected; a one-vertex graph is connected.
func IsConnected(g *Graph) bool {
	if g.N() == 0 {
		return true
	}
	dist := Distances(g, 0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns the connected components of g, each sorted by vertex
// id, ordered by their smallest vertex.
func Components(g *Graph) [][]int32 {
	n := g.N()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int32
	queue := make([]int32, 0, n)
	for s := int32(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(len(comps))
		members := []int32{s}
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(v) {
				if comp[w] < 0 {
					comp[w] = id
					members = append(members, w)
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, members)
	}
	return comps
}

// LargestComponent returns the vertex set of the largest connected
// component (ties broken by smallest vertex id).
func LargestComponent(g *Graph) []int32 {
	var best []int32
	for _, c := range Components(g) {
		if len(c) > len(best) {
			best = c
		}
	}
	return best
}

// Eccentricity returns the maximum BFS distance from src to any reachable
// vertex. Lower-bounds the broadcast time from src in any radio model.
func Eccentricity(g *Graph, src int32) int {
	dist := Distances(g, src)
	ecc := int32(0)
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return int(ecc)
}

// Diameter returns the exact diameter of a connected graph by running a BFS
// from every vertex — O(n·m); use DiameterLower for large graphs. It
// returns -1 if the graph is disconnected or empty.
func Diameter(g *Graph) int {
	if g.N() == 0 || !IsConnected(g) {
		return -1
	}
	diam := 0
	for v := int32(0); int(v) < g.N(); v++ {
		if e := Eccentricity(g, v); e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterLower returns a lower bound on the diameter using the standard
// double-sweep heuristic (BFS from src, then BFS from the farthest vertex
// found). On random graphs the bound is almost always tight.
func DiameterLower(g *Graph, src int32) int {
	if g.N() == 0 {
		return -1
	}
	dist := Distances(g, src)
	far, fd := src, int32(0)
	for v, d := range dist {
		if d > fd {
			fd = d
			far = int32(v)
		}
	}
	return Eccentricity(g, far)
}

// JointNeighborCounts returns, for each vertex in set, the number of other
// vertices of set with which it shares at least one common neighbour, and
// the number with which it shares at least two. This measures the "almost
// tree" property of Lemma 3: within a BFS layer, very few pairs should
// share a common neighbour in the next layer.
//
// restrict, if non-nil, limits the common neighbours considered to vertices
// for which restrict(w) is true (e.g. only the next BFS layer).
func JointNeighborCounts(g *Graph, set []int32, restrict func(int32) bool) (shareOne, shareTwo []int) {
	inSet := make(map[int32]int32, len(set))
	for i, v := range set {
		inSet[v] = int32(i)
	}
	// For each vertex of set, count common-neighbour multiplicity against
	// every other member by scanning two-hop paths through allowed middles.
	pairCount := make(map[[2]int32]int32)
	for i, v := range set {
		for _, w := range g.Neighbors(v) {
			if restrict != nil && !restrict(w) {
				continue
			}
			for _, x := range g.Neighbors(w) {
				j, ok := inSet[x]
				if !ok || j <= int32(i) {
					continue
				}
				pairCount[[2]int32{int32(i), j}]++
			}
		}
	}
	shareOne = make([]int, len(set))
	shareTwo = make([]int, len(set))
	for pair, c := range pairCount {
		shareOne[pair[0]]++
		shareOne[pair[1]]++
		if c >= 2 {
			shareTwo[pair[0]]++
			shareTwo[pair[1]]++
		}
	}
	return shareOne, shareTwo
}

// CountEdgesWithin returns the number of edges of g with both endpoints in
// set.
func CountEdgesWithin(g *Graph, set []int32) int {
	in := make(map[int32]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	count := 0
	for _, v := range set {
		for _, w := range g.Neighbors(v) {
			if w > v && in[w] {
				count++
			}
		}
	}
	return count
}

// CountEdgesBetween returns the number of edges with one endpoint in a and
// the other in b. The sets are assumed disjoint.
func CountEdgesBetween(g *Graph, a, b []int32) int {
	inB := make(map[int32]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	count := 0
	for _, v := range a {
		for _, w := range g.Neighbors(v) {
			if inB[w] {
				count++
			}
		}
	}
	return count
}
