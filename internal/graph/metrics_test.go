package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/xrand"
)

func TestTrianglesKnownGraphs(t *testing.T) {
	if got := Triangles(complete(3)); got != 1 {
		t.Fatalf("K3 triangles = %d", got)
	}
	if got := Triangles(complete(5)); got != 10 {
		t.Fatalf("K5 triangles = %d, want C(5,3)=10", got)
	}
	if got := Triangles(path(10)); got != 0 {
		t.Fatalf("path triangles = %d", got)
	}
	if got := Triangles(cycle(3)); got != 1 {
		t.Fatalf("C3 triangles = %d", got)
	}
	if got := Triangles(cycle(5)); got != 0 {
		t.Fatalf("C5 triangles = %d", got)
	}
}

func TestTrianglesMatchesBruteForce(t *testing.T) {
	rng := xrand.New(1)
	b := NewBuilder(30)
	for i := 0; i < 120; i++ {
		b.AddEdge(rng.Int31n(30), rng.Int31n(30))
	}
	g := b.Build()
	var brute int64
	for u := int32(0); u < 30; u++ {
		for v := u + 1; v < 30; v++ {
			for w := v + 1; w < 30; w++ {
				if g.HasEdge(u, v) && g.HasEdge(v, w) && g.HasEdge(u, w) {
					brute++
				}
			}
		}
	}
	if got := Triangles(g); got != brute {
		t.Fatalf("Triangles = %d, brute force %d", got, brute)
	}
}

func TestGlobalClustering(t *testing.T) {
	if c := GlobalClustering(complete(6)); math.Abs(c-1) > 1e-12 {
		t.Fatalf("K6 clustering = %v", c)
	}
	if c := GlobalClustering(path(10)); c != 0 {
		t.Fatalf("path clustering = %v", c)
	}
	if c := GlobalClustering(NewBuilder(5).Build()); c != 0 {
		t.Fatalf("empty clustering = %v", c)
	}
}

func TestGlobalClusteringGnpNearP(t *testing.T) {
	// On G(n,p) the clustering coefficient concentrates near p.
	rng := xrand.New(2)
	const n = 600
	const p = 0.05
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Bernoulli(p) {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	g := b.Build()
	c := GlobalClustering(g)
	if math.Abs(c-p) > p/2 {
		t.Fatalf("G(n,%v) clustering = %v", p, c)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(4) // degrees 1,2,2,1
	h := DegreeHistogram(g)
	if len(h) != 3 || h[0] != 0 || h[1] != 2 || h[2] != 2 {
		t.Fatalf("histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != g.N() {
		t.Fatalf("histogram sums to %d", total)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := xrand.New(3)
	b := NewBuilder(50)
	for i := 0; i < 200; i++ {
		b.AddEdge(rng.Int31n(50), rng.Int31n(50))
	}
	g := b.Build()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %v vs %v", g2, g)
	}
	for v := int32(0); int(v) < g.N(); v++ {
		a, bb := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(bb) {
			t.Fatalf("vertex %d adjacency mismatch", v)
		}
		for i := range a {
			if a[i] != bb[i] {
				t.Fatalf("vertex %d adjacency mismatch", v)
			}
		}
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"nonsense",              // bad header
		"graph 3 1\n0 5\n",      // out of range
		"graph 3 1\n0\n",        // malformed line
		"graph 3 2\n0 1\n",      // edge count mismatch
		"graph 3 1\n0 x\n",      // non-numeric
		"graph 2 1\n0 1\n0 1\n", // duplicates dedup to the declared count: accepted
	}
	for i, c := range cases {
		_, err := ReadGraph(strings.NewReader(c))
		if i == len(cases)-1 {
			if err != nil {
				t.Fatalf("case %d: duplicate edges should dedup cleanly: %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("case %d (%q): expected error", i, c)
		}
	}
}

func TestReadGraphSkipsCommentsAndBlanks(t *testing.T) {
	in := "graph 3 2\n# a comment\n0 1\n\n1 2\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d", g.M())
	}
}

func BenchmarkTriangles(b *testing.B) {
	rng := xrand.New(1)
	bl := NewBuilder(2000)
	for i := 0; i < 20000; i++ {
		bl.AddEdge(rng.Int31n(2000), rng.Int31n(2000))
	}
	g := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Triangles(g)
	}
}

func TestCoreNumbersKnownGraphs(t *testing.T) {
	// K5: every vertex has core number 4.
	for _, c := range CoreNumbers(complete(5)) {
		if c != 4 {
			t.Fatalf("K5 core %d, want 4", c)
		}
	}
	// Path: interior cores 1, all 1.
	for _, c := range CoreNumbers(path(6)) {
		if c != 1 {
			t.Fatalf("path core %d, want 1", c)
		}
	}
	// Cycle: all 2.
	for _, c := range CoreNumbers(cycle(7)) {
		if c != 2 {
			t.Fatalf("cycle core %d, want 2", c)
		}
	}
	// Empty graph on 3 vertices: all 0.
	for _, c := range CoreNumbers(NewBuilder(3).Build()) {
		if c != 0 {
			t.Fatalf("isolated core %d, want 0", c)
		}
	}
}

func TestCoreNumbersTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus a tail 2-3-4: triangle cores 2, tail cores 1.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	cores := CoreNumbers(g)
	want := []int{2, 2, 2, 1, 1}
	for v, c := range cores {
		if c != want[v] {
			t.Fatalf("core[%d] = %d, want %d (all: %v)", v, c, want[v], cores)
		}
	}
	if Degeneracy(g) != 2 {
		t.Fatalf("degeneracy %d", Degeneracy(g))
	}
}

func TestCoreNumbersMatchBruteForce(t *testing.T) {
	// Brute-force core number: repeatedly peel vertices of degree < k.
	brute := func(g *Graph, k int) []bool {
		alive := make([]bool, g.N())
		for i := range alive {
			alive[i] = true
		}
		for changed := true; changed; {
			changed = false
			for v := 0; v < g.N(); v++ {
				if !alive[v] {
					continue
				}
				deg := 0
				for _, w := range g.Neighbors(int32(v)) {
					if alive[w] {
						deg++
					}
				}
				if deg < k {
					alive[v] = false
					changed = true
				}
			}
		}
		return alive
	}
	rng := xrand.New(11)
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(rng.Int31n(int32(n)), rng.Int31n(int32(n)))
		}
		g := b.Build()
		cores := CoreNumbers(g)
		for k := 1; k <= 6; k++ {
			inKCore := brute(g, k)
			for v := 0; v < n; v++ {
				if (cores[v] >= k) != inKCore[v] {
					t.Fatalf("trial %d: vertex %d core=%d, brute force k=%d membership %v",
						trial, v, cores[v], k, inKCore[v])
				}
			}
		}
	}
}
