package graph

// Native fuzz targets for the CSR builder and Subgraph: the optimized
// two-pass counting-sort build (with its ordered/unordered and
// checked/unchecked fast paths) is compared against a naive map-of-sets
// reference on arbitrary byte-derived edge lists. `go test` runs each
// target over the checked-in corpus (testdata/fuzz + f.Add seeds);
// `go test -fuzz=FuzzGraphBuild` explores from there.

import (
	"sort"
	"testing"
)

// decodeGraph turns fuzz bytes into a vertex count and an edge list, and
// builds both the CSR graph and the reference adjacency sets. It returns
// nil when the input encodes an empty vertex set.
func decodeGraph(data []byte) (*Graph, map[int32]map[int32]bool, int) {
	if len(data) == 0 {
		return nil, nil, 0
	}
	n := int(data[0]) % 33
	if n == 0 {
		return nil, nil, 0
	}
	b := NewBuilder(n)
	ref := make(map[int32]map[int32]bool, n)
	addRef := func(u, v int32) {
		if ref[u] == nil {
			ref[u] = make(map[int32]bool)
		}
		ref[u][v] = true
	}
	for i := 1; i+1 < len(data); i += 2 {
		u := int32(data[i]) % int32(n)
		v := int32(data[i+1]) % int32(n)
		b.AddEdge(u, v)
		if u != v {
			addRef(u, v)
			addRef(v, u)
		}
	}
	return b.Build(), ref, n
}

func FuzzGraphBuild(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 4})        // path, ordered
	f.Add([]byte{5, 3, 4, 0, 1, 4, 3, 1, 0, 2, 2})  // duplicates + self-loop, unordered
	f.Add([]byte{32, 31, 0, 0, 31, 31, 31, 15, 16}) // extreme ids
	f.Fuzz(func(t *testing.T, data []byte) {
		g, ref, n := decodeGraph(data)
		if g == nil {
			return
		}
		if g.N() != n {
			t.Fatalf("N = %d, want %d", g.N(), n)
		}
		edges := 0
		for v := int32(0); int(v) < n; v++ {
			nb := g.Neighbors(v)
			if len(nb) != len(ref[v]) {
				t.Fatalf("degree(%d) = %d, reference %d", v, len(nb), len(ref[v]))
			}
			if g.Degree(v) != len(nb) {
				t.Fatalf("Degree(%d) = %d, Neighbors has %d", v, g.Degree(v), len(nb))
			}
			if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
				t.Fatalf("Neighbors(%d) not sorted: %v", v, nb)
			}
			for i, w := range nb {
				if i > 0 && nb[i-1] == w {
					t.Fatalf("Neighbors(%d) has duplicate %d", v, w)
				}
				if w == v {
					t.Fatalf("self-loop survived at %d", v)
				}
				if !ref[v][w] {
					t.Fatalf("phantom edge {%d,%d}", v, w)
				}
			}
			edges += len(nb)
		}
		if g.M() != edges/2 {
			t.Fatalf("M = %d, adjacency holds %d half-edges", g.M(), edges)
		}
		// HasEdge must agree with the reference on every pair, both ways.
		for u := int32(0); int(u) < n; u++ {
			for v := int32(0); int(v) < n; v++ {
				if g.HasEdge(u, v) != ref[u][v] {
					t.Fatalf("HasEdge(%d,%d) = %v, reference %v", u, v, g.HasEdge(u, v), ref[u][v])
				}
			}
		}
	})
}

func FuzzSubgraph(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 4}, []byte{0b10110})
	f.Add([]byte{8, 0, 7, 1, 6, 2, 5}, []byte{0xFF})
	f.Add([]byte{3, 0, 1, 1, 2}, []byte{0})
	f.Fuzz(func(t *testing.T, data, mask []byte) {
		g, _, n := decodeGraph(data)
		if g == nil {
			return
		}
		// The mask's bit v selects vertex v for the induced subgraph.
		var vertices []int32
		for v := 0; v < n; v++ {
			if v/8 < len(mask) && mask[v/8]&(1<<(v%8)) != 0 {
				vertices = append(vertices, int32(v))
			}
		}
		sub, orig := g.Subgraph(vertices)
		if sub.N() != len(vertices) {
			t.Fatalf("sub.N = %d, want %d", sub.N(), len(vertices))
		}
		if len(orig) != len(vertices) {
			t.Fatalf("orig mapping has %d entries, want %d", len(orig), len(vertices))
		}
		for i, v := range vertices {
			if orig[i] != v {
				t.Fatalf("orig[%d] = %d, want %d", i, orig[i], v)
			}
		}
		// Induced property: an edge exists in sub iff it exists in g
		// between the corresponding originals.
		for i := int32(0); int(i) < sub.N(); i++ {
			for j := int32(0); int(j) < sub.N(); j++ {
				if sub.HasEdge(i, j) != g.HasEdge(orig[i], orig[j]) {
					t.Fatalf("sub.HasEdge(%d,%d) = %v, g.HasEdge(%d,%d) = %v",
						i, j, sub.HasEdge(i, j), orig[i], orig[j], g.HasEdge(orig[i], orig[j]))
				}
			}
		}
	})
}

// TestSubgraphRejectsOutOfRange pins the validation added for the raw
// index panic: an out-of-range vertex must fail with a clear message,
// not a CSR bounds fault.
func TestSubgraphRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	for _, bad := range [][]int32{{3}, {-1}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Subgraph(%v) did not panic", bad)
				}
			}()
			g.Subgraph(bad)
		}()
	}
}
