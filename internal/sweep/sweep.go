// Package sweep runs experiment trials, fanning independent trials out to
// a worker pool and collecting per-configuration samples. Every trial gets
// a deterministic derived seed, so sweeps are reproducible regardless of
// scheduling order.
package sweep

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Trial is a single experiment execution: given a deterministic RNG it
// returns one scalar measurement.
type Trial func(rng *xrand.Rand) float64

// Seeds returns the per-trial seeds that Run and RunWith derive from
// baseSeed: trial i uses xrand.New(baseSeed).DeriveSeed(i+1). The mapping
// is the repository-wide convention for fanning one base seed out to
// independent trials — the campaign runner uses it so a campaign point
// with the same base seed replays exactly the trials a sweep would run,
// regardless of worker count, interruption or resume order.
func Seeds(trials int, baseSeed uint64) []uint64 {
	if trials <= 0 {
		return nil
	}
	parent := xrand.New(baseSeed)
	out := make([]uint64, trials)
	for i := range out {
		out[i] = parent.DeriveSeed(uint64(i) + 1)
	}
	return out
}

// Run executes the trial `trials` times with seeds derived from baseSeed
// and returns the measurements ordered by trial index. Trials run
// concurrently on up to GOMAXPROCS goroutines.
func Run(trials int, baseSeed uint64, trial Trial) []float64 {
	return RunWith(trials, baseSeed,
		func() struct{} { return struct{}{} },
		func(rng *xrand.Rand, _ struct{}) float64 { return trial(rng) })
}

// RunWith is Run for trials that reuse expensive per-worker state: each
// worker goroutine calls newCtx exactly once and passes the context to
// every trial it executes, so a 1000-trial sweep over one graph builds
// graph-sized simulation state (engine, scratch buffers, ...) once per
// worker instead of once per trial.
//
// Trial randomness still comes exclusively from the per-trial derived rng,
// and a trial must leave no result-relevant state in the context (reset it
// at the start of the trial, as radio.RunProtocolOn does); under that
// contract the measurements are identical to Run's for the same baseSeed,
// independent of worker count and scheduling.
func RunWith[C any](trials int, baseSeed uint64, newCtx func() C, trial func(rng *xrand.Rand, ctx C) float64) []float64 {
	out := make([]float64, trials)
	if trials <= 0 {
		return out[:0]
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	// Pre-derive seeds sequentially so results are independent of worker
	// interleaving.
	rngs := make([]*xrand.Rand, trials)
	for i, seed := range Seeds(trials, baseSeed) {
		rngs[i] = xrand.New(seed)
	}
	if workers == 1 {
		ctx := newCtx()
		for i := 0; i < trials; i++ {
			out[i] = trial(rngs[i], ctx)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := newCtx()
			for i := range next {
				out[i] = trial(rngs[i], ctx)
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// RunWithContext is RunWith with cooperative cancellation: once ctx is
// canceled, workers stop taking new trials and the trial callback receives
// the canceled context so a context-aware trial (radio.BroadcastTimeOnContext,
// repro.RunContext) can abandon its remaining rounds too. It returns the
// measurements indexed by trial — entries whose trials never ran (or were
// canceled mid-flight and reported NaN themselves) hold NaN — plus the
// number of completed (non-NaN) trials and, when canceled, an error
// wrapping radio.ErrCanceled and the context's cause.
//
// Completed entries carry exactly the values an uncanceled sweep produces
// for those indices (per-trial seeds are derived identically up front), so
// a canceled sweep's partial output is loss-free: nothing already measured
// is discarded, and nothing half-measured is reported.
func RunWithContext[C any](ctx context.Context, trials int, baseSeed uint64, newCtx func() C,
	trial func(ctx context.Context, rng *xrand.Rand, c C) float64) ([]float64, int, error) {
	out := make([]float64, trials)
	if trials <= 0 {
		return out[:0], 0, ctx.Err()
	}
	for i := range out {
		out[i] = math.NaN()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	rngs := make([]*xrand.Rand, trials)
	for i, seed := range Seeds(trials, baseSeed) {
		rngs[i] = xrand.New(seed)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := newCtx()
			for i := range next {
				out[i] = trial(ctx, rngs[i], c)
			}
		}()
	}
dispatch:
	for i := 0; i < trials; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	done := 0
	for _, v := range out {
		if !math.IsNaN(v) {
			done++
		}
	}
	if err := ctx.Err(); err != nil {
		return out, done, radio.Canceled(ctx)
	}
	return out, done, nil
}

// RunLanes runs `trials` independent broadcasts of a uniform protocol on
// one fixed graph through the bit-parallel lane engine: 64 trials advance
// per edge pass, sharded into lane blocks across a GOMAXPROCS worker
// pool. Trial i measures the completion round under seed Seeds(trials,
// baseSeed)[i] — the repository-wide per-trial seed convention — with
// maxRounds+1 for trials that do not finish in budget, exactly the
// radio.BroadcastTimeOn sentinel.
//
// ok is false (and values nil) when the execution layer classifies a
// batch of p onto the scalar backend (no radio.UniformProtocol, or a
// non-uniform round within the budget); callers fall back to
// Run/RunWith with the scalar engine. Lane purity makes each value a
// function of its trial seed alone, so results are bitwise independent
// of lane width, block sharding, worker count and GOMAXPROCS — but the
// lane engine is a new randomness stream: values are distributionally
// identical to a scalar sweep of the same seeds, not bit-identical to
// one (the PR 3 stream policy).
//
// Cancellation is cooperative: once ctx is canceled the lane workers
// stop between rounds and RunLanes returns a non-nil error wrapping
// radio.ErrCanceled; values are nil then (partially advanced lane
// blocks are not loss-free the way scalar NaN-marking is).
func RunLanes(ctx context.Context, g *graph.Graph, src int32, p radio.Protocol, maxRounds, trials int, baseSeed uint64) (values []float64, ok bool, err error) {
	req := &exec.Request{Graph: g, Sources: []int32{src}, Protocol: p, MaxRounds: maxRounds}
	if exec.ClassifyBatch(req) != exec.BackendLanes {
		return nil, false, nil
	}
	if trials <= 0 {
		return []float64{}, true, nil
	}
	rounds := make([]int, trials)
	if _, err := exec.RunSeeds(ctx, req, Seeds(trials, baseSeed), rounds); err != nil {
		return nil, true, err
	}
	out := make([]float64, trials)
	for i, r := range rounds {
		out[i] = float64(r)
	}
	return out, true, nil
}

// RunObserved is RunWith with per-worker trace observers: each worker
// goroutine calls newObs once and passes that observer to every trial it
// executes (alongside the per-worker context), and all observers are
// returned once the sweep completes, one per worker, for merging.
//
// Observers are never shared across workers, so they need no
// synchronisation; additive aggregates (trace.Counters via Add) merge to
// totals independent of worker count and scheduling. Per-round streams
// (JSONL writers, recorders) interleave trials within a worker in
// execution order, which is scheduling-dependent — use counters-style
// observers when determinism across worker counts matters.
func RunObserved[C any](trials int, baseSeed uint64, newCtx func() C, newObs func() trace.Observer,
	trial func(rng *xrand.Rand, ctx C, obs trace.Observer) float64) ([]float64, []trace.Observer) {
	out := make([]float64, trials)
	if trials <= 0 {
		return out[:0], nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	rngs := make([]*xrand.Rand, trials)
	for i, seed := range Seeds(trials, baseSeed) {
		rngs[i] = xrand.New(seed)
	}
	observers := make([]trace.Observer, workers)
	if workers == 1 {
		ctx := newCtx()
		observers[0] = newObs()
		for i := 0; i < trials; i++ {
			out[i] = trial(rngs[i], ctx, observers[0])
		}
		return out, observers
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := newCtx()
			obs := newObs()
			observers[w] = obs
			for i := range next {
				out[i] = trial(rngs[i], ctx, obs)
			}
		}(w)
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, observers
}

// Point is one configuration of a 1-D sweep with its measurements.
type Point struct {
	X       float64   // the swept parameter (n, d, f, ...)
	Label   string    // optional display label
	Samples []float64 // per-trial measurements
}

// Sweep1D runs `trials` trials of `trial(x)` for every x in xs; trial
// factories receive the parameter and must return a Trial closure.
//
// Per-point seeds are derived from a single parent stream seeded with
// baseSeed (xrand.Rand.DeriveSeed), not by affine arithmetic on baseSeed:
// two sweeps whose base seeds differ by a small offset therefore share no
// per-point streams. (Sweeps recorded before this change used
// baseSeed + i·1000003 and produce different samples.)
func Sweep1D(xs []float64, trials int, baseSeed uint64, factory func(x float64) Trial) []Point {
	parent := xrand.New(baseSeed)
	points := make([]Point, len(xs))
	for i, x := range xs {
		points[i] = Point{
			X:       x,
			Samples: Run(trials, parent.DeriveSeed(uint64(i)+1), factory(x)),
		}
	}
	return points
}
