// Package sweep runs experiment trials, fanning independent trials out to
// a worker pool and collecting per-configuration samples. Every trial gets
// a deterministic derived seed, so sweeps are reproducible regardless of
// scheduling order.
package sweep

import (
	"runtime"
	"sync"

	"repro/internal/xrand"
)

// Trial is a single experiment execution: given a deterministic RNG it
// returns one scalar measurement.
type Trial func(rng *xrand.Rand) float64

// Run executes the trial `trials` times with seeds derived from baseSeed
// and returns the measurements ordered by trial index. Trials run
// concurrently on up to GOMAXPROCS goroutines.
func Run(trials int, baseSeed uint64, trial Trial) []float64 {
	out := make([]float64, trials)
	if trials <= 0 {
		return out[:0]
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	parent := xrand.New(baseSeed)
	// Pre-derive seeds sequentially so results are independent of worker
	// interleaving.
	rngs := make([]*xrand.Rand, trials)
	for i := range rngs {
		rngs[i] = parent.Derive(uint64(i) + 1)
	}
	if workers == 1 {
		for i := 0; i < trials; i++ {
			out[i] = trial(rngs[i])
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = trial(rngs[i])
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Point is one configuration of a 1-D sweep with its measurements.
type Point struct {
	X       float64   // the swept parameter (n, d, f, ...)
	Label   string    // optional display label
	Samples []float64 // per-trial measurements
}

// Sweep1D runs `trials` trials of `trial(x)` for every x in xs; trial
// factories receive the parameter and must return a Trial closure.
func Sweep1D(xs []float64, trials int, baseSeed uint64, factory func(x float64) Trial) []Point {
	points := make([]Point, len(xs))
	for i, x := range xs {
		points[i] = Point{
			X:       x,
			Samples: Run(trials, baseSeed+uint64(i)*1_000_003, factory(x)),
		}
	}
	return points
}
