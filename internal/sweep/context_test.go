package sweep

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/radio"
	"repro/internal/xrand"
)

// TestRunWithContextUncanceledMatchesRunWith: with a context that never
// cancels, RunWithContext produces exactly RunWith's measurements and a
// nil error.
func TestRunWithContextUncanceledMatchesRunWith(t *testing.T) {
	const trials = 64
	want := RunWith(trials, 11,
		func() struct{} { return struct{}{} },
		func(rng *xrand.Rand, _ struct{}) float64 { return rng.Float64() })
	got, done, err := RunWithContext(context.Background(), trials, 11,
		func() struct{} { return struct{}{} },
		func(_ context.Context, rng *xrand.Rand, _ struct{}) float64 { return rng.Float64() })
	if err != nil {
		t.Fatalf("uncanceled sweep returned error %v", err)
	}
	if done != trials {
		t.Fatalf("done = %d, want %d", done, trials)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trial %d: %v != RunWith's %v", i, got[i], want[i])
		}
	}
}

// TestRunWithContextCancelIsLossFree: canceling mid-sweep stops dispatch,
// returns an error wrapping radio.ErrCanceled, and leaves every completed
// entry bit-identical to the uncanceled sweep — nothing measured is lost,
// nothing half-measured is reported (unfinished entries are NaN).
func TestRunWithContextCancelIsLossFree(t *testing.T) {
	const trials = 256
	want := RunWith(trials, 23,
		func() struct{} { return struct{}{} },
		func(rng *xrand.Rand, _ struct{}) float64 { return rng.Float64() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int64
	got, done, err := RunWithContext(ctx, trials, 23,
		func() struct{} { return struct{}{} },
		func(ctx context.Context, rng *xrand.Rand, _ struct{}) float64 {
			if ctx.Err() != nil {
				return math.NaN() // a canceled trial reports no measurement
			}
			v := rng.Float64()
			if completed.Add(1) == 10 {
				cancel()
			}
			return v
		})
	if !errors.Is(err, radio.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if done < 10 || done >= trials {
		t.Fatalf("done = %d, want partial progress in [10, %d)", done, trials)
	}
	n := 0
	for i := range got {
		if math.IsNaN(got[i]) {
			continue
		}
		n++
		if got[i] != want[i] {
			t.Fatalf("trial %d: canceled sweep recorded %v, uncanceled sweep %v", i, got[i], want[i])
		}
	}
	if n != done {
		t.Fatalf("done = %d but %d non-NaN entries", done, n)
	}
}

// TestRunWithContextZeroTrials mirrors Run's zero-trials contract.
func TestRunWithContextZeroTrials(t *testing.T) {
	out, done, err := RunWithContext(context.Background(), 0, 1,
		func() struct{} { return struct{}{} },
		func(context.Context, *xrand.Rand, struct{}) float64 { return 0 })
	if len(out) != 0 || done != 0 || err != nil {
		t.Fatalf("zero-trial sweep: out=%v done=%d err=%v", out, done, err)
	}
}
