package sweep

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
	"repro/internal/xrand"
)

func TestRunDeterministic(t *testing.T) {
	trial := func(rng *xrand.Rand) float64 { return float64(rng.Intn(1000000)) }
	a := Run(20, 42, trial)
	b := Run(20, 42, trial)
	if len(a) != 20 {
		t.Fatalf("got %d samples", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d not deterministic: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	trial := func(rng *xrand.Rand) float64 { return float64(rng.Intn(1 << 30)) }
	samples := Run(50, 7, trial)
	same := 0
	for i := 1; i < len(samples); i++ {
		if samples[i] == samples[0] {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("%d trials repeated the first trial's value", same)
	}
}

func TestRunDifferentBaseSeeds(t *testing.T) {
	trial := func(rng *xrand.Rand) float64 { return float64(rng.Intn(1 << 30)) }
	a := Run(10, 1, trial)
	b := Run(10, 2, trial)
	identical := true
	for i := range a {
		if a[i] != b[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("different base seeds gave identical sweeps")
	}
}

func TestRunZeroTrials(t *testing.T) {
	if got := Run(0, 1, func(rng *xrand.Rand) float64 { return 1 }); len(got) != 0 {
		t.Fatalf("zero trials returned %v", got)
	}
}

func TestSweep1D(t *testing.T) {
	xs := []float64{10, 20, 30}
	points := Sweep1D(xs, 5, 99, func(x float64) Trial {
		return func(rng *xrand.Rand) float64 { return x + float64(rng.Intn(3)) }
	})
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if p.X != xs[i] {
			t.Fatalf("point %d x = %v", i, p.X)
		}
		if len(p.Samples) != 5 {
			t.Fatalf("point %d has %d samples", i, len(p.Samples))
		}
		for _, s := range p.Samples {
			if s < p.X || s >= p.X+3 {
				t.Fatalf("sample %v out of expected range for x=%v", s, p.X)
			}
		}
	}
}

func TestSweep1DDeterministic(t *testing.T) {
	factory := func(x float64) Trial {
		return func(rng *xrand.Rand) float64 { return x * float64(rng.Intn(100)) }
	}
	a := Sweep1D([]float64{1, 2}, 4, 5, factory)
	b := Sweep1D([]float64{1, 2}, 4, 5, factory)
	for i := range a {
		for j := range a[i].Samples {
			if a[i].Samples[j] != b[i].Samples[j] {
				t.Fatal("sweep not deterministic")
			}
		}
	}
}

func TestRunParallelPath(t *testing.T) {
	// This machine may have GOMAXPROCS == 1, which exercises only the
	// sequential path; force parallel workers and check determinism and
	// completeness are preserved.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	trial := func(rng *xrand.Rand) float64 { return float64(rng.Intn(1 << 30)) }
	par := Run(40, 42, trial)
	runtime.GOMAXPROCS(1)
	seq := Run(40, 42, trial)
	if len(par) != 40 || len(seq) != 40 {
		t.Fatal("wrong lengths")
	}
	for i := range par {
		if par[i] != seq[i] {
			t.Fatalf("parallel and sequential sweeps diverge at %d", i)
		}
	}
}

func TestRunWithMatchesRun(t *testing.T) {
	// A context-using trial whose measurements depend only on the derived
	// rng must agree with the context-free formulation exactly.
	trial := func(rng *xrand.Rand) float64 { return float64(rng.Intn(1 << 30)) }
	plain := Run(30, 11, trial)
	ctxd := RunWith(30, 11,
		func() *[]int { s := make([]int, 0, 8); return &s },
		func(rng *xrand.Rand, scratch *[]int) float64 {
			*scratch = (*scratch)[:0] // trials must reset their context
			*scratch = append(*scratch, rng.Intn(1<<30))
			return float64((*scratch)[0])
		})
	for i := range plain {
		if plain[i] != ctxd[i] {
			t.Fatalf("trial %d: RunWith %v, Run %v", i, ctxd[i], plain[i])
		}
	}
}

func TestRunWithWorkerCountInvariance(t *testing.T) {
	trial := func(rng *xrand.Rand, _ struct{}) float64 { return float64(rng.Intn(1 << 30)) }
	newCtx := func() struct{} { return struct{}{} }
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	par := RunWith(40, 3, newCtx, trial)
	runtime.GOMAXPROCS(1)
	seq := RunWith(40, 3, newCtx, trial)
	for i := range par {
		if par[i] != seq[i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
}

func TestRunWithContextPerWorker(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	var created atomic.Int64
	RunWith(64, 5,
		func() int { return int(created.Add(1)) },
		func(rng *xrand.Rand, ctx int) float64 { return float64(ctx) })
	if n := created.Load(); n < 1 || n > 4 {
		t.Fatalf("newCtx called %d times, want once per worker (1..4)", n)
	}
}

func TestSweep1DUsesDerivedPointSeeds(t *testing.T) {
	// Regression for the old affine scheme (baseSeed + i·1000003): nearby
	// base seeds must not share any per-point trial streams.
	factory := func(x float64) Trial {
		return func(rng *xrand.Rand) float64 { return float64(rng.Intn(1 << 30)) }
	}
	a := Sweep1D([]float64{1, 2, 3}, 6, 1000, factory)
	b := Sweep1D([]float64{1, 2, 3}, 6, 1000+1000003, factory)
	for i := range a {
		for j := range b {
			if a[i].Samples[0] == b[j].Samples[0] {
				t.Fatalf("points (%d,%d) of sweeps with offset base seeds share a stream", i, j)
			}
		}
	}
}

func TestRunMoreWorkersThanTrials(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	got := Run(3, 7, func(rng *xrand.Rand) float64 { return 1 })
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestRunObservedMergesToSerialTotals(t *testing.T) {
	// Totals from merged per-worker counters must equal a serial run's,
	// regardless of worker count.
	trial := func(rng *xrand.Rand, _ struct{}, obs trace.Observer) float64 {
		rounds := 1 + rng.Intn(5)
		obs.BeginRun(trace.RunInfo{N: 10, MaxRounds: rounds})
		for r := 1; r <= rounds; r++ {
			obs.Round(trace.RoundRecord{Round: r, Transmitters: 2, Successes: 1, Silent: 7, Informed: r + 1})
		}
		obs.EndRun(trace.Summary{Completed: true, Rounds: rounds})
		return float64(rounds)
	}
	newCtx := func() struct{} { return struct{}{} }
	newObs := func() trace.Observer { return &trace.Counters{} }

	run := func(workers int) (samples []float64, total trace.Counters) {
		old := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(old)
		samples, observers := RunObserved(24, 77, newCtx, newObs, trial)
		for _, o := range observers {
			total.Add(*o.(*trace.Counters))
		}
		return samples, total
	}
	serialSamples, serialTotal := run(1)
	parSamples, parTotal := run(4)
	for i := range serialSamples {
		if serialSamples[i] != parSamples[i] {
			t.Fatalf("sample %d differs across worker counts", i)
		}
	}
	if serialTotal != parTotal {
		t.Fatalf("merged counters differ: serial %+v, parallel %+v", serialTotal, parTotal)
	}
	if serialTotal.Runs != 24 || serialTotal.Completed != 24 {
		t.Fatalf("totals %+v", serialTotal)
	}
	var wantRounds int
	for _, s := range serialSamples {
		wantRounds += int(s)
	}
	if serialTotal.Rounds != wantRounds {
		t.Fatalf("rounds total %d, want %d", serialTotal.Rounds, wantRounds)
	}
}

func TestRunObservedOneObserverPerWorker(t *testing.T) {
	old := runtime.GOMAXPROCS(3)
	defer runtime.GOMAXPROCS(old)
	var created atomic.Int32
	_, observers := RunObserved(9, 5,
		func() struct{} { return struct{}{} },
		func() trace.Observer { created.Add(1); return &trace.Counters{} },
		func(rng *xrand.Rand, _ struct{}, obs trace.Observer) float64 { return 0 })
	if int(created.Load()) != len(observers) {
		t.Fatalf("created %d observers, returned %d", created.Load(), len(observers))
	}
	if len(observers) < 1 || len(observers) > 3 {
		t.Fatalf("%d observers for 3 workers", len(observers))
	}
}
