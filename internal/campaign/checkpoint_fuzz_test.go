package campaign

// Fuzz target and regression tests for the checkpoint sample loader. A
// checkpoint shard is written incrementally by a process that may die at
// any byte, and sits on disks that corrupt files; the loader's contract
// is therefore: never panic, never refuse a resume because of bad lines,
// skip exactly the untrustworthy records and count them.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fuzzSpec is a small fixed grid the fuzzed shard content is loaded
// against.
func fuzzSpec() *Spec {
	return &Spec{
		Name:   "fuzz",
		Seed:   1,
		Trials: 4,
		Shards: 1,
		Points: []PointSpec{
			{ID: "a", X: 1, Trial: TrialSpec{Kind: "decay", N: 8, D: 2}},
			{ID: "b", X: 2, Trial: TrialSpec{Kind: "decay", N: 8, D: 2}},
		},
	}
}

// writeCheckpointDir materialises a checkpoint directory whose single
// shard holds exactly content.
func writeCheckpointDir(t testing.TB, content []byte) string {
	t.Helper()
	dir := t.TempDir()
	spec := fuzzSpec()
	c, err := CreateCheckpoint(dir, spec, EngineScalar)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(false); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, shardName(0)), content, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const goodLine = `{"point":0,"id":"a","trial":0,"seed":7,"value":3,"ok":true}`

func FuzzLoadSamples(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(goodLine + "\n"))
	f.Add([]byte(goodLine + "\n{\"point\":0,\"id\":\"a\",\"tr")) // torn tail
	f.Add([]byte("garbage\n" + goodLine + "\n"))                 // corrupt line mid-file
	f.Add([]byte(`{"point":9,"id":"a","trial":0}` + "\n"))       // out of grid
	f.Add([]byte(`{"point":0,"id":"WRONG","trial":0}` + "\n"))   // id mismatch
	f.Add([]byte(`{"point":0,"id":"a","trial":-1}` + "\n"))      // negative trial
	f.Add([]byte("\x00\xff\xfe\n" + goodLine))
	f.Fuzz(func(t *testing.T, content []byte) {
		dir := writeCheckpointDir(t, content)
		m, samples, skipped, err := LoadSamples(dir)
		if err != nil {
			// Only I/O-level failures may error; shard content never does.
			t.Fatalf("LoadSamples errored on plain content %q: %v", content, err)
		}
		if m == nil {
			t.Fatal("nil manifest without error")
		}
		lines := 0
		for _, l := range bytes.Split(content, []byte("\n")) {
			if len(l) > 0 {
				lines++
			}
		}
		if len(samples)+skipped > lines {
			t.Fatalf("accounted %d samples + %d skipped out of %d non-empty lines",
				len(samples), skipped, lines)
		}
		spec := fuzzSpec()
		for k, s := range samples {
			if s.Point != k.point || s.Trial != k.trial {
				t.Fatalf("sample keyed (%d,%d) holds (%d,%d)", k.point, k.trial, s.Point, s.Trial)
			}
			if s.Point < 0 || s.Point >= len(spec.Points) || s.Trial < 0 || s.Trial >= spec.Trials {
				t.Fatalf("out-of-grid sample survived the load: %+v", s)
			}
			if s.PointID != spec.Points[s.Point].ID {
				t.Fatalf("mismatched point id survived the load: %+v", s)
			}
		}
	})
}

// TestLoadSamplesSkipsMidFileCorruption pins the skip-and-count fix: a
// corrupt line in the middle of a shard must not discard the intact
// records after it (the loader used to stop at the first bad line,
// silently rerunning every later trial).
func TestLoadSamplesSkipsMidFileCorruption(t *testing.T) {
	content := strings.Join([]string{
		`{"point":0,"id":"a","trial":0,"seed":7,"value":3,"ok":true}`,
		`CORRUPT {not json`,
		`{"point":0,"id":"a","trial":1,"seed":8,"value":4,"ok":true}`,
		`{"point":1,"id":"b","trial":0,"seed":9,"value":5,"ok":true}`,
	}, "\n") + "\n"
	dir := writeCheckpointDir(t, []byte(content))

	_, samples, skipped, err := LoadSamples(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if len(samples) != 3 {
		t.Fatalf("loaded %d samples, want the 3 intact ones", len(samples))
	}
	for _, k := range []key{{0, 0}, {0, 1}, {1, 0}} {
		if samples[k] == nil {
			t.Fatalf("intact sample %v lost after corrupt line", k)
		}
	}

	// The report surfaces the count.
	r, err := ReportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.SkippedLines != 1 {
		t.Fatalf("report.SkippedLines = %d, want 1", r.SkippedLines)
	}
	if !strings.Contains(r.Text(), "skipped 1 corrupt checkpoint line") {
		t.Fatalf("report text does not surface the skip:\n%s", r.Text())
	}

	// Resume path: OpenCheckpoint tolerates and counts too.
	c, resumed, err := OpenCheckpoint(dir, fuzzSpec(), EngineScalar)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.SkippedLines() != 1 || len(resumed) != 3 {
		t.Fatalf("resume: skipped=%d samples=%d, want 1 and 3", c.SkippedLines(), len(resumed))
	}
}

// TestLoadSamplesSkipsUntrustedCoordinates pins the other skip classes:
// grid coordinates outside the spec and point ids contradicting it are
// counted, not fatal.
func TestLoadSamplesSkipsUntrustedCoordinates(t *testing.T) {
	content := strings.Join([]string{
		`{"point":5,"id":"a","trial":0}`,  // point out of grid
		`{"point":0,"id":"a","trial":99}`, // trial out of grid
		`{"point":0,"id":"b","trial":0}`,  // id belongs to the other point
		goodLine,
	}, "\n") + "\n"
	dir := writeCheckpointDir(t, []byte(content))
	_, samples, skipped, err := LoadSamples(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 3 || len(samples) != 1 {
		t.Fatalf("skipped=%d samples=%d, want 3 and 1", skipped, len(samples))
	}
}
