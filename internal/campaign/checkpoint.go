package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/trace"
)

// Sample is one completed trial as recorded in the checkpoint: one JSON
// line per sample, following the trace.JSONLWriter conventions (fixed
// field order, one object per line). A sample is a pure function of
// (spec, point, trial), so duplicate records — possible after a crash
// between a shard append and a manifest rewrite — are identical and
// deduplicate trivially on load.
type Sample struct {
	// Point is the point index in the spec grid.
	Point int `json:"point"`
	// PointID is the point's stable identifier (redundant with Point; a
	// guard against reading a checkpoint with a reordered spec).
	PointID string `json:"id"`
	// Trial is the trial index within the point, 0-based.
	Trial int `json:"trial"`
	// Seed is the derived trial seed, recorded for replay/debugging.
	Seed uint64 `json:"seed"`
	// Value is the scalar measurement (0 when Failed).
	Value float64 `json:"value"`
	// OK is the trial-level success flag (broadcast completed, ...).
	OK bool `json:"ok"`
	// Failed records a trial that panicked on every attempt; its Value is
	// meaningless and excluded from value aggregates.
	Failed bool `json:"failed,omitempty"`
	// Err is the captured panic message of a failed trial.
	Err string `json:"err,omitempty"`
	// Retries is how many extra attempts the trial needed (deterministic:
	// a panicking seed panics identically on every attempt).
	Retries int `json:"retries,omitempty"`
}

// key identifies a sample within a campaign.
type key struct{ point, trial int }

// Manifest is the checkpoint directory's metadata, rewritten atomically
// (tmp + rename) so a reader never observes a torn manifest.
type Manifest struct {
	Version  int      `json:"version"`
	Name     string   `json:"name"`
	SpecHash string   `json:"spec_hash"`
	Spec     *Spec    `json:"spec"`
	Shards   []string `json:"shards"`
	// Recorded is the number of samples flushed to the shards at the last
	// manifest rewrite (shards may contain a few more after a crash).
	Recorded int `json:"recorded"`
	// Complete reports that the campaign ran to completion (every point
	// exhausted its budget or stopped adaptively).
	Complete bool `json:"complete"`
	// Engine records which trial engine produced the samples: "" (or a
	// missing field, in checkpoints recorded before lane batching) for the
	// scalar per-trial engine, EngineLanes for the bit-parallel lane
	// engine. The two draw different — distributionally identical —
	// randomness streams for lane-capable points, so resuming or merging a
	// lane-sensitive spec refuses a mismatch rather than silently mixing
	// streams within one checkpoint.
	Engine string `json:"engine,omitempty"`
	// Leases is the cluster coordinator's shard bookkeeping, recorded so
	// a restarted coordinator resumes with its lease history visible (the
	// samples themselves remain the source of truth for what is done —
	// see SampleSet.RangeComplete). Empty for single-machine runs.
	Leases []ShardLease `json:"leases,omitempty"`
}

// ShardLease is one shard's lease record as persisted in the manifest by
// a cluster coordinator: which point range it covers, its current state
// in the lease state machine (pending → leased → completed | failed),
// how many leases it consumed, and the last worker it was granted to.
type ShardLease struct {
	ID       string `json:"id"`
	PointLo  int    `json:"point_lo"`
	PointHi  int    `json:"point_hi"`
	State    string `json:"state"`
	Attempts int    `json:"attempts,omitempty"`
	Worker   string `json:"worker,omitempty"`
}

// Engine tags recorded in Manifest.Engine.
const (
	EngineScalar = ""      // scalar per-trial engine (and all pre-lane checkpoints)
	EngineLanes  = "lanes" // bit-parallel lane engine (lane-capable points only)
)

// engineName renders an engine tag for error messages.
func engineName(e string) string {
	if e == EngineScalar {
		return "scalar"
	}
	return e
}

const (
	manifestVersion = 1
	manifestName    = "manifest.json"
)

// shardName returns the file name of checkpoint shard i.
func shardName(i int) string { return fmt.Sprintf("samples-%02d.jsonl", i) }

// shardOf maps a sample to its shard deterministically, so re-recording
// the same trial after a crash or during a merge lands in the same file.
func shardOf(point, trial, shards int) int {
	return (point*31 + trial) % shards
}

// Checkpoint is an open checkpoint directory: sharded JSONL sample logs
// plus the manifest. All methods must be called from one goroutine (the
// campaign collector).
type Checkpoint struct {
	dir      string
	spec     *Spec
	engine   string // Manifest.Engine tag of this run
	files    []*os.File
	encs     []*trace.LineEncoder
	recorded int
	skipped  int          // corrupt shard lines skipped on open (resume only)
	leases   []ShardLease // cluster lease bookkeeping, written with the manifest
}

// SetLeases replaces the lease bookkeeping persisted with the next
// manifest rewrite (Flush). The cluster coordinator snapshots its lease
// table here so a restarted coordinator sees where every shard stood.
func (c *Checkpoint) SetLeases(leases []ShardLease) { c.leases = leases }

// CreateCheckpoint initialises dir (creating it if needed) for a fresh
// campaign run recording samples from the given engine (EngineScalar or
// EngineLanes). It refuses a directory that already holds a checkpoint
// for a different spec; with the same spec it truncates and starts over
// (use OpenCheckpoint + resume to keep recorded samples).
func CreateCheckpoint(dir string, spec *Spec, engine string) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: creating checkpoint dir: %w", err)
	}
	if m, err := ReadManifest(dir); err == nil && m.SpecHash != spec.Hash() {
		return nil, fmt.Errorf("campaign: %s holds a checkpoint for spec %q (hash %s); refusing to overwrite with spec %q (hash %s)",
			dir, m.Name, m.SpecHash, spec.Name, spec.Hash())
	}
	c := &Checkpoint{dir: dir, spec: spec, engine: engine}
	for i := 0; i < spec.shards(); i++ {
		f, err := os.Create(filepath.Join(dir, shardName(i)))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("campaign: creating shard: %w", err)
		}
		c.files = append(c.files, f)
		c.encs = append(c.encs, trace.NewLineEncoder(f))
	}
	if err := c.writeManifest(false); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// OpenCheckpoint opens an existing checkpoint directory for appending
// (resume). It verifies the spec hash and returns the deduplicated
// samples already recorded; corrupt lines anywhere in a shard (a line
// torn by a crash, disk corruption) are skipped and counted — see
// Checkpoint.SkippedLines — and the affected records simply rerun.
func OpenCheckpoint(dir string, spec *Spec, engine string) (*Checkpoint, map[key]*Sample, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	if m.SpecHash != spec.Hash() {
		return nil, nil, fmt.Errorf("campaign: checkpoint %s was recorded under spec hash %s, current spec hashes to %s; seeds are tied to the spec, refusing to resume",
			dir, m.SpecHash, spec.Hash())
	}
	if m.Engine != engine && spec.laneSensitive() {
		return nil, nil, fmt.Errorf("campaign: checkpoint %s was recorded by the %s engine, this run uses the %s engine; the streams differ for lane-capable points, refusing to mix them (rerun with the matching -lanes setting)",
			dir, engineName(m.Engine), engineName(engine))
	}
	samples, skipped, err := loadSamples(dir, m, spec)
	if err != nil {
		return nil, nil, err
	}
	c := &Checkpoint{dir: dir, spec: spec, engine: engine, recorded: len(samples), skipped: skipped, leases: m.Leases}
	for i := 0; i < spec.shards(); i++ {
		f, err := os.OpenFile(filepath.Join(dir, shardName(i)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			c.Close()
			return nil, nil, fmt.Errorf("campaign: opening shard: %w", err)
		}
		c.files = append(c.files, f)
		c.encs = append(c.encs, trace.NewLineEncoder(f))
	}
	return c, samples, nil
}

// ReadManifest reads and decodes dir's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("campaign: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("campaign: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("campaign: manifest version %d, this build reads %d", m.Version, manifestVersion)
	}
	if m.Spec == nil {
		return nil, errors.New("campaign: manifest has no spec")
	}
	return &m, nil
}

// LoadSamples returns the deduplicated samples recorded in a checkpoint
// directory, keyed for the aggregator, using the manifest's own spec,
// plus the number of corrupt lines the loader skipped (see loadSamples).
func LoadSamples(dir string) (*Manifest, map[key]*Sample, int, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, 0, err
	}
	samples, skipped, err := loadSamples(dir, m, m.Spec)
	return m, samples, skipped, err
}

// loadSamples reads every shard and returns the deduplicated samples
// plus the number of lines it had to skip. A skipped line is any record
// the loader cannot trust — unparseable JSON (a line torn by a crash
// mid-append, or disk corruption anywhere in the file), coordinates
// outside the spec grid, or a point id that contradicts the (already
// hash-verified) spec. Skipping instead of aborting keeps a multi-hour
// campaign resumable after a single bad line: the skipped trials simply
// rerun, and callers surface the count so silent corruption is still
// visible in the report.
func loadSamples(dir string, m *Manifest, spec *Spec) (map[key]*Sample, int, error) {
	samples := make(map[key]*Sample)
	skipped := 0
	for _, name := range m.Shards {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue // manifest ahead of a crashed shard create
			}
			return nil, skipped, fmt.Errorf("campaign: opening shard: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var s Sample
			if err := json.Unmarshal(line, &s); err != nil {
				skipped++
				continue
			}
			if s.Point < 0 || s.Point >= len(spec.Points) || s.Trial < 0 || s.Trial >= spec.Trials {
				skipped++
				continue
			}
			if s.PointID != spec.Points[s.Point].ID {
				skipped++
				continue
			}
			cp := s
			samples[key{s.Point, s.Trial}] = &cp
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, skipped, fmt.Errorf("campaign: scanning shard %s: %w", name, err)
		}
	}
	return samples, skipped, nil
}

// Append records one sample in its shard. The write is buffered; Flush
// persists it.
func (c *Checkpoint) Append(s *Sample) {
	c.encs[shardOf(s.Point, s.Trial, len(c.encs))].Encode(s)
	c.recorded++
}

// Recorded returns the number of samples recorded (including any loaded
// on open).
func (c *Checkpoint) Recorded() int { return c.recorded }

// SkippedLines returns the number of corrupt shard lines the loader
// skipped when this checkpoint was opened for resume (0 for a fresh
// checkpoint).
func (c *Checkpoint) SkippedLines() int { return c.skipped }

// Flush persists buffered samples and atomically rewrites the manifest.
// complete marks the campaign finished.
func (c *Checkpoint) Flush(complete bool) error {
	for i, enc := range c.encs {
		if err := enc.Flush(); err != nil {
			return fmt.Errorf("campaign: flushing shard %d: %w", i, err)
		}
	}
	return c.writeManifest(complete)
}

func (c *Checkpoint) writeManifest(complete bool) error {
	shards := make([]string, c.spec.shards())
	for i := range shards {
		shards[i] = shardName(i)
	}
	m := Manifest{
		Version:  manifestVersion,
		Name:     c.spec.Name,
		SpecHash: c.spec.Hash(),
		Spec:     c.spec,
		Shards:   shards,
		Recorded: c.recorded,
		Complete: complete,
		Engine:   c.engine,
		Leases:   c.leases,
	}
	b, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encoding manifest: %w", err)
	}
	tmp := filepath.Join(c.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, manifestName)); err != nil {
		return fmt.Errorf("campaign: renaming manifest: %w", err)
	}
	return nil
}

// Close closes the shard files without flushing buffered records; call
// Flush first for a clean shutdown.
func (c *Checkpoint) Close() error {
	var first error
	for _, f := range c.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Merge unions the samples of several checkpoint directories recorded
// under the same spec (for example distributed across machines with
// disjoint -points slices) into a fresh checkpoint at dst. The sources
// are expected to cover DISJOINT shard ranges: a (point, trial) recorded
// by two different sources means overlapping -points slices (wasted
// compute, probably a sharding mistake) and Merge reports it as an error
// instead of silently unioning. MergeOverlapping relaxes that for
// identical duplicates; a conflicting duplicate — same coordinates,
// different content — is always an error, since samples are pure
// functions of their coordinates and a divergence means corruption or an
// engine mismatch.
func Merge(dst string, srcs []string) (*Manifest, error) {
	return MergeOverlapping(dst, srcs, false)
}

// MergeOverlapping is Merge with an explicit overlap policy: with
// allowOverlap, identical duplicate records across sources are merged
// silently (useful when re-merging a superset, or after re-running a
// shard for verification); conflicting duplicates still fail.
func MergeOverlapping(dst string, srcs []string, allowOverlap bool) (*Manifest, error) {
	if len(srcs) == 0 {
		return nil, errors.New("campaign: merge needs at least one source")
	}
	var spec *Spec
	var hash, engine string
	var set *SampleSet
	owner := make(map[key]string) // which source first recorded a key
	for _, src := range srcs {
		m, samples, _, err := LoadSamples(src)
		if err != nil {
			return nil, err
		}
		if spec == nil {
			spec, hash, engine = m.Spec, m.SpecHash, m.Engine
			set = NewSampleSet(spec)
		} else if m.SpecHash != hash {
			return nil, fmt.Errorf("campaign: %s was recorded under spec hash %s, %s under %s; refusing to merge different specs",
				srcs[0], hash, src, m.SpecHash)
		} else if m.Engine != engine && spec.laneSensitive() {
			return nil, fmt.Errorf("campaign: %s was recorded by the %s engine, %s by the %s engine; the streams differ for lane-capable points, refusing to merge them",
				srcs[0], engineName(engine), src, engineName(m.Engine))
		}
		// Iterate in grid order so any error names the lowest offending
		// coordinates deterministically.
		keys := make([]key, 0, len(samples))
		for k := range samples {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].point != keys[j].point {
				return keys[i].point < keys[j].point
			}
			return keys[i].trial < keys[j].trial
		})
		for _, k := range keys {
			added, err := set.Add(*samples[k])
			if err != nil {
				return nil, fmt.Errorf("campaign: merging %s into %s: %w", src, dst, err)
			}
			if added {
				owner[k] = src
			} else if !allowOverlap {
				return nil, fmt.Errorf("campaign: %s and %s overlap: both record point %d trial %d (identical values, so the same range ran twice — merge disjoint -points slices, or pass -allow-overlap to union anyway)",
					owner[k], src, k.point, k.trial)
			}
		}
	}
	c, err := CreateCheckpoint(dst, spec, engine)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	// Deterministic shard contents: append in grid order.
	sorted := set.Sorted()
	for i := range sorted {
		c.Append(&sorted[i])
	}
	complete := set.Complete()
	if err := c.Flush(complete); err != nil {
		return nil, err
	}
	return ReadManifest(dst)
}

// campaignComplete reports whether the recorded samples complete the
// campaign: every point either has its full budget or stops adaptively
// on the in-order prefix it does have.
func campaignComplete(spec *Spec, samples map[key]*Sample) bool {
	for p := range spec.Points {
		agg := newPointAgg(spec)
		for t := 0; t < spec.Trials; t++ {
			s, ok := samples[key{p, t}]
			if !ok {
				break
			}
			agg.feed(s)
		}
		if !agg.stopped && agg.consumed < spec.Trials {
			return false
		}
	}
	return true
}
