package campaign

import (
	"path/filepath"
	"strings"
	"testing"
)

// Lane-engine acceptance tests: the report of a lane-sensitive campaign
// must be byte-identical for every -lanes setting that selects the lane
// engine (>= 2, and 0 = auto), lane-insensitive specs must not care at
// all, and checkpoints must refuse to mix the lane and scalar streams of
// a lane-sensitive spec.

func laneSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := Preset("lane-smoke", "small", 2006, 6)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestLaneCountInvariance(t *testing.T) {
	spec := laneSpec(t)
	base, err := Run(spec, Options{Lanes: 2, Dir: filepath.Join(t.TempDir(), "l2")})
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, baseText := renderings(t, base)
	for _, lanesN := range []int{0, 7, 64} {
		r, err := Run(spec, Options{Lanes: lanesN, Dir: filepath.Join(t.TempDir(), "lN")})
		if err != nil {
			t.Fatal(err)
		}
		j, txt := renderings(t, r)
		if j != baseJSON {
			t.Errorf("JSON report with Lanes=%d differs from Lanes=2", lanesN)
		}
		if txt != baseText {
			t.Errorf("text report with Lanes=%d differs from Lanes=2", lanesN)
		}
	}
}

func TestLaneWorkerInvariance(t *testing.T) {
	spec := laneSpec(t)
	base, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, _ := renderings(t, base)
	for _, workers := range []int{3, 8} {
		r, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if j, _ := renderings(t, r); j != baseJSON {
			t.Errorf("lane report with %d workers differs from 1 worker", workers)
		}
	}
}

// TestScalarFallbackIgnoresLanes: a spec with no fixed-graph point never
// touches the lane engine, so every Lanes setting — including the scalar
// 1 — yields the same bytes, and its checkpoints carry the scalar tag.
func TestScalarFallbackIgnoresLanes(t *testing.T) {
	spec := simSpecScalar()
	base, err := Run(spec, Options{Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, _ := renderings(t, base)
	r, err := Run(spec, Options{Lanes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := renderings(t, r); j != baseJSON {
		t.Error("lane-insensitive report differs between Lanes=1 and Lanes=64")
	}
}

// simSpecScalar is simSpec without its fixed-graph point: fresh graphs
// every trial, so no point is lane-capable.
func simSpecScalar() *Spec {
	spec := simSpec()
	points := spec.Points[:0]
	for _, p := range spec.Points {
		if !batchablePoint(p) {
			points = append(points, p)
		}
	}
	spec.Points = points
	spec.Name = "invariance-sim-scalar"
	return spec
}

// TestResumeEngineMismatch: a halted lane run must refuse to resume
// under the scalar engine (and vice versa) — the two draw different
// randomness streams, so mixing them inside one checkpoint would break
// the byte-identical-resume guarantee.
func TestResumeEngineMismatch(t *testing.T) {
	spec := laneSpec(t)
	dir := filepath.Join(t.TempDir(), "ck")
	partial, err := Run(spec, Options{Dir: dir, HaltAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Complete {
		t.Fatal("halted run must be incomplete")
	}
	if _, err := Run(spec, Options{Dir: dir, Resume: true, Lanes: 1}); err == nil {
		t.Fatal("resuming a lane checkpoint with the scalar engine must fail")
	} else if !strings.Contains(err.Error(), "-lanes") {
		t.Errorf("mismatch error should mention -lanes, got: %v", err)
	}
	// Resuming under any lane setting >= 2 is fine and must converge to
	// the uninterrupted report.
	resumed, err := Run(spec, Options{Dir: dir, Resume: true, Lanes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Complete {
		t.Fatal("resumed run must complete")
	}
	full, err := Run(spec, Options{Dir: filepath.Join(t.TempDir(), "full")})
	if err != nil {
		t.Fatal(err)
	}
	fj, ft := renderings(t, full)
	rj, rt := renderings(t, resumed)
	if fj != rj || ft != rt {
		t.Error("resumed lane report differs from uninterrupted run")
	}
}

// TestResumeEngineMismatchInsensitive: a spec with no lane-capable point
// always tags its checkpoints scalar, so any Lanes setting may resume it.
func TestResumeEngineMismatchInsensitive(t *testing.T) {
	spec := simSpecScalar()
	dir := filepath.Join(t.TempDir(), "ck")
	if _, err := Run(spec, Options{Dir: dir, HaltAfter: 2, Lanes: 64}); err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(spec, Options{Dir: dir, Resume: true, Lanes: 1})
	if err != nil {
		t.Fatalf("lane-insensitive resume must accept any Lanes setting: %v", err)
	}
	if !resumed.Complete {
		t.Fatal("resumed run must complete")
	}
}
