package campaign

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xrand"
)

// Test-only trial kinds, registered once for the whole package test run.
//
// "test-cheap" is a pure-rng trial (no graph work): value is a uniform
// draw scaled by the point's D, ok iff the value exceeds 1. Fast enough
// to run hundreds of trials in invariance matrices.
//
// "test-flaky" panics deterministically whenever its first draw is below
// 0.3 and otherwise returns the second draw — the fault-tolerance kinds.
func init() {
	RegisterKind("test-cheap", func(p PointSpec, _ uint64) (Runner, error) {
		return cheapRunner{scale: p.Trial.D}, nil
	})
	RegisterKind("test-flaky", func(p PointSpec, _ uint64) (Runner, error) {
		return flakyRunner{}, nil
	})
}

type cheapRunner struct{ scale float64 }

func (r cheapRunner) RunTrial(rng *xrand.Rand) (float64, bool) {
	v := rng.Float64() * r.scale
	return v, v > 1
}

type flakyRunner struct{}

func (flakyRunner) RunTrial(rng *xrand.Rand) (float64, bool) {
	if rng.Float64() < 0.3 {
		panic("test-flaky: deterministic failure")
	}
	return rng.Float64(), true
}

// cheapSpec builds a small pure-rng campaign spec.
func cheapSpec(trials int, stop *StopRule) *Spec {
	return &Spec{
		Name:   "test-cheap-campaign",
		Seed:   77,
		Trials: trials,
		Stop:   stop,
		Points: []PointSpec{
			{ID: "a", X: 1, Trial: TrialSpec{Kind: "test-cheap", N: 10, D: 4}},
			{ID: "b", X: 2, Trial: TrialSpec{Kind: "test-cheap", N: 10, D: 9}},
			{ID: "c", X: 3, Trial: TrialSpec{Kind: "test-cheap", N: 10, D: 2}},
		},
	}
}

func reportJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := r.JSON()
	if err != nil {
		t.Fatalf("rendering report: %v", err)
	}
	return b
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no trials", func(s *Spec) { s.Trials = 0 }, "trials"},
		{"no points", func(s *Spec) { s.Points = nil }, "no points"},
		{"dup id", func(s *Spec) { s.Points[1].ID = "a" }, "duplicate"},
		{"empty id", func(s *Spec) { s.Points[0].ID = "" }, "no id"},
		{"bad kind", func(s *Spec) { s.Points[0].Trial.Kind = "nope" }, "unknown trial kind"},
		{"bad n", func(s *Spec) { s.Points[0].Trial.N = 0 }, "n must be positive"},
		{"bad d", func(s *Spec) { s.Points[0].Trial.D = 0 }, "d must be positive"},
		{"bad stop min", func(s *Spec) { s.Stop = &StopRule{MinTrials: 1, HalfWidth: 1} }, "min_trials"},
		{"bad stop hw", func(s *Spec) { s.Stop = &StopRule{MinTrials: 3} }, "half_width"},
	}
	for _, c := range cases {
		s := cheapSpec(5, nil)
		c.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
	if err := cheapSpec(5, &StopRule{MinTrials: 3, HalfWidth: 0.5}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestSpecHashStable(t *testing.T) {
	a, b := cheapSpec(5, nil), cheapSpec(5, nil)
	if a.Hash() != b.Hash() {
		t.Error("identical specs must hash identically")
	}
	b.Points[0].Trial.D = 5
	if a.Hash() == b.Hash() {
		t.Error("edited spec must change the hash")
	}
}

func TestRunInMemory(t *testing.T) {
	r, err := Run(cheapSpec(20, nil), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Error("campaign must complete")
	}
	if len(r.Points) != 3 {
		t.Fatalf("got %d point reports", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Consumed != 20 || !p.Complete || p.Failures != 0 {
			t.Errorf("point %s: consumed=%d complete=%v failures=%d", p.ID, p.Consumed, p.Complete, p.Failures)
		}
		if math.IsNaN(float64(p.Mean)) || float64(p.Mean) <= 0 {
			t.Errorf("point %s: mean = %v", p.ID, p.Mean)
		}
		// The cheap trial succeeds iff value > 1, so point c (scale 2)
		// must have a success rate strictly inside (0, 1) at 20 trials
		// ... statistically; just check the interval is ordered.
		if !(float64(p.WilsonLow) <= float64(p.SuccessRate) && float64(p.SuccessRate) <= float64(p.WilsonHigh)) {
			t.Errorf("point %s: Wilson interval [%v, %v] does not bracket rate %v",
				p.ID, p.WilsonLow, p.WilsonHigh, p.SuccessRate)
		}
	}
}

func TestFaultToleranceRecordsFailuresWithoutKillingPool(t *testing.T) {
	spec := &Spec{
		Name:       "test-flaky-campaign",
		Seed:       5,
		Trials:     40,
		MaxRetries: 2,
		Points: []PointSpec{
			{ID: "flaky", X: 1, Trial: TrialSpec{Kind: "test-flaky", N: 10, D: 1}},
			{ID: "solid", X: 2, Trial: TrialSpec{Kind: "test-cheap", N: 10, D: 4}},
		},
	}
	r, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Error("panicking trials must not abort the campaign")
	}
	flaky := r.Points[0]
	if flaky.Consumed != 40 {
		t.Errorf("flaky point consumed %d/40", flaky.Consumed)
	}
	// ~30% of seeds panic; with 40 trials the count is essentially never 0
	// or 40.
	if flaky.Failures == 0 || flaky.Failures == 40 {
		t.Errorf("flaky point failures = %d, want strictly between 0 and 40", flaky.Failures)
	}
	if got := flaky.Successes + flaky.Failures; got != 40 {
		t.Errorf("flaky successes+failures = %d, want 40 (failed trials are never ok)", got)
	}
	solid := r.Points[1]
	if solid.Failures != 0 || solid.Consumed != 40 {
		t.Errorf("solid point disturbed by neighbour panics: %+v", solid)
	}
	// Failure handling must itself be deterministic.
	r2, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(reportJSON(t, r)) != string(reportJSON(t, r2)) {
		t.Error("reports with panicking trials differ across worker counts")
	}
}

func TestRetriesAreBoundedAndRecorded(t *testing.T) {
	spec := &Spec{
		Name:       "test-retry",
		Seed:       5,
		Trials:     20,
		MaxRetries: 3,
		Points: []PointSpec{
			{ID: "flaky", X: 1, Trial: TrialSpec{Kind: "test-flaky", N: 10, D: 1}},
		},
	}
	dir := t.TempDir()
	if _, err := Run(spec, Options{Workers: 2, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	_, samples, _, err := LoadSamples(dir)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, s := range samples {
		if s.Failed {
			failed++
			if s.Retries != spec.MaxRetries {
				t.Errorf("failed trial %d recorded %d retries, want %d", s.Trial, s.Retries, spec.MaxRetries)
			}
			if !strings.Contains(s.Err, "deterministic failure") {
				t.Errorf("failed trial %d: err = %q, want captured panic message", s.Trial, s.Err)
			}
		} else if s.Retries != 0 {
			t.Errorf("deterministically succeeding trial %d recorded %d retries", s.Trial, s.Retries)
		}
	}
	if failed == 0 {
		t.Fatal("expected some failed samples in the checkpoint")
	}
}

func TestAdaptiveStoppingSavesBudgetDeterministically(t *testing.T) {
	// Point b has the widest spread (scale 9); a loose relative target
	// stops the tighter points early.
	spec := cheapSpec(200, &StopRule{MinTrials: 10, HalfWidth: 0.25, Relative: true})
	r1, err := Run(spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.SavedTrials == 0 {
		t.Fatal("expected the stop rule to save budget on 200-trial points")
	}
	stopped := 0
	for _, p := range r1.Points {
		if p.StoppedEarly {
			stopped++
			if p.Consumed >= p.Budget || p.SavedTrials != p.Budget-p.Consumed {
				t.Errorf("point %s: consumed=%d budget=%d saved=%d", p.ID, p.Consumed, p.Budget, p.SavedTrials)
			}
			if p.Consumed < 10 {
				t.Errorf("point %s stopped before min_trials: %d", p.ID, p.Consumed)
			}
			if !p.Complete {
				t.Errorf("stopped point %s must report complete", p.ID)
			}
		}
	}
	if stopped == 0 {
		t.Fatal("no point stopped early")
	}
	// The stop index is decided on the in-order stream: byte-identical
	// across worker counts even though in-flight overshoot differs.
	r8, err := Run(spec, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if string(reportJSON(t, r1)) != string(reportJSON(t, r8)) {
		t.Error("adaptive-stop reports differ across worker counts")
	}
}

func TestResumeRefusesChangedSpec(t *testing.T) {
	dir := t.TempDir()
	spec := cheapSpec(5, nil)
	if _, err := Run(spec, Options{Dir: dir, HaltAfter: 2}); err != nil {
		t.Fatal(err)
	}
	edited := cheapSpec(5, nil)
	edited.Points[0].Trial.D = 99
	_, err := Run(edited, Options{Dir: dir, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "refusing to resume") {
		t.Errorf("resume under an edited spec: err = %v, want spec-hash refusal", err)
	}
	// A fresh (non-resume) run into a dir holding a different spec's
	// checkpoint must also refuse rather than clobber.
	_, err = Run(edited, Options{Dir: dir})
	if err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Errorf("overwrite with different spec: err = %v, want refusal", err)
	}
}

func TestCheckpointToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	spec := cheapSpec(6, nil)
	full, err := Run(spec, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: tear the last line of one shard.
	shard := filepath.Join(dir, shardName(0))
	b, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shard, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	// Resume reruns the torn trial (it is deterministic) and converges to
	// the identical report, while surfacing that one line was skipped.
	resumed, err := Run(spec, Options{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.SkippedLines != 1 {
		t.Errorf("resumed report SkippedLines = %d, want the torn line counted", resumed.SkippedLines)
	}
	resumed.SkippedLines = 0 // metadata, not measurement: the data must match exactly
	if string(reportJSON(t, full)) != string(reportJSON(t, resumed)) {
		t.Error("report after torn-tail resume differs from the clean run")
	}
}

func TestMergeShardedRuns(t *testing.T) {
	spec := cheapSpec(8, nil)
	base := t.TempDir()
	d0, d1, whole, merged := filepath.Join(base, "s0"), filepath.Join(base, "s1"), filepath.Join(base, "whole"), filepath.Join(base, "merged")
	if _, err := Run(spec, Options{Dir: d0, PointLo: 0, PointHi: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, Options{Dir: d1, PointLo: 1, PointHi: 3}); err != nil {
		t.Fatal(err)
	}
	wholeReport, err := Run(spec, Options{Dir: whole})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(merged, []string{d0, d1})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Complete || m.Recorded != 3*8 {
		t.Errorf("merged manifest: complete=%v recorded=%d, want complete with 24 samples", m.Complete, m.Recorded)
	}
	mergedReport, err := ReportDir(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(reportJSON(t, wholeReport)) != string(reportJSON(t, mergedReport)) {
		t.Error("merged sharded report differs from the whole-grid run")
	}
	// Merging checkpoints of different specs must refuse.
	other := cheapSpec(9, nil)
	dOther := filepath.Join(base, "other")
	if _, err := Run(other, Options{Dir: dOther}); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(filepath.Join(base, "bad"), []string{d0, dOther}); err == nil {
		t.Error("merging different specs must fail")
	}
}

func TestPresetsBuildValidSpecs(t *testing.T) {
	for _, name := range Presets() {
		for _, scale := range []string{"small", "medium", "full"} {
			spec, err := Preset(name, scale, 2006, 0)
			if err != nil {
				t.Errorf("Preset(%s, %s): %v", name, scale, err)
				continue
			}
			if err := spec.Validate(); err != nil {
				t.Errorf("Preset(%s, %s) invalid: %v", name, scale, err)
			}
		}
		if _, err := Preset(name, "bogus", 2006, 0); name != "smoke" && err == nil {
			t.Errorf("Preset(%s, bogus) must fail", name)
		}
	}
	if _, err := Preset("no-such-preset", "small", 1, 0); err == nil {
		t.Error("unknown preset must fail")
	}
}

func TestReportDirOnIncompleteCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := cheapSpec(10, nil)
	if _, err := Run(spec, Options{Dir: dir, HaltAfter: 4}); err != nil {
		t.Fatal(err)
	}
	r, err := ReportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Complete {
		t.Error("halted checkpoint must report incomplete")
	}
	total := 0
	for _, p := range r.Points {
		total += p.Consumed
	}
	if total == 0 || total >= 30 {
		t.Errorf("halted checkpoint consumed %d trials in report, want a proper prefix", total)
	}
}
