package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// This file is the shard extraction/import layer the cluster subsystem
// builds on: a SampleSet accumulates samples from many producers (local
// runs, remote workers, checkpoint shards) with duplicate and conflict
// detection, and Encode/DecodeSamples are the JSONL wire format a worker
// streams its shard results back in. Everything here preserves the
// campaign determinism contract: a sample is a pure function of (spec,
// point, trial), so identical duplicates are merged silently while a
// conflicting duplicate — same coordinates, different content — is
// always an error, because it can only mean corruption or an engine
// mismatch.

// SampleSet is a deduplicating, conflict-checking collection of samples
// recorded under one spec. It is not safe for concurrent use; callers
// serialize access (the cluster coordinator adds under its own lock).
type SampleSet struct {
	spec *Spec
	m    map[key]*Sample
}

// NewSampleSet returns an empty set for spec.
func NewSampleSet(spec *Spec) *SampleSet {
	return &SampleSet{spec: spec, m: make(map[key]*Sample)}
}

// Add records one sample. It returns added=false for a duplicate that is
// byte-for-byte identical to the recorded one (harmless: samples are
// pure functions of their coordinates), and an error for a sample with
// coordinates outside the spec grid, a point id contradicting the spec,
// or a conflicting duplicate — same (point, trial), different content —
// which indicates corruption or mixed engines, never a benign race.
func (ss *SampleSet) Add(s Sample) (added bool, err error) {
	if s.Point < 0 || s.Point >= len(ss.spec.Points) || s.Trial < 0 || s.Trial >= ss.spec.Trials {
		return false, fmt.Errorf("campaign: sample (point %d, trial %d) outside the %d-point × %d-trial grid",
			s.Point, s.Trial, len(ss.spec.Points), ss.spec.Trials)
	}
	if s.PointID != ss.spec.Points[s.Point].ID {
		return false, fmt.Errorf("campaign: sample for point %d carries id %q, spec says %q",
			s.Point, s.PointID, ss.spec.Points[s.Point].ID)
	}
	if prev, ok := ss.m[key{s.Point, s.Trial}]; ok {
		if *prev != s {
			return false, fmt.Errorf("campaign: conflicting duplicate for point %d trial %d: recorded %+v, got %+v (corruption or engine mismatch)",
				s.Point, s.Trial, *prev, s)
		}
		return false, nil
	}
	cp := s
	ss.m[key{s.Point, s.Trial}] = &cp
	return true, nil
}

// AddAll adds every sample, returning the ones actually new (in input
// order) or the first error.
func (ss *SampleSet) AddAll(samples []Sample) (added []*Sample, err error) {
	for _, s := range samples {
		ok, err := ss.Add(s)
		if err != nil {
			return nil, err
		}
		if ok {
			added = append(added, ss.m[key{s.Point, s.Trial}])
		}
	}
	return added, nil
}

// Len returns the number of distinct samples recorded.
func (ss *SampleSet) Len() int { return len(ss.m) }

// Sorted returns the samples in grid order (point, then trial) — the
// deterministic order used for wire encoding and checkpoint merges.
func (ss *SampleSet) Sorted() []Sample {
	keys := make([]key, 0, len(ss.m))
	for k := range ss.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].point != keys[j].point {
			return keys[i].point < keys[j].point
		}
		return keys[i].trial < keys[j].trial
	})
	out := make([]Sample, len(keys))
	for i, k := range keys {
		out[i] = *ss.m[k]
	}
	return out
}

// Report aggregates the recorded samples exactly like a live run does —
// the single BuildReport path — so a set assembled from distributed
// shard results renders byte-identically to a single-machine run that
// produced the same samples.
func (ss *SampleSet) Report() *Report { return BuildReport(ss.spec, ss.m) }

// Complete reports whether the recorded samples finish the whole
// campaign (every point's budget exhausted or adaptively stopped on its
// in-order prefix).
func (ss *SampleSet) Complete() bool { return campaignComplete(ss.spec, ss.m) }

// RangeComplete reports whether every point in [lo, hi) needs no more
// trials given the recorded in-order prefix. This is the shard
// completion check: a worker's result must complete its leased range,
// and a resuming coordinator re-derives shard state from it.
func (ss *SampleSet) RangeComplete(lo, hi int) bool {
	for p := lo; p < hi; p++ {
		agg := newPointAgg(ss.spec)
		for t := 0; t < ss.spec.Trials; t++ {
			s, ok := ss.m[key{p, t}]
			if !ok {
				break
			}
			agg.feed(s)
		}
		if !agg.done() {
			return false
		}
	}
	return true
}

// AppendTo appends samples to an open checkpoint. The caller flushes.
func (ss *SampleSet) AppendTo(ck *Checkpoint, samples []*Sample) {
	for _, s := range samples {
		ck.Append(s)
	}
}

// EncodeSamples renders samples as JSON Lines — one Sample object per
// line, in the order given — the wire format shard results travel in.
// Encode(Sorted()) is deterministic for a given set.
func EncodeSamples(samples []Sample) ([]byte, error) {
	var buf bytes.Buffer
	for i := range samples {
		b, err := json.Marshal(&samples[i])
		if err != nil {
			return nil, fmt.Errorf("campaign: encoding sample: %w", err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// DecodeSamples parses a JSONL sample stream. Unlike the torn-tail
// tolerant checkpoint loader, the wire decoder is strict: a malformed
// line fails the whole decode, because a shard result travels over HTTP
// with its integrity intact or not at all.
func DecodeSamples(b []byte) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s Sample
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("campaign: decoding sample line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: scanning sample stream: %w", err)
	}
	return out, nil
}

// EngineTag returns the Manifest.Engine tag a run of spec with the given
// Options.Lanes setting records — the value a cluster coordinator must
// hand its workers (and stamp on its own checkpoint) so every shard of a
// distributed campaign draws the same randomness stream.
func EngineTag(spec *Spec, lanesOpt int) string {
	o := Options{Lanes: lanesOpt}
	return engineTag(spec, o.lanes())
}
