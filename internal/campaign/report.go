package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// pointAgg is the online aggregation state of one grid point. Samples
// arrive in completion order (scheduling-dependent); the aggregator holds
// them in a reorder buffer and consumes strictly in trial-index order, so
// every derived statistic — and in particular the adaptive-stopping
// decision — is a function of the sample prefix alone, independent of
// worker count, interruption and resume order.
type pointAgg struct {
	budget  int
	rule    *StopRule
	pending map[int]*Sample // completed but not yet consumable in order
	next    int             // next trial index to consume

	consumed  int // trials aggregated (order prefix length)
	failures  int // consumed trials that panicked
	successes int // consumed trials with OK set
	welford   stats.Welford
	p10       *stats.P2
	p50       *stats.P2
	p90       *stats.P2
	min, max  float64
	stopped   bool // adaptive stop fired at consumed trials
}

func newPointAgg(spec *Spec) *pointAgg {
	return &pointAgg{
		budget:  spec.Trials,
		rule:    spec.Stop,
		pending: make(map[int]*Sample),
		p10:     stats.NewP2(0.10),
		p50:     stats.NewP2(0.50),
		p90:     stats.NewP2(0.90),
		min:     math.NaN(),
		max:     math.NaN(),
	}
}

// feed hands the aggregator one completed sample and drains the reorder
// buffer. It returns true if the adaptive stop rule fired during this
// call.
func (a *pointAgg) feed(s *Sample) bool {
	if a.stopped || s.Trial < a.next {
		return false // beyond the stop index, or a duplicate
	}
	a.pending[s.Trial] = s
	fired := false
	for !a.stopped && a.next < a.budget {
		cur, ok := a.pending[a.next]
		if !ok {
			break
		}
		delete(a.pending, a.next)
		a.next++
		a.consume(cur)
		if a.checkStop() {
			fired = true
		}
	}
	if a.stopped {
		// In-flight trials past the stop index will never be consumed.
		a.pending = nil
	}
	return fired
}

func (a *pointAgg) consume(s *Sample) {
	a.consumed++
	if s.Failed {
		a.failures++
		return
	}
	if s.OK {
		a.successes++
	}
	a.welford.Add(s.Value)
	a.p10.Add(s.Value)
	a.p50.Add(s.Value)
	a.p90.Add(s.Value)
	if math.IsNaN(a.min) || s.Value < a.min {
		a.min = s.Value
	}
	if math.IsNaN(a.max) || s.Value > a.max {
		a.max = s.Value
	}
}

func (a *pointAgg) checkStop() bool {
	if a.rule == nil || a.stopped || a.consumed < a.rule.MinTrials {
		return false
	}
	hw := a.welford.CI95HalfWidth()
	if math.IsNaN(hw) {
		return false
	}
	target := a.rule.HalfWidth
	if a.rule.Relative {
		target *= math.Abs(a.welford.Mean())
	}
	if hw <= target {
		a.stopped = true
		return true
	}
	return false
}

// done reports whether the point needs no more trials.
func (a *pointAgg) done() bool { return a.stopped || a.consumed >= a.budget }

// PointReport is the aggregated result of one grid point. Every field is
// deterministic for a given (spec, seed): nothing scheduling-dependent —
// wall-clock, worker identity, samples recorded past an adaptive stop —
// appears here, which is what makes reports byte-comparable across runs.
type PointReport struct {
	ID   string    `json:"id"`
	X    JSONFloat `json:"x"`
	Kind string    `json:"kind"`
	N    int       `json:"n"`
	D    JSONFloat `json:"d"`

	// Budget is the spec's per-point trial budget; Consumed is how many
	// trials the aggregation actually used (less than Budget when the
	// point stopped early or the checkpoint is incomplete).
	Budget   int `json:"budget"`
	Consumed int `json:"consumed"`
	// Failures counts consumed trials that panicked on every attempt;
	// their values are excluded from the value statistics below but they
	// count as unsuccessful trials in the success-rate interval.
	Failures int `json:"failures"`

	// Successes / SuccessRate / Wilson* describe the trial-level success
	// probability (e.g. broadcast completed within budget) with its 95%
	// Wilson score interval.
	Successes   int       `json:"successes"`
	SuccessRate JSONFloat `json:"success_rate"`
	WilsonLow   JSONFloat `json:"wilson_low"`
	WilsonHigh  JSONFloat `json:"wilson_high"`

	// Mean/StdDev/CIHalfWidth are the streaming Welford statistics of the
	// non-failed trial values; the CI is the normal-approximation 95%
	// interval of the mean.
	Mean        JSONFloat `json:"mean"`
	StdDev      JSONFloat `json:"stddev"`
	CIHalfWidth JSONFloat `json:"ci_half_width"`

	// P10/Median/P90 are P² streaming quantile estimates (exact below 5
	// samples); Min/Max are exact.
	P10    JSONFloat `json:"p10"`
	Median JSONFloat `json:"median"`
	P90    JSONFloat `json:"p90"`
	Min    JSONFloat `json:"min"`
	Max    JSONFloat `json:"max"`

	// StoppedEarly reports the adaptive stop rule fired; SavedTrials is
	// the budget it skipped.
	StoppedEarly bool `json:"stopped_early"`
	SavedTrials  int  `json:"saved_trials"`
	// Complete reports the point needs no more trials (budget exhausted
	// or stopped early).
	Complete bool `json:"complete"`
}

// Report is the final campaign report.
type Report struct {
	Name     string `json:"name"`
	SpecHash string `json:"spec_hash"`
	Seed     uint64 `json:"seed"`
	Trials   int    `json:"trials"`
	// Complete reports every point finished; SavedTrials totals the
	// budget skipped by adaptive stopping.
	Complete    bool `json:"complete"`
	SavedTrials int  `json:"saved_trials"`
	// SkippedLines counts corrupt checkpoint lines the loader had to skip
	// when this report was built from (or resumed off) a checkpoint
	// directory. Nonzero means the shards hold records that could not be
	// trusted; the affected trials were rerun or excluded.
	SkippedLines int           `json:"skipped_lines,omitempty"`
	Points       []PointReport `json:"points"`
}

// BuildReport aggregates recorded samples into the campaign report by
// feeding each point's samples in trial-index order. It is the single
// aggregation path: the live runner and the offline `campaign report`
// command both end here, so their outputs are byte-identical given the
// same samples.
func BuildReport(spec *Spec, samples map[key]*Sample) *Report {
	r := &Report{
		Name:     spec.Name,
		SpecHash: spec.Hash(),
		Seed:     spec.Seed,
		Trials:   spec.Trials,
		Complete: true,
	}
	for p := range spec.Points {
		agg := newPointAgg(spec)
		for t := 0; t < spec.Trials; t++ {
			s, ok := samples[key{p, t}]
			if !ok {
				break
			}
			agg.feed(s)
			if agg.stopped {
				break
			}
		}
		pr := agg.report(&spec.Points[p])
		if !pr.Complete {
			r.Complete = false
		}
		r.SavedTrials += pr.SavedTrials
		r.Points = append(r.Points, pr)
	}
	return r
}

// ReportDir recomputes the report of a checkpoint directory from its
// recorded samples, without running anything. An incomplete checkpoint
// yields a report with Complete false and per-point Consumed counts
// reflecting the recorded prefix.
func ReportDir(dir string) (*Report, error) {
	m, samples, skipped, err := LoadSamples(dir)
	if err != nil {
		return nil, err
	}
	if err := m.Spec.Validate(); err != nil {
		return nil, err
	}
	r := BuildReport(m.Spec, samples)
	r.SkippedLines = skipped
	return r, nil
}

// report snapshots the aggregation state into a PointReport.
func (a *pointAgg) report(p *PointSpec) PointReport {
	pr := PointReport{
		ID:           p.ID,
		X:            JSONFloat(p.X),
		Kind:         p.Trial.Kind,
		N:            p.Trial.N,
		D:            JSONFloat(p.Trial.D),
		Budget:       a.budget,
		Consumed:     a.consumed,
		Failures:     a.failures,
		Successes:    a.successes,
		SuccessRate:  JSONFloat(math.NaN()),
		Mean:         JSONFloat(a.welford.Mean()),
		StdDev:       JSONFloat(a.welford.StdDev()),
		CIHalfWidth:  JSONFloat(a.welford.CI95HalfWidth()),
		P10:          JSONFloat(a.p10.Value()),
		Median:       JSONFloat(a.p50.Value()),
		P90:          JSONFloat(a.p90.Value()),
		Min:          JSONFloat(a.min),
		Max:          JSONFloat(a.max),
		StoppedEarly: a.stopped,
		Complete:     a.done(),
	}
	if a.consumed > 0 {
		pr.SuccessRate = JSONFloat(float64(a.successes) / float64(a.consumed))
	}
	lo, hi := stats.Wilson(a.successes, a.consumed, 1.96)
	pr.WilsonLow, pr.WilsonHigh = JSONFloat(lo), JSONFloat(hi)
	if a.stopped {
		pr.SavedTrials = a.budget - a.consumed
	}
	return pr
}

// JSON renders the report as indented JSON with a trailing newline. The
// bytes are deterministic: field order is fixed by the struct
// definitions, float formatting by encoding/json, and non-finite values
// marshal as null via JSONFloat.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the report as a fixed-width table. Like JSON, the output
// is deterministic for a given report.
func (r *Report) Text() string {
	var b strings.Builder
	status := "complete"
	if !r.Complete {
		status = "INCOMPLETE"
	}
	fmt.Fprintf(&b, "campaign %s  (seed %d, budget %d trials/point, %s)\n",
		r.Name, r.Seed, r.Trials, status)
	if r.SavedTrials > 0 {
		fmt.Fprintf(&b, "adaptive stopping saved %d trials\n", r.SavedTrials)
	}
	if r.SkippedLines > 0 {
		fmt.Fprintf(&b, "WARNING: skipped %d corrupt checkpoint line(s); affected trials rerun or excluded\n", r.SkippedLines)
	}
	fmt.Fprintf(&b, "%-18s %10s %9s %5s %4s %9s %9s %9s %9s %9s %14s\n",
		"point", "x", "kind", "n/bud", "fail", "mean", "±ci95", "p10", "median", "p90", "ok (wilson95)")
	for i := range r.Points {
		p := &r.Points[i]
		mark := ""
		if p.StoppedEarly {
			mark = "*"
		} else if !p.Complete {
			mark = "!"
		}
		fmt.Fprintf(&b, "%-18s %10.4g %9s %2d/%-2d %4d %9.4g %9.3g %9.4g %9.4g %9.4g %5.3f [%.3f,%.3f]%s\n",
			p.ID, float64(p.X), p.Kind, p.Consumed, p.Budget, p.Failures,
			float64(p.Mean), float64(p.CIHalfWidth),
			float64(p.P10), float64(p.Median), float64(p.P90),
			float64(p.SuccessRate), float64(p.WilsonLow), float64(p.WilsonHigh), mark)
	}
	b.WriteString("(* stopped early by CI target, ! incomplete)\n")
	return b.String()
}
