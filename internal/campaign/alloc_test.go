package campaign

import (
	"context"
	"testing"

	"repro/internal/xrand"
)

// Steady-state allocation regressions for the trial hot loops: a
// fixed-graph runner builds its graph and engine once, so per-trial work
// must not allocate — neither on the scalar path (BroadcastTimeOn
// materialises no Result) nor on the lane batch path (the lane engine
// reuses every buffer across Run calls).

func fixedPoint(kind string) PointSpec {
	return PointSpec{ID: "p", X: 1, Trial: TrialSpec{Kind: kind, N: 400, D: 12, FixedGraph: true}}
}

func TestFixedGraphTrialAllocs(t *testing.T) {
	for _, kind := range []string{"distributed", "decay", "aloha", "collision-rate"} {
		runner, err := newRunner(fixedPoint(kind), 7)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(1)
		runner.RunTrial(rng) // warm up lazily grown engine scratch
		allocs := testing.AllocsPerRun(20, func() {
			rng.Reseed(99)
			runner.RunTrial(rng)
		})
		if allocs > 0 {
			t.Errorf("%s fixed-graph RunTrial allocates %.1f objects/trial, want 0", kind, allocs)
		}
	}
}

func TestLaneBatchSteadyStateAllocs(t *testing.T) {
	runner, err := newRunner(fixedPoint("distributed"), 7)
	if err != nil {
		t.Fatal(err)
	}
	br, ok := runner.(BatchRunner)
	if !ok {
		t.Fatal("fixed-graph distributed runner must be a BatchRunner")
	}
	const trials = 16
	seeds := make([]uint64, trials)
	values := make([]float64, trials)
	oks := make([]bool, trials)
	parent := xrand.New(3)
	fill := func(base uint64) {
		for i := range seeds {
			seeds[i] = parent.DeriveSeed(base + uint64(i) + 1)
		}
	}
	fill(0)
	if err := br.RunTrialBatch(context.Background(), seeds, values, oks); err != nil {
		t.Fatal(err) // warm up: builds the lane engine and its buffers
	}
	fill(trials)
	if err := br.RunTrialBatch(context.Background(), seeds, values, oks); err != nil {
		t.Fatal(err) // second warm run settles amortized buffer growth
	}
	allocs := testing.AllocsPerRun(10, func() {
		fill(2 * trials)
		if err := br.RunTrialBatch(context.Background(), seeds, values, oks); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("lane batch allocates %.1f objects/block in steady state, want 0", allocs)
	}
	for i, v := range values {
		if !oks[i] || v < 1 {
			t.Fatalf("trial %d: implausible value %v (ok=%v)", i, v, oks[i])
		}
	}
}
