package campaign

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestSampleSetAddConflictAndBounds: identical duplicates merge silently,
// conflicting duplicates and off-grid coordinates are errors.
func TestSampleSetAddConflictAndBounds(t *testing.T) {
	spec := cheapSpec(4, nil)
	set := NewSampleSet(spec)
	s := Sample{Point: 1, PointID: "b", Trial: 2, Seed: 9, Value: 0.5, OK: true}
	if added, err := set.Add(s); err != nil || !added {
		t.Fatalf("first add: added=%v err=%v", added, err)
	}
	if added, err := set.Add(s); err != nil || added {
		t.Fatalf("identical duplicate: added=%v err=%v, want merged silently", added, err)
	}
	conflict := s
	conflict.Value = 0.7
	if _, err := set.Add(conflict); err == nil || !strings.Contains(err.Error(), "conflicting duplicate") {
		t.Fatalf("conflicting duplicate: err=%v, want conflict error", err)
	}
	for _, bad := range []Sample{
		{Point: 3, PointID: "d", Trial: 0},  // point off grid
		{Point: 0, PointID: "a", Trial: 4},  // trial over budget
		{Point: 0, PointID: "zz", Trial: 0}, // id contradicts spec
	} {
		if _, err := set.Add(bad); err == nil {
			t.Errorf("Add(%+v) accepted, want error", bad)
		}
	}
	if set.Len() != 1 {
		t.Fatalf("Len = %d after one distinct add", set.Len())
	}
}

// TestSampleSetReportMatchesRun: a set fed from a run's Sink — in
// scheduling-dependent completion order — renders the identical report.
// This is the cluster aggregation path in miniature.
func TestSampleSetReportMatchesRun(t *testing.T) {
	spec := cheapSpec(8, nil)
	set := NewSampleSet(spec)
	var sinkErr error
	report, err := Run(spec, Options{Sink: func(s *Sample) {
		if _, err := set.Add(*s); err != nil && sinkErr == nil {
			sinkErr = err
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if sinkErr != nil {
		t.Fatal(sinkErr)
	}
	if !set.Complete() || !set.RangeComplete(0, len(spec.Points)) {
		t.Fatal("set fed from a complete run reports incomplete")
	}
	if got, want := string(reportJSON(t, set.Report())), string(reportJSON(t, report)); got != want {
		t.Errorf("SampleSet report differs from the run's:\n%s\nvs\n%s", got, want)
	}
}

// TestSampleSetRangeComplete: per-point completion is tracked
// independently of the rest of the grid (a shard worker cannot use the
// whole-campaign check).
func TestSampleSetRangeComplete(t *testing.T) {
	spec := cheapSpec(4, nil)
	set := NewSampleSet(spec)
	if _, err := Run(spec, Options{PointLo: 1, PointHi: 2, Sink: func(s *Sample) { set.Add(*s) }}); err != nil {
		t.Fatal(err)
	}
	if !set.RangeComplete(1, 2) {
		t.Error("completed slice [1,2) reports incomplete")
	}
	if set.RangeComplete(0, 2) || set.Complete() {
		t.Error("untouched points report complete")
	}
}

// TestEncodeDecodeSamplesRoundTrip: the wire format is lossless and the
// decoder is strict about malformed lines.
func TestEncodeDecodeSamplesRoundTrip(t *testing.T) {
	spec := cheapSpec(5, nil)
	set := NewSampleSet(spec)
	if _, err := Run(spec, Options{Sink: func(s *Sample) { set.Add(*s) }}); err != nil {
		t.Fatal(err)
	}
	sorted := set.Sorted()
	b, err := EncodeSamples(sorted)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSamples(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(sorted) {
		t.Fatalf("decoded %d samples, encoded %d", len(decoded), len(sorted))
	}
	for i := range sorted {
		if decoded[i] != sorted[i] {
			t.Fatalf("sample %d round-tripped to %+v, was %+v", i, decoded[i], sorted[i])
		}
	}
	if _, err := DecodeSamples(append([]byte("{torn"), '\n')); err == nil {
		t.Error("strict decoder accepted a malformed line")
	}
}

// TestMergeRejectsOverlappingShards is the regression test for the old
// silently-unioning merge: two checkpoints whose -points slices overlap
// must fail a plain merge (the same range ran twice — wasted compute and
// probably a sharding mistake), while -allow-overlap unions identical
// duplicates and still matches the whole-grid run.
func TestMergeRejectsOverlappingShards(t *testing.T) {
	spec := cheapSpec(6, nil)
	base := t.TempDir()
	d0, d1 := filepath.Join(base, "s0"), filepath.Join(base, "s1")
	if _, err := Run(spec, Options{Dir: d0, PointLo: 0, PointHi: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, Options{Dir: d1, PointLo: 1, PointHi: 3}); err != nil {
		t.Fatal(err)
	}
	_, err := Merge(filepath.Join(base, "strict"), []string{d0, d1})
	if err == nil {
		t.Fatal("merging overlapping slices [0,2) and [1,3) succeeded, want overlap error")
	}
	for _, want := range []string{"overlap", d0, d1} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("overlap error %q does not name %q", err, want)
		}
	}
	merged := filepath.Join(base, "union")
	m, err := MergeOverlapping(merged, []string{d0, d1}, true)
	if err != nil {
		t.Fatalf("-allow-overlap merge: %v", err)
	}
	if !m.Complete {
		t.Errorf("overlapping slices cover the grid; merged manifest says incomplete")
	}
	whole, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mergedReport, err := ReportDir(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(reportJSON(t, whole)) != string(reportJSON(t, mergedReport)) {
		t.Error("allow-overlap merged report differs from the whole-grid run")
	}
}

// TestMergeRejectsConflictingDuplicates: same coordinates with different
// content is corruption (or an engine mismatch), never tolerated even
// under -allow-overlap.
func TestMergeRejectsConflictingDuplicates(t *testing.T) {
	spec := cheapSpec(2, nil)
	base := t.TempDir()
	d0, d1 := filepath.Join(base, "s0"), filepath.Join(base, "s1")
	mk := func(dir string, value float64) {
		t.Helper()
		ck, err := CreateCheckpoint(dir, spec, EngineScalar)
		if err != nil {
			t.Fatal(err)
		}
		ck.Append(&Sample{Point: 0, PointID: "a", Trial: 0, Seed: 1, Value: value, OK: true})
		if err := ck.Flush(false); err != nil {
			t.Fatal(err)
		}
		ck.Close()
	}
	mk(d0, 0.25)
	mk(d1, 0.75)
	for _, allow := range []bool{false, true} {
		_, err := MergeOverlapping(filepath.Join(base, fmt.Sprintf("bad-%v", allow)), []string{d0, d1}, allow)
		if err == nil || !strings.Contains(err.Error(), "conflicting duplicate") {
			t.Errorf("allowOverlap=%v: err=%v, want conflicting-duplicate error", allow, err)
		}
	}
}
