package campaign

import (
	"path/filepath"
	"runtime"
	"testing"
)

// The satellite acceptance tests of the campaign subsystem: the final
// report — both its JSON and its text rendering — must be byte-identical
// regardless of worker count (including GOMAXPROCS itself), and an
// interrupted run resumed from its checkpoint must converge to the
// identical report an uninterrupted run produces.

// simSpec is a small campaign over the real simulator kinds, so the
// invariance matrix also exercises engine reuse, fixed-graph state and
// the sampled-transmitter fast path — not just the pure-rng test kind.
func simSpec() *Spec {
	return &Spec{
		Name:       "invariance-sim",
		Seed:       2006,
		Trials:     4,
		MaxRetries: 1,
		Shards:     2,
		Points: []PointSpec{
			{ID: "dist-n150", X: 150, Trial: TrialSpec{Kind: "distributed", N: 150, D: 10}},
			{ID: "dist-fixed-n150", X: 150, Trial: TrialSpec{Kind: "distributed", N: 150, D: 10, FixedGraph: true}},
			{ID: "cent-n150", X: 150, Trial: TrialSpec{Kind: "centralized", N: 150, D: 10}},
		},
	}
}

// renderings returns the two deterministic renderings of a report.
func renderings(t *testing.T, r *Report) (string, string) {
	t.Helper()
	return string(reportJSON(t, r)), r.Text()
}

func TestWorkerCountInvariance(t *testing.T) {
	spec := simSpec()
	base, err := Run(spec, Options{Workers: 1, Dir: filepath.Join(t.TempDir(), "w1")})
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, baseText := renderings(t, base)
	for _, workers := range []int{2, 8} {
		r, err := Run(spec, Options{Workers: workers, Dir: filepath.Join(t.TempDir(), "wN")})
		if err != nil {
			t.Fatal(err)
		}
		j, txt := renderings(t, r)
		if j != baseJSON {
			t.Errorf("JSON report with %d workers differs from 1 worker", workers)
		}
		if txt != baseText {
			t.Errorf("text report with %d workers differs from 1 worker", workers)
		}
	}
}

func TestGOMAXPROCSInvariance(t *testing.T) {
	// Workers defaults to GOMAXPROCS; pin it to 1 and 8 around two full
	// runs, the satellite's literal claim.
	spec := simSpec()
	old := runtime.GOMAXPROCS(1)
	r1, err1 := Run(spec, Options{Dir: filepath.Join(t.TempDir(), "p1")})
	runtime.GOMAXPROCS(8)
	r8, err8 := Run(spec, Options{Dir: filepath.Join(t.TempDir(), "p8")})
	runtime.GOMAXPROCS(old)
	if err1 != nil || err8 != nil {
		t.Fatalf("runs failed: %v / %v", err1, err8)
	}
	j1, t1 := renderings(t, r1)
	j8, t8 := renderings(t, r8)
	if j1 != j8 || t1 != t8 {
		t.Error("reports differ between GOMAXPROCS=1 and GOMAXPROCS=8")
	}
}

func TestInterruptedResumeInvariance(t *testing.T) {
	spec := simSpec()
	full, err := Run(spec, Options{Workers: 4, Dir: filepath.Join(t.TempDir(), "full")})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Complete {
		t.Fatal("uninterrupted run must complete")
	}
	fullJSON, fullText := renderings(t, full)

	// Interrupt after a deterministic number of recorded samples, then
	// resume — possibly more than once, like a flaky machine would.
	dir := filepath.Join(t.TempDir(), "halted")
	partial, err := Run(spec, Options{Workers: 4, Dir: dir, HaltAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Complete {
		t.Fatal("halted run must be incomplete")
	}
	// A second partial leg (it may or may not finish the small grid —
	// in-flight trials past the halt threshold still get recorded).
	if _, err := Run(spec, Options{Workers: 2, Dir: dir, Resume: true, HaltAfter: 4}); err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(spec, Options{Workers: 8, Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Complete {
		t.Fatal("final resume must complete the campaign")
	}
	j, txt := renderings(t, resumed)
	if j != fullJSON {
		t.Error("JSON report after interrupt+resume differs from the uninterrupted run")
	}
	if txt != fullText {
		t.Error("text report after interrupt+resume differs from the uninterrupted run")
	}
	// And the offline report over the finished checkpoint agrees too.
	offline, err := ReportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if oj, _ := renderings(t, offline); oj != fullJSON {
		t.Error("offline ReportDir differs from the live report")
	}
}

func TestInterruptChannelHaltsGracefully(t *testing.T) {
	spec := cheapSpec(50, nil)
	interrupt := make(chan struct{})
	close(interrupt) // already-fired interrupt: halt before dispatching
	dir := t.TempDir()
	r, err := Run(spec, Options{Workers: 2, Dir: dir, Interrupt: interrupt})
	if err != nil {
		t.Fatal(err)
	}
	if r.Complete {
		t.Error("immediately-interrupted run must be incomplete")
	}
	// The checkpoint is flushed and resumable.
	resumed, err := Run(spec, Options{Workers: 2, Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Complete {
		t.Error("resume after interrupt must complete")
	}
	clean, err := Run(spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if string(reportJSON(t, resumed)) != string(reportJSON(t, clean)) {
		t.Error("interrupted+resumed report differs from clean in-memory run")
	}
}
