package campaign

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/radio"
	"repro/internal/xrand"
)

// ctxGate coordinates the "test-ctx" kind with the cancellation tests:
// each RunTrialContext call sends one token to started (if a test is
// listening) and then blocks until release is closed or the context is
// canceled. RunTrial — the path used when a campaign has no Context —
// never touches the gate.
var ctxGate struct {
	started chan struct{}
	release chan struct{}
}

func init() {
	RegisterKind("test-ctx", func(p PointSpec, _ uint64) (Runner, error) {
		return ctxAwareRunner{scale: p.Trial.D}, nil
	})
}

type ctxAwareRunner struct{ scale float64 }

func (r ctxAwareRunner) RunTrial(rng *xrand.Rand) (float64, bool) {
	v := rng.Float64() * r.scale
	return v, v > 1
}

func (r ctxAwareRunner) RunTrialContext(ctx context.Context, rng *xrand.Rand) (float64, bool, error) {
	if ctxGate.started != nil {
		select {
		case ctxGate.started <- struct{}{}:
		default:
		}
	}
	if ctxGate.release != nil {
		select {
		case <-ctxGate.release:
		case <-ctx.Done():
			return 0, false, radio.Canceled(ctx)
		}
	}
	v := rng.Float64() * r.scale
	return v, v > 1, nil
}

func ctxSpec(trials int) *Spec {
	return &Spec{
		Name:   "test-ctx-campaign",
		Seed:   101,
		Trials: trials,
		Points: []PointSpec{
			{ID: "a", X: 1, Trial: TrialSpec{Kind: "test-ctx", N: 10, D: 4}},
			{ID: "b", X: 2, Trial: TrialSpec{Kind: "test-ctx", N: 10, D: 9}},
		},
	}
}

// TestContextCancelDropsInFlightTrialsAndResumes is the campaign half of
// the cancellation contract: a run canceled while trials are blocked
// mid-flight records NO samples for those trials (a cancellation-timing-
// dependent value must never reach a checkpoint), and resuming the
// checkpoint converges to the byte-identical report an uninterrupted run
// produces.
func TestContextCancelDropsInFlightTrialsAndResumes(t *testing.T) {
	dir := t.TempDir()
	spec := ctxSpec(8)

	ctxGate.started = make(chan struct{}, 64)
	ctxGate.release = make(chan struct{})
	defer func() { ctxGate.started, ctxGate.release = nil, nil }()

	ctx, cancel := context.WithCancel(context.Background())
	type runOut struct {
		report *Report
		err    error
	}
	outCh := make(chan runOut, 1)
	go func() {
		rep, err := Run(spec, Options{Workers: 2, Dir: dir, Context: ctx})
		outCh <- runOut{rep, err}
	}()

	// Both workers are now blocked inside RunTrialContext; cancel lands
	// mid-trial.
	for i := 0; i < 2; i++ {
		select {
		case <-ctxGate.started:
		case <-time.After(10 * time.Second):
			t.Fatal("workers never reached the trial gate")
		}
	}
	cancel()
	var out runOut
	select {
	case out = <-outCh:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled campaign did not return")
	}
	if out.err != nil {
		t.Fatalf("canceled campaign returned error %v", out.err)
	}
	if out.report.Complete {
		t.Fatal("canceled campaign reports Complete")
	}
	for _, p := range out.report.Points {
		if p.Failures > 0 {
			t.Fatalf("point %s records %d failed samples; canceled trials must be dropped, not failed", p.ID, p.Failures)
		}
	}

	// Resume without a context (gate unused) and compare against a fresh
	// uninterrupted run: byte-identical reports.
	resumed, err := Run(spec, Options{Workers: 2, Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(spec, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	rj, err := resumed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	fj, err := fresh.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rj, fj) {
		t.Fatalf("resumed-after-cancel report differs from uninterrupted run:\n%s\nvs\n%s", rj, fj)
	}
}

// TestContextUncanceledMatchesPlainRun: running under a live (never
// canceled) context dispatches through RunTrialContext yet produces the
// byte-identical report of a context-free run — the ContextRunner
// contract that an uncanceled context-aware trial equals RunTrial.
func TestContextUncanceledMatchesPlainRun(t *testing.T) {
	spec := ctxSpec(16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	withCtx, err := Run(spec, Options{Workers: 2, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(spec, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := withCtx.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("context-aware run differs from plain run:\n%s\nvs\n%s", a, b)
	}
}
