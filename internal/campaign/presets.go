package campaign

import (
	"fmt"
	"math"
	"sort"
)

// Presets port the repository's standing sweeps onto the campaign
// runner: the E1 centralized-vs-n and E4 distributed-vs-n scaling
// experiments, the E23-style collision-rate sweep, the EXPERIMENTS.md
// full-scale spot check, and the tiny CI smoke grid. A preset is just a
// Spec builder — `campaign spec -preset e1 | campaign run -spec -` is the
// checkpointed, resumable, adaptively-stopping equivalent of
// `experiments E1`.

// presetFunc builds a preset spec at a scale ("small", "medium", "full").
type presetFunc func(scale string, seed uint64, trials int) (*Spec, error)

var presets = map[string]presetFunc{
	"e1":             presetE1,
	"e4":             presetE4,
	"collision-rate": presetCollisionRate,
	"scale":          presetScale,
	"smoke":          presetSmoke,
	"lane-smoke":     presetLaneSmoke,
}

// Presets returns the available preset names, sorted.
func Presets() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Preset builds a named preset spec. trials overrides the preset's
// per-point budget when positive.
func Preset(name, scale string, seed uint64, trials int) (*Spec, error) {
	fn, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown preset %q (have %v)", name, Presets())
	}
	spec, err := fn(scale, seed, trials)
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// presetNLadder mirrors the exp package's n ladders.
func presetNLadder(scale string) ([]int, error) {
	switch scale {
	case "small":
		return []int{500, 1000, 2000}, nil
	case "medium":
		return []int{1000, 2000, 4000, 8000, 16000, 32000}, nil
	case "full":
		return []int{1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000}, nil
	default:
		return nil, fmt.Errorf("campaign: unknown scale %q (small, medium or full)", scale)
	}
}

func presetTrials(scale string, override, small, medium, full int) int {
	if override > 0 {
		return override
	}
	switch scale {
	case "medium":
		return medium
	case "full":
		return full
	default:
		return small
	}
}

// ladderPoints builds one point per ladder size with d = 2 ln n.
func ladderPoints(ns []int, kind string) []PointSpec {
	points := make([]PointSpec, len(ns))
	for i, n := range ns {
		points[i] = PointSpec{
			ID: fmt.Sprintf("n%d", n),
			X:  float64(n),
			Trial: TrialSpec{
				Kind: kind,
				N:    n,
				D:    2 * math.Log(float64(n)),
			},
		}
	}
	return points
}

// presetE1 is experiment E1 as a campaign: centralized broadcast rounds
// vs n at d = 2 ln n (Theorem 5 scaling).
func presetE1(scale string, seed uint64, trials int) (*Spec, error) {
	ns, err := presetNLadder(scale)
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:       "e1-centralized-vs-n-" + scale,
		Seed:       seed,
		Trials:     presetTrials(scale, trials, 3, 5, 8),
		MaxRetries: 1,
		Points:     ladderPoints(ns, "centralized"),
	}, nil
}

// presetE4 is experiment E4 as a campaign: distributed protocol
// completion round vs n at d = 2 ln n (Theorem 7 scaling).
func presetE4(scale string, seed uint64, trials int) (*Spec, error) {
	ns, err := presetNLadder(scale)
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:       "e4-distributed-vs-n-" + scale,
		Seed:       seed,
		Trials:     presetTrials(scale, trials, 5, 7, 10),
		MaxRetries: 1,
		Points:     ladderPoints(ns, "distributed"),
	}, nil
}

// presetCollisionRate is the E23-style aggregate as a campaign: the
// fraction of listener-rounds lost to collisions during one distributed
// broadcast, vs n.
func presetCollisionRate(scale string, seed uint64, trials int) (*Spec, error) {
	ns, err := presetNLadder(scale)
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:       "collision-rate-vs-n-" + scale,
		Seed:       seed,
		Trials:     presetTrials(scale, trials, 5, 8, 10),
		MaxRetries: 1,
		Points:     ladderPoints(ns, "collision-rate"),
	}, nil
}

// presetScale is EXPERIMENTS.md's full-scale spot check as one campaign:
// the E1 and E4 full ladders side by side, with adaptive stopping at a
// 5% relative CI target so dense points stop as soon as their means are
// pinned down. The scale argument still selects the ladder so the
// campaign can be rehearsed small.
func presetScale(scale string, seed uint64, trials int) (*Spec, error) {
	ns, err := presetNLadder(scale)
	if err != nil {
		return nil, err
	}
	cent := ladderPoints(ns, "centralized")
	dist := ladderPoints(ns, "distributed")
	points := make([]PointSpec, 0, len(cent)+len(dist))
	for i := range cent {
		cent[i].ID = "centralized-" + cent[i].ID
		points = append(points, cent[i])
	}
	for i := range dist {
		dist[i].ID = "distributed-" + dist[i].ID
		points = append(points, dist[i])
	}
	return &Spec{
		Name:       "scale-spot-check-" + scale,
		Seed:       seed,
		Trials:     presetTrials(scale, trials, 6, 10, 12),
		MaxRetries: 1,
		Stop:       &StopRule{MinTrials: 4, HalfWidth: 0.05, Relative: true},
		Points:     points,
	}, nil
}

// presetSmoke is the CI kill-and-resume grid: two tiny points, seconds
// of work, no adaptive stopping (every trial runs, so the interrupted
// and uninterrupted runs must agree exactly).
func presetSmoke(scale string, seed uint64, trials int) (*Spec, error) {
	if trials <= 0 {
		trials = 6
	}
	_ = scale // the smoke grid is fixed-size by design
	return &Spec{
		Name:       "smoke",
		Seed:       seed,
		Trials:     trials,
		MaxRetries: 1,
		Shards:     2,
		Points: []PointSpec{
			{ID: "n300", X: 300, Trial: TrialSpec{Kind: "distributed", N: 300, D: 12}},
			{ID: "n600", X: 600, Trial: TrialSpec{Kind: "distributed", N: 600, D: 13}},
		},
	}, nil
}

// presetLaneSmoke is the lane-engine CI grid: fixed-graph points of every
// lane-capable kind, so trials dispatch in lane blocks under the default
// -lanes setting. Reports must be byte-identical for every -lanes value
// >= 2 (and 0); see the lane invariance tests.
func presetLaneSmoke(scale string, seed uint64, trials int) (*Spec, error) {
	if trials <= 0 {
		trials = 20
	}
	// The grid is fixed-size by design, but reject unknown scales like
	// every other preset does.
	if _, err := presetNLadder(scale); err != nil {
		return nil, err
	}
	return &Spec{
		Name:       "lane-smoke",
		Seed:       seed,
		Trials:     trials,
		MaxRetries: 1,
		Shards:     2,
		Points: []PointSpec{
			{ID: "dist-n400", X: 400, Trial: TrialSpec{Kind: "distributed", N: 400, D: 12, FixedGraph: true}},
			{ID: "decay-n300", X: 300, Trial: TrialSpec{Kind: "decay", N: 300, D: 12, FixedGraph: true}},
			{ID: "aloha-n300", X: 300, Trial: TrialSpec{Kind: "aloha", N: 300, D: 12, FixedGraph: true}},
		},
	}, nil
}
