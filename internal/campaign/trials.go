package campaign

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/radio"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Runner executes the trials of one grid point. A runner is created once
// per (worker, point) pair and may cache expensive state — graphs,
// engines, scratch buffers — between trials, the sweep.RunWith reuse
// contract: a trial must reset any result-relevant state at its start and
// draw randomness exclusively from the per-trial rng, so its result is a
// pure function of the seed, independent of which worker ran it or what
// ran before.
type Runner interface {
	// RunTrial executes one trial: value is the scalar measurement, ok
	// reports trial-level success (e.g. the broadcast completed within
	// budget).
	RunTrial(rng *xrand.Rand) (value float64, ok bool)
}

// ContextRunner is an optional Runner capability: a runner implements it
// to support cooperative mid-trial cancellation. When a campaign runs
// with Options.Context, workers call RunTrialContext instead of RunTrial;
// a canceled trial must return an error wrapping radio.ErrCanceled, and
// the worker then discards it (recording a partially-run trial would make
// checkpoints depend on cancellation timing). An uncanceled
// RunTrialContext must return exactly RunTrial's (value, ok) for the same
// rng — the cancellation check consumes no randomness.
type ContextRunner interface {
	Runner
	RunTrialContext(ctx context.Context, rng *xrand.Rand) (value float64, ok bool, err error)
}

// BatchRunner is an optional Runner capability: a runner implements it to
// execute a block of trials in one call — the bit-parallel lane engine's
// entry point. seeds[i] is trial i's derived seed and values[i]/oks[i]
// receive its result; len(seeds) never exceeds lanes.Width. Each trial's
// result must be a pure function of its own seed (lane purity), so a
// batched campaign records byte-identical reports no matter how trials
// are blocked — but batch results come from the lane engine's randomness
// stream, which is distributionally identical to, not bit-identical to,
// the scalar RunTrial stream; checkpoints record which engine produced
// them (Manifest.Engine) and refuse to mix the two.
type BatchRunner interface {
	Runner
	RunTrialBatch(ctx context.Context, seeds []uint64, values []float64, oks []bool) error
}

// batchKinds are the built-in trial kinds the lane engine accelerates:
// randomized uniform-schedule protocols measured on a fixed graph.
var batchKinds = map[string]bool{"distributed": true, "decay": true, "aloha": true}

// batchablePoint reports whether a point's trials may be dispatched in
// lane blocks: the kind must be lane-capable and the graph fixed (a
// per-trial resampled graph leaves nothing for a block to share).
func batchablePoint(p PointSpec) bool {
	return p.Trial.FixedGraph && batchKinds[p.Trial.Kind]
}

// laneSensitive reports whether any point of the spec would be lane
// batched: only then does the engine choice (scalar vs lanes) change
// recorded sample values, so only then do checkpoints refuse an engine
// mismatch on resume or merge.
func (s *Spec) laneSensitive() bool {
	for _, p := range s.Points {
		if batchablePoint(p) {
			return true
		}
	}
	return false
}

// NewRunnerFunc builds a Runner for a point. pointSeed is the point's
// derived base seed; runners that pin state to the point (FixedGraph)
// must derive it from pointSeed with ids outside 1..Trials (the trial
// ids), conventionally id 0, so every worker builds identical state.
type NewRunnerFunc func(p PointSpec, pointSeed uint64) (Runner, error)

var (
	kindMu sync.RWMutex
	kinds  = map[string]NewRunnerFunc{}
)

// RegisterKind registers a trial kind. Registering a duplicate name
// panics. Extensions and tests may register their own kinds before
// building specs that reference them.
func RegisterKind(name string, fn NewRunnerFunc) {
	kindMu.Lock()
	defer kindMu.Unlock()
	if _, dup := kinds[name]; dup {
		panic("campaign: duplicate trial kind " + name)
	}
	kinds[name] = fn
}

// KindRegistered reports whether a trial kind is registered.
func KindRegistered(name string) bool {
	kindMu.RLock()
	defer kindMu.RUnlock()
	_, ok := kinds[name]
	return ok
}

// Kinds returns the registered kind names, sorted.
func Kinds() []string {
	kindMu.RLock()
	defer kindMu.RUnlock()
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// newRunner builds the Runner for a point.
func newRunner(p PointSpec, pointSeed uint64) (Runner, error) {
	kindMu.RLock()
	fn, ok := kinds[p.Trial.Kind]
	kindMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("campaign: unknown trial kind %q", p.Trial.Kind)
	}
	return fn(p, pointSeed)
}

func init() {
	RegisterKind("distributed", newProtocolKind(func(t TrialSpec) radio.Protocol {
		return core.NewDistributedProtocol(t.N, t.D)
	}))
	RegisterKind("decay", newProtocolKind(func(t TrialSpec) radio.Protocol {
		return protocols.NewDecay(t.N)
	}))
	RegisterKind("aloha", newProtocolKind(func(t TrialSpec) radio.Protocol {
		return protocols.NewAloha(t.D)
	}))
	RegisterKind("centralized", newCentralizedRunner)
	RegisterKind("collision-rate", newCollisionRateRunner)
}

// maxRounds returns the effective round budget of a trial spec.
func (t TrialSpec) maxRounds() int {
	if t.MaxRounds > 0 {
		return t.MaxRounds
	}
	return core.MaxRoundsFor(t.N)
}

// graphSeedID is the Derive id reserved for the FixedGraph sample; trial
// seeds use ids 1..Trials (sweep.Seeds), so 0 is free.
const graphSeedID = 0

// sampleConnected draws a connected G(n, d/n), panicking after 100 failed
// attempts — for the degree regimes campaigns run this indicates a
// misconfigured point, and the panic is captured by the pool's fault
// tolerance and recorded as a failed sample.
func sampleConnected(n int, d float64, rng *xrand.Rand) *graph.Graph {
	g, _, ok := gen.ConnectedGnp(n, gen.PForDegree(n, d), rng, 100)
	if !ok {
		panic(fmt.Sprintf("campaign: no connected G(n=%d, d=%.2f) in 100 draws; degree too low", n, d))
	}
	return g
}

// protocolRunner measures the completion round of a randomized protocol:
// value is the round the broadcast completed (maxRounds+1 if it did not),
// ok reports completion. With FixedGraph the graph is sampled once per
// worker from the point seed and pinned in an exec.Session, which owns
// the engines (scalar engine reset per trial, lane engine built lazily
// on the first batched block); otherwise each trial samples a fresh
// connected G(n,p) from its own rng and dispatches one-shot.
type protocolRunner struct {
	spec      TrialSpec
	proto     radio.Protocol
	maxRounds int
	sess      *exec.Session // non-nil iff FixedGraph
	batchOut  []int
}

func newProtocolKind(proto func(TrialSpec) radio.Protocol) NewRunnerFunc {
	return func(p PointSpec, pointSeed uint64) (Runner, error) {
		r := &protocolRunner{spec: p.Trial, proto: proto(p.Trial), maxRounds: p.Trial.maxRounds()}
		if p.Trial.FixedGraph {
			g := sampleConnected(p.Trial.N, p.Trial.D, xrand.New(pointSeed).Derive(graphSeedID))
			r.sess = exec.Open(&exec.Request{Graph: g, Sources: []int32{0}, Protocol: r.proto, MaxRounds: r.maxRounds})
		}
		return r, nil
	}
}

// oneShot is the request for a trial on a freshly sampled graph.
func (r *protocolRunner) oneShot(g *graph.Graph) *exec.Request {
	return &exec.Request{Graph: g, Sources: []int32{0}, Protocol: r.proto, MaxRounds: r.maxRounds}
}

func (r *protocolRunner) RunTrial(rng *xrand.Rand) (float64, bool) {
	var rounds int
	if r.sess != nil {
		rounds, _ = r.sess.Time(context.Background(), rng)
	} else {
		g := sampleConnected(r.spec.N, r.spec.D, rng)
		rounds, _ = exec.Time(context.Background(), r.oneShot(g), rng)
	}
	return float64(rounds), rounds <= r.maxRounds
}

// RunTrialContext implements ContextRunner: the engine's round loop checks
// ctx between rounds, so a campaign shutdown cancels the trial mid-run
// instead of waiting out the round budget. Uncanceled, it is bit-identical
// to RunTrial (the check consumes no randomness).
func (r *protocolRunner) RunTrialContext(ctx context.Context, rng *xrand.Rand) (float64, bool, error) {
	var rounds int
	var err error
	if r.sess != nil {
		rounds, err = r.sess.Time(ctx, rng)
	} else {
		if err := ctx.Err(); err != nil {
			return 0, false, radio.Canceled(ctx)
		}
		g := sampleConnected(r.spec.N, r.spec.D, rng)
		rounds, err = exec.Time(ctx, r.oneShot(g), rng)
	}
	if err != nil {
		return 0, false, err
	}
	return float64(rounds), rounds <= r.maxRounds, nil
}

// RunTrialBatch implements BatchRunner: the session advances every
// trial of the block through the point's fixed graph simultaneously on
// the lane engine, or falls back to per-seed scalar trials (identical
// to single dispatch) when the protocol declared no uniform schedule.
// The non-fixed-graph guard stays here — the work list only batches
// batchablePoint points, so it is a guard, not a steady state.
func (r *protocolRunner) RunTrialBatch(ctx context.Context, seeds []uint64, values []float64, oks []bool) error {
	if r.sess == nil {
		for i, seed := range seeds {
			v, ok, err := r.RunTrialContext(ctx, xrand.New(seed))
			if err != nil {
				return err
			}
			values[i], oks[i] = v, ok
		}
		return nil
	}
	if r.batchOut == nil {
		r.batchOut = make([]int, exec.Width)
	}
	out := r.batchOut[:len(seeds)]
	if err := r.sess.RunSeeds(ctx, seeds, out); err != nil {
		return err
	}
	for i, rounds := range out {
		values[i] = float64(rounds)
		oks[i] = rounds <= r.maxRounds
	}
	return nil
}

// centralizedRunner measures the replayed length of the Theorem 5
// centralized schedule: value is the executed rounds, ok reports
// completion. Each trial samples a fresh graph and builds a fresh
// schedule seeded from the trial rng; with FixedGraph the graph is pinned
// to the point seed and only the schedule seed varies per trial (a
// fixed-graph fixed-schedule replay would be the same deterministic
// number every trial).
type centralizedRunner struct {
	spec  TrialSpec
	fixed *graph.Graph // non-nil iff FixedGraph
}

func newCentralizedRunner(p PointSpec, pointSeed uint64) (Runner, error) {
	r := &centralizedRunner{spec: p.Trial}
	if p.Trial.FixedGraph {
		r.fixed = sampleConnected(p.Trial.N, p.Trial.D, xrand.New(pointSeed).Derive(graphSeedID))
	}
	return r, nil
}

func (r *centralizedRunner) RunTrial(rng *xrand.Rand) (float64, bool) {
	g := r.fixed
	if g == nil {
		g = sampleConnected(r.spec.N, r.spec.D, rng)
	}
	sched, _, err := core.BuildCentralizedSchedule(g, 0, r.spec.D, core.DefaultCentralizedConfig(rng.Uint64()))
	if err != nil {
		panic(fmt.Sprintf("campaign: building centralized schedule: %v", err))
	}
	// Schedule replay is deterministic (no rng): the schedule backend.
	res, err := exec.Run(context.Background(), &exec.Request{Graph: g, Sources: []int32{0}, Schedule: sched}, nil)
	if err != nil {
		panic(fmt.Sprintf("campaign: replaying centralized schedule: %v", err))
	}
	return float64(res.Rounds), res.Completed
}

// collisionRateRunner measures the fraction of listener-rounds lost to
// collisions during one distributed broadcast (the E23-style aggregate):
// value = collisions / (successes + collisions + silent), ok reports
// completion. A per-runner trace.Counters observer is reset each trial.
type collisionRateRunner struct {
	spec      TrialSpec
	maxRounds int
	proto     radio.Protocol // hoisted: one construction per runner, not per trial
	counters  trace.Counters
	sess      *exec.Session // non-nil iff FixedGraph; engine observed by counters
}

func newCollisionRateRunner(p PointSpec, pointSeed uint64) (Runner, error) {
	r := &collisionRateRunner{
		spec:      p.Trial,
		maxRounds: p.Trial.maxRounds(),
		proto:     core.NewDistributedProtocol(p.Trial.N, p.Trial.D),
	}
	if p.Trial.FixedGraph {
		g := sampleConnected(p.Trial.N, p.Trial.D, xrand.New(pointSeed).Derive(graphSeedID))
		r.sess = exec.Open(&exec.Request{
			Graph: g, Sources: []int32{0}, Protocol: r.proto,
			MaxRounds: r.maxRounds, Observer: &r.counters,
		})
	}
	return r, nil
}

func (r *collisionRateRunner) RunTrial(rng *xrand.Rand) (float64, bool) {
	r.counters = trace.Counters{}
	// Session.Time drives the identical round stream RunProtocolOn did
	// but materialises no Result (whose InformedAt slice was an n-sized
	// allocation per trial); the counters observer carries the aggregate.
	var rounds int
	if r.sess != nil {
		rounds, _ = r.sess.Time(context.Background(), rng)
	} else {
		g := sampleConnected(r.spec.N, r.spec.D, rng)
		rounds, _ = exec.Time(context.Background(), &exec.Request{
			Graph: g, Sources: []int32{0}, Protocol: r.proto,
			MaxRounds: r.maxRounds, Observer: &r.counters,
		}, rng)
	}
	completed := rounds <= r.maxRounds
	listens := r.counters.Successes + r.counters.Collisions + r.counters.Silent
	if listens == 0 {
		return 0, completed
	}
	return float64(r.counters.Collisions) / float64(listens), completed
}
