package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/radio"
	"repro/internal/sweep"
	"repro/internal/xrand"
)

// Options configures one Run invocation. The zero value runs in-memory
// (no checkpoint) on GOMAXPROCS workers over the whole grid.
type Options struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS). The final report
	// does not depend on it.
	Workers int
	// Dir is the checkpoint directory; "" disables checkpointing.
	Dir string
	// Resume loads the samples already recorded in Dir and runs only the
	// missing trials. Requires Dir.
	Resume bool
	// HaltAfter stops dispatching once that many new samples have been
	// dispatched this run (0 = run to completion) — the deterministic
	// "kill" half of the kill-and-resume smoke test. In-flight trials
	// still finish and are recorded, so slightly more than HaltAfter
	// samples may land; with lane blocks the overshoot rounds up to the
	// block boundary. The checkpoint is flushed before Run returns.
	HaltAfter int
	// FlushEvery is the checkpoint flush cadence in samples (0 = 64).
	FlushEvery int
	// Progress, when non-nil, receives human-readable progress lines
	// (point completions, stops, the final summary).
	Progress io.Writer
	// Interrupt, when non-nil, halts the run gracefully when it becomes
	// readable (closed): in-flight trials finish, the checkpoint is
	// flushed, and Run returns the partial report. Wire ^C to it.
	Interrupt <-chan struct{}
	// Context, when non-nil, cancels the run cooperatively: dispatching
	// stops (like Interrupt), and in-flight trials whose runners implement
	// ContextRunner are canceled mid-run via the context instead of being
	// run to completion. Canceled trials are DISCARDED, not recorded —
	// a cancellation-timing-dependent sample would break the byte-identical
	// resume guarantee — so a resumed run simply re-runs them. The
	// checkpoint is still flushed and the partial report returned.
	Context context.Context
	// PointLo/PointHi restrict this run to grid points [PointLo, PointHi)
	// for sharding a campaign across machines; (0, 0) means the whole
	// grid. Shard checkpoints recombine with Merge.
	PointLo, PointHi int
	// Sink, when non-nil, receives every sample completed by THIS run
	// (not samples loaded from a resumed checkpoint), called from the
	// collector goroutine in completion order — scheduling-dependent, so
	// callers needing determinism must sort by (Point, Trial) themselves.
	// This is how a cluster worker extracts a shard's samples without a
	// checkpoint directory.
	Sink func(*Sample)
	// Lanes picks the trial engine for lane-capable points (FixedGraph
	// distributed/decay/aloha): 0 means auto (exec.Width-wide blocks on
	// the bit-parallel engine), >= 2 dispatches blocks of that many
	// trials, and 1 (or negative) forces the scalar per-trial engine.
	// Lane purity makes reports byte-identical across every setting >= 2
	// and 0; scalar runs draw a different (distributionally identical)
	// stream, so checkpoints record the engine and refuse to resume a
	// lane-sensitive spec under the other one.
	Lanes int
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) flushEvery() int {
	if o.FlushEvery > 0 {
		return o.FlushEvery
	}
	return 64
}

func (o *Options) lanes() int {
	switch {
	case o.Lanes == 0 || o.Lanes > exec.Width:
		return exec.Width
	case o.Lanes < 1:
		return 1
	default:
		return o.Lanes
	}
}

// engineTag returns the Manifest.Engine value of a run: "lanes" when the
// bit-parallel lane engine will produce samples for at least one point of
// the spec, "" when everything runs scalar. Lane-insensitive specs always
// tag "" — the engine choice cannot change their values.
func engineTag(spec *Spec, lanesN int) string {
	if lanesN > 1 && spec.laneSensitive() {
		return EngineLanes
	}
	return EngineScalar
}

// workItem is one dispatch: a block of trials of one point. Scalar
// dispatches carry a single trial; lane-capable points carry up to
// Options.Lanes consecutive missing trials with their seeds.
type workItem struct {
	point  int
	trials []int
	seeds  []uint64
	// batch routes the item through the runner's BatchRunner capability.
	// It is set for every block of a lane-dispatched point — including a
	// trailing block of one trial — so a trial's engine (and therefore its
	// randomness stream) never depends on where the block boundaries fall.
	batch bool
}

// Run executes a campaign. The returned report is byte-identical (via
// Report.JSON or Report.Text) for a given spec regardless of worker
// count, and an interrupted run resumed from its checkpoint converges to
// the identical report an uninterrupted run produces; see the invariance
// tests.
func Run(spec *Spec, opt Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	lo, hi := opt.PointLo, opt.PointHi
	if lo == 0 && hi == 0 {
		hi = len(spec.Points)
	}
	if lo < 0 || hi > len(spec.Points) || lo >= hi {
		return nil, fmt.Errorf("campaign: point range [%d, %d) outside grid of %d points", lo, hi, len(spec.Points))
	}
	if opt.Resume && opt.Dir == "" {
		return nil, fmt.Errorf("campaign: resume requires a checkpoint directory")
	}

	// Per-trial seeds, derived once, identically on every run of this
	// spec: point i's trials use sweep.Seeds over the point's derived
	// base seed.
	parent := xrand.New(spec.Seed)
	trialSeeds := make([][]uint64, len(spec.Points))
	for p := range spec.Points {
		trialSeeds[p] = sweep.Seeds(spec.Trials, parent.DeriveSeed(uint64(p)+1))
	}
	pointSeeds := make([]uint64, len(spec.Points))
	for p := range spec.Points {
		pointSeeds[p] = parent.DeriveSeed(uint64(p) + 1)
	}

	engine := engineTag(spec, opt.lanes())
	samples := make(map[key]*Sample)
	var ck *Checkpoint
	var err error
	if opt.Dir != "" {
		if opt.Resume {
			ck, samples, err = OpenCheckpoint(opt.Dir, spec, engine)
		} else {
			ck, err = CreateCheckpoint(opt.Dir, spec, engine)
		}
		if err != nil {
			return nil, err
		}
		defer ck.Close()
	}

	// Seed the aggregators with everything already recorded, in order;
	// adaptive stops fire now exactly where they fired before the
	// interruption.
	aggs := make([]*pointAgg, len(spec.Points))
	stopped := make([]atomic.Bool, len(spec.Points))
	for p := range spec.Points {
		aggs[p] = newPointAgg(spec)
		for t := 0; t < spec.Trials; t++ {
			if s, ok := samples[key{p, t}]; ok {
				aggs[p].feed(s)
			}
		}
		if aggs[p].stopped {
			stopped[p].Store(true)
		}
	}

	// The work list interleaves blocks across points (block 0 of every
	// point, then block 1, ...) so adaptive stopping sees every point's
	// early trials as soon as possible. Scalar points emit one-trial
	// blocks, reproducing the classic trial-major interleave; lane-capable
	// points chunk their missing trials into Options.Lanes-sized blocks.
	// Blocking only changes dispatch granularity: every sample remains a
	// pure function of its own seed, and the aggregator consumes samples
	// in trial order, so the report is independent of the block size.
	lanesN := opt.lanes()
	perPoint := make([][]workItem, 0, hi-lo)
	maxBlocks := 0
	for p := lo; p < hi; p++ {
		var missing []int
		for t := 0; t < spec.Trials; t++ {
			if _, done := samples[key{p, t}]; !done {
				missing = append(missing, t)
			}
		}
		size := 1
		batch := lanesN > 1 && batchablePoint(spec.Points[p])
		if batch {
			size = lanesN
		}
		var blocks []workItem
		for len(missing) > 0 {
			k := min(size, len(missing))
			it := workItem{point: p, trials: missing[:k:k], batch: batch}
			for _, t := range it.trials {
				it.seeds = append(it.seeds, trialSeeds[p][t])
			}
			blocks = append(blocks, it)
			missing = missing[k:]
		}
		perPoint = append(perPoint, blocks)
		maxBlocks = max(maxBlocks, len(blocks))
	}
	var items []workItem
	for b := 0; b < maxBlocks; b++ {
		for _, blocks := range perPoint {
			if b < len(blocks) {
				items = append(items, blocks[b])
			}
		}
	}

	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	halt := make(chan struct{})
	var haltOnce sync.Once
	haltNow := func() { haltOnce.Do(func() { close(halt) }) }
	if opt.Interrupt != nil || ctx.Done() != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-opt.Interrupt:
				haltNow()
			case <-ctx.Done():
				haltNow()
			case <-done:
			}
		}()
	}

	workCh := make(chan workItem)
	resCh := make(chan *Sample, opt.workers())
	go func() { // dispatcher
		defer close(workCh)
		dispatched := 0
		for _, it := range items {
			if stopped[it.point].Load() {
				continue
			}
			select {
			case <-halt:
				return
			case workCh <- it:
			}
			dispatched += len(it.trials)
			if opt.HaltAfter > 0 && dispatched >= opt.HaltAfter {
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorker(ctx, spec, pointSeeds, workCh, resCh)
		}()
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Collector: the only goroutine touching samples, aggs and the
	// checkpoint once the pool is running.
	newSamples := 0
	sinceFlush := 0
	var flushErr error
	for s := range resCh {
		samples[key{s.Point, s.Trial}] = s
		if ck != nil {
			ck.Append(s)
		}
		if opt.Sink != nil {
			opt.Sink(s)
		}
		newSamples++
		sinceFlush++
		agg := aggs[s.Point]
		wasDone := agg.done()
		agg.feed(s)
		if agg.stopped {
			stopped[s.Point].Store(true)
		}
		if !wasDone && agg.done() && opt.Progress != nil {
			p := &spec.Points[s.Point]
			how := "budget exhausted"
			if agg.stopped {
				how = fmt.Sprintf("CI target hit, %d trials saved", agg.budget-agg.consumed)
			}
			mean := agg.welford.Mean()
			fmt.Fprintf(opt.Progress, "campaign: point %s done: %d/%d trials, mean %.4g (%s)\n",
				p.ID, agg.consumed, agg.budget, mean, how)
		}
		if ck != nil && sinceFlush >= opt.flushEvery() && flushErr == nil {
			if flushErr = ck.Flush(false); flushErr != nil {
				haltNow() // stop dispatching, drain the pool, then fail
			}
			sinceFlush = 0
		}
		if opt.HaltAfter > 0 && newSamples >= opt.HaltAfter {
			haltNow()
		}
	}
	if flushErr != nil {
		return nil, flushErr
	}

	report := BuildReport(spec, samples)
	if ck != nil {
		report.SkippedLines = ck.SkippedLines()
	}
	if ck != nil {
		if err := ck.Flush(report.Complete); err != nil {
			return nil, err
		}
	}
	if opt.Progress != nil {
		state := "complete"
		if !report.Complete {
			state = "incomplete (halted or sliced; resume or merge to finish)"
		}
		fmt.Fprintf(opt.Progress, "campaign: %s: %d samples this run, %d total, %s\n",
			spec.Name, newSamples, len(samples), state)
	}
	return report, nil
}

// runWorker executes work items until the channel closes. Each worker
// caches one Runner per point (the sweep.RunWith engine-reuse pattern)
// and survives panicking trials: a panic is captured, the cached runner —
// whose state the panic may have corrupted — is discarded, the trial is
// retried up to spec.MaxRetries times, and a still-failing trial is
// recorded as a failed sample rather than killing the pool.
//
// A trial canceled via ctx (see Options.Context and ContextRunner) is
// dropped entirely: no sample is emitted, no retry attempted — its value
// would depend on when cancellation landed, which must never reach a
// checkpoint.
func runWorker(ctx context.Context, spec *Spec, pointSeeds []uint64, workCh <-chan workItem, resCh chan<- *Sample) {
	runners := make(map[int]Runner)
	for it := range workCh {
		var (
			values   []float64
			oks      []bool
			retries  int
			failErr  error
			canceled bool
		)
		for attempt := 0; ; attempt++ {
			var err error
			values, oks, err = attemptItem(ctx, spec, pointSeeds, runners, it)
			if errors.Is(err, radio.ErrCanceled) {
				canceled = true
				break
			}
			if err == nil {
				for _, v := range values {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						err = fmt.Errorf("trial returned non-finite value %v", v)
						break
					}
				}
			}
			if err == nil {
				retries = attempt
				break
			}
			// The panic may have left the cached runner (engine, scratch
			// buffers) in an inconsistent state; rebuild it. Runners are
			// deterministic functions of (point, pointSeed), so a rebuilt
			// runner behaves identically to a fresh one. A block retries
			// (and, once out of retries, fails) as a unit: its trials ran
			// as one engine call, so no per-trial result can be trusted.
			delete(runners, it.point)
			if attempt >= spec.MaxRetries {
				failErr = err
				retries = attempt
				break
			}
		}
		if canceled {
			// Canceled blocks are dropped whole: recording any of their
			// trials would make checkpoints depend on cancellation timing.
			continue
		}
		for i, t := range it.trials {
			s := &Sample{
				Point:   it.point,
				PointID: spec.Points[it.point].ID,
				Trial:   t,
				Seed:    it.seeds[i],
				Retries: retries,
			}
			if failErr != nil {
				s.Failed = true
				s.Err = failErr.Error()
			} else {
				s.Value, s.OK = values[i], oks[i]
			}
			resCh <- s
		}
	}
}

// attemptItem runs one attempt of one work item (a single trial or a
// lane block), converting panics (in runner construction or the trials
// themselves) into errors. Multi-trial items go through the runner's
// BatchRunner capability when it has one and fall back to per-seed
// single trials otherwise (seed purity makes the two identical for
// scalar runners). Runners that implement ContextRunner get the worker's
// context so a campaign shutdown cancels them mid-run; a resulting
// cancellation error is returned as-is (wrapped in radio.ErrCanceled)
// for the caller to drop.
func attemptItem(ctx context.Context, spec *Spec, pointSeeds []uint64, runners map[int]Runner, it workItem) (values []float64, oks []bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	runner, cached := runners[it.point]
	if !cached {
		runner, err = newRunner(spec.Points[it.point], pointSeeds[it.point])
		if err != nil {
			return nil, nil, err
		}
		runners[it.point] = runner
	}
	values = make([]float64, len(it.seeds))
	oks = make([]bool, len(it.seeds))
	if br, isBatch := runner.(BatchRunner); isBatch && it.batch {
		if err := br.RunTrialBatch(ctx, it.seeds, values, oks); err != nil {
			return nil, nil, err
		}
		return values, oks, nil
	}
	cr, isCtx := runner.(ContextRunner)
	for i, seed := range it.seeds {
		if isCtx && ctx.Done() != nil {
			v, ok, err := cr.RunTrialContext(ctx, xrand.New(seed))
			if err != nil {
				return nil, nil, err
			}
			values[i], oks[i] = v, ok
		} else {
			values[i], oks[i] = runner.RunTrial(xrand.New(seed))
		}
	}
	return values, oks, nil
}
