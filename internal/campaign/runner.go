package campaign

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/radio"
	"repro/internal/sweep"
	"repro/internal/xrand"
)

// Options configures one Run invocation. The zero value runs in-memory
// (no checkpoint) on GOMAXPROCS workers over the whole grid.
type Options struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS). The final report
	// does not depend on it.
	Workers int
	// Dir is the checkpoint directory; "" disables checkpointing.
	Dir string
	// Resume loads the samples already recorded in Dir and runs only the
	// missing trials. Requires Dir.
	Resume bool
	// HaltAfter stops dispatching once that many new samples have been
	// recorded this run (0 = run to completion) — the deterministic
	// "kill" half of the kill-and-resume smoke test. The checkpoint is
	// flushed before Run returns.
	HaltAfter int
	// FlushEvery is the checkpoint flush cadence in samples (0 = 64).
	FlushEvery int
	// Progress, when non-nil, receives human-readable progress lines
	// (point completions, stops, the final summary).
	Progress io.Writer
	// Interrupt, when non-nil, halts the run gracefully when it becomes
	// readable (closed): in-flight trials finish, the checkpoint is
	// flushed, and Run returns the partial report. Wire ^C to it.
	Interrupt <-chan struct{}
	// Context, when non-nil, cancels the run cooperatively: dispatching
	// stops (like Interrupt), and in-flight trials whose runners implement
	// ContextRunner are canceled mid-run via the context instead of being
	// run to completion. Canceled trials are DISCARDED, not recorded —
	// a cancellation-timing-dependent sample would break the byte-identical
	// resume guarantee — so a resumed run simply re-runs them. The
	// checkpoint is still flushed and the partial report returned.
	Context context.Context
	// PointLo/PointHi restrict this run to grid points [PointLo, PointHi)
	// for sharding a campaign across machines; (0, 0) means the whole
	// grid. Shard checkpoints recombine with Merge.
	PointLo, PointHi int
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) flushEvery() int {
	if o.FlushEvery > 0 {
		return o.FlushEvery
	}
	return 64
}

// workItem is one (point, trial) dispatch.
type workItem struct {
	point, trial int
	seed         uint64
}

// Run executes a campaign. The returned report is byte-identical (via
// Report.JSON or Report.Text) for a given spec regardless of worker
// count, and an interrupted run resumed from its checkpoint converges to
// the identical report an uninterrupted run produces; see the invariance
// tests.
func Run(spec *Spec, opt Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	lo, hi := opt.PointLo, opt.PointHi
	if lo == 0 && hi == 0 {
		hi = len(spec.Points)
	}
	if lo < 0 || hi > len(spec.Points) || lo >= hi {
		return nil, fmt.Errorf("campaign: point range [%d, %d) outside grid of %d points", lo, hi, len(spec.Points))
	}
	if opt.Resume && opt.Dir == "" {
		return nil, fmt.Errorf("campaign: resume requires a checkpoint directory")
	}

	// Per-trial seeds, derived once, identically on every run of this
	// spec: point i's trials use sweep.Seeds over the point's derived
	// base seed.
	parent := xrand.New(spec.Seed)
	trialSeeds := make([][]uint64, len(spec.Points))
	for p := range spec.Points {
		trialSeeds[p] = sweep.Seeds(spec.Trials, parent.DeriveSeed(uint64(p)+1))
	}
	pointSeeds := make([]uint64, len(spec.Points))
	for p := range spec.Points {
		pointSeeds[p] = parent.DeriveSeed(uint64(p) + 1)
	}

	samples := make(map[key]*Sample)
	var ck *Checkpoint
	var err error
	if opt.Dir != "" {
		if opt.Resume {
			ck, samples, err = OpenCheckpoint(opt.Dir, spec)
		} else {
			ck, err = CreateCheckpoint(opt.Dir, spec)
		}
		if err != nil {
			return nil, err
		}
		defer ck.Close()
	}

	// Seed the aggregators with everything already recorded, in order;
	// adaptive stops fire now exactly where they fired before the
	// interruption.
	aggs := make([]*pointAgg, len(spec.Points))
	stopped := make([]atomic.Bool, len(spec.Points))
	for p := range spec.Points {
		aggs[p] = newPointAgg(spec)
		for t := 0; t < spec.Trials; t++ {
			if s, ok := samples[key{p, t}]; ok {
				aggs[p].feed(s)
			}
		}
		if aggs[p].stopped {
			stopped[p].Store(true)
		}
	}

	// The work list interleaves trials across points (trial 0 of every
	// point, then trial 1, ...) so adaptive stopping sees every point's
	// early trials as soon as possible.
	var items []workItem
	for t := 0; t < spec.Trials; t++ {
		for p := lo; p < hi; p++ {
			if _, done := samples[key{p, t}]; done {
				continue
			}
			items = append(items, workItem{point: p, trial: t, seed: trialSeeds[p][t]})
		}
	}

	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	halt := make(chan struct{})
	var haltOnce sync.Once
	haltNow := func() { haltOnce.Do(func() { close(halt) }) }
	if opt.Interrupt != nil || ctx.Done() != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-opt.Interrupt:
				haltNow()
			case <-ctx.Done():
				haltNow()
			case <-done:
			}
		}()
	}

	workCh := make(chan workItem)
	resCh := make(chan *Sample, opt.workers())
	go func() { // dispatcher
		defer close(workCh)
		for _, it := range items {
			if stopped[it.point].Load() {
				continue
			}
			select {
			case <-halt:
				return
			case workCh <- it:
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorker(ctx, spec, pointSeeds, workCh, resCh)
		}()
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Collector: the only goroutine touching samples, aggs and the
	// checkpoint once the pool is running.
	newSamples := 0
	sinceFlush := 0
	var flushErr error
	for s := range resCh {
		samples[key{s.Point, s.Trial}] = s
		if ck != nil {
			ck.Append(s)
		}
		newSamples++
		sinceFlush++
		agg := aggs[s.Point]
		wasDone := agg.done()
		agg.feed(s)
		if agg.stopped {
			stopped[s.Point].Store(true)
		}
		if !wasDone && agg.done() && opt.Progress != nil {
			p := &spec.Points[s.Point]
			how := "budget exhausted"
			if agg.stopped {
				how = fmt.Sprintf("CI target hit, %d trials saved", agg.budget-agg.consumed)
			}
			mean := agg.welford.Mean()
			fmt.Fprintf(opt.Progress, "campaign: point %s done: %d/%d trials, mean %.4g (%s)\n",
				p.ID, agg.consumed, agg.budget, mean, how)
		}
		if ck != nil && sinceFlush >= opt.flushEvery() && flushErr == nil {
			if flushErr = ck.Flush(false); flushErr != nil {
				haltNow() // stop dispatching, drain the pool, then fail
			}
			sinceFlush = 0
		}
		if opt.HaltAfter > 0 && newSamples >= opt.HaltAfter {
			haltNow()
		}
	}
	if flushErr != nil {
		return nil, flushErr
	}

	report := BuildReport(spec, samples)
	if ck != nil {
		report.SkippedLines = ck.SkippedLines()
	}
	if ck != nil {
		if err := ck.Flush(report.Complete); err != nil {
			return nil, err
		}
	}
	if opt.Progress != nil {
		state := "complete"
		if !report.Complete {
			state = "incomplete (halted or sliced; resume or merge to finish)"
		}
		fmt.Fprintf(opt.Progress, "campaign: %s: %d samples this run, %d total, %s\n",
			spec.Name, newSamples, len(samples), state)
	}
	return report, nil
}

// runWorker executes work items until the channel closes. Each worker
// caches one Runner per point (the sweep.RunWith engine-reuse pattern)
// and survives panicking trials: a panic is captured, the cached runner —
// whose state the panic may have corrupted — is discarded, the trial is
// retried up to spec.MaxRetries times, and a still-failing trial is
// recorded as a failed sample rather than killing the pool.
//
// A trial canceled via ctx (see Options.Context and ContextRunner) is
// dropped entirely: no sample is emitted, no retry attempted — its value
// would depend on when cancellation landed, which must never reach a
// checkpoint.
func runWorker(ctx context.Context, spec *Spec, pointSeeds []uint64, workCh <-chan workItem, resCh chan<- *Sample) {
	runners := make(map[int]Runner)
	for it := range workCh {
		s := &Sample{
			Point:   it.point,
			PointID: spec.Points[it.point].ID,
			Trial:   it.trial,
			Seed:    it.seed,
		}
		canceled := false
		for attempt := 0; ; attempt++ {
			value, ok, err := attemptTrial(ctx, spec, pointSeeds, runners, it)
			if errors.Is(err, radio.ErrCanceled) {
				canceled = true
				break
			}
			if err == nil && (math.IsNaN(value) || math.IsInf(value, 0)) {
				err = fmt.Errorf("trial returned non-finite value %v", value)
			}
			if err == nil {
				s.Value, s.OK, s.Retries = value, ok, attempt
				break
			}
			// The panic may have left the cached runner (engine, scratch
			// buffers) in an inconsistent state; rebuild it. Runners are
			// deterministic functions of (point, pointSeed), so a rebuilt
			// runner behaves identically to a fresh one.
			delete(runners, it.point)
			if attempt >= spec.MaxRetries {
				s.Failed = true
				s.Err = err.Error()
				s.Retries = attempt
				break
			}
		}
		if canceled {
			continue
		}
		resCh <- s
	}
}

// attemptTrial runs one attempt of one trial, converting panics (in
// runner construction or the trial itself) into errors. Runners that
// implement ContextRunner get the worker's context so a campaign shutdown
// cancels them mid-run; a resulting cancellation error is returned as-is
// (wrapped in radio.ErrCanceled) for the caller to drop.
func attemptTrial(ctx context.Context, spec *Spec, pointSeeds []uint64, runners map[int]Runner, it workItem) (value float64, ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	runner, cached := runners[it.point]
	if !cached {
		runner, err = newRunner(spec.Points[it.point], pointSeeds[it.point])
		if err != nil {
			return 0, false, err
		}
		runners[it.point] = runner
	}
	if cr, isCtx := runner.(ContextRunner); isCtx && ctx.Done() != nil {
		return cr.RunTrialContext(ctx, xrand.New(it.seed))
	}
	value, ok = runner.RunTrial(xrand.New(it.seed))
	return value, ok, nil
}
