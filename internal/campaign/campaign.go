// Package campaign is the Monte-Carlo campaign orchestrator: it takes a
// declarative Spec (a grid of graph/protocol configurations times a
// per-point trial budget), fans the trials out over a persistent worker
// pool, and maintains online per-point aggregation — streaming
// mean/variance (stats.Welford), P² quantiles and Wilson score intervals —
// instead of retaining raw sample slices.
//
// Three properties distinguish a campaign from a plain sweep.Run loop:
//
//   - Determinism: every trial's seed is derived from (spec seed, point
//     index, trial index) via the sweep.Seeds convention, and aggregation
//     consumes samples in trial-index order through a reorder buffer, so
//     the final report is byte-identical regardless of worker count,
//     interruption, or resume order.
//
//   - Durability: completed trials append to sharded JSONL checkpoint
//     files with an atomically-rewritten manifest; a resumed run skips
//     exactly the trials already recorded and converges to the identical
//     report an uninterrupted run produces.
//
//   - Fault tolerance and adaptive stopping: a panicking trial is
//     captured, retried a bounded number of times, recorded as a failed
//     sample, and never kills the pool; an optional stop rule ends a grid
//     point early once the CI half-width of its mean undercuts a target,
//     with the skipped budget reported.
//
// cmd/campaign is the CLI (run, resume, report, merge, spec).
package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
)

// TrialSpec declares what one trial of a grid point executes. Kind names
// a registered trial runner (see RegisterKind and the built-in kinds in
// trials.go); the remaining fields parameterise it.
type TrialSpec struct {
	// Kind selects the trial runner: "distributed", "centralized",
	// "decay", "aloha" or "collision-rate" (or any registered extension).
	Kind string `json:"kind"`
	// N is the number of nodes of the sampled G(n,p).
	N int `json:"n"`
	// D is the expected average degree d = p·n.
	D float64 `json:"d"`
	// MaxRounds overrides the round budget (0 = core.MaxRoundsFor(N)).
	MaxRounds int `json:"max_rounds,omitempty"`
	// FixedGraph pins the point to a single graph sampled from the point
	// seed instead of resampling per trial; trials then measure the
	// protocol's randomness on one topology. (Meaningless for the
	// replay-only centralized kind, which then varies the schedule seed.)
	FixedGraph bool `json:"fixed_graph,omitempty"`
}

// PointSpec is one configuration of the campaign grid.
type PointSpec struct {
	// ID is the stable identifier used in checkpoints and reports. IDs
	// must be unique within a spec.
	ID string `json:"id"`
	// X is the swept parameter for reporting (n, d, f, ...).
	X float64 `json:"x"`
	// Trial declares the work.
	Trial TrialSpec `json:"trial"`
}

// StopRule configures adaptive stopping of a grid point: once at least
// MinTrials samples are aggregated and the 95% CI half-width of the mean
// undercuts the target, the point stops consuming budget. The decision is
// taken on the in-order aggregation stream, so it is deterministic — the
// same prefix of trials always stops at the same index.
type StopRule struct {
	// MinTrials is the minimum number of aggregated trials before the
	// rule may fire (at least 2; half-widths need a variance).
	MinTrials int `json:"min_trials"`
	// HalfWidth is the target CI half-width: absolute, or a fraction of
	// |mean| when Relative is set.
	HalfWidth float64 `json:"half_width"`
	// Relative interprets HalfWidth as a fraction of the running |mean|.
	Relative bool `json:"relative,omitempty"`
}

// Spec declares a campaign: a grid of points, a per-point trial budget,
// and the determinism/fault-tolerance knobs.
type Spec struct {
	// Name labels the campaign in reports and manifests.
	Name string `json:"name"`
	// Seed is the campaign base seed. Point i's trials use the seeds
	// sweep.Seeds(Trials, xrand.New(Seed).DeriveSeed(i+1)).
	Seed uint64 `json:"seed"`
	// Trials is the per-point trial budget.
	Trials int `json:"trials"`
	// MaxRetries bounds how often a panicking trial is re-attempted
	// before being recorded as failed (0 = record on first panic).
	MaxRetries int `json:"max_retries,omitempty"`
	// Shards is the number of checkpoint shard files (default 4).
	Shards int `json:"shards,omitempty"`
	// Stop optionally enables adaptive stopping for every point.
	Stop *StopRule `json:"stop,omitempty"`
	// Points is the campaign grid.
	Points []PointSpec `json:"points"`
}

// DefaultShards is the checkpoint shard count used when Spec.Shards is 0.
const DefaultShards = 4

// Validate checks the spec for structural errors: empty grids, duplicate
// point IDs, unknown trial kinds, non-positive budgets.
func (s *Spec) Validate() error {
	if s.Trials <= 0 {
		return fmt.Errorf("campaign: spec %q: trials must be positive, got %d", s.Name, s.Trials)
	}
	if s.MaxRetries < 0 {
		return fmt.Errorf("campaign: spec %q: max_retries must be non-negative", s.Name)
	}
	if s.Shards < 0 {
		return fmt.Errorf("campaign: spec %q: shards must be non-negative", s.Name)
	}
	if len(s.Points) == 0 {
		return fmt.Errorf("campaign: spec %q has no points", s.Name)
	}
	if s.Stop != nil {
		if s.Stop.MinTrials < 2 {
			return fmt.Errorf("campaign: spec %q: stop.min_trials must be >= 2", s.Name)
		}
		if !(s.Stop.HalfWidth > 0) {
			return fmt.Errorf("campaign: spec %q: stop.half_width must be positive", s.Name)
		}
	}
	seen := make(map[string]bool, len(s.Points))
	for i, p := range s.Points {
		if p.ID == "" {
			return fmt.Errorf("campaign: point %d has no id", i)
		}
		if seen[p.ID] {
			return fmt.Errorf("campaign: duplicate point id %q", p.ID)
		}
		seen[p.ID] = true
		if !KindRegistered(p.Trial.Kind) {
			return fmt.Errorf("campaign: point %q: unknown trial kind %q", p.ID, p.Trial.Kind)
		}
		if p.Trial.N <= 0 {
			return fmt.Errorf("campaign: point %q: n must be positive", p.ID)
		}
		if p.Trial.D <= 0 {
			return fmt.Errorf("campaign: point %q: d must be positive", p.ID)
		}
	}
	return nil
}

// shards returns the effective checkpoint shard count.
func (s *Spec) shards() int {
	if s.Shards > 0 {
		return s.Shards
	}
	return DefaultShards
}

// Hash returns a stable FNV-1a fingerprint of the spec's canonical JSON,
// used by checkpoints to refuse resuming under a changed spec (seeds are
// tied to point indices, so any edit invalidates recorded trials).
func (s *Spec) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on one.
		panic("campaign: marshaling spec: " + err.Error())
	}
	h := fnv.New64a()
	h.Write(b)
	return strconv.FormatUint(h.Sum64(), 16)
}

// ParseSpec decodes and validates a spec from JSON.
func ParseSpec(b []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("campaign: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// JSONFloat is a float64 that marshals NaN and infinities as null (and
// unmarshals null back to NaN), so reports containing undefined
// statistics (variance of one sample, quantiles of an empty point)
// remain valid JSON with deterministic bytes.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = JSONFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}
