package xrand

import (
	"math"
	"testing"
)

// Exp(1) has mean 1 and variance 1; the ziggurat sampler must reproduce
// both. Tolerances are ~5 standard errors at this sample size.
func TestExpZigguratMoments(t *testing.T) {
	r := New(321)
	const samples = 400000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < samples; i++ {
		x := r.ExpZiggurat()
		if x < 0 {
			t.Fatalf("negative Exp(1) draw: %v", x)
		}
		sum += x
		sumsq += x * x
	}
	mean := sum / samples
	variance := sumsq/samples - mean*mean
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("Exp(1) mean = %.4f, want 1±0.01", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Exp(1) variance = %.4f, want 1±0.03", variance)
	}
}

// The ziggurat must also populate the distribution's tail (beyond the
// table cut-off at x ≈ 7.697) with the right mass.
func TestExpZigguratTail(t *testing.T) {
	r := New(11)
	const samples = 2000000
	tail := 0
	for i := 0; i < samples; i++ {
		if r.ExpZiggurat() > 8 {
			tail++
		}
	}
	want := float64(samples) * math.Exp(-8) // ≈ 671
	if float64(tail) < want/2 || float64(tail) > want*2 {
		t.Errorf("P[X>8] count = %d, want ≈ %.0f", tail, want)
	}
}

// Geometric(p) and GeometricLog(log1p(-p)) must walk the same stream to
// the same values: GeometricLog only hoists the logarithm.
func TestGeometricLogMatchesGeometric(t *testing.T) {
	for _, p := range []float64{0.5, 0.1, 0.003} {
		a := New(9)
		b := New(9)
		log1mp := math.Log1p(-p)
		for i := 0; i < 2000; i++ {
			x, y := a.Geometric(p), b.GeometricLog(log1mp)
			if x != y {
				t.Fatalf("p=%v draw %d: Geometric=%d GeometricLog=%d", p, i, x, y)
			}
		}
	}
}

func TestDeriveSeedMatchesDerive(t *testing.T) {
	r := New(1234)
	s := r.DeriveSeed(7)
	d := r.Derive(7)
	fromSeed := New(s)
	for i := 0; i < 100; i++ {
		if d.Uint64() != fromSeed.Uint64() {
			t.Fatalf("Derive(7) diverges from New(DeriveSeed(7)) at draw %d", i)
		}
	}
}
