// Package xrand provides fast, deterministic pseudo-random number generation
// for the simulators and graph generators in this repository.
//
// The package exists (rather than using math/rand directly) for three
// reasons:
//
//  1. Reproducibility: every experiment in the repository is driven by an
//     explicit *Rand whose seed is recorded, so every number in
//     EXPERIMENTS.md can be regenerated bit-for-bit.
//  2. Stream independence: Derive produces statistically independent child
//     streams from a parent seed, which lets parallel trials and parallel
//     graph generation draw from non-overlapping sequences without
//     coordination.
//  3. Specialised distributions: geometric skip sampling (the core of the
//     G(n,p) generator), binomial sampling and partial Fisher–Yates
//     shuffles, none of which math/rand offers.
//
// The generator is xoshiro256**, seeded through splitmix64, the combination
// recommended by the xoshiro authors. It is not cryptographically secure and
// must not be used where security matters.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; derive one stream per goroutine with Derive.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a splitmix64 state and returns the next output. It is
// used only to expand seeds into full xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds give streams that
// are, for all practical purposes, independent.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed reinitialises r in place to exactly the state New(seed) returns,
// so callers that hold many generators — the lane engine keeps one stream
// per trial lane — can reseed a batch of them per run without
// reallocating.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro256** must not be seeded with the all-zero state; splitmix64
	// cannot produce four zero outputs in a row, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

// Derive returns a new generator whose stream is independent of r's for any
// practical purpose. The child stream depends on the parent seed state and
// on id, so the same (parent, id) pair always yields the same child. Derive
// does not advance r.
func (r *Rand) Derive(id uint64) *Rand {
	return New(r.DeriveSeed(id))
}

// DeriveSeed returns the seed of the child stream Derive(id) would produce,
// for call sites that transport a plain uint64 seed (for example a worker
// pool that reseeds per task). New(r.DeriveSeed(id)) is identical to
// r.Derive(id). DeriveSeed does not advance r.
func (r *Rand) DeriveSeed(id uint64) uint64 {
	// Mix the full parent state with the id through splitmix64.
	sm := r.s0 ^ rotl(r.s1, 13) ^ rotl(r.s2, 29) ^ rotl(r.s3, 41) ^ (id * 0xd1342543de82ef95)
	return splitmix64(&sm)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("xrand: Int31n called with n <= 0")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire's method with 128-bit multiply emulated via 64x64->128 split.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= uint64(-int64(n))%n {
			// Unbiased: -n % n == (2^64 - n) % n is the rejection threshold.
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	w0 := t & mask
	k := t >> 32
	t = aHi*bLo + k
	w1 := t & mask
	w2 := t >> 32
	t = aLo*bHi + w1
	k = t >> 32
	hi = aHi*bHi + w2 + k
	lo = (t << 32) + w0
	return hi, lo
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p. Values of p outside [0,1] are
// clamped.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials, i.e. a sample from the geometric
// distribution on {0, 1, 2, ...}. It panics unless 0 < p <= 1.
//
// This is the skip length used by the G(n,p) generator: instead of flipping
// a coin per candidate edge, the generator jumps Geometric(p) candidates at
// a time, giving O(n + m) expected generation time.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	return r.GeometricLog(math.Log1p(-p))
}

// GeometricLog is Geometric(p) for a caller that has precomputed
// log1mp = math.Log1p(-p). Hot loops that draw many skips for the same p
// (the G(n,p) generator draws one per edge) hoist the invariant logarithm;
// the result is bitwise identical to Geometric(p).
func (r *Rand) GeometricLog(log1mp float64) int {
	u := r.Float64()
	// Avoid log(0); Float64 is in [0,1) so 1-u is in (0,1].
	return int(math.Floor(math.Log1p(-u) / log1mp))
}

// Binomial returns a sample from Binomial(n, p). For small n·p it counts
// geometric skips; otherwise it uses direct summation over at most n coin
// flips in blocks. Complexity is O(min(n, n·p + 1)) expected.
func (r *Rand) Binomial(n int, p float64) int {
	if n < 0 {
		panic("xrand: Binomial requires n >= 0")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Exploit symmetry so the skip-counting loop runs O(n·min(p,1-p)) steps.
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	count := 0
	i := r.Geometric(p)
	for i < n {
		count++
		i += 1 + r.Geometric(p)
	}
	return count
}

// GeometricExp is Geometric(p) for a caller that has precomputed
// lambda = -math.Log1p(-p) > 0, drawing the underlying exponential with the
// ziggurat sampler instead of a logarithm: floor(Exp(1)/lambda) is exactly
// geometrically distributed with success probability p. Same distribution
// as Geometric(p), different stream, and roughly 3x cheaper per draw — the
// lane engine's per-lane binomial sampling sits on this.
func (r *Rand) GeometricExp(lambda float64) int {
	return int(r.ExpZiggurat() / lambda)
}

// BinomialExp returns a sample from Binomial(n, p) by counting
// ziggurat-exponential geometric skips. It follows exactly the same
// skip-counting structure (including the p > 0.5 mirror) as Binomial, so the
// two are distributionally identical; only the underlying uniform stream
// usage differs. Expected cost is O(n·min(p,1-p)) cheap exponential draws.
func (r *Rand) BinomialExp(n int, p float64) int {
	if n < 0 {
		panic("xrand: BinomialExp requires n >= 0")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.BinomialExp(n, 1-p)
	}
	lambda := -math.Log1p(-p)
	count := 0
	i := r.GeometricExp(lambda)
	for i < n {
		count++
		i += 1 + r.GeometricExp(lambda)
	}
	return count
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	r.Shuffle32(p)
	return p
}

// Shuffle32 permutes s uniformly at random in place (Fisher–Yates).
func (r *Rand) Shuffle32(s []int32) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// ShuffleInts permutes s uniformly at random in place (Fisher–Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// PartialShuffle performs the first k steps of a Fisher–Yates shuffle on
// s: after the call, s[:k] is a uniformly random k-subset of the original
// elements of s (in uniformly random order) and s[k:] holds the rest. It
// panics unless 0 <= k <= len(s).
//
// This is the distinct-k sampler of the sampled-transmitter fast path:
// drawing k ~ Binomial(len(s), q) and taking s[:k] after PartialShuffle
// is distributionally identical to retaining each element of s
// independently with probability q, at O(k) cost instead of O(len(s)).
// The caller owns the buffer, so repeated draws allocate nothing; s is
// permuted in place but keeps exactly the same element set.
func (r *Rand) PartialShuffle(s []int32, k int) {
	if k < 0 || k > len(s) {
		panic("xrand: PartialShuffle requires 0 <= k <= len(s)")
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(s)-i)
		s[i], s[j] = s[j], s[i]
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0. For k close to n it shuffles a full
// permutation; for small k it uses a partial Fisher–Yates over a sparse map,
// so the cost is O(k) regardless of n.
func (r *Rand) Sample(n, k int) []int32 {
	if k < 0 || k > n {
		panic("xrand: Sample requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if 4*k >= n {
		p := r.Perm(n)
		return p[:k]
	}
	// Sparse partial Fisher–Yates: swap[i] records the value currently at
	// position i if it differs from i.
	swap := make(map[int32]int32, 2*k)
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		j := int32(i) + r.Int31n(int32(n-i))
		vi, ok := swap[int32(i)]
		if !ok {
			vi = int32(i)
		}
		vj, ok := swap[j]
		if !ok {
			vj = j
		}
		out[i] = vj
		swap[j] = vi
	}
	return out
}

// SubsetEach returns the elements of s each independently retained with
// probability p, using geometric skipping, appended to dst. The relative
// order of retained elements is preserved.
func (r *Rand) SubsetEach(dst, s []int32, p float64) []int32 {
	if p <= 0 || len(s) == 0 {
		return dst
	}
	if p >= 1 {
		return append(dst, s...)
	}
	i := r.Geometric(p)
	for i < len(s) {
		dst = append(dst, s[i])
		i += 1 + r.Geometric(p)
	}
	return dst
}

// NormFloat64 returns a standard normal sample using the polar
// (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential sample with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Ziggurat tables for ExpZiggurat (Marsaglia & Tsang, "The Ziggurat Method
// for Generating Random Variables", 2000), computed once at init from the
// published recurrence rather than pasted as opaque constants. 256 layers;
// zigR is the x-coordinate of the rightmost layer and zigV the common layer
// area.
const (
	zigR = 7.69711747013104972
	zigV = 3.949659822581572e-3
)

var (
	zigKE [256]uint32
	zigWE [256]float64
	zigFE [256]float64
)

func init() {
	const m2 = 1 << 32
	de, te := zigR, zigR
	q := zigV / math.Exp(-de)
	zigKE[0] = uint32((de / q) * m2)
	zigKE[1] = 0
	zigWE[0] = q / m2
	zigWE[255] = de / m2
	zigFE[0] = 1.0
	zigFE[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(zigV/de + math.Exp(-de))
		zigKE[i+1] = uint32((de / te) * m2)
		te = de
		zigFE[i] = math.Exp(-de)
		zigWE[i] = de / m2
	}
}

// ExpZiggurat returns an Exp(1) sample using the ziggurat method: roughly
// 2–3× cheaper than ExpFloat64 because ~98.9% of draws need one uniform,
// one table lookup and one compare, with no logarithm. The stream differs
// from ExpFloat64's, so switching a call site changes its sampled values
// (but not their distribution). The parallel G(n,p) generator draws its
// geometric skips as floor(ExpZiggurat()/λ), λ = -log(1-p).
func (r *Rand) ExpZiggurat() float64 {
	for {
		j := uint32(r.Uint64() >> 32)
		i := j & 0xFF
		x := float64(j) * zigWE[i]
		if j < zigKE[i] {
			return x
		}
		if i == 0 {
			// Tail: x = zigR + Exp(1). 1-Float64() is in (0,1], so the log
			// is finite.
			return zigR - math.Log(1-r.Float64())
		}
		if zigFE[i]+r.Float64()*(zigFE[i-1]-zigFE[i]) < math.Exp(-x) {
			return x
		}
	}
}
