package xrand_test

// Goodness-of-fit tests live in an external test package so they can use
// internal/stats (which itself depends on xrand) without an import cycle.

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestUint64nChiSquare(t *testing.T) {
	// 64 buckets, 256k draws, 5-sigma acceptance.
	r := xrand.New(20240704)
	const buckets = 64
	counts := make([]int, buckets)
	for i := 0; i < 1<<18; i++ {
		counts[r.Uint64n(buckets)]++
	}
	if !stats.ChiSquareLooksUniform(counts, 5) {
		chi2, df := stats.ChiSquareUniform(counts)
		t.Fatalf("Uint64n fails chi-square: chi2=%.1f df=%d", chi2, df)
	}
}

func TestFloat64ChiSquare(t *testing.T) {
	r := xrand.New(99991)
	const buckets = 50
	counts := make([]int, buckets)
	for i := 0; i < 1<<18; i++ {
		b := int(r.Float64() * buckets)
		if b == buckets {
			b--
		}
		counts[b]++
	}
	if !stats.ChiSquareLooksUniform(counts, 5) {
		t.Fatal("Float64 fails chi-square")
	}
}

func TestGeometricChiSquareAgainstTheory(t *testing.T) {
	// Bucket geometric(p=1/2) samples by value 0..7 (tail pooled into 7);
	// expected proportions 1/2, 1/4, ... — transform to uniform via the
	// inverse CDF bucketing: value v has probability 2^-(v+1), so
	// grouping draws by "first bit run" should put ~equal mass in buckets
	// scaled by expectation. Here we simply verify the mean and that no
	// bucket wildly deviates.
	r := xrand.New(777)
	const draws = 1 << 17
	counts := make([]int, 8)
	for i := 0; i < draws; i++ {
		v := r.Geometric(0.5)
		if v > 7 {
			v = 7
		}
		counts[v]++
	}
	expected := []float64{0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625, 0.0078125, 0.0078125}
	for v, c := range counts {
		want := expected[v] * draws
		if diff := float64(c) - want; diff > 6*want/10+200 || -diff > 6*want/10+200 {
			t.Fatalf("geometric bucket %d: got %d want ~%.0f", v, c, want)
		}
	}
}
