package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical values", same)
	}
}

func TestZeroSeedNotAllZeroState(t *testing.T) {
	r := New(0)
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		t.Fatal("seed 0 produced all-zero xoshiro state")
	}
	// The stream should still look random.
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("seed 0 produces a degenerate stream")
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Derive(1)
	c2 := parent.Derive(2)
	c1again := parent.Derive(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Derive with the same id is not deterministic")
	}
	// c1 (advanced by one) vs c2 should differ.
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("derived streams with different ids coincide")
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Derive(5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive advanced the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n = 10
	const trials = 100000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(17)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += r.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(19)
	for _, p := range []float64{0.5, 0.1, 0.01} {
		sum := 0.0
		const trials = 50000
		for i := 0; i < trials; i++ {
			sum += float64(r.Geometric(p))
		}
		mean := sum / trials
		want := (1 - p) / p
		if math.Abs(mean-want) > 0.1*want+0.05 {
			t.Errorf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
		}
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(23)
	if g := r.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestBinomialMoments(t *testing.T) {
	r := New(29)
	cases := []struct {
		n int
		p float64
	}{
		{100, 0.3}, {1000, 0.01}, {50, 0.9}, {10, 0.5},
	}
	for _, c := range cases {
		sum, sumSq := 0.0, 0.0
		const trials = 20000
		for i := 0; i < trials; i++ {
			v := float64(r.Binomial(c.n, c.p))
			sum += v
			sumSq += v * v
		}
		mean := sum / trials
		wantMean := float64(c.n) * c.p
		variance := sumSq/trials - mean*mean
		wantVar := float64(c.n) * c.p * (1 - c.p)
		if math.Abs(mean-wantMean) > 4*math.Sqrt(wantVar/trials)+0.01 {
			t.Errorf("Binomial(%d,%v) mean = %v, want ~%v", c.n, c.p, mean, wantMean)
		}
		if wantVar > 1 && math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Errorf("Binomial(%d,%v) var = %v, want ~%v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(31)
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Binomial(0, .5) = %d", v)
	}
	if v := r.Binomial(10, 0); v != 0 {
		t.Fatalf("Binomial(10, 0) = %d", v)
	}
	if v := r.Binomial(10, 1); v != 10 {
		t.Fatalf("Binomial(10, 1) = %d", v)
	}
}

func TestBinomialRangeProperty(t *testing.T) {
	r := New(37)
	f := func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw % 500)
		p := float64(pRaw) / math.MaxUint16
		v := r.Binomial(n, p)
		return v >= 0 && v <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid at value %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(43)
	const n = 5
	const trials = 50000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first element %d count %d, want ~%.0f", i, c, want)
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(47)
	for _, tc := range []struct{ n, k int }{
		{10, 0}, {10, 1}, {10, 10}, {1000, 5}, {1000, 999}, {1 << 20, 10},
	} {
		s := r.Sample(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("Sample(%d,%d) returned %d values", tc.n, tc.k, len(s))
		}
		seen := make(map[int32]bool, tc.k)
		for _, v := range s {
			if v < 0 || int(v) >= tc.n {
				t.Fatalf("Sample(%d,%d) value %d out of range", tc.n, tc.k, v)
			}
			if seen[v] {
				t.Fatalf("Sample(%d,%d) repeated value %d", tc.n, tc.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleUniformMembership(t *testing.T) {
	r := New(53)
	const n = 20
	const k = 5
	const trials = 40000
	var counts [n]int
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("Sample membership for %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestSubsetEach(t *testing.T) {
	r := New(59)
	s := make([]int32, 1000)
	for i := range s {
		s[i] = int32(i)
	}
	// p = 0 keeps nothing, p = 1 keeps everything.
	if got := r.SubsetEach(nil, s, 0); len(got) != 0 {
		t.Fatalf("SubsetEach p=0 kept %d", len(got))
	}
	if got := r.SubsetEach(nil, s, 1); len(got) != len(s) {
		t.Fatalf("SubsetEach p=1 kept %d", len(got))
	}
	// Mean retained count for p = 0.2.
	total := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		total += len(r.SubsetEach(nil, s, 0.2))
	}
	mean := float64(total) / trials
	if math.Abs(mean-200) > 10 {
		t.Fatalf("SubsetEach p=0.2 mean size %v, want ~200", mean)
	}
}

func TestSubsetEachPreservesOrder(t *testing.T) {
	r := New(61)
	s := make([]int32, 500)
	for i := range s {
		s[i] = int32(i)
	}
	got := r.SubsetEach(nil, s, 0.3)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("SubsetEach output not increasing at %d: %d <= %d", i, got[i], got[i-1])
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(67)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	if math.Abs(float64(hits)/trials-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) rate %v", float64(hits)/trials)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(71)
	sum, sumSq := 0.0, 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(73)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v", mean)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestUint64nPowerOfTwoFast(t *testing.T) {
	r := New(79)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(8); v >= 8 {
			t.Fatalf("Uint64n(8) = %d", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000003)
	}
}

func BenchmarkGeometric(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Geometric(0.001)
	}
}

func TestPartialShuffleIsPermutation(t *testing.T) {
	r := New(31)
	const n = 100
	for _, k := range []int{0, 1, 17, n / 2, n - 1, n} {
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(i)
		}
		r.PartialShuffle(s, k)
		seen := make([]bool, n)
		for _, v := range s {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("k=%d: PartialShuffle broke the permutation at %d", k, v)
			}
			seen[v] = true
		}
	}
}

func TestPartialShuffleUniformMembership(t *testing.T) {
	// Element e lands in the k-prefix with probability k/n; check the
	// empirical frequency over many trials for a few elements.
	r := New(57)
	const n, k, trials = 20, 5, 20000
	counts := make([]int, n)
	s := make([]int32, n)
	for trial := 0; trial < trials; trial++ {
		for i := range s {
			s[i] = int32(i)
		}
		r.PartialShuffle(s, k)
		for _, v := range s[:k] {
			counts[v]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	sd := math.Sqrt(float64(trials) * (float64(k) / n) * (1 - float64(k)/n))
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*sd {
			t.Fatalf("element %d in prefix %d times, want ~%.0f (±%.0f)", v, c, want, 5*sd)
		}
	}
}

func TestPartialShufflePanics(t *testing.T) {
	r := New(1)
	for _, k := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PartialShuffle(len 3, k=%d) did not panic", k)
				}
			}()
			r.PartialShuffle(make([]int32, 3), k)
		}()
	}
}
